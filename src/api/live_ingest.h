#ifndef GAUSS_API_LIVE_INGEST_H_
#define GAUSS_API_LIVE_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/gauss_db.h"
#include "gausstree/delta_tree.h"

namespace gauss {

// ============================== LiveIngest ==================================
//
// The insert-while-serving engine behind GaussDb::Serve() with
// GaussDbOptions::ingest.enabled (design notes: src/gausstree/README.md).
//
// Epochs. Serving state is an immutable Epoch: the reopened per-shard base
// trees (exactly the static Serve() stacks), one append-only DeltaTree per
// base shard, and a ShardCoordinator whose backend list is the base shards
// *plus one DeltaBackend per delta*. Because a DeltaBackend reports exact
// degenerate denominator intervals (lo == hi, exhausted), the coordinator's
// combination and refinement mathematics treat the delta as just another
// already-converged shard — MLIQ top-k and TIQ answers over base + delta are
// provably exact, by the same argument (and differential proof) that covers
// ordinary shards.
//
// Snapshot isolation without reader latching. The current epoch is published
// as a shared_ptr; Submit()/ExecuteBatch() copy it at admission and route
// through its coordinator. A query admitted at time t therefore sees exactly
// the base image and the delta prefix published before t (DeltaTree grows
// append-only and its size is read once per traversal). Inserts go to the
// *current* epoch's delta under insert_mu_ — queries never block inserts and
// vice versa.
//
// Merge. Once the buffered delta passes IngestOptions::merge_threshold (or on
// MergeNow()), the merge thread: (1) cuts each delta at its current size,
// (2) rebuilds each dirty shard's base through GaussTree::BulkLoad on fresh
// pages of the same device — base image + delta prefix, collected while the
// old epoch keeps serving, (3) redirects the shard's persistent header page
// to the new image (so reopen-after-restart sees the merged base), (4) opens
// a fresh epoch over the merged bases, re-publishing any delta tail inserted
// during the rebuild, and (5) retires the old epoch: waits until no admission
// still holds it, then destroys its coordinator (which drains in-flight
// queries) and folds its cache counters into retired_io_. Superseded base
// pages are not reclaimed — LSM-style space amplification, one image per
// merge.
//
// Remote front doors (GaussDb::ServeRemote + ingest): same engine over
// RpcBackends, with a single coordinator-side delta and *no merge* (the
// remote shard images are immutable from here); a full delta reports
// kDeltaFull until the operator rebuilds the remote shards.
//
// Threading: Insert/Submit/ExecuteBatch/MergeNow/stats are all thread-safe.
// Lock order: merge_mu_ -> insert_mu_ -> epoch_mu_.
// ============================================================================
class LiveIngest {
 public:
  // One base shard's persistent location: the device its pages live on and
  // the page its header occupies (what GaussTree::Open attaches to, and
  // what a merge redirects to the rebuilt image).
  struct ShardSource {
    PageDevice* device = nullptr;
    PageId meta_page = 0;
  };

  // Local engine over the finalized shard images of a GaussDb. `serve`
  // shapes each epoch's serving stacks exactly like a static Serve() call;
  // `file_devices` are synced after every merge. Starts the merge thread
  // under MergePolicy::kBackground.
  LiveIngest(std::vector<ShardSource> sources, Partitioner partitioner,
             size_t dim, GaussTreeOptions tree_options,
             size_t build_cache_pages,
             std::vector<FilePageDevice*> file_devices, ServeOptions serve,
             IngestOptions ingest);

  // Remote engine over connected shard backends (ServeRemote). `policy` is
  // the shards' sigma policy (from their sketches) so delta densities are
  // evaluated on the same scale. No merge thread.
  LiveIngest(std::vector<std::unique_ptr<ShardBackend>> base_backends,
             size_t dim, SigmaPolicy policy, ServeOptions serve,
             IngestOptions ingest);

  ~LiveIngest();

  LiveIngest(const LiveIngest&) = delete;
  LiveIngest& operator=(const LiveIngest&) = delete;

  // Typed routing: kRoutedToDelta on success, kDeltaFull at capacity,
  // kDimensionMismatch/kInvalidPfv on malformed input. Under
  // MergePolicy::kBackground a successful insert that pushes the buffered
  // total past merge_threshold wakes the merge thread.
  InsertResult Insert(const Pfv& pfv);

  // Epoch-snapshotting admission (see class comment).
  std::future<QueryResponse> Submit(Query query);
  BatchResult ExecuteBatch(const std::vector<Query>& batch);

  // Runs one merge now, blocking until the new epoch serves. False when
  // there was nothing buffered or this is a remote engine.
  bool MergeNow();

  IngestStats stats() const;

  // Current epoch's cache counters plus every retired epoch's (local);
  // remote shard counters over the wire (remote).
  IoStats io_stats() const;

  // Base + buffered delta objects.
  size_t size() const;

  size_t num_shards() const { return num_base_; }
  bool sharded() const { return num_base_ > 1; }
  bool remote() const { return remote_; }
  size_t dim() const { return dim_; }

  // Total query-execution workers of the current epoch (0 for remote).
  size_t num_workers() const;

 private:
  // One immutable serving generation. Destruction order (reverse of
  // declaration): the coordinator drains its in-flight scatter-gathers
  // first, then the backends close, then the serving stacks tear down.
  struct Epoch {
    uint64_t id = 1;
    size_t base_objects = 0;
    std::vector<ShardServingStack> stacks;  // empty for remote engines
    std::vector<std::shared_ptr<DeltaTree>> deltas;
    std::vector<std::unique_ptr<ShardBackend>> backends;
    std::unique_ptr<ShardCoordinator> coordinator;
  };

  std::shared_ptr<Epoch> Current() const;

  // Opens serving stacks over sources_ (the static Serve() arithmetic),
  // fresh deltas, base + delta backends, and a coordinator.
  std::shared_ptr<Epoch> BuildLocalEpoch(uint64_t id);

  bool MergeOnce();
  void RetireEpoch(std::shared_ptr<Epoch> old);
  void RequestMerge();
  void MergeLoop();

  const bool remote_;
  const size_t dim_;
  const size_t num_base_;
  const Partitioner partitioner_;
  const GaussTreeOptions tree_options_;
  const SigmaPolicy policy_;
  const size_t build_cache_pages_;
  const std::vector<ShardSource> sources_;          // local only
  const std::vector<FilePageDevice*> file_devices_; // local only
  const ServeOptions serve_;
  const IngestOptions ingest_;

  mutable std::mutex epoch_mu_;
  std::shared_ptr<Epoch> epoch_;  // guarded by epoch_mu_; readers copy

  // Serializes inserts (delta routing + the merge's tail re-publication).
  std::mutex insert_mu_;
  // Serializes merges (the background thread and MergeNow callers).
  std::mutex merge_mu_;

  mutable std::mutex stats_mu_;
  IoStats retired_io_;  // guarded by stats_mu_

  std::atomic<uint64_t> inserts_accepted_{0};
  std::atomic<uint64_t> merges_completed_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;             // guarded by wake_mu_
  bool merge_requested_ = false;  // guarded by wake_mu_
  std::thread merge_thread_;      // local + kBackground only
};

}  // namespace gauss

#endif  // GAUSS_API_LIVE_INGEST_H_
