#ifndef GAUSS_API_PARTITIONER_H_
#define GAUSS_API_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "pfv/pfv.h"

namespace gauss {

// Build-time shard router of a sharded GaussDb: object id -> shard index.
//
// The hash is SplitMix64 (full-avalanche mixer), so the sequential /
// clustered ids real galleries use spread evenly across shards instead of
// striping, and it is a pure function of the id — the same object lands on
// the same shard across Insert(), Build(), and a later OpenFile() /
// OpenDirectory() of the persisted database. Routing by id (not by
// feature-space region) keeps shard loads balanced under any data
// distribution; identification queries must consult every shard anyway,
// because the Bayes denominator spans the whole gallery (see
// service/shard_coordinator.h).
//
// The optional seed perturbs the hash (id is xor-ed with it before mixing):
// operators running several sharded galleries side by side can decorrelate
// their partitions. Seed 0 — the default — reproduces the historical
// unseeded routing, and the seed is part of the database's persistent
// identity: both the page-0 manifest of the single-file layout and the
// directory layout's manifest file record it, so reopen routes exactly as
// the original build did.
class Partitioner {
 public:
  explicit Partitioner(size_t num_shards, uint64_t seed = 0)
      : num_shards_(num_shards), seed_(seed) {
    GAUSS_CHECK_MSG(num_shards_ > 0, "Partitioner needs >= 1 shard");
  }

  size_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  size_t ShardOf(uint64_t id) const {
    return static_cast<size_t>(Mix(id ^ seed_) % num_shards_);
  }

  // Splits a dataset into one per-shard dataset (stable order within each
  // shard: dataset order restricted to the shard's objects).
  std::vector<PfvDataset> Split(const PfvDataset& dataset) const {
    std::vector<PfvDataset> parts(num_shards_, PfvDataset(dataset.dim()));
    for (const Pfv& pfv : dataset.objects()) {
      parts[ShardOf(pfv.id)].Add(pfv);
    }
    return parts;
  }

 private:
  // SplitMix64 finalizer (public-domain constants, Steele et al.).
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t num_shards_;
  uint64_t seed_ = 0;
};

}  // namespace gauss

#endif  // GAUSS_API_PARTITIONER_H_
