#include "api/live_ingest.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "common/macros.h"

namespace gauss {

namespace {

// Builds the per-shard serving stacks exactly as a static GaussDb::Serve()
// call would: same worker split, same cache split, same floors. Keeping the
// arithmetic identical means enabling ingest changes *what* is served (base
// + delta), never *how* the base is served.
struct ServeSplit {
  size_t workers_per_shard = 1;
  size_t pages_per_shard = 16;
};

ServeSplit SplitServeBudget(const ServeOptions& options, size_t shards) {
  size_t total_workers = options.num_workers;
  if (total_workers == 0) {
    total_workers = std::thread::hardware_concurrency();
    if (total_workers == 0) total_workers = 1;
  }
  ServeSplit split;
  split.workers_per_shard = std::max<size_t>(1, total_workers / shards);
  split.pages_per_shard =
      std::max<size_t>(16, options.cache_pages / shards);
  return split;
}

}  // namespace

LiveIngest::LiveIngest(std::vector<ShardSource> sources,
                       Partitioner partitioner, size_t dim,
                       GaussTreeOptions tree_options, size_t build_cache_pages,
                       std::vector<FilePageDevice*> file_devices,
                       ServeOptions serve, IngestOptions ingest)
    : remote_(false),
      dim_(dim),
      num_base_(sources.size()),
      partitioner_(partitioner),
      tree_options_(tree_options),
      policy_(tree_options.sigma_policy),
      build_cache_pages_(build_cache_pages),
      sources_(std::move(sources)),
      file_devices_(std::move(file_devices)),
      serve_(serve),
      ingest_(ingest) {
  GAUSS_CHECK_MSG(!sources_.empty(), "live ingest needs >= 1 shard source");
  GAUSS_CHECK_MSG(ingest_.delta_capacity > 0,
                  "IngestOptions::delta_capacity must be >= 1");
  epoch_ = BuildLocalEpoch(1);
  if (ingest_.merge_policy == MergePolicy::kBackground) {
    merge_thread_ = std::thread([this] { MergeLoop(); });
  }
}

LiveIngest::LiveIngest(std::vector<std::unique_ptr<ShardBackend>> backends,
                       size_t dim, SigmaPolicy policy, ServeOptions serve,
                       IngestOptions ingest)
    : remote_(true),
      dim_(dim),
      num_base_(backends.size()),
      partitioner_(1),
      tree_options_(),
      policy_(policy),
      build_cache_pages_(0),
      serve_(serve),
      ingest_(ingest) {
  GAUSS_CHECK_MSG(!backends.empty(), "live ingest needs >= 1 shard backend");
  GAUSS_CHECK_MSG(ingest_.delta_capacity > 0,
                  "IngestOptions::delta_capacity must be >= 1");
  auto epoch = std::make_shared<Epoch>();
  epoch->id = 1;
  for (const auto& backend : backends) {
    epoch->base_objects += backend->FetchSketch().sketch.tree_size;
  }
  // One coordinator-side delta: remote enrollments cannot be merged into the
  // remote shard images, so hash-routing them would buy nothing.
  epoch->deltas.push_back(
      std::make_shared<DeltaTree>(dim_, ingest_.delta_capacity));
  epoch->backends = std::move(backends);
  epoch->backends.push_back(
      std::make_unique<DeltaBackend>(epoch->deltas[0], policy_));
  std::vector<ShardBackend*> backend_ptrs;
  backend_ptrs.reserve(epoch->backends.size());
  for (const auto& backend : epoch->backends) {
    backend_ptrs.push_back(backend.get());
  }
  ShardCoordinatorOptions coordinator_options;
  coordinator_options.num_threads = serve_.coordinator_threads;
  coordinator_options.queue_capacity = serve_.queue_capacity;
  epoch->coordinator = std::make_unique<ShardCoordinator>(
      std::move(backend_ptrs), coordinator_options);
  epoch_ = std::move(epoch);
}

LiveIngest::~LiveIngest() {
  if (merge_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    merge_thread_.join();
  }
  // epoch_ destruction drains the coordinator before the stacks tear down.
}

std::shared_ptr<LiveIngest::Epoch> LiveIngest::Current() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

std::shared_ptr<LiveIngest::Epoch> LiveIngest::BuildLocalEpoch(uint64_t id) {
  const size_t shards = sources_.size();
  const ServeSplit split = SplitServeBudget(serve_, shards);

  auto epoch = std::make_shared<Epoch>();
  epoch->id = id;
  epoch->stacks.reserve(shards);
  epoch->deltas.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    ShardServingStack stack;
    stack.pool = std::make_unique<ShardedBufferPool>(
        sources_[s].device, split.pages_per_shard, serve_.num_shards);
    stack.tree = GaussTree::Open(stack.pool.get(), sources_[s].meta_page);
    epoch->base_objects += stack.tree->size();
    QueryServiceOptions service_options;
    service_options.num_workers = split.workers_per_shard;
    service_options.queue_capacity = serve_.queue_capacity;
    service_options.prefetch_depth = serve_.prefetch_depth;
    stack.service =
        std::make_unique<QueryService>(*stack.tree, service_options);
    epoch->stacks.push_back(std::move(stack));
    epoch->deltas.push_back(
        std::make_shared<DeltaTree>(dim_, ingest_.delta_capacity));
  }

  // Backend list: the base shards first, then their deltas. The coordinator
  // treats every entry uniformly; a delta's exact degenerate interval means
  // it is never asked to refine.
  epoch->backends.reserve(2 * shards);
  for (const ShardServingStack& stack : epoch->stacks) {
    epoch->backends.push_back(
        std::make_unique<InProcessBackend>(stack.service.get()));
  }
  for (const auto& delta : epoch->deltas) {
    epoch->backends.push_back(std::make_unique<DeltaBackend>(delta, policy_));
  }
  std::vector<ShardBackend*> backend_ptrs;
  backend_ptrs.reserve(epoch->backends.size());
  for (const auto& backend : epoch->backends) {
    backend_ptrs.push_back(backend.get());
  }
  ShardCoordinatorOptions coordinator_options;
  coordinator_options.num_threads = serve_.coordinator_threads;
  coordinator_options.queue_capacity = serve_.queue_capacity;
  epoch->coordinator = std::make_unique<ShardCoordinator>(
      std::move(backend_ptrs), coordinator_options);
  return epoch;
}

InsertResult LiveIngest::Insert(const Pfv& pfv) {
  if (pfv.dim() != dim_) {
    return {InsertOutcome::kDimensionMismatch,
            "pfv dimensionality " + std::to_string(pfv.dim()) +
                " != database dimensionality " + std::to_string(dim_)};
  }
  if (!pfv.Valid()) {
    return {InsertOutcome::kInvalidPfv,
            "invalid pfv: mu/sigma lengths differ or sigma <= 0"};
  }

  bool over_threshold = false;
  {
    std::lock_guard<std::mutex> lock(insert_mu_);
    std::shared_ptr<Epoch> epoch = Current();
    const size_t slot =
        epoch->deltas.size() == 1 ? 0 : partitioner_.ShardOf(pfv.id);
    if (!epoch->deltas[slot]->Append(pfv)) {
      return {InsertOutcome::kDeltaFull,
              remote_
                  ? "delta at capacity; remote bases cannot be merged from "
                    "here — rebuild the shards to absorb enrollments"
                  : "delta at capacity; retry once the merge catches up"};
    }
    inserts_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (!remote_ && ingest_.merge_policy == MergePolicy::kBackground) {
      size_t buffered = 0;
      for (const auto& delta : epoch->deltas) buffered += delta->size();
      over_threshold = buffered >= ingest_.merge_threshold;
    }
  }
  if (over_threshold) RequestMerge();
  return {InsertOutcome::kRoutedToDelta, std::string()};
}

std::future<QueryResponse> LiveIngest::Submit(Query query) {
  // The epoch copy pins the serving generation for the admission itself;
  // once the coordinator has the query, epoch retirement waits on the
  // coordinator's own drain.
  std::shared_ptr<Epoch> epoch = Current();
  return epoch->coordinator->Submit(std::move(query));
}

BatchResult LiveIngest::ExecuteBatch(const std::vector<Query>& batch) {
  std::shared_ptr<Epoch> epoch = Current();
  return epoch->coordinator->ExecuteBatch(batch);
}

bool LiveIngest::MergeNow() {
  if (remote_) return false;
  return MergeOnce();
}

bool LiveIngest::MergeOnce() {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  std::shared_ptr<Epoch> old = Current();

  // Cut each delta at its current size: [0, cut) merges into the base,
  // anything appended later re-publishes into the fresh epoch's delta.
  std::vector<size_t> cuts(old->deltas.size(), 0);
  size_t total = 0;
  for (size_t s = 0; s < old->deltas.size(); ++s) {
    cuts[s] = old->deltas[s]->size();
    total += cuts[s];
  }
  if (total == 0) return false;

  for (size_t s = 0; s < sources_.size(); ++s) {
    if (cuts[s] == 0) continue;
    // Collect the shard's base image through the *old* epoch's cache — it
    // keeps serving queries throughout the rebuild.
    PfvDataset combined(dim_);
    old->stacks[s].tree->CollectObjects(&combined);
    for (size_t i = 0; i < cuts[s]; ++i) {
      combined.Add(old->deltas[s]->at(i));
    }
    {
      // Rebuild on fresh pages of the same device (appends only — the old
      // image's pages are never touched, so the old epoch's pinned root
      // stays valid). Superseded pages are not reclaimed.
      BufferPool pool(sources_[s].device, build_cache_pages_);
      GaussTree tree(&pool, dim_, tree_options_);
      tree.BulkLoad(combined);
      tree.Finalize();
      // Redirect the shard's persistent header to the merged image: copy
      // the freshly written header onto the original header page, so both
      // the next epoch and a reopen-after-restart attach to the new base.
      // The old epoch read that page once at Open() and never again.
      std::vector<uint8_t> page(sources_[s].device->page_size());
      sources_[s].device->Read(tree.meta_page(), page.data());
      sources_[s].device->Write(sources_[s].meta_page, page.data());
    }
  }
  for (FilePageDevice* device : file_devices_) device->Sync();

  std::shared_ptr<Epoch> fresh = BuildLocalEpoch(old->id + 1);
  {
    // Republish the delta tails and swap. Holding insert_mu_ makes the cut
    // exact: no insert can land between the tail copy and the epoch swap.
    std::lock_guard<std::mutex> insert_lock(insert_mu_);
    for (size_t s = 0; s < old->deltas.size(); ++s) {
      const size_t now = old->deltas[s]->size();
      for (size_t i = cuts[s]; i < now; ++i) {
        GAUSS_CHECK(fresh->deltas[s]->Append(old->deltas[s]->at(i)));
      }
    }
    std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
    epoch_ = fresh;
  }
  RetireEpoch(std::move(old));
  merges_completed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void LiveIngest::RetireEpoch(std::shared_ptr<Epoch> old) {
  // Wait until no admission path still holds the epoch (Submit/ExecuteBatch
  // copies are short-lived), then drain: destroying the coordinator blocks
  // until every in-flight scatter-gather over the old generation completes.
  while (old.use_count() > 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  old->coordinator.reset();
  old->backends.clear();
  IoStats retired;
  for (const ShardServingStack& stack : old->stacks) {
    retired += stack.pool->stats();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    retired_io_ += retired;
  }
}

void LiveIngest::RequestMerge() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    merge_requested_ = true;
  }
  wake_cv_.notify_all();
}

void LiveIngest::MergeLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] { return stop_ || merge_requested_; });
      if (stop_) return;
      merge_requested_ = false;
    }
    MergeOnce();
  }
}

IngestStats LiveIngest::stats() const {
  std::shared_ptr<Epoch> epoch = Current();
  IngestStats out;
  for (const auto& delta : epoch->deltas) out.delta_size += delta->size();
  out.epoch = epoch->id;
  out.inserts_accepted = inserts_accepted_.load(std::memory_order_relaxed);
  out.merges_completed = merges_completed_.load(std::memory_order_relaxed);
  if (remote_ || ingest_.merge_policy == MergePolicy::kManual) {
    out.merge_backlog = out.delta_size;
  } else {
    out.merge_backlog =
        out.delta_size >= ingest_.merge_threshold ? out.delta_size : 0;
  }
  return out;
}

IoStats LiveIngest::io_stats() const {
  std::shared_ptr<Epoch> epoch = Current();
  if (remote_) return epoch->coordinator->io_stats();
  IoStats total;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total = retired_io_;
  }
  for (const ShardServingStack& stack : epoch->stacks) {
    total += stack.pool->stats();
  }
  return total;
}

size_t LiveIngest::size() const {
  std::shared_ptr<Epoch> epoch = Current();
  size_t total = epoch->base_objects;
  for (const auto& delta : epoch->deltas) total += delta->size();
  return total;
}

size_t LiveIngest::num_workers() const {
  std::shared_ptr<Epoch> epoch = Current();
  size_t total = 0;
  for (const ShardServingStack& stack : epoch->stacks) {
    total += stack.service->num_workers();
  }
  return total;
}

}  // namespace gauss
