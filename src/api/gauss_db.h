#ifndef GAUSS_API_GAUSS_DB_H_
#define GAUSS_API_GAUSS_DB_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/partitioner.h"
#include "gausstree/gauss_tree.h"
#include "pfv/pfv.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service/shard_coordinator.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {

// =============================== GaussDb ====================================
//
// The public face of the system: "identification queries as a database
// service" (paper abstract) in three calls, without hand-wiring devices,
// buffer pools, trees, and worker pools:
//
//   GaussDb db = GaussDb::CreateInMemory(/*dim=*/12);
//   db.Build(dataset);                        // bulk-load + finalize
//   Session session = db.Serve();             // concurrent serving stack
//
//   // Streaming: per-query futures, optional deadlines.
//   auto future = session.Submit(Query::Mliq(probe, /*k=*/3));
//   QueryResponse who = future.get();
//
//   // Batch: submit-and-gather over the same execution path.
//   BatchResult result = session.ExecuteBatch(batch);
//
// GaussDb owns the storage stack and drives its lifecycle through the
// paper's build-offline / serve-online shape:
//
//   * Build phase — CreateInMemory()/CreateOnFile() pick the page device and
//     attach a single-threaded BufferPool plus an empty GaussTree. Build(')s
//     bulk-load (or Insert() incrementally), then Finalize() serializes the
//     nodes to pages — explicit, or implied by Serve().
//   * Serve phase — Serve() atomically switches the stack: it flushes and
//     tears down the build pool, reattaches the finalized tree via
//     GaussTree::Open() over a latch-striped ShardedBufferPool, and starts a
//     QueryService worker pool. The returned Session owns that serving
//     stack; queries go through Session::Submit()/ExecuteBatch().
//   * Reopen — OpenFile() attaches to a database file persisted by an
//     earlier CreateOnFile() + Finalize() run (the tree header lives at page
//     0 of the file; opening anything else fails the header magic check).
//
// Sharding (GaussDbOptions::shards, ShardOptions::num_shards >= 1): the
// gallery is hash-partitioned by object id (api/partitioner.h) over N
// Gauss-trees living as N page regions of the one device. Build()/Insert()
// route each object to its shard's tree; Serve() returns a Session whose
// front door is a ShardCoordinator scatter-gathering every query across
// per-shard QueryServices and combining the per-shard Bayes-denominator
// bounds — with refinement rounds when the combined interval is too loose —
// so MLIQ/TIQ answers equal the single-tree algorithm's (see
// service/shard_coordinator.h for the algorithm and its correctness
// argument, tests/shard_equivalence_test.cc for the differential proof).
//
// Sharded file layout: page 0 holds a GaussDb shard manifest (own magic;
// num_shards, dimensionality, page size, per-shard header page ids) written
// by Finalize(); each shard tree keeps its ordinary GaussTree header on its
// own page. An unsharded database keeps the legacy layout (tree header
// directly at page 0), and OpenFile() distinguishes the two by the page-0
// magic — both layouts reopen transparently, sharding options are restored
// from the manifest and the caller's ShardOptions are ignored.
//
// Lifetime rules: GaussDb owns the device; every Session borrows it, so a
// Session must be destroyed before its GaussDb. Serve() may be called
// multiple times — each call builds an independent serving stack (own cache
// budget, own workers) over the same read-only pages, which is how several
// differently-sized frontends can share one database.
//
// The low-level layers stay public and documented for callers that need
// them: QueryMliq()/QueryTiq() over a GaussTree are the re-entrant query
// kernels (gausstree/mliq.h, tiq.h), QueryService is the raw serving
// engine (service/query_service.h), and ShardCoordinator the raw
// scatter-gather front door (service/shard_coordinator.h). Everything
// GaussDb does is expressible through them; the façade only removes the
// plumbing.
// ============================================================================

// Sharding configuration (build-time: partitioning is part of the
// database's persistent identity, not of one serving session).
struct ShardOptions {
  // 0 = unsharded single tree (the default; legacy file layout).
  // >= 1 partitions the gallery over this many Gauss-trees behind one
  // scatter-gather front door. 1 is a valid degenerate case (one shard
  // behind a coordinator) and useful for testing the combination logic.
  size_t num_shards = 0;
};

// Build-phase configuration.
struct GaussDbOptions {
  // Index construction parameters (sigma policy, split strategy, ...).
  GaussTreeOptions tree;
  // Page size of the backing device (bytes).
  uint32_t page_size = kDefaultPageSize;
  // Cache budget of the single-threaded build pool, in pages.
  size_t build_cache_pages = 1 << 14;
  // Gallery partitioning over multiple Gauss-trees.
  ShardOptions shards;
};

// Serving-stack configuration for one GaussDb::Serve() call.
struct ServeOptions {
  // Worker threads; 0 = one per hardware thread. For a sharded database
  // this is the *total* budget, split evenly over the shards (at least one
  // worker per shard).
  size_t num_workers = 0;
  // Cache budget of the serving pool(s), in pages. For a sharded database
  // the budget is split evenly over the per-shard pools.
  size_t cache_pages = 1 << 12;
  // Latch shards of the serving pool (power of two); 0 = default.
  size_t num_shards = 0;
  // Bound of the admission queue (backpressure/shedding threshold). For a
  // sharded database this bounds the coordinator's front-door queue and
  // each per-shard queue.
  size_t queue_capacity = 1024;
  // Sharded databases only: threads driving the scatter-gather merge and
  // refinement logic (service/shard_coordinator.h).
  size_t coordinator_threads = 2;
  // Asynchronous read-ahead depth of the serving traversals: after each
  // node expansion a traversal hints the serving cache
  // (PageCache::Prefetch) about up to this many of its best still-enqueued
  // subtree pages, so the next expansions find warm frames instead of
  // waiting on the device. 0 (default) disables read-ahead — today's fully
  // synchronous behavior. Purely a latency knob: answers are byte-identical
  // at every depth, and the paper's page-access metric (logical reads per
  // query) is unchanged; IoStats::prefetch_* counters report how many hints
  // became hits. Most useful with a file-backed database and a cache
  // smaller than the tree; a per-query MliqOptions/TiqOptions::
  // prefetch_depth overrides this serving-wide default.
  size_t prefetch_depth = 0;
};

// One per-shard serving stack: sharded page cache + reopened tree + worker
// pool. Destruction order (reverse of declaration): service joins its
// workers first, then the tree detaches, then the cache flushes away.
struct ShardServingStack {
  std::unique_ptr<ShardedBufferPool> pool;
  std::unique_ptr<GaussTree> tree;
  std::unique_ptr<QueryService> service;
};

// A live serving stack over one finalized GaussDb. Unsharded: one
// ShardServingStack, queries go straight to its QueryService. Sharded: one
// stack per shard plus a ShardCoordinator front door that scatter-gathers
// every query. Move-only; destroying it drains outstanding queries and
// joins all workers. Must not outlive the GaussDb it came from.
class Session {
 public:
  Session(Session&&) = default;

  // Replacing a live session must tear the old one down in dependency order
  // (the coordinator drains before the shard services it scatters to; each
  // service joins its workers before their tree and cache disappear) — a
  // defaulted member-wise move would destroy pools and trees first, letting
  // drained queries execute against freed objects.
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      coordinator_.reset();
      stacks_.clear();
      stacks_ = std::move(other.stacks_);
      coordinator_ = std::move(other.coordinator_);
    }
    return *this;
  }

  // Streaming submission — see QueryService::Submit() /
  // ShardCoordinator::Submit().
  std::future<QueryResponse> Submit(Query query) {
    return coordinator_ ? coordinator_->Submit(std::move(query))
                        : stacks_[0].service->Submit(std::move(query));
  }

  // Batch submission — see QueryService::ExecuteBatch() /
  // ShardCoordinator::ExecuteBatch().
  BatchResult ExecuteBatch(const std::vector<Query>& batch) {
    return coordinator_ ? coordinator_->ExecuteBatch(batch)
                        : stacks_[0].service->ExecuteBatch(batch);
  }

  // The reopened read-only tree (for the low-level QueryMliq/QueryTiq API
  // and for structural inspection). Unsharded sessions only — a sharded
  // session has one tree per shard; use shard_tree().
  const GaussTree& tree() const {
    GAUSS_CHECK_MSG(coordinator_ == nullptr,
                    "sharded session: use shard_tree(shard)");
    return *stacks_[0].tree;
  }

  // Per-shard tree of a (possibly unsharded, shard 0) session.
  const GaussTree& shard_tree(size_t shard) const {
    return *stacks_.at(shard).tree;
  }

  // The serving page cache (I/O statistics, Clear() for cold-start
  // experiments while no queries are in flight). Unsharded sessions only —
  // sharded sessions have one cache per shard; see io_stats().
  ShardedBufferPool& cache() {
    GAUSS_CHECK_MSG(coordinator_ == nullptr,
                    "sharded session: per-shard caches; use io_stats()");
    return *stacks_[0].pool;
  }

  // I/O counters summed over all serving caches (1 for unsharded sessions).
  IoStats io_stats() const {
    IoStats total;
    for (const ShardServingStack& stack : stacks_) total += stack.pool->stats();
    return total;
  }

  size_t num_shards() const { return stacks_.size(); }
  bool sharded() const { return coordinator_ != nullptr; }

  // Shard-coordinator front door of a sharded session (nullptr otherwise).
  ShardCoordinator* coordinator() { return coordinator_.get(); }

  // Total query-execution workers across all shards (coordinator threads
  // not included).
  size_t num_workers() const {
    size_t total = 0;
    for (const ShardServingStack& stack : stacks_) {
      total += stack.service->num_workers();
    }
    return total;
  }

 private:
  friend class GaussDb;
  Session(std::vector<ShardServingStack> stacks,
          std::unique_ptr<ShardCoordinator> coordinator)
      : stacks_(std::move(stacks)), coordinator_(std::move(coordinator)) {}

  // Destruction order (reverse of declaration): the coordinator drains its
  // in-flight scatter-gathers first, then each shard stack tears down
  // service -> tree -> cache.
  std::vector<ShardServingStack> stacks_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

class GaussDb {
 public:
  // A fresh database over a heap-backed device — experiments, tests, and
  // datasets that fit in RAM.
  static GaussDb CreateInMemory(size_t dim, GaussDbOptions options = {});

  // A fresh database persisted to `path` (truncates existing content).
  // Finalize()/Serve() sync the file; OpenFile() reattaches later.
  static GaussDb CreateOnFile(const std::string& path, size_t dim,
                              GaussDbOptions options = {});

  // Reattaches to a database file written by CreateOnFile() + Finalize().
  // Tree options, dimensionality, and sharding are read back from the
  // persistent headers (legacy tree header or shard manifest at page 0);
  // `options.tree`/`options.shards` are ignored. Aborts if the file does
  // not hold a finalized GaussDb (magic check) or if `options.page_size`
  // differs from the page size the file was created with.
  static GaussDb OpenFile(const std::string& path, GaussDbOptions options = {});

  GaussDb(GaussDb&&) = default;
  GaussDb& operator=(GaussDb&&) = default;

  // Bulk-loads an empty database (top-down hull-integral partitioning — the
  // fast, more selective build) and finalizes it. Sharded databases
  // partition the dataset first and bulk-load every shard tree.
  void Build(const PfvDataset& dataset);

  // Incremental build: inserts one object (paper Section 5.3 insertion)
  // into its (hash-routed) shard tree. Reopens a finalized tree for writing
  // if necessary. Must not be called once Serve() has been used.
  void Insert(const Pfv& pfv);

  // Serializes the tree(s) to pages, writes the shard manifest when
  // sharded, and syncs file-backed devices. Idempotent; Serve() calls it
  // implicitly when needed.
  void Finalize();

  // Switches to the serve phase: tears down the build pool and returns a
  // Session serving the finalized pages. Unsharded: one ShardedBufferPool +
  // QueryService stack. Sharded: one stack per shard behind a
  // ShardCoordinator. May be called repeatedly for independent serving
  // stacks; after the first call the build phase is over and Insert()
  // aborts.
  Session Serve(ServeOptions options = {});

  size_t size() const;
  size_t dim() const { return dim_; }
  bool finalized() const;

  // Number of shard trees (1 for an unsharded database).
  size_t num_shards() const { return sharded_ ? partitioner_.num_shards() : 1; }
  bool sharded() const { return sharded_; }

  // The backing device (shared by the build pool and every Session).
  PageDevice& device() { return *device_; }

  // Build-phase tree access (nullptr once Serve() has switched phases).
  // `shard` indexes the partition for sharded databases.
  const GaussTree* build_tree(size_t shard = 0) const {
    return shard < trees_.size() ? trees_[shard].get() : nullptr;
  }

 private:
  GaussDb() = default;

  // Page the first persistent header lives at: GaussDb always allocates it
  // first on a fresh device — the legacy tree header (unsharded) or the
  // shard manifest — which is what OpenFile() relies on.
  static constexpr PageId kMetaPage = 0;

  // Creates the (empty) shard trees on a fresh device: the manifest page
  // first when sharded, then one tree per shard in shard order.
  void InitFreshTrees();

  // Writes the shard manifest to page 0 (sharded databases only).
  void WriteManifest();

  GaussDbOptions options_;
  std::unique_ptr<PageDevice> device_;
  FilePageDevice* file_device_ = nullptr;  // device_.get() when file-backed
  std::unique_ptr<BufferPool> build_pool_;
  // Build-phase trees, one per shard; empty while serving.
  std::vector<std::unique_ptr<GaussTree>> trees_;

  bool sharded_ = false;
  Partitioner partitioner_{1};
  std::vector<PageId> shard_metas_;  // per-shard header page ids

  size_t dim_ = 0;
  size_t size_ = 0;  // cached once trees_ are torn down
};

}  // namespace gauss

#endif  // GAUSS_API_GAUSS_DB_H_
