#ifndef GAUSS_API_GAUSS_DB_H_
#define GAUSS_API_GAUSS_DB_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "pfv/pfv.h"
#include "service/query.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {

// =============================== GaussDb ====================================
//
// The public face of the system: "identification queries as a database
// service" (paper abstract) in three calls, without hand-wiring devices,
// buffer pools, trees, and worker pools:
//
//   GaussDb db = GaussDb::CreateInMemory(/*dim=*/12);
//   db.Build(dataset);                        // bulk-load + finalize
//   Session session = db.Serve();             // concurrent serving stack
//
//   // Streaming: per-query futures, optional deadlines.
//   auto future = session.Submit(Query::Mliq(probe, /*k=*/3));
//   QueryResponse who = future.get();
//
//   // Batch: submit-and-gather over the same execution path.
//   BatchResult result = session.ExecuteBatch(batch);
//
// GaussDb owns the storage stack and drives its lifecycle through the
// paper's build-offline / serve-online shape:
//
//   * Build phase — CreateInMemory()/CreateOnFile() pick the page device and
//     attach a single-threaded BufferPool plus an empty GaussTree. Build(')s
//     bulk-load (or Insert() incrementally), then Finalize() serializes the
//     nodes to pages — explicit, or implied by Serve().
//   * Serve phase — Serve() atomically switches the stack: it flushes and
//     tears down the build pool, reattaches the finalized tree via
//     GaussTree::Open() over a latch-striped ShardedBufferPool, and starts a
//     QueryService worker pool. The returned Session owns that serving
//     stack; queries go through Session::Submit()/ExecuteBatch().
//   * Reopen — OpenFile() attaches to a database file persisted by an
//     earlier CreateOnFile() + Finalize() run (the tree header lives at page
//     0 of the file; opening anything else fails the header magic check).
//
// Lifetime rules: GaussDb owns the device; every Session borrows it, so a
// Session must be destroyed before its GaussDb. Serve() may be called
// multiple times — each call builds an independent serving stack (own cache
// budget, own workers) over the same read-only pages, which is how several
// differently-sized frontends can share one database.
//
// The low-level layers stay public and documented for callers that need
// them: QueryMliq()/QueryTiq() over a GaussTree are the re-entrant query
// kernels (gausstree/mliq.h, tiq.h), and QueryService is the raw serving
// engine (service/query_service.h). Everything GaussDb does is expressible
// through them; the façade only removes the plumbing.
// ============================================================================

// Build-phase configuration.
struct GaussDbOptions {
  // Index construction parameters (sigma policy, split strategy, ...).
  GaussTreeOptions tree;
  // Page size of the backing device (bytes).
  uint32_t page_size = kDefaultPageSize;
  // Cache budget of the single-threaded build pool, in pages.
  size_t build_cache_pages = 1 << 14;
};

// Serving-stack configuration for one GaussDb::Serve() call.
struct ServeOptions {
  // Worker threads; 0 = one per hardware thread.
  size_t num_workers = 0;
  // Cache budget of the shared serving pool, in pages.
  size_t cache_pages = 1 << 12;
  // Latch shards of the serving pool (power of two); 0 = default.
  size_t num_shards = 0;
  // Bound of the admission queue (backpressure/shedding threshold).
  size_t queue_capacity = 1024;
};

// A live serving stack over one finalized GaussDb: sharded page cache +
// reopened tree + worker pool. Move-only; destroying it drains outstanding
// queries and joins the workers. Must not outlive the GaussDb it came from.
class Session {
 public:
  Session(Session&&) = default;

  // Replacing a live session must tear the old one down in dependency order
  // (service joins its workers before their tree and cache disappear) — a
  // defaulted member-wise move would destroy the old pool and tree first,
  // letting drained queries execute against freed objects.
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      service_.reset();
      tree_.reset();
      pool_.reset();
      pool_ = std::move(other.pool_);
      tree_ = std::move(other.tree_);
      service_ = std::move(other.service_);
    }
    return *this;
  }

  // Streaming submission — see QueryService::Submit().
  std::future<QueryResponse> Submit(Query query) {
    return service_->Submit(std::move(query));
  }

  // Batch submission — see QueryService::ExecuteBatch().
  BatchResult ExecuteBatch(const std::vector<Query>& batch) {
    return service_->ExecuteBatch(batch);
  }

  // The reopened read-only tree (for the low-level QueryMliq/QueryTiq API
  // and for structural inspection).
  const GaussTree& tree() const { return *tree_; }

  // The serving page cache (I/O statistics, Clear() for cold-start
  // experiments while no queries are in flight).
  ShardedBufferPool& cache() { return *pool_; }

  size_t num_workers() const { return service_->num_workers(); }

 private:
  friend class GaussDb;
  Session(std::unique_ptr<ShardedBufferPool> pool,
          std::unique_ptr<GaussTree> tree,
          std::unique_ptr<QueryService> service)
      : pool_(std::move(pool)),
        tree_(std::move(tree)),
        service_(std::move(service)) {}

  // Destruction order (reverse of declaration): service joins its workers
  // first, then the tree detaches, then the cache flushes away.
  std::unique_ptr<ShardedBufferPool> pool_;
  std::unique_ptr<GaussTree> tree_;
  std::unique_ptr<QueryService> service_;
};

class GaussDb {
 public:
  // A fresh database over a heap-backed device — experiments, tests, and
  // datasets that fit in RAM.
  static GaussDb CreateInMemory(size_t dim, GaussDbOptions options = {});

  // A fresh database persisted to `path` (truncates existing content).
  // Finalize()/Serve() sync the file; OpenFile() reattaches later.
  static GaussDb CreateOnFile(const std::string& path, size_t dim,
                              GaussDbOptions options = {});

  // Reattaches to a database file written by CreateOnFile() + Finalize().
  // Tree options and dimensionality are read back from the persistent
  // header; `options.tree` is ignored. Aborts if the file does not hold a
  // finalized GaussDb (header magic check) or if `options.page_size` differs
  // from the page size the file was created with (header page-size check).
  static GaussDb OpenFile(const std::string& path, GaussDbOptions options = {});

  GaussDb(GaussDb&&) = default;
  GaussDb& operator=(GaussDb&&) = default;

  // Bulk-loads an empty database (top-down hull-integral partitioning — the
  // fast, more selective build) and finalizes it.
  void Build(const PfvDataset& dataset);

  // Incremental build: inserts one object (paper Section 5.3 insertion).
  // Reopens a finalized tree for writing if necessary. Must not be called
  // once Serve() has been used.
  void Insert(const Pfv& pfv);

  // Serializes the tree to pages and syncs file-backed devices. Idempotent;
  // Serve() calls it implicitly when needed.
  void Finalize();

  // Switches to the serve phase: tears down the build pool and returns a
  // Session serving the finalized pages through a ShardedBufferPool and a
  // QueryService worker pool. May be called repeatedly for independent
  // serving stacks; after the first call the build phase is over and
  // Insert() aborts.
  Session Serve(ServeOptions options = {});

  size_t size() const { return tree_ ? tree_->size() : size_; }
  size_t dim() const { return dim_; }
  bool finalized() const { return !tree_ || tree_->store().finalized(); }

  // The backing device (shared by the build pool and every Session).
  PageDevice& device() { return *device_; }

  // Build-phase tree access (nullptr once Serve() has switched phases).
  const GaussTree* build_tree() const { return tree_.get(); }

 private:
  GaussDb() = default;

  // Page the persistent tree header lives at: GaussDb always creates the
  // tree first on a fresh device, so the GaussTree constructor's meta-page
  // allocation lands on page 0 — which is what OpenFile() relies on.
  static constexpr PageId kMetaPage = 0;

  GaussDbOptions options_;
  std::unique_ptr<PageDevice> device_;
  FilePageDevice* file_device_ = nullptr;  // device_.get() when file-backed
  std::unique_ptr<BufferPool> build_pool_;
  std::unique_ptr<GaussTree> tree_;  // build-phase tree; null while serving

  size_t dim_ = 0;
  size_t size_ = 0;                  // cached once tree_ is torn down
  PageId meta_page_ = kInvalidPageId;
};

}  // namespace gauss

#endif  // GAUSS_API_GAUSS_DB_H_
