#ifndef GAUSS_API_GAUSS_DB_H_
#define GAUSS_API_GAUSS_DB_H_

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/partitioner.h"
#include "gausstree/gauss_tree.h"
#include "net/net_error.h"
#include "net/shard_backend.h"
#include "pfv/pfv.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service/shard_coordinator.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {

// =============================== GaussDb ====================================
//
// The public face of the system: "identification queries as a database
// service" (paper abstract) in three calls, without hand-wiring devices,
// buffer pools, trees, and worker pools:
//
//   GaussDb db = GaussDb::CreateInMemory(/*dim=*/12);
//   db.Build(dataset);                        // bulk-load + finalize
//   Session session = db.Serve();             // concurrent serving stack
//
//   // Streaming: per-query futures, optional deadlines.
//   auto future = session.Submit(Query::Mliq(probe, /*k=*/3));
//   QueryResponse who = future.get();
//
//   // Batch: submit-and-gather over the same execution path.
//   BatchResult result = session.ExecuteBatch(batch);
//
// GaussDb owns the storage stack and drives it through an explicit
// lifecycle. The states and the transitions between them:
//
//   Building ──Serve()──> Serving(static)        (GaussDbOptions::ingest off)
//   Building ──Serve()──> Serving(live ingest)   (GaussDbOptions::ingest on)
//
//   * Building — CreateInMemory()/CreateOnFile()/CreateOnDirectory() pick
//     the page device(s) and attach single-threaded BufferPool(s) plus empty
//     GaussTree(s). Build() bulk-loads; Insert() adds one object and returns
//     InsertResult{kRoutedToBuild}. Finalize() serializes the nodes to pages
//     — explicit, or implied by Serve().
//   * Serving (static) — Serve() switches the stack: it flushes and tears
//     down the build pool(s), reattaches the finalized tree(s) via
//     GaussTree::Open() over latch-striped ShardedBufferPool(s), and starts
//     QueryService worker pools. The returned Session owns that serving
//     stack; queries go through Session::Submit()/ExecuteBatch(). The pages
//     are immutable: Insert() now returns InsertResult{kFinalized} — a
//     typed, recoverable rejection, never an abort (enrollment pipelines
//     race serving cutover all the time; a lost race must be reportable).
//   * Serving (live ingest) — with GaussDbOptions::ingest.enabled, Serve()
//     instead builds an epoch-based serving stack that keeps absorbing
//     Insert() while queries run (InsertResult{kRoutedToDelta}); see "Live
//     ingest" below. GaussDb::Insert() and Session::Insert() are the same
//     entry point in this state.
//   * Reopen — OpenFile()/OpenDirectory() attach to a database persisted by
//     an earlier Create*() + Finalize() run (state: Building, so more
//     Insert()s are fine). Both return an OpenResult: a missing file,
//     unrecognizable or truncated manifest/header, or a version/page-size/
//     shard-layout mismatch is reported as a typed OpenError for the caller
//     to handle (a serving fleet must degrade a bad replica, not abort).
//     Corruption deeper than the headers — node pages of a structurally
//     valid-looking tree — still fails loudly on first access, as does API
//     misuse (serving an unbuilt database, out-of-range shard indexes).
//
// Live ingest (GaussDbOptions::ingest, src/gausstree/README.md): the gallery
// keeps growing while MLIQ/TIQ traffic runs. Each serving epoch is an
// immutable base image (the per-shard trees, served exactly as in the static
// state) plus one small mutable DeltaTree per shard that absorbs Insert()s;
// the delta registers as one more backend behind the ShardCoordinator and
// reports *exact* degenerate denominator intervals, so combined answers
// remain provably exact — a query admitted at time t sees precisely the
// enrollments published before t. Queries snapshot the epoch at admission
// (a shared_ptr copy — no stop-the-world, no reader latching); once the
// buffered delta passes IngestOptions::merge_threshold, a background merge
// thread (MergePolicy::kBackground; or MergeIngest() under kManual) rebuilds
// the base through the existing bulk loader on fresh pages of the same
// device(s), publishes a fresh epoch atomically, and retires the old one
// after its last in-flight query drains. Session::ingest_stats() reports
// delta size, epoch, merges completed, and merge backlog alongside
// io_stats(). Superseded base pages are not reclaimed (the device grows by
// one tree image per merge — an LSM-style space amplification; compaction
// GC is future work).
//
// Sharding (GaussDbOptions::shards, ShardOptions::num_shards >= 1): the
// gallery is hash-partitioned by object id (api/partitioner.h, optionally
// seeded by ShardOptions::hash_seed) over N Gauss-trees. Build()/Insert()
// route each object to its shard's tree; Serve() returns a Session whose
// front door is a ShardCoordinator scatter-gathering every query across
// per-shard QueryServices and combining the per-shard Bayes-denominator
// bounds — with refinement rounds when the combined interval is too loose —
// so MLIQ/TIQ answers equal the single-tree algorithm's (see
// service/shard_coordinator.h for the algorithm and its correctness
// argument, tests/shard_equivalence_test.cc for the differential proof).
// The coordinator protocol never sees where a shard's pages live, which is
// why the same Session serves both storage layouts below unchanged.
//
// Distributed serving: the coordinator reaches its shards through the
// ShardBackend seam (net/shard_backend.h), so shards may also live on other
// *hosts*. Run one `gauss_shardd` per shard file (examples/gauss_shardd.cc,
// built on net/shard_server.h), then connect a front door with
// GaussDb::ServeRemote({"hostA:7001", "hostB:7001", ...}) — the returned
// Session scatter-gathers over RpcBackends speaking the versioned binary
// wire protocol (src/net/README.md) instead of in-process worker pools.
// Answers are byte-identical to local serving (the loopback differential in
// tests/shard_equivalence_test.cc proves it); a dead or too-slow shard
// fails queries with a typed QueryResponse::Status::kShardError instead of
// hanging.
//
// Two persistent layouts:
//
//   * Single-file (CreateOnFile): every shard tree lives as a page region of
//     the one device. Page 0 holds a GaussDb shard manifest (own magic;
//     format version, num_shards, hash seed, dimensionality, page size,
//     per-shard header page ids) written by Finalize(); each shard tree
//     keeps its ordinary GaussTree header on its own page. An unsharded
//     database keeps the legacy layout (tree header directly at page 0), and
//     OpenFile() distinguishes the two by the page-0 magic — both layouts
//     reopen transparently, sharding options are restored from the manifest
//     and the caller's ShardOptions are ignored.
//
//   * Directory (CreateOnDirectory): one *device per shard*, for galleries
//     larger than one device. `<dir>/MANIFEST` is a small text file naming
//     the format version, page size, dimensionality, hash seed, shard count,
//     and the per-shard relative paths; each `<dir>/shard-NNNN.gauss` is an
//     ordinary single-tree FilePageDevice image (GaussTree header at page 0)
//     — so any shard file is independently openable with OpenFile() for
//     inspection or repair, and per-shard files can live on different
//     mounts via symlinks. Each shard gets its own BufferPool during build
//     and its own ShardedBufferPool + async read engine during serving, so
//     reads (including prefetch batches) overlap across all N files truly
//     in parallel. Session::io_stats() still merges the per-shard counters
//     into one per-session view. OpenDirectory() reattaches; the manifest's
//     facts override the caller's ShardOptions.
//
// Lifetime rules: GaussDb owns the device(s); every Session borrows them, so
// a Session must be destroyed before its GaussDb. Serve() may be called
// multiple times — without ingest each call builds an independent serving
// stack (own cache budget, own workers) over the same read-only pages,
// which is how several differently-sized frontends can share one database.
// With ingest enabled there is one live-ingest stack per database (inserts
// must have a single routing authority); the first Serve() call's options
// build it and later calls return additional Sessions sharing it.
//
// The low-level layers stay public and documented for callers that need
// them: QueryMliq()/QueryTiq() over a GaussTree are the re-entrant query
// kernels (gausstree/mliq.h, tiq.h), QueryService is the raw serving
// engine (service/query_service.h), and ShardCoordinator the raw
// scatter-gather front door (service/shard_coordinator.h). Everything
// GaussDb does is expressible through them; the façade only removes the
// plumbing.
// ============================================================================

// Sharding configuration (build-time: partitioning is part of the
// database's persistent identity, not of one serving session).
struct ShardOptions {
  // 0 = unsharded single tree (the default; legacy file layout).
  // >= 1 partitions the gallery over this many Gauss-trees behind one
  // scatter-gather front door. 1 is a valid degenerate case (one shard
  // behind a coordinator) and useful for testing the combination logic.
  size_t num_shards = 0;
  // Perturbs the id hash (api/partitioner.h). Part of the database's
  // persistent identity — recorded in both layouts' manifests so a reopened
  // database routes inserts exactly as the original build did. 0 (default)
  // is the historical unseeded routing.
  uint64_t hash_seed = 0;
};

// When the live-ingest merge runs (IngestOptions::merge_policy).
enum class MergePolicy {
  // A background thread rebuilds the base once the buffered delta reaches
  // IngestOptions::merge_threshold. The default.
  kBackground,
  // Merges happen only on explicit GaussDb::MergeIngest() calls — for
  // deterministic tests and callers that schedule compaction themselves.
  kManual,
};

// Live-ingest configuration (GaussDbOptions::ingest): insert-while-serving
// with epoch-based base/delta serving. Disabled by default — the static
// build-then-serve flow is unchanged.
struct IngestOptions {
  // Master switch: with it off, Serve() builds the classic immutable stack
  // and post-Serve Insert() returns InsertResult{kFinalized}.
  bool enabled = false;
  // Capacity of each per-shard delta buffer, in objects. A full delta
  // rejects Insert() with kDeltaFull (typed backpressure) until a merge
  // drains it, so this bounds both query-time delta scan cost and the
  // worst-case merge batch.
  size_t delta_capacity = 4096;
  // Background policy only: total buffered objects (across shards) that
  // trigger a merge.
  size_t merge_threshold = 1024;
  MergePolicy merge_policy = MergePolicy::kBackground;
};

// Build-phase configuration.
struct GaussDbOptions {
  // Index construction parameters (sigma policy, split strategy, ...).
  GaussTreeOptions tree;
  // Page size of the backing device (bytes).
  uint32_t page_size = kDefaultPageSize;
  // Cache budget of the single-threaded build pool, in pages. When each
  // shard has its own device (CreateOnDirectory), the budget applies per
  // shard pool. Live-ingest merges rebuild through a pool of the same
  // budget.
  size_t build_cache_pages = 1 << 14;
  // Gallery partitioning over multiple Gauss-trees.
  ShardOptions shards;
  // Insert-while-serving (see the lifecycle overview above).
  IngestOptions ingest;
};

// Where an Insert() landed — or why it was rejected. Rejections are typed
// and recoverable, mirroring the OpenResult/ServeResult idiom: enrollment
// racing a serving cutover is an operational condition, not API misuse, so
// it must never take the process down.
enum class InsertOutcome {
  kRoutedToBuild,      // build phase: inserted into the shard's tree
  kRoutedToDelta,      // live ingest: absorbed by the epoch's delta
  kFinalized,          // serving without ingest: the pages are immutable
  kDeltaFull,          // live ingest backpressure: delta at capacity, retry
                       // after the merge drains it
  kDimensionMismatch,  // pfv dimensionality != database dimensionality
  kInvalidPfv,         // mismatched mu/sigma lengths or non-positive sigma
};

// Human-readable name of an InsertOutcome ("routed_to_delta", ...).
const char* InsertOutcomeName(InsertOutcome outcome);

struct InsertResult {
  InsertOutcome outcome = InsertOutcome::kRoutedToBuild;
  std::string message;  // what was wrong; empty on success

  // True when the object is in the database (build tree or delta).
  bool ok() const {
    return outcome == InsertOutcome::kRoutedToBuild ||
           outcome == InsertOutcome::kRoutedToDelta;
  }
  explicit operator bool() const { return ok(); }
};

// Live-ingest counters, exposed by Session::ingest_stats() alongside
// io_stats(). All zero for sessions without live ingest.
struct IngestStats {
  // Objects currently buffered across the epoch's delta(s) — enrolled,
  // serving, not yet merged into the base.
  size_t delta_size = 0;
  // Serving epoch id (1 = the image Serve() built; +1 per merge).
  uint64_t epoch = 0;
  uint64_t inserts_accepted = 0;
  uint64_t merges_completed = 0;
  // Buffered objects awaiting a merge that is due: under kBackground, the
  // delta size once it passed merge_threshold (0 below it); under kManual
  // and for remote front doors (which cannot rebuild remote bases), every
  // buffered object counts.
  size_t merge_backlog = 0;
};

// Serving-stack configuration for one GaussDb::Serve() call.
struct ServeOptions {
  // Worker threads; 0 = one per hardware thread. For a sharded database
  // this is the *total* budget, split evenly over the shards (at least one
  // worker per shard).
  size_t num_workers = 0;
  // Cache budget of the serving pool(s), in pages. For a sharded database
  // the budget is split evenly over the per-shard pools.
  size_t cache_pages = 1 << 12;
  // Latch shards of the serving pool (power of two); 0 = default.
  size_t num_shards = 0;
  // Bound of the admission queue (backpressure/shedding threshold). For a
  // sharded database this bounds the coordinator's front-door queue and
  // each per-shard queue.
  size_t queue_capacity = 1024;
  // Sharded databases only: threads driving the scatter-gather merge and
  // refinement logic (service/shard_coordinator.h).
  size_t coordinator_threads = 2;
  // Asynchronous read-ahead depth of the serving traversals: after each
  // node expansion a traversal hints the serving cache
  // (PageCache::Prefetch) about up to this many of its best still-enqueued
  // subtree pages, so the next expansions find warm frames instead of
  // waiting on the device. 0 (default) disables read-ahead — today's fully
  // synchronous behavior. Purely a latency knob: answers are byte-identical
  // at every depth, and the paper's page-access metric (logical reads per
  // query) is unchanged; IoStats::prefetch_* counters report how many hints
  // became hits. Most useful with a file-backed database and a cache
  // smaller than the tree; a per-query MliqOptions/TiqOptions::
  // prefetch_depth overrides this serving-wide default. Under the directory
  // layout each shard prefetches through its own device's async engine, so
  // read-ahead overlaps across all shard files.
  size_t prefetch_depth = 0;
  // ServeRemote() only: TCP connect + handshake patience per shard endpoint,
  // and the per-request ceiling (a query's own deadline tightens the latter;
  // see RpcBackendOptions in net/rpc_backend.h).
  uint64_t rpc_connect_timeout_ms = 5000;
  uint64_t rpc_request_timeout_ms = 30000;
};

// Why an OpenFile()/OpenDirectory() attempt was rejected. These are the
// recoverable conditions — a damaged or foreign *image*; API misuse (e.g.
// serving an unbuilt database) still aborts via GAUSS_CHECK.
enum class OpenErrorCode {
  kIoError,            // file/directory missing or unreadable, size not a
                       // page multiple (truncated mid-page)
  kNotAGaussDb,        // no recognizable GaussDb/Gauss-tree header
  kVersionMismatch,    // manifest or tree header format version unsupported
  kPageSizeMismatch,   // opened with a page size != the persisted one
  kCorruptManifest,    // manifest present but truncated or inconsistent
  kMissingShardFile,   // directory manifest names a shard file that is absent
  kShardCountMismatch, // manifest shard count disagrees with its shard list
};

// Human-readable name of an OpenErrorCode ("page_size_mismatch", ...).
const char* OpenErrorCodeName(OpenErrorCode code);

struct OpenError {
  OpenErrorCode code = OpenErrorCode::kIoError;
  std::string message;  // what was wrong, with the offending path/values
};

class OpenResult;

// One per-shard serving stack: sharded page cache + reopened tree + worker
// pool. Destruction order (reverse of declaration): service joins its
// workers first, then the tree detaches, then the cache flushes away.
struct ShardServingStack {
  std::unique_ptr<ShardedBufferPool> pool;
  std::unique_ptr<GaussTree> tree;
  std::unique_ptr<QueryService> service;
};

// The live-ingest engine (api/live_ingest.h): epochs, delta routing, and
// the merge thread. Shared between the GaussDb (insert/merge authority) and
// every Session it serves.
class LiveIngest;

// A live serving stack over one finalized GaussDb. Unsharded: one
// ShardServingStack, queries go straight to its QueryService. Sharded: one
// stack per shard (each behind an owned InProcessBackend) plus a
// ShardCoordinator front door that scatter-gathers every query. Remote
// (GaussDb::ServeRemote): no local stacks at all — the owned backends are
// RpcBackends onto gauss_shardd servers. Live ingest (local or remote): the
// session holds a share of the database's LiveIngest engine instead, whose
// current epoch owns the stacks/backends/coordinator. Move-only; destroying
// it drains outstanding queries and joins all workers. A local session must
// not outlive the GaussDb it came from; a remote one has no GaussDb.
class Session {
 public:
  Session(Session&&) = default;

  // Replacing a live session must tear the old one down in dependency order
  // (the coordinator drains before the backends it scatters through, the
  // backends close before the shard services under them; each service joins
  // its workers before their tree and cache disappear) — a defaulted
  // member-wise move would destroy pools and trees first, letting drained
  // queries execute against freed objects.
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      coordinator_.reset();
      backends_.clear();
      stacks_.clear();
      ingest_.reset();
      stacks_ = std::move(other.stacks_);
      backends_ = std::move(other.backends_);
      coordinator_ = std::move(other.coordinator_);
      ingest_ = std::move(other.ingest_);
    }
    return *this;
  }

  // Streaming submission — see QueryService::Submit() /
  // ShardCoordinator::Submit(). Live-ingest sessions snapshot the serving
  // epoch at admission, so each query sees exactly the enrollments
  // published before it.
  std::future<QueryResponse> Submit(Query query);

  // Batch submission — see QueryService::ExecuteBatch() /
  // ShardCoordinator::ExecuteBatch().
  BatchResult ExecuteBatch(const std::vector<Query>& batch);

  // Live enrollment against the serving front door: routes to the owning
  // shard's delta (kRoutedToDelta) on a live-ingest session — local or
  // remote — and reports kFinalized on a static one. Same typed results as
  // GaussDb::Insert().
  InsertResult Insert(const Pfv& pfv);

  // Live-ingest counters (delta size, epoch, merges completed, merge
  // backlog); all zero for static sessions. See IngestStats.
  IngestStats ingest_stats() const;

  // True when this session serves a live-ingest stack.
  bool live_ingest() const { return ingest_ != nullptr; }

  // The reopened read-only tree (for the low-level QueryMliq/QueryTiq API
  // and for structural inspection). Unsharded static sessions only — a
  // sharded session has one tree per shard (use shard_tree()), and a
  // live-ingest session's trees are epoch-owned and retire on merge.
  const GaussTree& tree() const {
    GAUSS_CHECK_MSG(coordinator_ == nullptr,
                    "sharded session: use shard_tree(shard)");
    GAUSS_CHECK_MSG(ingest_ == nullptr,
                    "live-ingest session: base trees are epoch-owned");
    return *stacks_[0].tree;
  }

  // Per-shard tree of a (possibly unsharded, shard 0) static session.
  const GaussTree& shard_tree(size_t shard) const {
    GAUSS_CHECK_MSG(ingest_ == nullptr,
                    "live-ingest session: base trees are epoch-owned");
    return *stacks_.at(shard).tree;
  }

  // The serving page cache (I/O statistics, Clear() for cold-start
  // experiments while no queries are in flight). Unsharded static sessions
  // only — sharded sessions have one cache per shard, live-ingest sessions
  // epoch-owned ones; see io_stats().
  ShardedBufferPool& cache() {
    GAUSS_CHECK_MSG(coordinator_ == nullptr,
                    "sharded session: per-shard caches; use io_stats()");
    GAUSS_CHECK_MSG(ingest_ == nullptr,
                    "live-ingest session: caches are epoch-owned");
    return *stacks_[0].pool;
  }

  // I/O counters summed over all serving caches (1 for unsharded sessions).
  // Per-session by construction: each Serve() call owns its own caches, so
  // concurrent sessions over one database never blend their counters — also
  // true under the directory layout, where the caches additionally sit on
  // different devices. Remote sessions report the remote shard caches'
  // counters (fetched over the wire; a dead shard contributes nothing).
  // Live-ingest sessions report the current epoch's caches plus every
  // retired epoch's accumulated counters.
  IoStats io_stats() const;

  // Base shards: shard trees for local sessions, endpoints for remote ones
  // (a live-ingest session's deltas are not counted — they hold no pages).
  size_t num_shards() const;
  bool sharded() const;
  // True for a GaussDb::ServeRemote() session (shards on other hosts; no
  // local serving stacks).
  bool remote() const;

  // The per-shard QueryService of a local session — what a gauss_shardd
  // process hands to its ShardServer, and what the loopback tests wrap in
  // per-shard RPC servers. Local static sessions only.
  QueryService* shard_service(size_t shard) {
    GAUSS_CHECK_MSG(ingest_ == nullptr,
                    "live-ingest session: services are epoch-owned");
    return stacks_.at(shard).service.get();
  }

  // Shard-coordinator front door of a sharded static session (nullptr
  // otherwise — a live-ingest session's coordinator is epoch-owned).
  ShardCoordinator* coordinator() { return coordinator_.get(); }

  // Total query-execution workers across all shards (coordinator threads
  // not included).
  size_t num_workers() const;

 private:
  friend class GaussDb;
  Session(std::vector<ShardServingStack> stacks,
          std::vector<std::unique_ptr<ShardBackend>> backends,
          std::unique_ptr<ShardCoordinator> coordinator)
      : stacks_(std::move(stacks)),
        backends_(std::move(backends)),
        coordinator_(std::move(coordinator)) {}

  explicit Session(std::shared_ptr<LiveIngest> ingest)
      : ingest_(std::move(ingest)) {}

  // Destruction order (reverse of declaration): the coordinator drains its
  // in-flight scatter-gathers first, then the backends close (their refine
  // channels and RPC readers join), then each shard stack tears down
  // service -> tree -> cache. ingest_ is only a share — the engine lives
  // until the GaussDb (or the last remote Session) releases it.
  std::vector<ShardServingStack> stacks_;
  std::vector<std::unique_ptr<ShardBackend>> backends_;
  std::unique_ptr<ShardCoordinator> coordinator_;
  std::shared_ptr<LiveIngest> ingest_;
};

// Success-or-typed-error result of GaussDb::ServeRemote(): connecting to a
// shard fleet can fail per endpoint (refused, timeout, version mismatch,
// inconsistent dimensionality), and a front door must degrade, not abort.
class ServeResult {
 public:
  /*implicit*/ ServeResult(Session session) : session_(std::move(session)) {}
  /*implicit*/ ServeResult(NetError error) : error_(std::move(error)) {}

  bool ok() const { return session_.has_value(); }
  explicit operator bool() const { return ok(); }

  // The typed rejection; only meaningful when !ok().
  const NetError& error() const {
    GAUSS_CHECK_MSG(!ok(), "ServeResult::error() on a successful connect");
    return error_;
  }

  // Moves the connected session out; aborts with the error message if the
  // connect was rejected.
  Session value() && {
    GAUSS_CHECK_MSG(ok(), error_.message.c_str());
    Session session = std::move(*session_);
    session_.reset();
    return session;
  }

 private:
  std::optional<Session> session_;
  NetError error_;
};

class GaussDb {
 public:
  // A fresh database over a heap-backed device — experiments, tests, and
  // datasets that fit in RAM.
  static GaussDb CreateInMemory(size_t dim, GaussDbOptions options = {});

  // A fresh database persisted to `path` (truncates existing content).
  // Finalize()/Serve() sync the file; OpenFile() reattaches later.
  static GaussDb CreateOnFile(const std::string& path, size_t dim,
                              GaussDbOptions options = {});

  // A fresh database persisted to the directory `path` (created if absent),
  // one FilePageDevice per shard: `path/shard-NNNN.gauss` plus a
  // `path/MANIFEST` text file written by Finalize(). Requires
  // options.shards.num_shards >= 1 — the directory layout exists to spread
  // a sharded gallery over multiple devices (each shard file can be a
  // symlink onto its own mount). OpenDirectory() reattaches later.
  static GaussDb CreateOnDirectory(const std::string& path, size_t dim,
                                   GaussDbOptions options = {});

  // Reattaches to a database file written by CreateOnFile() + Finalize().
  // Tree options, dimensionality, and sharding are read back from the
  // persistent headers (legacy tree header or shard manifest at page 0);
  // `options.tree`/`options.shards` are ignored. A missing file, a damaged
  // or foreign manifest/header, or `options.page_size` differing from the
  // page size the file was created with comes back as a typed OpenError
  // (see OpenResult); node-level corruption behind valid headers still
  // fails loudly on first access.
  static OpenResult OpenFile(const std::string& path,
                             GaussDbOptions options = {});

  // Reattaches to a database directory written by CreateOnDirectory() +
  // Finalize(): parses `path/MANIFEST` and opens every listed shard file as
  // its shard's device. The manifest's facts (shard count, hash seed, page
  // size, dimensionality) override `options`. Typed error paths mirror
  // OpenFile()'s and add the directory-specific ones: a manifest naming a
  // missing shard file (kMissingShardFile), a shard list disagreeing with
  // the declared count (kShardCountMismatch), a shard file that is not a
  // single-tree image or disagrees on page size/dimensionality.
  static OpenResult OpenDirectory(const std::string& path,
                                  GaussDbOptions options = {});

  GaussDb(GaussDb&&) = default;
  GaussDb& operator=(GaussDb&&) = default;

  // Bulk-loads an empty database (top-down hull-integral partitioning — the
  // fast, more selective build) and finalizes it. Sharded databases
  // partition the dataset first and bulk-load every shard tree.
  void Build(const PfvDataset& dataset);

  // Inserts one object. Build phase: paper Section 5.3 insertion into its
  // (hash-routed) shard tree, reopening a finalized tree for writing if
  // necessary (kRoutedToBuild). Serving with live ingest enabled
  // (GaussDbOptions::ingest): appends to the owning shard's delta
  // (kRoutedToDelta) — visible to every query admitted afterwards, with
  // kDeltaFull backpressure when the delta is at capacity and a merge has
  // not caught up. Serving without ingest: kFinalized. Never aborts on
  // lifecycle state; malformed input reports kDimensionMismatch /
  // kInvalidPfv.
  InsertResult Insert(const Pfv& pfv);

  // Serializes the tree(s) to pages, writes the manifest when sharded (page
  // 0 of the single file, or the MANIFEST text file of a directory), and
  // syncs file-backed devices. Idempotent; Serve() calls it implicitly when
  // needed.
  void Finalize();

  // Switches to the serve phase: tears down the build pool(s) and returns a
  // Session serving the finalized pages. Unsharded: one ShardedBufferPool +
  // QueryService stack. Sharded: one stack per shard behind a
  // ShardCoordinator — under the directory layout each stack's cache sits
  // on its shard's own device, so shard reads never queue behind another
  // shard's device. May be called repeatedly; after the first call the
  // build phase is over (Insert() then reports kFinalized, or keeps
  // routing to the delta under live ingest). With
  // GaussDbOptions::ingest.enabled the first call builds the shared
  // LiveIngest engine from its `options`; later calls return Sessions
  // sharing that engine.
  Session Serve(ServeOptions options = {});

  // Connects a scatter-gather front door to shard servers on other hosts:
  // one "host:port" endpoint per shard, each a running gauss_shardd (or any
  // net/shard_server.h). No local GaussDb is involved — the shards own
  // their storage stacks; the returned Session owns one RpcBackend per
  // endpoint plus the coordinator. Fails typed (ServeResult) when an
  // endpoint is unreachable (kConnectFailed/kTimeout), speaks a different
  // protocol version (kProtocolMismatch), or the shards disagree on
  // dimensionality (kProtocolMismatch). Only the rpc_*, coordinator_threads
  // and queue_capacity fields of `options` apply. With `ingest.enabled`
  // the returned Session accepts Insert(): enrollments land in a
  // coordinator-side delta that is merged into every scatter-gather
  // exactly (no wire-protocol change; the remote shard images stay
  // immutable, so there is no background merge — the delta reports
  // kDeltaFull at capacity).
  static ServeResult ServeRemote(const std::vector<std::string>& endpoints,
                                 ServeOptions options = {},
                                 IngestOptions ingest = {});

  // Rebuilds the base image from base + delta now (live ingest only;
  // MergePolicy::kManual callers drive merging with this, kBackground
  // callers may force one). Returns false when there was nothing to merge
  // or the database is remote-less/ingest-less. Blocks until the new epoch
  // serves.
  bool MergeIngest();

  // Live-ingest counters; zeros unless Serve() built an ingest engine.
  IngestStats ingest_stats() const;

  size_t size() const;
  size_t dim() const { return dim_; }
  bool finalized() const;

  // Number of shard trees (1 for an unsharded database).
  size_t num_shards() const { return sharded_ ? partitioner_.num_shards() : 1; }
  bool sharded() const { return sharded_; }

  // True when each shard has its own device (directory layout).
  bool per_shard_devices() const { return per_shard_devices_; }

  // The backing device of `shard` (shared by the build pool and every
  // Session). Single-device layouts route every shard to the one device.
  PageDevice& device(size_t shard = 0) { return *devices_[DeviceOf(shard)]; }

  // Build-phase tree access (nullptr once Serve() has switched phases).
  // `shard` indexes the partition for sharded databases.
  const GaussTree* build_tree(size_t shard = 0) const {
    return shard < trees_.size() ? trees_[shard].get() : nullptr;
  }

 private:
  GaussDb() = default;

  // Page the first persistent header lives at. Single-device layouts:
  // GaussDb always allocates it first on a fresh device — the legacy tree
  // header (unsharded) or the shard manifest — which is what OpenFile()
  // relies on. Directory layout: every shard file is a single-tree image,
  // so each shard's tree header lands here on its own device.
  static constexpr PageId kMetaPage = 0;

  // Device index backing `shard`: identity under per-shard devices, 0
  // otherwise.
  size_t DeviceOf(size_t shard) const {
    return per_shard_devices_ ? shard : 0;
  }

  void InitShardRouting(const GaussDbOptions& options);

  // Creates the (empty) shard trees on the fresh device(s): single-device —
  // the manifest page first when sharded, then one tree per shard in shard
  // order; per-shard devices — one tree at page 0 of each device.
  void InitFreshTrees();

  // Writes the shard manifest: page 0 (single-file sharded layout) or the
  // MANIFEST text file (directory layout).
  void WriteManifest();
  void WriteDirectoryManifest();

  GaussDbOptions options_;
  // One device for the in-memory/single-file layouts; one per shard for the
  // directory layout (DeviceOf maps shard -> device index).
  std::vector<std::unique_ptr<PageDevice>> devices_;
  std::vector<FilePageDevice*> file_devices_;  // the file-backed subset
  // Build pools, parallel to devices_ (the build path stays
  // single-threaded; per-shard pools exist so each shard's pages stay on
  // its own device).
  std::vector<std::unique_ptr<BufferPool>> build_pools_;
  // Build-phase trees, one per shard; empty while serving.
  std::vector<std::unique_ptr<GaussTree>> trees_;

  bool sharded_ = false;
  bool per_shard_devices_ = false;
  std::string directory_;  // CreateOnDirectory/OpenDirectory root
  Partitioner partitioner_{1};
  std::vector<PageId> shard_metas_;  // per-shard header page ids

  size_t dim_ = 0;
  size_t size_ = 0;  // cached once trees_ are torn down

  // Live-ingest engine, built by the first Serve() call with
  // options_.ingest.enabled and shared with every Session. Declared last:
  // its destructor joins the merge thread and drains the current epoch's
  // coordinator before the devices it reads from go away.
  std::shared_ptr<LiveIngest> ingest_;
};

// Success-or-typed-error result of OpenFile()/OpenDirectory(). Callers that
// can degrade check ok() and read error(); callers that cannot (tests,
// one-shot tools) call value(), which keeps the old fail-loudly behavior —
// it aborts with the error message when the open was rejected.
class OpenResult {
 public:
  /*implicit*/ OpenResult(GaussDb db) : db_(std::move(db)) {}
  /*implicit*/ OpenResult(OpenError error) : error_(std::move(error)) {}

  bool ok() const { return db_.has_value(); }
  explicit operator bool() const { return ok(); }

  // The typed rejection; only meaningful when !ok().
  const OpenError& error() const {
    GAUSS_CHECK_MSG(!ok(), "OpenResult::error() on a successful open");
    return error_;
  }

  // Moves the opened database out; aborts with the error message if the
  // open was rejected.
  GaussDb value() && {
    GAUSS_CHECK_MSG(ok(), error_.message.c_str());
    GaussDb db = std::move(*db_);
    db_.reset();
    return db;
  }

  GaussDb& operator*() {
    GAUSS_CHECK_MSG(ok(), error_.message.c_str());
    return *db_;
  }
  GaussDb* operator->() { return &**this; }

 private:
  std::optional<GaussDb> db_;
  OpenError error_;
};

}  // namespace gauss

#endif  // GAUSS_API_GAUSS_DB_H_
