#include "api/gauss_db.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "api/live_ingest.h"
#include "common/macros.h"
#include "net/rpc_backend.h"

namespace gauss {

namespace {

// Persistent shard manifest at page 0 of a sharded single-file database,
// written by Finalize(). Distinguished from the legacy layout (GaussTree
// header at page 0) by its magic; followed in-page by num_shards PageId
// entries naming each shard tree's header page.
constexpr uint64_t kGaussDbManifestMagic = 0x47415553'53444231ull;  // "GAUSSDB1"
// v2: added hash_seed (the partitioner's routing seed became persistent).
// v1 (no seed field) is still read — those databases used the unseeded
// routing, which is exactly hash_seed = 0.
constexpr uint32_t kGaussDbManifestVersion = 2;

struct ManifestLayout {
  uint64_t magic;
  uint32_t version;
  // Page size the database was created with; checked on OpenFile() like the
  // tree header's (a mismatched device maps PageIds to wrong byte offsets).
  uint32_t page_size;
  uint32_t dim;
  uint32_t num_shards;
  uint64_t hash_seed;  // v2+; v1 manifests end after num_shards
};

// Byte size of the fixed manifest header as persisted by each version (the
// shard PageId list starts right after it). v1 ended at num_shards; padding
// placed hash_seed at offset 24, so v1's header was 24 bytes.
size_t ManifestHeaderBytes(uint32_t version) {
  return version >= 2 ? sizeof(ManifestLayout) : offsetof(ManifestLayout, hash_seed);
}

// Shard count bound: nobody needs more partitions than this on one node.
// The manifest (header + PageId per shard) must additionally fit the
// configured page size — checked against it where the shard count is fixed.
constexpr size_t kMaxShards = 64;

size_t ManifestBytes(size_t num_shards) {
  return sizeof(ManifestLayout) + num_shards * sizeof(PageId);
}

// Directory layout: <dir>/MANIFEST names the format and the shard files.
constexpr char kDirManifestName[] = "MANIFEST";
constexpr char kDirManifestTag[] = "gaussdb-directory";
constexpr uint32_t kDirManifestVersion = 1;

std::string ShardFileName(size_t shard) {
  char name[48];
  std::snprintf(name, sizeof(name), "shard-%04zu.gauss", shard);
  return name;
}

OpenError Err(OpenErrorCode code, std::string message) {
  return OpenError{code, std::move(message)};
}

// A manifest shard path must stay inside the database directory: relative,
// no ".." component, and no "." component either — "." only exists to
// alias a path the duplicate-entry check below would otherwise catch (a
// symlinked *file* inside the directory is the supported way to spread
// shards over mounts).
bool SafeRelativePath(const std::string& path) {
  if (path.empty() || path.front() == '/') return false;
  std::istringstream stream(path);
  std::string component;
  while (std::getline(stream, component, '/')) {
    if (component.empty() || component == "." || component == "..") {
      return false;
    }
  }
  return true;
}

// Validates that `device` page 0 holds a single-tree image compatible with
// the expected geometry; fills `*error` and returns false otherwise.
// `what` names the file for messages; `dim` of 0 skips the dim check (the
// legacy unsharded layout learns the dim from the header itself).
bool CheckTreeHeader(PageDevice& device, const std::string& what, uint32_t dim,
                     OpenError* error) {
  if (device.PageCount() == 0) {
    *error = Err(OpenErrorCode::kNotAGaussDb,
                 what + ": empty file, no Gauss-tree header");
    return false;
  }
  std::vector<uint8_t> page(device.page_size());
  device.Read(/*id=*/0, page.data());
  const GaussTree::HeaderInfo info =
      GaussTree::InspectHeader(page.data(), page.size());
  if (!info.valid_magic) {
    *error = Err(OpenErrorCode::kNotAGaussDb,
                 what + ": page 0 does not hold a Gauss-tree header");
    return false;
  }
  if (info.version != GaussTree::header_version()) {
    *error = Err(OpenErrorCode::kVersionMismatch,
                 what + ": Gauss-tree header version " +
                     std::to_string(info.version) + ", this build reads " +
                     std::to_string(GaussTree::header_version()));
    return false;
  }
  if (info.page_size != device.page_size()) {
    *error = Err(OpenErrorCode::kPageSizeMismatch,
                 what + ": page size mismatch: tree serialized with " +
                     std::to_string(info.page_size) + ", device opened with " +
                     std::to_string(device.page_size()));
    return false;
  }
  if (dim != 0 && info.dim != dim) {
    *error = Err(OpenErrorCode::kCorruptManifest,
                 what + ": shard tree dimensionality " +
                     std::to_string(info.dim) +
                     " disagrees with the manifest's " + std::to_string(dim));
    return false;
  }
  return true;
}

}  // namespace

const char* OpenErrorCodeName(OpenErrorCode code) {
  switch (code) {
    case OpenErrorCode::kIoError: return "io_error";
    case OpenErrorCode::kNotAGaussDb: return "not_a_gaussdb";
    case OpenErrorCode::kVersionMismatch: return "version_mismatch";
    case OpenErrorCode::kPageSizeMismatch: return "page_size_mismatch";
    case OpenErrorCode::kCorruptManifest: return "corrupt_manifest";
    case OpenErrorCode::kMissingShardFile: return "missing_shard_file";
    case OpenErrorCode::kShardCountMismatch: return "shard_count_mismatch";
  }
  return "unknown";
}

std::future<QueryResponse> Session::Submit(Query query) {
  if (ingest_ != nullptr) return ingest_->Submit(std::move(query));
  return coordinator_ ? coordinator_->Submit(std::move(query))
                      : stacks_[0].service->Submit(std::move(query));
}

BatchResult Session::ExecuteBatch(const std::vector<Query>& batch) {
  if (ingest_ != nullptr) return ingest_->ExecuteBatch(batch);
  return coordinator_ ? coordinator_->ExecuteBatch(batch)
                      : stacks_[0].service->ExecuteBatch(batch);
}

InsertResult Session::Insert(const Pfv& pfv) {
  if (ingest_ != nullptr) return ingest_->Insert(pfv);
  return {InsertOutcome::kFinalized,
          "static session: the serving pages are immutable (enable "
          "GaussDbOptions::ingest for live ingest)"};
}

IngestStats Session::ingest_stats() const {
  return ingest_ != nullptr ? ingest_->stats() : IngestStats{};
}

IoStats Session::io_stats() const {
  if (ingest_ != nullptr) return ingest_->io_stats();
  if (stacks_.empty() && coordinator_ != nullptr) {
    return coordinator_->io_stats();
  }
  IoStats total;
  for (const ShardServingStack& stack : stacks_) total += stack.pool->stats();
  return total;
}

size_t Session::num_shards() const {
  if (ingest_ != nullptr) return ingest_->num_shards();
  return coordinator_ ? coordinator_->num_shards() : stacks_.size();
}

bool Session::sharded() const {
  if (ingest_ != nullptr) return ingest_->sharded();
  return coordinator_ != nullptr;
}

bool Session::remote() const {
  if (ingest_ != nullptr) return ingest_->remote();
  return coordinator_ != nullptr && stacks_.empty();
}

size_t Session::num_workers() const {
  if (ingest_ != nullptr) return ingest_->num_workers();
  size_t total = 0;
  for (const ShardServingStack& stack : stacks_) {
    total += stack.service->num_workers();
  }
  return total;
}

const char* InsertOutcomeName(InsertOutcome outcome) {
  switch (outcome) {
    case InsertOutcome::kRoutedToBuild: return "routed_to_build";
    case InsertOutcome::kRoutedToDelta: return "routed_to_delta";
    case InsertOutcome::kFinalized: return "finalized";
    case InsertOutcome::kDeltaFull: return "delta_full";
    case InsertOutcome::kDimensionMismatch: return "dimension_mismatch";
    case InsertOutcome::kInvalidPfv: return "invalid_pfv";
  }
  return "unknown";
}

void GaussDb::InitShardRouting(const GaussDbOptions& options) {
  sharded_ = options.shards.num_shards >= 1;
  if (sharded_) {
    GAUSS_CHECK_MSG(options.shards.num_shards <= kMaxShards,
                    "too many shards");
    partitioner_ =
        Partitioner(options.shards.num_shards, options.shards.hash_seed);
  }
}

void GaussDb::InitFreshTrees() {
  if (per_shard_devices_) {
    // Directory layout: every shard file is an ordinary single-tree image —
    // its tree header must land at page 0 of its own device.
    const size_t shards = num_shards();
    trees_.reserve(shards);
    shard_metas_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      trees_.push_back(std::make_unique<GaussTree>(build_pools_[s].get(), dim_,
                                                   options_.tree));
      shard_metas_.push_back(trees_.back()->meta_page());
      GAUSS_CHECK(shard_metas_.back() == kMetaPage);
    }
    return;
  }
  if (sharded_) {
    GAUSS_CHECK_MSG(ManifestBytes(num_shards()) <= options_.page_size,
                    "shard manifest does not fit the configured page size");
    // The manifest page must be allocated before any tree so it lands on
    // page 0; its contents are written by Finalize().
    const PageId manifest = devices_[0]->Allocate();
    GAUSS_CHECK(manifest == kMetaPage);
  }
  const size_t shards = num_shards();
  trees_.reserve(shards);
  shard_metas_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    trees_.push_back(std::make_unique<GaussTree>(build_pools_[0].get(), dim_,
                                                 options_.tree));
    shard_metas_.push_back(trees_.back()->meta_page());
  }
  // Unsharded: OpenFile() depends on the legacy header landing on page 0.
  if (!sharded_) GAUSS_CHECK(shard_metas_[0] == kMetaPage);
}

void GaussDb::WriteManifest() {
  GAUSS_CHECK(sharded_);
  if (per_shard_devices_) {
    WriteDirectoryManifest();
    return;
  }
  ManifestLayout manifest;
  std::memset(&manifest, 0, sizeof(manifest));
  manifest.magic = kGaussDbManifestMagic;
  manifest.version = kGaussDbManifestVersion;
  manifest.page_size = options_.page_size;
  manifest.dim = static_cast<uint32_t>(dim_);
  manifest.num_shards = static_cast<uint32_t>(shard_metas_.size());
  manifest.hash_seed = partitioner_.seed();
  std::vector<uint8_t> page(options_.page_size, 0);
  std::memcpy(page.data(), &manifest, sizeof(manifest));
  std::memcpy(page.data() + sizeof(manifest), shard_metas_.data(),
              shard_metas_.size() * sizeof(PageId));
  build_pools_[0]->WritePage(kMetaPage, page.data());
  build_pools_[0]->FlushAll();
}

void GaussDb::WriteDirectoryManifest() {
  GAUSS_CHECK(per_shard_devices_ && !directory_.empty());
  // Write + fsync + rename + directory fsync: a crash at any point leaves
  // either the previous manifest or the new one, never a half-written or
  // zero-length one — Finalize()'s durability promise must include the one
  // file the layout needs to reopen, not just the shard devices it syncs.
  // The tmp name carries the pid: several processes may reattach to one
  // directory concurrently (one gauss_shardd per shard) and each Serve()
  // rewrites an identical manifest — distinct tmp files make the concurrent
  // write+rename pairs race-free (renames are atomic; last writer wins with
  // the same bytes).
  const std::string final_path = directory_ + "/" + kDirManifestName;
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::ostringstream contents;
  contents << kDirManifestTag << ' ' << kDirManifestVersion << '\n'
           << "page_size " << options_.page_size << '\n'
           << "dim " << dim_ << '\n'
           << "hash_seed " << partitioner_.seed() << '\n'
           << "num_shards " << num_shards() << '\n';
  for (size_t s = 0; s < num_shards(); ++s) {
    contents << "shard " << ShardFileName(s) << '\n';
  }
  const std::string text = contents.str();
  {
    const int fd =
        ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    GAUSS_CHECK_MSG(fd >= 0, tmp_path.c_str());
    size_t written = 0;
    while (written < text.size()) {
      const ssize_t n =
          ::write(fd, text.data() + written, text.size() - written);
      if (n < 0 && errno == EINTR) continue;
      GAUSS_CHECK_MSG(n > 0, tmp_path.c_str());
      written += static_cast<size_t>(n);
    }
    GAUSS_CHECK_MSG(::fsync(fd) == 0, tmp_path.c_str());
    GAUSS_CHECK_MSG(::close(fd) == 0, tmp_path.c_str());
  }
  GAUSS_CHECK_MSG(std::rename(tmp_path.c_str(), final_path.c_str()) == 0,
                  final_path.c_str());
  {
    const int dir_fd = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY);
    GAUSS_CHECK_MSG(dir_fd >= 0, directory_.c_str());
    GAUSS_CHECK_MSG(::fsync(dir_fd) == 0, directory_.c_str());
    ::close(dir_fd);
  }
}

GaussDb GaussDb::CreateInMemory(size_t dim, GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  db.InitShardRouting(options);
  db.devices_.push_back(std::make_unique<InMemoryPageDevice>(options.page_size));
  db.build_pools_.push_back(std::make_unique<BufferPool>(
      db.devices_[0].get(), options.build_cache_pages));
  db.InitFreshTrees();
  return db;
}

GaussDb GaussDb::CreateOnFile(const std::string& path, size_t dim,
                              GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  db.InitShardRouting(options);
  auto device = std::make_unique<FilePageDevice>(path, options.page_size,
                                                 /*truncate=*/true);
  db.file_devices_.push_back(device.get());
  db.devices_.push_back(std::move(device));
  db.build_pools_.push_back(std::make_unique<BufferPool>(
      db.devices_[0].get(), options.build_cache_pages));
  db.InitFreshTrees();
  return db;
}

GaussDb GaussDb::CreateOnDirectory(const std::string& path, size_t dim,
                                   GaussDbOptions options) {
  GAUSS_CHECK_MSG(options.shards.num_shards >= 1,
                  "CreateOnDirectory requires shards.num_shards >= 1 (the "
                  "directory layout is one device per shard)");
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  db.InitShardRouting(options);
  db.per_shard_devices_ = true;
  db.directory_ = path;
  if (::mkdir(path.c_str(), 0755) != 0) {
    GAUSS_CHECK_MSG(errno == EEXIST, path.c_str());
  }
  const size_t shards = db.num_shards();
  db.devices_.reserve(shards);
  db.build_pools_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto device = std::make_unique<FilePageDevice>(
        path + "/" + ShardFileName(s), options.page_size, /*truncate=*/true);
    db.file_devices_.push_back(device.get());
    db.devices_.push_back(std::move(device));
    db.build_pools_.push_back(std::make_unique<BufferPool>(
        db.devices_[s].get(), options.build_cache_pages));
  }
  db.InitFreshTrees();
  return db;
}

OpenResult GaussDb::OpenFile(const std::string& path, GaussDbOptions options) {
  std::string device_error;
  auto device =
      FilePageDevice::TryOpen(path, options.page_size, &device_error);
  if (device == nullptr) {
    return Err(OpenErrorCode::kIoError, device_error);
  }
  if (device->PageCount() == 0) {
    return Err(OpenErrorCode::kNotAGaussDb,
               path + ": empty file, not a finalized GaussDb");
  }
  // No GaussDb header fits a page this small, and the manifest copy below
  // must not read past the page buffer.
  if (options.page_size < sizeof(ManifestLayout)) {
    return Err(OpenErrorCode::kNotAGaussDb,
               path + ": page size " + std::to_string(options.page_size) +
                   " is too small to hold any GaussDb header");
  }

  // Page 0 is either the shard manifest (sharded layout) or the tree header
  // (legacy layout); the magic decides. Persistent facts override whatever
  // the caller passed.
  std::vector<uint8_t> page(device->page_size());
  device->Read(kMetaPage, page.data());
  ManifestLayout manifest;
  std::memcpy(&manifest, page.data(), sizeof(manifest));

  GaussDb db;
  db.options_ = options;

  if (manifest.magic == kGaussDbManifestMagic) {
    if (manifest.version < 1 || manifest.version > kGaussDbManifestVersion) {
      return Err(OpenErrorCode::kVersionMismatch,
                 path + ": GaussDb manifest version " +
                     std::to_string(manifest.version) + ", this build reads " +
                     std::to_string(kGaussDbManifestVersion) + " and below");
    }
    // v1 predates the persistent hash seed: those databases were routed
    // unseeded, which is exactly seed 0.
    if (manifest.version < 2) manifest.hash_seed = 0;
    if (manifest.page_size != options.page_size) {
      return Err(OpenErrorCode::kPageSizeMismatch,
                 path + ": page size mismatch: the database was created with " +
                     std::to_string(manifest.page_size) +
                     ", the device is opened with " +
                     std::to_string(options.page_size));
    }
    const size_t header_bytes = ManifestHeaderBytes(manifest.version);
    if (manifest.num_shards < 1 || manifest.num_shards > kMaxShards ||
        header_bytes + manifest.num_shards * sizeof(PageId) >
            options.page_size) {
      return Err(OpenErrorCode::kCorruptManifest,
                 path + ": shard manifest names " +
                     std::to_string(manifest.num_shards) +
                     " shards, outside the representable range");
    }
    db.sharded_ = true;
    db.partitioner_ = Partitioner(manifest.num_shards, manifest.hash_seed);
    db.options_.shards.num_shards = manifest.num_shards;
    db.options_.shards.hash_seed = manifest.hash_seed;
    db.shard_metas_.resize(manifest.num_shards);
    std::memcpy(db.shard_metas_.data(), page.data() + header_bytes,
                manifest.num_shards * sizeof(PageId));
    for (const PageId meta : db.shard_metas_) {
      if (meta >= device->PageCount()) {
        return Err(OpenErrorCode::kCorruptManifest,
                   path + ": shard header page " + std::to_string(meta) +
                       " is beyond the file's " +
                       std::to_string(device->PageCount()) + " pages");
      }
      std::vector<uint8_t> shard_page(device->page_size());
      device->Read(meta, shard_page.data());
      const GaussTree::HeaderInfo info =
          GaussTree::InspectHeader(shard_page.data(), shard_page.size());
      if (!info.valid_magic || info.dim != manifest.dim ||
          info.page_size != options.page_size) {
        return Err(OpenErrorCode::kCorruptManifest,
                   path + ": shard header page " + std::to_string(meta) +
                       " does not hold a matching Gauss-tree header");
      }
      if (info.version != GaussTree::header_version()) {
        return Err(OpenErrorCode::kVersionMismatch,
                   path + ": shard tree header version " +
                       std::to_string(info.version) + ", this build reads " +
                       std::to_string(GaussTree::header_version()));
      }
    }
    db.dim_ = manifest.dim;
  } else {
    // Legacy layout: the (magic-checked) tree header lives at page 0 by
    // construction.
    OpenError error;
    if (!CheckTreeHeader(*device, path, /*dim=*/0, &error)) return error;
    db.shard_metas_.push_back(kMetaPage);
  }

  db.file_devices_.push_back(device.get());
  db.devices_.push_back(std::move(device));
  db.build_pools_.push_back(std::make_unique<BufferPool>(
      db.devices_[0].get(), options.build_cache_pages));
  for (const PageId meta : db.shard_metas_) {
    db.trees_.push_back(GaussTree::Open(db.build_pools_[0].get(), meta));
  }
  db.dim_ = db.trees_[0]->dim();
  db.options_.tree = db.trees_[0]->options();
  for (const auto& tree : db.trees_) {
    GAUSS_CHECK_MSG(tree->dim() == db.dim_,
                    "shard trees disagree on dimensionality");
  }
  return db;
}

OpenResult GaussDb::OpenDirectory(const std::string& path,
                                  GaussDbOptions options) {
  const std::string manifest_path = path + "/" + kDirManifestName;
  std::ifstream in(manifest_path);
  if (!in.good()) {
    return Err(OpenErrorCode::kIoError,
               manifest_path + ": " + std::strerror(errno));
  }

  std::string tag;
  uint32_t version = 0;
  if (!(in >> tag >> version) || tag != kDirManifestTag) {
    return Err(OpenErrorCode::kNotAGaussDb,
               manifest_path + ": not a GaussDb directory manifest");
  }
  if (version != kDirManifestVersion) {
    return Err(OpenErrorCode::kVersionMismatch,
               manifest_path + ": directory manifest version " +
                   std::to_string(version) + ", this build reads " +
                   std::to_string(kDirManifestVersion));
  }

  uint32_t page_size = 0;
  uint64_t dim = 0;
  uint64_t hash_seed = 0;
  uint64_t num_shards = 0;
  bool have_page_size = false, have_dim = false, have_seed = false,
       have_shards = false;
  std::vector<std::string> shard_paths;
  std::string key;
  while (in >> key) {
    if (key == "page_size") {
      have_page_size = static_cast<bool>(in >> page_size);
    } else if (key == "dim") {
      have_dim = static_cast<bool>(in >> dim);
    } else if (key == "hash_seed") {
      have_seed = static_cast<bool>(in >> hash_seed);
    } else if (key == "num_shards") {
      have_shards = static_cast<bool>(in >> num_shards);
    } else if (key == "shard") {
      std::string rel;
      if (!(in >> rel)) break;
      shard_paths.push_back(std::move(rel));
    } else {
      return Err(OpenErrorCode::kCorruptManifest,
                 manifest_path + ": unknown manifest key '" + key + "'");
    }
  }
  if (!have_page_size || !have_dim || !have_seed || !have_shards ||
      dim == 0) {
    return Err(OpenErrorCode::kCorruptManifest,
               manifest_path + ": truncated manifest (missing page_size/dim/"
                               "hash_seed/num_shards)");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Err(OpenErrorCode::kCorruptManifest,
               manifest_path + ": shard count " + std::to_string(num_shards) +
                   " outside the representable range");
  }
  if (shard_paths.size() != num_shards) {
    return Err(OpenErrorCode::kShardCountMismatch,
               manifest_path + ": manifest declares " +
                   std::to_string(num_shards) + " shards but lists " +
                   std::to_string(shard_paths.size()) + " shard files");
  }
  if (page_size != options.page_size) {
    return Err(OpenErrorCode::kPageSizeMismatch,
               manifest_path + ": page size mismatch: the database was "
                               "created with " +
                   std::to_string(page_size) + ", the device is opened with " +
                   std::to_string(options.page_size));
  }

  // A writer that crashed between creating MANIFEST.tmp.<pid> and renaming
  // it over MANIFEST leaves the tmp file behind forever (the pid suffix
  // means no later writer reuses the name). They are garbage by
  // construction — the rename either happened (the data lives in MANIFEST)
  // or the manifest write never completed (the previous manifest, just
  // validated above, is authoritative) — so sweep them here rather than let
  // them accumulate. Unlink races with a live writer are benign: losing a
  // tmp file before its rename only makes that writer's rename fail, and it
  // retries by rewriting identical bytes on the next Finalize().
  if (DIR* dir = ::opendir(path.c_str())) {
    const std::string stale_prefix = std::string(kDirManifestName) + ".tmp.";
    std::vector<std::string> stale;
    while (const struct dirent* entry = ::readdir(dir)) {
      if (std::strncmp(entry->d_name, stale_prefix.c_str(),
                       stale_prefix.size()) == 0) {
        stale.push_back(path + "/" + entry->d_name);
      }
    }
    ::closedir(dir);
    for (const std::string& stale_path : stale) {
      ::unlink(stale_path.c_str());  // best-effort; it is garbage either way
    }
  }

  GaussDb db;
  db.options_ = options;
  db.options_.shards.num_shards = num_shards;
  db.options_.shards.hash_seed = hash_seed;
  db.InitShardRouting(db.options_);
  db.per_shard_devices_ = true;
  db.directory_ = path;
  db.dim_ = static_cast<size_t>(dim);

  // Duplicate entries would alias two read-write shard devices onto one
  // file — reads would consult the same tree twice and a reopen-and-Insert
  // would interleave two trees' appends, corrupting it.
  {
    std::set<std::string> unique_paths(shard_paths.begin(), shard_paths.end());
    if (unique_paths.size() != shard_paths.size()) {
      return Err(OpenErrorCode::kCorruptManifest,
                 manifest_path + ": manifest lists the same shard file twice");
    }
  }

  for (size_t s = 0; s < shard_paths.size(); ++s) {
    if (!SafeRelativePath(shard_paths[s])) {
      return Err(OpenErrorCode::kCorruptManifest,
                 manifest_path + ": shard path '" + shard_paths[s] +
                     "' escapes the database directory");
    }
    const std::string shard_path = path + "/" + shard_paths[s];
    std::string device_error;
    auto device =
        FilePageDevice::TryOpen(shard_path, options.page_size, &device_error);
    if (device == nullptr) {
      return Err(OpenErrorCode::kMissingShardFile,
                 "shard " + std::to_string(s) + ": " + device_error);
    }
    OpenError error;
    if (!CheckTreeHeader(*device, shard_path, static_cast<uint32_t>(dim),
                         &error)) {
      return error;
    }
    db.file_devices_.push_back(device.get());
    db.devices_.push_back(std::move(device));
    db.build_pools_.push_back(std::make_unique<BufferPool>(
        db.devices_[s].get(), options.build_cache_pages));
    db.shard_metas_.push_back(kMetaPage);
    db.trees_.push_back(GaussTree::Open(db.build_pools_[s].get(), kMetaPage));
  }
  db.options_.tree = db.trees_[0]->options();
  return db;
}

size_t GaussDb::size() const {
  if (!trees_.empty()) {
    size_t total = 0;
    for (const auto& tree : trees_) total += tree->size();
    return total;
  }
  if (ingest_ != nullptr) return ingest_->size();
  return size_;
}

bool GaussDb::finalized() const {
  for (const auto& tree : trees_) {
    if (!tree->store().finalized()) return false;
  }
  return true;
}

void GaussDb::Build(const PfvDataset& dataset) {
  GAUSS_CHECK_MSG(!trees_.empty(),
                  "Build after Serve(): build phase is over");
  GAUSS_CHECK_MSG(size() == 0 && !finalized(),
                  "Build requires an empty database (use Insert to grow one)");
  GAUSS_CHECK_MSG(dataset.dim() == dim_, "dataset dimensionality mismatch");
  if (sharded_) {
    const std::vector<PfvDataset> parts = partitioner_.Split(dataset);
    for (size_t s = 0; s < trees_.size(); ++s) {
      trees_[s]->BulkLoad(parts[s]);
    }
  } else {
    trees_[0]->BulkLoad(dataset);
  }
  Finalize();
}

InsertResult GaussDb::Insert(const Pfv& pfv) {
  if (pfv.dim() != dim_) {
    return {InsertOutcome::kDimensionMismatch,
            "pfv dimensionality " + std::to_string(pfv.dim()) +
                " != database dimensionality " + std::to_string(dim_)};
  }
  if (!pfv.Valid()) {
    return {InsertOutcome::kInvalidPfv,
            "invalid pfv: mu/sigma lengths differ or sigma <= 0"};
  }
  if (!trees_.empty()) {
    GaussTree* tree =
        trees_[sharded_ ? partitioner_.ShardOf(pfv.id) : 0].get();
    if (tree->store().finalized()) tree->Definalize();
    tree->Insert(pfv);
    return {InsertOutcome::kRoutedToBuild, std::string()};
  }
  if (ingest_ != nullptr) return ingest_->Insert(pfv);
  return {InsertOutcome::kFinalized,
          "Insert after Serve(): the serving pages are immutable (enable "
          "GaussDbOptions::ingest for live ingest)"};
}

bool GaussDb::MergeIngest() {
  if (ingest_ == nullptr) return false;
  return ingest_->MergeNow();
}

IngestStats GaussDb::ingest_stats() const {
  return ingest_ != nullptr ? ingest_->stats() : IngestStats{};
}

void GaussDb::Finalize() {
  GAUSS_CHECK_MSG(!trees_.empty(),
                  "Finalize after Serve(): build phase is over");
  for (const auto& tree : trees_) {
    if (!tree->store().finalized()) tree->Finalize();
  }
  if (sharded_) WriteManifest();
  for (FilePageDevice* device : file_devices_) device->Sync();
}

Session GaussDb::Serve(ServeOptions options) {
  if (!trees_.empty()) {
    Finalize();
    // Atomic phase switch: tear down the build stack (trees first, then
    // their pools — Finalize already flushed) before the serving stack
    // attaches to the same pages. size_ is re-derived from the reopened
    // serving trees below.
    trees_.clear();
    build_pools_.clear();
  }
  GAUSS_CHECK_MSG(!shard_metas_.empty(), "Serve on an unbuilt GaussDb");

  if (options_.ingest.enabled) {
    // Live ingest: one engine per database, built from the first Serve()
    // call's options; later calls share it (same epochs, same deltas).
    if (ingest_ == nullptr) {
      std::vector<LiveIngest::ShardSource> sources;
      sources.reserve(shard_metas_.size());
      for (size_t s = 0; s < shard_metas_.size(); ++s) {
        sources.push_back(
            LiveIngest::ShardSource{devices_[DeviceOf(s)].get(),
                                    shard_metas_[s]});
      }
      ingest_ = std::make_shared<LiveIngest>(
          std::move(sources), partitioner_, dim_, options_.tree,
          options_.build_cache_pages, file_devices_, options,
          options_.ingest);
    }
    return Session(ingest_);
  }

  const size_t shards = shard_metas_.size();
  size_t total_workers = options.num_workers;
  if (total_workers == 0) {
    total_workers = std::thread::hardware_concurrency();
    if (total_workers == 0) total_workers = 1;
  }
  const size_t workers_per_shard = std::max<size_t>(1, total_workers / shards);
  // Every per-shard pool must be able to hold at least a root-to-leaf path
  // plus headers, whatever the split says.
  const size_t pages_per_shard = std::max<size_t>(16, options.cache_pages / shards);

  std::vector<ShardServingStack> stacks;
  stacks.reserve(shards);
  size_t total_size = 0;
  for (size_t s = 0; s < shards; ++s) {
    ShardServingStack stack;
    // Directory layout: each shard's serving cache sits on the shard's own
    // device, so its misses and prefetch batches never queue behind another
    // shard's reads (per-device async engines run in parallel).
    stack.pool = std::make_unique<ShardedBufferPool>(
        devices_[DeviceOf(s)].get(), pages_per_shard, options.num_shards);
    stack.tree = GaussTree::Open(stack.pool.get(), shard_metas_[s]);
    total_size += stack.tree->size();
    QueryServiceOptions service_options;
    service_options.num_workers = workers_per_shard;
    service_options.queue_capacity = options.queue_capacity;
    service_options.prefetch_depth = options.prefetch_depth;
    stack.service =
        std::make_unique<QueryService>(*stack.tree, service_options);
    stacks.push_back(std::move(stack));
  }
  size_ = total_size;

  std::vector<std::unique_ptr<ShardBackend>> backends;
  std::unique_ptr<ShardCoordinator> coordinator;
  if (sharded_) {
    // The coordinator reaches each shard through the transport-agnostic
    // ShardBackend seam; locally that is an InProcessBackend per shard
    // service (zero behavior change vs. wiring the services directly).
    std::vector<ShardBackend*> backend_ptrs;
    backends.reserve(shards);
    backend_ptrs.reserve(shards);
    for (const ShardServingStack& stack : stacks) {
      backends.push_back(
          std::make_unique<InProcessBackend>(stack.service.get()));
      backend_ptrs.push_back(backends.back().get());
    }
    ShardCoordinatorOptions coordinator_options;
    coordinator_options.num_threads = options.coordinator_threads;
    coordinator_options.queue_capacity = options.queue_capacity;
    coordinator = std::make_unique<ShardCoordinator>(std::move(backend_ptrs),
                                                     coordinator_options);
  }
  return Session(std::move(stacks), std::move(backends),
                 std::move(coordinator));
}

ServeResult GaussDb::ServeRemote(const std::vector<std::string>& endpoints,
                                 ServeOptions options, IngestOptions ingest) {
  if (endpoints.empty()) {
    return NetError{NetErrorCode::kConnectFailed,
                    "ServeRemote needs >= 1 shard endpoint"};
  }
  RpcBackendOptions rpc_options;
  rpc_options.connect_timeout =
      std::chrono::milliseconds(options.rpc_connect_timeout_ms);
  rpc_options.request_timeout =
      std::chrono::milliseconds(options.rpc_request_timeout_ms);

  std::vector<std::unique_ptr<ShardBackend>> backends;
  std::vector<ShardBackend*> backend_ptrs;
  backends.reserve(endpoints.size());
  backend_ptrs.reserve(endpoints.size());
  size_t dim = 0;
  for (const std::string& endpoint : endpoints) {
    const size_t colon = endpoint.rfind(':');
    unsigned long port = 0;
    if (colon != std::string::npos && colon + 1 < endpoint.size()) {
      char* end = nullptr;
      port = std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
      if (end == nullptr || *end != '\0') port = 0;
    }
    if (colon == std::string::npos || colon == 0 || port == 0 ||
        port > 65535) {
      return NetError{NetErrorCode::kConnectFailed,
                      endpoint + ": expected host:port"};
    }
    NetError error;
    auto backend =
        RpcBackend::Connect(endpoint.substr(0, colon),
                            static_cast<uint16_t>(port), rpc_options, &error);
    if (backend == nullptr) {
      error.message = endpoint + ": " + error.message;
      return error;
    }
    if (backends.empty()) {
      dim = backend->dim();
    } else if (backend->dim() != dim) {
      return NetError{
          NetErrorCode::kProtocolMismatch,
          endpoint + ": shard dimensionality " +
              std::to_string(backend->dim()) +
              " disagrees with the first shard's " + std::to_string(dim)};
    }
    backend_ptrs.push_back(backend.get());
    backends.push_back(std::move(backend));
  }

  if (ingest.enabled) {
    // The delta must evaluate densities under the same sigma policy as the
    // remote shards; their sketches carry it. An all-empty fleet falls back
    // to the default policy — with zero objects the policies agree anyway,
    // but enrollments then assume the default.
    SigmaPolicy policy = SigmaPolicy::kConvolution;
    bool policy_known = false;
    NetError sketch_error;
    for (const auto& backend : backends) {
      ShardBackend::SketchResult sketch = backend->FetchSketch();
      if (!sketch.error.ok()) {
        sketch_error = sketch.error;
        continue;
      }
      if (sketch.sketch.tree_size > 0) {
        policy = sketch.sketch.sigma_policy;
        policy_known = true;
        break;
      }
    }
    if (!policy_known && !sketch_error.ok()) {
      sketch_error.message =
          "live ingest needs the shards' sigma policy, but no sketch was "
          "readable: " + sketch_error.message;
      return sketch_error;
    }
    auto live = std::make_shared<LiveIngest>(std::move(backends), dim, policy,
                                             options, ingest);
    return Session(std::move(live));
  }

  ShardCoordinatorOptions coordinator_options;
  coordinator_options.num_threads = options.coordinator_threads;
  coordinator_options.queue_capacity = options.queue_capacity;
  auto coordinator = std::make_unique<ShardCoordinator>(
      std::move(backend_ptrs), coordinator_options);
  return Session({}, std::move(backends), std::move(coordinator));
}

}  // namespace gauss
