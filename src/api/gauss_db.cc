#include "api/gauss_db.h"

#include <utility>

#include "common/macros.h"

namespace gauss {

GaussDb GaussDb::CreateInMemory(size_t dim, GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  db.device_ = std::make_unique<InMemoryPageDevice>(options.page_size);
  db.build_pool_ =
      std::make_unique<BufferPool>(db.device_.get(), options.build_cache_pages);
  db.tree_ = std::make_unique<GaussTree>(db.build_pool_.get(), dim,
                                         options.tree);
  db.meta_page_ = db.tree_->meta_page();
  GAUSS_CHECK(db.meta_page_ == kMetaPage);  // OpenFile() depends on this
  return db;
}

GaussDb GaussDb::CreateOnFile(const std::string& path, size_t dim,
                              GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  auto device = std::make_unique<FilePageDevice>(path, options.page_size,
                                                 /*truncate=*/true);
  db.file_device_ = device.get();
  db.device_ = std::move(device);
  db.build_pool_ =
      std::make_unique<BufferPool>(db.device_.get(), options.build_cache_pages);
  db.tree_ = std::make_unique<GaussTree>(db.build_pool_.get(), dim,
                                         options.tree);
  db.meta_page_ = db.tree_->meta_page();
  GAUSS_CHECK(db.meta_page_ == kMetaPage);
  return db;
}

GaussDb GaussDb::OpenFile(const std::string& path, GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  auto device = std::make_unique<FilePageDevice>(path, options.page_size,
                                                 /*truncate=*/false);
  db.file_device_ = device.get();
  db.device_ = std::move(device);
  db.build_pool_ =
      std::make_unique<BufferPool>(db.device_.get(), options.build_cache_pages);
  // The header (magic-checked) lives at page 0 by construction; its options
  // override whatever the caller passed.
  db.tree_ = GaussTree::Open(db.build_pool_.get(), kMetaPage);
  db.options_.tree = db.tree_->options();
  db.dim_ = db.tree_->dim();
  db.meta_page_ = kMetaPage;
  return db;
}

void GaussDb::Build(const PfvDataset& dataset) {
  GAUSS_CHECK_MSG(tree_ != nullptr, "Build after Serve(): build phase is over");
  GAUSS_CHECK_MSG(tree_->size() == 0 && !tree_->store().finalized(),
                  "Build requires an empty database (use Insert to grow one)");
  GAUSS_CHECK_MSG(dataset.dim() == dim_, "dataset dimensionality mismatch");
  tree_->BulkLoad(dataset);
  Finalize();
}

void GaussDb::Insert(const Pfv& pfv) {
  GAUSS_CHECK_MSG(tree_ != nullptr,
                  "Insert after Serve(): build phase is over");
  if (tree_->store().finalized()) tree_->Definalize();
  tree_->Insert(pfv);
}

void GaussDb::Finalize() {
  GAUSS_CHECK_MSG(tree_ != nullptr,
                  "Finalize after Serve(): build phase is over");
  if (!tree_->store().finalized()) tree_->Finalize();
  if (file_device_ != nullptr) file_device_->Sync();
}

Session GaussDb::Serve(ServeOptions options) {
  if (tree_ != nullptr) {
    Finalize();
    // Atomic phase switch: cache the build-side facts, then tear down the
    // build stack (tree first, then its pool — Finalize already flushed)
    // before the serving stack attaches to the same pages.
    size_ = tree_->size();
    meta_page_ = tree_->meta_page();
    tree_.reset();
    build_pool_.reset();
  }
  GAUSS_CHECK_MSG(meta_page_ != kInvalidPageId,
                  "Serve on an unbuilt GaussDb");

  auto pool = std::make_unique<ShardedBufferPool>(
      device_.get(), options.cache_pages, options.num_shards);
  std::unique_ptr<GaussTree> tree = GaussTree::Open(pool.get(), meta_page_);
  size_ = tree->size();
  QueryServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.queue_capacity = options.queue_capacity;
  auto service = std::make_unique<QueryService>(*tree, service_options);
  return Session(std::move(pool), std::move(tree), std::move(service));
}

}  // namespace gauss
