#include "api/gauss_db.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "common/macros.h"

namespace gauss {

namespace {

// Persistent shard manifest at page 0 of a sharded database, written by
// Finalize(). Distinguished from the legacy layout (GaussTree header at
// page 0) by its magic; followed in-page by num_shards PageId entries
// naming each shard tree's header page.
constexpr uint64_t kGaussDbManifestMagic = 0x47415553'53444231ull;  // "GAUSSDB1"
constexpr uint32_t kGaussDbManifestVersion = 1;

struct ManifestLayout {
  uint64_t magic;
  uint32_t version;
  // Page size the database was created with; checked on OpenFile() like the
  // tree header's (a mismatched device maps PageIds to wrong byte offsets).
  uint32_t page_size;
  uint32_t dim;
  uint32_t num_shards;
};

// Shard count bound: nobody needs more partitions than this on one node.
// The manifest (header + PageId per shard) must additionally fit the
// configured page size — checked against it where the shard count is fixed.
constexpr size_t kMaxShards = 64;

size_t ManifestBytes(size_t num_shards) {
  return sizeof(ManifestLayout) + num_shards * sizeof(PageId);
}

}  // namespace

void GaussDb::InitFreshTrees() {
  if (sharded_) {
    GAUSS_CHECK_MSG(ManifestBytes(num_shards()) <= options_.page_size,
                    "shard manifest does not fit the configured page size");
    // The manifest page must be allocated before any tree so it lands on
    // page 0; its contents are written by Finalize().
    const PageId manifest = device_->Allocate();
    GAUSS_CHECK(manifest == kMetaPage);
  }
  const size_t shards = num_shards();
  trees_.reserve(shards);
  shard_metas_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    trees_.push_back(std::make_unique<GaussTree>(build_pool_.get(), dim_,
                                                 options_.tree));
    shard_metas_.push_back(trees_.back()->meta_page());
  }
  // Unsharded: OpenFile() depends on the legacy header landing on page 0.
  if (!sharded_) GAUSS_CHECK(shard_metas_[0] == kMetaPage);
}

void GaussDb::WriteManifest() {
  GAUSS_CHECK(sharded_);
  ManifestLayout manifest;
  std::memset(&manifest, 0, sizeof(manifest));
  manifest.magic = kGaussDbManifestMagic;
  manifest.version = kGaussDbManifestVersion;
  manifest.page_size = options_.page_size;
  manifest.dim = static_cast<uint32_t>(dim_);
  manifest.num_shards = static_cast<uint32_t>(shard_metas_.size());
  std::vector<uint8_t> page(options_.page_size, 0);
  std::memcpy(page.data(), &manifest, sizeof(manifest));
  std::memcpy(page.data() + sizeof(manifest), shard_metas_.data(),
              shard_metas_.size() * sizeof(PageId));
  build_pool_->WritePage(kMetaPage, page.data());
  build_pool_->FlushAll();
}

GaussDb GaussDb::CreateInMemory(size_t dim, GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  db.sharded_ = options.shards.num_shards >= 1;
  if (db.sharded_) {
    GAUSS_CHECK_MSG(options.shards.num_shards <= kMaxShards,
                    "too many shards");
    db.partitioner_ = Partitioner(options.shards.num_shards);
  }
  db.device_ = std::make_unique<InMemoryPageDevice>(options.page_size);
  db.build_pool_ =
      std::make_unique<BufferPool>(db.device_.get(), options.build_cache_pages);
  db.InitFreshTrees();
  return db;
}

GaussDb GaussDb::CreateOnFile(const std::string& path, size_t dim,
                              GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  db.dim_ = dim;
  db.sharded_ = options.shards.num_shards >= 1;
  if (db.sharded_) {
    GAUSS_CHECK_MSG(options.shards.num_shards <= kMaxShards,
                    "too many shards");
    db.partitioner_ = Partitioner(options.shards.num_shards);
  }
  auto device = std::make_unique<FilePageDevice>(path, options.page_size,
                                                 /*truncate=*/true);
  db.file_device_ = device.get();
  db.device_ = std::move(device);
  db.build_pool_ =
      std::make_unique<BufferPool>(db.device_.get(), options.build_cache_pages);
  db.InitFreshTrees();
  return db;
}

GaussDb GaussDb::OpenFile(const std::string& path, GaussDbOptions options) {
  GaussDb db;
  db.options_ = options;
  auto device = std::make_unique<FilePageDevice>(path, options.page_size,
                                                 /*truncate=*/false);
  db.file_device_ = device.get();
  db.device_ = std::move(device);
  db.build_pool_ =
      std::make_unique<BufferPool>(db.device_.get(), options.build_cache_pages);

  // Page 0 is either the shard manifest (sharded layout) or the tree header
  // (legacy layout); the magic decides. Persistent facts override whatever
  // the caller passed.
  ManifestLayout manifest;
  {
    const PageRef page = db.build_pool_->Fetch(kMetaPage);
    std::memcpy(&manifest, page.data(), sizeof(manifest));
    if (manifest.magic == kGaussDbManifestMagic) {
      GAUSS_CHECK_MSG(manifest.version == kGaussDbManifestVersion,
                      "unsupported GaussDb manifest version");
      GAUSS_CHECK_MSG(manifest.page_size == options.page_size,
                      "page size mismatch: the device is opened with a "
                      "different page size than the database was created "
                      "with");
      GAUSS_CHECK_MSG(manifest.num_shards >= 1 &&
                          manifest.num_shards <= kMaxShards &&
                          ManifestBytes(manifest.num_shards) <=
                              options.page_size,
                      "corrupt shard manifest");
      db.sharded_ = true;
      db.partitioner_ = Partitioner(manifest.num_shards);
      db.options_.shards.num_shards = manifest.num_shards;
      db.shard_metas_.resize(manifest.num_shards);
      std::memcpy(db.shard_metas_.data(), page.data() + sizeof(manifest),
                  manifest.num_shards * sizeof(PageId));
    }
  }

  if (db.sharded_) {
    for (const PageId meta : db.shard_metas_) {
      db.trees_.push_back(GaussTree::Open(db.build_pool_.get(), meta));
    }
    db.dim_ = db.trees_[0]->dim();
    GAUSS_CHECK_MSG(db.dim_ == manifest.dim, "corrupt shard manifest");
  } else {
    // Legacy layout: the header (magic-checked by GaussTree::Open) lives at
    // page 0 by construction.
    db.trees_.push_back(GaussTree::Open(db.build_pool_.get(), kMetaPage));
    db.dim_ = db.trees_[0]->dim();
    db.shard_metas_.push_back(kMetaPage);
  }
  db.options_.tree = db.trees_[0]->options();
  for (const auto& tree : db.trees_) {
    GAUSS_CHECK_MSG(tree->dim() == db.dim_,
                    "shard trees disagree on dimensionality");
  }
  return db;
}

size_t GaussDb::size() const {
  if (trees_.empty()) return size_;
  size_t total = 0;
  for (const auto& tree : trees_) total += tree->size();
  return total;
}

bool GaussDb::finalized() const {
  for (const auto& tree : trees_) {
    if (!tree->store().finalized()) return false;
  }
  return true;
}

void GaussDb::Build(const PfvDataset& dataset) {
  GAUSS_CHECK_MSG(!trees_.empty(),
                  "Build after Serve(): build phase is over");
  GAUSS_CHECK_MSG(size() == 0 && !finalized(),
                  "Build requires an empty database (use Insert to grow one)");
  GAUSS_CHECK_MSG(dataset.dim() == dim_, "dataset dimensionality mismatch");
  if (sharded_) {
    const std::vector<PfvDataset> parts = partitioner_.Split(dataset);
    for (size_t s = 0; s < trees_.size(); ++s) {
      trees_[s]->BulkLoad(parts[s]);
    }
  } else {
    trees_[0]->BulkLoad(dataset);
  }
  Finalize();
}

void GaussDb::Insert(const Pfv& pfv) {
  GAUSS_CHECK_MSG(!trees_.empty(),
                  "Insert after Serve(): build phase is over");
  GaussTree* tree =
      trees_[sharded_ ? partitioner_.ShardOf(pfv.id) : 0].get();
  if (tree->store().finalized()) tree->Definalize();
  tree->Insert(pfv);
}

void GaussDb::Finalize() {
  GAUSS_CHECK_MSG(!trees_.empty(),
                  "Finalize after Serve(): build phase is over");
  for (const auto& tree : trees_) {
    if (!tree->store().finalized()) tree->Finalize();
  }
  if (sharded_) WriteManifest();
  if (file_device_ != nullptr) file_device_->Sync();
}

Session GaussDb::Serve(ServeOptions options) {
  if (!trees_.empty()) {
    Finalize();
    // Atomic phase switch: tear down the build stack (trees first, then
    // their pool — Finalize already flushed) before the serving stack
    // attaches to the same pages. size_ is re-derived from the reopened
    // serving trees below.
    trees_.clear();
    build_pool_.reset();
  }
  GAUSS_CHECK_MSG(!shard_metas_.empty(), "Serve on an unbuilt GaussDb");

  const size_t shards = shard_metas_.size();
  size_t total_workers = options.num_workers;
  if (total_workers == 0) {
    total_workers = std::thread::hardware_concurrency();
    if (total_workers == 0) total_workers = 1;
  }
  const size_t workers_per_shard = std::max<size_t>(1, total_workers / shards);
  // Every per-shard pool must be able to hold at least a root-to-leaf path
  // plus headers, whatever the split says.
  const size_t pages_per_shard = std::max<size_t>(16, options.cache_pages / shards);

  std::vector<ShardServingStack> stacks;
  stacks.reserve(shards);
  size_t total_size = 0;
  for (size_t s = 0; s < shards; ++s) {
    ShardServingStack stack;
    stack.pool = std::make_unique<ShardedBufferPool>(
        device_.get(), pages_per_shard, options.num_shards);
    stack.tree = GaussTree::Open(stack.pool.get(), shard_metas_[s]);
    total_size += stack.tree->size();
    QueryServiceOptions service_options;
    service_options.num_workers = workers_per_shard;
    service_options.queue_capacity = options.queue_capacity;
    service_options.prefetch_depth = options.prefetch_depth;
    stack.service =
        std::make_unique<QueryService>(*stack.tree, service_options);
    stacks.push_back(std::move(stack));
  }
  size_ = total_size;

  std::unique_ptr<ShardCoordinator> coordinator;
  if (sharded_) {
    std::vector<QueryService*> services;
    services.reserve(shards);
    for (const ShardServingStack& stack : stacks) {
      services.push_back(stack.service.get());
    }
    ShardCoordinatorOptions coordinator_options;
    coordinator_options.num_threads = options.coordinator_threads;
    coordinator_options.queue_capacity = options.queue_capacity;
    coordinator = std::make_unique<ShardCoordinator>(std::move(services),
                                                     coordinator_options);
  }
  return Session(std::move(stacks), std::move(coordinator));
}

}  // namespace gauss
