#ifndef GAUSS_NET_WIRE_H_
#define GAUSS_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "net/net_error.h"
#include "net/shard_backend.h"
#include "service/query.h"
#include "service/service_stats.h"
#include "storage/io_stats.h"

namespace gauss {

// ================================ Wire format ===============================
//
// The binary protocol between an RpcBackend (coordinator side) and a shard
// server (net/shard_server.h / examples/gauss_shardd). See src/net/README.md
// for the full description; the invariants:
//
//   frame   := u32 payload_len | payload            (payload_len in bytes)
//   payload := u8 msg_type | u64 request_id | body
//
// All integers are little-endian; doubles travel as their raw IEEE-754 bit
// pattern in a u64 — bit-exact round-trips are what makes the loopback
// differential (RpcBackend vs InProcessBackend, byte-identical answers)
// possible. payload_len is capped at kMaxFramePayload; a larger prefix is a
// protocol error, not an allocation.
//
// Versioning: the connection opens with kHello/kHelloAck carrying a magic
// number and kWireVersion. There is no in-version extensibility — any format
// change bumps kWireVersion, and a version mismatch fails the handshake with
// NetErrorCode::kProtocolMismatch (typed, never a misparse). request_id
// correlates replies to requests; replies may arrive out of order.
//
// Every decoder is bounds-checked and returns a typed NetError on malformed
// input (truncated body, trailing bytes, unknown enum value) — decoding
// never aborts, whatever the bytes.
// ============================================================================

inline constexpr uint64_t kWireMagic = 0x4754424a47415553ull;  // "GAUSSJBTG"
// v2: Query bodies carry denominator_target_gap; kFetchSketch/kSketchReply
// added (kError renumbered 10 -> 12 to keep it the last tag).
inline constexpr uint32_t kWireVersion = 2;
inline constexpr size_t kMaxFramePayload = 1u << 24;  // 16 MiB

enum class MsgType : uint8_t {
  kHello = 1,         // client -> server: magic + version
  kHelloAck = 2,      // server -> client: magic + version + dim + tree size
  kStart = 3,         // client -> server: traversal handle + Query descriptor
  kStartReply = 4,    // server -> client: ShardPartial
  kRefine = 5,        // client -> server: batched RefineSpecs
  kRefineReply = 6,   // server -> client: RefineUpdates (positional)
  kRelease = 7,       // client -> server: traversal handles (no reply)
  kStats = 8,         // client -> server: empty body
  kStatsReply = 9,    // server -> client: IoStats + ServiceStats
  kFetchSketch = 10,  // client -> server: empty body
  kSketchReply = 11,  // server -> client: ShardSketch
  kError = 12,        // server -> client: NetError replacing a reply
};

// --------------------------- primitive accessors ----------------------------

// Appends little-endian primitives to a byte vector.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

 private:
  std::vector<uint8_t>* out_;
};

// Bounds-checked little-endian reads; every accessor returns false (and the
// reader goes sticky-failed) once the input is exhausted.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : p_(data), remaining_(size) {}

  bool U8(uint8_t* v) {
    if (!Take(1)) return false;
    *v = p_[-1];
    return true;
  }
  bool U32(uint32_t* v) {
    if (!Take(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p_[i - 4]) << (8 * i);
    return true;
  }
  bool U64(uint64_t* v) {
    if (!Take(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p_[i - 8]) << (8 * i);
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return remaining_; }

 private:
  bool Take(size_t n) {
    if (!ok_ || remaining_ < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    remaining_ -= n;
    return true;
  }

  const uint8_t* p_;
  size_t remaining_;
  bool ok_ = true;
};

// --------------------------------- framing ----------------------------------

struct Frame {
  MsgType type = MsgType::kError;
  uint64_t request_id = 0;
  std::vector<uint8_t> body;
};

// Appends one complete frame (length prefix + payload) to `wire`.
void AppendFrame(MsgType type, uint64_t request_id,
                 const std::vector<uint8_t>& body, std::vector<uint8_t>* wire);

enum class FrameParse : uint8_t {
  kFrame,     // *out holds a frame, *consumed bytes were eaten
  kNeedMore,  // the buffer holds a frame prefix; read more and retry
  kError,     // malformed stream (oversized prefix, unknown tag); *error set
};

// Parses one frame from the front of [data, data+size). Never consumes bytes
// on kNeedMore/kError.
FrameParse ParseFrame(const uint8_t* data, size_t size, Frame* out,
                      size_t* consumed, NetError* error);

// Typed handshake verdict for a received magic + version pair.
NetError CheckHandshake(uint64_t magic, uint32_t version);

// -------------------------------- messages ----------------------------------
//
// Encode* appends the message *body* (framing is separate); Decode* parses a
// complete body and fails with NetErrorCode::kProtocolError on truncation,
// trailing bytes, or invalid enum values.

struct WireHello {
  uint64_t magic = kWireMagic;
  uint32_t version = kWireVersion;
};

struct WireHelloAck {
  uint64_t magic = kWireMagic;
  uint32_t version = kWireVersion;
  uint32_t dim = 0;
  uint64_t tree_size = 0;
};

struct WireStart {
  uint64_t traversal = 0;
  std::optional<Query> query;  // engaged after a successful decode
};

void EncodeHello(const WireHello& msg, std::vector<uint8_t>* body);
NetError DecodeHello(const uint8_t* data, size_t size, WireHello* out);

void EncodeHelloAck(const WireHelloAck& msg, std::vector<uint8_t>* body);
NetError DecodeHelloAck(const uint8_t* data, size_t size, WireHelloAck* out);

// The Query descriptor serializer: kind, probe pfv, kind-specific options
// (k / threshold, accuracy, refinement and membership flags, prefetch
// depth), and the deadline as a *relative* budget in nanoseconds (-1 = no
// deadline) — absolute steady_clock instants don't transfer across hosts.
// Decoding re-anchors the budget on the receiver's clock.
void EncodeQuery(const Query& query, std::vector<uint8_t>* body);
NetError DecodeQuery(WireReader& reader, std::optional<Query>* out);

void EncodeStart(uint64_t traversal, const Query& query,
                 std::vector<uint8_t>* body);
NetError DecodeStart(const uint8_t* data, size_t size, WireStart* out);

void EncodeStartReply(const ShardPartial& partial, std::vector<uint8_t>* body);
NetError DecodeStartReply(const uint8_t* data, size_t size, ShardPartial* out);

void EncodeRefine(const std::vector<RefineSpec>& specs,
                  std::vector<uint8_t>* body);
NetError DecodeRefine(const uint8_t* data, size_t size,
                      std::vector<RefineSpec>* out);

void EncodeRefineReply(const std::vector<RefineUpdate>& updates,
                       std::vector<uint8_t>* body);
NetError DecodeRefineReply(const uint8_t* data, size_t size,
                           std::vector<RefineUpdate>* out);

void EncodeRelease(const std::vector<uint64_t>& traversals,
                   std::vector<uint8_t>* body);
NetError DecodeRelease(const uint8_t* data, size_t size,
                       std::vector<uint64_t>* out);

void EncodeIoStats(const IoStats& io, WireWriter& writer);
NetError DecodeIoStats(WireReader& reader, IoStats* out);

void EncodeServiceStats(const ServiceStats& stats, WireWriter& writer);
NetError DecodeServiceStats(WireReader& reader, ServiceStats* out);

void EncodeStatsReply(const IoStats& io, const ServiceStats& service,
                      std::vector<uint8_t>* body);
NetError DecodeStatsReply(const uint8_t* data, size_t size, IoStats* io,
                          ServiceStats* service);

// kFetchSketch travels with an empty body; the reply is the shard's coarse
// denominator sketch. `dim` rides explicitly so the decoder can validate
// every entry's bounds count against it.
void EncodeSketchReply(const ShardSketch& sketch, size_t dim,
                       std::vector<uint8_t>* body);
NetError DecodeSketchReply(const uint8_t* data, size_t size, ShardSketch* out);

void EncodeError(const NetError& error, std::vector<uint8_t>* body);
NetError DecodeError(const uint8_t* data, size_t size, NetError* out);

}  // namespace gauss

#endif  // GAUSS_NET_WIRE_H_
