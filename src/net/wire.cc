#include "net/wire.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

namespace gauss {

namespace {

NetError ProtocolError(const char* what) {
  return {NetErrorCode::kProtocolError, what};
}

// A complete-body decode must consume exactly the advertised bytes: both a
// short body and trailing garbage mean the peer and we disagree about the
// format — typed error, never a misparse.
NetError Finish(const WireReader& reader, const char* what) {
  if (!reader.ok()) {
    return {NetErrorCode::kProtocolError,
            std::string("truncated ") + what + " body"};
  }
  if (reader.remaining() != 0) {
    return {NetErrorCode::kProtocolError,
            std::string("trailing bytes after ") + what + " body"};
  }
  return {};
}

// Guard for untrusted element counts: the count is a lie unless at least
// `count * min_stride` bytes remain, so a hostile count can never drive a
// large allocation.
bool PlausibleCount(const WireReader& reader, uint64_t count,
                    size_t min_stride) {
  return count <= reader.remaining() / min_stride;
}

}  // namespace

// --------------------------------- framing ----------------------------------

void AppendFrame(MsgType type, uint64_t request_id,
                 const std::vector<uint8_t>& body, std::vector<uint8_t>* wire) {
  WireWriter writer(wire);
  writer.U32(static_cast<uint32_t>(1 + 8 + body.size()));
  writer.U8(static_cast<uint8_t>(type));
  writer.U64(request_id);
  wire->insert(wire->end(), body.begin(), body.end());
}

FrameParse ParseFrame(const uint8_t* data, size_t size, Frame* out,
                      size_t* consumed, NetError* error) {
  *consumed = 0;
  if (size < 4) return FrameParse::kNeedMore;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(data[i]) << (8 * i);
  }
  if (payload_len > kMaxFramePayload) {
    *error = {NetErrorCode::kProtocolError, "oversized frame length prefix"};
    return FrameParse::kError;
  }
  if (payload_len < 1 + 8) {
    *error = {NetErrorCode::kProtocolError, "undersized frame payload"};
    return FrameParse::kError;
  }
  if (size < 4 + static_cast<size_t>(payload_len)) return FrameParse::kNeedMore;

  const uint8_t tag = data[4];
  if (tag < static_cast<uint8_t>(MsgType::kHello) ||
      tag > static_cast<uint8_t>(MsgType::kError)) {
    *error = {NetErrorCode::kProtocolError, "unknown message tag"};
    return FrameParse::kError;
  }
  out->type = static_cast<MsgType>(tag);
  out->request_id = 0;
  for (int i = 0; i < 8; ++i) {
    out->request_id |= static_cast<uint64_t>(data[5 + i]) << (8 * i);
  }
  out->body.assign(data + 4 + 1 + 8, data + 4 + payload_len);
  *consumed = 4 + static_cast<size_t>(payload_len);
  return FrameParse::kFrame;
}

NetError CheckHandshake(uint64_t magic, uint32_t version) {
  if (magic != kWireMagic) {
    return {NetErrorCode::kProtocolMismatch, "bad magic (not a gauss shard)"};
  }
  if (version != kWireVersion) {
    return {NetErrorCode::kProtocolMismatch,
            "wire version " + std::to_string(version) + " != " +
                std::to_string(kWireVersion)};
  }
  return {};
}

// -------------------------------- handshake ---------------------------------

void EncodeHello(const WireHello& msg, std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U64(msg.magic);
  writer.U32(msg.version);
}

NetError DecodeHello(const uint8_t* data, size_t size, WireHello* out) {
  WireReader reader(data, size);
  reader.U64(&out->magic);
  reader.U32(&out->version);
  return Finish(reader, "hello");
}

void EncodeHelloAck(const WireHelloAck& msg, std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U64(msg.magic);
  writer.U32(msg.version);
  writer.U32(msg.dim);
  writer.U64(msg.tree_size);
}

NetError DecodeHelloAck(const uint8_t* data, size_t size, WireHelloAck* out) {
  WireReader reader(data, size);
  reader.U64(&out->magic);
  reader.U32(&out->version);
  reader.U32(&out->dim);
  reader.U64(&out->tree_size);
  return Finish(reader, "hello-ack");
}

// ----------------------------- query descriptor -----------------------------

void EncodeQuery(const Query& query, std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U8(static_cast<uint8_t>(query.kind()));
  const Pfv& pfv = query.pfv();
  writer.U64(pfv.id);
  writer.U32(static_cast<uint32_t>(pfv.mu.size()));
  for (const double v : pfv.mu) writer.F64(v);
  for (const double v : pfv.sigma) writer.F64(v);
  if (query.kind() == QueryKind::kMliq) {
    const MliqOptions& options = query.mliq_options();
    writer.U64(query.k());
    writer.U8(options.refine_probabilities ? 1 : 0);
    writer.F64(options.probability_accuracy);
    writer.U64(options.prefetch_depth);
    writer.F64(options.denominator_target_gap);
    writer.F64(options.density_floor_log);
  } else {
    const TiqOptions& options = query.tiq_options();
    writer.F64(query.threshold());
    writer.U8(options.exact_membership ? 1 : 0);
    writer.U8(options.refine_probabilities ? 1 : 0);
    writer.F64(options.probability_accuracy);
    writer.U64(options.prefetch_depth);
    writer.F64(options.denominator_target_gap);
    writer.F64(options.denominator_floor);
  }
  // Deadlines travel as the remaining budget at encode time; the receiver
  // re-anchors on its own steady clock.
  int64_t budget_ns = -1;
  if (query.has_deadline()) {
    const auto remaining =
        query.deadline() - std::chrono::steady_clock::now();
    budget_ns = std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::nanoseconds>(remaining)
               .count());
  }
  writer.I64(budget_ns);
}

NetError DecodeQuery(WireReader& reader, std::optional<Query>* out) {
  uint8_t kind = 0;
  Pfv pfv;
  uint32_t dim = 0;
  reader.U8(&kind);
  reader.U64(&pfv.id);
  reader.U32(&dim);
  if (!reader.ok()) return ProtocolError("truncated query header");
  if (kind > static_cast<uint8_t>(QueryKind::kTiq)) {
    return ProtocolError("unknown query kind");
  }
  if (!PlausibleCount(reader, dim, 2 * sizeof(double))) {
    return ProtocolError("query dimensionality exceeds body");
  }
  pfv.mu.resize(dim);
  pfv.sigma.resize(dim);
  for (double& v : pfv.mu) reader.F64(&v);
  for (double& v : pfv.sigma) reader.F64(&v);

  std::optional<Query> query;
  if (static_cast<QueryKind>(kind) == QueryKind::kMliq) {
    uint64_t k = 0;
    uint8_t refine = 0;
    MliqOptions options;
    reader.U64(&k);
    reader.U8(&refine);
    reader.F64(&options.probability_accuracy);
    uint64_t prefetch_depth = 0;
    reader.U64(&prefetch_depth);
    reader.F64(&options.denominator_target_gap);
    reader.F64(&options.density_floor_log);
    if (!reader.ok()) return ProtocolError("truncated mliq parameters");
    options.refine_probabilities = refine != 0;
    options.prefetch_depth = static_cast<size_t>(prefetch_depth);
    query = Query::Mliq(std::move(pfv), static_cast<size_t>(k), options);
  } else {
    double threshold = 0.0;
    uint8_t exact = 0, refine = 0;
    TiqOptions options;
    reader.F64(&threshold);
    reader.U8(&exact);
    reader.U8(&refine);
    reader.F64(&options.probability_accuracy);
    uint64_t prefetch_depth = 0;
    reader.U64(&prefetch_depth);
    reader.F64(&options.denominator_target_gap);
    reader.F64(&options.denominator_floor);
    if (!reader.ok()) return ProtocolError("truncated tiq parameters");
    options.exact_membership = exact != 0;
    options.refine_probabilities = refine != 0;
    options.prefetch_depth = static_cast<size_t>(prefetch_depth);
    query = Query::Tiq(std::move(pfv), threshold, options);
  }

  int64_t budget_ns = -1;
  if (!reader.I64(&budget_ns)) return ProtocolError("truncated query deadline");
  if (budget_ns >= 0) {
    query->DeadlineAfter(std::chrono::nanoseconds(budget_ns));
  }
  *out = std::move(query);
  return {};
}

void EncodeStart(uint64_t traversal, const Query& query,
                 std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U64(traversal);
  EncodeQuery(query, body);
}

NetError DecodeStart(const uint8_t* data, size_t size, WireStart* out) {
  WireReader reader(data, size);
  if (!reader.U64(&out->traversal)) {
    return ProtocolError("truncated start body");
  }
  if (NetError error = DecodeQuery(reader, &out->query); !error.ok()) {
    return error;
  }
  return Finish(reader, "start");
}

// ------------------------------- start reply --------------------------------

void EncodeStartReply(const ShardPartial& partial,
                      std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.F64(partial.log_ref);
  writer.U64(partial.tree_size);
  writer.F64(partial.denominator_lo);
  writer.F64(partial.denominator_hi);
  writer.U8(partial.exhausted ? 1 : 0);
  writer.U64(partial.nodes_visited);
  writer.U64(partial.leaf_nodes_visited);
  writer.U64(partial.objects_evaluated);
  writer.U32(static_cast<uint32_t>(partial.items.size()));
  for (const ScoredObject& item : partial.items) {
    writer.U64(item.id);
    writer.F64(item.scaled_density);
    writer.F64(item.log_density);
  }
}

NetError DecodeStartReply(const uint8_t* data, size_t size,
                          ShardPartial* out) {
  WireReader reader(data, size);
  uint8_t exhausted = 0;
  uint32_t item_count = 0;
  reader.F64(&out->log_ref);
  reader.U64(&out->tree_size);
  reader.F64(&out->denominator_lo);
  reader.F64(&out->denominator_hi);
  reader.U8(&exhausted);
  reader.U64(&out->nodes_visited);
  reader.U64(&out->leaf_nodes_visited);
  reader.U64(&out->objects_evaluated);
  reader.U32(&item_count);
  if (!reader.ok()) return ProtocolError("truncated start-reply header");
  out->exhausted = exhausted != 0;
  if (!PlausibleCount(reader, item_count, 8 + 8 + 8)) {
    return ProtocolError("start-reply item count exceeds body");
  }
  out->items.resize(item_count);
  for (ScoredObject& item : out->items) {
    reader.U64(&item.id);
    reader.F64(&item.scaled_density);
    reader.F64(&item.log_density);
  }
  return Finish(reader, "start-reply");
}

// ------------------------------ refine round --------------------------------

void EncodeRefine(const std::vector<RefineSpec>& specs,
                  std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U32(static_cast<uint32_t>(specs.size()));
  for (const RefineSpec& spec : specs) {
    writer.U64(spec.traversal);
    writer.F64(spec.max_gap);
  }
}

NetError DecodeRefine(const uint8_t* data, size_t size,
                      std::vector<RefineSpec>* out) {
  WireReader reader(data, size);
  uint32_t count = 0;
  if (!reader.U32(&count)) return ProtocolError("truncated refine body");
  if (!PlausibleCount(reader, count, 8 + 8)) {
    return ProtocolError("refine spec count exceeds body");
  }
  out->resize(count);
  for (RefineSpec& spec : *out) {
    reader.U64(&spec.traversal);
    reader.F64(&spec.max_gap);
  }
  return Finish(reader, "refine");
}

void EncodeRefineReply(const std::vector<RefineUpdate>& updates,
                       std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U32(static_cast<uint32_t>(updates.size()));
  for (const RefineUpdate& update : updates) {
    writer.F64(update.denominator_lo);
    writer.F64(update.denominator_hi);
    writer.U8(update.exhausted ? 1 : 0);
    writer.U64(update.nodes_visited);
    writer.U64(update.leaf_nodes_visited);
    writer.U64(update.objects_evaluated);
  }
}

NetError DecodeRefineReply(const uint8_t* data, size_t size,
                           std::vector<RefineUpdate>* out) {
  WireReader reader(data, size);
  uint32_t count = 0;
  if (!reader.U32(&count)) return ProtocolError("truncated refine-reply body");
  if (!PlausibleCount(reader, count, 8 + 8 + 1 + 8 + 8 + 8)) {
    return ProtocolError("refine-reply update count exceeds body");
  }
  out->resize(count);
  for (RefineUpdate& update : *out) {
    uint8_t exhausted = 0;
    reader.F64(&update.denominator_lo);
    reader.F64(&update.denominator_hi);
    reader.U8(&exhausted);
    reader.U64(&update.nodes_visited);
    reader.U64(&update.leaf_nodes_visited);
    reader.U64(&update.objects_evaluated);
    update.exhausted = exhausted != 0;
  }
  return Finish(reader, "refine-reply");
}

// --------------------------------- release ----------------------------------

void EncodeRelease(const std::vector<uint64_t>& traversals,
                   std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U32(static_cast<uint32_t>(traversals.size()));
  for (const uint64_t id : traversals) writer.U64(id);
}

NetError DecodeRelease(const uint8_t* data, size_t size,
                       std::vector<uint64_t>* out) {
  WireReader reader(data, size);
  uint32_t count = 0;
  if (!reader.U32(&count)) return ProtocolError("truncated release body");
  if (!PlausibleCount(reader, count, 8)) {
    return ProtocolError("release handle count exceeds body");
  }
  out->resize(count);
  for (uint64_t& id : *out) reader.U64(&id);
  return Finish(reader, "release");
}

// ---------------------------------- stats -----------------------------------

void EncodeIoStats(const IoStats& io, WireWriter& writer) {
  writer.U64(io.logical_reads);
  writer.U64(io.physical_reads);
  writer.U64(io.physical_writes);
  writer.U64(io.evictions);
  writer.U64(io.prefetch_issued);
  writer.U64(io.prefetch_hits);
  writer.U64(io.prefetch_wasted);
}

NetError DecodeIoStats(WireReader& reader, IoStats* out) {
  reader.U64(&out->logical_reads);
  reader.U64(&out->physical_reads);
  reader.U64(&out->physical_writes);
  reader.U64(&out->evictions);
  reader.U64(&out->prefetch_issued);
  reader.U64(&out->prefetch_hits);
  reader.U64(&out->prefetch_wasted);
  if (!reader.ok()) return ProtocolError("truncated io-stats");
  return {};
}

void EncodeServiceStats(const ServiceStats& stats, WireWriter& writer) {
  writer.U64(stats.mliq_queries);
  writer.U64(stats.tiq_queries);
  writer.U64(stats.shed_queries);
  writer.U64(stats.deadline_exceeded_queries);
  writer.U64(stats.shard_error_queries);
  writer.U64(stats.refine_rounds);
  writer.U64(stats.refine_batched_queries);
  writer.F64(stats.wall_seconds);
  writer.F64(stats.qps);
  writer.U64(stats.latency.count);
  writer.F64(stats.latency.mean_us);
  writer.F64(stats.latency.p50_us);
  writer.F64(stats.latency.p90_us);
  writer.F64(stats.latency.p99_us);
  writer.F64(stats.latency.max_us);
  EncodeIoStats(stats.io, writer);
  writer.U64(stats.nodes_visited);
  writer.U64(stats.leaf_nodes_visited);
  writer.U64(stats.objects_evaluated);
}

NetError DecodeServiceStats(WireReader& reader, ServiceStats* out) {
  reader.U64(&out->mliq_queries);
  reader.U64(&out->tiq_queries);
  reader.U64(&out->shed_queries);
  reader.U64(&out->deadline_exceeded_queries);
  reader.U64(&out->shard_error_queries);
  reader.U64(&out->refine_rounds);
  reader.U64(&out->refine_batched_queries);
  reader.F64(&out->wall_seconds);
  reader.F64(&out->qps);
  reader.U64(&out->latency.count);
  reader.F64(&out->latency.mean_us);
  reader.F64(&out->latency.p50_us);
  reader.F64(&out->latency.p90_us);
  reader.F64(&out->latency.p99_us);
  reader.F64(&out->latency.max_us);
  if (NetError error = DecodeIoStats(reader, &out->io); !error.ok()) {
    return error;
  }
  reader.U64(&out->nodes_visited);
  reader.U64(&out->leaf_nodes_visited);
  reader.U64(&out->objects_evaluated);
  if (!reader.ok()) return ProtocolError("truncated service-stats");
  return {};
}

void EncodeStatsReply(const IoStats& io, const ServiceStats& service,
                      std::vector<uint8_t>* body) {
  WireWriter writer(body);
  EncodeIoStats(io, writer);
  EncodeServiceStats(service, writer);
}

NetError DecodeStatsReply(const uint8_t* data, size_t size, IoStats* io,
                          ServiceStats* service) {
  WireReader reader(data, size);
  if (NetError error = DecodeIoStats(reader, io); !error.ok()) return error;
  if (NetError error = DecodeServiceStats(reader, service); !error.ok()) {
    return error;
  }
  return Finish(reader, "stats-reply");
}

// ---------------------------------- sketch ----------------------------------

namespace {

void EncodeDimBounds(const DimBounds& b, WireWriter& writer) {
  writer.F64(b.mu_lo);
  writer.F64(b.mu_hi);
  writer.F64(b.sigma_lo);
  writer.F64(b.sigma_hi);
}

void DecodeDimBounds(WireReader& reader, DimBounds* b) {
  reader.F64(&b->mu_lo);
  reader.F64(&b->mu_hi);
  reader.F64(&b->sigma_lo);
  reader.F64(&b->sigma_hi);
}

}  // namespace

void EncodeSketchReply(const ShardSketch& sketch, size_t dim,
                       std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U64(sketch.tree_size);
  writer.U8(static_cast<uint8_t>(sketch.sigma_policy));
  writer.U32(sketch.tree_size > 0 ? static_cast<uint32_t>(dim) : 0);
  if (sketch.tree_size > 0) {
    for (const DimBounds& b : sketch.root_bounds) EncodeDimBounds(b, writer);
    writer.U32(static_cast<uint32_t>(sketch.entries.size()));
    for (const ShardSketchEntry& entry : sketch.entries) {
      writer.U32(entry.count);
      for (const DimBounds& b : entry.bounds) EncodeDimBounds(b, writer);
    }
  }
}

NetError DecodeSketchReply(const uint8_t* data, size_t size,
                           ShardSketch* out) {
  WireReader reader(data, size);
  uint8_t policy = 0;
  uint32_t dim = 0;
  reader.U64(&out->tree_size);
  reader.U8(&policy);
  reader.U32(&dim);
  if (!reader.ok()) return ProtocolError("truncated sketch header");
  if (policy > static_cast<uint8_t>(SigmaPolicy::kAdditive)) {
    return ProtocolError("unknown sigma policy");
  }
  out->sigma_policy = static_cast<SigmaPolicy>(policy);
  out->root_bounds.clear();
  out->entries.clear();
  if (out->tree_size == 0) return Finish(reader, "sketch-reply");
  if (dim == 0) return ProtocolError("sketch dimensionality is zero");
  const size_t bounds_bytes = static_cast<size_t>(dim) * 4 * sizeof(double);
  if (!PlausibleCount(reader, dim, 4 * sizeof(double))) {
    return ProtocolError("sketch dimensionality exceeds body");
  }
  out->root_bounds.resize(dim);
  for (DimBounds& b : out->root_bounds) DecodeDimBounds(reader, &b);
  uint32_t entry_count = 0;
  if (!reader.U32(&entry_count)) {
    return ProtocolError("truncated sketch entry count");
  }
  if (!PlausibleCount(reader, entry_count, 4 + bounds_bytes)) {
    return ProtocolError("sketch entry count exceeds body");
  }
  out->entries.resize(entry_count);
  for (ShardSketchEntry& entry : out->entries) {
    reader.U32(&entry.count);
    entry.bounds.resize(dim);
    for (DimBounds& b : entry.bounds) DecodeDimBounds(reader, &b);
  }
  return Finish(reader, "sketch-reply");
}

// ---------------------------------- error -----------------------------------

void EncodeError(const NetError& error, std::vector<uint8_t>* body) {
  WireWriter writer(body);
  writer.U8(static_cast<uint8_t>(error.code));
  writer.U32(static_cast<uint32_t>(error.message.size()));
  body->insert(body->end(), error.message.begin(), error.message.end());
}

NetError DecodeError(const uint8_t* data, size_t size, NetError* out) {
  WireReader reader(data, size);
  uint8_t code = 0;
  uint32_t length = 0;
  reader.U8(&code);
  reader.U32(&length);
  if (!reader.ok()) return ProtocolError("truncated error body");
  if (code > static_cast<uint8_t>(NetErrorCode::kDeadlineExceeded)) {
    return ProtocolError("unknown error code");
  }
  if (length != reader.remaining()) {
    return ProtocolError("error message length mismatch");
  }
  out->code = static_cast<NetErrorCode>(code);
  out->message.assign(data + (size - reader.remaining()),
                      data + size);
  return {};
}

}  // namespace gauss
