#ifndef GAUSS_NET_SOCKET_H_
#define GAUSS_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "net/net_error.h"

namespace gauss {

// Thin RAII TCP layer under the wire protocol: non-blocking sockets driven
// by poll(2), so every operation takes an absolute steady_clock deadline and
// fails with NetErrorCode::kTimeout instead of blocking forever — this is
// how per-request deadlines map onto the socket. Shutdown() from another
// thread wakes any blocked poll (the reader of a dying connection sees
// kPeerClosed promptly). SIGPIPE is never raised (MSG_NOSIGNAL).

using SocketDeadline = std::chrono::steady_clock::time_point;

// "No deadline": poll indefinitely (still woken by Shutdown()).
inline SocketDeadline NoDeadline() { return SocketDeadline::max(); }

class TcpSocket {
 public:
  TcpSocket() = default;
  // Takes ownership of a connected fd and switches it to non-blocking.
  explicit TcpSocket(int fd);
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // Resolves host:port (numeric or named host) and connects within
  // `timeout`. Returns an invalid socket and sets *error on failure
  // (kConnectFailed / kTimeout).
  static TcpSocket Connect(const std::string& host, uint16_t port,
                           std::chrono::milliseconds timeout, NetError* error);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Half-closes both directions: blocked peers and local poll()ers wake and
  // observe EOF. Idempotent; safe to call from another thread while I/O is
  // in flight (the fd itself stays open until destruction, so there is no
  // fd-reuse race).
  void Shutdown();
  void Close();

  // Sends the whole buffer or fails: kTimeout past the deadline, kPeerClosed
  // on a reset/closed connection, kIoError otherwise.
  NetError SendAll(const void* data, size_t size, SocketDeadline deadline);

  // Receives exactly `size` bytes or fails; an orderly EOF mid-read is
  // kPeerClosed.
  NetError RecvAll(void* data, size_t size, SocketDeadline deadline);

  // Waits until the socket is readable (or EOF/error is pending). kTimeout
  // past the deadline.
  NetError WaitReadable(SocketDeadline deadline);

  // Non-blocking read of up to `size` bytes. kOk with *received == 0 means
  // "nothing available right now"; an orderly EOF is kPeerClosed.
  NetError RecvSome(void* data, size_t size, size_t* received);

 private:
  int fd_ = -1;
};

// Listening socket bound to host:port (port 0 picks an ephemeral port —
// what the loopback tests use). Accept() blocks until a connection arrives
// or Shutdown() is called from another thread (via a self-pipe, so the wake
// is race-free).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static TcpListener Listen(const std::string& host, uint16_t port,
                            NetError* error);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  // Blocks for the next connection. After Shutdown(), returns an invalid
  // socket with kPeerClosed.
  TcpSocket Accept(NetError* error);

  // Wakes every blocked Accept() permanently. Idempotent, thread-safe.
  void Shutdown();

 private:
  void CloseFds();

  int fd_ = -1;
  int wake_read_ = -1;   // self-pipe: Shutdown() writes, Accept() polls
  int wake_write_ = -1;
  uint16_t port_ = 0;
};

}  // namespace gauss

#endif  // GAUSS_NET_SOCKET_H_
