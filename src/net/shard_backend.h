#ifndef GAUSS_NET_SHARD_BACKEND_H_
#define GAUSS_NET_SHARD_BACKEND_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gausstree/mliq.h"
#include "gausstree/query_common.h"
#include "gausstree/tiq.h"
#include "net/net_error.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service/service_stats.h"
#include "storage/io_stats.h"

namespace gauss {

// ============================== ShardBackend ================================
//
// The transport seam of a sharded GaussDb: everything a ShardCoordinator
// needs from one shard, abstracted so the shard may live in this process
// (InProcessBackend over a QueryService) or on another host (RpcBackend over
// the wire protocol in net/wire.h, served by net/shard_server.h /
// examples/gauss_shardd). The coordinator's merge mathematics — rebase the
// per-shard denominator intervals onto a common reference scale, sum them,
// and drive mass-proportional refinement rounds (water-filled absolute gap
// targets; see service/shard_coordinator.h) until the combined interval
// certifies the answer — is identical over both; the loopback differential
// section of tests/shard_equivalence_test.cc proves the answers
// byte-identical.
//
// Protocol, per query:
//   1. Start(traversal, query) runs the shard-local traversal (MLIQ top-k /
//      TIQ candidate discovery; under the mass-proportional policy the
//      coordinator suppresses shard-local relative refinement and plants an
//      absolute denominator gap target instead) and returns the shard's
//      partial answer: reference scale, denominator interval, items. The
//      traversal stays resumable behind the caller-chosen `traversal`
//      handle.
//   2. Refine({traversal, max_gap}...) resumes denominator refinement for a
//      *batch* of traversals — one round trip per shard per refinement
//      round, no matter how many unconverged queries ride in it (see
//      RefineChannel below).
//   3. Release(traversals) frees the shard-side traversal state once the
//      coordinator has certified (or abandoned) the query.
//
// Failure model: Start/Refine complete with a typed NetError instead of
// throwing or hanging; a coordinator maps any failure to a per-query
// QueryResponse::Status::kShardError. InProcessBackend never fails.
//
// Threading: all methods are thread-safe; futures become ready on backend
// worker/reader threads. A Query passed to Start() must stay alive until
// the returned future is ready (coordinator threads gather immediately, so
// this holds by construction).
// ============================================================================

// One shard's partial answer after Start (all values in the shard traversal's
// *local* reference scale; `log_ref` is that scale, so the coordinator can
// rebase). Work counters are cumulative over the traversal so far.
struct ShardPartial {
  double log_ref = 0.0;
  uint64_t tree_size = 0;  // shard object count; 0 = empty shard, skip it
  double denominator_lo = 0.0;
  double denominator_hi = 0.0;
  bool exhausted = true;
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;
  // MLIQ: the shard-local top-k (descending scaled density).
  // TIQ: surviving candidates in discovery order. Final after Start — later
  // refinement only tightens bounds, never changes the shard's item set.
  std::vector<ScoredObject> items;
};

// One traversal's entry in a batched refinement round.
struct RefineSpec {
  uint64_t traversal = 0;
  double max_gap = 0.0;  // target denominator gap (shard-local scale)
};

// Post-refinement state of one traversal. Counters are cumulative (same
// convention as ShardPartial), so the latest update always carries the
// traversal's total work.
struct RefineUpdate {
  double denominator_lo = 0.0;
  double denominator_hi = 0.0;
  bool exhausted = true;
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;
};

// How many refinement rounds (batched flushes) a backend has sent, and how
// many per-traversal refine requests those rounds carried — requests/rounds
// is the batching win ServiceStats::refine_rounds reports.
struct BackendRefineCounters {
  uint64_t rounds = 0;
  uint64_t requests = 0;
};

// One top-level subtree of a shard's tree in the coarse denominator sketch:
// its object count and parameter-space MBR (dim() DimBounds). Leaf roots
// synthesize one entry per stored pfv with degenerate bounds.
struct ShardSketchEntry {
  uint32_t count = 0;
  std::vector<DimBounds> bounds;
};

// Query-independent coarse description of one shard's tree, fetched once per
// backend and cached by the coordinator. For any query the coordinator can
// hull-bound each entry (at the shard's own sigma policy and reference
// scale) and obtain per-shard denominator bounds one tree level tighter than
// the trivial root-level [0, n] — tight enough to water-fill mass-
// proportional refinement budgets before the first refinement round.
struct ShardSketch {
  uint64_t tree_size = 0;  // 0 = empty shard: no bounds, no entries
  SigmaPolicy sigma_policy = SigmaPolicy::kConvolution;
  std::vector<DimBounds> root_bounds;  // dim() entries; source of log_ref
  std::vector<ShardSketchEntry> entries;
};

// Builds the sketch from a tree's root node (one page load). An inner root
// yields one entry per child subtree; a leaf root yields one degenerate
// entry per pfv; an empty tree yields an empty sketch. Runs wherever the
// caller wants the page I/O placed (backends use the shard's worker pool).
ShardSketch BuildShardSketch(const GaussTree& tree);

class ShardBackend {
 public:
  struct StartResult {
    NetError error;
    ShardPartial partial;  // valid iff error.ok()
  };

  struct RefineResult {
    NetError error;
    // updates[i] answers specs[i] of the submitted batch; valid iff
    // error.ok(). A transport failure fails the whole round.
    std::vector<RefineUpdate> updates;
  };

  struct StatsResult {
    NetError error;
    IoStats io;            // the shard cache's counters
    ServiceStats service;  // remote serving counters (RPC only; else zero)
  };

  struct SketchResult {
    NetError error;
    ShardSketch sketch;  // valid iff error.ok()
  };

  virtual ~ShardBackend() = default;

  // Dimensionality of the shard's tree (known at connect/attach time).
  virtual size_t dim() const = 0;

  // Runs the shard-local traversal of `query` under the caller-chosen
  // handle. Handles must be unique per backend among live traversals.
  virtual std::future<StartResult> Start(uint64_t traversal,
                                         const Query& query) = 0;

  // Resumes denominator refinement for a batch of live traversals.
  // Concurrent calls coalesce: all specs pending when a round begins travel
  // in one flush (one frame / one shard-worker closure).
  virtual std::future<RefineResult> Refine(std::vector<RefineSpec> specs) = 0;

  // Frees shard-side traversal state. Fire-and-forget; releasing an unknown
  // or already-released handle is a no-op.
  virtual void Release(const std::vector<uint64_t>& traversals) = 0;

  // Fetches the shard's I/O counters (and, remotely, serving counters).
  virtual StatsResult FetchStats() = 0;

  // Fetches the shard's coarse denominator sketch (query-independent; the
  // coordinator fetches once and caches). Blocking, like FetchStats. A
  // failure is non-fatal to the caller: the sketch only seeds refinement
  // budgets, it never affects answers.
  virtual SketchResult FetchSketch() = 0;

  virtual BackendRefineCounters refine_counters() const = 0;
};

// ============================== RefineChannel ===============================
//
// The refinement batcher both backends share: callers Submit() their specs
// and get a future; a single flusher thread drains *everything* pending into
// one flush callback per round. Submissions arriving while a round is in
// flight coalesce into the next round — so N concurrent unconverged queries
// cost one round trip per shard per round, not N. Flush results are split
// back positionally onto the waiters; a flush failure fails every waiter of
// that round. The destructor drains pending submissions, then joins.
// ============================================================================
class RefineChannel {
 public:
  using FlushFn = std::function<ShardBackend::RefineResult(
      const std::vector<RefineSpec>&)>;

  explicit RefineChannel(FlushFn flush);
  ~RefineChannel();

  RefineChannel(const RefineChannel&) = delete;
  RefineChannel& operator=(const RefineChannel&) = delete;

  std::future<ShardBackend::RefineResult> Submit(std::vector<RefineSpec> specs);

  BackendRefineCounters counters() const;

 private:
  struct Waiter {
    std::vector<RefineSpec> specs;
    std::promise<ShardBackend::RefineResult> promise;
  };

  void Loop();

  FlushFn flush_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;                  // guarded by mu_
  std::vector<Waiter> pending_;          // guarded by mu_
  BackendRefineCounters counters_;       // guarded by mu_
  std::thread flusher_;
};

// ============================= InProcessBackend =============================
//
// ShardBackend over a local QueryService: the zero-transport implementation
// GaussDb::Serve() wires up. Every traversal step runs on the shard's own
// worker pool via QueryService::SubmitWork — page I/O and density evaluation
// stay with the shard that owns the data, exactly as the pre-backend
// coordinator did — and answers are byte-identical to that code path.
// The QueryService must outlive the backend.
// ============================================================================
class InProcessBackend : public ShardBackend {
 public:
  explicit InProcessBackend(QueryService* service);
  ~InProcessBackend() override;

  size_t dim() const override;
  std::future<StartResult> Start(uint64_t traversal,
                                 const Query& query) override;
  std::future<RefineResult> Refine(std::vector<RefineSpec> specs) override;
  void Release(const std::vector<uint64_t>& traversals) override;
  StatsResult FetchStats() override;
  SketchResult FetchSketch() override;
  BackendRefineCounters refine_counters() const override;

  QueryService* service() const { return service_; }

 private:
  // Exactly one of the two is set, matching the query kind.
  struct Traversal {
    std::unique_ptr<MliqTraversal> mliq;
    std::unique_ptr<TiqTraversal> tiq;
  };

  RefineResult Flush(const std::vector<RefineSpec>& specs);

  QueryService* const service_;
  std::mutex mu_;
  std::unordered_map<uint64_t, Traversal> traversals_;  // guarded by mu_
  std::unique_ptr<RefineChannel> channel_;
};

// =============================== DeltaBackend ===============================
//
// ShardBackend over a live-ingest DeltaTree (gausstree/delta_tree.h): the
// seam that makes the mutable delta "one more shard" to the coordinator,
// which keeps combined MLIQ/TIQ answers provably exact without teaching the
// merge math anything new. Because the delta is a small in-memory buffer,
// Start() evaluates every object's *exact* joint log density (the same
// PfvJointLogDensity call the tree traversals bottom out in) on the calling
// coordinator thread — no pages, no workers — and reports a degenerate
// denominator interval (lo == hi, exhausted) in its own reference scale, so
// refinement rounds always skip it. Item filtering honors the same pruning
// floors the coordinator ships to tree shards: MLIQ keeps objects at or
// above the certified density floor (a floor tie must still surface; extra
// items are harmless, the coordinator truncates the merged list), TIQ drops
// a candidate only when its probability upper bound under the larger of the
// local denominator and the certified combined floor falls strictly below
// the threshold (conservative: no false dismissals).
//
// The backend snapshots the delta's size at Start, so a query admitted at
// epoch time t sees exactly the enrollments published before t — concurrent
// Appends land in later snapshots, never mid-query.
// ============================================================================
class DeltaTree;

class DeltaBackend : public ShardBackend {
 public:
  // `delta` is shared with the ingest path that appends to it; `policy`
  // must match the base trees' sigma policy or combined densities would mix
  // conventions.
  DeltaBackend(std::shared_ptr<const DeltaTree> delta, SigmaPolicy policy);

  size_t dim() const override;
  std::future<StartResult> Start(uint64_t traversal,
                                 const Query& query) override;
  std::future<RefineResult> Refine(std::vector<RefineSpec> specs) override;
  void Release(const std::vector<uint64_t>& traversals) override;
  StatsResult FetchStats() override;
  SketchResult FetchSketch() override;
  BackendRefineCounters refine_counters() const override;

 private:
  // Exact state to echo if a refine round ever reaches us (it should not:
  // exhausted traversals are skipped by every refinement policy).
  struct State {
    double denominator = 0.0;
    uint64_t objects = 0;
  };

  std::shared_ptr<const DeltaTree> delta_;
  SigmaPolicy policy_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, State> traversals_;  // guarded by mu_
  BackendRefineCounters counters_;                  // guarded by mu_
};

}  // namespace gauss

#endif  // GAUSS_NET_SHARD_BACKEND_H_
