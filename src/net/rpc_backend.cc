#include "net/rpc_backend.h"

#include <algorithm>
#include <utility>

#include "net/frame_io.h"

namespace gauss {

namespace {

constexpr std::chrono::milliseconds kDeadlineGrace{100};
constexpr std::chrono::milliseconds kReaderTick{100};

}  // namespace

std::unique_ptr<RpcBackend> RpcBackend::Connect(
    const std::string& host, uint16_t port, const RpcBackendOptions& options,
    NetError* error) {
  TcpSocket sock = TcpSocket::Connect(host, port, options.connect_timeout,
                                      error);
  if (!sock.valid()) return nullptr;

  const SocketDeadline deadline =
      std::chrono::steady_clock::now() + options.connect_timeout;
  std::vector<uint8_t> body;
  EncodeHello(WireHello{}, &body);
  if (NetError err = WriteFrame(sock, MsgType::kHello, 0, body, deadline);
      !err.ok()) {
    *error = std::move(err);
    return nullptr;
  }
  Frame frame;
  if (NetError err = ReadFrame(sock, &frame, deadline); !err.ok()) {
    *error = std::move(err);
    return nullptr;
  }
  if (frame.type == MsgType::kError) {
    NetError remote;
    if (NetError err =
            DecodeError(frame.body.data(), frame.body.size(), &remote);
        !err.ok()) {
      *error = std::move(err);
    } else {
      *error = std::move(remote);
    }
    return nullptr;
  }
  if (frame.type != MsgType::kHelloAck) {
    *error = {NetErrorCode::kProtocolError, "expected hello-ack"};
    return nullptr;
  }
  WireHelloAck ack;
  if (NetError err = DecodeHelloAck(frame.body.data(), frame.body.size(), &ack);
      !err.ok()) {
    *error = std::move(err);
    return nullptr;
  }
  if (NetError err = CheckHandshake(ack.magic, ack.version); !err.ok()) {
    *error = std::move(err);
    return nullptr;
  }
  return std::unique_ptr<RpcBackend>(
      new RpcBackend(std::move(sock), options, ack));
}

RpcBackend::RpcBackend(TcpSocket sock, const RpcBackendOptions& options,
                       const WireHelloAck& ack)
    : options_(options),
      dim_(ack.dim),
      tree_size_(ack.tree_size),
      sock_(std::move(sock)) {
  channel_ = std::make_unique<RefineChannel>(
      [this](const std::vector<RefineSpec>& specs) {
        return FlushRefine(specs);
      });
  reader_ = std::thread([this] { ReaderLoop(); });
}

RpcBackend::~RpcBackend() {
  // Order matters: the refine flusher needs the live reader to complete (or
  // time out) its in-flight round, so drain the channel first, then wake the
  // reader by shutting the socket down.
  channel_.reset();
  sock_.Shutdown();
  reader_.join();
}

SocketDeadline RpcBackend::RequestDeadline(const Query* query) const {
  const auto now = std::chrono::steady_clock::now();
  auto timeout = options_.request_timeout;
  if (query != nullptr && query->has_deadline()) {
    // Map the query's remaining budget (plus a little grace for the reply's
    // travel) onto the socket: the shard must answer within the budget or
    // the query fails typed, just as it would have been expired locally.
    // An already-expired query never reaches here — Start() fails it fast
    // with kDeadlineExceeded before encoding a frame — so the budget is
    // genuinely remaining time, not a negative clamped to a degenerate 1ms.
    auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
                      query->deadline() - now) +
                  kDeadlineGrace;
    budget = std::max(budget, std::chrono::milliseconds{1});
    timeout = std::min(timeout, budget);
  }
  return now + timeout;
}

void RpcBackend::Fail(Pending&& pending, const NetError& error) {
  switch (pending.expect) {
    case MsgType::kStartReply: {
      StartResult result;
      result.error = error;
      pending.start.set_value(std::move(result));
      break;
    }
    case MsgType::kRefineReply: {
      RefineResult result;
      result.error = error;
      pending.refine.set_value(std::move(result));
      break;
    }
    case MsgType::kStatsReply: {
      StatsResult result;
      result.error = error;
      pending.stats.set_value(std::move(result));
      break;
    }
    case MsgType::kSketchReply: {
      SketchResult result;
      result.error = error;
      pending.sketch.set_value(std::move(result));
      break;
    }
    default:
      break;
  }
}

bool RpcBackend::SendRequest(MsgType type, uint64_t request_id,
                             const std::vector<uint8_t>& body,
                             Pending pending) {
  const SocketDeadline deadline = pending.deadline;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      const NetError error = dead_error_;
      Fail(std::move(pending), error);
      return false;
    }
    pending_.emplace(request_id, std::move(pending));
  }
  NetError error;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    error = WriteFrame(sock_, type, request_id, body, deadline);
  }
  if (!error.ok()) {
    // Withdraw the entry unless the reader already completed it.
    Pending entry;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(request_id);
      if (it != pending_.end()) {
        entry = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (found) Fail(std::move(entry), error);
    return false;
  }
  return true;
}

std::future<ShardBackend::StartResult> RpcBackend::Start(uint64_t traversal,
                                                         const Query& query) {
  Pending pending;
  pending.expect = MsgType::kStartReply;
  std::future<StartResult> future = pending.start.get_future();

  // An expired query fails fast before any frame is written: a negative
  // remaining budget is not a socket timeout, it is the deadline verdict the
  // front door would have issued — keep that typed instead of burning a
  // round trip on a request whose reply nobody can use.
  if (query.has_deadline() &&
      query.deadline() <= std::chrono::steady_clock::now()) {
    Fail(std::move(pending),
         {NetErrorCode::kDeadlineExceeded,
          "query deadline elapsed before the request was sent"});
    return future;
  }
  pending.deadline = RequestDeadline(&query);

  const uint64_t request_id = next_request_id_.fetch_add(1);
  std::vector<uint8_t> body;
  EncodeStart(traversal, query, &body);
  SendRequest(MsgType::kStart, request_id, body, std::move(pending));
  return future;
}

std::future<ShardBackend::RefineResult> RpcBackend::Refine(
    std::vector<RefineSpec> specs) {
  return channel_->Submit(std::move(specs));
}

ShardBackend::RefineResult RpcBackend::FlushRefine(
    const std::vector<RefineSpec>& specs) {
  Pending pending;
  pending.expect = MsgType::kRefineReply;
  pending.deadline = RequestDeadline(nullptr);
  pending.refine_count = specs.size();
  std::future<RefineResult> future = pending.refine.get_future();

  const uint64_t request_id = next_request_id_.fetch_add(1);
  std::vector<uint8_t> body;
  EncodeRefine(specs, &body);
  SendRequest(MsgType::kRefine, request_id, body, std::move(pending));
  return future.get();
}

void RpcBackend::Release(const std::vector<uint64_t>& traversals) {
  if (traversals.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return;
  }
  std::vector<uint8_t> body;
  EncodeRelease(traversals, &body);
  std::lock_guard<std::mutex> lock(write_mu_);
  // Fire-and-forget: a failure here means the connection is dying, and the
  // reader will surface that through the pending requests.
  (void)WriteFrame(sock_, MsgType::kRelease, 0, body, RequestDeadline(nullptr));
}

ShardBackend::StatsResult RpcBackend::FetchStats() {
  Pending pending;
  pending.expect = MsgType::kStatsReply;
  pending.deadline = RequestDeadline(nullptr);
  std::future<StatsResult> future = pending.stats.get_future();

  const uint64_t request_id = next_request_id_.fetch_add(1);
  const std::vector<uint8_t> body;  // kStats has an empty body
  SendRequest(MsgType::kStats, request_id, body, std::move(pending));
  return future.get();
}

ShardBackend::SketchResult RpcBackend::FetchSketch() {
  Pending pending;
  pending.expect = MsgType::kSketchReply;
  pending.deadline = RequestDeadline(nullptr);
  std::future<SketchResult> future = pending.sketch.get_future();

  const uint64_t request_id = next_request_id_.fetch_add(1);
  const std::vector<uint8_t> body;  // kFetchSketch has an empty body
  SendRequest(MsgType::kFetchSketch, request_id, body, std::move(pending));
  return future.get();
}

BackendRefineCounters RpcBackend::refine_counters() const {
  return channel_->counters();
}

void RpcBackend::DispatchFrame(const Frame& frame) {
  Pending entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(frame.request_id);
    if (it == pending_.end()) return;  // late reply after a timeout: discard
    entry = std::move(it->second);
    pending_.erase(it);
  }

  if (frame.type == MsgType::kError) {
    NetError remote;
    if (NetError err =
            DecodeError(frame.body.data(), frame.body.size(), &remote);
        !err.ok()) {
      Fail(std::move(entry), err);
    } else {
      Fail(std::move(entry), remote);
    }
    return;
  }
  if (frame.type != entry.expect) {
    Fail(std::move(entry),
         {NetErrorCode::kProtocolError, "reply type mismatch"});
    return;
  }

  switch (entry.expect) {
    case MsgType::kStartReply: {
      StartResult result;
      result.error =
          DecodeStartReply(frame.body.data(), frame.body.size(),
                           &result.partial);
      entry.start.set_value(std::move(result));
      break;
    }
    case MsgType::kRefineReply: {
      RefineResult result;
      result.error = DecodeRefineReply(frame.body.data(), frame.body.size(),
                                       &result.updates);
      if (result.error.ok() && result.updates.size() != entry.refine_count) {
        result.error = {NetErrorCode::kProtocolError,
                        "refine reply count mismatch"};
        result.updates.clear();
      }
      entry.refine.set_value(std::move(result));
      break;
    }
    case MsgType::kStatsReply: {
      StatsResult result;
      result.error = DecodeStatsReply(frame.body.data(), frame.body.size(),
                                      &result.io, &result.service);
      entry.stats.set_value(std::move(result));
      break;
    }
    case MsgType::kSketchReply: {
      SketchResult result;
      result.error = DecodeSketchReply(frame.body.data(), frame.body.size(),
                                       &result.sketch);
      entry.sketch.set_value(std::move(result));
      break;
    }
    default:
      break;
  }
}

void RpcBackend::SweepExpired() {
  std::vector<Pending> expired;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.deadline <= now) {
        expired.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Pending& entry : expired) {
    Fail(std::move(entry),
         {NetErrorCode::kTimeout, "request deadline elapsed"});
  }
}

void RpcBackend::FailAllPending(const NetError& error) {
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : pending_) orphans.push_back(std::move(entry));
    pending_.clear();
  }
  for (Pending& entry : orphans) Fail(std::move(entry), error);
}

void RpcBackend::ReaderLoop() {
  std::vector<uint8_t> buf;
  NetError fatal;
  bool running = true;
  while (running) {
    const NetError wait =
        sock_.WaitReadable(std::chrono::steady_clock::now() + kReaderTick);
    if (wait.code == NetErrorCode::kTimeout) {
      SweepExpired();
      continue;
    }
    if (!wait.ok()) {
      fatal = wait;
      break;
    }
    uint8_t chunk[64 * 1024];
    size_t received = 0;
    if (NetError err = sock_.RecvSome(chunk, sizeof(chunk), &received);
        !err.ok()) {
      fatal = err;
      break;
    }
    buf.insert(buf.end(), chunk, chunk + received);

    size_t offset = 0;
    while (running) {
      Frame frame;
      size_t consumed = 0;
      NetError parse_error;
      const FrameParse verdict =
          ParseFrame(buf.data() + offset, buf.size() - offset, &frame,
                     &consumed, &parse_error);
      if (verdict == FrameParse::kNeedMore) break;
      if (verdict == FrameParse::kError) {
        fatal = parse_error;
        running = false;
        break;
      }
      offset += consumed;
      DispatchFrame(frame);
    }
    buf.erase(buf.begin(), buf.begin() + offset);
    SweepExpired();
  }

  NetError final_error = fatal.ok()
                             ? NetError{NetErrorCode::kPeerClosed,
                                        "shard connection closed"}
                             : fatal;
  if (final_error.code == NetErrorCode::kIoError ||
      final_error.code == NetErrorCode::kProtocolError) {
    // The stream is unusable either way; keep the specific cause in the
    // message but make sure later fast-fails read as a dead connection.
    sock_.Shutdown();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead_ = true;
    dead_error_ = final_error;
  }
  FailAllPending(final_error);
}

}  // namespace gauss
