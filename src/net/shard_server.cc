#include "net/shard_server.h"

#include <chrono>
#include <future>
#include <utility>

#include "common/macros.h"
#include "gausstree/query_common.h"
#include "net/frame_io.h"

namespace gauss {

namespace {

RefineUpdate UpdateFromMliq(const MliqTraversal& t) {
  RefineUpdate u;
  const TraversalStats s = t.stats();
  u.denominator_lo = t.denominator_lo();
  u.denominator_hi = t.denominator_hi();
  u.exhausted = t.exhausted();
  u.nodes_visited = s.nodes_visited;
  u.leaf_nodes_visited = s.leaf_nodes_visited;
  u.objects_evaluated = s.objects_evaluated;
  return u;
}

RefineUpdate UpdateFromTiq(const TiqTraversal& t) {
  RefineUpdate u;
  const TraversalStats s = t.stats();
  u.denominator_lo = t.denominator_lo();
  u.denominator_hi = t.denominator_hi();
  u.exhausted = t.exhausted();
  u.nodes_visited = s.nodes_visited;
  u.leaf_nodes_visited = s.leaf_nodes_visited;
  u.objects_evaluated = s.objects_evaluated;
  return u;
}

}  // namespace

std::unique_ptr<ShardServer> ShardServer::Listen(
    QueryService* service, const ShardServerOptions& options, NetError* error) {
  GAUSS_CHECK(service != nullptr);
  TcpListener listener = TcpListener::Listen(options.host, options.port, error);
  if (!listener.valid()) return nullptr;
  return std::unique_ptr<ShardServer>(
      new ShardServer(service, options, std::move(listener)));
}

ShardServer::ShardServer(QueryService* service,
                         const ShardServerOptions& options,
                         TcpListener listener)
    : service_(service),
      options_(options),
      listener_(std::move(listener)) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

ShardServer::~ShardServer() { Shutdown(); }

void ShardServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true);
    listener_.Shutdown();
    std::vector<std::shared_ptr<Connection>> live;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& weak : conns_) {
        if (auto conn = weak.lock()) live.push_back(std::move(conn));
      }
    }
    for (const auto& conn : live) conn->sock.Shutdown();
    acceptor_.join();
    std::vector<std::thread> handlers;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      handlers.swap(handlers_);
    }
    // Handlers drain their in-flight worker closures before exiting, so
    // after this join no closure still references connection state.
    for (std::thread& t : handlers) t.join();
  });
}

ServiceStats ShardServer::stats() const {
  ServiceStats s;
  s.mliq_queries = mliq_starts_.load();
  s.tiq_queries = tiq_starts_.load();
  s.refine_rounds = refine_rounds_.load();
  s.refine_batched_queries = refine_requests_.load();
  return s;
}

void ShardServer::AcceptLoop() {
  while (true) {
    NetError error;
    TcpSocket sock = listener_.Accept(&error);
    if (!sock.valid()) return;  // Shutdown() or a fatal listener error
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(sock);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) {
      conn->sock.Shutdown();
      return;
    }
    conns_.push_back(conn);
    handlers_.emplace_back([this, conn] { HandleConnection(conn); });
  }
}

void ShardServer::SendReply(const std::shared_ptr<Connection>& conn,
                            MsgType type, uint64_t request_id,
                            const std::vector<uint8_t>& body) {
  const SocketDeadline deadline =
      std::chrono::steady_clock::now() + options_.write_timeout;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // A failed reply write means the connection is dying; the client observes
  // that as kPeerClosed/kTimeout on its side, nothing to do here.
  (void)WriteFrame(conn->sock, type, request_id, body, deadline);
}

void ShardServer::SendError(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, const NetError& error) {
  std::vector<uint8_t> body;
  EncodeError(error, &body);
  SendReply(conn, MsgType::kError, request_id, body);
}

void ShardServer::HandleConnection(const std::shared_ptr<Connection>& conn) {
  // Handshake first: anything but a well-formed, version-matching kHello
  // gets a typed kError frame and the connection closes.
  Frame frame;
  const SocketDeadline handshake_deadline =
      std::chrono::steady_clock::now() + options_.handshake_timeout;
  if (!ReadFrame(conn->sock, &frame, handshake_deadline).ok()) return;
  if (frame.type != MsgType::kHello) {
    SendError(conn, frame.request_id,
              {NetErrorCode::kProtocolError, "expected hello"});
    return;
  }
  WireHello hello;
  if (NetError err = DecodeHello(frame.body.data(), frame.body.size(), &hello);
      !err.ok()) {
    SendError(conn, frame.request_id, err);
    return;
  }
  if (NetError err = CheckHandshake(hello.magic, hello.version); !err.ok()) {
    SendError(conn, frame.request_id, err);
    return;
  }
  WireHelloAck ack;
  ack.dim = static_cast<uint32_t>(service_->tree().dim());
  ack.tree_size = service_->tree().size();
  std::vector<uint8_t> ack_body;
  EncodeHelloAck(ack, &ack_body);
  SendReply(conn, MsgType::kHelloAck, frame.request_id, ack_body);

  // Frame loop. kStart runs asynchronously on the shard's worker pool (so
  // concurrent queries pipeline); kRefine is one worker closure for the whole
  // batch; kRelease/kStats are cheap and handled inline.
  std::vector<std::future<QueryResponse>> inflight;
  bool open = true;
  while (open && !stopping_.load()) {
    if (!ReadFrame(conn->sock, &frame, NoDeadline()).ok()) break;
    switch (frame.type) {
      case MsgType::kStart: {
        auto start = std::make_shared<WireStart>();
        if (NetError err = DecodeStart(frame.body.data(), frame.body.size(),
                                       start.get());
            !err.ok()) {
          SendError(conn, frame.request_id, err);
          open = false;
          break;
        }
        if (start->query->kind() == QueryKind::kMliq) {
          mliq_starts_.fetch_add(1);
        } else {
          tiq_starts_.fetch_add(1);
        }
        const uint64_t request_id = frame.request_id;
        inflight.push_back(service_->SubmitWork([this, conn, request_id,
                                                 start] {
          HandleStart(conn, request_id, *start);
          return QueryResponse{};
        }));
        // Prune finished futures so a long-lived connection doesn't
        // accumulate one per query.
        for (size_t i = 0; i < inflight.size();) {
          if (inflight[i].wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            inflight[i] = std::move(inflight.back());
            inflight.pop_back();
          } else {
            ++i;
          }
        }
        break;
      }
      case MsgType::kRefine: {
        std::vector<RefineSpec> specs;
        if (NetError err =
                DecodeRefine(frame.body.data(), frame.body.size(), &specs);
            !err.ok()) {
          SendError(conn, frame.request_id, err);
          open = false;
          break;
        }
        refine_rounds_.fetch_add(1);
        refine_requests_.fetch_add(specs.size());
        HandleRefine(conn, frame.request_id, specs);
        break;
      }
      case MsgType::kRelease: {
        std::vector<uint64_t> handles;
        if (NetError err =
                DecodeRelease(frame.body.data(), frame.body.size(), &handles);
            !err.ok()) {
          SendError(conn, frame.request_id, err);
          open = false;
          break;
        }
        std::lock_guard<std::mutex> lock(conn->mu);
        for (const uint64_t id : handles) {
          if (conn->traversals.erase(id) == 0) conn->released.insert(id);
        }
        break;
      }
      case MsgType::kStats: {
        if (!frame.body.empty()) {
          SendError(conn, frame.request_id,
                    {NetErrorCode::kProtocolError, "stats body not empty"});
          open = false;
          break;
        }
        HandleStats(conn, frame.request_id);
        break;
      }
      case MsgType::kFetchSketch: {
        if (!frame.body.empty()) {
          SendError(conn, frame.request_id,
                    {NetErrorCode::kProtocolError, "sketch body not empty"});
          open = false;
          break;
        }
        HandleFetchSketch(conn, frame.request_id);
        break;
      }
      default:
        SendError(conn, frame.request_id,
                  {NetErrorCode::kProtocolError, "unexpected message type"});
        open = false;
        break;
    }
  }

  // Drain queries still running on the worker pool before the connection
  // state goes away; their replies fail silently into the closed socket.
  conn->sock.Shutdown();
  for (std::future<QueryResponse>& f : inflight) f.get();
}

void ShardServer::HandleStart(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, const WireStart& start) {
  const Query& query = *start.query;
  ShardPartial partial;
  Traversal t;
  if (query.kind() == QueryKind::kMliq) {
    MliqOptions options = query.mliq_options();
    options.prefetch_depth = internal::EffectivePrefetchDepth(
        options.prefetch_depth, service_->prefetch_depth());
    t.mliq = std::make_shared<MliqTraversal>(service_->tree(), query.pfv(),
                                             query.k(), options);
    t.mliq->Run();
    partial.log_ref = t.mliq->log_ref();
    partial.denominator_lo = t.mliq->denominator_lo();
    partial.denominator_hi = t.mliq->denominator_hi();
    partial.exhausted = t.mliq->exhausted();
    const TraversalStats s = t.mliq->stats();
    partial.nodes_visited = s.nodes_visited;
    partial.leaf_nodes_visited = s.leaf_nodes_visited;
    partial.objects_evaluated = s.objects_evaluated;
    partial.items = t.mliq->top_items();
  } else {
    TiqOptions options = query.tiq_options();
    options.prefetch_depth = internal::EffectivePrefetchDepth(
        options.prefetch_depth, service_->prefetch_depth());
    t.tiq = std::make_shared<TiqTraversal>(service_->tree(), query.pfv(),
                                           query.threshold(), options);
    t.tiq->Run();
    partial.log_ref = t.tiq->log_ref();
    partial.denominator_lo = t.tiq->denominator_lo();
    partial.denominator_hi = t.tiq->denominator_hi();
    partial.exhausted = t.tiq->exhausted();
    const TraversalStats s = t.tiq->stats();
    partial.nodes_visited = s.nodes_visited;
    partial.leaf_nodes_visited = s.leaf_nodes_visited;
    partial.objects_evaluated = s.objects_evaluated;
    partial.items = t.tiq->candidates();
  }
  partial.tree_size = service_->tree().size();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->released.erase(start.traversal) == 0) {
      conn->traversals[start.traversal] = std::move(t);
    }
    // else: released while still starting — drop the traversal on the floor.
  }
  std::vector<uint8_t> body;
  EncodeStartReply(partial, &body);
  SendReply(conn, MsgType::kStartReply, request_id, body);
}

void ShardServer::HandleRefine(const std::shared_ptr<Connection>& conn,
                               uint64_t request_id,
                               const std::vector<RefineSpec>& specs) {
  // Look the traversals up front (shared_ptr copies keep them alive even
  // against a racing kRelease), so an unknown handle is a typed error before
  // any refinement work happens.
  std::vector<Traversal> batch;
  batch.reserve(specs.size());
  bool unknown = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    for (const RefineSpec& spec : specs) {
      auto it = conn->traversals.find(spec.traversal);
      if (it == conn->traversals.end()) {
        unknown = true;
        break;
      }
      batch.push_back(it->second);
    }
  }
  if (unknown) {
    SendError(conn, request_id,
              {NetErrorCode::kProtocolError, "unknown traversal"});
    return;
  }

  // The whole round is one closure on the shard's worker pool — the remote
  // half of "one frame per shard per round".
  std::vector<RefineUpdate> updates;
  updates.reserve(specs.size());
  service_
      ->SubmitWork([&specs, &batch, &updates] {
        for (size_t i = 0; i < specs.size(); ++i) {
          if (batch[i].mliq) {
            batch[i].mliq->RefineDenominator(specs[i].max_gap);
            updates.push_back(UpdateFromMliq(*batch[i].mliq));
          } else {
            batch[i].tiq->RefineDenominator(specs[i].max_gap);
            updates.push_back(UpdateFromTiq(*batch[i].tiq));
          }
        }
        return QueryResponse{};
      })
      .get();

  std::vector<uint8_t> body;
  EncodeRefineReply(updates, &body);
  SendReply(conn, MsgType::kRefineReply, request_id, body);
}

void ShardServer::HandleStats(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id) {
  const IoStats io = service_->tree().pool()->stats();
  std::vector<uint8_t> body;
  EncodeStatsReply(io, stats(), &body);
  SendReply(conn, MsgType::kStatsReply, request_id, body);
}

void ShardServer::HandleFetchSketch(const std::shared_ptr<Connection>& conn,
                                    uint64_t request_id) {
  // The root page load runs on the shard's worker pool, same I/O placement
  // rule as kStart/kRefine.
  ShardSketch sketch;
  ShardSketch* sketch_ptr = &sketch;
  service_
      ->SubmitWork([this, sketch_ptr] {
        *sketch_ptr = BuildShardSketch(service_->tree());
        return QueryResponse{};
      })
      .get();
  std::vector<uint8_t> body;
  EncodeSketchReply(sketch, service_->tree().dim(), &body);
  SendReply(conn, MsgType::kSketchReply, request_id, body);
}

}  // namespace gauss
