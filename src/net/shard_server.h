#ifndef GAUSS_NET_SHARD_SERVER_H_
#define GAUSS_NET_SHARD_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/shard_backend.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "service/service_stats.h"

namespace gauss {

struct ShardServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral (ask port() afterwards)
  // Patience for a client's handshake and for reply writes; a peer that
  // stalls longer loses the connection, never the server.
  std::chrono::milliseconds handshake_timeout{5000};
  std::chrono::milliseconds write_timeout{30000};
};

// Serves one shard's QueryService over the wire protocol — the library core
// of examples/gauss_shardd, and what the loopback tests spin up in-process.
//
// Concurrency model: an acceptor thread plus one handler thread per
// connection. The handler reads frames sequentially but executes kStart
// requests asynchronously on the shard's own worker pool
// (QueryService::SubmitWork), so concurrent queries from one coordinator
// pipeline instead of serializing. A kRefine batch runs as ONE worker
// closure — the server-side half of "one frame per shard per round".
// Traversal state lives per-connection behind the client's handles and is
// freed by kRelease, on connection teardown, or at Shutdown().
//
// Shutdown() (idempotent, also run by the destructor) closes the listener
// and every live connection, then joins all threads; in-flight traversals
// finish on the worker pool first (their replies fail silently into the
// closed sockets, and the coordinator side observes typed kPeerClosed
// errors). This is exactly the "kill a shard server mid-batch" scenario the
// fault tests exercise.
class ShardServer {
 public:
  // Binds and starts serving; nullptr + *error on failure. `service` must
  // outlive the server.
  static std::unique_ptr<ShardServer> Listen(QueryService* service,
                                             const ShardServerOptions& options,
                                             NetError* error);

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  uint16_t port() const { return listener_.port(); }

  void Shutdown();

  // Cumulative serving counters (queries started, batched refinement
  // rounds); also what a kStats request reports to the client.
  ServiceStats stats() const;

 private:
  // Exactly one of the two is set. shared_ptr, because a released traversal
  // may still be executing inside an already-queued refine closure.
  struct Traversal {
    std::shared_ptr<MliqTraversal> mliq;
    std::shared_ptr<TiqTraversal> tiq;
  };

  struct Connection {
    TcpSocket sock;
    std::mutex write_mu;  // one reply frame at a time
    std::mutex mu;        // traversals + released
    std::unordered_map<uint64_t, Traversal> traversals;
    // Handles released before their Start closure finished (a client
    // timeout race): the closure drops the traversal instead of storing it.
    std::unordered_set<uint64_t> released;
  };

  ShardServer(QueryService* service, const ShardServerOptions& options,
              TcpListener listener);

  void AcceptLoop();
  void HandleConnection(const std::shared_ptr<Connection>& conn);
  void HandleStart(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, const WireStart& start);
  void HandleRefine(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, const std::vector<RefineSpec>& specs);
  void HandleStats(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id);
  void HandleFetchSketch(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id);
  void SendReply(const std::shared_ptr<Connection>& conn, MsgType type,
                 uint64_t request_id, const std::vector<uint8_t>& body);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                 const NetError& error);

  QueryService* const service_;
  const ShardServerOptions options_;
  TcpListener listener_;

  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
  std::mutex conns_mu_;  // conns_ + handlers_
  std::vector<std::weak_ptr<Connection>> conns_;
  std::vector<std::thread> handlers_;
  std::thread acceptor_;

  std::atomic<uint64_t> mliq_starts_{0};
  std::atomic<uint64_t> tiq_starts_{0};
  std::atomic<uint64_t> refine_rounds_{0};
  std::atomic<uint64_t> refine_requests_{0};
};

}  // namespace gauss

#endif  // GAUSS_NET_SHARD_SERVER_H_
