#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace gauss {

namespace {

NetError Errno(NetErrorCode code, const std::string& what) {
  return {code, what + ": " + std::strerror(errno)};
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Remaining milliseconds until `deadline` for poll(2): -1 = infinite,
// clamped into [0, INT_MAX].
int PollTimeoutMs(SocketDeadline deadline) {
  if (deadline == SocketDeadline::max()) return -1;
  const auto remaining = deadline - std::chrono::steady_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms, 1000 * 60 * 60));
}

// Waits for `events` on fd until the deadline. kOk when (any) event fired.
NetError PollFor(int fd, short events, SocketDeadline deadline) {
  while (true) {
    const int timeout = PollTimeoutMs(deadline);
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, timeout);
    if (n > 0) return {};
    if (n == 0) return {NetErrorCode::kTimeout, "socket deadline elapsed"};
    if (errno == EINTR) continue;
    return Errno(NetErrorCode::kIoError, "poll");
  }
}

}  // namespace

// -------------------------------- TcpSocket ---------------------------------

TcpSocket::TcpSocket(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNonBlocking(fd_);
}

TcpSocket::~TcpSocket() { Close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket TcpSocket::Connect(const std::string& host, uint16_t port,
                             std::chrono::milliseconds timeout,
                             NetError* error) {
  *error = {};
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string service = std::to_string(port);
  struct addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    *error = {NetErrorCode::kConnectFailed,
              "resolve " + host + ": " + ::gai_strerror(rc)};
    return TcpSocket();
  }

  const SocketDeadline deadline = std::chrono::steady_clock::now() + timeout;
  NetError last = {NetErrorCode::kConnectFailed, "no addresses for " + host};
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Errno(NetErrorCode::kConnectFailed, "socket");
      continue;
    }
    SetNonBlocking(fd);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0 &&
        errno != EINPROGRESS) {
      last = Errno(NetErrorCode::kConnectFailed, "connect " + host);
      ::close(fd);
      continue;
    }
    // Non-blocking connect: completion is "writable"; the verdict is in
    // SO_ERROR.
    if (NetError wait = PollFor(fd, POLLOUT, deadline); !wait.ok()) {
      last = wait.code == NetErrorCode::kTimeout
                 ? NetError{NetErrorCode::kTimeout, "connect " + host +
                                                        " timed out"}
                 : wait;
      ::close(fd);
      continue;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      errno = so_error;
      last = Errno(NetErrorCode::kConnectFailed, "connect " + host);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(result);
    return TcpSocket(fd);
  }
  ::freeaddrinfo(result);
  *error = std::move(last);
  return TcpSocket();
}

NetError TcpSocket::SendAll(const void* data, size_t size,
                            SocketDeadline deadline) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (NetError wait = PollFor(fd_, POLLOUT, deadline); !wait.ok()) {
        return wait;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return {NetErrorCode::kPeerClosed, "send on closed connection"};
    }
    return Errno(NetErrorCode::kIoError, "send");
  }
  return {};
}

NetError TcpSocket::RecvAll(void* data, size_t size, SocketDeadline deadline) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t received = 0;
  while (received < size) {
    size_t n = 0;
    if (NetError err = RecvSome(p + received, size - received, &n); !err.ok()) {
      return err;
    }
    if (n == 0) {
      if (NetError wait = WaitReadable(deadline); !wait.ok()) return wait;
      continue;
    }
    received += n;
  }
  return {};
}

NetError TcpSocket::WaitReadable(SocketDeadline deadline) {
  return PollFor(fd_, POLLIN, deadline);
}

NetError TcpSocket::RecvSome(void* data, size_t size, size_t* received) {
  *received = 0;
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return {};
    }
    if (n == 0) {
      return {NetErrorCode::kPeerClosed, "connection closed by peer"};
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {};
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return {NetErrorCode::kPeerClosed, "connection reset by peer"};
    }
    return Errno(NetErrorCode::kIoError, "recv");
  }
}

// ------------------------------- TcpListener --------------------------------

TcpListener::~TcpListener() { CloseFds(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_),
      wake_read_(other.wake_read_),
      wake_write_(other.wake_write_),
      port_(other.port_) {
  other.fd_ = -1;
  other.wake_read_ = -1;
  other.wake_write_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    CloseFds();
    fd_ = other.fd_;
    wake_read_ = other.wake_read_;
    wake_write_ = other.wake_write_;
    port_ = other.port_;
    other.fd_ = -1;
    other.wake_read_ = -1;
    other.wake_write_ = -1;
  }
  return *this;
}

void TcpListener::CloseFds() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  fd_ = wake_read_ = wake_write_ = -1;
}

TcpListener TcpListener::Listen(const std::string& host, uint16_t port,
                                NetError* error) {
  *error = {};
  TcpListener listener;

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  const std::string service = std::to_string(port);
  struct addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    *error = {NetErrorCode::kConnectFailed,
              "resolve " + host + ": " + ::gai_strerror(rc)};
    return listener;
  }

  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, SOCK_STREAM, 0);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    *error = Errno(NetErrorCode::kConnectFailed, "bind " + host);
    return listener;
  }

  struct sockaddr_storage addr;
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0) {
    if (addr.ss_family == AF_INET) {
      listener.port_ = ntohs(
          reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      listener.port_ = ntohs(
          reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    *error = Errno(NetErrorCode::kIoError, "pipe");
    ::close(fd);
    return listener;
  }
  SetNonBlocking(fd);
  SetNonBlocking(pipe_fds[0]);
  SetNonBlocking(pipe_fds[1]);
  listener.fd_ = fd;
  listener.wake_read_ = pipe_fds[0];
  listener.wake_write_ = pipe_fds[1];
  return listener;
}

TcpSocket TcpListener::Accept(NetError* error) {
  *error = {};
  while (true) {
    struct pollfd pfds[2];
    pfds[0].fd = fd_;
    pfds[0].events = POLLIN;
    pfds[0].revents = 0;
    pfds[1].fd = wake_read_;
    pfds[1].events = POLLIN;
    pfds[1].revents = 0;
    const int n = ::poll(pfds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Errno(NetErrorCode::kIoError, "poll");
      return TcpSocket();
    }
    if (pfds[1].revents != 0) {
      *error = {NetErrorCode::kPeerClosed, "listener shut down"};
      return TcpSocket();
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpSocket(fd);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;
    }
    *error = Errno(NetErrorCode::kIoError, "accept");
    return TcpSocket();
  }
}

void TcpListener::Shutdown() {
  if (wake_write_ >= 0) {
    const uint8_t byte = 1;
    // Best-effort; a full pipe already guarantees a pending wake.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

}  // namespace gauss
