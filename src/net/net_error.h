#ifndef GAUSS_NET_NET_ERROR_H_
#define GAUSS_NET_NET_ERROR_H_

#include <cstdint>
#include <string>

namespace gauss {

// Failure taxonomy of the shard transport (mirrors OpenErrorCode for
// storage): every socket / wire-protocol operation reports one of these
// instead of aborting, so a coordinator can turn a dead or misbehaving shard
// into typed per-query errors rather than a hang or a crash.
enum class NetErrorCode : uint8_t {
  kOk = 0,
  // TCP connect (or address resolution) failed — wrong endpoint, shard
  // server not running, network unreachable.
  kConnectFailed = 1,
  // The per-request deadline elapsed before the reply arrived. Late replies
  // are discarded when they eventually show up.
  kTimeout = 2,
  // The peer speaks a different wire protocol version (or is not a
  // gauss_shardd at all — bad magic).
  kProtocolMismatch = 3,
  // A frame violated the wire format: unknown message tag, oversized length
  // prefix, truncated or trailing payload bytes, unknown traversal handle.
  kProtocolError = 4,
  // The connection closed mid-conversation (shard server died or shut
  // down). Every request in flight on that connection fails with this.
  kPeerClosed = 5,
  // A socket syscall failed for any other reason (errno in the message).
  kIoError = 6,
  // The query's own deadline had already passed before the request could be
  // written — failed fast on the client, no frame ever hit the wire.
  kDeadlineExceeded = 7,
};

inline const char* NetErrorCodeName(NetErrorCode code) {
  switch (code) {
    case NetErrorCode::kOk:
      return "ok";
    case NetErrorCode::kConnectFailed:
      return "connect failed";
    case NetErrorCode::kTimeout:
      return "timeout";
    case NetErrorCode::kProtocolMismatch:
      return "protocol mismatch";
    case NetErrorCode::kProtocolError:
      return "protocol error";
    case NetErrorCode::kPeerClosed:
      return "peer closed";
    case NetErrorCode::kIoError:
      return "io error";
    case NetErrorCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

// Typed outcome of a transport operation, in the OpenError style: a code for
// programmatic dispatch plus a human-readable message naming the endpoint /
// syscall / frame that failed.
struct NetError {
  NetErrorCode code = NetErrorCode::kOk;
  std::string message;

  bool ok() const { return code == NetErrorCode::kOk; }

  std::string ToString() const {
    std::string s = NetErrorCodeName(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

}  // namespace gauss

#endif  // GAUSS_NET_NET_ERROR_H_
