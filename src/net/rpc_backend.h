#ifndef GAUSS_NET_RPC_BACKEND_H_
#define GAUSS_NET_RPC_BACKEND_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/shard_backend.h"
#include "net/socket.h"
#include "net/wire.h"

namespace gauss {

struct RpcBackendOptions {
  std::chrono::milliseconds connect_timeout{5000};
  // Per-request ceiling. A query that carries its own deadline tightens this
  // to its remaining budget (+ a small grace for the reply to travel), so
  // the front door's shed/expiry semantics survive the network: a shard too
  // slow for the query's budget produces a typed kTimeout, not a stall.
  std::chrono::milliseconds request_timeout{30000};
};

// ShardBackend over one TCP connection to a shard server (net/shard_server.h
// or a standalone examples/gauss_shardd). Connect() performs the
// magic+version handshake (typed kProtocolMismatch on disagreement) and
// learns the shard's dimensionality and size.
//
// One connection carries everything: requests are correlated by request_id,
// a dedicated reader thread dispatches out-of-order replies to the pending
// futures, and refinement rounds are batched through the shared
// RefineChannel — one kRefine frame per round regardless of how many
// concurrent queries are still unconverged.
//
// Failure model: a request whose deadline passes fails with kTimeout (the
// eventual late reply is discarded); when the connection drops, every
// pending request fails with kPeerClosed and all later calls fail fast with
// the same error. The backend never reconnects — a coordinator treats a dead
// shard as down until re-wired.
class RpcBackend : public ShardBackend {
 public:
  // Connects and handshakes; returns nullptr and sets *error on failure.
  static std::unique_ptr<RpcBackend> Connect(const std::string& host,
                                             uint16_t port,
                                             const RpcBackendOptions& options,
                                             NetError* error);

  ~RpcBackend() override;

  size_t dim() const override { return dim_; }
  uint64_t tree_size() const { return tree_size_; }

  std::future<StartResult> Start(uint64_t traversal,
                                 const Query& query) override;
  std::future<RefineResult> Refine(std::vector<RefineSpec> specs) override;
  void Release(const std::vector<uint64_t>& traversals) override;
  StatsResult FetchStats() override;
  SketchResult FetchSketch() override;
  BackendRefineCounters refine_counters() const override;

 private:
  // One in-flight request: which reply frame it expects, when it expires,
  // and the promise its future observes (exactly one of the four promises
  // is active, matching `expect`).
  struct Pending {
    MsgType expect = MsgType::kError;
    SocketDeadline deadline;
    size_t refine_count = 0;  // kRefineReply: expected update count
    std::promise<StartResult> start;
    std::promise<RefineResult> refine;
    std::promise<StatsResult> stats;
    std::promise<SketchResult> sketch;
  };

  RpcBackend(TcpSocket sock, const RpcBackendOptions& options,
             const WireHelloAck& ack);

  SocketDeadline RequestDeadline(const Query* query) const;
  // Registers a pending entry (fails fast when the connection is dead) and
  // sends the frame; on send failure the entry is withdrawn and failed.
  bool SendRequest(MsgType type, uint64_t request_id,
                   const std::vector<uint8_t>& body, Pending pending);
  RefineResult FlushRefine(const std::vector<RefineSpec>& specs);

  void ReaderLoop();
  void DispatchFrame(const Frame& frame);
  // Completes one extracted entry with an error or a decoded reply.
  static void Fail(Pending&& pending, const NetError& error);
  void FailAllPending(const NetError& error);
  void SweepExpired();

  const RpcBackendOptions options_;
  size_t dim_ = 0;
  uint64_t tree_size_ = 0;

  TcpSocket sock_;
  std::mutex write_mu_;  // serializes SendAll between callers + flusher

  mutable std::mutex mu_;  // pending_ + dead_ + dead_error_
  std::unordered_map<uint64_t, Pending> pending_;
  bool dead_ = false;
  NetError dead_error_;

  std::atomic<uint64_t> next_request_id_{1};
  std::unique_ptr<RefineChannel> channel_;
  std::thread reader_;
};

}  // namespace gauss

#endif  // GAUSS_NET_RPC_BACKEND_H_
