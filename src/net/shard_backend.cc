#include "net/shard_backend.h"

#include <utility>

#include "common/macros.h"

namespace gauss {

// ------------------------------ RefineChannel -------------------------------

RefineChannel::RefineChannel(FlushFn flush) : flush_(std::move(flush)) {
  flusher_ = std::thread([this] { Loop(); });
}

RefineChannel::~RefineChannel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  flusher_.join();
}

std::future<ShardBackend::RefineResult> RefineChannel::Submit(
    std::vector<RefineSpec> specs) {
  Waiter waiter;
  waiter.specs = std::move(specs);
  std::future<ShardBackend::RefineResult> future =
      waiter.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    GAUSS_CHECK_MSG(!closed_, "Refine on a shut-down backend");
    pending_.push_back(std::move(waiter));
  }
  cv_.notify_all();
  return future;
}

BackendRefineCounters RefineChannel::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void RefineChannel::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
    if (pending_.empty()) return;  // closed, fully drained
    std::vector<Waiter> batch = std::move(pending_);
    pending_.clear();

    std::vector<RefineSpec> combined;
    for (const Waiter& w : batch) {
      combined.insert(combined.end(), w.specs.begin(), w.specs.end());
    }
    ++counters_.rounds;
    counters_.requests += combined.size();
    lock.unlock();

    // One flush carries every spec pending at round start; submissions
    // arriving during the flush ride the next round.
    ShardBackend::RefineResult round = flush_(combined);
    if (round.error.ok() && round.updates.size() != combined.size()) {
      round.error = {NetErrorCode::kProtocolError,
                     "refine round returned wrong update count"};
      round.updates.clear();
    }

    size_t offset = 0;
    for (Waiter& w : batch) {
      ShardBackend::RefineResult part;
      part.error = round.error;
      if (round.error.ok()) {
        part.updates.assign(round.updates.begin() + offset,
                            round.updates.begin() + offset + w.specs.size());
      }
      offset += w.specs.size();
      w.promise.set_value(std::move(part));
    }
    lock.lock();
  }
}

// ----------------------------- InProcessBackend -----------------------------

namespace {

RefineUpdate UpdateFromMliq(const MliqTraversal& t) {
  RefineUpdate u;
  const TraversalStats s = t.stats();
  u.denominator_lo = t.denominator_lo();
  u.denominator_hi = t.denominator_hi();
  u.exhausted = t.exhausted();
  u.nodes_visited = s.nodes_visited;
  u.leaf_nodes_visited = s.leaf_nodes_visited;
  u.objects_evaluated = s.objects_evaluated;
  return u;
}

RefineUpdate UpdateFromTiq(const TiqTraversal& t) {
  RefineUpdate u;
  const TraversalStats s = t.stats();
  u.denominator_lo = t.denominator_lo();
  u.denominator_hi = t.denominator_hi();
  u.exhausted = t.exhausted();
  u.nodes_visited = s.nodes_visited;
  u.leaf_nodes_visited = s.leaf_nodes_visited;
  u.objects_evaluated = s.objects_evaluated;
  return u;
}

}  // namespace

ShardSketch BuildShardSketch(const GaussTree& tree) {
  ShardSketch sketch;
  sketch.tree_size = tree.size();
  sketch.sigma_policy = tree.options().sigma_policy;
  if (sketch.tree_size == 0) return sketch;

  GtNode root;
  tree.store().Load(tree.root(), &root);
  sketch.root_bounds = root.ComputeBounds(tree.dim());
  if (root.leaf()) {
    // Degenerate per-object bounds: the hull of a point MBR is the exact
    // joint density, so the sketch interval collapses to the true partial
    // denominator for single-level shards.
    sketch.entries.reserve(root.pfvs.size());
    for (const Pfv& v : root.pfvs) {
      ShardSketchEntry entry;
      entry.count = 1;
      entry.bounds.resize(tree.dim());
      for (size_t d = 0; d < tree.dim(); ++d) {
        entry.bounds[d] = {v.mu[d], v.mu[d], v.sigma[d], v.sigma[d]};
      }
      sketch.entries.push_back(std::move(entry));
    }
  } else {
    sketch.entries.reserve(root.children.size());
    for (const GtChildEntry& e : root.children) {
      sketch.entries.push_back({e.count, e.bounds});
    }
  }
  return sketch;
}

InProcessBackend::InProcessBackend(QueryService* service) : service_(service) {
  GAUSS_CHECK(service_ != nullptr);
  channel_ = std::make_unique<RefineChannel>(
      [this](const std::vector<RefineSpec>& specs) { return Flush(specs); });
}

InProcessBackend::~InProcessBackend() {
  channel_.reset();  // drain pending refine rounds while service_ is live
}

size_t InProcessBackend::dim() const { return service_->tree().dim(); }

std::future<ShardBackend::StartResult> InProcessBackend::Start(
    uint64_t traversal, const Query& query) {
  auto promise = std::make_shared<std::promise<StartResult>>();
  std::future<StartResult> future = promise->get_future();
  // The traversal is constructed *and* run on the shard's worker pool, so
  // page I/O stays with the shard that owns the pages (same placement as the
  // pre-backend ShardCoordinator::ScatterRun). `query` stays valid until the
  // future is ready (ShardBackend contract), so the pointer capture is safe.
  const Query* q = &query;
  service_->SubmitWork([this, traversal, q, promise] {
    StartResult result;
    Traversal t;
    if (q->kind() == QueryKind::kMliq) {
      MliqOptions options = q->mliq_options();
      options.prefetch_depth = internal::EffectivePrefetchDepth(
          options.prefetch_depth, service_->prefetch_depth());
      t.mliq = std::make_unique<MliqTraversal>(service_->tree(), q->pfv(),
                                               q->k(), options);
      t.mliq->Run();
      result.partial.log_ref = t.mliq->log_ref();
      result.partial.denominator_lo = t.mliq->denominator_lo();
      result.partial.denominator_hi = t.mliq->denominator_hi();
      result.partial.exhausted = t.mliq->exhausted();
      const TraversalStats s = t.mliq->stats();
      result.partial.nodes_visited = s.nodes_visited;
      result.partial.leaf_nodes_visited = s.leaf_nodes_visited;
      result.partial.objects_evaluated = s.objects_evaluated;
      result.partial.items = t.mliq->top_items();
    } else {
      TiqOptions options = q->tiq_options();
      options.prefetch_depth = internal::EffectivePrefetchDepth(
          options.prefetch_depth, service_->prefetch_depth());
      t.tiq = std::make_unique<TiqTraversal>(service_->tree(), q->pfv(),
                                             q->threshold(), options);
      t.tiq->Run();
      result.partial.log_ref = t.tiq->log_ref();
      result.partial.denominator_lo = t.tiq->denominator_lo();
      result.partial.denominator_hi = t.tiq->denominator_hi();
      result.partial.exhausted = t.tiq->exhausted();
      const TraversalStats s = t.tiq->stats();
      result.partial.nodes_visited = s.nodes_visited;
      result.partial.leaf_nodes_visited = s.leaf_nodes_visited;
      result.partial.objects_evaluated = s.objects_evaluated;
      result.partial.items = t.tiq->candidates();
    }
    result.partial.tree_size = service_->tree().size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      traversals_[traversal] = std::move(t);
    }
    promise->set_value(std::move(result));
    return QueryResponse{};
  });
  return future;
}

std::future<ShardBackend::RefineResult> InProcessBackend::Refine(
    std::vector<RefineSpec> specs) {
  return channel_->Submit(std::move(specs));
}

ShardBackend::RefineResult InProcessBackend::Flush(
    const std::vector<RefineSpec>& specs) {
  // The whole round is one closure on the shard's worker pool — the local
  // analogue of "one frame per shard per round". Flush blocks until the
  // closure finishes, so the captured reference stays valid.
  RefineResult result;
  const std::vector<RefineSpec>* specs_ptr = &specs;
  RefineResult* result_ptr = &result;
  service_->SubmitWork([this, specs_ptr, result_ptr] {
        for (const RefineSpec& spec : *specs_ptr) {
          Traversal* t = nullptr;
          {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = traversals_.find(spec.traversal);
            GAUSS_CHECK_MSG(it != traversals_.end(),
                            "Refine on an unknown traversal");
            t = &it->second;
          }
          // Safe without the lock: the coordinator never releases a
          // traversal with a refine round in flight.
          if (t->mliq) {
            t->mliq->RefineDenominator(spec.max_gap);
            result_ptr->updates.push_back(UpdateFromMliq(*t->mliq));
          } else {
            t->tiq->RefineDenominator(spec.max_gap);
            result_ptr->updates.push_back(UpdateFromTiq(*t->tiq));
          }
        }
        return QueryResponse{};
      })
      .get();
  return result;
}

void InProcessBackend::Release(const std::vector<uint64_t>& traversals) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const uint64_t id : traversals) traversals_.erase(id);
}

ShardBackend::StatsResult InProcessBackend::FetchStats() {
  StatsResult result;
  result.io = service_->tree().pool()->stats();
  return result;
}

ShardBackend::SketchResult InProcessBackend::FetchSketch() {
  // The root page load runs on the shard's worker pool, same placement rule
  // as Start/Refine.
  SketchResult result;
  SketchResult* result_ptr = &result;
  service_
      ->SubmitWork([this, result_ptr] {
        result_ptr->sketch = BuildShardSketch(service_->tree());
        return QueryResponse{};
      })
      .get();
  return result;
}

BackendRefineCounters InProcessBackend::refine_counters() const {
  return channel_->counters();
}

}  // namespace gauss
