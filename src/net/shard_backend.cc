#include "net/shard_backend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/log_sum_exp.h"
#include "common/macros.h"
#include "gausstree/delta_tree.h"
#include "math/kernels.h"

namespace gauss {

// ------------------------------ RefineChannel -------------------------------

RefineChannel::RefineChannel(FlushFn flush) : flush_(std::move(flush)) {
  flusher_ = std::thread([this] { Loop(); });
}

RefineChannel::~RefineChannel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  flusher_.join();
}

std::future<ShardBackend::RefineResult> RefineChannel::Submit(
    std::vector<RefineSpec> specs) {
  Waiter waiter;
  waiter.specs = std::move(specs);
  std::future<ShardBackend::RefineResult> future =
      waiter.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    GAUSS_CHECK_MSG(!closed_, "Refine on a shut-down backend");
    pending_.push_back(std::move(waiter));
  }
  cv_.notify_all();
  return future;
}

BackendRefineCounters RefineChannel::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void RefineChannel::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
    if (pending_.empty()) return;  // closed, fully drained
    std::vector<Waiter> batch = std::move(pending_);
    pending_.clear();

    std::vector<RefineSpec> combined;
    for (const Waiter& w : batch) {
      combined.insert(combined.end(), w.specs.begin(), w.specs.end());
    }
    ++counters_.rounds;
    counters_.requests += combined.size();
    lock.unlock();

    // One flush carries every spec pending at round start; submissions
    // arriving during the flush ride the next round.
    ShardBackend::RefineResult round = flush_(combined);
    if (round.error.ok() && round.updates.size() != combined.size()) {
      round.error = {NetErrorCode::kProtocolError,
                     "refine round returned wrong update count"};
      round.updates.clear();
    }

    size_t offset = 0;
    for (Waiter& w : batch) {
      ShardBackend::RefineResult part;
      part.error = round.error;
      if (round.error.ok()) {
        part.updates.assign(round.updates.begin() + offset,
                            round.updates.begin() + offset + w.specs.size());
      }
      offset += w.specs.size();
      w.promise.set_value(std::move(part));
    }
    lock.lock();
  }
}

// ----------------------------- InProcessBackend -----------------------------

namespace {

RefineUpdate UpdateFromMliq(const MliqTraversal& t) {
  RefineUpdate u;
  const TraversalStats s = t.stats();
  u.denominator_lo = t.denominator_lo();
  u.denominator_hi = t.denominator_hi();
  u.exhausted = t.exhausted();
  u.nodes_visited = s.nodes_visited;
  u.leaf_nodes_visited = s.leaf_nodes_visited;
  u.objects_evaluated = s.objects_evaluated;
  return u;
}

RefineUpdate UpdateFromTiq(const TiqTraversal& t) {
  RefineUpdate u;
  const TraversalStats s = t.stats();
  u.denominator_lo = t.denominator_lo();
  u.denominator_hi = t.denominator_hi();
  u.exhausted = t.exhausted();
  u.nodes_visited = s.nodes_visited;
  u.leaf_nodes_visited = s.leaf_nodes_visited;
  u.objects_evaluated = s.objects_evaluated;
  return u;
}

}  // namespace

ShardSketch BuildShardSketch(const GaussTree& tree) {
  ShardSketch sketch;
  sketch.tree_size = tree.size();
  sketch.sigma_policy = tree.options().sigma_policy;
  if (sketch.tree_size == 0) return sketch;

  GtNode root;
  tree.store().Load(tree.root(), &root);
  sketch.root_bounds = root.ComputeBounds(tree.dim());
  if (root.leaf()) {
    // Degenerate per-object bounds: the hull of a point MBR is the exact
    // joint density, so the sketch interval collapses to the true partial
    // denominator for single-level shards.
    sketch.entries.reserve(root.pfvs.size());
    for (const Pfv& v : root.pfvs) {
      ShardSketchEntry entry;
      entry.count = 1;
      entry.bounds.resize(tree.dim());
      for (size_t d = 0; d < tree.dim(); ++d) {
        entry.bounds[d] = {v.mu[d], v.mu[d], v.sigma[d], v.sigma[d]};
      }
      sketch.entries.push_back(std::move(entry));
    }
  } else {
    sketch.entries.reserve(root.children.size());
    for (const GtChildEntry& e : root.children) {
      sketch.entries.push_back({e.count, e.bounds});
    }
  }
  return sketch;
}

InProcessBackend::InProcessBackend(QueryService* service) : service_(service) {
  GAUSS_CHECK(service_ != nullptr);
  channel_ = std::make_unique<RefineChannel>(
      [this](const std::vector<RefineSpec>& specs) { return Flush(specs); });
}

InProcessBackend::~InProcessBackend() {
  channel_.reset();  // drain pending refine rounds while service_ is live
}

size_t InProcessBackend::dim() const { return service_->tree().dim(); }

std::future<ShardBackend::StartResult> InProcessBackend::Start(
    uint64_t traversal, const Query& query) {
  auto promise = std::make_shared<std::promise<StartResult>>();
  std::future<StartResult> future = promise->get_future();
  // The traversal is constructed *and* run on the shard's worker pool, so
  // page I/O stays with the shard that owns the pages (same placement as the
  // pre-backend ShardCoordinator::ScatterRun). `query` stays valid until the
  // future is ready (ShardBackend contract), so the pointer capture is safe.
  const Query* q = &query;
  service_->SubmitWork([this, traversal, q, promise] {
    StartResult result;
    Traversal t;
    if (q->kind() == QueryKind::kMliq) {
      MliqOptions options = q->mliq_options();
      options.prefetch_depth = internal::EffectivePrefetchDepth(
          options.prefetch_depth, service_->prefetch_depth());
      t.mliq = std::make_unique<MliqTraversal>(service_->tree(), q->pfv(),
                                               q->k(), options);
      t.mliq->Run();
      result.partial.log_ref = t.mliq->log_ref();
      result.partial.denominator_lo = t.mliq->denominator_lo();
      result.partial.denominator_hi = t.mliq->denominator_hi();
      result.partial.exhausted = t.mliq->exhausted();
      const TraversalStats s = t.mliq->stats();
      result.partial.nodes_visited = s.nodes_visited;
      result.partial.leaf_nodes_visited = s.leaf_nodes_visited;
      result.partial.objects_evaluated = s.objects_evaluated;
      result.partial.items = t.mliq->top_items();
    } else {
      TiqOptions options = q->tiq_options();
      options.prefetch_depth = internal::EffectivePrefetchDepth(
          options.prefetch_depth, service_->prefetch_depth());
      t.tiq = std::make_unique<TiqTraversal>(service_->tree(), q->pfv(),
                                             q->threshold(), options);
      t.tiq->Run();
      result.partial.log_ref = t.tiq->log_ref();
      result.partial.denominator_lo = t.tiq->denominator_lo();
      result.partial.denominator_hi = t.tiq->denominator_hi();
      result.partial.exhausted = t.tiq->exhausted();
      const TraversalStats s = t.tiq->stats();
      result.partial.nodes_visited = s.nodes_visited;
      result.partial.leaf_nodes_visited = s.leaf_nodes_visited;
      result.partial.objects_evaluated = s.objects_evaluated;
      result.partial.items = t.tiq->candidates();
    }
    result.partial.tree_size = service_->tree().size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      traversals_[traversal] = std::move(t);
    }
    promise->set_value(std::move(result));
    return QueryResponse{};
  });
  return future;
}

std::future<ShardBackend::RefineResult> InProcessBackend::Refine(
    std::vector<RefineSpec> specs) {
  return channel_->Submit(std::move(specs));
}

ShardBackend::RefineResult InProcessBackend::Flush(
    const std::vector<RefineSpec>& specs) {
  // The whole round is one closure on the shard's worker pool — the local
  // analogue of "one frame per shard per round". Flush blocks until the
  // closure finishes, so the captured reference stays valid.
  RefineResult result;
  const std::vector<RefineSpec>* specs_ptr = &specs;
  RefineResult* result_ptr = &result;
  service_->SubmitWork([this, specs_ptr, result_ptr] {
        for (const RefineSpec& spec : *specs_ptr) {
          Traversal* t = nullptr;
          {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = traversals_.find(spec.traversal);
            GAUSS_CHECK_MSG(it != traversals_.end(),
                            "Refine on an unknown traversal");
            t = &it->second;
          }
          // Safe without the lock: the coordinator never releases a
          // traversal with a refine round in flight.
          if (t->mliq) {
            t->mliq->RefineDenominator(spec.max_gap);
            result_ptr->updates.push_back(UpdateFromMliq(*t->mliq));
          } else {
            t->tiq->RefineDenominator(spec.max_gap);
            result_ptr->updates.push_back(UpdateFromTiq(*t->tiq));
          }
        }
        return QueryResponse{};
      })
      .get();
  return result;
}

void InProcessBackend::Release(const std::vector<uint64_t>& traversals) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const uint64_t id : traversals) traversals_.erase(id);
}

ShardBackend::StatsResult InProcessBackend::FetchStats() {
  StatsResult result;
  result.io = service_->tree().pool()->stats();
  return result;
}

ShardBackend::SketchResult InProcessBackend::FetchSketch() {
  // The root page load runs on the shard's worker pool, same placement rule
  // as Start/Refine.
  SketchResult result;
  SketchResult* result_ptr = &result;
  service_
      ->SubmitWork([this, result_ptr] {
        result_ptr->sketch = BuildShardSketch(service_->tree());
        return QueryResponse{};
      })
      .get();
  return result;
}

BackendRefineCounters InProcessBackend::refine_counters() const {
  return channel_->counters();
}

// ------------------------------- DeltaBackend -------------------------------

DeltaBackend::DeltaBackend(std::shared_ptr<const DeltaTree> delta,
                           SigmaPolicy policy)
    : delta_(std::move(delta)), policy_(policy) {
  GAUSS_CHECK(delta_ != nullptr);
}

size_t DeltaBackend::dim() const { return delta_->dim(); }

std::future<ShardBackend::StartResult> DeltaBackend::Start(
    uint64_t traversal, const Query& query) {
  std::promise<StartResult> promise;
  std::future<StartResult> future = promise.get_future();

  StartResult result;
  ShardPartial& partial = result.partial;
  const size_t n = delta_->size();  // snapshot: the query's delta prefix
  partial.tree_size = n;
  if (n == 0) {
    promise.set_value(std::move(result));
    return future;
  }

  // Exact per-object joint log densities over the delta's SoA planes — one
  // batch kernel call for the whole prefix, same arithmetic the tree
  // traversals bottom out in, so the combined answer matches a tree holding
  // these objects to the last bit of certified probability.
  std::vector<double> log_density(n);
  kernels::JointBatchArgs args;
  args.mu = delta_->mu_planes();
  args.sigma = delta_->sigma_planes();
  args.stride = delta_->plane_stride();
  args.n = n;
  args.dim = delta_->dim();
  args.mu_q = query.pfv().mu.data();
  args.sigma_q = query.pfv().sigma.data();
  args.policy = policy_;
  kernels::JointLogDensityBatch(args, log_density.data());
  double log_ref = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) log_ref = std::max(log_ref, log_density[i]);
  partial.log_ref = log_ref;

  KahanSum denominator;
  std::vector<double> scaled(n);
  kernels::ExpShiftBatch(log_density.data(), log_ref, n, scaled.data());
  for (size_t i = 0; i < n; ++i) denominator.Add(scaled[i]);
  partial.denominator_lo = denominator.Value();
  partial.denominator_hi = denominator.Value();
  partial.exhausted = true;
  partial.objects_evaluated = n;

  if (query.kind() == QueryKind::kMliq) {
    // Local top-k at or above the certified fleet-wide density floor. A tie
    // with the floor must still surface (the floor certifies >= k objects at
    // or above it); surplus items are harmless — the coordinator's merge
    // truncates to k.
    const double floor_log = query.mliq_options().density_floor_log;
    for (size_t i = 0; i < n; ++i) {
      if (log_density[i] < floor_log) continue;
      partial.items.push_back({delta_->at(i).id, scaled[i], log_density[i]});
    }
    std::stable_sort(partial.items.begin(), partial.items.end(),
                     [](const ScoredObject& a, const ScoredObject& b) {
                       return a.scaled_density > b.scaled_density;
                     });
    if (partial.items.size() > query.k()) partial.items.resize(query.k());
  } else {
    // Conservative local filter, identical to the tree shards': drop a
    // candidate only when its probability upper bound under the larger of
    // the exact local denominator and the certified combined floor falls
    // strictly below the threshold. No false dismissals; the coordinator
    // re-filters the union under combined bounds.
    const double den_floor =
        std::max(denominator.Value(), query.tiq_options().denominator_floor);
    for (size_t i = 0; i < n; ++i) {
      const double prob_hi =
          den_floor > 0.0 ? std::min(1.0, scaled[i] / den_floor) : 1.0;
      if (prob_hi < query.threshold()) continue;
      partial.items.push_back({delta_->at(i).id, scaled[i], log_density[i]});
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    traversals_[traversal] = State{denominator.Value(), n};
  }
  promise.set_value(std::move(result));
  return future;
}

std::future<ShardBackend::RefineResult> DeltaBackend::Refine(
    std::vector<RefineSpec> specs) {
  // Defensive: every refinement policy skips exhausted traversals, so this
  // path is never exercised by the coordinator — but answering with the
  // stored exact state keeps the backend honest if that ever changes.
  std::promise<RefineResult> promise;
  RefineResult result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rounds;
    counters_.requests += specs.size();
    for (const RefineSpec& spec : specs) {
      auto it = traversals_.find(spec.traversal);
      GAUSS_CHECK_MSG(it != traversals_.end(), "Refine on an unknown traversal");
      RefineUpdate update;
      update.denominator_lo = it->second.denominator;
      update.denominator_hi = it->second.denominator;
      update.exhausted = true;
      update.objects_evaluated = it->second.objects;
      result.updates.push_back(update);
    }
  }
  promise.set_value(std::move(result));
  return promise.get_future();
}

void DeltaBackend::Release(const std::vector<uint64_t>& traversals) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const uint64_t id : traversals) traversals_.erase(id);
}

ShardBackend::StatsResult DeltaBackend::FetchStats() {
  return StatsResult{};  // in-memory: no pages, no I/O counters
}

ShardBackend::SketchResult DeltaBackend::FetchSketch() {
  // Degenerate per-object entries, like BuildShardSketch's leaf-root case.
  // In practice the coordinator fetches at epoch construction, when the
  // delta is empty (objects enrolled later only *raise* the true combined
  // denominator and the k-th best density, so the cached floors stay
  // conservative for every later query).
  SketchResult result;
  const size_t n = delta_->size();
  result.sketch.tree_size = n;
  result.sketch.sigma_policy = policy_;
  if (n == 0) return result;
  result.sketch.root_bounds.assign(delta_->dim(), DimBounds{});
  for (size_t d = 0; d < delta_->dim(); ++d) {
    DimBounds& b = result.sketch.root_bounds[d];
    b = {delta_->at(0).mu[d], delta_->at(0).mu[d], delta_->at(0).sigma[d],
         delta_->at(0).sigma[d]};
    for (size_t i = 1; i < n; ++i) {
      const Pfv& v = delta_->at(i);
      b.mu_lo = std::min(b.mu_lo, v.mu[d]);
      b.mu_hi = std::max(b.mu_hi, v.mu[d]);
      b.sigma_lo = std::min(b.sigma_lo, v.sigma[d]);
      b.sigma_hi = std::max(b.sigma_hi, v.sigma[d]);
    }
  }
  result.sketch.entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Pfv& v = delta_->at(i);
    ShardSketchEntry entry;
    entry.count = 1;
    entry.bounds.resize(delta_->dim());
    for (size_t d = 0; d < delta_->dim(); ++d) {
      entry.bounds[d] = {v.mu[d], v.mu[d], v.sigma[d], v.sigma[d]};
    }
    result.sketch.entries.push_back(std::move(entry));
  }
  return result;
}

BackendRefineCounters DeltaBackend::refine_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace gauss
