#ifndef GAUSS_NET_FRAME_IO_H_
#define GAUSS_NET_FRAME_IO_H_

#include <algorithm>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace gauss {

// Synchronous framed I/O over a TcpSocket: one whole frame per call, bounded
// by a deadline. Used where a connection is driven frame-at-a-time (the
// client handshake and the server's per-connection loop); the RpcBackend
// reader instead keeps a streaming parse buffer, because a deadline hit
// mid-frame must not lose buffered bytes there.

inline NetError WriteFrame(TcpSocket& sock, MsgType type, uint64_t request_id,
                           const std::vector<uint8_t>& body,
                           SocketDeadline deadline) {
  std::vector<uint8_t> wire;
  wire.reserve(4 + 1 + 8 + body.size());
  AppendFrame(type, request_id, body, &wire);
  return sock.SendAll(wire.data(), wire.size(), deadline);
}

inline NetError ReadFrame(TcpSocket& sock, Frame* frame,
                          SocketDeadline deadline) {
  uint8_t prefix[4];
  if (NetError error = sock.RecvAll(prefix, sizeof(prefix), deadline);
      !error.ok()) {
    return error;
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (payload_len > kMaxFramePayload || payload_len < 1 + 8) {
    return {NetErrorCode::kProtocolError, "bad frame length prefix"};
  }
  std::vector<uint8_t> buf(4 + payload_len);
  std::copy(prefix, prefix + 4, buf.begin());
  if (NetError error = sock.RecvAll(buf.data() + 4, payload_len, deadline);
      !error.ok()) {
    return error;
  }
  size_t consumed = 0;
  NetError parse_error;
  const FrameParse verdict =
      ParseFrame(buf.data(), buf.size(), frame, &consumed, &parse_error);
  if (verdict != FrameParse::kFrame) return parse_error;
  return {};
}

}  // namespace gauss

#endif  // GAUSS_NET_FRAME_IO_H_
