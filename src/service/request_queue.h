#ifndef GAUSS_SERVICE_REQUEST_QUEUE_H_
#define GAUSS_SERVICE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace gauss {

namespace internal {
struct QueryTask;  // one in-flight query: descriptor + promise (query_service.h)
}  // namespace internal

// Bounded multi-producer/multi-consumer queue of in-flight query tasks: the
// admission point of GaussServe. Producers (Submit callers) normally block
// while the queue is full — the bound is the service's backpressure
// mechanism, keeping the number of admitted-but-unserved queries finite no
// matter how fast clients submit. Deadline-carrying queries use TryPush
// instead, which rejects immediately on a full queue so admission control
// can shed them rather than make them wait. Consumers (workers) block while
// the queue is empty.
//
// The queue stores raw QueryTask pointers and never touches them; ownership
// conventions are the caller's (QueryService hands ownership from Submit to
// the popping worker).
//
// Design choice: a mutex + two condition variables rather than a lock-free
// ring. A pop is followed by an MLIQ/TIQ traversal costing tens of
// microseconds to milliseconds, so queue synchronization is noise (<1%) on
// the serving path; the mutex version is ~80 lines, trivially correct, and
// supports the blocking/closing semantics a lock-free ring would need extra
// machinery for.
class RequestQueue {
 public:
  // `capacity` > 0: maximum number of queued (not yet popped) items.
  explicit RequestQueue(size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Enqueues one task, blocking while the queue is full. Returns false (and
  // does not enqueue) if the queue has been closed.
  bool Push(internal::QueryTask* task);

  // Non-blocking admission: enqueues and returns true iff the queue is open
  // and has a free slot right now. Never waits — this is what deadline-based
  // shedding rejects through.
  bool TryPush(internal::QueryTask* task);

  // Dequeues into `*out`, blocking while the queue is empty. Returns false
  // once the queue is closed *and* drained — the worker shutdown signal.
  bool Pop(internal::QueryTask** out);

  // Closes the queue: subsequent Push/TryPush calls fail, Pop drains what is
  // left. Wakes every blocked producer and consumer. Idempotent — closing an
  // already-closed queue is a no-op, so shutdown paths may race on it.
  void Close();

  // True once Close() has run (racy by nature: a concurrent Close may land
  // right after the check; use for diagnostics, not admission decisions).
  bool closed() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<internal::QueryTask*> items_;
  bool closed_ = false;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_REQUEST_QUEUE_H_
