#ifndef GAUSS_SERVICE_REQUEST_QUEUE_H_
#define GAUSS_SERVICE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace gauss {

namespace internal {
struct BatchState;  // per-batch completion state, owned by ExecuteBatch
}  // namespace internal

// One unit of work for a service worker: query `index` of a submitted batch.
struct WorkItem {
  internal::BatchState* batch = nullptr;
  size_t index = 0;
};

// Bounded multi-producer/multi-consumer queue of WorkItems: the admission
// point of GaussServe. Producers (ExecuteBatch callers) block while the
// queue is full — the bound is the service's backpressure mechanism, keeping
// the number of admitted-but-unserved queries finite no matter how fast
// clients submit. Consumers (workers) block while it is empty.
//
// Design choice: a mutex + two condition variables rather than a lock-free
// ring. A pop is followed by an MLIQ/TIQ traversal costing tens of
// microseconds to milliseconds, so queue synchronization is noise (<1%) on
// the serving path; the mutex version is ~60 lines, trivially correct, and
// supports the blocking/closing semantics a lock-free ring would need extra
// machinery for.
class RequestQueue {
 public:
  // `capacity` > 0: maximum number of queued (not yet popped) items.
  explicit RequestQueue(size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Enqueues one item, blocking while the queue is full. Returns false (and
  // drops the item) if the queue has been closed.
  bool Push(const WorkItem& item);

  // Dequeues into `*out`, blocking while the queue is empty. Returns false
  // once the queue is closed *and* drained — the worker shutdown signal.
  bool Pop(WorkItem* out);

  // Closes the queue: subsequent Push calls fail, Pop drains what is left.
  // Wakes every blocked producer and consumer.
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<WorkItem> items_;
  bool closed_ = false;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_REQUEST_QUEUE_H_
