#include "service/service_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gauss {

namespace {

// Nearest-rank percentile over an ascending-sorted sample vector: the
// smallest sample such that at least pct% of the samples are <= it
// (index ceil(pct/100 * n) - 1).
double PercentileUs(const std::vector<uint64_t>& sorted_ns, double pct) {
  if (sorted_ns.empty()) return 0.0;
  const double rank =
      std::ceil(pct / 100.0 * static_cast<double>(sorted_ns.size()));
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (idx >= sorted_ns.size()) idx = sorted_ns.size() - 1;
  return static_cast<double>(sorted_ns[idx]) * 1e-3;
}

}  // namespace

LatencySummary LatencySummary::FromNanos(std::vector<uint64_t> samples_ns) {
  LatencySummary s;
  s.count = samples_ns.size();
  if (samples_ns.empty()) return s;
  std::sort(samples_ns.begin(), samples_ns.end());
  uint64_t total = 0;
  for (uint64_t ns : samples_ns) total += ns;
  s.mean_us = static_cast<double>(total) * 1e-3 /
              static_cast<double>(samples_ns.size());
  s.p50_us = PercentileUs(samples_ns, 50.0);
  s.p90_us = PercentileUs(samples_ns, 90.0);
  s.p99_us = PercentileUs(samples_ns, 99.0);
  s.max_us = static_cast<double>(samples_ns.back()) * 1e-3;
  return s;
}

double ServiceStats::pages_per_query() const {
  const uint64_t n = total_queries();
  if (n == 0) return 0.0;
  return static_cast<double>(io.logical_reads) / static_cast<double>(n);
}

std::string ServiceStats::ToString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "queries: %llu (mliq %llu, tiq %llu; shed %llu, expired %llu, "
      "shard-err %llu) in %.3f s -> %.0f qps\n"
      "refine: %llu rounds carrying %llu requests\n"
      "latency us: mean %.1f  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"
      "io: %llu logical / %llu physical reads (%.1f pages/query), "
      "%llu evictions\n"
      "work: %llu nodes (%llu leaves), %llu objects evaluated",
      static_cast<unsigned long long>(total_queries()),
      static_cast<unsigned long long>(mliq_queries),
      static_cast<unsigned long long>(tiq_queries),
      static_cast<unsigned long long>(shed_queries),
      static_cast<unsigned long long>(deadline_exceeded_queries),
      static_cast<unsigned long long>(shard_error_queries), wall_seconds, qps,
      static_cast<unsigned long long>(refine_rounds),
      static_cast<unsigned long long>(refine_batched_queries),
      latency.mean_us, latency.p50_us, latency.p90_us, latency.p99_us,
      latency.max_us, static_cast<unsigned long long>(io.logical_reads),
      static_cast<unsigned long long>(io.physical_reads), pages_per_query(),
      static_cast<unsigned long long>(io.evictions),
      static_cast<unsigned long long>(nodes_visited),
      static_cast<unsigned long long>(leaf_nodes_visited),
      static_cast<unsigned long long>(objects_evaluated));
  return std::string(buf);
}

}  // namespace gauss
