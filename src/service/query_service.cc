#include "service/query_service.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/macros.h"

namespace gauss {

namespace internal {

// Completion state of one ExecuteBatch call. Lives on the caller's stack;
// workers reach it through the WorkItems they pop. `remaining` is guarded by
// `mu` (not an atomic) so that the final decrement, the notification, and
// the waiter's wake-up all order through one lock — after the worker that
// finishes the last query releases `mu`, no worker touches the batch again,
// making it safe for ExecuteBatch to return and destroy this object.
struct BatchState {
  const std::vector<QueryRequest>* requests = nullptr;
  std::vector<QueryResponse>* responses = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = 0;
};

}  // namespace internal

QueryRequest QueryRequest::Mliq(Pfv q, size_t k, MliqOptions options) {
  QueryRequest req;
  req.kind = QueryKind::kMliq;
  req.query = std::move(q);
  req.k = k;
  req.mliq = options;
  return req;
}

QueryRequest QueryRequest::Tiq(Pfv q, double threshold, TiqOptions options) {
  QueryRequest req;
  req.kind = QueryKind::kTiq;
  req.query = std::move(q);
  req.threshold = threshold;
  req.tiq = options;
  return req;
}

QueryService::QueryService(const GaussTree& tree, QueryServiceOptions options)
    : tree_(tree),
      queue_(options.queue_capacity) {
  GAUSS_CHECK_MSG(tree.store().finalized(),
                  "QueryService requires a finalized tree");
  size_t workers = options.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  GAUSS_CHECK_MSG(workers == 1 || tree.pool()->thread_safe(),
                  "multi-worker serving needs a thread-safe PageCache "
                  "(use ShardedBufferPool)");
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

void QueryService::WorkerLoop() {
  WorkItem item;
  while (queue_.Pop(&item)) {
    internal::BatchState* batch = item.batch;
    const QueryRequest& req = (*batch->requests)[item.index];
    QueryResponse& resp = (*batch->responses)[item.index];
    resp.kind = req.kind;

    const auto start = std::chrono::steady_clock::now();
    if (req.kind == QueryKind::kMliq) {
      MliqResult r = QueryMliq(tree_, req.query, req.k, req.mliq);
      resp.items = std::move(r.items);
      resp.nodes_visited = r.stats.nodes_visited;
      resp.leaf_nodes_visited = r.stats.leaf_nodes_visited;
      resp.objects_evaluated = r.stats.objects_evaluated;
    } else {
      TiqResult r = QueryTiq(tree_, req.query, req.threshold, req.tiq);
      resp.items = std::move(r.items);
      resp.nodes_visited = r.stats.nodes_visited;
      resp.leaf_nodes_visited = r.stats.leaf_nodes_visited;
      resp.objects_evaluated = r.stats.objects_evaluated;
    }
    resp.latency_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());

    {
      std::lock_guard<std::mutex> lock(batch->mu);
      if (--batch->remaining == 0) batch->done_cv.notify_all();
    }
  }
}

BatchResult QueryService::ExecuteBatch(const std::vector<QueryRequest>& batch) {
  BatchResult result;
  result.responses.resize(batch.size());
  if (batch.empty()) return result;

  internal::BatchState state;
  state.requests = &batch;
  state.responses = &result.responses;
  state.remaining = batch.size();

  const IoStats io_before = tree_.pool()->stats();
  const auto start = std::chrono::steady_clock::now();

  for (size_t i = 0; i < batch.size(); ++i) {
    // Push blocks while the queue is full — backpressure towards the
    // submitting client. The queue only rejects after Close(), i.e. during
    // service shutdown; executing a batch then is a caller bug.
    GAUSS_CHECK_MSG(queue_.Push({&state, i}),
                    "ExecuteBatch on a shut-down QueryService");
  }

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.remaining == 0; });
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ServiceStats& stats = result.stats;
  stats.wall_seconds = wall;
  stats.io = tree_.pool()->stats() - io_before;
  std::vector<uint64_t> latencies;
  latencies.reserve(result.responses.size());
  for (size_t i = 0; i < result.responses.size(); ++i) {
    const QueryResponse& resp = result.responses[i];
    if (batch[i].kind == QueryKind::kMliq) {
      ++stats.mliq_queries;
    } else {
      ++stats.tiq_queries;
    }
    stats.nodes_visited += resp.nodes_visited;
    stats.leaf_nodes_visited += resp.leaf_nodes_visited;
    stats.objects_evaluated += resp.objects_evaluated;
    latencies.push_back(resp.latency_ns);
  }
  stats.latency = LatencySummary::FromNanos(std::move(latencies));
  if (wall > 0.0) {
    stats.qps = static_cast<double>(stats.total_queries()) / wall;
  }
  return result;
}

}  // namespace gauss
