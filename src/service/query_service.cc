#include "service/query_service.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"

namespace gauss {

namespace {

// The single execution path: every query — streamed or batched — goes
// through here inside a worker thread. The service-level prefetch depth
// fills in for queries that left the knob unset (0); it never overrides an
// explicit per-query depth.
QueryResponse ExecuteQuery(const GaussTree& tree, const Query& query,
                           size_t default_prefetch_depth) {
  QueryResponse resp;
  resp.kind = query.kind();
  const auto start = std::chrono::steady_clock::now();
  if (query.kind() == QueryKind::kMliq) {
    MliqOptions options = query.mliq_options();
    options.prefetch_depth = internal::EffectivePrefetchDepth(
        options.prefetch_depth, default_prefetch_depth);
    MliqResult r = QueryMliq(tree, query.pfv(), query.k(), options);
    resp.items = std::move(r.items);
    resp.stats = r.stats;
  } else {
    TiqOptions options = query.tiq_options();
    options.prefetch_depth = internal::EffectivePrefetchDepth(
        options.prefetch_depth, default_prefetch_depth);
    TiqResult r = QueryTiq(tree, query.pfv(), query.threshold(), options);
    resp.items = std::move(r.items);
    resp.stats = r.stats;
  }
  resp.latency_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

}  // namespace

QueryService::QueryService(const GaussTree& tree, QueryServiceOptions options)
    : tree_(tree),
      prefetch_depth_(options.prefetch_depth),
      queue_(options.queue_capacity) {
  GAUSS_CHECK_MSG(tree.store().finalized(),
                  "QueryService requires a finalized tree");
  size_t workers = options.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  GAUSS_CHECK_MSG(workers == 1 || tree.pool()->thread_safe(),
                  "multi-worker serving needs a thread-safe PageCache "
                  "(use ShardedBufferPool)");
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

std::future<QueryResponse> QueryService::Submit(Query query) {
  auto task = std::make_unique<internal::QueryTask>(std::move(query));
  std::future<QueryResponse> future = task->promise.get_future();

  if (task->query()->has_deadline()) {
    if (task->query()->deadline() <= std::chrono::steady_clock::now()) {
      // Dead on arrival: don't occupy a queue slot.
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      return future;
    }
    // A deadline query never waits on a full queue — by the time a slot
    // frees up its budget may be gone, and blocking the client would stall
    // its other submissions. Shed it instead: admission control.
    if (!queue_.TryPush(task.get())) {
      GAUSS_CHECK_MSG(!queue_.closed(),
                      "Submit on a shut-down QueryService");
      task->CompleteUnexecuted(QueryResponse::Status::kShed);
      return future;
    }
  } else {
    // Push blocks while the queue is full — backpressure towards the
    // submitting client. The queue only rejects after Close(), i.e. during
    // service shutdown; submitting then is a caller bug.
    GAUSS_CHECK_MSG(queue_.Push(task.get()),
                    "Submit on a shut-down QueryService");
  }
  // The queue accepted the task: the popping worker owns and deletes it.
  task.release();
  return future;
}

std::future<QueryResponse> QueryService::SubmitWork(
    std::function<QueryResponse()> work) {
  auto task = std::make_unique<internal::QueryTask>(std::move(work));
  std::future<QueryResponse> future = task->promise.get_future();
  GAUSS_CHECK_MSG(queue_.Push(task.get()),
                  "SubmitWork on a shut-down QueryService");
  task.release();
  return future;
}

void QueryService::WorkerLoop() {
  internal::QueryTask* raw = nullptr;
  while (queue_.Pop(&raw)) {
    std::unique_ptr<internal::QueryTask> task(raw);
    if (Query* query = task->query()) {
      if (query->has_deadline() &&
          query->deadline() <= std::chrono::steady_clock::now()) {
        // Expired while queued: report instead of burning tree traversal on
        // an answer nobody is waiting for.
        task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
        continue;
      }
      task->promise.set_value(ExecuteQuery(tree_, *query, prefetch_depth_));
    } else {
      auto& work = std::get<std::function<QueryResponse()>>(task->payload);
      task->promise.set_value(work());
    }
  }
}

BatchResult QueryService::ExecuteBatch(const std::vector<Query>& batch) {
  BatchResult result;
  if (batch.empty()) return result;

  const IoStats io_before = tree_.pool()->stats();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const Query& query : batch) futures.push_back(Submit(query));

  result.responses.reserve(batch.size());
  for (std::future<QueryResponse>& future : futures) {
    result.responses.push_back(future.get());
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats = AggregateBatchStats(result.responses, wall,
                                     tree_.pool()->stats() - io_before);
  return result;
}

ServiceStats AggregateBatchStats(const std::vector<QueryResponse>& responses,
                                 double wall_seconds, const IoStats& io) {
  ServiceStats stats;
  stats.wall_seconds = wall_seconds;
  stats.io = io;
  std::vector<uint64_t> latencies;
  latencies.reserve(responses.size());
  for (const QueryResponse& resp : responses) {
    if (resp.kind == QueryKind::kMliq) {
      ++stats.mliq_queries;
    } else {
      ++stats.tiq_queries;
    }
    switch (resp.status) {
      case QueryResponse::Status::kShed:
        ++stats.shed_queries;
        continue;  // no latency sample, no work done
      case QueryResponse::Status::kDeadlineExceeded:
        ++stats.deadline_exceeded_queries;
        continue;
      case QueryResponse::Status::kShardError:
        ++stats.shard_error_queries;
        continue;
      case QueryResponse::Status::kOk:
        break;
    }
    stats.nodes_visited += resp.stats.nodes_visited;
    stats.leaf_nodes_visited += resp.stats.leaf_nodes_visited;
    stats.objects_evaluated += resp.stats.objects_evaluated;
    latencies.push_back(resp.latency_ns);
  }
  stats.latency = LatencySummary::FromNanos(std::move(latencies));
  if (wall_seconds > 0.0) {
    stats.qps = static_cast<double>(stats.total_queries()) / wall_seconds;
  }
  return stats;
}

}  // namespace gauss
