#ifndef GAUSS_SERVICE_QUERY_SERVICE_H_
#define GAUSS_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <thread>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv.h"
#include "service/request_queue.h"
#include "service/service_stats.h"

namespace gauss {

// ============================== GaussServe ==================================
//
// QueryService is the concurrent batch query engine over one finalized
// Gauss-tree: a fixed pool of worker threads executes MLIQ/TIQ
// identification queries pulled from a bounded MPMC request queue.
//
// Serving model
//   * The tree is read-only while the service is alive (the classic
//     build-offline / serve-online shape). Build and Finalize() the tree
//     single-threaded as usual, then either hand that tree to the service or
//     — the intended production setup — reattach with GaussTree::Open() over
//     a ShardedBufferPool on the same device, so concurrent workers share a
//     latch-striped page cache instead of racing on the single-threaded
//     BufferPool.
//   * With more than one worker the tree's PageCache must advertise
//     thread_safe(); the constructor enforces this, so a racy configuration
//     fails loudly at startup instead of corrupting the cache under load.
//
// Batch execution
//   * ExecuteBatch() admits every request of the batch through the bounded
//     queue (blocking when it is full: backpressure), waits for the workers
//     to complete them, and returns per-query responses in request order
//     plus aggregate ServiceStats (throughput, latency percentiles, cache
//     I/O delta, traversal-work totals).
//   * Results are exactly the single-threaded QueryMliq/QueryTiq results:
//     queries are independent read-only traversals, so the answer bytes do
//     not depend on worker count or interleaving (service_test.cc asserts
//     this).
//   * ExecuteBatch may be called from several client threads at once; their
//     batches interleave in the shared queue and complete independently.
//
// Typical use:
//   ShardedBufferPool serve_pool(&device, kCachePages);
//   auto tree = GaussTree::Open(&serve_pool, meta_page);
//   QueryService service(*tree, {.num_workers = 8});
//   std::vector<QueryRequest> batch;
//   batch.push_back(QueryRequest::Mliq(probe, /*k=*/3));
//   batch.push_back(QueryRequest::Tiq(probe2, /*threshold=*/0.2));
//   BatchResult result = service.ExecuteBatch(batch);
//   // result.responses[i] answers batch[i]; result.stats aggregates.
// ============================================================================

enum class QueryKind : uint8_t { kMliq = 0, kTiq = 1 };

// One identification query. Use the factory helpers; only the fields of the
// selected kind are read.
struct QueryRequest {
  QueryKind kind = QueryKind::kMliq;
  Pfv query;

  // MLIQ parameters.
  size_t k = 1;
  MliqOptions mliq;

  // TIQ parameters.
  double threshold = 0.5;
  TiqOptions tiq;

  static QueryRequest Mliq(Pfv q, size_t k, MliqOptions options = {});
  static QueryRequest Tiq(Pfv q, double threshold, TiqOptions options = {});
};

// Answer to one QueryRequest, in the same order the batch was submitted.
struct QueryResponse {
  QueryKind kind = QueryKind::kMliq;
  // MLIQ: the k most likely identities, descending probability.
  // TIQ: every identity at/above the threshold, descending probability.
  std::vector<IdentificationResult> items;

  uint64_t latency_ns = 0;  // execution time inside the worker
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;
};

struct BatchResult {
  std::vector<QueryResponse> responses;  // responses[i] answers batch[i]
  ServiceStats stats;
};

struct QueryServiceOptions {
  // 0 = one worker per hardware thread.
  size_t num_workers = 0;
  // Bound of the admission queue (backpressure threshold).
  size_t queue_capacity = 1024;
};

class QueryService {
 public:
  // `tree` must be finalized and outlive the service; with num_workers > 1
  // its PageCache must be thread-safe (e.g. ShardedBufferPool).
  QueryService(const GaussTree& tree, QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Closes the queue and joins the workers (queued work is drained first).
  ~QueryService();

  // Executes every request and returns responses in request order plus
  // aggregate statistics. Blocks until the batch completes. Thread-safe.
  BatchResult ExecuteBatch(const std::vector<QueryRequest>& batch);

  const GaussTree& tree() const { return tree_; }
  size_t num_workers() const { return workers_.size(); }

 private:
  void WorkerLoop();

  const GaussTree& tree_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_QUERY_SERVICE_H_
