#ifndef GAUSS_SERVICE_QUERY_SERVICE_H_
#define GAUSS_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <variant>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "gausstree/query_common.h"
#include "net/net_error.h"
#include "pfv/pfv.h"
#include "service/query.h"
#include "service/request_queue.h"
#include "service/service_stats.h"

namespace gauss {

// ============================== GaussServe ==================================
//
// QueryService is the concurrent query engine over one finalized Gauss-tree:
// a fixed pool of worker threads executes MLIQ/TIQ identification queries
// pulled from a bounded MPMC request queue.
//
// This is the engine underneath the GaussDb façade (api/gauss_db.h) — most
// code should build a GaussDb and call Serve() instead of wiring a
// QueryService by hand; the service remains public for callers that manage
// their own storage stack.
//
// Serving model
//   * The tree is read-only while the service is alive (the classic
//     build-offline / serve-online shape). Build and Finalize() the tree
//     single-threaded as usual, then either hand that tree to the service or
//     — the intended production setup, and what GaussDb::Serve() does —
//     reattach with GaussTree::Open() over a ShardedBufferPool on the same
//     device, so concurrent workers share a latch-striped page cache instead
//     of racing on the single-threaded BufferPool.
//   * With more than one worker the tree's PageCache must advertise
//     thread_safe(); the constructor enforces this, so a racy configuration
//     fails loudly at startup instead of corrupting the cache under load.
//
// Execution paths — one pipeline, two calling conventions
//   * Submit() is the streaming path: it admits one query through the
//     bounded queue and immediately returns a std::future that becomes
//     ready when a worker finishes the query. Callers can interleave
//     submission with other work, gather futures in any order, and pipeline
//     queries without batch barriers.
//   * ExecuteBatch() is a thin wrapper: it Submit()s every query of the
//     batch, waits for all futures, and returns per-query responses in
//     request order plus aggregate ServiceStats (throughput, latency
//     percentiles, cache I/O delta, traversal-work totals). Both paths run
//     the identical worker code, so their answers are byte-identical — and
//     identical to the low-level QueryMliq/QueryTiq entry points
//     (streaming_test.cc asserts this).
//
// Admission control
//   * Queries without a deadline block in Submit() while the queue is full —
//     backpressure towards the submitting client.
//   * Queries with a deadline (Query::Deadline/DeadlineAfter) never wait:
//     a full queue sheds them (Status::kShed), an already-expired deadline
//     reports Status::kDeadlineExceeded at admission, and a deadline that
//     expires while queued reports kDeadlineExceeded instead of executing.
//     Either way the future completes with empty items and zero work — load
//     is rejected, never silently dropped.
//
// Shutdown
//   * The destructor closes the queue, drains every admitted query, and
//     joins the workers: every future obtained from Submit() is ready once
//     the destructor returns. Submitting to a destroyed/shutting-down
//     service is a caller bug (fails a GAUSS_CHECK).
//
// Typical use (hand-wired; see api/gauss_db.h for the façade equivalent):
//   ShardedBufferPool serve_pool(&device, kCachePages);
//   auto tree = GaussTree::Open(&serve_pool, meta_page);
//   QueryService service(*tree, {.num_workers = 8});
//   auto f1 = service.Submit(Query::Mliq(probe, /*k=*/3));
//   auto f2 = service.Submit(Query::Tiq(probe2, /*threshold=*/0.2)
//                                .DeadlineAfter(std::chrono::milliseconds(5)));
//   QueryResponse r1 = f1.get(), r2 = f2.get();
// ============================================================================

// Answer to one submitted Query.
struct QueryResponse {
  // kOk: the query executed; items/stats/latency are filled.
  // kShed: admission control rejected the query at a full queue (only
  //        deadline-carrying queries are shed; others wait).
  // kDeadlineExceeded: the deadline passed before execution began.
  // kShardError: a sharded coordinator could not complete the query because
  //              a shard backend failed (connection lost, request timed out,
  //              malformed reply); `error` carries the typed cause. Never
  //              produced by an unsharded QueryService or in-process shards.
  enum class Status : uint8_t {
    kOk = 0,
    kShed = 1,
    kDeadlineExceeded = 2,
    kShardError = 3,
  };

  QueryKind kind = QueryKind::kMliq;
  Status status = Status::kOk;

  // The failing shard's transport error when status == kShardError;
  // error.ok() otherwise.
  NetError error;

  // MLIQ: the k most likely identities, descending probability.
  // TIQ: every identity at/above the threshold, descending probability.
  // Empty unless status == kOk (a TIQ can also be legitimately empty).
  std::vector<IdentificationResult> items;

  uint64_t latency_ns = 0;  // execution time inside the worker
  TraversalStats stats;     // traversal work + denominator bounds
};

struct BatchResult {
  std::vector<QueryResponse> responses;  // responses[i] answers batch[i]
  ServiceStats stats;
};

namespace internal {

// One in-flight unit of work: either a Query descriptor (the normal serving
// path) or an opaque closure (the scatter-gather hook a ShardCoordinator
// uses to run shard-local traversal steps on the shard's workers), plus the
// promise its future observes. Heap-allocated by Submit()/SubmitWork();
// ownership passes through the RequestQueue to the worker that pops it (or
// stays with Submit on shed/expiry).
struct QueryTask {
  std::variant<Query, std::function<QueryResponse()>> payload;
  std::promise<QueryResponse> promise;

  explicit QueryTask(Query q) : payload(std::move(q)) {}
  explicit QueryTask(std::function<QueryResponse()> work)
      : payload(std::move(work)) {}

  // The query descriptor, or nullptr for closure tasks.
  Query* query() { return std::get_if<Query>(&payload); }

  // Completes the task without executing it (shed / deadline-exceeded).
  // Query tasks only — closure tasks carry no deadline and are never shed.
  void CompleteUnexecuted(QueryResponse::Status status) {
    QueryResponse resp;
    resp.kind = query()->kind();
    resp.status = status;
    promise.set_value(std::move(resp));
  }
};

}  // namespace internal

struct QueryServiceOptions {
  // 0 = one worker per hardware thread.
  size_t num_workers = 0;
  // Bound of the admission queue (backpressure/shedding threshold).
  size_t queue_capacity = 1024;
  // Default asynchronous read-ahead depth applied to every executed query
  // whose own options leave prefetch_depth at 0 (see
  // MliqOptions::prefetch_depth): after each node expansion the traversal
  // hints the cache about the next `prefetch_depth` frontier pages so
  // device reads overlap with compute. 0 = no read-ahead. Answers are
  // byte-identical at every depth.
  size_t prefetch_depth = 0;
};

class QueryService {
 public:
  // `tree` must be finalized and outlive the service; with num_workers > 1
  // its PageCache must be thread-safe (e.g. ShardedBufferPool).
  QueryService(const GaussTree& tree, QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Closes the queue, drains every admitted query, and joins the workers.
  // Every future returned by Submit() is ready afterwards.
  ~QueryService();

  // Streaming submission: admits the query and returns the future of its
  // response. Blocks only when the queue is full *and* the query carries no
  // deadline (deadline queries are shed instead). Thread-safe.
  std::future<QueryResponse> Submit(Query query);

  // Batch convenience over Submit(): executes every query and returns
  // responses in request order plus aggregate statistics. Blocks until the
  // batch completes. Thread-safe; concurrent batches interleave in the
  // shared queue and complete independently.
  BatchResult ExecuteBatch(const std::vector<Query>& batch);

  // Runs an arbitrary closure on a worker thread and returns the future of
  // its return value. Admission is the blocking-backpressure path (closures
  // carry no deadline, so they are never shed) — this is how a
  // ShardCoordinator executes per-shard traversal and refinement steps on
  // the shard's own worker pool. Thread-safe.
  std::future<QueryResponse> SubmitWork(std::function<QueryResponse()> work);

  const GaussTree& tree() const { return tree_; }
  size_t num_workers() const { return workers_.size(); }

  // The service-level read-ahead default (a ShardCoordinator applies it to
  // the shard-local traversals it runs through SubmitWork, which bypasses
  // the query execution path).
  size_t prefetch_depth() const { return prefetch_depth_; }

 private:
  void WorkerLoop();

  const GaussTree& tree_;
  const size_t prefetch_depth_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
};

// Aggregates per-response outcomes into ServiceStats: query-kind and
// admission-outcome counts, latency percentiles over executed queries only
// (a shed or expired query is counted in mliq/tiq_queries exactly once and
// contributes no latency sample and no traversal work), throughput over
// `wall_seconds`, and the caller-measured cache delta `io`. Shared by
// QueryService::ExecuteBatch and ShardCoordinator::ExecuteBatch so both
// paths count identically.
ServiceStats AggregateBatchStats(const std::vector<QueryResponse>& responses,
                                 double wall_seconds, const IoStats& io);

}  // namespace gauss

#endif  // GAUSS_SERVICE_QUERY_SERVICE_H_
