#include "service/shard_coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace gauss {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// A shard-local scored object rebased onto the coordinator's global scale.
struct GlobalCandidate {
  ScoredObject obj;
  double scaled_global = 0.0;
};

QueryResponse ShardErrorResponse(QueryKind kind, const NetError& error) {
  QueryResponse resp;
  resp.kind = kind;
  resp.status = QueryResponse::Status::kShardError;
  resp.error = error;
  return resp;
}

}  // namespace

// Global reference scale over the shards' partials plus the per-shard
// rebasing factors exp(log_ref_s - log_ref_global). The global reference is
// the maximum, so every factor is <= 1 and rebasing can only shrink scaled
// values. Shards with empty trees carry no objects and no denominator mass;
// they are skipped (factor 0).
namespace {

struct GlobalScale {
  double log_ref = kNegInf;  // kNegInf iff every shard is empty
  std::vector<double> factor;

  template <typename Runs>
  explicit GlobalScale(const Runs& runs) {
    factor.resize(runs.size(), 0.0);
    for (const auto& run : runs) {
      if (run.partial.tree_size > 0) {
        log_ref = std::max(log_ref, run.partial.log_ref);
      }
    }
    for (size_t s = 0; s < runs.size(); ++s) {
      if (runs[s].partial.tree_size > 0) {
        factor[s] = std::exp(runs[s].partial.log_ref - log_ref);
      }
    }
  }

  bool all_empty() const { return log_ref == kNegInf; }
};

// Combined denominator bounds in the global scale: the Bayes denominator is
// a sum over all database objects, so it decomposes exactly into per-shard
// partial sums — and interval bounds on the parts sum to interval bounds on
// the whole.
template <typename Runs>
void CombineDenominator(const Runs& runs, const GlobalScale& scale, double* lo,
                        double* hi) {
  *lo = 0.0;
  *hi = 0.0;
  for (size_t s = 0; s < runs.size(); ++s) {
    *lo += runs[s].partial.denominator_lo * scale.factor[s];
    *hi += runs[s].partial.denominator_hi * scale.factor[s];
  }
}

// Work counters summed over every shard (counters are cumulative, so the
// latest partial always carries each traversal's total); denominator bounds
// are the combined global-scale interval.
template <typename Runs>
TraversalStats SumStats(const Runs& runs, double global_lo, double global_hi) {
  TraversalStats total;
  for (const auto& run : runs) {
    total.nodes_visited += run.partial.nodes_visited;
    total.leaf_nodes_visited += run.partial.leaf_nodes_visited;
    total.objects_evaluated += run.partial.objects_evaluated;
  }
  total.denominator_lo = global_lo;
  total.denominator_hi = global_hi;
  return total;
}

}  // namespace

ShardCoordinator::ShardCoordinator(std::vector<ShardBackend*> backends,
                                   ShardCoordinatorOptions options)
    : backends_(std::move(backends)), queue_(options.queue_capacity) {
  Init(options);
}

ShardCoordinator::ShardCoordinator(std::vector<QueryService*> shards,
                                   ShardCoordinatorOptions options)
    : queue_(options.queue_capacity) {
  GAUSS_CHECK_MSG(!shards.empty(), "ShardCoordinator needs >= 1 shard");
  owned_backends_.reserve(shards.size());
  backends_.reserve(shards.size());
  for (QueryService* shard : shards) {
    GAUSS_CHECK(shard != nullptr);
    owned_backends_.push_back(std::make_unique<InProcessBackend>(shard));
    backends_.push_back(owned_backends_.back().get());
  }
  Init(options);
}

void ShardCoordinator::Init(ShardCoordinatorOptions options) {
  GAUSS_CHECK_MSG(!backends_.empty(), "ShardCoordinator needs >= 1 shard");
  for (const ShardBackend* backend : backends_) GAUSS_CHECK(backend != nullptr);
  dim_ = backends_.front()->dim();
  for (const ShardBackend* backend : backends_) {
    GAUSS_CHECK_MSG(backend->dim() == dim_,
                    "all shards must share one dimensionality");
  }
  size_t threads = options.num_threads;
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { CoordinatorLoop(); });
  }
}

ShardCoordinator::~ShardCoordinator() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

std::future<QueryResponse> ShardCoordinator::Submit(Query query) {
  auto task = std::make_unique<internal::QueryTask>(std::move(query));
  std::future<QueryResponse> future = task->promise.get_future();

  // Admission semantics identical to QueryService::Submit — the front door
  // is the only admission point of a sharded database.
  if (task->query()->has_deadline()) {
    if (task->query()->deadline() <= std::chrono::steady_clock::now()) {
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      return future;
    }
    if (!queue_.TryPush(task.get())) {
      GAUSS_CHECK_MSG(!queue_.closed(),
                      "Submit on a shut-down ShardCoordinator");
      task->CompleteUnexecuted(QueryResponse::Status::kShed);
      return future;
    }
  } else {
    GAUSS_CHECK_MSG(queue_.Push(task.get()),
                    "Submit on a shut-down ShardCoordinator");
  }
  task.release();
  return future;
}

void ShardCoordinator::CoordinatorLoop() {
  internal::QueryTask* raw = nullptr;
  while (queue_.Pop(&raw)) {
    std::unique_ptr<internal::QueryTask> task(raw);
    Query* query = task->query();  // the coordinator only enqueues queries
    if (query->has_deadline() &&
        query->deadline() <= std::chrono::steady_clock::now()) {
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      continue;
    }
    task->promise.set_value(ExecuteSharded(*query));
  }
}

QueryResponse ShardCoordinator::ExecuteSharded(const Query& query) {
  const auto start = std::chrono::steady_clock::now();
  QueryResponse resp = query.kind() == QueryKind::kMliq ? ExecuteMliq(query)
                                                        : ExecuteTiq(query);
  resp.latency_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

ShardCoordinator::StartOutcome ShardCoordinator::StartAll(const Query& query) {
  StartOutcome out;
  out.runs.resize(backends_.size());
  std::vector<std::future<ShardBackend::StartResult>> futures;
  futures.reserve(backends_.size());
  for (size_t s = 0; s < backends_.size(); ++s) {
    out.runs[s].id = next_traversal_id_.fetch_add(1);
    futures.push_back(backends_[s]->Start(out.runs[s].id, query));
  }
  // Gather everything even after a failure: `query` must stay alive until
  // every future is ready, and a straggler shard may still hold state worth
  // releasing.
  for (size_t s = 0; s < backends_.size(); ++s) {
    ShardBackend::StartResult result = futures[s].get();
    if (!result.error.ok()) {
      if (out.error.ok()) out.error = result.error;
      continue;
    }
    out.runs[s].partial = std::move(result.partial);
  }
  return out;
}

ShardCoordinator::RoundOutcome ShardCoordinator::RefineRound(
    std::vector<ShardRun>& runs) {
  RoundOutcome out;
  std::vector<size_t> shard_of;
  std::vector<std::future<ShardBackend::RefineResult>> futures;
  for (size_t s = 0; s < runs.size(); ++s) {
    const ShardPartial& p = runs[s].partial;
    const double gap = p.denominator_hi - p.denominator_lo;
    if (p.exhausted || gap <= 0.0) continue;
    // Halve the shard's local gap: geometric convergence of the combined
    // gap across rounds, computed from the transported bounds so RPC and
    // in-process shards receive bit-identical targets.
    const double target = 0.5 * gap;
    shard_of.push_back(s);
    futures.push_back(backends_[s]->Refine({{runs[s].id, target}}));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ShardBackend::RefineResult result = futures[i].get();
    if (!result.error.ok()) {
      if (out.error.ok()) out.error = result.error;
      continue;
    }
    ShardPartial& p = runs[shard_of[i]].partial;
    const RefineUpdate& u = result.updates.front();
    p.denominator_lo = u.denominator_lo;
    p.denominator_hi = u.denominator_hi;
    p.exhausted = u.exhausted;
    p.nodes_visited = u.nodes_visited;
    p.leaf_nodes_visited = u.leaf_nodes_visited;
    p.objects_evaluated = u.objects_evaluated;
  }
  out.progressed = !futures.empty();
  return out;
}

void ShardCoordinator::ReleaseAll(const std::vector<ShardRun>& runs) {
  for (size_t s = 0; s < runs.size(); ++s) {
    backends_[s]->Release({runs[s].id});
  }
}

QueryResponse ShardCoordinator::ExecuteMliq(const Query& query) {
  QueryResponse resp;
  resp.kind = QueryKind::kMliq;
  const MliqOptions& options = query.mliq_options();

  StartOutcome started = StartAll(query);
  std::vector<ShardRun>& runs = started.runs;
  if (!started.error.ok()) {
    ReleaseAll(runs);
    return ShardErrorResponse(QueryKind::kMliq, started.error);
  }

  const GlobalScale scale(runs);
  double global_lo = 0.0, global_hi = 0.0;
  if (!scale.all_empty()) {
    CombineDenominator(runs, scale, &global_lo, &global_hi);

    // The merged top-k is already final after round 1 (see header): only the
    // probability certification can require more work. Shards refine until
    // the combined interval meets the requested accuracy.
    if (options.refine_probabilities) {
      const double eps = options.probability_accuracy;
      while (!(global_lo > 0.0 &&
               (global_hi - global_lo) <= eps * global_lo)) {
        const RoundOutcome round = RefineRound(runs);
        if (!round.error.ok()) {
          ReleaseAll(runs);
          return ShardErrorResponse(QueryKind::kMliq, round.error);
        }
        if (!round.progressed) break;
        CombineDenominator(runs, scale, &global_lo, &global_hi);
      }
    }

    // Merge the per-shard top-k lists: any global winner is a local winner,
    // so the union contains the exact global top-k. Stable sort keeps each
    // shard's internal (already density-descending) order on ties.
    std::vector<GlobalCandidate> merged;
    for (size_t s = 0; s < runs.size(); ++s) {
      for (const ScoredObject& o : runs[s].partial.items) {
        merged.push_back({o, o.scaled_density * scale.factor[s]});
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const GlobalCandidate& a, const GlobalCandidate& b) {
                       return a.scaled_global > b.scaled_global;
                     });
    if (merged.size() > query.k()) merged.resize(query.k());

    for (const GlobalCandidate& c : merged) {
      IdentificationResult item;
      item.id = c.obj.id;
      item.log_density = c.obj.log_density;
      if (global_lo > 0.0) {
        const double p_hi = std::min(1.0, c.scaled_global / global_lo);
        const double p_lo = c.scaled_global / global_hi;
        item.probability = 0.5 * (p_hi + p_lo);
        item.probability_error = 0.5 * (p_hi - p_lo);
      }
      resp.items.push_back(item);
    }
  }
  resp.stats = SumStats(runs, global_lo, global_hi);
  ReleaseAll(runs);
  return resp;
}

QueryResponse ShardCoordinator::ExecuteTiq(const Query& query) {
  QueryResponse resp;
  resp.kind = QueryKind::kTiq;
  const TiqOptions& options = query.tiq_options();
  const double threshold = query.threshold();

  StartOutcome started = StartAll(query);
  std::vector<ShardRun>& runs = started.runs;
  if (!started.error.ok()) {
    ReleaseAll(runs);
    return ShardErrorResponse(QueryKind::kTiq, started.error);
  }

  const GlobalScale scale(runs);
  double global_lo = 0.0, global_hi = 0.0;
  if (!scale.all_empty()) {
    // Union of per-shard survivors: a superset of every globally qualifying
    // object (shard-local upper-bound filtering is conservative).
    std::vector<GlobalCandidate> cands;
    for (size_t s = 0; s < runs.size(); ++s) {
      for (const ScoredObject& o : runs[s].partial.items) {
        cands.push_back({o, o.scaled_density * scale.factor[s]});
      }
    }
    CombineDenominator(runs, scale, &global_lo, &global_hi);

    const auto prob_hi = [&](double scaled) {
      return global_lo > 0.0 ? std::min(1.0, scaled / global_lo) : 1.0;
    };
    const auto prob_lo = [&](double scaled) {
      return global_hi > 0.0 ? scaled / global_hi : 0.0;
    };

    // Exact membership needs every candidate's interval off the threshold;
    // probability reporting needs the combined interval at the requested
    // accuracy. Either failing triggers another shard refinement round.
    const auto needs_refinement = [&] {
      if (options.refine_probabilities &&
          !(global_lo > 0.0 && (global_hi - global_lo) <=
                                   options.probability_accuracy * global_lo)) {
        return true;
      }
      if (options.exact_membership) {
        for (const GlobalCandidate& c : cands) {
          const double hi = prob_hi(c.scaled_global);
          const double lo = prob_lo(c.scaled_global);
          if (lo < threshold && hi >= threshold) return true;
        }
      }
      return false;
    };
    while (needs_refinement()) {
      const RoundOutcome round = RefineRound(runs);
      if (!round.error.ok()) {
        ReleaseAll(runs);
        return ShardErrorResponse(QueryKind::kTiq, round.error);
      }
      if (!round.progressed) break;
      CombineDenominator(runs, scale, &global_lo, &global_hi);
    }

    // Final filter under the combined bounds, mirroring the single-tree
    // reporting rules (TiqTraversal::Result): exact mode keeps certified
    // members (midpoint filter for robustness), lazy mode keeps every
    // candidate whose upper bound still qualifies.
    if (global_lo > 0.0) {
      std::stable_sort(cands.begin(), cands.end(),
                       [](const GlobalCandidate& a, const GlobalCandidate& b) {
                         return a.scaled_global > b.scaled_global;
                       });
      for (const GlobalCandidate& c : cands) {
        const double hi = prob_hi(c.scaled_global);
        const double lo = prob_lo(c.scaled_global);
        const double mid = 0.5 * (hi + lo);
        if (options.exact_membership ? mid < threshold : hi < threshold) {
          continue;
        }
        IdentificationResult item;
        item.id = c.obj.id;
        item.log_density = c.obj.log_density;
        item.probability = mid;
        item.probability_error = 0.5 * (hi - lo);
        resp.items.push_back(item);
      }
    }
  }
  resp.stats = SumStats(runs, global_lo, global_hi);
  ReleaseAll(runs);
  return resp;
}

BatchResult ShardCoordinator::ExecuteBatch(const std::vector<Query>& batch) {
  BatchResult result;
  if (batch.empty()) return result;

  const IoStats io_before = io_stats();
  const BackendRefineCounters refine_before = refine_counters();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const Query& query : batch) futures.push_back(Submit(query));

  result.responses.reserve(batch.size());
  for (std::future<QueryResponse>& future : futures) {
    result.responses.push_back(future.get());
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats =
      AggregateBatchStats(result.responses, wall, io_stats() - io_before);
  const BackendRefineCounters refine_after = refine_counters();
  result.stats.refine_rounds = refine_after.rounds - refine_before.rounds;
  result.stats.refine_batched_queries =
      refine_after.requests - refine_before.requests;
  return result;
}

IoStats ShardCoordinator::io_stats() const {
  IoStats total;
  for (ShardBackend* backend : backends_) {
    ShardBackend::StatsResult stats = backend->FetchStats();
    if (stats.error.ok()) total += stats.io;
  }
  return total;
}

BackendRefineCounters ShardCoordinator::refine_counters() const {
  BackendRefineCounters total;
  for (const ShardBackend* backend : backends_) {
    const BackendRefineCounters c = backend->refine_counters();
    total.rounds += c.rounds;
    total.requests += c.requests;
  }
  return total;
}

}  // namespace gauss
