#include "service/shard_coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "math/hull.h"

namespace gauss {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Absolute floor on the combined scaled-denominator gap. A relative test
// alone can never certify a query whose combined lower bound is zero (every
// lower hull underflowed — e.g. a probe far from all gallery objects), so a
// gap at or below this floor certifies unconditionally: the reported
// intervals are honest error bars either way.
constexpr double kGapFloor = 1e-12;

// Backstop on coordinator refinement rounds. Under normal operation a query
// certifies in one round (positive lower bound) or a handful of halvings;
// the cap only bites when floating-point pathologies would otherwise spin.
constexpr size_t kMaxRefineRounds = 64;

// A shard-local scored object rebased onto the coordinator's global scale.
struct GlobalCandidate {
  ScoredObject obj;
  double scaled_global = 0.0;
};

QueryResponse ShardErrorResponse(QueryKind kind, const NetError& error) {
  QueryResponse resp;
  resp.kind = kind;
  // A shard reporting that the query's own deadline elapsed before its
  // request could even be written is the query running out of budget, not a
  // shard malfunction: report it exactly like the front door would.
  if (error.code == NetErrorCode::kDeadlineExceeded) {
    resp.status = QueryResponse::Status::kDeadlineExceeded;
    return resp;
  }
  resp.status = QueryResponse::Status::kShardError;
  resp.error = error;
  return resp;
}

// Water-filling allocator: the level tau such that capping every shard's
// (global-scale) gap at tau leaves a combined gap of exactly `budget`:
// sum_s min(g_s, tau) = budget. Shards already below the level need no work
// at all; the rest refine down to it — cost proportional to contribution.
// Sorts `gaps` ascending in place (pair order: gap then shard index, so the
// allocation is deterministic across transports and platforms). Returns
// +infinity when the summed gap is already within budget (nobody refines).
double WaterFillLevel(std::vector<std::pair<double, size_t>>* gaps,
                      double budget) {
  std::sort(gaps->begin(), gaps->end());
  const size_t m = gaps->size();
  double below = 0.0;  // sum of gaps under the candidate level
  for (size_t i = 0; i < m; ++i) {
    // If tau lands at or under gaps[i], the i smaller shards keep their full
    // gaps and the m-i others are capped at tau.
    const double candidate = (budget - below) / static_cast<double>(m - i);
    if (candidate <= (*gaps)[i].first) return candidate;
    below += (*gaps)[i].first;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

// Global reference scale over the shards' partials plus the per-shard
// rebasing factors exp(log_ref_s - log_ref_global). The global reference is
// the maximum, so every factor is <= 1 and rebasing can only shrink scaled
// values. Shards with empty trees carry no objects and no denominator mass;
// they are skipped (factor 0).
namespace {

struct GlobalScale {
  double log_ref = kNegInf;  // kNegInf iff every shard is empty
  std::vector<double> factor;

  template <typename Runs>
  explicit GlobalScale(const Runs& runs) {
    factor.resize(runs.size(), 0.0);
    for (const auto& run : runs) {
      if (run.partial.tree_size > 0) {
        log_ref = std::max(log_ref, run.partial.log_ref);
      }
    }
    for (size_t s = 0; s < runs.size(); ++s) {
      if (runs[s].partial.tree_size > 0) {
        factor[s] = std::exp(runs[s].partial.log_ref - log_ref);
      }
    }
  }

  bool all_empty() const { return log_ref == kNegInf; }
};

// Combined denominator bounds in the global scale: the Bayes denominator is
// a sum over all database objects, so it decomposes exactly into per-shard
// partial sums — and interval bounds on the parts sum to interval bounds on
// the whole.
template <typename Runs>
void CombineDenominator(const Runs& runs, const GlobalScale& scale, double* lo,
                        double* hi) {
  *lo = 0.0;
  *hi = 0.0;
  for (size_t s = 0; s < runs.size(); ++s) {
    *lo += runs[s].partial.denominator_lo * scale.factor[s];
    *hi += runs[s].partial.denominator_hi * scale.factor[s];
  }
}

// Work counters summed over every shard (counters are cumulative, so the
// latest partial always carries each traversal's total); denominator bounds
// are the combined global-scale interval.
template <typename Runs>
TraversalStats SumStats(const Runs& runs, double global_lo, double global_hi) {
  TraversalStats total;
  for (const auto& run : runs) {
    total.nodes_visited += run.partial.nodes_visited;
    total.leaf_nodes_visited += run.partial.leaf_nodes_visited;
    total.objects_evaluated += run.partial.objects_evaluated;
  }
  total.denominator_lo = global_lo;
  total.denominator_hi = global_hi;
  return total;
}

}  // namespace

ShardCoordinator::ShardCoordinator(std::vector<ShardBackend*> backends,
                                   ShardCoordinatorOptions options)
    : backends_(std::move(backends)), queue_(options.queue_capacity) {
  Init(options);
}

ShardCoordinator::ShardCoordinator(std::vector<QueryService*> shards,
                                   ShardCoordinatorOptions options)
    : queue_(options.queue_capacity) {
  GAUSS_CHECK_MSG(!shards.empty(), "ShardCoordinator needs >= 1 shard");
  owned_backends_.reserve(shards.size());
  backends_.reserve(shards.size());
  for (QueryService* shard : shards) {
    GAUSS_CHECK(shard != nullptr);
    owned_backends_.push_back(std::make_unique<InProcessBackend>(shard));
    backends_.push_back(owned_backends_.back().get());
  }
  Init(options);
}

void ShardCoordinator::Init(ShardCoordinatorOptions options) {
  GAUSS_CHECK_MSG(!backends_.empty(), "ShardCoordinator needs >= 1 shard");
  for (const ShardBackend* backend : backends_) GAUSS_CHECK(backend != nullptr);
  dim_ = backends_.front()->dim();
  for (const ShardBackend* backend : backends_) {
    GAUSS_CHECK_MSG(backend->dim() == dim_,
                    "all shards must share one dimensionality");
  }
  refinement_ = options.refinement;
  if (refinement_ == RefinementPolicy::kMassProportional) {
    // Cache one coarse denominator sketch per shard so Start queries can
    // carry water-filled initial gap targets. All-or-nothing: a single
    // failed or malformed fetch disables sketch planning entirely, keeping
    // target computation deterministic (a per-shard mix of "had a sketch"
    // and "didn't" would make the refinement path depend on transient I/O).
    sketches_.reserve(backends_.size());
    have_sketches_ = true;
    for (ShardBackend* backend : backends_) {
      ShardBackend::SketchResult result = backend->FetchSketch();
      const bool usable =
          result.error.ok() && (result.sketch.tree_size == 0 ||
                                result.sketch.root_bounds.size() == dim_);
      if (!usable) {
        have_sketches_ = false;
        sketches_.clear();
        break;
      }
      sketches_.push_back(std::move(result.sketch));
    }
  }
  size_t threads = options.num_threads;
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { CoordinatorLoop(); });
  }
}

ShardCoordinator::~ShardCoordinator() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

std::future<QueryResponse> ShardCoordinator::Submit(Query query) {
  auto task = std::make_unique<internal::QueryTask>(std::move(query));
  std::future<QueryResponse> future = task->promise.get_future();

  // Admission semantics identical to QueryService::Submit — the front door
  // is the only admission point of a sharded database.
  if (task->query()->has_deadline()) {
    if (task->query()->deadline() <= std::chrono::steady_clock::now()) {
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      return future;
    }
    if (!queue_.TryPush(task.get())) {
      GAUSS_CHECK_MSG(!queue_.closed(),
                      "Submit on a shut-down ShardCoordinator");
      task->CompleteUnexecuted(QueryResponse::Status::kShed);
      return future;
    }
  } else {
    GAUSS_CHECK_MSG(queue_.Push(task.get()),
                    "Submit on a shut-down ShardCoordinator");
  }
  task.release();
  return future;
}

void ShardCoordinator::CoordinatorLoop() {
  internal::QueryTask* raw = nullptr;
  while (queue_.Pop(&raw)) {
    std::unique_ptr<internal::QueryTask> task(raw);
    Query* query = task->query();  // the coordinator only enqueues queries
    if (query->has_deadline() &&
        query->deadline() <= std::chrono::steady_clock::now()) {
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      continue;
    }
    task->promise.set_value(ExecuteSharded(*query));
  }
}

QueryResponse ShardCoordinator::ExecuteSharded(const Query& query) {
  const auto start = std::chrono::steady_clock::now();
  QueryResponse resp = query.kind() == QueryKind::kMliq ? ExecuteMliq(query)
                                                        : ExecuteTiq(query);
  resp.latency_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

ShardCoordinator::StartOutcome ShardCoordinator::StartAll(const Query& query) {
  StartOutcome out;
  out.runs.resize(backends_.size());
  // Per-shard query copies (when planned) must outlive the gather below,
  // exactly like `query` itself: backends hold references until their Start
  // futures are ready.
  std::vector<Query> shard_queries;
  const bool per_shard = PlanShardQueries(query, &shard_queries);
  std::vector<std::future<ShardBackend::StartResult>> futures;
  futures.reserve(backends_.size());
  for (size_t s = 0; s < backends_.size(); ++s) {
    out.runs[s].id = next_traversal_id_.fetch_add(1);
    futures.push_back(backends_[s]->Start(
        out.runs[s].id, per_shard ? shard_queries[s] : query));
  }
  // Gather everything even after a failure: the query must stay alive until
  // every future is ready, and a straggler shard may still hold state worth
  // releasing.
  for (size_t s = 0; s < backends_.size(); ++s) {
    ShardBackend::StartResult result = futures[s].get();
    if (!result.error.ok()) {
      if (out.error.ok()) out.error = result.error;
      continue;
    }
    out.runs[s].partial = std::move(result.partial);
  }
  return out;
}

bool ShardCoordinator::PlanShardQueries(const Query& query,
                                        std::vector<Query>* out) const {
  if (refinement_ != RefinementPolicy::kMassProportional) return false;
  const bool refining = query.kind() == QueryKind::kMliq
                            ? query.mliq_options().refine_probabilities
                            : query.tiq_options().refine_probabilities;
  // A non-refining query (lazy TIQ, exact-membership-only TIQ, bare MLIQ
  // identification) still benefits from the sketch floors; without sketches
  // there is nothing to plan for it.
  if (!refining && !have_sketches_) return false;
  SketchPlan plan;
  if (have_sketches_) plan = PlanFromSketches(query);
  if (!refining && !plan.valid) return false;
  out->reserve(backends_.size());
  for (size_t s = 0; s < backends_.size(); ++s) {
    Query q = query;
    if (refining) {
      // Suppress the shard-local relative certification — refining every
      // shard to a relative epsilon against its own bounds costs ~the same
      // I/O per shard no matter how little mass it holds. The coordinator
      // certifies against the combined interval instead, and the absolute
      // gap target seeds each shard with its mass-proportional share.
      q.RefineProbabilities(false).DenominatorTargetGap(
          plan.valid ? plan.targets[s] : -1.0);
    }
    if (plan.valid) {
      if (query.kind() == QueryKind::kMliq) {
        q.DensityFloorLog(plan.density_floor_log);
      } else {
        q.DenominatorFloor(plan.den_floors[s]);
      }
    }
    out->push_back(std::move(q));
  }
  return true;
}

ShardCoordinator::SketchPlan ShardCoordinator::PlanFromSketches(
    const Query& query) const {
  SketchPlan plan;
  plan.targets.assign(backends_.size(), -1.0);
  plan.den_floors.assign(backends_.size(), 0.0);
  plan.density_floor_log = kNegInf;
  const Pfv& q = query.pfv();

  // Coarse per-shard denominator bounds from the cached sketches: hull
  // integrals of each root entry against the query, in the shard's own
  // reference scale — the same arithmetic the shard's round 1 performs, so
  // the coarse interval always contains the shard's round-1 interval.
  struct Coarse {
    double lo = 0.0, hi = 0.0, log_ref = kNegInf;
  };
  std::vector<Coarse> coarse(sketches_.size());
  // (per-object log-density lower bound, objects certified at it) over every
  // entry of every shard — the raw material of the MLIQ k-th density floor.
  std::vector<std::pair<double, uint64_t>> entry_floors;
  double log_ref_g = kNegInf;
  for (size_t s = 0; s < sketches_.size(); ++s) {
    const ShardSketch& sk = sketches_[s];
    if (sk.tree_size == 0) continue;
    Coarse& c = coarse[s];
    c.log_ref = JointLogUpperHull(sk.root_bounds.data(), q.mu.data(),
                                  q.sigma.data(), dim_, sk.sigma_policy);
    for (const ShardSketchEntry& e : sk.entries) {
      const double lo_log = JointLogLowerHull(
          e.bounds.data(), q.mu.data(), q.sigma.data(), dim_, sk.sigma_policy);
      const double hi_log = JointLogUpperHull(
          e.bounds.data(), q.mu.data(), q.sigma.data(), dim_, sk.sigma_policy);
      c.lo += e.count * std::exp(lo_log - c.log_ref);
      c.hi += e.count * std::exp(hi_log - c.log_ref);
      entry_floors.push_back({lo_log, e.count});
    }
    if (c.lo > c.hi) c.lo = c.hi;  // same rounding guard as ScoreNodeBatch
    log_ref_g = std::max(log_ref_g, c.log_ref);
  }
  if (log_ref_g == kNegInf) return plan;  // every shard empty
  plan.valid = true;

  double coarse_lo_g = 0.0, coarse_hi_g = 0.0;
  std::vector<double> factor(sketches_.size(), 0.0);
  std::vector<std::pair<double, size_t>> gaps;
  for (size_t s = 0; s < sketches_.size(); ++s) {
    if (sketches_[s].tree_size == 0) continue;
    factor[s] = std::exp(coarse[s].log_ref - log_ref_g);
    coarse_lo_g += coarse[s].lo * factor[s];
    coarse_hi_g += coarse[s].hi * factor[s];
    gaps.push_back({(coarse[s].hi - coarse[s].lo) * factor[s], s});
  }

  if (query.kind() == QueryKind::kMliq) {
    // k-th global density floor: hull lower bounds are per-object
    // guarantees, so walking the entries best-first and accumulating their
    // counts until they reach k certifies that >= k objects sit at or above
    // the last bound taken. A shard whose frontier falls strictly below the
    // floor cannot hold a global winner and may stop phase 1 early.
    std::sort(entry_floors.begin(), entry_floors.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    uint64_t covered = 0;
    for (const auto& [lo_log, count] : entry_floors) {
      covered += count;
      if (covered >= query.k()) {
        plan.density_floor_log = lo_log;
        break;
      }
    }
  } else {
    // Combined-denominator floor for TIQ pruning, rebased into each shard's
    // own scale (factor underflowing to 0 means the shard's best possible
    // density is negligible at global scale — an infinite floor prunes its
    // whole candidate set, which is exactly right).
    for (size_t s = 0; s < sketches_.size(); ++s) {
      if (sketches_[s].tree_size == 0) continue;
      plan.den_floors[s] = factor[s] > 0.0
                               ? coarse_lo_g / factor[s]
                               : std::numeric_limits<double>::infinity();
    }
  }

  const bool refining = query.kind() == QueryKind::kMliq
                            ? query.mliq_options().refine_probabilities
                            : query.tiq_options().refine_probabilities;
  if (!refining) return plan;
  const double eps = query.kind() == QueryKind::kMliq
                         ? query.mliq_options().probability_accuracy
                         : query.tiq_options().probability_accuracy;
  // Budget against the coarse UPPER bound: eps * hi >= eps * lo_final, so a
  // sketch can only under-refine — the coordinator's first round cleans up
  // cheaply — never waste I/O over-refining a light shard.
  const double budget = std::max(eps * coarse_hi_g, kGapFloor);
  const double level = WaterFillLevel(&gaps, budget);
  if (!std::isfinite(level)) return plan;  // coarse gap already within budget
  // Every non-empty shard gets its target — a shard whose coarse gap is
  // already below the level reaches it with zero extra work (its actual
  // round-1 gap is at most the coarse one).
  for (const auto& [gap, s] : gaps) {
    (void)gap;
    plan.targets[s] = level / factor[s];
  }
  return plan;
}

ShardCoordinator::RoundOutcome ShardCoordinator::RefineRound(
    std::vector<ShardRun>& runs, const std::vector<double>& factor,
    double budget) {
  RoundOutcome out;
  std::vector<size_t> shard_of;
  std::vector<std::future<ShardBackend::RefineResult>> futures;
  if (refinement_ == RefinementPolicy::kMassProportional) {
    // Water-fill the budget (an absolute combined-scale gap the round may
    // leave behind) over the shards' rebased gaps. Exhausted shards carry a
    // zero gap (their denominator is exact) and drop out naturally.
    std::vector<std::pair<double, size_t>> gaps;
    for (size_t s = 0; s < runs.size(); ++s) {
      const ShardPartial& p = runs[s].partial;
      const double gap = (p.denominator_hi - p.denominator_lo) * factor[s];
      if (p.exhausted || gap <= 0.0) continue;
      gaps.push_back({gap, s});
    }
    const double level = WaterFillLevel(&gaps, budget);
    for (const auto& [gap, s] : gaps) {
      // Already below the water level: this shard's whole gap fits inside
      // the budget. Skip it outright — no frame, no I/O.
      if (gap <= level) continue;
      shard_of.push_back(s);
      // Targets derive from *transported* doubles (raw IEEE-754 on the
      // wire), so RPC and in-process shards receive bit-identical targets.
      futures.push_back(
          backends_[s]->Refine({{runs[s].id, level / factor[s]}}));
    }
  } else {
    for (size_t s = 0; s < runs.size(); ++s) {
      const ShardPartial& p = runs[s].partial;
      const double gap = p.denominator_hi - p.denominator_lo;
      if (p.exhausted || gap <= 0.0) continue;
      // Legacy uniform policy: halve the shard's local gap — geometric
      // convergence of the combined gap, but every shard pays every round.
      futures.push_back(backends_[s]->Refine({{runs[s].id, 0.5 * gap}}));
      shard_of.push_back(s);
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ShardBackend::RefineResult result = futures[i].get();
    if (!result.error.ok()) {
      if (out.error.ok()) out.error = result.error;
      continue;
    }
    ShardPartial& p = runs[shard_of[i]].partial;
    const RefineUpdate& u = result.updates.front();
    p.denominator_lo = u.denominator_lo;
    p.denominator_hi = u.denominator_hi;
    p.exhausted = u.exhausted;
    p.nodes_visited = u.nodes_visited;
    p.leaf_nodes_visited = u.leaf_nodes_visited;
    p.objects_evaluated = u.objects_evaluated;
  }
  out.progressed = !futures.empty();
  return out;
}

void ShardCoordinator::ReleaseAll(const std::vector<ShardRun>& runs) {
  for (size_t s = 0; s < runs.size(); ++s) {
    backends_[s]->Release({runs[s].id});
  }
}

QueryResponse ShardCoordinator::ExecuteMliq(const Query& query) {
  QueryResponse resp;
  resp.kind = QueryKind::kMliq;
  const MliqOptions& options = query.mliq_options();

  StartOutcome started = StartAll(query);
  std::vector<ShardRun>& runs = started.runs;
  if (!started.error.ok()) {
    ReleaseAll(runs);
    return ShardErrorResponse(QueryKind::kMliq, started.error);
  }

  const GlobalScale scale(runs);
  double global_lo = 0.0, global_hi = 0.0;
  if (!scale.all_empty()) {
    CombineDenominator(runs, scale, &global_lo, &global_hi);

    // The merged top-k is already final after round 1 (see header): only the
    // probability certification can require more work. Shards refine until
    // the combined interval meets the requested accuracy — or the absolute
    // gap floor, which is the only exit when the combined lower bound is
    // zero (a relative test can never certify lo == 0).
    if (options.refine_probabilities) {
      const double eps = options.probability_accuracy;
      const auto certified = [&] {
        const double gap = global_hi - global_lo;
        return gap <= kGapFloor || (global_lo > 0.0 && gap <= eps * global_lo);
      };
      size_t rounds = 0;
      while (!certified() && rounds++ < kMaxRefineRounds) {
        // With a positive lower bound, leaving eps * lo of gap certifies in
        // this one round (lo only grows). With lo == 0, halve the gap until
        // mass appears or the floor fires.
        const double gap = global_hi - global_lo;
        const double budget =
            std::max(global_lo > 0.0 ? eps * global_lo : 0.5 * gap, kGapFloor);
        const RoundOutcome round = RefineRound(runs, scale.factor, budget);
        if (!round.error.ok()) {
          ReleaseAll(runs);
          return ShardErrorResponse(QueryKind::kMliq, round.error);
        }
        if (!round.progressed) break;
        CombineDenominator(runs, scale, &global_lo, &global_hi);
      }
    }

    // Merge the per-shard top-k lists: any global winner is a local winner,
    // so the union contains the exact global top-k. Stable sort keeps each
    // shard's internal (already density-descending) order on ties.
    std::vector<GlobalCandidate> merged;
    for (size_t s = 0; s < runs.size(); ++s) {
      for (const ScoredObject& o : runs[s].partial.items) {
        merged.push_back({o, o.scaled_density * scale.factor[s]});
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const GlobalCandidate& a, const GlobalCandidate& b) {
                       return a.scaled_global > b.scaled_global;
                     });
    if (merged.size() > query.k()) merged.resize(query.k());

    for (const GlobalCandidate& c : merged) {
      IdentificationResult item;
      item.id = c.obj.id;
      item.log_density = c.obj.log_density;
      if (global_lo > 0.0) {
        const double p_hi = std::min(1.0, c.scaled_global / global_lo);
        const double p_lo = c.scaled_global / global_hi;
        item.probability = 0.5 * (p_hi + p_lo);
        item.probability_error = 0.5 * (p_hi - p_lo);
      }
      resp.items.push_back(item);
    }
  }
  resp.stats = SumStats(runs, global_lo, global_hi);
  ReleaseAll(runs);
  return resp;
}

QueryResponse ShardCoordinator::ExecuteTiq(const Query& query) {
  QueryResponse resp;
  resp.kind = QueryKind::kTiq;
  const TiqOptions& options = query.tiq_options();
  const double threshold = query.threshold();

  StartOutcome started = StartAll(query);
  std::vector<ShardRun>& runs = started.runs;
  if (!started.error.ok()) {
    ReleaseAll(runs);
    return ShardErrorResponse(QueryKind::kTiq, started.error);
  }

  const GlobalScale scale(runs);
  double global_lo = 0.0, global_hi = 0.0;
  if (!scale.all_empty()) {
    // Union of per-shard survivors: a superset of every globally qualifying
    // object (shard-local upper-bound filtering is conservative).
    std::vector<GlobalCandidate> cands;
    for (size_t s = 0; s < runs.size(); ++s) {
      for (const ScoredObject& o : runs[s].partial.items) {
        cands.push_back({o, o.scaled_density * scale.factor[s]});
      }
    }
    CombineDenominator(runs, scale, &global_lo, &global_hi);

    const auto prob_hi = [&](double scaled) {
      return global_lo > 0.0 ? std::min(1.0, scaled / global_lo) : 1.0;
    };
    const auto prob_lo = [&](double scaled) {
      return global_hi > 0.0 ? scaled / global_hi : 0.0;
    };

    // Exact membership needs every candidate's interval off the threshold;
    // probability reporting needs the combined interval at the requested
    // accuracy (or the absolute gap floor — the only exit when the combined
    // lower bound is zero). Either failing triggers another refinement
    // round, with the round's budget set by the tighter of the two demands.
    const auto accuracy_certified = [&] {
      const double gap = global_hi - global_lo;
      return gap <= kGapFloor ||
             (global_lo > 0.0 &&
              gap <= options.probability_accuracy * global_lo);
    };
    const auto membership_undecided = [&] {
      if (!options.exact_membership) return false;
      for (const GlobalCandidate& c : cands) {
        const double hi = prob_hi(c.scaled_global);
        const double lo = prob_lo(c.scaled_global);
        if (lo < threshold && hi >= threshold) return true;
      }
      return false;
    };
    size_t rounds = 0;
    while (((options.refine_probabilities && !accuracy_certified()) ||
            membership_undecided()) &&
           rounds++ < kMaxRefineRounds) {
      const double gap = global_hi - global_lo;
      double budget = std::numeric_limits<double>::infinity();
      if (options.refine_probabilities && !accuracy_certified()) {
        budget = global_lo > 0.0 ? options.probability_accuracy * global_lo
                                 : 0.5 * gap;
      }
      // Membership has no closed-form budget (it depends on where candidate
      // intervals straddle the threshold): halve until every straddle
      // resolves.
      if (membership_undecided()) budget = std::min(budget, 0.5 * gap);
      budget = std::max(budget, kGapFloor);
      const RoundOutcome round = RefineRound(runs, scale.factor, budget);
      if (!round.error.ok()) {
        ReleaseAll(runs);
        return ShardErrorResponse(QueryKind::kTiq, round.error);
      }
      if (!round.progressed) break;
      CombineDenominator(runs, scale, &global_lo, &global_hi);
    }

    // Final filter under the combined bounds, mirroring the single-tree
    // reporting rules (TiqTraversal::Result): exact mode keeps certified
    // members (midpoint filter for robustness), lazy mode keeps every
    // candidate whose upper bound still qualifies.
    if (global_lo > 0.0) {
      std::stable_sort(cands.begin(), cands.end(),
                       [](const GlobalCandidate& a, const GlobalCandidate& b) {
                         return a.scaled_global > b.scaled_global;
                       });
      for (const GlobalCandidate& c : cands) {
        const double hi = prob_hi(c.scaled_global);
        const double lo = prob_lo(c.scaled_global);
        const double mid = 0.5 * (hi + lo);
        if (options.exact_membership ? mid < threshold : hi < threshold) {
          continue;
        }
        IdentificationResult item;
        item.id = c.obj.id;
        item.log_density = c.obj.log_density;
        item.probability = mid;
        item.probability_error = 0.5 * (hi - lo);
        resp.items.push_back(item);
      }
    }
  }
  resp.stats = SumStats(runs, global_lo, global_hi);
  ReleaseAll(runs);
  return resp;
}

BatchResult ShardCoordinator::ExecuteBatch(const std::vector<Query>& batch) {
  BatchResult result;
  if (batch.empty()) return result;

  const IoStats io_before = io_stats();
  const BackendRefineCounters refine_before = refine_counters();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const Query& query : batch) futures.push_back(Submit(query));

  result.responses.reserve(batch.size());
  for (std::future<QueryResponse>& future : futures) {
    result.responses.push_back(future.get());
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats =
      AggregateBatchStats(result.responses, wall, io_stats() - io_before);
  const BackendRefineCounters refine_after = refine_counters();
  result.stats.refine_rounds = refine_after.rounds - refine_before.rounds;
  result.stats.refine_batched_queries =
      refine_after.requests - refine_before.requests;
  return result;
}

IoStats ShardCoordinator::io_stats() const {
  IoStats total;
  for (ShardBackend* backend : backends_) {
    ShardBackend::StatsResult stats = backend->FetchStats();
    if (stats.error.ok()) total += stats.io;
  }
  return total;
}

BackendRefineCounters ShardCoordinator::refine_counters() const {
  BackendRefineCounters total;
  for (const ShardBackend* backend : backends_) {
    const BackendRefineCounters c = backend->refine_counters();
    total.rounds += c.rounds;
    total.requests += c.requests;
  }
  return total;
}

}  // namespace gauss
