#include "service/shard_coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"

namespace gauss {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Global reference scale over a set of per-shard traversals plus the
// per-shard rebasing factors exp(log_ref_s - log_ref_global). The global
// reference is the maximum, so every factor is <= 1 and rebasing can only
// shrink scaled values. Shards with empty trees carry no objects and no
// denominator mass; they are skipped (factor 0).
template <typename Traversal>
struct ScaleInfo {
  double log_ref = kNegInf;  // kNegInf iff every shard is empty
  std::vector<double> factor;

  explicit ScaleInfo(const std::vector<std::unique_ptr<Traversal>>& trav) {
    factor.resize(trav.size(), 0.0);
    for (const auto& t : trav) {
      if (t->tree().size() > 0) log_ref = std::max(log_ref, t->log_ref());
    }
    for (size_t s = 0; s < trav.size(); ++s) {
      if (trav[s]->tree().size() > 0) {
        factor[s] = std::exp(trav[s]->log_ref() - log_ref);
      }
    }
  }

  bool all_empty() const { return log_ref == kNegInf; }
};

// Combined denominator bounds in the global scale: the Bayes denominator is
// a sum over all database objects, so it decomposes exactly into per-shard
// partial sums — and interval bounds on the parts sum to interval bounds on
// the whole.
template <typename Traversal>
void CombineDenominator(const std::vector<std::unique_ptr<Traversal>>& trav,
                        const ScaleInfo<Traversal>& scale, double* lo,
                        double* hi) {
  *lo = 0.0;
  *hi = 0.0;
  for (size_t s = 0; s < trav.size(); ++s) {
    *lo += trav[s]->denominator_lo() * scale.factor[s];
    *hi += trav[s]->denominator_hi() * scale.factor[s];
  }
}

// Round 1: constructs and runs one traversal per shard, each on its own
// shard's worker pool (page I/O stays with the shard that owns the pages).
// The coordinator thread blocks in gather, so writes made by the shard
// workers are sequenced before the coordinator reads the traversals.
template <typename Traversal, typename Make>
std::vector<std::unique_ptr<Traversal>> ScatterRun(
    const std::vector<QueryService*>& shards, const Make& make) {
  std::vector<std::unique_ptr<Traversal>> trav(shards.size());
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    futures.push_back(shards[s]->SubmitWork([&trav, &shards, &make, s] {
      trav[s] = make(*shards[s]);
      trav[s]->Run();
      return QueryResponse{};
    }));
  }
  for (auto& f : futures) f.get();
  return trav;
}

// One refinement round: every shard that can still tighten its denominator
// (non-empty frontier, nonzero gap) halves its gap on its own worker pool.
// Halving gives geometric convergence of the combined gap across rounds.
// Returns false when no shard could make progress — the combined bounds are
// then as tight as they will ever get.
template <typename Traversal>
bool RefineRound(const std::vector<QueryService*>& shards,
                 const std::vector<std::unique_ptr<Traversal>>& trav) {
  std::vector<std::future<QueryResponse>> futures;
  for (size_t s = 0; s < trav.size(); ++s) {
    Traversal* t = trav[s].get();
    if (t->exhausted() || t->denominator_gap() <= 0.0) continue;
    const double target = 0.5 * t->denominator_gap();
    futures.push_back(shards[s]->SubmitWork([t, target] {
      t->RefineDenominator(target);
      return QueryResponse{};
    }));
  }
  for (auto& f : futures) f.get();
  return !futures.empty();
}

// Work counters summed over every shard (all rounds included); denominator
// bounds are the combined global-scale interval.
template <typename Traversal>
TraversalStats SumStats(const std::vector<std::unique_ptr<Traversal>>& trav,
                        double global_lo, double global_hi) {
  TraversalStats total;
  for (const auto& t : trav) {
    const TraversalStats s = t->stats();
    total.nodes_visited += s.nodes_visited;
    total.leaf_nodes_visited += s.leaf_nodes_visited;
    total.objects_evaluated += s.objects_evaluated;
  }
  total.denominator_lo = global_lo;
  total.denominator_hi = global_hi;
  return total;
}

// A shard-local scored object rebased onto the coordinator's global scale.
struct GlobalCandidate {
  ScoredObject obj;
  double scaled_global = 0.0;
};

}  // namespace

ShardCoordinator::ShardCoordinator(std::vector<QueryService*> shards,
                                   ShardCoordinatorOptions options)
    : shards_(std::move(shards)), queue_(options.queue_capacity) {
  GAUSS_CHECK_MSG(!shards_.empty(), "ShardCoordinator needs >= 1 shard");
  for (const QueryService* shard : shards_) GAUSS_CHECK(shard != nullptr);
  const size_t dim = shards_.front()->tree().dim();
  for (const QueryService* shard : shards_) {
    GAUSS_CHECK_MSG(shard->tree().dim() == dim,
                    "all shards must share one dimensionality");
  }
  size_t threads = options.num_threads;
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { CoordinatorLoop(); });
  }
}

ShardCoordinator::~ShardCoordinator() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

std::future<QueryResponse> ShardCoordinator::Submit(Query query) {
  auto task = std::make_unique<internal::QueryTask>(std::move(query));
  std::future<QueryResponse> future = task->promise.get_future();

  // Admission semantics identical to QueryService::Submit — the front door
  // is the only admission point of a sharded database.
  if (task->query()->has_deadline()) {
    if (task->query()->deadline() <= std::chrono::steady_clock::now()) {
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      return future;
    }
    if (!queue_.TryPush(task.get())) {
      GAUSS_CHECK_MSG(!queue_.closed(),
                      "Submit on a shut-down ShardCoordinator");
      task->CompleteUnexecuted(QueryResponse::Status::kShed);
      return future;
    }
  } else {
    GAUSS_CHECK_MSG(queue_.Push(task.get()),
                    "Submit on a shut-down ShardCoordinator");
  }
  task.release();
  return future;
}

void ShardCoordinator::CoordinatorLoop() {
  internal::QueryTask* raw = nullptr;
  while (queue_.Pop(&raw)) {
    std::unique_ptr<internal::QueryTask> task(raw);
    Query* query = task->query();  // the coordinator only enqueues queries
    if (query->has_deadline() &&
        query->deadline() <= std::chrono::steady_clock::now()) {
      task->CompleteUnexecuted(QueryResponse::Status::kDeadlineExceeded);
      continue;
    }
    task->promise.set_value(ExecuteSharded(*query));
  }
}

QueryResponse ShardCoordinator::ExecuteSharded(const Query& query) {
  const auto start = std::chrono::steady_clock::now();
  QueryResponse resp = query.kind() == QueryKind::kMliq ? ExecuteMliq(query)
                                                        : ExecuteTiq(query);
  resp.latency_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

QueryResponse ShardCoordinator::ExecuteMliq(const Query& query) {
  QueryResponse resp;
  resp.kind = QueryKind::kMliq;
  const MliqOptions& options = query.mliq_options();

  // SubmitWork bypasses the shard's query-execution path, so the shard
  // service's read-ahead default is applied here (query-level depth wins).
  auto trav = ScatterRun<MliqTraversal>(
      shards_, [&](const QueryService& shard) {
        MliqOptions shard_options = options;
        shard_options.prefetch_depth = internal::EffectivePrefetchDepth(
            shard_options.prefetch_depth, shard.prefetch_depth());
        return std::make_unique<MliqTraversal>(shard.tree(), query.pfv(),
                                               query.k(), shard_options);
      });

  const ScaleInfo<MliqTraversal> scale(trav);
  double global_lo = 0.0, global_hi = 0.0;
  if (!scale.all_empty()) {
    CombineDenominator(trav, scale, &global_lo, &global_hi);

    // The merged top-k is already final after round 1 (see header): only the
    // probability certification can require more work. Shards refine until
    // the combined interval meets the requested accuracy.
    if (options.refine_probabilities) {
      const double eps = options.probability_accuracy;
      while (!(global_lo > 0.0 &&
               (global_hi - global_lo) <= eps * global_lo)) {
        if (!RefineRound(shards_, trav)) break;
        CombineDenominator(trav, scale, &global_lo, &global_hi);
      }
    }

    // Merge the per-shard top-k lists: any global winner is a local winner,
    // so the union contains the exact global top-k. Stable sort keeps each
    // shard's internal (already density-descending) order on ties.
    std::vector<GlobalCandidate> merged;
    for (size_t s = 0; s < trav.size(); ++s) {
      for (const ScoredObject& o : trav[s]->top_items()) {
        merged.push_back({o, o.scaled_density * scale.factor[s]});
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const GlobalCandidate& a, const GlobalCandidate& b) {
                       return a.scaled_global > b.scaled_global;
                     });
    if (merged.size() > query.k()) merged.resize(query.k());

    for (const GlobalCandidate& c : merged) {
      IdentificationResult item;
      item.id = c.obj.id;
      item.log_density = c.obj.log_density;
      if (global_lo > 0.0) {
        const double p_hi = std::min(1.0, c.scaled_global / global_lo);
        const double p_lo = c.scaled_global / global_hi;
        item.probability = 0.5 * (p_hi + p_lo);
        item.probability_error = 0.5 * (p_hi - p_lo);
      }
      resp.items.push_back(item);
    }
  }
  resp.stats = SumStats(trav, global_lo, global_hi);
  return resp;
}

QueryResponse ShardCoordinator::ExecuteTiq(const Query& query) {
  QueryResponse resp;
  resp.kind = QueryKind::kTiq;
  const TiqOptions& options = query.tiq_options();
  const double threshold = query.threshold();

  auto trav = ScatterRun<TiqTraversal>(
      shards_, [&](const QueryService& shard) {
        TiqOptions shard_options = options;
        shard_options.prefetch_depth = internal::EffectivePrefetchDepth(
            shard_options.prefetch_depth, shard.prefetch_depth());
        return std::make_unique<TiqTraversal>(shard.tree(), query.pfv(),
                                              threshold, shard_options);
      });

  const ScaleInfo<TiqTraversal> scale(trav);
  double global_lo = 0.0, global_hi = 0.0;
  if (!scale.all_empty()) {
    // Union of per-shard survivors: a superset of every globally qualifying
    // object (shard-local upper-bound filtering is conservative).
    std::vector<GlobalCandidate> cands;
    for (size_t s = 0; s < trav.size(); ++s) {
      for (const ScoredObject& o : trav[s]->candidates()) {
        cands.push_back({o, o.scaled_density * scale.factor[s]});
      }
    }
    CombineDenominator(trav, scale, &global_lo, &global_hi);

    const auto prob_hi = [&](double scaled) {
      return global_lo > 0.0 ? std::min(1.0, scaled / global_lo) : 1.0;
    };
    const auto prob_lo = [&](double scaled) {
      return global_hi > 0.0 ? scaled / global_hi : 0.0;
    };

    // Exact membership needs every candidate's interval off the threshold;
    // probability reporting needs the combined interval at the requested
    // accuracy. Either failing triggers another shard refinement round.
    const auto needs_refinement = [&] {
      if (options.refine_probabilities &&
          !(global_lo > 0.0 && (global_hi - global_lo) <=
                                   options.probability_accuracy * global_lo)) {
        return true;
      }
      if (options.exact_membership) {
        for (const GlobalCandidate& c : cands) {
          const double hi = prob_hi(c.scaled_global);
          const double lo = prob_lo(c.scaled_global);
          if (lo < threshold && hi >= threshold) return true;
        }
      }
      return false;
    };
    while (needs_refinement()) {
      if (!RefineRound(shards_, trav)) break;
      CombineDenominator(trav, scale, &global_lo, &global_hi);
    }

    // Final filter under the combined bounds, mirroring the single-tree
    // reporting rules (TiqTraversal::Result): exact mode keeps certified
    // members (midpoint filter for robustness), lazy mode keeps every
    // candidate whose upper bound still qualifies.
    if (global_lo > 0.0) {
      std::stable_sort(cands.begin(), cands.end(),
                       [](const GlobalCandidate& a, const GlobalCandidate& b) {
                         return a.scaled_global > b.scaled_global;
                       });
      for (const GlobalCandidate& c : cands) {
        const double hi = prob_hi(c.scaled_global);
        const double lo = prob_lo(c.scaled_global);
        const double mid = 0.5 * (hi + lo);
        if (options.exact_membership ? mid < threshold : hi < threshold) {
          continue;
        }
        IdentificationResult item;
        item.id = c.obj.id;
        item.log_density = c.obj.log_density;
        item.probability = mid;
        item.probability_error = 0.5 * (hi - lo);
        resp.items.push_back(item);
      }
    }
  }
  resp.stats = SumStats(trav, global_lo, global_hi);
  return resp;
}

BatchResult ShardCoordinator::ExecuteBatch(const std::vector<Query>& batch) {
  BatchResult result;
  if (batch.empty()) return result;

  const IoStats io_before = io_stats();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const Query& query : batch) futures.push_back(Submit(query));

  result.responses.reserve(batch.size());
  for (std::future<QueryResponse>& future : futures) {
    result.responses.push_back(future.get());
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats =
      AggregateBatchStats(result.responses, wall, io_stats() - io_before);
  return result;
}

IoStats ShardCoordinator::io_stats() const {
  IoStats total;
  for (const QueryService* shard : shards_) {
    total += shard->tree().pool()->stats();
  }
  return total;
}

}  // namespace gauss
