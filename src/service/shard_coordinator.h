#ifndef GAUSS_SERVICE_SHARD_COORDINATOR_H_
#define GAUSS_SERVICE_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "net/shard_backend.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service/request_queue.h"
#include "service/service_stats.h"
#include "storage/io_stats.h"

namespace gauss {

// ============================ ShardCoordinator ==============================
//
// The front door of a sharded GaussDb: one Submit()/ExecuteBatch() surface
// over N shards, each serving one Gauss-tree holding a hash-partition of the
// gallery. The coordinator talks to its shards exclusively through the
// ShardBackend seam (net/shard_backend.h) — a shard may be an in-process
// QueryService (InProcessBackend, what GaussDb::Serve wires) or a remote
// gauss_shardd reached over the binary wire protocol (RpcBackend, what
// GaussDb::ServeRemote wires). The merge mathematics below is transport-
// agnostic, and the loopback differential in tests/shard_equivalence_test.cc
// proves both transports byte-identical.
//
// Why sharding is not just a union of per-shard answers: the identification
// probability P(v|q) is the object's density normalized by a denominator
// summed over *all* database objects (paper Section 3). Each shard traversal
// only bounds its own partial denominator, so the coordinator must combine
// the per-shard intervals — and when the combined interval is still too wide
// to certify an answer, resume refinement on individual shards:
//
//  * Scale. Each shard traversal works in its own reference scale (its
//    root's joint log upper hull). The coordinator rebases every shard onto
//    the *maximum* reference (factors exp(log_ref_s - log_ref_g) <= 1, so
//    rebasing can only shrink values — no overflow), under which per-shard
//    denominator bounds are summable: lo_g = sum_s lo_s*f_s, hi_g likewise.
//    Empty shards contribute nothing and are skipped.
//
//  * MLIQ. Each shard reports its local top-k by exact density. Any global
//    top-k object is necessarily in its own shard's local top-k (k local
//    winners beat every unexpanded object of that shard), so merging the
//    local lists by density and truncating to k is exact. Probabilities are
//    then certified against the combined denominator; while the combined
//    interval is wider than the requested accuracy, the coordinator issues
//    mass-proportional refinement rounds (see below) until it certifies.
//    The reported id set never changes during refinement.
//
//  * TIQ. Each shard's surviving candidates are a superset of its globally
//    qualifying objects (a shard-local denominator under-estimates the
//    combined one, so local upper-bound filtering is conservative — no
//    false dismissals). The coordinator re-filters the union under combined
//    bounds; in exact-membership mode it first issues refinement rounds to
//    the shards until no candidate's probability interval straddles the
//    threshold (a second scatter round per halving step), so the final set
//    equals the single-tree algorithm's. Lazy mode keeps the paper's
//    Figure 5 contract (no false dismissals; straddling candidates are
//    reported) without extra rounds.
//
// Refinement budgets (RefinementPolicy::kMassProportional, the default):
// refinement cost is made proportional to contribution. Per-shard Start
// queries suppress the shard-local relative certification (the coordinator
// certifies against the *combined* interval instead — refining every shard
// to a relative epsilon against its own bounds costs roughly the same I/O
// per shard regardless of how little mass the shard holds). Each round the
// coordinator water-fills a combined-gap budget over the per-shard
// global-scale gaps: shards whose gap already sits below the water level
// are skipped outright (no frame, no I/O), the rest refine down to the
// level. With a positive combined lower bound the budget is eps * lo, which
// certifies in a single round; with a zero lower bound the gap halves per
// round until mass appears or an absolute gap floor terminates the query
// (a relative test alone can never certify lo == 0). A bounded round cap
// backstops pathological non-progress. When every shard reports a coarse
// denominator sketch (ShardBackend::FetchSketch, cached here at
// construction), the Start queries already carry water-filled initial gap
// targets computed from hull bounds of the sketch, so round 1 starts from a
// tight combined interval instead of root-level bounds. The sketches also
// certify *pruning floors* shipped with every Start: for MLIQ, a log-density
// met by >= k objects fleet-wide (a shard stops identifying once no local
// subtree can strictly beat it); for TIQ, a lower bound on the combined
// denominator rebased into each shard's scale (shard-local upper-bound
// filtering divides by it instead of the ~N-times-smaller local bound).
// Both are conservative bounds, so answers stay byte-identical — only
// pages-per-query moves.
// RefinementPolicy::kUniformHalving keeps the legacy behaviour — every
// non-exhausted shard halves its local gap each round — as a comparison
// baseline.
//
// All targets are computed at the coordinator from *transported* doubles
// (raw IEEE-754 over the wire), so RPC and in-process shards receive
// bit-identical targets and produce byte-identical answers.
//
// Refinement batching: each refinement round submits one RefineSpec per
// still-unconverged shard through ShardBackend::Refine. Concurrent queries'
// rounds coalesce in the backend's RefineChannel, so a round costs one wire
// frame (or one shard-worker closure) per shard no matter how many queries
// ride in it. ExecuteBatch reports the win as ServiceStats::refine_rounds /
// refine_batched_queries.
//
// Admission control happens only here, never at the shards: the coordinator
// queue sheds deadline-carrying queries when full and expires queued ones
// exactly like QueryService — so a shed or expired query is counted once in
// the merged ServiceStats, not once per shard. Over RPC, a query's remaining
// deadline budget also travels with it and bounds the socket wait, so a
// too-slow shard yields a typed timeout, not a stall.
//
// Failure model: a backend failure (connection lost, timeout, protocol
// error) fails the *query* with QueryResponse::Status::kShardError and the
// typed NetError — never a hang, never a crash — and the remaining shards'
// traversal state is released. In-process backends cannot fail.
//
// Shutdown: the destructor closes the queue, drains every admitted query
// (in-flight scatter-gathers complete, or fail typed if their shard died),
// and joins the coordinator threads. The backends (and any QueryServices
// under them) must outlive the coordinator.
// ============================================================================

// How the coordinator spends refinement I/O across shards (class comment).
enum class RefinementPolicy : uint8_t {
  // Water-fill a combined-interval budget over the shards' global-scale
  // gaps: heavy shards refine, light shards are skipped. The default.
  kMassProportional = 0,
  // Legacy: every non-exhausted shard halves its local gap each round.
  // Kept as a measurable baseline (tests/shard_equivalence_test.cc).
  kUniformHalving = 1,
};

struct ShardCoordinatorOptions {
  // Threads executing the per-query merge + refinement logic. Each blocks in
  // gather while shard workers traverse, so a few go a long way.
  size_t num_threads = 2;
  // Bound of the front-door admission queue.
  size_t queue_capacity = 1024;
  // Refinement budget allocation (see class comment).
  RefinementPolicy refinement = RefinementPolicy::kMassProportional;
};

class ShardCoordinator {
 public:
  // `backends[s]` fronts shard s and must outlive the coordinator. At least
  // one shard; every shard must share one dimensionality.
  ShardCoordinator(std::vector<ShardBackend*> backends,
                   ShardCoordinatorOptions options = {});

  // Convenience over in-process shards: wraps each QueryService in an owned
  // InProcessBackend. Semantics identical to the pre-backend coordinator.
  explicit ShardCoordinator(std::vector<QueryService*> shards,
                            ShardCoordinatorOptions options = {});

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  // Closes the queue, drains every admitted query, joins the threads.
  ~ShardCoordinator();

  // Streaming submission with QueryService-identical admission semantics:
  // deadline queries are shed at a full queue / expired before execution;
  // deadline-less queries block (backpressure). Thread-safe.
  std::future<QueryResponse> Submit(Query query);

  // Batch submission: submit-and-gather over Submit() with merged
  // ServiceStats (latency percentiles over executed queries; shed, expired
  // and shard-error queries counted once; IoStats and refinement-round
  // counters summed over the shard backends). Thread-safe.
  BatchResult ExecuteBatch(const std::vector<Query>& batch);

  // Sum of the shard caches' I/O counters (shards whose backend fails to
  // report are skipped).
  IoStats io_stats() const;

  // Sum of the backends' refinement batching counters.
  BackendRefineCounters refine_counters() const;

  size_t num_shards() const { return backends_.size(); }
  size_t dim() const { return dim_; }

 private:
  // One shard's live traversal during a query: its backend-side handle and
  // the latest partial state (Start fills it; refinement rounds overwrite
  // bounds and cumulative work counters in place).
  struct ShardRun {
    uint64_t id = 0;
    ShardPartial partial;
  };

  struct StartOutcome {
    NetError error;  // first shard failure; runs are partial if set
    std::vector<ShardRun> runs;
  };

  struct RoundOutcome {
    bool progressed = false;
    NetError error;
  };

  void Init(ShardCoordinatorOptions options);
  void CoordinatorLoop();
  QueryResponse ExecuteSharded(const Query& query);
  QueryResponse ExecuteMliq(const Query& query);
  QueryResponse ExecuteTiq(const Query& query);

  // Round 1 on every shard: allocate handles, Start the traversals, gather
  // all partials (gathers everything even on failure, so no future leaks).
  StartOutcome StartAll(const Query& query);
  // Everything the cached sketches certify about one query before any shard
  // runs: per-shard initial gap targets (refining queries), per-shard
  // combined-denominator floors (TIQ pruning), and the global k-th density
  // floor (MLIQ phase-1 pruning). `valid` is false when no sketch covers a
  // non-empty shard.
  struct SketchPlan {
    bool valid = false;
    // Per-shard local-scale absolute gap targets; -1 = none.
    std::vector<double> targets;
    // Per-shard local-scale lower bounds on the *combined* denominator
    // (TiqOptions::denominator_floor); 0 = none.
    std::vector<double> den_floors;
    // Log-density certified to be met by >= k objects fleet-wide
    // (MliqOptions::density_floor_log); -inf = none.
    double density_floor_log = 0.0;
  };
  // Under kMassProportional: fills `out` with one per-shard copy of `query`
  // carrying the sketch-derived floors, and — for probability-refining
  // queries — suppressing shard-local certification in favor of the
  // coordinator's budgets. Returns false (out untouched) when the shards
  // should just run `query` as-is.
  bool PlanShardQueries(const Query& query, std::vector<Query>* out) const;
  // Evaluates the cached sketches against one query (hull integrals, the
  // same arithmetic the shards' round 1 performs). No-op plan without
  // sketches.
  SketchPlan PlanFromSketches(const Query& query) const;
  // One refinement round. kMassProportional: water-fill `budget` (an
  // absolute combined-scale gap) over the shards' rebased gaps (factor[s] =
  // shard->global rebase, <= 1) and skip shards already below the level.
  // kUniformHalving ignores budget/factor and halves every non-exhausted
  // shard's local gap. Updates `runs` in place.
  RoundOutcome RefineRound(std::vector<ShardRun>& runs,
                           const std::vector<double>& factor, double budget);
  // Frees backend-side traversal state (fire-and-forget).
  void ReleaseAll(const std::vector<ShardRun>& runs);

  std::vector<std::unique_ptr<ShardBackend>> owned_backends_;
  std::vector<ShardBackend*> backends_;
  RefinementPolicy refinement_ = RefinementPolicy::kMassProportional;
  // Per-shard coarse denominator sketches, fetched once at construction.
  // All-or-nothing (have_sketches_), so planning is deterministic.
  std::vector<ShardSketch> sketches_;
  bool have_sketches_ = false;
  size_t dim_ = 0;
  std::atomic<uint64_t> next_traversal_id_{1};
  RequestQueue queue_;
  std::vector<std::thread> workers_;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_SHARD_COORDINATOR_H_
