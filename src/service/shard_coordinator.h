#ifndef GAUSS_SERVICE_SHARD_COORDINATOR_H_
#define GAUSS_SERVICE_SHARD_COORDINATOR_H_

#include <cstddef>
#include <future>
#include <thread>
#include <vector>

#include "service/query.h"
#include "service/query_service.h"
#include "service/request_queue.h"
#include "service/service_stats.h"
#include "storage/io_stats.h"

namespace gauss {

// ============================ ShardCoordinator ==============================
//
// The front door of a sharded GaussDb: one Submit()/ExecuteBatch() surface
// over N per-shard QueryServices, each serving one Gauss-tree holding a
// hash-partition of the gallery. A small pool of coordinator threads
// executes each admitted query end-to-end by scatter-gathering shard-local
// traversal steps onto the shards' own worker pools (QueryService::
// SubmitWork), so page I/O and density evaluation always run on the shard
// that owns the data.
//
// Why sharding is not just a union of per-shard answers: the identification
// probability P(v|q) is the object's density normalized by a denominator
// summed over *all* database objects (paper Section 3). Each shard traversal
// only bounds its own partial denominator, so the coordinator must combine
// the per-shard intervals — and when the combined interval is still too wide
// to certify an answer, resume refinement on individual shards:
//
//  * Scale. Each shard traversal works in its own reference scale (its
//    root's joint log upper hull). The coordinator rebases every shard onto
//    the *maximum* reference (factors exp(log_ref_s - log_ref_g) <= 1, so
//    rebasing can only shrink values — no overflow), under which per-shard
//    denominator bounds are summable: lo_g = sum_s lo_s*f_s, hi_g likewise.
//    Empty shards contribute nothing and are skipped.
//
//  * MLIQ. Each shard reports its local top-k by exact density. Any global
//    top-k object is necessarily in its own shard's local top-k (k local
//    winners beat every unexpanded object of that shard), so merging the
//    local lists by density and truncating to k is exact. Probabilities are
//    then certified against the combined denominator; while the combined
//    interval is wider than the requested accuracy, every non-exhausted
//    shard is asked to halve its denominator gap (MliqTraversal::
//    RefineDenominator) — geometric convergence, and the reported id set
//    never changes during refinement.
//
//  * TIQ. Each shard's surviving candidates are a superset of its globally
//    qualifying objects (a shard-local denominator under-estimates the
//    combined one, so local upper-bound filtering is conservative — no
//    false dismissals). The coordinator re-filters the union under combined
//    bounds; in exact-membership mode it first issues refinement rounds to
//    the shards until no candidate's probability interval straddles the
//    threshold (a second scatter round per halving step), so the final set
//    equals the single-tree algorithm's. Lazy mode keeps the paper's
//    Figure 5 contract (no false dismissals; straddling candidates are
//    reported) without extra rounds.
//
// Admission control happens only here, never at the shards: the coordinator
// queue sheds deadline-carrying queries when full and expires queued ones
// exactly like QueryService, while shard-level sub-steps use the blocking
// path — so a shed or expired query is counted once in the merged
// ServiceStats, not once per shard.
//
// Responses: QueryResponse::stats sums traversal work over all shards and
// rounds; denominator_lo/hi are the combined bounds in the coordinator's
// global scale. ExecuteBatch merges IoStats across the shard services'
// caches (io_stats() likewise).
//
// Shutdown: the destructor closes the queue, drains every admitted query
// (in-flight scatter-gathers complete against the still-live shard
// services), and joins the coordinator threads. The shard QueryServices
// must outlive the coordinator.
// ============================================================================

struct ShardCoordinatorOptions {
  // Threads executing the per-query merge + refinement logic. Each blocks in
  // gather while shard workers traverse, so a few go a long way.
  size_t num_threads = 2;
  // Bound of the front-door admission queue.
  size_t queue_capacity = 1024;
};

class ShardCoordinator {
 public:
  // `shards[s]` serves shard s's tree and must outlive the coordinator.
  // At least one shard; every shard tree must share one dimensionality.
  ShardCoordinator(std::vector<QueryService*> shards,
                   ShardCoordinatorOptions options = {});

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  // Closes the queue, drains every admitted query, joins the threads.
  ~ShardCoordinator();

  // Streaming submission with QueryService-identical admission semantics:
  // deadline queries are shed at a full queue / expired before execution;
  // deadline-less queries block (backpressure). Thread-safe.
  std::future<QueryResponse> Submit(Query query);

  // Batch submission: submit-and-gather over Submit() with merged
  // ServiceStats (latency percentiles over executed queries, shed/expired
  // counted once, IoStats summed over the shard caches). Thread-safe.
  BatchResult ExecuteBatch(const std::vector<Query>& batch);

  // Sum of the shard caches' I/O counters.
  IoStats io_stats() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  void CoordinatorLoop();
  QueryResponse ExecuteSharded(const Query& query);
  QueryResponse ExecuteMliq(const Query& query);
  QueryResponse ExecuteTiq(const Query& query);

  std::vector<QueryService*> shards_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_SHARD_COORDINATOR_H_
