#ifndef GAUSS_SERVICE_QUERY_H_
#define GAUSS_SERVICE_QUERY_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>
#include <variant>

#include "common/macros.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv.h"

namespace gauss {

enum class QueryKind : uint8_t { kMliq = 0, kTiq = 1 };

// Execution-start deadline of a query (steady clock, so it is immune to
// wall-clock adjustments): enforced at admission and again when a worker
// picks the query up — a query that has already begun executing runs to
// completion rather than discarding computed work. See
// Query::Deadline()/DeadlineAfter().
using QueryDeadline = std::chrono::steady_clock::time_point;

// One identification query, ready for submission to a serving Session or
// QueryService: the probe pfv plus the parameters of exactly one query kind.
//
// The descriptor is variant-backed — an MLIQ query physically cannot carry a
// TIQ threshold and vice versa (the old kind-tagged QueryRequest carried both
// option sets with half the fields dead). Construct through the factories and
// refine fluently:
//
//   Query::Mliq(probe, /*k=*/3).Accuracy(1e-2)
//   Query::Tiq(probe, /*threshold=*/0.2).ExactMembership(false)
//   Query::Mliq(probe, 1).DeadlineAfter(std::chrono::milliseconds(5))
//
// A query with a deadline participates in admission control: it is shed
// (QueryResponse::Status::kShed) instead of waiting when the service queue is
// full, and reports kDeadlineExceeded instead of *starting* execution once
// the deadline has passed (an execution already underway runs to
// completion). Queries without a deadline block on the full queue — classic
// backpressure — and always execute.
class Query {
 public:
  // k-most-likely identification (paper Definition 3).
  static Query Mliq(Pfv q, size_t k, MliqOptions options = {}) {
    Query query;
    query.pfv_ = std::move(q);
    query.params_ = MliqParams{k, options};
    return query;
  }

  // Threshold identification: everyone with P(v|q) >= threshold (paper
  // Definition 2).
  static Query Tiq(Pfv q, double threshold, TiqOptions options = {}) {
    Query query;
    query.pfv_ = std::move(q);
    query.params_ = TiqParams{threshold, options};
    return query;
  }

  // ---- Fluent refinements (each returns the query for chaining). ----------

  // Relative accuracy of the reported probabilities. For TIQ this also turns
  // on probability refinement (reporting values at a requested accuracy is
  // exactly what TiqOptions::refine_probabilities gates).
  Query& Accuracy(double probability_accuracy) & {
    if (auto* m = std::get_if<MliqParams>(&params_)) {
      m->options.probability_accuracy = probability_accuracy;
    } else {
      TiqParams& t = std::get<TiqParams>(params_);
      t.options.probability_accuracy = probability_accuracy;
      t.options.refine_probabilities = true;
    }
    return *this;
  }
  Query&& Accuracy(double probability_accuracy) && {
    return std::move(this->Accuracy(probability_accuracy));
  }

  // Whether probabilities are refined to the requested accuracy (MLIQ
  // default: true; TIQ default: false).
  Query& RefineProbabilities(bool refine) & {
    if (auto* m = std::get_if<MliqParams>(&params_)) {
      m->options.refine_probabilities = refine;
    } else {
      std::get<TiqParams>(params_).options.refine_probabilities = refine;
    }
    return *this;
  }
  Query&& RefineProbabilities(bool refine) && {
    return std::move(this->RefineProbabilities(refine));
  }

  // TIQ only: exact result-set membership vs the paper's lazier stopping
  // rule (see TiqOptions::exact_membership). Aborts on an MLIQ query — the
  // option does not exist there, and silently ignoring it would hide a bug.
  Query& ExactMembership(bool exact) & {
    GAUSS_CHECK_MSG(kind() == QueryKind::kTiq,
                    "ExactMembership is a TIQ option");
    std::get<TiqParams>(params_).options.exact_membership = exact;
    return *this;
  }
  Query&& ExactMembership(bool exact) && {
    return std::move(this->ExactMembership(exact));
  }

  // Asynchronous read-ahead depth of this query's traversal (see
  // MliqOptions::prefetch_depth): 0 inherits the serving stack's
  // ServeOptions::prefetch_depth. Purely a latency knob — answers are
  // byte-identical at every depth.
  Query& PrefetchDepth(size_t depth) & {
    if (auto* m = std::get_if<MliqParams>(&params_)) {
      m->options.prefetch_depth = depth;
    } else {
      std::get<TiqParams>(params_).options.prefetch_depth = depth;
    }
    return *this;
  }
  Query&& PrefetchDepth(size_t depth) && {
    return std::move(this->PrefetchDepth(depth));
  }

  // Absolute target for the traversal's scaled denominator gap, applied
  // after the (possibly disabled) relative refinement phase; < 0 disables
  // (see MliqOptions::denominator_target_gap). A shard coordinator sets this
  // per shard to make refinement cost proportional to the shard's share of
  // the combined denominator interval.
  Query& DenominatorTargetGap(double gap) & {
    if (auto* m = std::get_if<MliqParams>(&params_)) {
      m->options.denominator_target_gap = gap;
    } else {
      std::get<TiqParams>(params_).options.denominator_target_gap = gap;
    }
    return *this;
  }
  Query&& DenominatorTargetGap(double gap) && {
    return std::move(this->DenominatorTargetGap(gap));
  }

  // MLIQ only: absolute log-density floor certified to be met by >= k
  // objects fleet-wide; phase 1 stops once no subtree can strictly beat it
  // (see MliqOptions::density_floor_log). Set by a shard coordinator from
  // its per-shard sketches; -inf (the default) disables.
  Query& DensityFloorLog(double floor_log) & {
    std::get<MliqParams>(params_).options.density_floor_log = floor_log;
    return *this;
  }
  Query&& DensityFloorLog(double floor_log) && {
    return std::move(this->DensityFloorLog(floor_log));
  }

  // TIQ only: external lower bound on the combined denominator in the
  // shard's reference scale (see TiqOptions::denominator_floor). Set by a
  // shard coordinator from its per-shard sketches; 0 (the default)
  // disables.
  Query& DenominatorFloor(double floor) & {
    std::get<TiqParams>(params_).options.denominator_floor = floor;
    return *this;
  }
  Query&& DenominatorFloor(double floor) && {
    return std::move(this->DenominatorFloor(floor));
  }

  // Execution-start deadline (admission control; see class comment).
  Query& Deadline(QueryDeadline deadline) & {
    deadline_ = deadline;
    return *this;
  }
  Query&& Deadline(QueryDeadline deadline) && {
    return std::move(this->Deadline(deadline));
  }

  // Deadline relative to now.
  template <typename Rep, typename Period>
  Query& DeadlineAfter(std::chrono::duration<Rep, Period> budget) & {
    return Deadline(std::chrono::steady_clock::now() + budget);
  }
  template <typename Rep, typename Period>
  Query&& DeadlineAfter(std::chrono::duration<Rep, Period> budget) && {
    return std::move(this->DeadlineAfter(budget));
  }

  // ---- Accessors. ---------------------------------------------------------

  QueryKind kind() const {
    return std::holds_alternative<MliqParams>(params_) ? QueryKind::kMliq
                                                       : QueryKind::kTiq;
  }
  const Pfv& pfv() const { return pfv_; }

  bool has_deadline() const { return deadline_.has_value(); }
  QueryDeadline deadline() const { return *deadline_; }

  // Kind-specific parameters; std::get fails loudly (bad_variant_access)
  // when asked for the wrong kind.
  size_t k() const { return std::get<MliqParams>(params_).k; }
  const MliqOptions& mliq_options() const {
    return std::get<MliqParams>(params_).options;
  }
  double threshold() const { return std::get<TiqParams>(params_).threshold; }
  const TiqOptions& tiq_options() const {
    return std::get<TiqParams>(params_).options;
  }

 private:
  // No default member initializers: the factories set every field, and NSDMIs
  // in a nested class would delete the enclosing class's defaulted default
  // constructor while Query is still incomplete (GCC).
  struct MliqParams {
    size_t k;
    MliqOptions options;
  };
  struct TiqParams {
    double threshold;
    TiqOptions options;
  };

  Query() = default;

  Pfv pfv_;
  std::variant<MliqParams, TiqParams> params_;
  std::optional<QueryDeadline> deadline_;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_QUERY_H_
