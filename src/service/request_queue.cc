#include "service/request_queue.h"

#include "common/macros.h"

namespace gauss {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  GAUSS_CHECK(capacity > 0);
}

bool RequestQueue::Push(internal::QueryTask* task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(task);
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::TryPush(internal::QueryTask* task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(task);
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::Pop(internal::QueryTask** out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  *out = items_.front();
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // idempotent: second close is a no-op
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace gauss
