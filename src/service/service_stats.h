#ifndef GAUSS_SERVICE_SERVICE_STATS_H_
#define GAUSS_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_stats.h"

namespace gauss {

// Latency distribution of a set of queries, in microseconds.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  // Summarizes raw per-query nanosecond samples (sorts a copy; percentiles
  // use the nearest-rank method).
  static LatencySummary FromNanos(std::vector<uint64_t> samples_ns);
};

// Aggregate statistics of one served batch: throughput, latency
// distribution, buffer-cache I/O delta, and traversal-cost totals summed
// over the batch's queries.
struct ServiceStats {
  uint64_t mliq_queries = 0;
  uint64_t tiq_queries = 0;

  // Admission-control outcomes among those queries: rejected at a full queue
  // (shed) or expired before execution (deadline exceeded). Such queries are
  // counted in mliq/tiq_queries but contribute no latency sample or
  // traversal work.
  uint64_t shed_queries = 0;
  uint64_t deadline_exceeded_queries = 0;

  // Queries a sharded coordinator failed because a shard backend failed
  // (connection lost, request timed out, malformed reply). Counted like
  // shed/expired: present in mliq/tiq_queries, no latency sample, no work.
  uint64_t shard_error_queries = 0;

  // Denominator-refinement batching over the batch window: how many
  // refinement rounds the coordinator's backends flushed (one frame / one
  // worker closure per shard per round) and how many per-query refine
  // requests those rounds carried. requests/rounds is the batching win —
  // e.g. 64 unconverged queries converging in 3 rounds cost 3 round trips
  // per shard, not 192. Zero on unsharded services.
  uint64_t refine_rounds = 0;
  uint64_t refine_batched_queries = 0;

  double wall_seconds = 0.0;  // submit of the first query -> last completion
  double qps = 0.0;           // (mliq + tiq) / wall_seconds

  LatencySummary latency;

  // Cache counters over the batch window. Exact totals when one batch runs
  // at a time; concurrent batches on one service share the underlying
  // relaxed-atomic counters, so each batch's delta then includes a slice of
  // the others' traffic.
  IoStats io;

  // Traversal work summed over all queries of the batch.
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;

  uint64_t total_queries() const { return mliq_queries + tiq_queries; }

  // Buffer-cache fetches per query — the paper's logical page-access metric,
  // averaged over the batch.
  double pages_per_query() const;

  // Multi-line human-readable report.
  std::string ToString() const;
};

}  // namespace gauss

#endif  // GAUSS_SERVICE_SERVICE_STATS_H_
