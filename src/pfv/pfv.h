#ifndef GAUSS_PFV_PFV_H_
#define GAUSS_PFV_PFV_H_

#include <cstdint>
#include <vector>

#include "math/sigma_policy.h"

namespace gauss {

// A probabilistic feature vector (pfv): d observed feature values `mu` plus
// d uncertainty values `sigma` (paper Definition 1). Each (mu_i, sigma_i)
// pair defines a univariate Gaussian over the unknown true feature value.
struct Pfv {
  uint64_t id = 0;
  std::vector<double> mu;
  std::vector<double> sigma;

  Pfv() = default;
  Pfv(uint64_t object_id, std::vector<double> means, std::vector<double> devs);

  size_t dim() const { return mu.size(); }

  // Validity: equal lengths and strictly positive sigmas.
  bool Valid() const;
};

// Joint log density that `q` and `v` describe the same object (paper
// Lemma 1 applied per dimension and summed). This is the *relative*
// (unnormalized) identification weight; the Bayes normalization over the
// database turns it into P(v|q).
double PfvJointLogDensity(const Pfv& v, const Pfv& q,
                          SigmaPolicy policy = SigmaPolicy::kConvolution);

// Squared Euclidean distance between the mean vectors (the conventional
// feature-vector view used by the NN baseline).
double MeanSquaredDistance(const Pfv& a, const Pfv& b);

// A database of pfv with a fixed dimensionality.
class PfvDataset {
 public:
  explicit PfvDataset(size_t dim) : dim_(dim) {}

  // Appends a pfv; aborts on dimension mismatch or invalid sigmas.
  void Add(Pfv pfv);

  size_t size() const { return objects_.size(); }
  size_t dim() const { return dim_; }
  const Pfv& operator[](size_t i) const { return objects_[i]; }
  const std::vector<Pfv>& objects() const { return objects_; }

 private:
  size_t dim_;
  std::vector<Pfv> objects_;
};

}  // namespace gauss

#endif  // GAUSS_PFV_PFV_H_
