#include "pfv/pfv.h"

#include <cmath>
#include <utility>

#include "common/macros.h"
#include "math/gaussian.h"

namespace gauss {

Pfv::Pfv(uint64_t object_id, std::vector<double> means,
         std::vector<double> devs)
    : id(object_id), mu(std::move(means)), sigma(std::move(devs)) {
  GAUSS_CHECK(Valid());
}

bool Pfv::Valid() const {
  if (mu.size() != sigma.size()) return false;
  for (double s : sigma) {
    if (!(s > 0.0) || !std::isfinite(s)) return false;
  }
  for (double m : mu) {
    if (!std::isfinite(m)) return false;
  }
  return true;
}

double PfvJointLogDensity(const Pfv& v, const Pfv& q, SigmaPolicy policy) {
  GAUSS_DCHECK(v.dim() == q.dim());
  return JointLogDensity(v.mu.data(), v.sigma.data(), q.mu.data(),
                         q.sigma.data(), v.dim(), policy);
}

double MeanSquaredDistance(const Pfv& a, const Pfv& b) {
  GAUSS_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double d = a.mu[i] - b.mu[i];
    sum += d * d;
  }
  return sum;
}

void PfvDataset::Add(Pfv pfv) {
  GAUSS_CHECK(pfv.dim() == dim_);
  GAUSS_CHECK(pfv.Valid());
  objects_.push_back(std::move(pfv));
}

}  // namespace gauss
