#ifndef GAUSS_PFV_PFV_FILE_H_
#define GAUSS_PFV_PFV_FILE_H_

#include <cstdint>
#include <vector>

#include "pfv/pfv.h"
#include "storage/page_cache.h"
#include "storage/page.h"

namespace gauss {

// A paged, unordered file of fixed-dimensionality pfv records — the storage
// substrate of the sequential-scan baseline and the bulk data carrier for
// index construction.
//
// Page layout:
//   [uint32 record_count][records...]
// Record layout (fixed size for dimension d):
//   [uint64 id][d x double mu][d x double sigma]
class PfvFile {
 public:
  // `pool` must outlive the file; pages are allocated from its device.
  PfvFile(PageCache* pool, size_t dim);

  // Appends a record (fills pages densely in insertion order).
  void Append(const Pfv& pfv);

  // Bulk-appends a dataset.
  void AppendAll(const PfvDataset& dataset);

  // Reads the record at global index `i` (page computed from the index).
  Pfv Read(size_t i) const;

  // Invokes `fn(pfv)` for every record in file order: one buffer-pool fetch
  // per page, records deserialized on the fly.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t p = 0; p < pages_.size(); ++p) {
      const PageRef page = pool_->Fetch(pages_[p]);
      const uint32_t count = PageRecordCount(page.data());
      for (uint32_t r = 0; r < count; ++r) {
        fn(DeserializeRecord(page.data(), r));
      }
    }
  }

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  size_t page_count() const { return pages_.size(); }
  size_t records_per_page() const { return records_per_page_; }
  const std::vector<PageId>& pages() const { return pages_; }
  PageCache* pool() const { return pool_; }

 private:
  uint32_t PageRecordCount(const uint8_t* page) const;
  Pfv DeserializeRecord(const uint8_t* page, uint32_t slot) const;
  void SerializeRecord(uint8_t* page, uint32_t slot, const Pfv& pfv) const;

  PageCache* pool_;
  size_t dim_;
  size_t record_size_;
  size_t records_per_page_;
  size_t size_ = 0;
  std::vector<PageId> pages_;
};

}  // namespace gauss

#endif  // GAUSS_PFV_PFV_FILE_H_
