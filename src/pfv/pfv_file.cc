#include "pfv/pfv_file.h"

#include <cstring>

#include "common/macros.h"

namespace gauss {

namespace {
constexpr size_t kHeaderBytes = sizeof(uint32_t);
}  // namespace

PfvFile::PfvFile(PageCache* pool, size_t dim)
    : pool_(pool), dim_(dim) {
  GAUSS_CHECK(pool != nullptr);
  GAUSS_CHECK(dim > 0);
  record_size_ = sizeof(uint64_t) + 2 * dim * sizeof(double);
  const size_t payload = pool->device()->page_size() - kHeaderBytes;
  records_per_page_ = payload / record_size_;
  GAUSS_CHECK_MSG(records_per_page_ > 0,
                  "page too small for a single pfv record");
}

uint32_t PfvFile::PageRecordCount(const uint8_t* page) const {
  uint32_t count;
  std::memcpy(&count, page, sizeof(count));
  return count;
}

Pfv PfvFile::DeserializeRecord(const uint8_t* page, uint32_t slot) const {
  const uint8_t* p = page + kHeaderBytes + slot * record_size_;
  Pfv pfv;
  std::memcpy(&pfv.id, p, sizeof(uint64_t));
  p += sizeof(uint64_t);
  pfv.mu.resize(dim_);
  std::memcpy(pfv.mu.data(), p, dim_ * sizeof(double));
  p += dim_ * sizeof(double);
  pfv.sigma.resize(dim_);
  std::memcpy(pfv.sigma.data(), p, dim_ * sizeof(double));
  return pfv;
}

void PfvFile::SerializeRecord(uint8_t* page, uint32_t slot,
                              const Pfv& pfv) const {
  uint8_t* p = page + kHeaderBytes + slot * record_size_;
  std::memcpy(p, &pfv.id, sizeof(uint64_t));
  p += sizeof(uint64_t);
  std::memcpy(p, pfv.mu.data(), dim_ * sizeof(double));
  p += dim_ * sizeof(double);
  std::memcpy(p, pfv.sigma.data(), dim_ * sizeof(double));
}

void PfvFile::Append(const Pfv& pfv) {
  GAUSS_CHECK(pfv.dim() == dim_);
  const size_t slot = size_ % records_per_page_;
  if (slot == 0) {
    pages_.push_back(pool_->device()->Allocate());
  }
  const PageRef page = pool_->FetchMutable(pages_.back());
  SerializeRecord(page.mutable_data(), static_cast<uint32_t>(slot), pfv);
  const uint32_t count = static_cast<uint32_t>(slot + 1);
  std::memcpy(page.mutable_data(), &count, sizeof(count));
  ++size_;
}

void PfvFile::AppendAll(const PfvDataset& dataset) {
  GAUSS_CHECK(dataset.dim() == dim_);
  for (const Pfv& pfv : dataset.objects()) Append(pfv);
}

Pfv PfvFile::Read(size_t i) const {
  GAUSS_CHECK(i < size_);
  const size_t page_idx = i / records_per_page_;
  const uint32_t slot = static_cast<uint32_t>(i % records_per_page_);
  const PageRef page = pool_->Fetch(pages_[page_idx]);
  GAUSS_DCHECK(slot < PageRecordCount(page.data()));
  return DeserializeRecord(page.data(), slot);
}

}  // namespace gauss
