#ifndef GAUSS_GAUSSTREE_NODE_H_
#define GAUSS_GAUSSTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "math/hull.h"
#include "pfv/pfv.h"
#include "storage/page.h"

namespace gauss {

// Inner-node entry: the 2d-dimensional minimum bounding rectangle over the
// (mu, sigma) parameter space of one child subtree, plus the child's page id
// and the number of pfv stored below it (needed for the n * N_check /
// n * N_hat denominator bounds of paper Section 5.2.2).
struct GtChildEntry {
  PageId child = kInvalidPageId;
  uint32_t count = 0;
  std::vector<DimBounds> bounds;

  // Extends the MBR to cover `other`.
  void Merge(const GtChildEntry& other);
  // Extends the MBR to cover a single pfv.
  void Include(const Pfv& pfv);
  bool Contains(const Pfv& pfv) const;
};

enum class GtNodeKind : uint8_t { kLeaf = 0, kInner = 1 };

// A Gauss-tree node. Leaves hold pfv records; inner nodes hold child MBR
// entries. Nodes serialize to fixed-size pages (see node.cc for the layout).
struct GtNode {
  PageId id = kInvalidPageId;
  GtNodeKind kind = GtNodeKind::kLeaf;
  std::vector<Pfv> pfvs;                 // leaf payload
  std::vector<GtChildEntry> children;    // inner payload

  bool leaf() const { return kind == GtNodeKind::kLeaf; }
  size_t EntryCount() const { return leaf() ? pfvs.size() : children.size(); }

  // Total number of pfv in this subtree.
  uint32_t SubtreeCount() const;

  // Parameter-space MBR over the node's contents (d DimBounds).
  std::vector<DimBounds> ComputeBounds(size_t dim) const;

  // Serialized size in bytes for the given dimensionality.
  size_t SerializedSize(size_t dim) const;

  // Serializes into `page` (must hold at least SerializedSize bytes).
  void Serialize(uint8_t* page, size_t dim) const;

  // Deserializes a node from page bytes. `id` is not stored on the page and
  // must be supplied by the caller.
  static GtNode Deserialize(const uint8_t* page, size_t dim, PageId id);
};

// Decode-time structure-of-arrays view of one node's entries, shaped for the
// batch kernels in math/kernels.h: per-dimension planes of `stride` doubles,
// stride = kernels::PadEntries(n) so every plane is padded to the widest
// vector width. The on-disk page layout is unchanged — this view is built by
// Decode() straight from page bytes (or FromNode() from an in-memory node)
// and never written back. Padding lanes are zeroed but the kernels never
// read them (they only touch elements [0, n)).
//
// Plane order (each plane is `stride` doubles, dimensions major):
//   leaf:  [dim x mu][dim x sigma]
//   inner: [dim x mu_lo][dim x mu_hi][dim x sigma_lo][dim x sigma_hi]
struct GtNodeSoa {
  PageId id = kInvalidPageId;
  GtNodeKind kind = GtNodeKind::kLeaf;
  size_t n = 0;       // entry count
  size_t dim = 0;
  size_t stride = 0;  // kernels::PadEntries(n)
  std::vector<uint64_t> ids;       // leaf: n pfv ids
  std::vector<PageId> children;    // inner: n child page ids
  std::vector<uint32_t> counts;    // inner: n subtree counts
  std::vector<double> planes;      // leaf: 2*dim planes; inner: 4*dim planes

  bool leaf() const { return kind == GtNodeKind::kLeaf; }

  // Leaf plane groups.
  const double* mu() const { return planes.data(); }
  const double* sigma() const { return planes.data() + dim * stride; }
  // Inner plane groups.
  const double* mu_lo() const { return planes.data(); }
  const double* mu_hi() const { return planes.data() + dim * stride; }
  const double* sigma_lo() const { return planes.data() + 2 * dim * stride; }
  const double* sigma_hi() const { return planes.data() + 3 * dim * stride; }

  // Decodes a serialized page into `out`, reusing its buffers (traversals
  // keep one GtNodeSoa as scratch across Expand calls).
  static void Decode(const uint8_t* page, size_t dim, PageId id,
                     GtNodeSoa* out);

  // Builds the view from an in-memory node (build-mode NodeStore and the
  // pinned root, which skip serialization).
  static void FromNode(const GtNode& node, size_t dim, GtNodeSoa* out);
};

// Per-node-type capacities derived from the page size.
struct GtCapacities {
  size_t leaf = 0;        // max pfv records per leaf
  size_t inner = 0;       // max child entries per inner node
  size_t leaf_min = 0;    // min fill (non-root)
  size_t inner_min = 0;

  static GtCapacities ForPageSize(uint32_t page_size, size_t dim);
};

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_NODE_H_
