#ifndef GAUSS_GAUSSTREE_TREE_STATS_H_
#define GAUSS_GAUSSTREE_TREE_STATS_H_

#include <ostream>
#include <vector>

#include "gausstree/gauss_tree.h"

namespace gauss {

// Per-level structural profile of a Gauss-tree.
struct LevelProfile {
  size_t level = 0;           // 0 = root level
  size_t nodes = 0;
  size_t entries = 0;
  double avg_hull_integral = 0.0;  // mean node access-probability measure
};

// Walks the tree and reports a profile per level (root first).
std::vector<LevelProfile> ProfileLevels(const GaussTree& tree);

// Human-readable structural summary, used by examples and benches.
void PrintTreeSummary(const GaussTree& tree, std::ostream& os);

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_TREE_STATS_H_
