#include "gausstree/mliq.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "gausstree/query_common.h"
#include "pfv/pfv.h"

namespace gauss {

namespace {

using internal::ActiveNode;
using internal::DenominatorTracker;

struct Candidate {
  uint64_t id = 0;
  double scaled_density = 0.0;
  double log_density = 0.0;
};

// Keeps the k highest-density objects seen so far, sorted descending.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(const Candidate& c) {
    if (items_.size() == k_ && c.scaled_density <= Kth()) return;
    auto pos = std::lower_bound(items_.begin(), items_.end(), c,
                                [](const Candidate& a, const Candidate& b) {
                                  return a.scaled_density > b.scaled_density;
                                });
    items_.insert(pos, c);
    if (items_.size() > k_) items_.pop_back();
  }

  // Density of the current k-th best (0 if fewer than k seen).
  double Kth() const {
    return items_.size() < k_ ? 0.0 : items_.back().scaled_density;
  }

  bool Full() const { return items_.size() == k_; }
  const std::vector<Candidate>& items() const { return items_; }

 private:
  size_t k_;
  std::vector<Candidate> items_;
};

}  // namespace

MliqResult QueryMliq(const GaussTree& tree, const Pfv& q, size_t k,
                     const MliqOptions& options) {
  GAUSS_CHECK(q.dim() == tree.dim());
  GAUSS_CHECK(q.Valid());
  GAUSS_CHECK(k > 0);

  MliqResult result;
  if (tree.size() == 0) return result;

  const SigmaPolicy policy = tree.options().sigma_policy;
  const double log_ref = internal::ComputeLogRef(tree, q);

  DenominatorTracker tracker;
  TopK top_k(k);
  internal::QueryCounters counters;

  // Seed with the root as a pseudo active node (bounds trivially [0, 1]
  // scaled; exact values are irrelevant because it is expanded first).
  tracker.Push(ActiveNode{tree.root(), static_cast<uint32_t>(tree.size()),
                          1.0, 0.0});

  GtNode node;
  auto expand = [&](const ActiveNode& active) {
    tree.store().Load(active.page, &node);
    ++counters.nodes_visited;
    if (node.leaf()) {
      ++counters.leaf_nodes_visited;
      for (const Pfv& v : node.pfvs) {
        const double log_density = PfvJointLogDensity(v, q, policy);
        const double scaled = std::exp(log_density - log_ref);
        tracker.AddExact(scaled);
        ++counters.objects_evaluated;
        top_k.Offer({v.id, scaled, log_density});
      }
    } else {
      for (const GtChildEntry& e : node.children) {
        tracker.Push(internal::MakeActiveNode(e, q, policy, log_ref));
      }
    }
  };

  // Phase 1 (Section 5.2.1): find the k most likely objects. Safe to stop
  // once every unexpanded subtree's upper bound is at or below the k-th
  // candidate's exact density. If every density underflows to zero (query
  // infinitely far from all data), any k objects are a valid answer once the
  // remaining upper bounds are zero as well.
  while (!tracker.Empty()) {
    const double top_upper = tracker.Top().upper;
    if (top_k.Full() &&
        (top_upper <= top_k.Kth() && (top_k.Kth() > 0.0 || top_upper == 0.0))) {
      break;
    }
    expand(tracker.Pop());
  }

  // Phase 2 (Section 5.2.2): tighten the denominator until every reported
  // probability is certified to the requested accuracy.
  if (options.refine_probabilities) {
    const double eps = options.probability_accuracy;
    while (!tracker.Empty()) {
      const double lo = tracker.DenominatorLo();
      const double hi = tracker.DenominatorHi();
      if (lo > 0.0 && (hi - lo) <= eps * lo) break;
      expand(tracker.Pop());
    }
  }

  const double den_lo = tracker.DenominatorLo();
  const double den_hi = tracker.DenominatorHi();
  result.stats.nodes_visited = counters.nodes_visited;
  result.stats.leaf_nodes_visited = counters.leaf_nodes_visited;
  result.stats.objects_evaluated = counters.objects_evaluated;
  result.stats.denominator_lo = den_lo;
  result.stats.denominator_hi = den_hi;

  for (const Candidate& c : top_k.items()) {
    IdentificationResult item;
    item.id = c.id;
    item.log_density = c.log_density;
    if (den_lo > 0.0) {
      const double p_hi = std::min(1.0, c.scaled_density / den_lo);
      const double p_lo = c.scaled_density / den_hi;
      item.probability = 0.5 * (p_hi + p_lo);
      item.probability_error = 0.5 * (p_hi - p_lo);
    }
    result.items.push_back(item);
  }
  return result;
}

}  // namespace gauss
