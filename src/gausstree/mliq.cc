#include "gausstree/mliq.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "gausstree/query_common.h"
#include "pfv/pfv.h"

namespace gauss {

using internal::ActiveNode;

MliqTraversal::MliqTraversal(const GaussTree& tree, const Pfv& q, size_t k,
                             MliqOptions options)
    : tree_(tree),
      q_(q),
      k_(k),
      options_(options),
      policy_(tree.options().sigma_policy) {
  GAUSS_CHECK(q_.dim() == tree_.dim());
  GAUSS_CHECK(q_.Valid());
  GAUSS_CHECK(k_ > 0);
  if (tree_.size() == 0) return;  // empty frontier: exhausted from the start

  // Read-ahead only makes sense once nodes live on pages; during the build
  // phase Load() bypasses the cache entirely.
  if (tree_.store().finalized()) prefetch_depth_ = options_.prefetch_depth;

  log_ref_ = internal::ComputeLogRef(tree_, q_);
  // Rebase the coordinator's absolute floor into this traversal's scale.
  // exp(-inf - log_ref) == 0 disables cleanly; an overflow to +inf means
  // this whole shard is certified below the global k-th density and phase 1
  // stops at the root. PortableExp — the same exp the batch kernels apply to
  // the subtree bounds — so a bound that ties the floor in log space still
  // ties it here (the floor's strict-< pruning depends on exact ties).
  density_floor_ = kernels::PortableExp(options_.density_floor_log - log_ref_);
  // Seed with the root as a pseudo active node (bounds trivially [0, 1]
  // scaled; exact values are irrelevant because it is expanded first).
  tracker_.Push(ActiveNode{tree_.root(), static_cast<uint32_t>(tree_.size()),
                           1.0, 0.0});
}

void MliqTraversal::OfferCandidate(const ScoredObject& candidate) {
  if (items_.size() == k_ && candidate.scaled_density <= KthDensity()) return;
  auto pos = std::lower_bound(items_.begin(), items_.end(), candidate,
                              [](const ScoredObject& a, const ScoredObject& b) {
                                return a.scaled_density > b.scaled_density;
                              });
  items_.insert(pos, candidate);
  if (items_.size() > k_) items_.pop_back();
}

double MliqTraversal::KthDensity() const {
  return items_.size() < k_ ? 0.0 : items_.back().scaled_density;
}

void MliqTraversal::Expand(const ActiveNode& active) {
  tree_.store().LoadSoa(active.page, &scratch_.node);
  ++counters_.nodes_visited;
  // One batch kernel call scores the whole node against the query (leaf:
  // Lemma 1 joint densities; inner: Lemma 2/3 hull bounds), then the scalar
  // loop below only routes the per-entry results.
  internal::ScoreNodeBatch(q_, policy_, log_ref_, &scratch_);
  const GtNodeSoa& soa = scratch_.node;
  if (soa.leaf()) {
    ++counters_.leaf_nodes_visited;
    for (size_t j = 0; j < soa.n; ++j) {
      tracker_.AddExact(scratch_.scaled_upper[j]);
      ++counters_.objects_evaluated;
      OfferCandidate(
          {soa.ids[j], scratch_.scaled_upper[j], scratch_.log_upper[j]});
    }
  } else {
    for (size_t j = 0; j < soa.n; ++j) {
      tracker_.Push(ActiveNode{soa.children[j], soa.counts[j],
                               scratch_.scaled_upper[j],
                               scratch_.scaled_lower[j]});
    }
  }
  // With the popped node's children enqueued, the queue's best entries are
  // exactly the pages the next pops will load — hint them to the cache so
  // their device reads overlap with the density evaluations above.
  internal::PrefetchFrontier(tracker_, tree_.pool(), prefetch_depth_,
                             &prefetch_pages_);
}

void MliqTraversal::Run() {
  GAUSS_CHECK_MSG(!ran_, "MliqTraversal::Run is one-shot");
  ran_ = true;

  // Phase 1 (Section 5.2.1): find the k most likely objects. Safe to stop
  // once every unexpanded subtree's upper bound is at or below the k-th
  // candidate's exact density. If every density underflows to zero (query
  // infinitely far from all data), any k objects are a valid answer once the
  // remaining upper bounds are zero as well.
  while (!tracker_.Empty()) {
    const double top_upper = tracker_.Top().upper;
    const bool local_done =
        items_.size() == k_ &&
        (top_upper <= KthDensity() &&
         (KthDensity() > 0.0 || top_upper == 0.0));
    // Sketch floor (density_floor_log): at least k objects somewhere in the
    // fleet are certified at or above the floor, so a subtree strictly
    // below it cannot hold a global winner — even before k local
    // candidates exist. Strict <: an object tying the floor exactly must
    // still be surfaced for the coordinator's merge.
    const bool floor_done = density_floor_ > 0.0 && top_upper < density_floor_;
    if (local_done || floor_done) break;
    Expand(tracker_.Pop());
  }

  // Phase 2 (Section 5.2.2): tighten the denominator until every reported
  // probability is certified to the requested accuracy.
  if (options_.refine_probabilities) {
    const double eps = options_.probability_accuracy;
    while (!tracker_.Empty()) {
      const double lo = tracker_.DenominatorLo();
      const double hi = tracker_.DenominatorHi();
      if (lo > 0.0 && (hi - lo) <= eps * lo) break;
      Expand(tracker_.Pop());
    }
  }

  // Absolute gap target (a shard coordinator's mass-proportional budget):
  // tighten until the scaled gap fits, independent of the relative test.
  if (options_.denominator_target_gap >= 0.0) {
    RefineDenominator(options_.denominator_target_gap);
  }
}

void MliqTraversal::RefineDenominator(double max_gap) {
  GAUSS_CHECK_MSG(ran_, "RefineDenominator before Run");
  while (!tracker_.Empty() && denominator_gap() > max_gap) {
    Expand(tracker_.Pop());
  }
}

TraversalStats MliqTraversal::stats() const {
  TraversalStats stats;
  stats.nodes_visited = counters_.nodes_visited;
  stats.leaf_nodes_visited = counters_.leaf_nodes_visited;
  stats.objects_evaluated = counters_.objects_evaluated;
  stats.denominator_lo = tracker_.DenominatorLo();
  stats.denominator_hi = tracker_.DenominatorHi();
  return stats;
}

MliqResult MliqTraversal::Result() const {
  MliqResult result;
  result.stats = stats();
  const double den_lo = result.stats.denominator_lo;
  const double den_hi = result.stats.denominator_hi;
  for (const ScoredObject& c : items_) {
    IdentificationResult item;
    item.id = c.id;
    item.log_density = c.log_density;
    if (den_lo > 0.0) {
      const double p_hi = std::min(1.0, c.scaled_density / den_lo);
      const double p_lo = c.scaled_density / den_hi;
      item.probability = 0.5 * (p_hi + p_lo);
      item.probability_error = 0.5 * (p_hi - p_lo);
    }
    result.items.push_back(item);
  }
  return result;
}

MliqResult QueryMliq(const GaussTree& tree, const Pfv& q, size_t k,
                     const MliqOptions& options) {
  MliqTraversal traversal(tree, q, k, options);
  traversal.Run();
  return traversal.Result();
}

}  // namespace gauss
