#include "gausstree/tree_stats.h"

#include <deque>
#include <iomanip>

#include "math/hull_integral.h"

namespace gauss {

std::vector<LevelProfile> ProfileLevels(const GaussTree& tree) {
  std::vector<LevelProfile> profile;
  struct Item {
    PageId id;
    size_t level;
  };
  std::deque<Item> queue{{tree.root(), 0}};
  GtNode node;
  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop_front();
    tree.store().Load(item.id, &node);
    if (profile.size() <= item.level) profile.resize(item.level + 1);
    LevelProfile& lp = profile[item.level];
    lp.level = item.level;
    ++lp.nodes;
    lp.entries += node.EntryCount();
    const std::vector<DimBounds> bounds = node.ComputeBounds(tree.dim());
    if (node.EntryCount() > 0) {
      lp.avg_hull_integral += HullIntegralMeasure(
          bounds.data(), bounds.size(), tree.options().integral_method);
    }
    if (!node.leaf()) {
      for (const GtChildEntry& e : node.children) {
        queue.push_back({e.child, item.level + 1});
      }
    }
  }
  for (LevelProfile& lp : profile) {
    if (lp.nodes > 0) lp.avg_hull_integral /= static_cast<double>(lp.nodes);
  }
  return profile;
}

void PrintTreeSummary(const GaussTree& tree, std::ostream& os) {
  const GaussTreeStats stats = tree.ComputeStats();
  os << "Gauss-tree: " << stats.object_count << " objects, dim " << tree.dim()
     << ", height " << stats.height << ", " << stats.node_count << " nodes ("
     << stats.inner_nodes << " inner / " << stats.leaf_nodes << " leaves)\n";
  os << "  leaf fill " << std::fixed << std::setprecision(1)
     << 100.0 * stats.avg_leaf_fill << "%, inner fill "
     << 100.0 * stats.avg_inner_fill << "%\n";
  const std::vector<LevelProfile> profile = ProfileLevels(tree);
  for (const LevelProfile& lp : profile) {
    os << "  level " << lp.level << ": " << lp.nodes << " nodes, "
       << lp.entries << " entries, avg hull-integral measure "
       << std::setprecision(3) << lp.avg_hull_integral << "\n";
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace gauss
