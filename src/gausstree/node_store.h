#ifndef GAUSS_GAUSSTREE_NODE_STORE_H_
#define GAUSS_GAUSSTREE_NODE_STORE_H_

#include <memory>
#include <unordered_map>

#include "gausstree/node.h"
#include "storage/page_cache.h"

namespace gauss {

// Owns the mapping from page ids to Gauss-tree nodes.
//
// Two phases:
//  * Build phase: nodes live as in-memory objects (a write-back cache of the
//    whole tree); page ids are pre-allocated on the device so the final
//    layout is fixed. This keeps construction fast without distorting query
//    measurements.
//  * Query phase (after Finalize()): every access goes through the buffer
//    pool — a fetch is a logical page access, a miss is a physical one — and
//    the node is deserialized from page bytes, exactly what a disk-resident
//    index pays.
//
// Definalize() reloads every node into memory to resume building (dynamic
// insert after a finalized load).
class GtNodeStore {
 public:
  GtNodeStore(PageCache* pool, size_t dim);

  GtNodeStore(const GtNodeStore&) = delete;
  GtNodeStore& operator=(const GtNodeStore&) = delete;

  // Creates a fresh node of the given kind with a newly allocated page.
  GtNode* Create(GtNodeKind kind);

  // Build-phase mutable access.
  GtNode* GetMutable(PageId id);

  // Query access. In the build phase returns the in-memory object without
  // touching the pool; after Finalize() fetches + deserializes.
  // The returned value is a copy in the finalized case; `scratch` avoids
  // reallocation across calls.
  void Load(PageId id, GtNode* scratch) const;

  // Query access shaped for the batch kernels: decodes the page straight
  // into `scratch`'s SoA planes (math/kernels.h layout) without materializing
  // a GtNode. Same page-accounting semantics as Load(); the pinned root is
  // served from a pre-decoded SoA copy.
  void LoadSoa(PageId id, GtNodeSoa* scratch) const;

  // Serializes every node to its page and switches to query mode.
  void Finalize();

  // Loads every node back into memory and switches to build mode.
  void Definalize();

  // Pins one node — the root — in memory for the finalized lifetime:
  // Load() serves it by copy without touching the pool. Every traversal
  // starts at the root twice (the reference-scale computation, then the
  // first expansion), so an unpinned root costs two logical reads per query
  // per tree — the dominant fixed I/O tax of a sharded database, paid N
  // times per query. One page of memory, one read at pin time.
  // Definalize() drops the pin (build mode mutates nodes in place).
  void PinRoot(PageId id);

  // Switches an empty store into query mode over an existing on-device tree
  // whose node pages are `pages` (the root-reachable set). Used by
  // GaussTree::Open.
  void OpenFinalized(std::vector<PageId> pages);

  bool finalized() const { return finalized_; }
  size_t node_count() const;
  size_t dim() const { return dim_; }
  PageCache* pool() const { return pool_; }

 private:
  PageCache* pool_;
  size_t dim_;
  bool finalized_ = false;
  std::unordered_map<PageId, std::unique_ptr<GtNode>> nodes_;
  size_t finalized_count_ = 0;
  std::vector<PageId> all_pages_;
  PageId pinned_id_ = kInvalidPageId;
  std::unique_ptr<GtNode> pinned_;
  std::unique_ptr<GtNodeSoa> pinned_soa_;
};

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_NODE_STORE_H_
