#include "gausstree/node.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/macros.h"
#include "math/kernels.h"

namespace gauss {

// Page layout.
//
// Header:
//   [u8  kind]
//   [u32 entry_count]
// Leaf record (per pfv):
//   [u64 id][d x f64 mu][d x f64 sigma]
// Inner entry (per child):
//   [u32 child][u32 count][d x (f64 mu_lo, f64 mu_hi, f64 sg_lo, f64 sg_hi)]
namespace {

constexpr size_t kHeaderBytes = 1 + sizeof(uint32_t);

size_t LeafRecordBytes(size_t dim) {
  return sizeof(uint64_t) + 2 * dim * sizeof(double);
}

size_t InnerEntryBytes(size_t dim) {
  return 2 * sizeof(uint32_t) + 4 * dim * sizeof(double);
}

template <typename T>
void Put(uint8_t** p, const T& value) {
  std::memcpy(*p, &value, sizeof(T));
  *p += sizeof(T);
}

template <typename T>
T Take(const uint8_t** p) {
  T value;
  std::memcpy(&value, *p, sizeof(T));
  *p += sizeof(T);
  return value;
}

}  // namespace

void GtChildEntry::Merge(const GtChildEntry& other) {
  GAUSS_DCHECK(bounds.size() == other.bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    bounds[i].mu_lo = std::min(bounds[i].mu_lo, other.bounds[i].mu_lo);
    bounds[i].mu_hi = std::max(bounds[i].mu_hi, other.bounds[i].mu_hi);
    bounds[i].sigma_lo = std::min(bounds[i].sigma_lo, other.bounds[i].sigma_lo);
    bounds[i].sigma_hi = std::max(bounds[i].sigma_hi, other.bounds[i].sigma_hi);
  }
  count += other.count;
}

void GtChildEntry::Include(const Pfv& pfv) {
  GAUSS_DCHECK(bounds.size() == pfv.dim());
  for (size_t i = 0; i < bounds.size(); ++i) {
    bounds[i].mu_lo = std::min(bounds[i].mu_lo, pfv.mu[i]);
    bounds[i].mu_hi = std::max(bounds[i].mu_hi, pfv.mu[i]);
    bounds[i].sigma_lo = std::min(bounds[i].sigma_lo, pfv.sigma[i]);
    bounds[i].sigma_hi = std::max(bounds[i].sigma_hi, pfv.sigma[i]);
  }
}

bool GtChildEntry::Contains(const Pfv& pfv) const {
  GAUSS_DCHECK(bounds.size() == pfv.dim());
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (!bounds[i].Contains(pfv.mu[i], pfv.sigma[i])) return false;
  }
  return true;
}

uint32_t GtNode::SubtreeCount() const {
  if (leaf()) return static_cast<uint32_t>(pfvs.size());
  uint32_t total = 0;
  for (const GtChildEntry& e : children) total += e.count;
  return total;
}

std::vector<DimBounds> GtNode::ComputeBounds(size_t dim) const {
  std::vector<DimBounds> bounds(dim);
  for (DimBounds& b : bounds) {
    b.mu_lo = std::numeric_limits<double>::infinity();
    b.mu_hi = -std::numeric_limits<double>::infinity();
    b.sigma_lo = std::numeric_limits<double>::infinity();
    b.sigma_hi = -std::numeric_limits<double>::infinity();
  }
  if (leaf()) {
    for (const Pfv& pfv : pfvs) {
      GAUSS_DCHECK(pfv.dim() == dim);
      for (size_t i = 0; i < dim; ++i) {
        bounds[i].mu_lo = std::min(bounds[i].mu_lo, pfv.mu[i]);
        bounds[i].mu_hi = std::max(bounds[i].mu_hi, pfv.mu[i]);
        bounds[i].sigma_lo = std::min(bounds[i].sigma_lo, pfv.sigma[i]);
        bounds[i].sigma_hi = std::max(bounds[i].sigma_hi, pfv.sigma[i]);
      }
    }
  } else {
    for (const GtChildEntry& e : children) {
      GAUSS_DCHECK(e.bounds.size() == dim);
      for (size_t i = 0; i < dim; ++i) {
        bounds[i].mu_lo = std::min(bounds[i].mu_lo, e.bounds[i].mu_lo);
        bounds[i].mu_hi = std::max(bounds[i].mu_hi, e.bounds[i].mu_hi);
        bounds[i].sigma_lo = std::min(bounds[i].sigma_lo, e.bounds[i].sigma_lo);
        bounds[i].sigma_hi = std::max(bounds[i].sigma_hi, e.bounds[i].sigma_hi);
      }
    }
  }
  return bounds;
}

size_t GtNode::SerializedSize(size_t dim) const {
  if (leaf()) return kHeaderBytes + pfvs.size() * LeafRecordBytes(dim);
  return kHeaderBytes + children.size() * InnerEntryBytes(dim);
}

void GtNode::Serialize(uint8_t* page, size_t dim) const {
  uint8_t* p = page;
  Put<uint8_t>(&p, static_cast<uint8_t>(kind));
  Put<uint32_t>(&p, static_cast<uint32_t>(EntryCount()));
  if (leaf()) {
    for (const Pfv& pfv : pfvs) {
      GAUSS_DCHECK(pfv.dim() == dim);
      Put<uint64_t>(&p, pfv.id);
      std::memcpy(p, pfv.mu.data(), dim * sizeof(double));
      p += dim * sizeof(double);
      std::memcpy(p, pfv.sigma.data(), dim * sizeof(double));
      p += dim * sizeof(double);
    }
  } else {
    for (const GtChildEntry& e : children) {
      GAUSS_DCHECK(e.bounds.size() == dim);
      Put<uint32_t>(&p, e.child);
      Put<uint32_t>(&p, e.count);
      for (size_t i = 0; i < dim; ++i) {
        Put<double>(&p, e.bounds[i].mu_lo);
        Put<double>(&p, e.bounds[i].mu_hi);
        Put<double>(&p, e.bounds[i].sigma_lo);
        Put<double>(&p, e.bounds[i].sigma_hi);
      }
    }
  }
}

GtNode GtNode::Deserialize(const uint8_t* page, size_t dim, PageId id) {
  const uint8_t* p = page;
  GtNode node;
  node.id = id;
  node.kind = static_cast<GtNodeKind>(Take<uint8_t>(&p));
  const uint32_t count = Take<uint32_t>(&p);
  if (node.leaf()) {
    node.pfvs.reserve(count);
    for (uint32_t r = 0; r < count; ++r) {
      Pfv pfv;
      pfv.id = Take<uint64_t>(&p);
      pfv.mu.resize(dim);
      std::memcpy(pfv.mu.data(), p, dim * sizeof(double));
      p += dim * sizeof(double);
      pfv.sigma.resize(dim);
      std::memcpy(pfv.sigma.data(), p, dim * sizeof(double));
      p += dim * sizeof(double);
      node.pfvs.push_back(std::move(pfv));
    }
  } else {
    node.children.reserve(count);
    for (uint32_t r = 0; r < count; ++r) {
      GtChildEntry e;
      e.child = Take<uint32_t>(&p);
      e.count = Take<uint32_t>(&p);
      e.bounds.resize(dim);
      for (size_t i = 0; i < dim; ++i) {
        e.bounds[i].mu_lo = Take<double>(&p);
        e.bounds[i].mu_hi = Take<double>(&p);
        e.bounds[i].sigma_lo = Take<double>(&p);
        e.bounds[i].sigma_hi = Take<double>(&p);
      }
      node.children.push_back(std::move(e));
    }
  }
  return node;
}

namespace {

// Sizes the SoA buffers for n entries and zeroes the padding lanes. Reuses
// the vectors' capacity: assign() only reallocates when a larger node than
// any seen before arrives.
void ShapeSoa(GtNodeSoa* out, GtNodeKind kind, PageId id, size_t dim,
              size_t n) {
  out->id = id;
  out->kind = kind;
  out->n = n;
  out->dim = dim;
  out->stride = kernels::PadEntries(n);
  const size_t groups = kind == GtNodeKind::kLeaf ? 2 : 4;
  out->planes.assign(groups * dim * out->stride, 0.0);
  if (kind == GtNodeKind::kLeaf) {
    out->ids.assign(n, 0);
    out->children.clear();
    out->counts.clear();
  } else {
    out->ids.clear();
    out->children.assign(n, kInvalidPageId);
    out->counts.assign(n, 0);
  }
}

}  // namespace

void GtNodeSoa::Decode(const uint8_t* page, size_t dim, PageId id,
                       GtNodeSoa* out) {
  const uint8_t* p = page;
  const auto kind = static_cast<GtNodeKind>(Take<uint8_t>(&p));
  const uint32_t count = Take<uint32_t>(&p);
  ShapeSoa(out, kind, id, dim, count);
  const size_t stride = out->stride;
  double* planes = out->planes.data();
  if (kind == GtNodeKind::kLeaf) {
    // Leaf record: [u64 id][d x mu][d x sigma] -> transpose into planes.
    double* mu_planes = planes;
    double* sigma_planes = planes + dim * stride;
    for (uint32_t r = 0; r < count; ++r) {
      out->ids[r] = Take<uint64_t>(&p);
      for (size_t i = 0; i < dim; ++i) {
        mu_planes[i * stride + r] = Take<double>(&p);
      }
      for (size_t i = 0; i < dim; ++i) {
        sigma_planes[i * stride + r] = Take<double>(&p);
      }
    }
  } else {
    // Inner entry: [u32 child][u32 count][d x (mu_lo, mu_hi, sg_lo, sg_hi)].
    double* mu_lo_planes = planes;
    double* mu_hi_planes = planes + dim * stride;
    double* sg_lo_planes = planes + 2 * dim * stride;
    double* sg_hi_planes = planes + 3 * dim * stride;
    for (uint32_t r = 0; r < count; ++r) {
      out->children[r] = Take<uint32_t>(&p);
      out->counts[r] = Take<uint32_t>(&p);
      for (size_t i = 0; i < dim; ++i) {
        mu_lo_planes[i * stride + r] = Take<double>(&p);
        mu_hi_planes[i * stride + r] = Take<double>(&p);
        sg_lo_planes[i * stride + r] = Take<double>(&p);
        sg_hi_planes[i * stride + r] = Take<double>(&p);
      }
    }
  }
}

void GtNodeSoa::FromNode(const GtNode& node, size_t dim, GtNodeSoa* out) {
  ShapeSoa(out, node.kind, node.id, dim, node.EntryCount());
  const size_t stride = out->stride;
  double* planes = out->planes.data();
  if (node.leaf()) {
    double* mu_planes = planes;
    double* sigma_planes = planes + dim * stride;
    for (size_t r = 0; r < node.pfvs.size(); ++r) {
      const Pfv& pfv = node.pfvs[r];
      GAUSS_DCHECK(pfv.dim() == dim);
      out->ids[r] = pfv.id;
      for (size_t i = 0; i < dim; ++i) {
        mu_planes[i * stride + r] = pfv.mu[i];
        sigma_planes[i * stride + r] = pfv.sigma[i];
      }
    }
  } else {
    double* mu_lo_planes = planes;
    double* mu_hi_planes = planes + dim * stride;
    double* sg_lo_planes = planes + 2 * dim * stride;
    double* sg_hi_planes = planes + 3 * dim * stride;
    for (size_t r = 0; r < node.children.size(); ++r) {
      const GtChildEntry& e = node.children[r];
      GAUSS_DCHECK(e.bounds.size() == dim);
      out->children[r] = e.child;
      out->counts[r] = e.count;
      for (size_t i = 0; i < dim; ++i) {
        mu_lo_planes[i * stride + r] = e.bounds[i].mu_lo;
        mu_hi_planes[i * stride + r] = e.bounds[i].mu_hi;
        sg_lo_planes[i * stride + r] = e.bounds[i].sigma_lo;
        sg_hi_planes[i * stride + r] = e.bounds[i].sigma_hi;
      }
    }
  }
}

GtCapacities GtCapacities::ForPageSize(uint32_t page_size, size_t dim) {
  GtCapacities caps;
  const size_t payload = page_size - kHeaderBytes;
  caps.leaf = payload / LeafRecordBytes(dim);
  caps.inner = payload / InnerEntryBytes(dim);
  GAUSS_CHECK_MSG(caps.leaf >= 2 && caps.inner >= 2,
                  "page too small for this dimensionality");
  caps.leaf_min = std::max<size_t>(1, caps.leaf / 2);
  caps.inner_min = std::max<size_t>(1, caps.inner / 2);
  return caps;
}

}  // namespace gauss
