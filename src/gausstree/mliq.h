#ifndef GAUSS_GAUSSTREE_MLIQ_H_
#define GAUSS_GAUSSTREE_MLIQ_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "gausstree/query_common.h"
#include "pfv/pfv.h"

namespace gauss {

// One answer of an identification query.
struct IdentificationResult {
  uint64_t id = 0;
  // Relative log density log p(q|v) (unnormalized identification weight).
  double log_density = 0.0;
  // Bayes-normalized identification probability P(v|q) (midpoint of the
  // certified interval) and half-width of that interval.
  double probability = 0.0;
  double probability_error = 0.0;
};

struct MliqOptions {
  // Relative accuracy of the reported probabilities: the traversal keeps
  // tightening the denominator bounds until the uncertainty of every
  // reported probability is below this fraction (paper Section 5.2.2:
  // "according to user's specification of exactness").
  double probability_accuracy = 1e-6;
  // If false, only the k best objects are determined (paper Section 5.2.1)
  // and `probability` fields are filled from the denominator bounds reached
  // at that point, without further refinement.
  bool refine_probabilities = true;
  // Asynchronous read-ahead: after each node expansion, hint the tree's
  // PageCache (PageCache::Prefetch) about up to this many of the best
  // still-enqueued subtree pages — the pages the best-first order will
  // expand next — so their device reads overlap with compute. 0 disables
  // (and is the meaning of "unset": the serving layer substitutes its
  // ServeOptions::prefetch_depth then). Purely a latency knob: answers are
  // byte-identical at every depth. Ignored on a non-finalized tree (nodes
  // live in memory; there are no pages to read ahead).
  size_t prefetch_depth = 0;
  // Absolute target for the scaled denominator gap (denominator_hi -
  // denominator_lo), applied after the refine_probabilities phase; < 0
  // disables. A shard coordinator sets this per shard so each shard refines
  // only as far as its share of the *combined* denominator interval
  // warrants, instead of every shard paying for a full local certification.
  double denominator_target_gap = -1.0;
  // Absolute log-density floor certified to be met or beaten by at least k
  // objects somewhere (a shard coordinator derives it from its per-shard
  // sketches: hull lower bounds are per-object guarantees, so accumulating
  // entry counts down the sorted bounds until they reach k certifies the
  // k-th best global density from above the floor). Phase 1 may then stop
  // as soon as no unexpanded subtree can strictly beat the floor — a shard
  // holding none of the global winners stops after a root glance instead of
  // certifying a full local top-k. -inf (default) disables.
  double density_floor_log = -std::numeric_limits<double>::infinity();
};

using MliqStats = TraversalStats;

struct MliqResult {
  std::vector<IdentificationResult> items;  // descending probability
  MliqStats stats;
};

// k-most-likely identification query over the Gauss-tree (paper Definition 3
// + Sections 5.2.1/5.2.2): best-first traversal ordered by the conservative
// joint upper hull, stopping when the k-th candidate's exact density exceeds
// the best unexpanded subtree bound, then refining the Bayes denominator
// until the probabilities are certified to `probability_accuracy`.
//
// Re-entrancy: the traversal keeps all state (priority queue, denominator
// bounds, node scratch) on the caller's stack and only reads the tree, so
// concurrent calls over one finalized `tree` are safe provided its PageCache
// is thread-safe (ShardedBufferPool); results are identical regardless of
// concurrency. This is what GaussServe (service/query_service.h) builds on.
MliqResult QueryMliq(const GaussTree& tree, const Pfv& q, size_t k,
                     const MliqOptions& options = {});

// Resumable form of QueryMliq, the unit a shard coordinator drives: Run()
// executes the standard query, after which the top-k set is final — further
// expansion can only *tighten* the denominator bounds, never change which
// objects are reported (every unexpanded subtree's per-object upper bound is
// at or below the k-th candidate's exact density). RefineDenominator() is
// that resumable hook: a sharded TIQ/MLIQ answer is only correct once the
// combined per-shard denominator intervals certify it, and when the combined
// interval is still too wide the coordinator re-enters refinement on
// individual shards instead of re-running their traversals from scratch.
//
//   MliqTraversal t(tree, q, k);
//   t.Run();                       // == QueryMliq up to here
//   while (coordinator says bounds too loose && !t.exhausted())
//     t.RefineDenominator(t.denominator_gap() / 2);
//   MliqResult local = t.Result();
//
// Not thread-safe: one traversal is driven by one thread at a time (the
// coordinator serializes rounds per query). Distinct traversals over one
// tree remain concurrent-safe as for QueryMliq.
class MliqTraversal {
 public:
  MliqTraversal(const GaussTree& tree, const Pfv& q, size_t k,
                MliqOptions options = {});

  MliqTraversal(const MliqTraversal&) = delete;
  MliqTraversal& operator=(const MliqTraversal&) = delete;

  // Executes phase 1 (find the k most likely objects) and, when
  // options.refine_probabilities is set, phase 2 (tighten the denominator to
  // options.probability_accuracy against the *local* bounds). Call once.
  void Run();

  // Resumes best-first expansion until the scaled denominator gap
  // (denominator_hi - denominator_lo) is at most `max_gap` or the frontier
  // is exhausted. The reported object set is unaffected (see class comment).
  void RefineDenominator(double max_gap);

  // True once no unexpanded subtree remains: the denominator bounds have
  // collapsed to the exact scaled density sum and cannot tighten further.
  bool exhausted() const { return tracker_.Empty(); }

  // Reference log scale of this traversal (the root's joint log upper hull);
  // all scaled values are exp(log - log_ref()). Meaningless for an empty
  // tree — callers combining shards must skip shards with tree().size() == 0.
  double log_ref() const { return log_ref_; }

  double denominator_lo() const { return tracker_.DenominatorLo(); }
  double denominator_hi() const { return tracker_.DenominatorHi(); }
  double denominator_gap() const {
    return denominator_hi() - denominator_lo();
  }

  // The current top-k (descending scaled density). Final after Run().
  const std::vector<ScoredObject>& top_items() const { return items_; }

  // Work counters plus the current denominator bounds.
  TraversalStats stats() const;

  // Result snapshot under the current bounds; equals QueryMliq's return
  // value when taken right after Run().
  MliqResult Result() const;

  const GaussTree& tree() const { return tree_; }

 private:
  void Expand(const internal::ActiveNode& active);
  void OfferCandidate(const ScoredObject& candidate);
  // Scaled density of the current k-th best (0 while fewer than k seen).
  double KthDensity() const;

  const GaussTree& tree_;
  const Pfv q_;  // copied: the traversal may outlive the caller's probe
  const size_t k_;
  const MliqOptions options_;
  const SigmaPolicy policy_;
  double log_ref_ = 0.0;
  // options_.density_floor_log rebased into this traversal's scale (0 when
  // the floor is unset or underflows: floors only ever prune when > 0).
  double density_floor_ = 0.0;

  internal::DenominatorTracker tracker_;
  internal::QueryCounters counters_;
  std::vector<ScoredObject> items_;  // current top-k, descending density
  // SoA decode + batch-score scratch, reused across Expand calls.
  internal::BatchScratch scratch_;
  // Effective read-ahead depth (0 unless the tree is finalized) and the
  // scratch list CollectTopPages fills each expansion.
  size_t prefetch_depth_ = 0;
  std::vector<PageId> prefetch_pages_;
  bool ran_ = false;
};

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_MLIQ_H_
