#ifndef GAUSS_GAUSSTREE_MLIQ_H_
#define GAUSS_GAUSSTREE_MLIQ_H_

#include <cstdint>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "gausstree/query_common.h"
#include "pfv/pfv.h"

namespace gauss {

// One answer of an identification query.
struct IdentificationResult {
  uint64_t id = 0;
  // Relative log density log p(q|v) (unnormalized identification weight).
  double log_density = 0.0;
  // Bayes-normalized identification probability P(v|q) (midpoint of the
  // certified interval) and half-width of that interval.
  double probability = 0.0;
  double probability_error = 0.0;
};

struct MliqOptions {
  // Relative accuracy of the reported probabilities: the traversal keeps
  // tightening the denominator bounds until the uncertainty of every
  // reported probability is below this fraction (paper Section 5.2.2:
  // "according to user's specification of exactness").
  double probability_accuracy = 1e-6;
  // If false, only the k best objects are determined (paper Section 5.2.1)
  // and `probability` fields are filled from the denominator bounds reached
  // at that point, without further refinement.
  bool refine_probabilities = true;
};

using MliqStats = TraversalStats;

struct MliqResult {
  std::vector<IdentificationResult> items;  // descending probability
  MliqStats stats;
};

// k-most-likely identification query over the Gauss-tree (paper Definition 3
// + Sections 5.2.1/5.2.2): best-first traversal ordered by the conservative
// joint upper hull, stopping when the k-th candidate's exact density exceeds
// the best unexpanded subtree bound, then refining the Bayes denominator
// until the probabilities are certified to `probability_accuracy`.
//
// Re-entrancy: the traversal keeps all state (priority queue, denominator
// bounds, node scratch) on the caller's stack and only reads the tree, so
// concurrent calls over one finalized `tree` are safe provided its PageCache
// is thread-safe (ShardedBufferPool); results are identical regardless of
// concurrency. This is what GaussServe (service/query_service.h) builds on.
MliqResult QueryMliq(const GaussTree& tree, const Pfv& q, size_t k,
                     const MliqOptions& options = {});

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_MLIQ_H_
