#include "gausstree/delta_tree.h"

#include "common/macros.h"

namespace gauss {

DeltaTree::DeltaTree(size_t dim, size_t capacity)
    : dim_(dim),
      capacity_(capacity),
      slots_(capacity),
      planes_(2 * dim * capacity, 0.0) {
  GAUSS_CHECK(capacity_ > 0);
}

bool DeltaTree::Append(const Pfv& pfv) {
  GAUSS_CHECK(pfv.dim() == dim_);
  std::lock_guard<std::mutex> lock(writer_mu_);
  const size_t n = size_.load(std::memory_order_relaxed);
  if (n >= capacity_) return false;
  slots_[n] = pfv;
  // The SoA mirror must be complete before the release-store publishes slot
  // n to concurrent scanners (see mu_planes() contract).
  for (size_t d = 0; d < dim_; ++d) {
    planes_[d * capacity_ + n] = pfv.mu[d];
    planes_[(dim_ + d) * capacity_ + n] = pfv.sigma[d];
  }
  size_.store(n + 1, std::memory_order_release);
  return true;
}

std::vector<Pfv> DeltaTree::Snapshot(size_t from, size_t to) const {
  GAUSS_CHECK(from <= to && to <= size());
  return std::vector<Pfv>(slots_.begin() + static_cast<ptrdiff_t>(from),
                          slots_.begin() + static_cast<ptrdiff_t>(to));
}

}  // namespace gauss
