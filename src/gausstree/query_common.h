#ifndef GAUSS_GAUSSTREE_QUERY_COMMON_H_
#define GAUSS_GAUSSTREE_QUERY_COMMON_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log_sum_exp.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/node.h"
#include "math/hull.h"
#include "math/kernels.h"
#include "pfv/pfv.h"

namespace gauss {

// Traversal cost and denominator-bound report of one identification query,
// shared by MLIQ and TIQ (mliq.h/tiq.h typedef their historical names to
// this struct). For a sharded query (service/shard_coordinator.h) the work
// counters are sums over all shards and the denominator bounds are the
// combined bounds in the coordinator's global scale.
struct TraversalStats {
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;
  double denominator_lo = 0.0;  // scaled
  double denominator_hi = 0.0;  // scaled
};

// One scored database object produced by an identification traversal.
// `scaled_density` is exp(log_density - log_ref) for the traversal's own
// reference scale; `log_density` is the absolute log p(q|v), comparable
// across traversals over *different* trees — which is what lets a shard
// coordinator merge per-shard answers and re-normalize under a common scale.
struct ScoredObject {
  uint64_t id = 0;
  double scaled_density = 0.0;
  double log_density = 0.0;
};

}  // namespace gauss

namespace gauss::internal {

// Cost/coverage counters shared by both query types.
struct QueryCounters {
  uint64_t nodes_visited = 0;        // nodes popped and expanded
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;    // exact density computations
};

// One unexpanded subtree in the active-page priority queue. All densities are
// *scaled*: exp(log_density - log_ref), where log_ref is the root's joint
// upper hull at the query — a global maximum over everything in the tree —
// so scaled values lie in [0, 1] and linear-space sums of n terms are safe.
struct ActiveNode {
  PageId page = kInvalidPageId;
  uint32_t count = 0;        // objects below this subtree
  double upper = 0.0;        // scaled per-object upper bound (N_hat)
  double lower = 0.0;        // scaled per-object lower bound (N_check)

  // Max-heap on the upper bound (paper: queue ordered by approximation
  // function value).
  bool operator<(const ActiveNode& other) const { return upper < other.upper; }
};

// Shared traversal state: the active-node priority queue plus incremental
// bounds on the part of the Bayes denominator contributed by *unexpanded*
// subtrees (paper Section 5.2.2). exact_sum accumulates the scaled densities
// of every object seen in visited leaves.
//
// The queue is an explicit binary heap (push_heap/pop_heap — the exact
// algorithm std::priority_queue is specified in terms of, so pop order is
// bit-identical to the old implementation) because prefetching needs what
// priority_queue hides: read-only access to the best few unexpanded
// entries, served by CollectTopPages() without disturbing the heap.
class DenominatorTracker {
 public:
  void Push(const ActiveNode& node) {
    heap_.push_back(node);
    std::push_heap(heap_.begin(), heap_.end());
    rest_min_.Add(static_cast<double>(node.count) * node.lower);
    rest_max_.Add(static_cast<double>(node.count) * node.upper);
  }

  ActiveNode Pop() {
    std::pop_heap(heap_.begin(), heap_.end());
    ActiveNode top = heap_.back();
    heap_.pop_back();
    rest_min_.Subtract(static_cast<double>(top.count) * top.lower);
    rest_max_.Subtract(static_cast<double>(top.count) * top.upper);
    return top;
  }

  bool Empty() const { return heap_.empty(); }
  const ActiveNode& Top() const { return heap_.front(); }

  // Appends the page ids of the k best-ranked queued nodes (exact top-k by
  // upper bound) to `out` — the pages the traversal will expand next, i.e.
  // the ones worth hinting to PageCache::Prefetch. A heap-prefix walk: the
  // best unvisited element is always a child of a visited one, so a k-step
  // walk over candidate indices yields the exact top-k in O(k log k)
  // without touching the heap itself.
  void CollectTopPages(size_t k, std::vector<PageId>* out) const {
    if (k == 0 || heap_.empty()) return;
    // Max-heap of heap indices by the node's upper bound; ties broken by
    // index so the hint order is deterministic.
    const auto before = [this](size_t a, size_t b) {
      if (heap_[a].upper != heap_[b].upper) return heap_[a] < heap_[b];
      return a > b;
    };
    std::vector<size_t> candidates;
    candidates.push_back(0);
    for (size_t taken = 0; taken < k && !candidates.empty(); ++taken) {
      std::pop_heap(candidates.begin(), candidates.end(), before);
      const size_t i = candidates.back();
      candidates.pop_back();
      out->push_back(heap_[i].page);
      for (const size_t child : {2 * i + 1, 2 * i + 2}) {
        if (child < heap_.size()) {
          candidates.push_back(child);
          std::push_heap(candidates.begin(), candidates.end(), before);
        }
      }
    }
  }

  void AddExact(double scaled_density) { exact_.Add(scaled_density); }

  double exact_sum() const { return exact_.Value(); }
  // Compensated sums can drift a hair below zero after many +/- updates.
  double rest_min() const { return std::max(0.0, rest_min_.Value()); }
  double rest_max() const { return std::max(0.0, rest_max_.Value()); }

  // Bounds on the full scaled Bayes denominator.
  double DenominatorLo() const { return exact_sum() + rest_min(); }
  double DenominatorHi() const { return exact_sum() + rest_max(); }

 private:
  std::vector<ActiveNode> heap_;  // std::push_heap/pop_heap order
  KahanSum exact_;
  KahanSum rest_min_;
  KahanSum rest_max_;
};

// Resolves the effective read-ahead depth of one traversal: a query-level
// prefetch_depth of 0 means "unset — inherit the serving stack's default"
// (MliqOptions/TiqOptions::prefetch_depth docs). Shared by the QueryService
// worker path and the ShardCoordinator scatter path so the sentinel
// semantics cannot drift between them.
inline size_t EffectivePrefetchDepth(size_t query_depth,
                                     size_t service_default) {
  return query_depth != 0 ? query_depth : service_default;
}

// Issues PageCache::Prefetch hints for the `depth` best still-enqueued
// subtree pages — the pages a best-first traversal will expand next.
// `scratch` avoids reallocation across expansions. Shared by the MLIQ and
// TIQ traversals (called after each node expansion).
inline void PrefetchFrontier(const DenominatorTracker& tracker,
                             PageCache* cache, size_t depth,
                             std::vector<PageId>* scratch) {
  if (depth == 0) return;
  scratch->clear();
  tracker.CollectTopPages(depth, scratch);
  for (const PageId page : *scratch) cache->Prefetch(page);
}

// Reference log scale for a query: the root's joint log upper hull, the
// largest log density any stored object can attain against q.
inline double ComputeLogRef(const GaussTree& tree, const Pfv& q) {
  GtNode root;
  tree.store().Load(tree.root(), &root);
  if (root.EntryCount() == 0) return 0.0;
  const std::vector<DimBounds> bounds = root.ComputeBounds(tree.dim());
  return JointLogUpperHull(bounds.data(), q.mu.data(), q.sigma.data(),
                           tree.dim(), tree.options().sigma_policy);
}

// SoA node scratch plus the score buffers one batch expansion fills — each
// traversal owns one so node decode and scoring never reallocate across
// expansions.
struct BatchScratch {
  GtNodeSoa node;
  std::vector<double> log_upper;     // leaf: joint log densities
  std::vector<double> log_lower;     // inner only
  std::vector<double> scaled_upper;  // exp(log - log_ref)
  std::vector<double> scaled_lower;  // inner only
};

// Scores scratch->node against the query with the batch kernels
// (math/kernels.h): a leaf fills log_upper with the per-object joint log
// densities (Lemma 1) and scaled_upper with their rebased linear-space
// values; an inner node fills all four buffers with the per-child hull
// bounds (Lemmas 2/3). The scaled lower bound is clamped to the upper per
// entry — the same rounding guard the scalar path always applied. Every
// arithmetic step dispatches through the kernel backends, whose contract is
// bit-identity with the scalar reference, so traversal decisions (and thus
// answers and page counts) do not depend on the dispatched backend.
inline void ScoreNodeBatch(const Pfv& q, SigmaPolicy policy, double log_ref,
                           BatchScratch* scratch) {
  const GtNodeSoa& soa = scratch->node;
  const size_t n = soa.n;
  scratch->log_upper.resize(n);
  scratch->scaled_upper.resize(n);
  if (soa.leaf()) {
    kernels::JointBatchArgs args;
    args.mu = soa.mu();
    args.sigma = soa.sigma();
    args.stride = soa.stride;
    args.n = n;
    args.dim = soa.dim;
    args.mu_q = q.mu.data();
    args.sigma_q = q.sigma.data();
    args.policy = policy;
    kernels::JointLogDensityBatch(args, scratch->log_upper.data());
    kernels::ExpShiftBatch(scratch->log_upper.data(), log_ref, n,
                           scratch->scaled_upper.data());
    return;
  }
  scratch->log_lower.resize(n);
  scratch->scaled_lower.resize(n);
  kernels::HullBatchArgs args;
  args.mu_lo = soa.mu_lo();
  args.mu_hi = soa.mu_hi();
  args.sigma_lo = soa.sigma_lo();
  args.sigma_hi = soa.sigma_hi();
  args.stride = soa.stride;
  args.n = n;
  args.dim = soa.dim;
  args.mu_q = q.mu.data();
  args.sigma_q = q.sigma.data();
  args.policy = policy;
  kernels::HullIntegralBoundsBatch(args, scratch->log_upper.data(),
                                   scratch->log_lower.data());
  kernels::ExpShiftBatch(scratch->log_upper.data(), log_ref, n,
                         scratch->scaled_upper.data());
  kernels::ExpShiftBatch(scratch->log_lower.data(), log_ref, n,
                         scratch->scaled_lower.data());
  for (size_t j = 0; j < n; ++j) {
    if (scratch->scaled_lower[j] > scratch->scaled_upper[j]) {
      scratch->scaled_lower[j] = scratch->scaled_upper[j];
    }
  }
}

}  // namespace gauss::internal

#endif  // GAUSS_GAUSSTREE_QUERY_COMMON_H_
