#ifndef GAUSS_GAUSSTREE_QUERY_COMMON_H_
#define GAUSS_GAUSSTREE_QUERY_COMMON_H_

#include <cmath>
#include <queue>
#include <vector>

#include "common/log_sum_exp.h"
#include "gausstree/gauss_tree.h"
#include "math/hull.h"
#include "pfv/pfv.h"

namespace gauss {

// Traversal cost and denominator-bound report of one identification query,
// shared by MLIQ and TIQ (mliq.h/tiq.h typedef their historical names to
// this struct). For a sharded query (service/shard_coordinator.h) the work
// counters are sums over all shards and the denominator bounds are the
// combined bounds in the coordinator's global scale.
struct TraversalStats {
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;
  double denominator_lo = 0.0;  // scaled
  double denominator_hi = 0.0;  // scaled
};

// One scored database object produced by an identification traversal.
// `scaled_density` is exp(log_density - log_ref) for the traversal's own
// reference scale; `log_density` is the absolute log p(q|v), comparable
// across traversals over *different* trees — which is what lets a shard
// coordinator merge per-shard answers and re-normalize under a common scale.
struct ScoredObject {
  uint64_t id = 0;
  double scaled_density = 0.0;
  double log_density = 0.0;
};

}  // namespace gauss

namespace gauss::internal {

// Cost/coverage counters shared by both query types.
struct QueryCounters {
  uint64_t nodes_visited = 0;        // nodes popped and expanded
  uint64_t leaf_nodes_visited = 0;
  uint64_t objects_evaluated = 0;    // exact density computations
};

// One unexpanded subtree in the active-page priority queue. All densities are
// *scaled*: exp(log_density - log_ref), where log_ref is the root's joint
// upper hull at the query — a global maximum over everything in the tree —
// so scaled values lie in [0, 1] and linear-space sums of n terms are safe.
struct ActiveNode {
  PageId page = kInvalidPageId;
  uint32_t count = 0;        // objects below this subtree
  double upper = 0.0;        // scaled per-object upper bound (N_hat)
  double lower = 0.0;        // scaled per-object lower bound (N_check)

  // Max-heap on the upper bound (paper: queue ordered by approximation
  // function value).
  bool operator<(const ActiveNode& other) const { return upper < other.upper; }
};

// Shared traversal state: the active-node priority queue plus incremental
// bounds on the part of the Bayes denominator contributed by *unexpanded*
// subtrees (paper Section 5.2.2). exact_sum accumulates the scaled densities
// of every object seen in visited leaves.
class DenominatorTracker {
 public:
  void Push(const ActiveNode& node) {
    queue_.push(node);
    rest_min_.Add(static_cast<double>(node.count) * node.lower);
    rest_max_.Add(static_cast<double>(node.count) * node.upper);
  }

  ActiveNode Pop() {
    ActiveNode top = queue_.top();
    queue_.pop();
    rest_min_.Subtract(static_cast<double>(top.count) * top.lower);
    rest_max_.Subtract(static_cast<double>(top.count) * top.upper);
    return top;
  }

  bool Empty() const { return queue_.empty(); }
  const ActiveNode& Top() const { return queue_.top(); }

  void AddExact(double scaled_density) { exact_.Add(scaled_density); }

  double exact_sum() const { return exact_.Value(); }
  // Compensated sums can drift a hair below zero after many +/- updates.
  double rest_min() const { return std::max(0.0, rest_min_.Value()); }
  double rest_max() const { return std::max(0.0, rest_max_.Value()); }

  // Bounds on the full scaled Bayes denominator.
  double DenominatorLo() const { return exact_sum() + rest_min(); }
  double DenominatorHi() const { return exact_sum() + rest_max(); }

 private:
  std::priority_queue<ActiveNode> queue_;
  KahanSum exact_;
  KahanSum rest_min_;
  KahanSum rest_max_;
};

// Reference log scale for a query: the root's joint log upper hull, the
// largest log density any stored object can attain against q.
inline double ComputeLogRef(const GaussTree& tree, const Pfv& q) {
  GtNode root;
  tree.store().Load(tree.root(), &root);
  if (root.EntryCount() == 0) return 0.0;
  const std::vector<DimBounds> bounds = root.ComputeBounds(tree.dim());
  return JointLogUpperHull(bounds.data(), q.mu.data(), q.sigma.data(),
                           tree.dim(), tree.options().sigma_policy);
}

// Scaled upper/lower hull bounds of a child entry against the query.
inline ActiveNode MakeActiveNode(const GtChildEntry& entry, const Pfv& q,
                                 SigmaPolicy policy, double log_ref) {
  ActiveNode node;
  node.page = entry.child;
  node.count = entry.count;
  const double log_upper =
      JointLogUpperHull(entry.bounds.data(), q.mu.data(), q.sigma.data(),
                        entry.bounds.size(), policy);
  const double log_lower =
      JointLogLowerHull(entry.bounds.data(), q.mu.data(), q.sigma.data(),
                        entry.bounds.size(), policy);
  node.upper = std::exp(log_upper - log_ref);
  node.lower = std::exp(log_lower - log_ref);
  // Guard against rounding: the lower bound must never exceed the upper.
  if (node.lower > node.upper) node.lower = node.upper;
  return node;
}

}  // namespace gauss::internal

#endif  // GAUSS_GAUSSTREE_QUERY_COMMON_H_
