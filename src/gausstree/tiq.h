#ifndef GAUSS_GAUSSTREE_TIQ_H_
#define GAUSS_GAUSSTREE_TIQ_H_

#include <cstdint>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/query_common.h"
#include "pfv/pfv.h"

namespace gauss {

struct TiqOptions {
  // When true (default), the traversal keeps expanding until every reported
  // object is *certified* to lie at or above the threshold — the result set
  // equals the sequential scan's exactly.
  //
  // When false, the algorithm uses the paper's lazier stopping rule
  // (Figure 5): it stops as soon as no unexpanded subtree can still contain
  // a qualifying object, and reports every surviving candidate. Candidates
  // whose certified probability interval still straddles the threshold are
  // included (no false dismissals; occasional false positives), which is
  // what buys the paper's large TIQ page-access savings.
  bool exact_membership = true;
  // If set, additionally tightens the denominator until the reported
  // probability *values* are certified to `probability_accuracy` — the
  // paper's "if the user additionally specifies to report the actual
  // probabilities of the answer elements at a specified accuracy, the
  // algorithm may have to access more pages" (Section 5.2.3).
  bool refine_probabilities = false;
  double probability_accuracy = 1e-6;
  // Asynchronous read-ahead depth; see MliqOptions::prefetch_depth (same
  // contract: 0 = off / inherit the serving knob, answers byte-identical at
  // every depth, ignored on a non-finalized tree).
  size_t prefetch_depth = 0;
  // Absolute target for the scaled denominator gap after the
  // refine_probabilities phase; < 0 disables. See
  // MliqOptions::denominator_target_gap.
  double denominator_target_gap = -1.0;
  // External lower bound on the *combined* denominator, expressed in this
  // traversal's reference scale (a shard coordinator rebases its
  // sketch-certified global bound by the shard's reference factor). The
  // candidate and frontier pruning tests divide by the larger of this and
  // the local bound: a shard's own partial denominator under-estimates the
  // combined one by its mass share, so without the floor a light shard
  // keeps (and digs for) ~1/share times too many candidates. Any value
  // <= the true combined denominator is conservative; 0 (default) disables.
  double denominator_floor = 0.0;
};

using TiqStats = TraversalStats;

struct TiqResult {
  std::vector<IdentificationResult> items;  // descending probability
  TiqStats stats;
};

// Threshold identification query (paper Definition 2 + Section 5.2.3):
// returns every object v with P(v|q) >= threshold. Best-first traversal with
// incremental denominator bounds; candidates are discarded as soon as their
// probability upper bound drops below the threshold, and traversal stops as
// soon as (a) no unexpanded subtree can contain a qualifying object and (b)
// every remaining candidate's membership is decided.
//
// Re-entrancy: like QueryMliq, all traversal state is per-call; concurrent
// calls over one finalized tree with a thread-safe PageCache are safe and
// return identical results.
TiqResult QueryTiq(const GaussTree& tree, const Pfv& q, double threshold,
                   const TiqOptions& options = {});

// Resumable form of QueryTiq, the unit a shard coordinator drives. Run()
// executes the standard query; afterwards candidates() holds every object
// whose probability upper bound under the traversal's *local* denominator
// still clears the threshold. Because a shard's local denominator bounds
// under-estimate any combined (multi-shard) denominator, that set is a
// superset of the objects that can qualify globally — a coordinator
// re-filters it under combined bounds and never misses an answer. When the
// combined interval leaves a candidate's membership undecided (its
// probability interval straddles the threshold), the coordinator calls
// RefineDenominator() on the shards instead of re-running traversals: newly
// expanded objects only tighten the denominator — they were already
// certified non-qualifying when the frontier fell below the threshold.
//
// Not thread-safe: one traversal is driven by one thread at a time.
class TiqTraversal {
 public:
  TiqTraversal(const GaussTree& tree, const Pfv& q, double threshold,
               TiqOptions options = {});

  TiqTraversal(const TiqTraversal&) = delete;
  TiqTraversal& operator=(const TiqTraversal&) = delete;

  // Executes the query loop (paper Figure 5; exact-membership decision and
  // local probability refinement per `options`). Call once.
  void Run();

  // Resumes best-first expansion until the scaled denominator gap is at most
  // `max_gap` or the frontier is exhausted. Candidates that become certified
  // non-qualifying under the tightened local bounds are swept, exactly as
  // during Run(); candidates can never be added (see class comment).
  void RefineDenominator(double max_gap);

  bool exhausted() const { return tracker_.Empty(); }

  // Reference log scale; see MliqTraversal::log_ref().
  double log_ref() const { return log_ref_; }

  double denominator_lo() const { return tracker_.DenominatorLo(); }
  double denominator_hi() const { return tracker_.DenominatorHi(); }
  double denominator_gap() const {
    return denominator_hi() - denominator_lo();
  }

  // Surviving candidates in discovery order (unsorted, pre-final-filter).
  const std::vector<ScoredObject>& candidates() const { return candidates_; }

  // Work counters plus the current denominator bounds.
  TraversalStats stats() const;

  // Result snapshot under the current bounds; equals QueryTiq's return value
  // when taken right after Run().
  TiqResult Result() const;

  const GaussTree& tree() const { return tree_; }

 private:
  void Expand(const internal::ActiveNode& active);
  // Discards candidates that can no longer qualify (paper Figure 5's "delete
  // unnecessary candidates"). Their densities stay in the exact sum.
  void Sweep();
  bool AllDecided() const;
  // Probability bounds of a scaled density under the current local
  // denominator bounds. den_lo can be 0 early on: upper bound is then 1.
  double ProbHi(double scaled) const;
  double ProbLo(double scaled) const;

  const GaussTree& tree_;
  const Pfv q_;  // copied: the traversal may outlive the caller's probe
  const double threshold_;
  const TiqOptions options_;
  const SigmaPolicy policy_;
  double log_ref_ = 0.0;

  internal::DenominatorTracker tracker_;
  internal::QueryCounters counters_;
  std::vector<ScoredObject> candidates_;
  // SoA decode + batch-score scratch, reused across Expand calls.
  internal::BatchScratch scratch_;
  // Effective read-ahead depth (0 unless the tree is finalized) and the
  // scratch list CollectTopPages fills each expansion.
  size_t prefetch_depth_ = 0;
  std::vector<PageId> prefetch_pages_;
  bool ran_ = false;
};

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_TIQ_H_
