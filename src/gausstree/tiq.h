#ifndef GAUSS_GAUSSTREE_TIQ_H_
#define GAUSS_GAUSSTREE_TIQ_H_

#include <cstdint>
#include <vector>

#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/query_common.h"
#include "pfv/pfv.h"

namespace gauss {

struct TiqOptions {
  // When true (default), the traversal keeps expanding until every reported
  // object is *certified* to lie at or above the threshold — the result set
  // equals the sequential scan's exactly.
  //
  // When false, the algorithm uses the paper's lazier stopping rule
  // (Figure 5): it stops as soon as no unexpanded subtree can still contain
  // a qualifying object, and reports every surviving candidate. Candidates
  // whose certified probability interval still straddles the threshold are
  // included (no false dismissals; occasional false positives), which is
  // what buys the paper's large TIQ page-access savings.
  bool exact_membership = true;
  // If set, additionally tightens the denominator until the reported
  // probability *values* are certified to `probability_accuracy` — the
  // paper's "if the user additionally specifies to report the actual
  // probabilities of the answer elements at a specified accuracy, the
  // algorithm may have to access more pages" (Section 5.2.3).
  bool refine_probabilities = false;
  double probability_accuracy = 1e-6;
};

using TiqStats = TraversalStats;

struct TiqResult {
  std::vector<IdentificationResult> items;  // descending probability
  TiqStats stats;
};

// Threshold identification query (paper Definition 2 + Section 5.2.3):
// returns every object v with P(v|q) >= threshold. Best-first traversal with
// incremental denominator bounds; candidates are discarded as soon as their
// probability upper bound drops below the threshold, and traversal stops as
// soon as (a) no unexpanded subtree can contain a qualifying object and (b)
// every remaining candidate's membership is decided.
//
// Re-entrancy: like QueryMliq, all traversal state is per-call; concurrent
// calls over one finalized tree with a thread-safe PageCache are safe and
// return identical results.
TiqResult QueryTiq(const GaussTree& tree, const Pfv& q, double threshold,
                   const TiqOptions& options = {});

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_TIQ_H_
