#include "gausstree/node_store.h"

#include <vector>

#include "common/macros.h"

namespace gauss {

GtNodeStore::GtNodeStore(PageCache* pool, size_t dim)
    : pool_(pool), dim_(dim) {
  GAUSS_CHECK(pool != nullptr);
  GAUSS_CHECK(dim > 0);
}

GtNode* GtNodeStore::Create(GtNodeKind kind) {
  GAUSS_CHECK_MSG(!finalized_, "Create requires build mode (Definalize first)");
  const PageId id = pool_->device()->Allocate();
  auto node = std::make_unique<GtNode>();
  node->id = id;
  node->kind = kind;
  GtNode* raw = node.get();
  nodes_.emplace(id, std::move(node));
  all_pages_.push_back(id);
  return raw;
}

GtNode* GtNodeStore::GetMutable(PageId id) {
  GAUSS_CHECK_MSG(!finalized_, "mutation requires build mode");
  auto it = nodes_.find(id);
  GAUSS_CHECK(it != nodes_.end());
  return it->second.get();
}

void GtNodeStore::Load(PageId id, GtNode* scratch) const {
  if (!finalized_) {
    auto it = nodes_.find(id);
    GAUSS_CHECK(it != nodes_.end());
    *scratch = *it->second;  // copy: callers own their view
    return;
  }
  if (pinned_ != nullptr && id == pinned_id_) {
    *scratch = *pinned_;  // pinned root: no pool fetch
    return;
  }
  const PageRef page = pool_->Fetch(id);
  *scratch = GtNode::Deserialize(page.data(), dim_, id);
}

void GtNodeStore::LoadSoa(PageId id, GtNodeSoa* scratch) const {
  if (!finalized_) {
    auto it = nodes_.find(id);
    GAUSS_CHECK(it != nodes_.end());
    GtNodeSoa::FromNode(*it->second, dim_, scratch);
    return;
  }
  if (pinned_soa_ != nullptr && id == pinned_id_) {
    *scratch = *pinned_soa_;  // pinned root: no pool fetch
    return;
  }
  const PageRef page = pool_->Fetch(id);
  GtNodeSoa::Decode(page.data(), dim_, id, scratch);
}

void GtNodeStore::Finalize() {
  if (finalized_) return;
  std::vector<uint8_t> buffer(pool_->device()->page_size(), 0);
  for (const auto& [id, node] : nodes_) {
    GAUSS_CHECK_MSG(node->SerializedSize(dim_) <= buffer.size(),
                    "node exceeds page capacity");
    std::fill(buffer.begin(), buffer.end(), 0);
    node->Serialize(buffer.data(), dim_);
    pool_->WritePage(id, buffer.data());
  }
  pool_->FlushAll();
  finalized_count_ = nodes_.size();
  nodes_.clear();
  finalized_ = true;
}

void GtNodeStore::OpenFinalized(std::vector<PageId> pages) {
  GAUSS_CHECK_MSG(nodes_.empty() && all_pages_.empty(),
                  "OpenFinalized requires a fresh store");
  all_pages_ = std::move(pages);
  finalized_count_ = all_pages_.size();
  finalized_ = true;
}

void GtNodeStore::PinRoot(PageId id) {
  GAUSS_CHECK_MSG(finalized_, "PinRoot requires query mode");
  const PageRef page = pool_->Fetch(id);
  pinned_ =
      std::make_unique<GtNode>(GtNode::Deserialize(page.data(), dim_, id));
  pinned_soa_ = std::make_unique<GtNodeSoa>();
  GtNodeSoa::Decode(page.data(), dim_, id, pinned_soa_.get());
  pinned_id_ = id;
}

void GtNodeStore::Definalize() {
  if (!finalized_) return;
  pinned_.reset();
  pinned_soa_.reset();
  pinned_id_ = kInvalidPageId;
  for (PageId id : all_pages_) {
    const PageRef page = pool_->Fetch(id);
    auto node =
        std::make_unique<GtNode>(GtNode::Deserialize(page.data(), dim_, id));
    nodes_.emplace(id, std::move(node));
  }
  finalized_ = false;
  finalized_count_ = 0;
}

size_t GtNodeStore::node_count() const {
  return finalized_ ? finalized_count_ : nodes_.size();
}

}  // namespace gauss
