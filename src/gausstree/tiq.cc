#include "gausstree/tiq.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "gausstree/query_common.h"

namespace gauss {

namespace {

using internal::ActiveNode;
using internal::DenominatorTracker;

struct Candidate {
  uint64_t id = 0;
  double scaled_density = 0.0;
  double log_density = 0.0;
};

}  // namespace

TiqResult QueryTiq(const GaussTree& tree, const Pfv& q, double threshold,
                   const TiqOptions& options) {
  GAUSS_CHECK(q.dim() == tree.dim());
  GAUSS_CHECK(q.Valid());
  GAUSS_CHECK(threshold > 0.0 && threshold <= 1.0);

  TiqResult result;
  if (tree.size() == 0) return result;

  const SigmaPolicy policy = tree.options().sigma_policy;
  const double log_ref = internal::ComputeLogRef(tree, q);

  DenominatorTracker tracker;
  internal::QueryCounters counters;
  std::vector<Candidate> candidates;

  tracker.Push(ActiveNode{tree.root(), static_cast<uint32_t>(tree.size()),
                          1.0, 0.0});

  GtNode node;
  auto expand = [&](const ActiveNode& active) {
    tree.store().Load(active.page, &node);
    ++counters.nodes_visited;
    if (node.leaf()) {
      ++counters.leaf_nodes_visited;
      for (const Pfv& v : node.pfvs) {
        const double log_density = PfvJointLogDensity(v, q, policy);
        const double scaled = std::exp(log_density - log_ref);
        tracker.AddExact(scaled);
        ++counters.objects_evaluated;
        candidates.push_back({v.id, scaled, log_density});
      }
    } else {
      for (const GtChildEntry& e : node.children) {
        tracker.Push(internal::MakeActiveNode(e, q, policy, log_ref));
      }
    }
  };

  // Upper/lower bound on a candidate's probability given current denominator
  // bounds. den_lo can be 0 early on: treat the upper bound as 1.
  auto prob_hi = [&](double p) {
    const double den = tracker.DenominatorLo();
    return den > 0.0 ? std::min(1.0, p / den) : 1.0;
  };
  auto prob_lo = [&](double p) {
    const double den = tracker.DenominatorHi();
    return den > 0.0 ? p / den : 0.0;
  };

  // Discards candidates that can no longer qualify (paper Figure 5's
  // "delete unnecessary candidates" step). Their densities remain part of
  // the exact denominator sum.
  auto sweep = [&]() {
    std::erase_if(candidates,
                  [&](const Candidate& c) {
                    return prob_hi(c.scaled_density) < threshold;
                  });
  };

  // Is every remaining candidate decidably above (or below) the threshold?
  auto all_decided = [&]() {
    for (const Candidate& c : candidates) {
      const double hi = prob_hi(c.scaled_density);
      const double lo = prob_lo(c.scaled_density);
      if (lo < threshold && hi >= threshold) return false;
    }
    return true;
  };

  while (!tracker.Empty()) {
    // A subtree can still contribute a qualifying object only if its
    // per-object upper bound against the *smallest possible* denominator
    // clears the threshold.
    const bool frontier_can_qualify =
        prob_hi(tracker.Top().upper) >= threshold;
    if (!frontier_can_qualify) {
      sweep();
      // Paper Figure 5 stopping: once the frontier cannot qualify, stop.
      // Exact mode keeps expanding until every surviving candidate is
      // decided (no interval straddles the threshold).
      if (!options.exact_membership || all_decided()) break;
    }
    expand(tracker.Pop());
    sweep();
  }
  sweep();

  // Optional extra refinement so the *values* of the reported probabilities
  // (not just set membership) meet the requested accuracy.
  if (options.refine_probabilities) {
    const double eps = options.probability_accuracy;
    while (!tracker.Empty()) {
      const double lo = tracker.DenominatorLo();
      const double hi = tracker.DenominatorHi();
      if (lo > 0.0 && (hi - lo) <= eps * lo) break;
      expand(tracker.Pop());
      sweep();
    }
  }

  const double den_lo = tracker.DenominatorLo();
  const double den_hi = tracker.DenominatorHi();
  result.stats.nodes_visited = counters.nodes_visited;
  result.stats.leaf_nodes_visited = counters.leaf_nodes_visited;
  result.stats.objects_evaluated = counters.objects_evaluated;
  result.stats.denominator_lo = den_lo;
  result.stats.denominator_hi = den_hi;

  // Degenerate case: every density underflowed to zero (the query is
  // astronomically far from all data). P(v|q) is then 0/0; by the model's
  // property 3 the identification probability degenerates to 1/n, which
  // cannot reach any meaningful threshold for large n — report no answers.
  if (den_lo <= 0.0) return result;

  // Final filter on the certified lower bound; report interval midpoints.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.scaled_density > b.scaled_density;
            });
  for (const Candidate& c : candidates) {
    const double hi = prob_hi(c.scaled_density);
    const double lo = prob_lo(c.scaled_density);
    const double mid = 0.5 * (hi + lo);
    // Exact mode: every surviving candidate is certified (lo >= threshold up
    // to the final bounds); filter at the midpoint for robustness. Lazy mode
    // (paper Figure 5): report every candidate whose upper bound qualifies.
    if (options.exact_membership && mid < threshold) continue;
    IdentificationResult item;
    item.id = c.id;
    item.log_density = c.log_density;
    item.probability = mid;
    item.probability_error = 0.5 * (hi - lo);
    result.items.push_back(item);
  }
  return result;
}

}  // namespace gauss
