#include "gausstree/tiq.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "gausstree/query_common.h"

namespace gauss {

using internal::ActiveNode;

TiqTraversal::TiqTraversal(const GaussTree& tree, const Pfv& q,
                           double threshold, TiqOptions options)
    : tree_(tree),
      q_(q),
      threshold_(threshold),
      options_(options),
      policy_(tree.options().sigma_policy) {
  GAUSS_CHECK(q_.dim() == tree_.dim());
  GAUSS_CHECK(q_.Valid());
  GAUSS_CHECK(threshold_ > 0.0 && threshold_ <= 1.0);
  if (tree_.size() == 0) return;  // empty frontier: exhausted from the start

  // Read-ahead only makes sense once nodes live on pages; during the build
  // phase Load() bypasses the cache entirely.
  if (tree_.store().finalized()) prefetch_depth_ = options_.prefetch_depth;

  log_ref_ = internal::ComputeLogRef(tree_, q_);
  tracker_.Push(ActiveNode{tree_.root(), static_cast<uint32_t>(tree_.size()),
                           1.0, 0.0});
}

double TiqTraversal::ProbHi(double scaled) const {
  // The local partial denominator and the coordinator-provided combined
  // floor are both true lower bounds of the denominator the final
  // probability divides by; prune with whichever is tighter.
  const double den =
      std::max(tracker_.DenominatorLo(), options_.denominator_floor);
  return den > 0.0 ? std::min(1.0, scaled / den) : 1.0;
}

double TiqTraversal::ProbLo(double scaled) const {
  const double den = tracker_.DenominatorHi();
  return den > 0.0 ? scaled / den : 0.0;
}

void TiqTraversal::Expand(const ActiveNode& active) {
  tree_.store().LoadSoa(active.page, &scratch_.node);
  ++counters_.nodes_visited;
  // One batch kernel call scores the whole node against the query (leaf:
  // Lemma 1 joint densities; inner: Lemma 2/3 hull bounds), then the scalar
  // loop below only routes the per-entry results.
  internal::ScoreNodeBatch(q_, policy_, log_ref_, &scratch_);
  const GtNodeSoa& soa = scratch_.node;
  if (soa.leaf()) {
    ++counters_.leaf_nodes_visited;
    for (size_t j = 0; j < soa.n; ++j) {
      tracker_.AddExact(scratch_.scaled_upper[j]);
      ++counters_.objects_evaluated;
      candidates_.push_back(
          {soa.ids[j], scratch_.scaled_upper[j], scratch_.log_upper[j]});
    }
  } else {
    for (size_t j = 0; j < soa.n; ++j) {
      tracker_.Push(ActiveNode{soa.children[j], soa.counts[j],
                               scratch_.scaled_upper[j],
                               scratch_.scaled_lower[j]});
    }
  }
  // With the popped node's children enqueued, the queue's best entries are
  // exactly the pages the next pops will load — hint them to the cache so
  // their device reads overlap with the density evaluations above.
  internal::PrefetchFrontier(tracker_, tree_.pool(), prefetch_depth_,
                             &prefetch_pages_);
}

void TiqTraversal::Sweep() {
  std::erase_if(candidates_, [&](const ScoredObject& c) {
    return ProbHi(c.scaled_density) < threshold_;
  });
}

bool TiqTraversal::AllDecided() const {
  for (const ScoredObject& c : candidates_) {
    const double hi = ProbHi(c.scaled_density);
    const double lo = ProbLo(c.scaled_density);
    if (lo < threshold_ && hi >= threshold_) return false;
  }
  return true;
}

void TiqTraversal::Run() {
  GAUSS_CHECK_MSG(!ran_, "TiqTraversal::Run is one-shot");
  ran_ = true;

  while (!tracker_.Empty()) {
    // A subtree can still contribute a qualifying object only if its
    // per-object upper bound against the *smallest possible* denominator
    // clears the threshold.
    const bool frontier_can_qualify =
        ProbHi(tracker_.Top().upper) >= threshold_;
    if (!frontier_can_qualify) {
      Sweep();
      // Paper Figure 5 stopping: once the frontier cannot qualify, stop.
      // Exact mode keeps expanding until every surviving candidate is
      // decided (no interval straddles the threshold).
      if (!options_.exact_membership || AllDecided()) break;
    }
    Expand(tracker_.Pop());
    Sweep();
  }
  Sweep();

  // Optional extra refinement so the *values* of the reported probabilities
  // (not just set membership) meet the requested accuracy.
  if (options_.refine_probabilities) {
    const double eps = options_.probability_accuracy;
    while (!tracker_.Empty()) {
      const double lo = tracker_.DenominatorLo();
      const double hi = tracker_.DenominatorHi();
      if (lo > 0.0 && (hi - lo) <= eps * lo) break;
      Expand(tracker_.Pop());
      Sweep();
    }
  }

  // Absolute gap target (a shard coordinator's mass-proportional budget):
  // tighten until the scaled gap fits, independent of the relative test.
  if (options_.denominator_target_gap >= 0.0) {
    RefineDenominator(options_.denominator_target_gap);
  }
}

void TiqTraversal::RefineDenominator(double max_gap) {
  GAUSS_CHECK_MSG(ran_, "RefineDenominator before Run");
  while (!tracker_.Empty() && denominator_gap() > max_gap) {
    Expand(tracker_.Pop());
    Sweep();
  }
}

TraversalStats TiqTraversal::stats() const {
  TraversalStats stats;
  stats.nodes_visited = counters_.nodes_visited;
  stats.leaf_nodes_visited = counters_.leaf_nodes_visited;
  stats.objects_evaluated = counters_.objects_evaluated;
  stats.denominator_lo = tracker_.DenominatorLo();
  stats.denominator_hi = tracker_.DenominatorHi();
  return stats;
}

TiqResult TiqTraversal::Result() const {
  TiqResult result;
  result.stats = stats();
  const double den_lo = result.stats.denominator_lo;

  // Degenerate case: every density underflowed to zero (the query is
  // astronomically far from all data). P(v|q) is then 0/0; by the model's
  // property 3 the identification probability degenerates to 1/n, which
  // cannot reach any meaningful threshold for large n — report no answers.
  if (den_lo <= 0.0) return result;

  // Final filter on the certified lower bound; report interval midpoints.
  std::vector<ScoredObject> sorted = candidates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredObject& a, const ScoredObject& b) {
              return a.scaled_density > b.scaled_density;
            });
  for (const ScoredObject& c : sorted) {
    const double hi = ProbHi(c.scaled_density);
    const double lo = ProbLo(c.scaled_density);
    const double mid = 0.5 * (hi + lo);
    // Exact mode: every surviving candidate is certified (lo >= threshold up
    // to the final bounds); filter at the midpoint for robustness. Lazy mode
    // (paper Figure 5): report every candidate whose upper bound qualifies.
    if (options_.exact_membership && mid < threshold_) continue;
    IdentificationResult item;
    item.id = c.id;
    item.log_density = c.log_density;
    item.probability = mid;
    item.probability_error = 0.5 * (hi - lo);
    result.items.push_back(item);
  }
  return result;
}

TiqResult QueryTiq(const GaussTree& tree, const Pfv& q, double threshold,
                   const TiqOptions& options) {
  TiqTraversal traversal(tree, q, threshold, options);
  traversal.Run();
  return traversal.Result();
}

}  // namespace gauss
