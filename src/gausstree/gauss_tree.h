#ifndef GAUSS_GAUSSTREE_GAUSS_TREE_H_
#define GAUSS_GAUSSTREE_GAUSS_TREE_H_

#include <cstdint>
#include <vector>

#include "gausstree/node.h"
#include "gausstree/node_store.h"
#include "math/hull_integral.h"
#include "math/sigma_policy.h"
#include "pfv/pfv.h"
#include "storage/page_cache.h"

namespace gauss {

// Split-axis selection strategy (paper Section 5.3 + ablations, DESIGN.md A1).
enum class SplitStrategy {
  // The paper's strategy: tentative median split along every mu- and every
  // sigma-dimension; keep the split minimizing the summed hull integrals
  // integral(N_hat) of the two resulting nodes.
  kHullIntegral,
  // Classic R-tree-style objective: minimize summed parameter-space volume.
  kVolume,
  // Only mu-dimensions are considered (what a conventional feature-vector
  // index would do); cost is still the hull integral.
  kMuOnly,
};

struct GaussTreeOptions {
  SigmaPolicy sigma_policy = SigmaPolicy::kConvolution;
  IntegralMethod integral_method = IntegralMethod::kErf;
  SplitStrategy split_strategy = SplitStrategy::kHullIntegral;
};

// Aggregate structural information, used by tests/benches and Validate().
struct GaussTreeStats {
  size_t height = 0;        // 1 = root is a leaf
  size_t node_count = 0;
  size_t inner_nodes = 0;
  size_t leaf_nodes = 0;
  size_t object_count = 0;
  double avg_leaf_fill = 0.0;
  double avg_inner_fill = 0.0;
};

// The Gauss-tree (paper Section 5): a balanced R-tree-family index over the
// parameter space (mu_i, sigma_i) of probabilistic feature vectors, with
// conservative Gaussian hull approximations driving query processing.
//
// Most applications should not wire a GaussTree by hand — the GaussDb façade
// (api/gauss_db.h) owns the device/pool/tree lifecycle and serves queries
// concurrently:
//   GaussDb db = GaussDb::CreateInMemory(dim);
//   db.Build(dataset);                     // or db.Insert(pfv) per object
//   Session session = db.Serve();
//   auto resp = session.Submit(Query::Mliq(q, k)).get();
//
// This class remains the documented low-level API for callers managing their
// own storage stack (experiments, ablations, custom caches):
//   BufferPool pool(&device, capacity);
//   GaussTree tree(&pool, dim);
//   for (...) tree.Insert(pfv);
//   tree.Finalize();                       // serialize to pages
//   auto top = QueryMliq(tree, q, k);      // see mliq.h
//   auto hits = QueryTiq(tree, q, 0.2);    // see tiq.h
class GaussTree {
 public:
  GaussTree(PageCache* pool, size_t dim, GaussTreeOptions options = {});

  GaussTree(const GaussTree&) = delete;
  GaussTree& operator=(const GaussTree&) = delete;

  // Reopens a previously finalized tree from its meta page (persisted by
  // Finalize()). The tree opens in query mode; call Definalize() to insert
  // more objects. Aborts if `meta_page` does not hold a Gauss-tree header.
  static std::unique_ptr<GaussTree> Open(PageCache* pool, PageId meta_page);

  // Non-aborting peek at a would-be header page, for callers (GaussDb's
  // typed OpenFile/OpenDirectory error paths) that must report a corrupt or
  // foreign file to *their* caller instead of taking the process down.
  // `len` is the number of valid bytes at `page_bytes` (a short page yields
  // valid_magic = false). Open() remains the one place that trusts a header.
  struct HeaderInfo {
    bool valid_magic = false;  // page starts with the Gauss-tree magic
    uint32_t version = 0;
    uint32_t page_size = 0;    // page size the tree was serialized with
    uint32_t dim = 0;
    uint64_t size = 0;         // object count
  };
  static HeaderInfo InspectHeader(const void* page_bytes, size_t len);

  // Header version Finalize() writes and Open() accepts; InspectHeader
  // callers compare against this for a typed version-mismatch report.
  static uint32_t header_version();

  // Page holding the persistent header (root id, dimensionality, options);
  // pass it to Open() to reattach.
  PageId meta_page() const { return meta_page_; }

  // Inserts one pfv (build mode; call Definalize() first if finalized).
  void Insert(const Pfv& pfv);

  // Inserts every object of the dataset one by one.
  void BulkInsert(const PfvDataset& dataset);

  // Bulk-loads an *empty* tree with a top-down recursive median partitioning
  // in (mu, sigma) space, minimizing the paper's hull-integral objective at
  // every cut. Much faster to build and more selective than repeated
  // insertion (bench: ablation_bulkload).
  void BulkLoad(const PfvDataset& dataset);

  // Serializes all nodes to pages and persists the header so the tree can be
  // reattached with Open(); queries then pay honest page I/O.
  void Finalize();
  // Reloads nodes into memory to allow further Insert calls.
  void Definalize() { store_.Definalize(); }

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  PageId root() const { return root_; }
  const GaussTreeOptions& options() const { return options_; }
  const GtCapacities& capacities() const { return caps_; }
  const GtNodeStore& store() const { return store_; }
  PageCache* pool() const { return pool_; }

  // Appends every stored object to `out` (leaf BFS order, deterministic).
  // `out` must share the tree's dimensionality. Works in build or query
  // mode; in query mode it reads through the pool, so it is safe to run
  // concurrently with traversals — the live-ingest merge collects the old
  // base image this way while the epoch is still serving.
  void CollectObjects(PfvDataset* out) const;

  // Structural statistics (walks the whole tree; build or query mode).
  GaussTreeStats ComputeStats() const;

  // Checks every structural invariant (balance, fill factors, MBR
  // containment, subtree counts); aborts on violation. Test hook.
  void Validate() const;

 private:
  friend class GaussTreeCrawler;  // test/bench access to internals

  // Open() constructor: attaches to an existing finalized tree.
  GaussTree(PageCache* pool, size_t dim, GaussTreeOptions options,
            PageId meta_page, PageId root, size_t size);

  // Writes the persistent header to the meta page.
  void WriteMetaPage();

  // Descends to the leaf the pfv should go to; fills `path` with the page
  // ids from root to leaf and `slots` with child indices taken at each inner
  // node (paper Section 5.3 insertion rules).
  PageId ChooseLeaf(const Pfv& pfv, std::vector<PageId>* path,
                    std::vector<size_t>* slots);

  // Cost of a node's parameter-space footprint under the active strategy.
  double NodeCost(const std::vector<DimBounds>& bounds) const;

  // Splits the overflowing node, redistributing entries by the best median
  // split; returns the entry describing the new sibling.
  GtChildEntry SplitNode(GtNode* node);

  // Handles overflow propagation along `path` after inserting into `leaf_id`.
  void HandleOverflow(const std::vector<PageId>& path,
                      const std::vector<size_t>& slots);

  // Recomputes the parent-entry MBR/count for `child_slot` of `parent`.
  void RefreshParentEntry(GtNode* parent, size_t child_slot);

  PageCache* pool_;
  size_t dim_;
  GaussTreeOptions options_;
  GtCapacities caps_;
  GtNodeStore store_;
  PageId meta_page_ = kInvalidPageId;
  PageId root_;
  size_t size_ = 0;
};

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_GAUSS_TREE_H_
