#ifndef GAUSS_GAUSSTREE_DELTA_TREE_H_
#define GAUSS_GAUSSTREE_DELTA_TREE_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "pfv/pfv.h"

namespace gauss {

// ================================ DeltaTree =================================
//
// The mutable half of live ingest (see src/gausstree/README.md): a fixed-
// capacity, append-only buffer of pfvs enrolled since the current epoch's
// base image was built. It deliberately is NOT a tree — at delta sizes
// (thousands of objects) an exact linear scan costs microseconds, needs no
// pages, and lets the delta report *degenerate* denominator bounds
// (lo == hi) to the shard coordinator, which keeps every combined MLIQ/TIQ
// answer exact without ever being asked to refine.
//
// Concurrency contract: one writer at a time appends (Append takes the
// writer mutex); any number of readers concurrently scan the prefix
// [0, size()). The slot vector is sized to capacity at construction and
// never reallocates, and size_ is release-published only after the slot's
// pfv is fully constructed, so an acquire-load of size() licenses plain
// reads of every slot below it. A full delta rejects the append — the
// caller surfaces that as typed backpressure (InsertResult::kDeltaFull).
// ============================================================================
class DeltaTree {
 public:
  DeltaTree(size_t dim, size_t capacity);

  DeltaTree(const DeltaTree&) = delete;
  DeltaTree& operator=(const DeltaTree&) = delete;

  // Appends one pfv; returns false (delta unchanged) when full. The pfv
  // must match dim() and be Valid() — the API layer validates before
  // routing. Thread-safe against concurrent Append and readers.
  bool Append(const Pfv& pfv);

  // Number of readable objects. Acquire-load: slots [0, size()) are safe to
  // read without further synchronization.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Slot access; `i` must be below a size() observed by this thread.
  const Pfv& at(size_t i) const { return slots_[i]; }

  // Copies slots [from, to) — the merge thread's tail handoff. `to` must be
  // below or at an observed size().
  std::vector<Pfv> Snapshot(size_t from, size_t to) const;

  // SoA mirror of the slots for the batch kernels (math/kernels.h): dim()
  // mu planes then dim() sigma planes, each plane_stride() doubles, with
  // object i's dimension d at planes[d * plane_stride() + i]. Append fills
  // a slot's plane elements BEFORE the release-store of size_, so the same
  // acquire-load that licenses at(i) licenses plane reads below size() —
  // and the kernels never read plane elements at or past the n they are
  // given.
  const double* mu_planes() const { return planes_.data(); }
  const double* sigma_planes() const {
    return planes_.data() + dim_ * capacity_;
  }
  size_t plane_stride() const { return capacity_; }

  size_t dim() const { return dim_; }
  size_t capacity() const { return capacity_; }

 private:
  const size_t dim_;
  const size_t capacity_;
  std::vector<Pfv> slots_;  // sized to capacity_ once; never reallocates
  std::vector<double> planes_;  // 2 * dim_ * capacity_; never reallocates
  std::mutex writer_mu_;
  std::atomic<size_t> size_{0};
};

}  // namespace gauss

#endif  // GAUSS_GAUSSTREE_DELTA_TREE_H_
