#include "gausstree/gauss_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace gauss {

namespace {

// Persistent header written to the meta page on Finalize().
constexpr uint64_t kGaussTreeMagic = 0x47415553'54524545ull;  // "GAUSSTREE"
constexpr uint32_t kGaussTreeVersion = 2;  // v2: added page_size

struct MetaPageLayout {
  uint64_t magic;
  uint32_t version;
  uint32_t dim;
  uint64_t size;
  PageId root;
  uint8_t sigma_policy;
  uint8_t integral_method;
  uint8_t split_strategy;
  // Page size the tree was serialized with. Checked on Open(): a device
  // opened with a different page size would map every PageId to the wrong
  // byte offset and misread nodes as garbage, so fail loudly instead.
  uint32_t page_size;
};

// Parameter-space MBR entry describing a whole node.
GtChildEntry MakeEntry(const GtNode& node, size_t dim) {
  GtChildEntry entry;
  entry.child = node.id;
  entry.count = node.SubtreeCount();
  entry.bounds = node.ComputeBounds(dim);
  return entry;
}

// Plain parameter-space volume with an epsilon guard against degenerate
// (zero-width) extents; used by the kVolume ablation strategy only.
double VolumeCost(const std::vector<DimBounds>& bounds) {
  constexpr double kEps = 1e-6;
  double volume = 1.0;
  for (const DimBounds& b : bounds) {
    volume *= (b.mu_hi - b.mu_lo + kEps) * (b.sigma_hi - b.sigma_lo + kEps);
  }
  return volume;
}

}  // namespace

GaussTree::GaussTree(PageCache* pool, size_t dim, GaussTreeOptions options)
    : pool_(pool),
      dim_(dim),
      options_(options),
      caps_(GtCapacities::ForPageSize(pool->device()->page_size(), dim)),
      store_(pool, dim) {
  meta_page_ = pool->device()->Allocate();
  root_ = store_.Create(GtNodeKind::kLeaf)->id;
}

GaussTree::GaussTree(PageCache* pool, size_t dim, GaussTreeOptions options,
                     PageId meta_page, PageId root, size_t size)
    : pool_(pool),
      dim_(dim),
      options_(options),
      caps_(GtCapacities::ForPageSize(pool->device()->page_size(), dim)),
      store_(pool, dim),
      meta_page_(meta_page),
      root_(root),
      size_(size) {}

void GaussTree::WriteMetaPage() {
  MetaPageLayout meta;
  std::memset(&meta, 0, sizeof(meta));
  meta.magic = kGaussTreeMagic;
  meta.version = kGaussTreeVersion;
  meta.dim = static_cast<uint32_t>(dim_);
  meta.size = size_;
  meta.root = root_;
  meta.sigma_policy = static_cast<uint8_t>(options_.sigma_policy);
  meta.integral_method = static_cast<uint8_t>(options_.integral_method);
  meta.split_strategy = static_cast<uint8_t>(options_.split_strategy);
  meta.page_size = pool_->device()->page_size();
  std::vector<uint8_t> page(pool_->device()->page_size(), 0);
  std::memcpy(page.data(), &meta, sizeof(meta));
  pool_->WritePage(meta_page_, page.data());
}

void GaussTree::Finalize() {
  store_.Finalize();
  WriteMetaPage();
  pool_->FlushAll();
  store_.PinRoot(root_);
}

GaussTree::HeaderInfo GaussTree::InspectHeader(const void* page_bytes,
                                               size_t len) {
  HeaderInfo info;
  if (page_bytes == nullptr || len < sizeof(MetaPageLayout)) return info;
  MetaPageLayout meta;
  std::memcpy(&meta, page_bytes, sizeof(meta));
  info.valid_magic = meta.magic == kGaussTreeMagic;
  if (!info.valid_magic) return info;
  info.version = meta.version;
  info.page_size = meta.page_size;
  info.dim = meta.dim;
  info.size = meta.size;
  return info;
}

uint32_t GaussTree::header_version() { return kGaussTreeVersion; }

std::unique_ptr<GaussTree> GaussTree::Open(PageCache* pool,
                                           PageId meta_page) {
  GAUSS_CHECK(pool != nullptr);
  MetaPageLayout meta;
  const PageRef page = pool->Fetch(meta_page);
  std::memcpy(&meta, page.data(), sizeof(meta));
  GAUSS_CHECK_MSG(meta.magic == kGaussTreeMagic,
                  "page does not hold a Gauss-tree header");
  GAUSS_CHECK_MSG(meta.version == kGaussTreeVersion,
                  "unsupported Gauss-tree version");
  GAUSS_CHECK_MSG(meta.page_size == pool->device()->page_size(),
                  "page size mismatch: the device is opened with a different "
                  "page size than the tree was serialized with");
  GaussTreeOptions options;
  options.sigma_policy = static_cast<SigmaPolicy>(meta.sigma_policy);
  options.integral_method = static_cast<IntegralMethod>(meta.integral_method);
  options.split_strategy = static_cast<SplitStrategy>(meta.split_strategy);

  auto tree = std::unique_ptr<GaussTree>(
      new GaussTree(pool, meta.dim, options, meta_page, meta.root,
                    static_cast<size_t>(meta.size)));

  // Enumerate the root-reachable node pages so Definalize() can reload them.
  std::vector<PageId> pages;
  std::deque<PageId> queue{meta.root};
  while (!queue.empty()) {
    const PageId id = queue.front();
    queue.pop_front();
    pages.push_back(id);
    const GtNode node =
        GtNode::Deserialize(pool->Fetch(id).data(), meta.dim, id);
    if (!node.leaf()) {
      for (const GtChildEntry& e : node.children) queue.push_back(e.child);
    }
  }
  tree->store_.OpenFinalized(std::move(pages));
  tree->store_.PinRoot(meta.root);
  return tree;
}

double GaussTree::NodeCost(const std::vector<DimBounds>& bounds) const {
  if (options_.split_strategy == SplitStrategy::kVolume) {
    return VolumeCost(bounds);
  }
  return HullIntegralMeasure(bounds.data(), bounds.size(),
                             options_.integral_method);
}

PageId GaussTree::ChooseLeaf(const Pfv& pfv, std::vector<PageId>* path,
                             std::vector<size_t>* slots) {
  path->clear();
  slots->clear();
  PageId current = root_;
  while (true) {
    path->push_back(current);
    GtNode* node = store_.GetMutable(current);
    if (node->leaf()) return current;

    // Paper Section 5.3 insertion rules: prefer children whose MBR already
    // contains the new pfv; among several containing children pick the most
    // selective one (smallest footprint); if none contains it, pick the
    // child whose footprint grows least.
    size_t best_slot = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    bool found_containing = false;
    for (size_t s = 0; s < node->children.size(); ++s) {
      const GtChildEntry& e = node->children[s];
      const bool contains = e.Contains(pfv);
      if (contains && !found_containing) {
        // First containing child resets the competition.
        found_containing = true;
        best_primary = std::numeric_limits<double>::infinity();
        best_secondary = std::numeric_limits<double>::infinity();
      }
      if (found_containing && !contains) continue;

      const double cost = NodeCost(e.bounds);
      double primary;
      if (contains) {
        primary = cost;  // selectivity of the containing node
      } else {
        GtChildEntry grown = e;
        grown.Include(pfv);
        primary = NodeCost(grown.bounds) - cost;  // growth
      }
      if (primary < best_primary ||
          (primary == best_primary && cost < best_secondary)) {
        best_primary = primary;
        best_secondary = cost;
        best_slot = s;
      }
    }
    slots->push_back(best_slot);
    current = node->children[best_slot].child;
  }
}

GtChildEntry GaussTree::SplitNode(GtNode* node) {
  const size_t n = node->EntryCount();
  GAUSS_CHECK(n >= 2);
  const size_t median = n / 2;

  // Key of entry `e` along split axis (`axis` < dim_: mu axis; otherwise
  // sigma axis of dimension axis - dim_). Inner entries use MBR centers.
  auto key_of = [&](size_t e, size_t axis) -> double {
    if (node->leaf()) {
      const Pfv& pfv = node->pfvs[e];
      return axis < dim_ ? pfv.mu[axis] : pfv.sigma[axis - dim_];
    }
    const GtChildEntry& entry = node->children[e];
    if (axis < dim_) {
      return 0.5 * (entry.bounds[axis].mu_lo + entry.bounds[axis].mu_hi);
    }
    const DimBounds& b = entry.bounds[axis - dim_];
    return 0.5 * (b.sigma_lo + b.sigma_hi);
  };

  // Bounds of an index subset.
  auto subset_bounds = [&](const std::vector<size_t>& order, size_t from,
                           size_t to) {
    GtNode tmp;
    tmp.kind = node->kind;
    for (size_t i = from; i < to; ++i) {
      if (node->leaf()) {
        tmp.pfvs.push_back(node->pfvs[order[i]]);
      } else {
        tmp.children.push_back(node->children[order[i]]);
      }
    }
    return tmp.ComputeBounds(dim_);
  };

  const size_t axis_count =
      options_.split_strategy == SplitStrategy::kMuOnly ? dim_ : 2 * dim_;

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_order;
  std::vector<size_t> order(n);
  for (size_t axis = 0; axis < axis_count; ++axis) {
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return key_of(a, axis) < key_of(b, axis);
    });
    const double cost = NodeCost(subset_bounds(order, 0, median)) +
                        NodeCost(subset_bounds(order, median, n));
    if (cost < best_cost) {
      best_cost = cost;
      best_order = order;
    }
  }
  GAUSS_CHECK(!best_order.empty());

  // Materialize: left half stays in `node`, right half moves to the sibling.
  GtNode* sibling = store_.Create(node->kind);
  if (node->leaf()) {
    std::vector<Pfv> left, right;
    for (size_t i = 0; i < median; ++i) left.push_back(node->pfvs[best_order[i]]);
    for (size_t i = median; i < n; ++i)
      right.push_back(node->pfvs[best_order[i]]);
    node->pfvs = std::move(left);
    sibling->pfvs = std::move(right);
  } else {
    std::vector<GtChildEntry> left, right;
    for (size_t i = 0; i < median; ++i)
      left.push_back(node->children[best_order[i]]);
    for (size_t i = median; i < n; ++i)
      right.push_back(node->children[best_order[i]]);
    node->children = std::move(left);
    sibling->children = std::move(right);
  }
  return MakeEntry(*sibling, dim_);
}

void GaussTree::RefreshParentEntry(GtNode* parent, size_t child_slot) {
  GAUSS_CHECK(child_slot < parent->children.size());
  GtChildEntry& entry = parent->children[child_slot];
  GtNode child;
  store_.Load(entry.child, &child);
  entry = MakeEntry(child, dim_);
}

void GaussTree::HandleOverflow(const std::vector<PageId>& path,
                               const std::vector<size_t>& slots) {
  for (size_t level = path.size(); level-- > 0;) {
    GtNode* node = store_.GetMutable(path[level]);
    const size_t capacity = node->leaf() ? caps_.leaf : caps_.inner;
    if (node->EntryCount() <= capacity) return;

    GtChildEntry sibling_entry = SplitNode(node);
    if (level == 0) {
      // Root split: grow the tree by one level.
      GtNode* new_root = store_.Create(GtNodeKind::kInner);
      new_root->children.push_back(MakeEntry(*node, dim_));
      new_root->children.push_back(std::move(sibling_entry));
      root_ = new_root->id;
      return;
    }
    GtNode* parent = store_.GetMutable(path[level - 1]);
    RefreshParentEntry(parent, slots[level - 1]);
    parent->children.push_back(std::move(sibling_entry));
  }
}

void GaussTree::Insert(const Pfv& pfv) {
  GAUSS_CHECK_MSG(!store_.finalized(),
                  "Insert requires build mode (call Definalize first)");
  GAUSS_CHECK(pfv.dim() == dim_);
  GAUSS_CHECK(pfv.Valid());

  std::vector<PageId> path;
  std::vector<size_t> slots;
  const PageId leaf_id = ChooseLeaf(pfv, &path, &slots);

  GtNode* leaf = store_.GetMutable(leaf_id);
  leaf->pfvs.push_back(pfv);
  ++size_;

  // Extend ancestor MBRs/counts along the insertion path.
  for (size_t level = 0; level + 1 < path.size(); ++level) {
    GtNode* inner = store_.GetMutable(path[level]);
    GtChildEntry& entry = inner->children[slots[level]];
    entry.Include(pfv);
    entry.count += 1;
  }

  HandleOverflow(path, slots);
}

void GaussTree::BulkInsert(const PfvDataset& dataset) {
  GAUSS_CHECK(dataset.dim() == dim_);
  for (const Pfv& pfv : dataset.objects()) Insert(pfv);
}

void GaussTree::CollectObjects(PfvDataset* out) const {
  GAUSS_CHECK(out != nullptr && out->dim() == dim_);
  std::deque<PageId> queue{root_};
  GtNode node;
  while (!queue.empty()) {
    const PageId id = queue.front();
    queue.pop_front();
    store_.Load(id, &node);
    if (node.leaf()) {
      for (const Pfv& pfv : node.pfvs) out->Add(pfv);
    } else {
      for (const GtChildEntry& e : node.children) queue.push_back(e.child);
    }
  }
}

GaussTreeStats GaussTree::ComputeStats() const {
  GaussTreeStats stats;
  struct Item {
    PageId id;
    size_t depth;
  };
  std::deque<Item> queue{{root_, 1}};
  size_t leaf_entries = 0, inner_entries = 0;
  GtNode node;
  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop_front();
    store_.Load(item.id, &node);
    ++stats.node_count;
    stats.height = std::max(stats.height, item.depth);
    if (node.leaf()) {
      ++stats.leaf_nodes;
      leaf_entries += node.pfvs.size();
      stats.object_count += node.pfvs.size();
    } else {
      ++stats.inner_nodes;
      inner_entries += node.children.size();
      for (const GtChildEntry& e : node.children) {
        queue.push_back({e.child, item.depth + 1});
      }
    }
  }
  if (stats.leaf_nodes > 0) {
    stats.avg_leaf_fill = static_cast<double>(leaf_entries) /
                          (static_cast<double>(stats.leaf_nodes) *
                           static_cast<double>(caps_.leaf));
  }
  if (stats.inner_nodes > 0) {
    stats.avg_inner_fill = static_cast<double>(inner_entries) /
                           (static_cast<double>(stats.inner_nodes) *
                            static_cast<double>(caps_.inner));
  }
  return stats;
}

void GaussTree::Validate() const {
  struct Item {
    PageId id;
    size_t depth;
    bool is_root;
    // Expected subtree metadata from the parent entry (unset for root).
    const GtChildEntry* parent_entry;
  };

  // Collect parent entries by value to keep pointers stable.
  std::deque<GtNode> parents;
  std::deque<Item> queue{{root_, 1, true, nullptr}};
  size_t leaf_depth = 0;
  size_t total_objects = 0;

  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop_front();
    GtNode node;
    store_.Load(item.id, &node);

    const size_t count = node.EntryCount();
    const size_t capacity = node.leaf() ? caps_.leaf : caps_.inner;
    const size_t min_fill = node.leaf() ? caps_.leaf_min : caps_.inner_min;
    GAUSS_CHECK(count <= capacity);
    if (!item.is_root && size_ > caps_.leaf) {
      GAUSS_CHECK_MSG(count >= min_fill, "under-filled non-root node");
    }

    if (item.parent_entry != nullptr) {
      // Parent MBR must contain the child's actual bounds, and the counts
      // must agree (they feed the denominator bounds of Section 5.2.2).
      GAUSS_CHECK(item.parent_entry->count == node.SubtreeCount());
      const std::vector<DimBounds> actual = node.ComputeBounds(dim_);
      for (size_t i = 0; i < dim_; ++i) {
        const DimBounds& pb = item.parent_entry->bounds[i];
        GAUSS_CHECK(pb.mu_lo <= actual[i].mu_lo);
        GAUSS_CHECK(pb.mu_hi >= actual[i].mu_hi);
        GAUSS_CHECK(pb.sigma_lo <= actual[i].sigma_lo);
        GAUSS_CHECK(pb.sigma_hi >= actual[i].sigma_hi);
      }
    }

    if (node.leaf()) {
      if (leaf_depth == 0) leaf_depth = item.depth;
      GAUSS_CHECK_MSG(leaf_depth == item.depth, "leaves at different depths");
      total_objects += node.pfvs.size();
      for (const Pfv& pfv : node.pfvs) {
        GAUSS_CHECK(pfv.dim() == dim_);
        GAUSS_CHECK(pfv.Valid());
      }
    } else {
      GAUSS_CHECK(count >= 1);
      parents.push_back(node);
      const GtNode& stable = parents.back();
      for (const GtChildEntry& e : stable.children) {
        queue.push_back({e.child, item.depth + 1, false, &e});
      }
    }
  }
  GAUSS_CHECK(total_objects == size_);
}

}  // namespace gauss
