#include <algorithm>
#include <numeric>
#include <vector>

#include "common/macros.h"
#include "gausstree/gauss_tree.h"
#include "math/hull_integral.h"

// Bulk loading (GaussTree::BulkLoad): a top-down recursive median
// partitioning in the 2d-dimensional (mu, sigma) parameter space, choosing
// at every level the axis that minimizes the summed hull integrals of the
// two halves — the same objective the paper's insertion-time split strategy
// optimizes (Section 5.3), applied globally. Compared to one-by-one
// insertion this yields fuller nodes and more selective MBRs in a fraction
// of the build time (bench: ablation_bulkload).

namespace gauss {

namespace {

// Parameter-space bounds of a contiguous range of a permutation of pfvs.
std::vector<DimBounds> RangeBounds(const std::vector<Pfv>& items,
                                   const std::vector<size_t>& order,
                                   size_t from, size_t to, size_t dim) {
  GtNode probe;
  probe.kind = GtNodeKind::kLeaf;
  for (size_t i = from; i < to; ++i) probe.pfvs.push_back(items[order[i]]);
  return probe.ComputeBounds(dim);
}

double EntryCenterKey(const GtChildEntry& entry, size_t axis, size_t dim) {
  if (axis < dim) {
    return 0.5 * (entry.bounds[axis].mu_lo + entry.bounds[axis].mu_hi);
  }
  const DimBounds& b = entry.bounds[axis - dim];
  return 0.5 * (b.sigma_lo + b.sigma_hi);
}

std::vector<DimBounds> EntryRangeBounds(const std::vector<GtChildEntry>& items,
                                        const std::vector<size_t>& order,
                                        size_t from, size_t to, size_t dim) {
  GtNode probe;
  probe.kind = GtNodeKind::kInner;
  for (size_t i = from; i < to; ++i) probe.children.push_back(items[order[i]]);
  return probe.ComputeBounds(dim);
}

}  // namespace

void GaussTree::BulkLoad(const PfvDataset& dataset) {
  GAUSS_CHECK_MSG(size_ == 0, "BulkLoad requires an empty tree");
  GAUSS_CHECK_MSG(!store_.finalized(), "BulkLoad requires build mode");
  GAUSS_CHECK(dataset.dim() == dim_);
  if (dataset.size() == 0) return;

  const std::vector<Pfv>& items = dataset.objects();
  const size_t n = items.size();

  // Leaf level: recursively split index ranges at the median along the axis
  // whose split minimizes the summed hull-integral measure of the halves.
  std::vector<GtChildEntry> level;
  {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});

    struct Range {
      size_t from, to;
    };
    std::vector<Range> stack{{0, n}};
    while (!stack.empty()) {
      const Range range = stack.back();
      stack.pop_back();
      const size_t count = range.to - range.from;
      if (count <= caps_.leaf) {
        // Materialize a leaf. The root-leaf created by the constructor is
        // reused for the very first materialized leaf.
        GtNode* leaf = level.empty() ? store_.GetMutable(root_)
                                     : store_.Create(GtNodeKind::kLeaf);
        for (size_t i = range.from; i < range.to; ++i) {
          leaf->pfvs.push_back(items[order[i]]);
        }
        GtChildEntry entry;
        entry.child = leaf->id;
        entry.count = static_cast<uint32_t>(leaf->pfvs.size());
        entry.bounds = leaf->ComputeBounds(dim_);
        level.push_back(std::move(entry));
        continue;
      }
      const size_t median = range.from + count / 2;
      double best_cost = std::numeric_limits<double>::infinity();
      size_t best_axis = 0;
      for (size_t axis = 0; axis < 2 * dim_; ++axis) {
        auto key = [&](size_t item) {
          return axis < dim_ ? items[item].mu[axis]
                             : items[item].sigma[axis - dim_];
        };
        std::nth_element(order.begin() + range.from, order.begin() + median,
                         order.begin() + range.to,
                         [&](size_t a, size_t b) { return key(a) < key(b); });
        const auto left =
            RangeBounds(items, order, range.from, median, dim_);
        const auto right = RangeBounds(items, order, median, range.to, dim_);
        const double cost = NodeCost(left) + NodeCost(right);
        if (cost < best_cost) {
          best_cost = cost;
          best_axis = axis;
        }
      }
      // Re-partition along the winning axis (the last nth_element pass may
      // have been for a different axis).
      auto key = [&](size_t item) {
        return best_axis < dim_ ? items[item].mu[best_axis]
                                : items[item].sigma[best_axis - dim_];
      };
      std::nth_element(order.begin() + range.from, order.begin() + median,
                       order.begin() + range.to,
                       [&](size_t a, size_t b) { return key(a) < key(b); });
      stack.push_back({range.from, median});
      stack.push_back({median, range.to});
    }
  }
  size_ = n;

  // Upper levels: group the previous level's entries with the same recursive
  // median partitioning on MBR centers until everything fits in one root.
  while (level.size() > 1) {
    std::vector<GtChildEntry> next;
    std::vector<size_t> order(level.size());
    std::iota(order.begin(), order.end(), size_t{0});

    struct Range {
      size_t from, to;
    };
    std::vector<Range> stack{{0, level.size()}};
    while (!stack.empty()) {
      const Range range = stack.back();
      stack.pop_back();
      const size_t count = range.to - range.from;
      if (count <= caps_.inner) {
        GtNode* inner = store_.Create(GtNodeKind::kInner);
        for (size_t i = range.from; i < range.to; ++i) {
          inner->children.push_back(level[order[i]]);
        }
        GtChildEntry entry;
        entry.child = inner->id;
        entry.count = inner->SubtreeCount();
        entry.bounds = inner->ComputeBounds(dim_);
        next.push_back(std::move(entry));
        continue;
      }
      const size_t median = range.from + count / 2;
      double best_cost = std::numeric_limits<double>::infinity();
      size_t best_axis = 0;
      for (size_t axis = 0; axis < 2 * dim_; ++axis) {
        std::nth_element(order.begin() + range.from, order.begin() + median,
                         order.begin() + range.to, [&](size_t a, size_t b) {
                           return EntryCenterKey(level[a], axis, dim_) <
                                  EntryCenterKey(level[b], axis, dim_);
                         });
        const auto left =
            EntryRangeBounds(level, order, range.from, median, dim_);
        const auto right =
            EntryRangeBounds(level, order, median, range.to, dim_);
        const double cost = NodeCost(left) + NodeCost(right);
        if (cost < best_cost) {
          best_cost = cost;
          best_axis = axis;
        }
      }
      std::nth_element(order.begin() + range.from, order.begin() + median,
                       order.begin() + range.to, [&](size_t a, size_t b) {
                         return EntryCenterKey(level[a], best_axis, dim_) <
                                EntryCenterKey(level[b], best_axis, dim_);
                       });
      stack.push_back({range.from, median});
      stack.push_back({median, range.to});
    }
    level = std::move(next);
  }
  root_ = level.front().child;
}

}  // namespace gauss
