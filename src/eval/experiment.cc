#include "eval/experiment.h"

#include "common/macros.h"
#include "common/stopwatch.h"

namespace gauss {

namespace {

double Percent(double value, double base) {
  return base > 0.0 ? 100.0 * value / base : 0.0;
}

}  // namespace

double MethodCosts::PagesPercentOf(const MethodCosts& base) const {
  return Percent(static_cast<double>(mean.physical_pages),
                 static_cast<double>(base.mean.physical_pages));
}

double MethodCosts::LogicalPagesPercentOf(const MethodCosts& base) const {
  return Percent(static_cast<double>(mean.logical_pages),
                 static_cast<double>(base.mean.logical_pages));
}

double MethodCosts::CpuPercentOf(const MethodCosts& base) const {
  return Percent(mean.cpu_seconds, base.mean.cpu_seconds);
}

double MethodCosts::OverallPercentOf(const MethodCosts& base) const {
  return Percent(mean.overall_seconds, base.mean.overall_seconds);
}

MethodCosts RunMethod(const std::string& name, PageCache* pool,
                      const DiskModel& disk, size_t query_count,
                      CachePolicy cache_policy, AccessPattern pattern,
                      const std::function<size_t(size_t)>& run_query) {
  GAUSS_CHECK(pool != nullptr);
  GAUSS_CHECK(query_count > 0);

  MethodCosts costs;
  costs.method = name;
  costs.query_count = query_count;

  pool->Clear();  // cold start
  uint64_t physical_total = 0;
  uint64_t logical_total = 0;
  double cpu_total = 0.0;
  double io_total = 0.0;
  size_t results_total = 0;

  for (size_t q = 0; q < query_count; ++q) {
    if (cache_policy == CachePolicy::kColdPerQuery && q > 0) pool->Clear();
    const IoStats before = pool->stats();
    CpuStopwatch cpu;
    results_total += run_query(q);
    cpu_total += cpu.ElapsedSeconds();
    const IoStats delta = pool->stats() - before;
    physical_total += delta.physical_reads;
    logical_total += delta.logical_reads;
    io_total += pattern == AccessPattern::kSequential
                    ? disk.SequentialReadSeconds(delta.physical_reads)
                    : disk.RandomReadSeconds(delta.physical_reads);
  }

  const double n = static_cast<double>(query_count);
  costs.mean.physical_pages =
      static_cast<uint64_t>(static_cast<double>(physical_total) / n + 0.5);
  costs.mean.logical_pages =
      static_cast<uint64_t>(static_cast<double>(logical_total) / n + 0.5);
  costs.mean.cpu_seconds = cpu_total / n;
  costs.mean.io_seconds = io_total / n;
  costs.mean.overall_seconds = (cpu_total + io_total) / n;
  costs.mean.result_size = results_total / query_count;
  return costs;
}

}  // namespace gauss
