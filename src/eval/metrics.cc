#include "eval/metrics.h"

#include <algorithm>

#include "common/macros.h"

namespace gauss {

PrecisionRecall EvaluateAtScale(
    const std::vector<std::vector<uint64_t>>& retrieved,
    const std::vector<uint64_t>& truth, size_t x) {
  GAUSS_CHECK(retrieved.size() == truth.size());
  GAUSS_CHECK(x > 0);
  size_t hits = 0;
  size_t retrieved_total = 0;
  for (size_t q = 0; q < retrieved.size(); ++q) {
    const size_t take = std::min(x, retrieved[q].size());
    retrieved_total += take;
    for (size_t r = 0; r < take; ++r) {
      if (retrieved[q][r] == truth[q]) {
        ++hits;
        break;
      }
    }
  }
  PrecisionRecall pr;
  if (!retrieved.empty()) {
    pr.recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  }
  if (retrieved_total > 0) {
    pr.precision =
        static_cast<double>(hits) / static_cast<double>(retrieved_total);
  }
  return pr;
}

double MeanReciprocalRank(const std::vector<std::vector<uint64_t>>& retrieved,
                          const std::vector<uint64_t>& truth) {
  GAUSS_CHECK(retrieved.size() == truth.size());
  if (retrieved.empty()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < retrieved.size(); ++q) {
    for (size_t r = 0; r < retrieved[q].size(); ++r) {
      if (retrieved[q][r] == truth[q]) {
        total += 1.0 / static_cast<double>(r + 1);
        break;
      }
    }
  }
  return total / static_cast<double>(retrieved.size());
}

}  // namespace gauss
