#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"

namespace gauss {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  GAUSS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::Int(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string Table::Pct(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, value);
  return buffer;
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

void AppendBenchJson(const BenchCellMetrics& m) {
  const char* path = std::getenv("GAUSS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) return;  // metrics are best-effort, never fatal
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"%s\",\"scale\":%.6g,\"cell\":\"%s\","
                "\"qps\":%.6g,\"p99_us\":%.6g,\"pages_per_query\":%.6g,"
                "\"prefetch_hit_rate\":%.6g,\"ns_per_entry\":%.6g}\n",
                m.bench.c_str(), m.scale, m.cell.c_str(), m.qps, m.p99_us,
                m.pages_per_query, m.prefetch_hit_rate, m.ns_per_entry);
  std::fputs(line, file);
  std::fclose(file);
}

}  // namespace gauss
