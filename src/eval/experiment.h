#ifndef GAUSS_EVAL_EXPERIMENT_H_
#define GAUSS_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "data/workload.h"
#include "storage/page_cache.h"
#include "storage/disk_model.h"

namespace gauss {

// Cost observations of one query execution.
struct QueryCosts {
  uint64_t physical_pages = 0;   // the paper's "page accesses"
  uint64_t logical_pages = 0;
  double cpu_seconds = 0.0;
  double io_seconds = 0.0;       // simulated, from the disk model
  double overall_seconds = 0.0;  // cpu + io
  size_t result_size = 0;
  uint64_t objects_evaluated = 0;
};

// Average costs over a workload.
struct MethodCosts {
  std::string method;
  QueryCosts mean;
  size_t query_count = 0;

  // Percentage of this method's metric relative to a baseline (the paper
  // reports everything as % of the sequential scan). "Pages" are physical
  // device reads; "LogicalPages" are buffer-pool requests — the page-access
  // metric index papers of the era report, since a warm database cache makes
  // physical reads approach zero for every method.
  double PagesPercentOf(const MethodCosts& base) const;
  double LogicalPagesPercentOf(const MethodCosts& base) const;
  double CpuPercentOf(const MethodCosts& base) const;
  double OverallPercentOf(const MethodCosts& base) const;
};

// Cache behaviour between queries of a workload.
enum class CachePolicy {
  // Drop the cache before every query: each query observes a cold cache
  // (the headline configuration; the paper cold-started its 50 MB cache
  // before each experiment).
  kColdPerQuery,
  // Cold start only before the first query; later queries may hit.
  kColdAtStart,
};

// Sequential-vs-random access treatment when converting page counts into
// simulated I/O time.
enum class AccessPattern {
  kRandom,       // index traversal: every physical page read pays positioning
  kSequential,   // relation scan: one positioning per query, then streaming
};

// Runs `run_query(query_index)` for every workload entry, measuring CPU time
// natively and charging simulated I/O for the physical page accesses
// observed on `pool`. `run_query` returns the result size.
MethodCosts RunMethod(const std::string& name, PageCache* pool,
                      const DiskModel& disk, size_t query_count,
                      CachePolicy cache_policy, AccessPattern pattern,
                      const std::function<size_t(size_t)>& run_query);

}  // namespace gauss

#endif  // GAUSS_EVAL_EXPERIMENT_H_
