#ifndef GAUSS_EVAL_METRICS_H_
#define GAUSS_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gauss {

// Precision/recall of identification over a batch of queries, each with one
// correct (ground-truth) object and a retrieved result list.
//
// Following the paper's effectiveness experiment (Figure 6): the recall at
// result-set scale x is the fraction of queries whose correct object appears
// among the top x results; precision divides the number of correct retrievals
// by the total number of retrieved objects (x per query), which makes
// precision ~ recall / x when only one answer is correct ("due to the
// dependency between precision and recall, the precision dropped").
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
};

// `retrieved[q]` is the ranked result list of query q (best first);
// `truth[q]` the correct id. Evaluates at result-set size `x` (lists shorter
// than x contribute their full length to the precision denominator).
PrecisionRecall EvaluateAtScale(
    const std::vector<std::vector<uint64_t>>& retrieved,
    const std::vector<uint64_t>& truth, size_t x);

// Mean reciprocal rank of the correct object (0 contribution if absent).
double MeanReciprocalRank(const std::vector<std::vector<uint64_t>>& retrieved,
                          const std::vector<uint64_t>& truth);

}  // namespace gauss

#endif  // GAUSS_EVAL_METRICS_H_
