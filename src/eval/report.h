#ifndef GAUSS_EVAL_REPORT_H_
#define GAUSS_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace gauss {

// Minimal fixed-width table printer for the figure-reproduction benches:
// every bench prints the rows/series the corresponding paper figure reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string Num(double value, int precision = 1);
  static std::string Int(uint64_t value);
  static std::string Pct(double value, int precision = 1);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace gauss

#endif  // GAUSS_EVAL_REPORT_H_
