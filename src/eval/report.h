#ifndef GAUSS_EVAL_REPORT_H_
#define GAUSS_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace gauss {

// Minimal fixed-width table printer for the figure-reproduction benches:
// every bench prints the rows/series the corresponding paper figure reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string Num(double value, int precision = 1);
  static std::string Int(uint64_t value);
  static std::string Pct(double value, int precision = 1);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner.
void PrintBanner(std::ostream& os, const std::string& title);

// One serving-bench measurement cell, as consumed by the CI bench-regression
// guard (bench/check_regression.py): the benches emit these as JSON lines
// into $GAUSS_BENCH_JSON, and the guard compares them against the committed
// bench/BENCH_serving.baseline.json.
struct BenchCellMetrics {
  std::string bench;     // emitting binary, e.g. "sweep_concurrency"
  double scale = 1.0;    // GAUSS_BENCH_SCALE in effect (cells only compare
                         // against baselines recorded at the same scale)
  std::string cell;      // unique key within the bench, e.g. "workers=4,batch=512"
  double qps = 0.0;
  double p99_us = 0.0;
  double pages_per_query = 0.0;      // logical reads / query: deterministic
  double prefetch_hit_rate = 0.0;    // prefetch_hits / prefetch_issued (0 if none)
  double ns_per_entry = 0.0;         // micro_kernels: per-entry kernel cost
                                     // (timing metric, min-collapsed like
                                     // p99_us; 0 = not a kernel cell)
};

// Appends `m` as one JSON object line to the file named by the
// GAUSS_BENCH_JSON environment variable; no-op when the variable is unset.
// Append mode with a single write per line, so concurrently running benches
// (ctest -j) interleave whole lines, never bytes.
void AppendBenchJson(const BenchCellMetrics& m);

}  // namespace gauss

#endif  // GAUSS_EVAL_REPORT_H_
