#ifndef GAUSS_XTREE_RECT_H_
#define GAUSS_XTREE_RECT_H_

#include <cstddef>
#include <vector>

#include "pfv/pfv.h"

namespace gauss {

// Axis-aligned hyperrectangle in feature space (the X-tree baseline indexes
// rectangular approximations of pfv, paper Section 6: the interval around the
// mean containing a random observation with 95% probability).
class Rect {
 public:
  Rect() = default;
  explicit Rect(size_t dim);
  Rect(std::vector<double> lo, std::vector<double> hi);

  // The paper's approximation: [mu - z sigma, mu + z sigma] per dimension,
  // with z = 1.96 for the 95% quantile.
  static Rect FromPfvQuantile(const Pfv& pfv, double z);

  // Degenerate point box at the pfv's mean.
  static Rect FromPoint(const std::vector<double>& point);

  size_t dim() const { return lo_.size(); }
  double lo(size_t i) const { return lo_[i]; }
  double hi(size_t i) const { return hi_[i]; }

  bool Intersects(const Rect& other) const;
  bool Contains(const Rect& other) const;

  // Grows this rectangle to cover `other`.
  void Include(const Rect& other);

  // Volume (product of extents). Can be 0 for degenerate boxes.
  double Volume() const;
  // Sum of extents (the R*-tree margin objective).
  double Margin() const;
  // Volume of the intersection with `other` (0 if disjoint).
  double OverlapVolume(const Rect& other) const;
  // Volume increase if `other` were included.
  double Enlargement(const Rect& other) const;

  // Squared Euclidean distance from `point` to the nearest point of the
  // rectangle (MINDIST); 0 if the point is inside.
  double MinDist2(const std::vector<double>& point) const;
  // Squared distance from `point` to the rectangle's center.
  double CenterDist2(const std::vector<double>& point) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace gauss

#endif  // GAUSS_XTREE_RECT_H_
