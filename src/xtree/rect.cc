#include "xtree/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace gauss {

Rect::Rect(size_t dim)
    : lo_(dim, std::numeric_limits<double>::infinity()),
      hi_(dim, -std::numeric_limits<double>::infinity()) {}

Rect::Rect(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  GAUSS_CHECK(lo_.size() == hi_.size());
  for (size_t i = 0; i < lo_.size(); ++i) GAUSS_CHECK(lo_[i] <= hi_[i]);
}

Rect Rect::FromPfvQuantile(const Pfv& pfv, double z) {
  GAUSS_CHECK(z > 0.0);
  std::vector<double> lo(pfv.dim()), hi(pfv.dim());
  for (size_t i = 0; i < pfv.dim(); ++i) {
    lo[i] = pfv.mu[i] - z * pfv.sigma[i];
    hi[i] = pfv.mu[i] + z * pfv.sigma[i];
  }
  return Rect(std::move(lo), std::move(hi));
}

Rect Rect::FromPoint(const std::vector<double>& point) {
  return Rect(point, point);
}

bool Rect::Intersects(const Rect& other) const {
  GAUSS_DCHECK(dim() == other.dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (lo_[i] > other.hi_[i] || hi_[i] < other.lo_[i]) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  GAUSS_DCHECK(dim() == other.dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

void Rect::Include(const Rect& other) {
  GAUSS_DCHECK(dim() == other.dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

double Rect::Volume() const {
  double volume = 1.0;
  for (size_t i = 0; i < dim(); ++i) volume *= hi_[i] - lo_[i];
  return volume;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (size_t i = 0; i < dim(); ++i) margin += hi_[i] - lo_[i];
  return margin;
}

double Rect::OverlapVolume(const Rect& other) const {
  GAUSS_DCHECK(dim() == other.dim());
  double volume = 1.0;
  for (size_t i = 0; i < dim(); ++i) {
    const double lo = std::max(lo_[i], other.lo_[i]);
    const double hi = std::min(hi_[i], other.hi_[i]);
    if (hi <= lo) return 0.0;
    volume *= hi - lo;
  }
  return volume;
}

double Rect::Enlargement(const Rect& other) const {
  Rect grown = *this;
  grown.Include(other);
  return grown.Volume() - Volume();
}

double Rect::MinDist2(const std::vector<double>& point) const {
  GAUSS_DCHECK(point.size() == dim());
  double dist2 = 0.0;
  for (size_t i = 0; i < dim(); ++i) {
    double d = 0.0;
    if (point[i] < lo_[i]) {
      d = lo_[i] - point[i];
    } else if (point[i] > hi_[i]) {
      d = point[i] - hi_[i];
    }
    dist2 += d * d;
  }
  return dist2;
}

double Rect::CenterDist2(const std::vector<double>& point) const {
  GAUSS_DCHECK(point.size() == dim());
  double dist2 = 0.0;
  for (size_t i = 0; i < dim(); ++i) {
    const double d = point[i] - 0.5 * (lo_[i] + hi_[i]);
    dist2 += d * d;
  }
  return dist2;
}

}  // namespace gauss
