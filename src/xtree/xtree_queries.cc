#include "xtree/xtree_queries.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log_sum_exp.h"
#include "common/macros.h"

namespace gauss {

XTreeQueries::XTreeQueries(const XTree* tree, const PfvFile* file,
                           SigmaPolicy policy)
    : tree_(tree), file_(file), policy_(policy) {
  GAUSS_CHECK(tree != nullptr);
  GAUSS_CHECK(file != nullptr);
}

std::vector<uint32_t> XTreeQueries::RangeCandidates(
    const Rect& query_rect) const {
  std::vector<uint32_t> candidates;
  std::vector<PageId> stack{tree_->root()};
  XtNode node;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    tree_->Load(id, &node);
    if (node.leaf) {
      for (const XtLeafEntry& e : node.leaf_entries) {
        if (e.rect.Intersects(query_rect)) {
          candidates.push_back(e.record_index);
        }
      }
    } else {
      for (const XtInnerEntry& e : node.inner_entries) {
        if (e.rect.Intersects(query_rect)) stack.push_back(e.child);
      }
    }
  }
  return candidates;
}

std::vector<XTreeQueries::Refined> XTreeQueries::RefineCandidates(
    const Pfv& q, const std::vector<uint32_t>& candidates,
    double* log_total) const {
  // Sort by record index so refinement reads each data page at most once per
  // run of co-located records (the buffer pool dedups repeats anyway).
  std::vector<uint32_t> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());

  std::vector<Refined> refined;
  refined.reserve(sorted.size());
  LogSumExp total;
  for (uint32_t index : sorted) {
    const Pfv v = file_->Read(index);
    const double log_density = PfvJointLogDensity(v, q, policy_);
    total.Add(log_density);
    refined.push_back({v.id, log_density});
  }
  *log_total = total.LogTotal();
  return refined;
}

MliqResult XTreeQueries::QueryMliq(const Pfv& q, size_t k) const {
  GAUSS_CHECK(q.dim() == tree_->dim());
  GAUSS_CHECK(k > 0);
  MliqResult result;

  const Rect query_rect = Rect::FromPfvQuantile(q, tree_->options().quantile_z);
  const std::vector<uint32_t> candidates = RangeCandidates(query_rect);
  double log_total = 0.0;
  std::vector<Refined> refined = RefineCandidates(q, candidates, &log_total);
  result.stats.objects_evaluated = refined.size();

  std::sort(refined.begin(), refined.end(),
            [](const Refined& a, const Refined& b) {
              return a.log_density > b.log_density;
            });
  if (refined.size() > k) refined.resize(k);
  for (const Refined& r : refined) {
    IdentificationResult item;
    item.id = r.id;
    item.log_density = r.log_density;
    item.probability =
        std::isinf(log_total) ? 0.0 : std::exp(r.log_density - log_total);
    result.items.push_back(item);
  }
  return result;
}

TiqResult XTreeQueries::QueryTiq(const Pfv& q, double threshold) const {
  GAUSS_CHECK(q.dim() == tree_->dim());
  GAUSS_CHECK(threshold > 0.0 && threshold <= 1.0);
  TiqResult result;

  const Rect query_rect = Rect::FromPfvQuantile(q, tree_->options().quantile_z);
  const std::vector<uint32_t> candidates = RangeCandidates(query_rect);
  double log_total = 0.0;
  std::vector<Refined> refined = RefineCandidates(q, candidates, &log_total);
  result.stats.objects_evaluated = refined.size();
  if (std::isinf(log_total)) return result;

  std::sort(refined.begin(), refined.end(),
            [](const Refined& a, const Refined& b) {
              return a.log_density > b.log_density;
            });
  for (const Refined& r : refined) {
    const double probability = std::exp(r.log_density - log_total);
    if (probability < threshold) break;  // sorted descending
    IdentificationResult item;
    item.id = r.id;
    item.log_density = r.log_density;
    item.probability = probability;
    result.items.push_back(item);
  }
  return result;
}

std::vector<uint64_t> XTreeQueries::QueryKnnMeans(const Pfv& q,
                                                  size_t k) const {
  GAUSS_CHECK(q.dim() == tree_->dim());
  GAUSS_CHECK(k > 0);

  // Best-first search (Hjaltason/Samet). Inner nodes are ranked by MINDIST
  // of their MBR (a lower bound on the center distance of anything below,
  // because an MBR contains all descendant rectangles and each rectangle
  // contains its own center); leaf entries by exact center distance.
  struct QueueItem {
    double dist2;
    bool is_entry;
    PageId page;      // when !is_entry
    uint64_t id;      // when is_entry
    bool operator<(const QueueItem& other) const {
      return dist2 > other.dist2;  // min-heap
    }
  };
  std::priority_queue<QueueItem> queue;
  queue.push({0.0, false, tree_->root(), 0});

  std::vector<uint64_t> results;
  XtNode node;
  while (!queue.empty() && results.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.is_entry) {
      results.push_back(item.id);
      continue;
    }
    tree_->Load(item.page, &node);
    if (node.leaf) {
      for (const XtLeafEntry& e : node.leaf_entries) {
        queue.push({e.rect.CenterDist2(q.mu), true, kInvalidPageId, e.id});
      }
    } else {
      for (const XtInnerEntry& e : node.inner_entries) {
        queue.push({e.rect.MinDist2(q.mu), false, e.child, 0});
      }
    }
  }
  return results;
}

}  // namespace gauss
