#ifndef GAUSS_XTREE_XTREE_H_
#define GAUSS_XTREE_XTREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page_cache.h"
#include "storage/page.h"
#include "xtree/rect.h"

namespace gauss {

// Leaf entry of the X-tree: a rectangular approximation of one pfv plus the
// record index in the backing PfvFile (used by the refinement step).
struct XtLeafEntry {
  Rect rect;
  uint64_t id = 0;
  uint32_t record_index = 0;
};

// Inner entry: child MBR + page id + subtree object count.
struct XtInnerEntry {
  Rect rect;
  PageId child = kInvalidPageId;
  uint32_t count = 0;
};

struct XtNode {
  PageId id = kInvalidPageId;   // first page; supernodes span several
  bool leaf = true;
  uint32_t page_span = 1;       // >1 = supernode (directory nodes only)
  std::vector<XtLeafEntry> leaf_entries;
  std::vector<XtInnerEntry> inner_entries;

  size_t EntryCount() const {
    return leaf ? leaf_entries.size() : inner_entries.size();
  }
  Rect ComputeRect(size_t dim) const;
  uint32_t SubtreeCount() const;
};

struct XTreeOptions {
  // Quantile multiplier for the rectangular pfv approximation (1.96 = 95%).
  double quantile_z = 1.96;
  // Maximum tolerated overlap ratio of a directory split before the node is
  // turned into a supernode instead (X-tree's distinguishing feature).
  double max_overlap = 0.2;
};

// An X-tree (Berchtold/Keim/Kriegel, VLDB'96) over rectangular
// approximations of pfv — the "more sophisticated" comparison method of the
// paper's evaluation (Section 6). Implementation notes:
//  * R*-style topological split (margin-minimal axis, overlap-minimal
//    distribution).
//  * Directory nodes whose best split would exceed `max_overlap` become
//    supernodes spanning multiple pages (we do not maintain the original
//    split history; the overlap test decides directly — a documented
//    simplification that preserves the supernode behaviour).
//  * Like the Gauss-tree, nodes build in memory and serialize to pages on
//    Finalize(); queries then pay per-page I/O (a supernode of s pages
//    costs s accesses).
class XTree {
 public:
  XTree(PageCache* pool, size_t dim, XTreeOptions options = {});

  XTree(const XTree&) = delete;
  XTree& operator=(const XTree&) = delete;

  // Inserts the rectangular approximation of a pfv. `record_index` is the
  // record's position in the backing PfvFile.
  void Insert(const Pfv& pfv, uint32_t record_index);

  // Serializes all nodes; queries afterwards go through the buffer pool.
  void Finalize();

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  PageId root() const { return root_; }
  const XTreeOptions& options() const { return options_; }
  size_t supernode_count() const { return supernodes_; }

  // Loads a node (buffer-pool charged once per spanned page if finalized).
  void Load(PageId id, XtNode* out) const;

  // Structural invariant checks; aborts on violation. Test hook.
  void Validate() const;

  size_t leaf_capacity() const { return leaf_capacity_; }
  size_t inner_capacity() const { return inner_capacity_; }

 private:
  XtNode* GetMutable(PageId id);
  XtNode* Create(bool leaf);

  PageId ChooseLeaf(const Rect& rect, std::vector<PageId>* path,
                    std::vector<size_t>* slots);
  void HandleOverflow(const std::vector<PageId>& path,
                      const std::vector<size_t>& slots);

  // R*-style topological split of the entries; fills the index order and
  // the split position, returns the overlap ratio of the best distribution.
  double PlanSplit(const XtNode& node, std::vector<size_t>* order,
                   size_t* split_at) const;

  // Executes the planned split; returns the entry describing the sibling.
  XtInnerEntry DoSplit(XtNode* node, const std::vector<size_t>& order,
                       size_t split_at);

  void RefreshParentEntry(XtNode* parent, size_t slot);

  size_t NodeCapacity(const XtNode& node) const;

  PageCache* pool_;
  size_t dim_;
  XTreeOptions options_;
  size_t leaf_capacity_;   // per page
  size_t inner_capacity_;  // per page
  PageId root_;
  size_t size_ = 0;
  size_t supernodes_ = 0;
  bool finalized_ = false;
  std::unordered_map<PageId, std::unique_ptr<XtNode>> nodes_;
  // Extra pages of supernodes, keyed by first page.
  std::unordered_map<PageId, std::vector<PageId>> extra_pages_;
  std::vector<PageId> all_first_pages_;
};

}  // namespace gauss

#endif  // GAUSS_XTREE_XTREE_H_
