#include "xtree/xtree.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace gauss {

// Serialized layouts (per page; supernodes concatenate page payloads):
// Header: [u8 leaf][u32 entry_count][u32 page_span]
// Leaf entry:  [u64 id][u32 record_index][d x (f64 lo, f64 hi)]
// Inner entry: [u32 child][u32 count][d x (f64 lo, f64 hi)]
namespace {

constexpr size_t kHeaderBytes = 1 + 2 * sizeof(uint32_t);

size_t LeafEntryBytes(size_t dim) {
  return sizeof(uint64_t) + sizeof(uint32_t) + 2 * dim * sizeof(double);
}

size_t InnerEntryBytes(size_t dim) {
  return 2 * sizeof(uint32_t) + 2 * dim * sizeof(double);
}

template <typename T>
void Put(uint8_t** p, const T& value) {
  std::memcpy(*p, &value, sizeof(T));
  *p += sizeof(T);
}

template <typename T>
T Take(const uint8_t** p) {
  T value;
  std::memcpy(&value, *p, sizeof(T));
  *p += sizeof(T);
  return value;
}

void PutRect(uint8_t** p, const Rect& rect) {
  for (size_t i = 0; i < rect.dim(); ++i) {
    Put<double>(p, rect.lo(i));
    Put<double>(p, rect.hi(i));
  }
}

Rect TakeRect(const uint8_t** p, size_t dim) {
  std::vector<double> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    lo[i] = Take<double>(p);
    hi[i] = Take<double>(p);
  }
  return Rect(std::move(lo), std::move(hi));
}

}  // namespace

Rect XtNode::ComputeRect(size_t dim) const {
  Rect rect(dim);
  if (leaf) {
    for (const XtLeafEntry& e : leaf_entries) rect.Include(e.rect);
  } else {
    for (const XtInnerEntry& e : inner_entries) rect.Include(e.rect);
  }
  return rect;
}

uint32_t XtNode::SubtreeCount() const {
  if (leaf) return static_cast<uint32_t>(leaf_entries.size());
  uint32_t total = 0;
  for (const XtInnerEntry& e : inner_entries) total += e.count;
  return total;
}

XTree::XTree(PageCache* pool, size_t dim, XTreeOptions options)
    : pool_(pool), dim_(dim), options_(options) {
  GAUSS_CHECK(pool != nullptr);
  GAUSS_CHECK(dim > 0);
  const size_t payload = pool->device()->page_size() - kHeaderBytes;
  leaf_capacity_ = payload / LeafEntryBytes(dim);
  inner_capacity_ = payload / InnerEntryBytes(dim);
  GAUSS_CHECK_MSG(leaf_capacity_ >= 2 && inner_capacity_ >= 2,
                  "page too small for this dimensionality");
  root_ = Create(/*leaf=*/true)->id;
}

XtNode* XTree::Create(bool leaf) {
  GAUSS_CHECK(!finalized_);
  const PageId id = pool_->device()->Allocate();
  auto node = std::make_unique<XtNode>();
  node->id = id;
  node->leaf = leaf;
  XtNode* raw = node.get();
  nodes_.emplace(id, std::move(node));
  all_first_pages_.push_back(id);
  return raw;
}

XtNode* XTree::GetMutable(PageId id) {
  GAUSS_CHECK(!finalized_);
  auto it = nodes_.find(id);
  GAUSS_CHECK(it != nodes_.end());
  return it->second.get();
}

size_t XTree::NodeCapacity(const XtNode& node) const {
  const size_t base = node.leaf ? leaf_capacity_ : inner_capacity_;
  return base * node.page_span;
}

PageId XTree::ChooseLeaf(const Rect& rect, std::vector<PageId>* path,
                         std::vector<size_t>* slots) {
  path->clear();
  slots->clear();
  PageId current = root_;
  while (true) {
    path->push_back(current);
    XtNode* node = GetMutable(current);
    if (node->leaf) return current;
    // Least enlargement, ties by smaller volume (Guttman's ChooseLeaf; the
    // R*-tree refinement of minimizing overlap enlargement at the leaf level
    // does not change the baseline's character).
    size_t best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_vol = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < node->inner_entries.size(); ++s) {
      const Rect& r = node->inner_entries[s].rect;
      const double enl = r.Enlargement(rect);
      const double vol = r.Volume();
      if (enl < best_enl || (enl == best_enl && vol < best_vol)) {
        best_enl = enl;
        best_vol = vol;
        best = s;
      }
    }
    slots->push_back(best);
    current = node->inner_entries[best].child;
  }
}

double XTree::PlanSplit(const XtNode& node, std::vector<size_t>* order,
                        size_t* split_at) const {
  const size_t n = node.EntryCount();
  GAUSS_CHECK(n >= 4);
  const size_t min_fill = std::max<size_t>(2, n / 3);

  auto entry_rect = [&](size_t i) -> const Rect& {
    return node.leaf ? node.leaf_entries[i].rect : node.inner_entries[i].rect;
  };

  auto union_rect = [&](const std::vector<size_t>& idx, size_t from,
                        size_t to) {
    Rect rect(dim_);
    for (size_t i = from; i < to; ++i) rect.Include(entry_rect(idx[i]));
    return rect;
  };

  // R*-style: for each axis, sort by lower then by upper boundary; the axis
  // with the minimal sum of margins wins; within the winning axis the
  // distribution with minimal overlap (ties: minimal total volume) wins.
  double best_margin = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_axis_order;
  std::vector<size_t> idx(n);

  for (size_t axis = 0; axis < dim_; ++axis) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::iota(idx.begin(), idx.end(), size_t{0});
      std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        return by_upper ? entry_rect(a).hi(axis) < entry_rect(b).hi(axis)
                        : entry_rect(a).lo(axis) < entry_rect(b).lo(axis);
      });
      double margin_sum = 0.0;
      for (size_t split = min_fill; split <= n - min_fill; ++split) {
        margin_sum += union_rect(idx, 0, split).Margin() +
                      union_rect(idx, split, n).Margin();
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis_order = idx;
      }
    }
  }
  GAUSS_CHECK(!best_axis_order.empty());

  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  size_t best_split = min_fill;
  for (size_t split = min_fill; split <= n - min_fill; ++split) {
    const Rect a = union_rect(best_axis_order, 0, split);
    const Rect b = union_rect(best_axis_order, split, n);
    const double overlap = a.OverlapVolume(b);
    const double volume = a.Volume() + b.Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && volume < best_volume)) {
      best_overlap = overlap;
      best_volume = volume;
      best_split = split;
    }
  }

  *order = best_axis_order;
  *split_at = best_split;
  const Rect a = union_rect(best_axis_order, 0, best_split);
  const Rect b = union_rect(best_axis_order, best_split, n);
  const double union_volume = [&] {
    Rect u = a;
    u.Include(b);
    return u.Volume();
  }();
  return union_volume > 0.0 ? best_overlap / union_volume : 0.0;
}

XtInnerEntry XTree::DoSplit(XtNode* node, const std::vector<size_t>& order,
                            size_t split_at) {
  XtNode* sibling = Create(node->leaf);
  const size_t n = node->EntryCount();
  if (node->leaf) {
    std::vector<XtLeafEntry> left, right;
    for (size_t i = 0; i < split_at; ++i)
      left.push_back(node->leaf_entries[order[i]]);
    for (size_t i = split_at; i < n; ++i)
      right.push_back(node->leaf_entries[order[i]]);
    node->leaf_entries = std::move(left);
    sibling->leaf_entries = std::move(right);
  } else {
    std::vector<XtInnerEntry> left, right;
    for (size_t i = 0; i < split_at; ++i)
      left.push_back(node->inner_entries[order[i]]);
    for (size_t i = split_at; i < n; ++i)
      right.push_back(node->inner_entries[order[i]]);
    node->inner_entries = std::move(left);
    sibling->inner_entries = std::move(right);
  }
  XtInnerEntry entry;
  entry.child = sibling->id;
  entry.count = sibling->SubtreeCount();
  entry.rect = sibling->ComputeRect(dim_);
  return entry;
}

void XTree::RefreshParentEntry(XtNode* parent, size_t slot) {
  GAUSS_CHECK(slot < parent->inner_entries.size());
  XtInnerEntry& entry = parent->inner_entries[slot];
  const XtNode* child = GetMutable(entry.child);
  entry.rect = child->ComputeRect(dim_);
  entry.count = child->SubtreeCount();
}

void XTree::HandleOverflow(const std::vector<PageId>& path,
                           const std::vector<size_t>& slots) {
  for (size_t level = path.size(); level-- > 0;) {
    XtNode* node = GetMutable(path[level]);
    if (node->EntryCount() <= NodeCapacity(*node)) return;
    if (node->EntryCount() < 4) return;  // too small to split; rare tiny pages

    std::vector<size_t> order;
    size_t split_at = 0;
    const double overlap_ratio = PlanSplit(*node, &order, &split_at);

    if (!node->leaf && overlap_ratio > options_.max_overlap) {
      // X-tree supernode: no overlap-free split exists; extend the node by
      // one page instead of splitting.
      node->page_span += 1;
      extra_pages_[node->id].push_back(pool_->device()->Allocate());
      if (node->page_span == 2) ++supernodes_;
      return;
    }

    XtInnerEntry sibling_entry = DoSplit(node, order, split_at);
    if (level == 0) {
      XtNode* new_root = Create(/*leaf=*/false);
      XtInnerEntry old_entry;
      old_entry.child = node->id;
      old_entry.count = node->SubtreeCount();
      old_entry.rect = node->ComputeRect(dim_);
      new_root->inner_entries.push_back(std::move(old_entry));
      new_root->inner_entries.push_back(std::move(sibling_entry));
      root_ = new_root->id;
      return;
    }
    XtNode* parent = GetMutable(path[level - 1]);
    RefreshParentEntry(parent, slots[level - 1]);
    parent->inner_entries.push_back(std::move(sibling_entry));
  }
}

void XTree::Insert(const Pfv& pfv, uint32_t record_index) {
  GAUSS_CHECK(!finalized_);
  GAUSS_CHECK(pfv.dim() == dim_);
  const Rect rect = Rect::FromPfvQuantile(pfv, options_.quantile_z);

  std::vector<PageId> path;
  std::vector<size_t> slots;
  const PageId leaf_id = ChooseLeaf(rect, &path, &slots);

  XtNode* leaf = GetMutable(leaf_id);
  leaf->leaf_entries.push_back({rect, pfv.id, record_index});
  ++size_;

  for (size_t level = 0; level + 1 < path.size(); ++level) {
    XtNode* inner = GetMutable(path[level]);
    XtInnerEntry& entry = inner->inner_entries[slots[level]];
    entry.rect.Include(rect);
    entry.count += 1;
  }
  HandleOverflow(path, slots);
}

void XTree::Finalize() {
  if (finalized_) return;
  const size_t page_size = pool_->device()->page_size();
  for (const auto& [id, node] : nodes_) {
    // Serialize into a buffer spanning all pages of the node.
    std::vector<uint8_t> buffer(page_size * node->page_span, 0);
    uint8_t* p = buffer.data();
    Put<uint8_t>(&p, node->leaf ? 1 : 0);
    Put<uint32_t>(&p, static_cast<uint32_t>(node->EntryCount()));
    Put<uint32_t>(&p, node->page_span);
    if (node->leaf) {
      for (const XtLeafEntry& e : node->leaf_entries) {
        Put<uint64_t>(&p, e.id);
        Put<uint32_t>(&p, e.record_index);
        PutRect(&p, e.rect);
      }
    } else {
      for (const XtInnerEntry& e : node->inner_entries) {
        Put<uint32_t>(&p, e.child);
        Put<uint32_t>(&p, e.count);
        PutRect(&p, e.rect);
      }
    }
    GAUSS_CHECK_MSG(static_cast<size_t>(p - buffer.data()) <= buffer.size(),
                    "node exceeds its page span");
    pool_->WritePage(id, buffer.data());
    const auto extra = extra_pages_.find(id);
    if (extra != extra_pages_.end()) {
      for (size_t i = 0; i < extra->second.size(); ++i) {
        pool_->WritePage(extra->second[i], buffer.data() + (i + 1) * page_size);
      }
    }
  }
  pool_->FlushAll();
  nodes_.clear();
  finalized_ = true;
}

void XTree::Load(PageId id, XtNode* out) const {
  if (!finalized_) {
    auto it = nodes_.find(id);
    GAUSS_CHECK(it != nodes_.end());
    *out = *it->second;
    return;
  }
  const size_t page_size = pool_->device()->page_size();
  const PageRef first_ref = pool_->Fetch(id);
  const uint8_t* first = first_ref.data();
  const uint8_t* p = first;
  XtNode node;
  node.id = id;
  node.leaf = Take<uint8_t>(&p) != 0;
  const uint32_t count = Take<uint32_t>(&p);
  node.page_span = Take<uint32_t>(&p);

  // Supernodes: reassemble the contiguous serialization across pages,
  // charging one fetch per page.
  std::vector<uint8_t> assembled;
  if (node.page_span > 1) {
    const auto extra = extra_pages_.find(id);
    GAUSS_CHECK(extra != extra_pages_.end());
    assembled.assign(first, first + page_size);
    for (PageId extra_id : extra->second) {
      const PageRef page = pool_->Fetch(extra_id);
      assembled.insert(assembled.end(), page.data(), page.data() + page_size);
    }
    p = assembled.data() + kHeaderBytes;
  }

  if (node.leaf) {
    node.leaf_entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      XtLeafEntry e;
      e.id = Take<uint64_t>(&p);
      e.record_index = Take<uint32_t>(&p);
      e.rect = TakeRect(&p, dim_);
      node.leaf_entries.push_back(std::move(e));
    }
  } else {
    node.inner_entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      XtInnerEntry e;
      e.child = Take<uint32_t>(&p);
      e.count = Take<uint32_t>(&p);
      e.rect = TakeRect(&p, dim_);
      node.inner_entries.push_back(std::move(e));
    }
  }
  *out = std::move(node);
}

void XTree::Validate() const {
  struct Item {
    PageId id;
    size_t depth;
    bool is_root;
    Rect parent_rect;
    uint32_t parent_count;
  };
  std::deque<Item> queue{{root_, 1, true, Rect(), 0}};
  size_t leaf_depth = 0;
  size_t total = 0;
  XtNode node;
  while (!queue.empty()) {
    Item item = queue.front();
    queue.pop_front();
    Load(item.id, &node);
    GAUSS_CHECK(node.EntryCount() <= NodeCapacity(node));
    if (!item.is_root) {
      GAUSS_CHECK(item.parent_rect.Contains(node.ComputeRect(dim_)));
      GAUSS_CHECK(item.parent_count == node.SubtreeCount());
    }
    if (node.leaf) {
      if (leaf_depth == 0) leaf_depth = item.depth;
      GAUSS_CHECK_MSG(leaf_depth == item.depth, "leaves at different depths");
      total += node.leaf_entries.size();
    } else {
      GAUSS_CHECK(node.EntryCount() >= 1);
      for (const XtInnerEntry& e : node.inner_entries) {
        queue.push_back({e.child, item.depth + 1, false, e.rect, e.count});
      }
    }
  }
  GAUSS_CHECK(total == size_);
}

}  // namespace gauss
