#ifndef GAUSS_XTREE_XTREE_QUERIES_H_
#define GAUSS_XTREE_XTREE_QUERIES_H_

#include <cstdint>
#include <vector>

#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "xtree/xtree.h"

namespace gauss {

// Query processing on rectangular pfv approximations stored in an X-tree —
// the competitor method of the paper's efficiency evaluation (Section 6).
//
// Filter step: intersect the query pfv's quantile rectangle with the index.
// Refinement step: fetch the exact pfv records of all candidates from the
// backing PfvFile and compute exact joint densities; probabilities are
// normalized over the *candidate set* (the filter may produce false
// dismissals, as the paper notes — this method is approximate by design).
class XTreeQueries {
 public:
  // `tree` and `file` must outlive this object; `file` is the record store
  // the tree's record indices point into.
  XTreeQueries(const XTree* tree, const PfvFile* file,
               SigmaPolicy policy = SigmaPolicy::kConvolution);

  // Candidate record indices whose approximation intersects the query rect.
  std::vector<uint32_t> RangeCandidates(const Rect& query_rect) const;

  // Approximate k-MLIQ: filter + exact refinement of the candidates.
  MliqResult QueryMliq(const Pfv& q, size_t k) const;

  // Approximate TIQ.
  TiqResult QueryTiq(const Pfv& q, double threshold) const;

  // Exact k-nearest-neighbour query on the mean vectors, best-first with
  // MINDIST pruning (valid because every stored rectangle is centered on its
  // mean). Returns ids, nearest first.
  std::vector<uint64_t> QueryKnnMeans(const Pfv& q, size_t k) const;

 private:
  struct Refined {
    uint64_t id;
    double log_density;
  };
  std::vector<Refined> RefineCandidates(const Pfv& q,
                                        const std::vector<uint32_t>& candidates,
                                        double* log_total) const;

  const XTree* tree_;
  const PfvFile* file_;
  SigmaPolicy policy_;
};

}  // namespace gauss

#endif  // GAUSS_XTREE_XTREE_QUERIES_H_
