#ifndef GAUSS_STORAGE_SHARDED_BUFFER_POOL_H_
#define GAUSS_STORAGE_SHARDED_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_cache.h"
#include "storage/page_device.h"

namespace gauss {

// Thread-safe page cache: N latch-striped LRU shards in front of one shared
// PageDevice.
//
// Design choice (vs. per-worker private pools): GaussServe workers share one
// sharded pool rather than each owning a private BufferPool. A shared pool
// means a page faulted in by one worker is a hit for every other worker —
// exactly the behaviour of a database buffer cache under concurrent reads —
// and the total memory budget is a single `capacity_pages` knob instead of
// (workers x capacity). The cost is a shard latch on every fetch; with the
// shard count a power of two well above the worker count, the probability of
// two workers colliding on a latch at the same instant is low, and the
// critical section is a hash probe plus an LRU splice (a device read on a
// miss). Per-worker pools would avoid the latch but multiply cold misses and
// memory by the worker count, which is the wrong trade for a read-mostly
// serving tree.
//
// Concurrency protocol:
//  * Each page id maps to exactly one shard (multiplicative hash). All frame
//    state of that shard — hash map, LRU list, dirty bits — is guarded by
//    the shard latch.
//  * Fetch pins the frame (atomic counter) before releasing the latch and
//    returns a PageRef; eviction runs under the latch and skips any frame
//    with a nonzero pin count, so a pinned frame's bytes can never be
//    recycled while a reader is looking at them.
//  * Device reads on a miss happen while holding the shard latch: misses to
//    the *same* shard serialize (harmless: they would race on the same LRU
//    anyway), misses to different shards proceed in parallel. PageDevice
//    implementations must therefore support concurrent Read calls
//    (InMemoryPageDevice is naturally safe; FilePageDevice locks
//    internally).
//  * IoStats are aggregated with relaxed atomics: counters are exact in
//    total, but a snapshot taken mid-traffic may be torn across counters.
//
// Asynchronous prefetch (the paper's critical path is the page reads a
// traversal *must* wait for — prefetch moves the wait off that path):
//  * Prefetch(id) checks residency and in-flight status under the shard
//    latch, then — for a genuinely new page — records the id as in flight,
//    releases the latch, and schedules the device read via
//    PageDevice::ReadAsync into a staging buffer. No latch is held while the
//    device works. The completion (engine thread) re-takes the latch only to
//    install the staging buffer as an unpinned frame.
//  * A Fetch that arrives while the read is still in flight does not wait:
//    it performs its own synchronous read (identical bytes — serving pages
//    are immutable), and the late completion counts prefetch_wasted instead
//    of installing. Correctness never depends on prefetch timing.
//  * Every issued prefetch resolves to exactly one hit or wasted count; see
//    IoStats. WaitForInflightPrefetches() + Clear() forces all of them to
//    resolve, which is what the deterministic accounting tests pivot on.
//  * The destructor drains in-flight prefetches before any shard dies, so a
//    completion can never touch freed pool state. The backing PageDevice
//    must outlive the pool (it already must: frames read from it).
class ShardedBufferPool : public PageCache {
 public:
  // `capacity_pages` > 0 is the *total* budget, split evenly across shards.
  // `num_shards` must be a power of two; 0 picks a default (64, or fewer for
  // tiny capacities so every shard can hold at least 2 pages).
  ShardedBufferPool(PageDevice* device, size_t capacity_pages,
                    size_t num_shards = 0);

  // Drains in-flight prefetch completions before tearing down the shards.
  ~ShardedBufferPool() override;

  PageRef Fetch(PageId id) override;
  PageRef FetchMutable(PageId id) override;

  // Schedules a non-blocking fill of `id` into an unpinned frame (see class
  // comment). Safe to call concurrently with everything else.
  void Prefetch(PageId id) override;

  // Blocks until no prefetch is in flight (queued or mid-completion). With
  // no concurrent Prefetch callers this is a quiescent point: every issued
  // prefetch has either installed its frame or been counted wasted.
  void WaitForInflightPrefetches();

  void WritePage(PageId id, const void* data) override;
  void FlushAll() override;
  void Clear() override;

  IoStats stats() const override;
  void ResetStats() override;

  PageDevice* device() const override { return device_; }
  bool thread_safe() const override { return true; }

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const;  // takes every shard latch

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool prefetched = false;  // installed by Prefetch, not Fetched yet
    std::atomic<uint32_t> pins{0};
    std::list<PageId>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex latch;
    std::unordered_map<PageId, Frame> frames;
    std::list<PageId> lru;  // front = most recently used
    // Install permits of in-flight prefetch reads: page -> the ticket the
    // completion must present to install its bytes. Writers erase the
    // entry (revocation: bytes read before a write are stale); a newer
    // Prefetch of the same page overwrites it with a fresh ticket, which
    // also invalidates the older read's permit (no ABA installs). Guarded
    // by `latch`.
    std::unordered_map<PageId, uint64_t> inflight_prefetch;
    uint64_t next_permit = 0;
    size_t capacity = 0;
  };

  Shard& ShardFor(PageId id) {
    // Fibonacci multiplicative hash: page ids are sequential, so low bits
    // alone would put neighbouring tree nodes in neighbouring shards and
    // make latch collisions between co-traversing workers likelier.
    const uint32_t h = static_cast<uint32_t>(id) * 2654435769u;
    return shards_[(h >> 16) & shard_mask_];
  }

  // Frame lookup/load with LRU maintenance; caller holds `shard.latch`.
  Frame& GetFrameLocked(Shard& shard, PageId id, bool count_read);
  void EvictIfFullLocked(Shard& shard);
  // Installs a completed prefetch read, or counts it wasted if a Fetch
  // overtook it / its permit was revoked. Runs on the device's async
  // engine thread.
  void InstallPrefetchLocked(Shard& shard, PageId id, uint64_t permit,
                             std::unique_ptr<uint8_t[]> data);

  PageDevice* device_;
  size_t capacity_;
  size_t shard_mask_;
  std::vector<Shard> shards_;

  // In-flight prefetch count across all shards, with a condvar for
  // WaitForInflightPrefetches / the destructor drain.
  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;
  size_t prefetch_inflight_ = 0;

  // Relaxed-atomic I/O accounting shared by all shards.
  mutable std::atomic<uint64_t> logical_reads_{0};
  mutable std::atomic<uint64_t> physical_reads_{0};
  mutable std::atomic<uint64_t> physical_writes_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> prefetch_issued_{0};
  mutable std::atomic<uint64_t> prefetch_hits_{0};
  mutable std::atomic<uint64_t> prefetch_wasted_{0};
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_SHARDED_BUFFER_POOL_H_
