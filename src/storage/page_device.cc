#include "storage/page_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>

#include "common/macros.h"

#if defined(GAUSS_HAVE_IOURING)
#include <liburing.h>
#endif

namespace gauss {

// ------------------------------------------------------------ async engine --

// Thread-backed async read engine shared by every PageDevice. One background
// thread drains the pending queue in batches: all requests queued at wake-up
// time are issued through one ReadBatch() call (an io_uring backend turns
// that into one kernel submission), then each completion callback runs in
// submission order. Lazily started on the first ReadAsync.
struct PageDevice::AsyncEngine {
  struct Pending {
    ReadRequest request;
    std::function<void()> done;
  };

  explicit AsyncEngine(const PageDevice* device) : device(device) {
    worker = std::thread([this] { Loop(); });
  }

  ~AsyncEngine() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    worker.join();
  }

  void Enqueue(PageId id, void* out, std::function<void()> done) {
    {
      std::lock_guard<std::mutex> lock(mu);
      GAUSS_CHECK_MSG(!stop, "ReadAsync after DrainAsyncReads");
      queue.push_back(Pending{ReadRequest{id, out}, std::move(done)});
    }
    cv.notify_all();
  }

  void Loop() {
    std::vector<Pending> batch;
    std::vector<ReadRequest> requests;
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [this] { return stop || !queue.empty(); });
      if (queue.empty()) {
        if (stop) return;
        continue;
      }
      batch.assign(std::make_move_iterator(queue.begin()),
                   std::make_move_iterator(queue.end()));
      queue.clear();
      lock.unlock();

      requests.clear();
      for (const Pending& p : batch) requests.push_back(p.request);
      device->ReadBatch(requests.data(), requests.size());
      for (Pending& p : batch) {
        if (p.done) p.done();
      }
      batch.clear();

      lock.lock();
    }
  }

  const PageDevice* device;
  std::mutex mu;
  std::condition_variable cv;  // wakes the worker
  std::deque<Pending> queue;
  bool stop = false;
  std::thread worker;
};

PageDevice::PageDevice(uint32_t page_size) : page_size_(page_size) {}

PageDevice::~PageDevice() { DrainAsyncReads(); }

void PageDevice::ReadBatch(const ReadRequest* requests, size_t count) const {
  for (size_t i = 0; i < count; ++i) Read(requests[i].id, requests[i].out);
}

void PageDevice::ReadAsync(PageId id, void* out, std::function<void()> done) {
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    if (engine_ == nullptr) engine_ = std::make_unique<AsyncEngine>(this);
  }
  engine_->Enqueue(id, out, std::move(done));
}

void PageDevice::DrainAsyncReads() {
  std::unique_ptr<AsyncEngine> engine;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine = std::move(engine_);
  }
  // ~AsyncEngine completes the queue before joining (stop only exits the
  // loop once the queue is empty).
  engine.reset();
}

// ----------------------------------------------------------- in-memory -----

InMemoryPageDevice::InMemoryPageDevice(uint32_t page_size)
    : PageDevice(page_size) {}

InMemoryPageDevice::~InMemoryPageDevice() {
  DrainAsyncReads();
  for (std::atomic<uint8_t*>& segment : segments_) {
    delete[] segment.load(std::memory_order_relaxed);
  }
}

// Segment s holds kFirstSegmentPages << s pages starting at page id
// kFirstSegmentPages * ((1 << s) - 1).
void InMemoryPageDevice::Locate(PageId id, size_t* segment,
                                size_t* offset_pages) {
  const size_t block = static_cast<size_t>(id) / kFirstSegmentPages + 1;
  const size_t s = static_cast<size_t>(std::bit_width(block)) - 1;
  *segment = s;
  *offset_pages =
      static_cast<size_t>(id) - kFirstSegmentPages * ((size_t{1} << s) - 1);
}

uint8_t* InMemoryPageDevice::PageAddress(PageId id) const {
  size_t segment = 0, offset = 0;
  Locate(id, &segment, &offset);
  uint8_t* base = segments_[segment].load(std::memory_order_acquire);
  GAUSS_CHECK(base != nullptr);
  return base + offset * page_size();
}

PageId InMemoryPageDevice::Allocate() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const size_t id = page_count_.load(std::memory_order_relaxed);
  size_t segment = 0, offset = 0;
  Locate(static_cast<PageId>(id), &segment, &offset);
  GAUSS_CHECK(segment < kMaxSegments);
  if (segments_[segment].load(std::memory_order_relaxed) == nullptr) {
    const size_t pages = kFirstSegmentPages << segment;
    uint8_t* base = new uint8_t[pages * page_size()]();
    segments_[segment].store(base, std::memory_order_release);
  }
  page_count_.store(id + 1, std::memory_order_release);
  return static_cast<PageId>(id);
}

void InMemoryPageDevice::Read(PageId id, void* out) const {
  GAUSS_CHECK(id < page_count_.load(std::memory_order_acquire));
  std::memcpy(out, PageAddress(id), page_size());
}

void InMemoryPageDevice::Write(PageId id, const void* data) {
  GAUSS_CHECK(id < page_count_.load(std::memory_order_acquire));
  std::memcpy(PageAddress(id), data, page_size());
}

size_t InMemoryPageDevice::PageCount() const {
  return page_count_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------- file-backed ----

namespace {

// Positioned full-buffer read/write, retrying short transfers and EINTR
// (a signal without SA_RESTART — profilers, application timers — must not
// abort the serving process over a healthy descriptor).
void PreadFully(int fd, void* out, size_t count, off_t offset) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pread(fd, dst + done, count - done,
                              offset + static_cast<off_t>(done));
    if (n < 0 && errno == EINTR) continue;
    GAUSS_CHECK(n > 0);
    done += static_cast<size_t>(n);
  }
}

void PwriteFully(int fd, const void* data, size_t count, off_t offset) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pwrite(fd, src + done, count - done,
                               offset + static_cast<off_t>(done));
    if (n < 0 && errno == EINTR) continue;
    GAUSS_CHECK(n > 0);
    done += static_cast<size_t>(n);
  }
}

}  // namespace

FilePageDevice::FilePageDevice(const std::string& path, uint32_t page_size,
                               bool truncate)
    : PageDevice(page_size) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  GAUSS_CHECK_MSG(fd_ >= 0, path.c_str());
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  GAUSS_CHECK(size >= 0);
  GAUSS_CHECK_MSG(static_cast<size_t>(size) % page_size == 0,
                  "file size is not a multiple of the page size");
  page_count_.store(static_cast<size_t>(size) / page_size,
                    std::memory_order_relaxed);
}

std::unique_ptr<FilePageDevice> FilePageDevice::TryOpen(const std::string& path,
                                                        uint32_t page_size,
                                                        std::string* error) {
  if (page_size == 0) {
    if (error != nullptr) {
      *error = path + ": page size 0 is invalid";
    }
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (error != nullptr) {
      *error = path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || static_cast<size_t>(size) % page_size != 0) {
    if (error != nullptr) {
      *error = path + ": size " + std::to_string(size) +
               " is not a multiple of the page size " +
               std::to_string(page_size) + " (truncated or foreign file)";
    }
    ::close(fd);
    return nullptr;
  }
  auto device = std::unique_ptr<FilePageDevice>(
      new FilePageDevice(fd, page_size, static_cast<size_t>(size) / page_size));
  return device;
}

FilePageDevice::FilePageDevice(int fd, uint32_t page_size, size_t page_count)
    : PageDevice(page_size), fd_(fd) {
  page_count_.store(page_count, std::memory_order_relaxed);
}

FilePageDevice::~FilePageDevice() {
  DrainAsyncReads();
  if (fd_ >= 0) ::close(fd_);
}

PageId FilePageDevice::Allocate() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  std::vector<uint8_t> zeros(page_size(), 0);
  const size_t id = page_count_.load(std::memory_order_relaxed);
  PwriteFully(fd_, zeros.data(), page_size(),
              static_cast<off_t>(id) * page_size());
  page_count_.store(id + 1, std::memory_order_release);
  return static_cast<PageId>(id);
}

void FilePageDevice::Read(PageId id, void* out) const {
  GAUSS_CHECK(id < page_count_.load(std::memory_order_acquire));
  PreadFully(fd_, out, page_size(), static_cast<off_t>(id) * page_size());
}

#if defined(GAUSS_HAVE_IOURING)

// Persistent process-wide ring, created on first use: per-batch
// io_uring_queue_init/exit (a syscall plus several mmaps each) would cost
// more than the handful of preads a typical prefetch batch replaces. All
// ReadBatch callers serialize on the ring mutex — in practice there is one
// caller, the device's async engine thread. Batches larger than the ring
// are submitted in chunks.
namespace {

constexpr unsigned kRingEntries = 64;

struct SharedRing {
  std::mutex mu;
  struct io_uring ring;
  bool ready = false;
  bool failed = false;  // setup failed (e.g. locked-memory limits)
};

SharedRing& GetSharedRing() {
  static SharedRing* shared = new SharedRing();  // leaked: process lifetime
  return *shared;
}

}  // namespace

void FilePageDevice::ReadBatch(const ReadRequest* requests,
                               size_t count) const {
  SharedRing& shared = GetSharedRing();
  std::unique_lock<std::mutex> lock(shared.mu);
  if (!shared.ready && !shared.failed) {
    shared.failed = io_uring_queue_init(kRingEntries, &shared.ring, 0) != 0;
    shared.ready = !shared.failed;
  }
  if (shared.failed || count < 2) {
    lock.unlock();
    for (size_t i = 0; i < count; ++i) Read(requests[i].id, requests[i].out);
    return;
  }

  for (size_t chunk = 0; chunk < count; chunk += kRingEntries) {
    const size_t n = std::min<size_t>(kRingEntries, count - chunk);
    for (size_t i = 0; i < n; ++i) {
      const ReadRequest& req = requests[chunk + i];
      GAUSS_CHECK(req.id < page_count_.load(std::memory_order_acquire));
      struct io_uring_sqe* sqe = io_uring_get_sqe(&shared.ring);
      GAUSS_CHECK(sqe != nullptr);
      io_uring_prep_read(sqe, fd_, req.out, page_size(),
                         static_cast<off_t>(req.id) * page_size());
      // Index via the classic void* user_data (liburing 0.x compatible).
      io_uring_sqe_set_data(
          sqe, reinterpret_cast<void*>(static_cast<uintptr_t>(chunk + i)));
    }
    // submit/wait can both return -EINTR under non-SA_RESTART signals
    // (profilers, application timers) — retry, same as PreadFully.
    size_t submitted = 0;
    while (submitted < n) {
      const int rc = io_uring_submit(&shared.ring);
      if (rc == -EINTR) continue;
      GAUSS_CHECK(rc >= 0);
      submitted += static_cast<size_t>(rc);
    }
    for (size_t i = 0; i < n; ++i) {
      struct io_uring_cqe* cqe = nullptr;
      int rc;
      while ((rc = io_uring_wait_cqe(&shared.ring, &cqe)) == -EINTR) {
      }
      GAUSS_CHECK(rc == 0);
      const size_t index = static_cast<size_t>(
          reinterpret_cast<uintptr_t>(io_uring_cqe_get_data(cqe)));
      const int res = cqe->res;
      io_uring_cqe_seen(&shared.ring, cqe);
      if (res != static_cast<int>(page_size())) {
        // -EINTR or a short read: finish this page with the retrying
        // pread path rather than aborting on a transient condition.
        GAUSS_CHECK(res == -EINTR || res >= 0);
        Read(requests[index].id, requests[index].out);
      }
    }
  }
}

#else  // !GAUSS_HAVE_IOURING

void FilePageDevice::ReadBatch(const ReadRequest* requests,
                               size_t count) const {
  for (size_t i = 0; i < count; ++i) Read(requests[i].id, requests[i].out);
}

#endif  // GAUSS_HAVE_IOURING

void FilePageDevice::Write(PageId id, const void* data) {
  GAUSS_CHECK(id < page_count_.load(std::memory_order_acquire));
  PwriteFully(fd_, data, page_size(), static_cast<off_t>(id) * page_size());
}

size_t FilePageDevice::PageCount() const {
  return page_count_.load(std::memory_order_acquire);
}

void FilePageDevice::Sync() { GAUSS_CHECK(::fdatasync(fd_) == 0); }

}  // namespace gauss
