#include "storage/page_device.h"

#include <cstring>

#include "common/macros.h"

namespace gauss {

InMemoryPageDevice::InMemoryPageDevice(uint32_t page_size)
    : PageDevice(page_size) {}

PageId InMemoryPageDevice::Allocate() {
  auto page = std::make_unique<uint8_t[]>(page_size());
  std::memset(page.get(), 0, page_size());
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

void InMemoryPageDevice::Read(PageId id, void* out) const {
  GAUSS_CHECK(id < pages_.size());
  std::memcpy(out, pages_[id].get(), page_size());
}

void InMemoryPageDevice::Write(PageId id, const void* data) {
  GAUSS_CHECK(id < pages_.size());
  std::memcpy(pages_[id].get(), data, page_size());
}

size_t InMemoryPageDevice::PageCount() const { return pages_.size(); }

FilePageDevice::FilePageDevice(const std::string& path, uint32_t page_size,
                               bool truncate)
    : PageDevice(page_size) {
  file_ = std::fopen(path.c_str(), truncate ? "w+b" : "r+b");
  if (file_ == nullptr && !truncate) {
    file_ = std::fopen(path.c_str(), "w+b");
  }
  GAUSS_CHECK_MSG(file_ != nullptr, path.c_str());
  GAUSS_CHECK(std::fseek(file_, 0, SEEK_END) == 0);
  const long size = std::ftell(file_);
  GAUSS_CHECK(size >= 0);
  GAUSS_CHECK_MSG(static_cast<size_t>(size) % page_size == 0,
                  "file size is not a multiple of the page size");
  page_count_ = static_cast<size_t>(size) / page_size;
}

FilePageDevice::~FilePageDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId FilePageDevice::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> zeros(page_size(), 0);
  GAUSS_CHECK(std::fseek(file_, 0, SEEK_END) == 0);
  GAUSS_CHECK(std::fwrite(zeros.data(), 1, page_size(), file_) == page_size());
  return static_cast<PageId>(page_count_++);
}

void FilePageDevice::Read(PageId id, void* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  GAUSS_CHECK(id < page_count_);
  GAUSS_CHECK(std::fseek(file_, static_cast<long>(id) * page_size(),
                         SEEK_SET) == 0);
  GAUSS_CHECK(std::fread(out, 1, page_size(), file_) == page_size());
}

void FilePageDevice::Write(PageId id, const void* data) {
  std::lock_guard<std::mutex> lock(mu_);
  GAUSS_CHECK(id < page_count_);
  GAUSS_CHECK(std::fseek(file_, static_cast<long>(id) * page_size(),
                         SEEK_SET) == 0);
  GAUSS_CHECK(std::fwrite(data, 1, page_size(), file_) == page_size());
}

size_t FilePageDevice::PageCount() const { return page_count_; }

void FilePageDevice::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  GAUSS_CHECK(std::fflush(file_) == 0);
}

}  // namespace gauss
