#ifndef GAUSS_STORAGE_PAGE_CACHE_H_
#define GAUSS_STORAGE_PAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <utility>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_device.h"

namespace gauss {

// RAII pin on one cached page frame. While a PageRef is alive the frame it
// points at cannot be evicted, so `data()` stays valid — this replaces the
// old raw-pointer Fetch contract ("valid until the next Fetch"), which was
// unenforceable once queries run concurrently.
//
// The ref holds a pointer to the frame's pin counter; releasing is a single
// relaxed-to-release atomic decrement and needs no cache lock. Eviction only
// considers frames whose pin count is zero (checked under the owning shard's
// latch), so a frame can never disappear between a successful Fetch and the
// matching release.
class PageRef {
 public:
  PageRef() = default;
  PageRef(uint8_t* data, std::atomic<uint32_t>* pins)
      : data_(data), pins_(pins) {}

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  PageRef(PageRef&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        pins_(std::exchange(other.pins_, nullptr)) {}

  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = std::exchange(other.data_, nullptr);
      pins_ = std::exchange(other.pins_, nullptr);
    }
    return *this;
  }

  ~PageRef() { Release(); }

  // Page contents; page_size() bytes. Valid for the lifetime of the ref.
  const uint8_t* data() const { return data_; }

  // Writable view. Only meaningful for refs obtained via FetchMutable (the
  // frame is marked dirty there); writing through a read ref corrupts the
  // cache's dirty tracking.
  uint8_t* mutable_data() const { return data_; }

  explicit operator bool() const { return data_ != nullptr; }

  void Release() {
    if (pins_ != nullptr) {
      pins_->fetch_sub(1, std::memory_order_release);
      pins_ = nullptr;
    }
    data_ = nullptr;
  }

 private:
  uint8_t* data_ = nullptr;
  std::atomic<uint32_t>* pins_ = nullptr;
};

// Abstract page cache in front of a PageDevice: the storage interface the
// Gauss-tree, pfv file, and X-tree layers are written against.
//
// Two implementations exist:
//  * BufferPool            — single-threaded LRU pool; the default for
//                            builds, experiments, and anything sequential.
//  * ShardedBufferPool     — latch-striped LRU shards for concurrent
//                            read-mostly serving (see sharded_buffer_pool.h).
//
// `thread_safe()` advertises whether Fetch may be called concurrently from
// multiple threads; the serving layer checks it before fanning out.
class PageCache {
 public:
  virtual ~PageCache() = default;

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Returns a pinned ref to the page contents, reading from the device on a
  // miss. The frame stays resident until the ref is released.
  virtual PageRef Fetch(PageId id) = 0;

  // Fetch for writing: marks the frame dirty. Same pin semantics.
  virtual PageRef FetchMutable(PageId id) = 0;

  // Hints that `id` will be fetched soon. Purely advisory — a prefetch never
  // changes any Fetch result, only (maybe) its latency — so callers may
  // issue hints speculatively and redundantly; a hint for a resident or
  // already-scheduled page is a cheap no-op. The default implementation
  // ignores the hint entirely.
  //
  // Contract for implementations that honor it:
  //  * Non-blocking: Prefetch must not wait on the device. ShardedBufferPool
  //    schedules the fill through PageDevice::ReadAsync and only takes the
  //    shard latch to install the completed frame; BufferPool (single-
  //    threaded, no latch to hold) fills synchronously.
  //  * The filled frame is installed *unpinned* — it is eviction fodder like
  //    any other frame until a Fetch pins it.
  //  * Accounting per IoStats: a hint that schedules a device read counts
  //    prefetch_issued and later resolves to exactly one of prefetch_hits
  //    (first Fetch lands on the frame) or prefetch_wasted (frame evicted or
  //    cleared untouched, or a Fetch raced past the in-flight read).
  virtual void Prefetch(PageId id) { (void)id; }

  // Writes a whole page through the cache (allocating a frame, marking
  // dirty) without reading the old contents from the device.
  virtual void WritePage(PageId id, const void* data) = 0;

  // Flushes all dirty frames to the device.
  virtual void FlushAll() = 0;

  // Drops every unpinned frame (flushing dirty ones first): a cold start.
  virtual void Clear() = 0;

  // Snapshot of the I/O counters (consistent only when quiescent for the
  // sharded implementation; each counter is individually exact).
  virtual IoStats stats() const = 0;
  virtual void ResetStats() = 0;

  virtual PageDevice* device() const = 0;

  // True if Fetch/FetchMutable/stats may be called concurrently.
  virtual bool thread_safe() const = 0;

  uint32_t page_size() const { return device()->page_size(); }

 protected:
  PageCache() = default;
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_PAGE_CACHE_H_
