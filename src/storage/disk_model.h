#ifndef GAUSS_STORAGE_DISK_MODEL_H_
#define GAUSS_STORAGE_DISK_MODEL_H_

#include <cstdint>

namespace gauss {

// Analytic disk-cost model used to convert *physical* page-access counts
// into simulated elapsed I/O time, mirroring the paper's "overall time"
// metric. Random accesses (index traversal) pay a positioning cost per page;
// sequential accesses (relation scan) pay positioning once per run plus pure
// transfer.
//
// Defaults approximate the paper's 2006-era SCSI disk (~8 ms average
// positioning, ~60 MB/s sustained transfer). Note the paper's 50 MB database
// cache holds both evaluation datasets entirely, so with its cold-start-per-
// experiment protocol the physical I/O amortizes over the query batch; the
// residual random-vs-sequential asymmetry is what makes the Gauss-tree's
// overall-time win smaller than its page-access win (paper Section 6).
struct DiskModel {
  double positioning_seconds = 0.008;           // per random page access
  double transfer_mb_per_second = 60.0;         // sustained transfer rate
  uint32_t page_size_bytes = 8192;

  double TransferSecondsPerPage() const {
    return static_cast<double>(page_size_bytes) /
           (transfer_mb_per_second * 1024.0 * 1024.0);
  }

  // Cost of `pages` random single-page reads.
  double RandomReadSeconds(uint64_t pages) const;

  // Cost of scanning `pages` consecutive pages (one positioning, then
  // streaming transfer).
  double SequentialReadSeconds(uint64_t pages) const;
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_DISK_MODEL_H_
