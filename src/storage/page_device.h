#ifndef GAUSS_STORAGE_PAGE_DEVICE_H_
#define GAUSS_STORAGE_PAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"

namespace gauss {

// Abstraction of a block device holding fixed-size pages. Implementations
// must be deterministic; all I/O accounting happens in the page-cache layer
// above, not here.
//
// Thread-safety contract: `Read` must be safe to call concurrently with
// other `Read`s — the ShardedBufferPool issues parallel reads from
// different shards. `Allocate`/`Write` need external serialization against
// everything else (they only run during single-threaded build/finalize).
// InMemoryPageDevice meets the contract naturally (concurrent reads are
// plain memcpys from stable allocations); FilePageDevice serializes all
// operations on an internal mutex because stdio FILE positioning is shared
// state.
class PageDevice {
 public:
  explicit PageDevice(uint32_t page_size) : page_size_(page_size) {}
  virtual ~PageDevice() = default;

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  // Appends a zero-filled page and returns its id.
  virtual PageId Allocate() = 0;

  // Copies the page contents into `out` (page_size() bytes).
  virtual void Read(PageId id, void* out) const = 0;

  // Overwrites the page with `data` (page_size() bytes).
  virtual void Write(PageId id, const void* data) = 0;

  // Number of allocated pages.
  virtual size_t PageCount() const = 0;

  uint32_t page_size() const { return page_size_; }

 private:
  uint32_t page_size_;
};

// Heap-backed device; the default for experiments (the disk model converts
// page-access counts into simulated elapsed I/O, so a RAM-backed device keeps
// measurements noise-free while the access accounting stays honest).
class InMemoryPageDevice : public PageDevice {
 public:
  explicit InMemoryPageDevice(uint32_t page_size = kDefaultPageSize);

  PageId Allocate() override;
  void Read(PageId id, void* out) const override;
  void Write(PageId id, const void* data) override;
  size_t PageCount() const override;

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

// File-backed device for persistence tests and on-disk operation.
class FilePageDevice : public PageDevice {
 public:
  // Opens (or creates) the backing file. `truncate` discards existing
  // content. Aborts on I/O failure (storage corruption is not recoverable).
  FilePageDevice(const std::string& path, uint32_t page_size = kDefaultPageSize,
                 bool truncate = true);
  ~FilePageDevice() override;

  PageId Allocate() override;
  void Read(PageId id, void* out) const override;
  void Write(PageId id, const void* data) override;
  size_t PageCount() const override;

  // Flushes buffered writes to the OS.
  void Sync();

 private:
  mutable std::mutex mu_;  // guards the shared FILE* position
  std::FILE* file_ = nullptr;
  size_t page_count_ = 0;
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_PAGE_DEVICE_H_
