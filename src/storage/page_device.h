#ifndef GAUSS_STORAGE_PAGE_DEVICE_H_
#define GAUSS_STORAGE_PAGE_DEVICE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"

namespace gauss {

// Abstraction of a block device holding fixed-size pages. Implementations
// must be deterministic; all I/O accounting happens in the page-cache layer
// above, not here.
//
// Thread-safety contract: `Read`/`ReadBatch` must be safe to call
// concurrently with other reads — the ShardedBufferPool issues parallel
// reads from different shards and the async prefetch engine reads from its
// own thread. `Allocate` and `Write` may run concurrently with reads of
// *already-allocated* pages: the live-ingest merge thread appends a fresh
// tree image onto a device that the previous epoch is still serving reads
// from. Writers themselves need external serialization against each other,
// and a given page's bytes may not be written and read concurrently (the
// merge commits a page only before any reader can learn its id).
// FilePageDevice meets the contract with positioned pread/pwrite over a raw
// descriptor plus an acquire/release page count; InMemoryPageDevice with a
// fixed directory of geometrically-growing segments, so a published page's
// address never moves while an append installs new segments.
//
// Asynchronous reads: ReadAsync() queues a read and returns immediately;
// a device-owned background thread drains the queue in batches through
// ReadBatch() and runs each completion callback after its page bytes have
// landed. This is the engine underneath PageCache::Prefetch — the cache
// schedules fills without holding any latch across the device wait.
// Implementations that override the destructor must call DrainAsyncReads()
// first so no engine thread can touch derived state mid-teardown.
class PageDevice {
 public:
  // One positioned read: `out` must hold page_size() bytes.
  struct ReadRequest {
    PageId id = kInvalidPageId;
    void* out = nullptr;
  };

  explicit PageDevice(uint32_t page_size);
  virtual ~PageDevice();

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  // Appends a zero-filled page and returns its id.
  virtual PageId Allocate() = 0;

  // Copies the page contents into `out` (page_size() bytes).
  virtual void Read(PageId id, void* out) const = 0;

  // Reads `count` pages in one submission where the backend supports it
  // (io_uring FilePageDevice); the default loops Read(). The async engine
  // funnels every queued ReadAsync through here, so a batched backend
  // accelerates prefetching without the cache knowing.
  virtual void ReadBatch(const ReadRequest* requests, size_t count) const;

  // Queues a read and returns immediately; `done` runs on the engine thread
  // after the page bytes are in `out`. `out` must stay valid until then.
  // Completions of one device run on one thread, in submission order.
  void ReadAsync(PageId id, void* out, std::function<void()> done);

  // Overwrites the page with `data` (page_size() bytes).
  virtual void Write(PageId id, const void* data) = 0;

  // Number of allocated pages.
  virtual size_t PageCount() const = 0;

  uint32_t page_size() const { return page_size_; }

 protected:
  // Completes every queued ReadAsync and joins the engine thread. Must be
  // called by any derived destructor (before derived members die); invoked
  // again by ~PageDevice as a harmless no-op.
  void DrainAsyncReads();

 private:
  struct AsyncEngine;

  uint32_t page_size_;
  mutable std::mutex engine_mu_;  // guards lazy engine creation
  std::unique_ptr<AsyncEngine> engine_;
};

// Heap-backed device; the default for experiments (the disk model converts
// page-access counts into simulated elapsed I/O, so a RAM-backed device keeps
// measurements noise-free while the access accounting stays honest).
class InMemoryPageDevice : public PageDevice {
 public:
  explicit InMemoryPageDevice(uint32_t page_size = kDefaultPageSize);
  ~InMemoryPageDevice() override;

  PageId Allocate() override;
  void Read(PageId id, void* out) const override;
  void Write(PageId id, const void* data) override;
  size_t PageCount() const override;

 private:
  // Pages live in segments of geometrically growing size (segment s holds
  // kFirstSegmentPages << s pages), addressed through a fixed-capacity
  // directory of atomic pointers. Appending installs a new segment with a
  // release store; readers locate their page through an acquire load, so a
  // page's address is stable from the moment its id is published — no
  // vector regrowth ever races a concurrent Read.
  static constexpr size_t kFirstSegmentPages = 64;
  static constexpr size_t kMaxSegments = 48;

  static void Locate(PageId id, size_t* segment, size_t* offset_pages);
  uint8_t* PageAddress(PageId id) const;

  std::mutex alloc_mu_;  // serializes Allocate's append
  std::atomic<size_t> page_count_{0};
  std::array<std::atomic<uint8_t*>, kMaxSegments> segments_{};
};

// File-backed device for persistence tests and on-disk operation. Built on
// positioned pread/pwrite over a raw descriptor: concurrent reads (including
// async prefetch batches) proceed in parallel without shared seek state,
// which is what lets traversal compute overlap with device I/O. Every
// FilePageDevice owns its own descriptor and its own async read engine, so
// a multi-device database (one device per shard — GaussDb's directory
// layout) overlaps reads across all its files genuinely in parallel.
class FilePageDevice : public PageDevice {
 public:
  // Opens (or creates) the backing file. `truncate` discards existing
  // content. Aborts on I/O failure (storage corruption is not recoverable).
  FilePageDevice(const std::string& path, uint32_t page_size = kDefaultPageSize,
                 bool truncate = true);
  ~FilePageDevice() override;

  // Attaches to an *existing* file without creating it, returning nullptr
  // (with a human-readable reason in `*error`) instead of aborting when the
  // file is missing, unreadable, or truncated to a non-page-multiple size.
  // This is the recoverable-open primitive underneath GaussDb's typed
  // OpenFile()/OpenDirectory() error paths — a missing shard file is a
  // caller-reportable condition, not a process-fatal invariant violation.
  static std::unique_ptr<FilePageDevice> TryOpen(
      const std::string& path, uint32_t page_size = kDefaultPageSize,
      std::string* error = nullptr);

  PageId Allocate() override;
  void Read(PageId id, void* out) const override;
  void ReadBatch(const ReadRequest* requests, size_t count) const override;
  void Write(PageId id, const void* data) override;
  size_t PageCount() const override;

  // Flushes written pages to durable storage.
  void Sync();

 private:
  // Adopts an already-opened descriptor (TryOpen's success path).
  FilePageDevice(int fd, uint32_t page_size, size_t page_count);

  int fd_ = -1;
  std::mutex alloc_mu_;              // serializes Allocate's append
  std::atomic<size_t> page_count_{0};
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_PAGE_DEVICE_H_
