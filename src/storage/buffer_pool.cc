#include "storage/buffer_pool.h"

#include <cstring>

#include "common/macros.h"

namespace gauss {

BufferPool::BufferPool(PageDevice* device, size_t capacity_pages)
    : device_(device), capacity_(capacity_pages) {
  GAUSS_CHECK(device != nullptr);
  GAUSS_CHECK(capacity_pages > 0);
}

void BufferPool::Touch(PageId id, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
}

void BufferPool::EvictIfFull() {
  // Walk from the LRU end towards the front, evicting unpinned frames until
  // strictly below capacity — this also reclaims overshoot from earlier
  // all-pinned growth once those pins are released.
  auto it = lru_.rbegin();
  while (frames_.size() >= capacity_ && it != lru_.rend()) {
    auto frame_it = frames_.find(*it);
    GAUSS_CHECK(frame_it != frames_.end());
    Frame& frame = frame_it->second;
    if (frame.pins.load(std::memory_order_acquire) != 0) {
      ++it;  // pinned frames must stay resident
      continue;
    }
    if (frame.dirty) {
      device_->Write(frame_it->first, frame.data.get());
      ++stats_.physical_writes;
    }
    if (frame.prefetched) ++stats_.prefetch_wasted;
    it = std::make_reverse_iterator(lru_.erase(frame.lru_pos));
    frames_.erase(frame_it);
    ++stats_.evictions;
  }
  // Loop exhausted with every frame pinned: grow past capacity instead of
  // failing.
}

BufferPool::Frame& BufferPool::GetFrame(PageId id, bool count_read) {
  if (count_read) ++stats_.logical_reads;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (count_read && it->second.prefetched) {
      it->second.prefetched = false;
      ++stats_.prefetch_hits;
    }
    Touch(id, it->second);
    return it->second;
  }
  EvictIfFull();
  auto [pos, inserted] = frames_.try_emplace(id);
  GAUSS_CHECK(inserted);
  Frame& frame = pos->second;
  frame.data = std::make_unique<uint8_t[]>(device_->page_size());
  device_->Read(id, frame.data.get());
  if (count_read) ++stats_.physical_reads;
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
  return frame;
}

void BufferPool::Prefetch(PageId id) {
  if (frames_.find(id) != frames_.end()) return;  // resident: free no-op
  // The ordinary miss-fill path, minus the logical-read count (a hint is
  // not an access); the device read still counts as physical.
  Frame& frame = GetFrame(id, /*count_read=*/false);
  frame.prefetched = true;
  ++stats_.prefetch_issued;
  ++stats_.physical_reads;
}

PageRef BufferPool::Fetch(PageId id) {
  Frame& frame = GetFrame(id, /*count_read=*/true);
  frame.pins.fetch_add(1, std::memory_order_relaxed);
  return PageRef(frame.data.get(), &frame.pins);
}

PageRef BufferPool::FetchMutable(PageId id) {
  Frame& frame = GetFrame(id, /*count_read=*/true);
  frame.dirty = true;
  frame.pins.fetch_add(1, std::memory_order_relaxed);
  return PageRef(frame.data.get(), &frame.pins);
}

void BufferPool::WritePage(PageId id, const void* data) {
  // A full-page write does not need to read the old contents from the
  // device; install the new bytes directly.
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    EvictIfFull();
    it = frames_.try_emplace(id).first;
    Frame& frame = it->second;
    frame.data = std::make_unique<uint8_t[]>(device_->page_size());
    lru_.push_front(id);
    frame.lru_pos = lru_.begin();
  } else {
    // Overwriting a prefetched frame discards the prefetched bytes unread.
    if (it->second.prefetched) {
      it->second.prefetched = false;
      ++stats_.prefetch_wasted;
    }
    Touch(id, it->second);
  }
  std::memcpy(it->second.data.get(), data, device_->page_size());
  it->second.dirty = true;
}

void BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      device_->Write(id, frame.data.get());
      frame.dirty = false;
      ++stats_.physical_writes;
    }
  }
}

void BufferPool::Clear() {
  FlushAll();
  // Pinned frames survive a Clear: dropping them would dangle live refs.
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pins.load(std::memory_order_acquire) == 0) {
      if (it->second.prefetched) ++stats_.prefetch_wasted;
      lru_.erase(it->second.lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gauss
