#include "storage/buffer_pool.h"

#include <cstring>

#include "common/macros.h"

namespace gauss {

BufferPool::BufferPool(PageDevice* device, size_t capacity_pages)
    : device_(device), capacity_(capacity_pages) {
  GAUSS_CHECK(device != nullptr);
  GAUSS_CHECK(capacity_pages > 0);
}

void BufferPool::Touch(PageId id, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
}

void BufferPool::EvictIfFull() {
  if (frames_.size() < capacity_) return;
  GAUSS_CHECK(!lru_.empty());
  const PageId victim = lru_.back();
  auto it = frames_.find(victim);
  GAUSS_CHECK(it != frames_.end());
  if (it->second.dirty) {
    device_->Write(victim, it->second.data.get());
    ++stats_.physical_writes;
  }
  lru_.pop_back();
  frames_.erase(it);
  ++stats_.evictions;
}

BufferPool::Frame& BufferPool::GetFrame(PageId id, bool count_read) {
  if (count_read) ++stats_.logical_reads;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Touch(id, it->second);
    return it->second;
  }
  EvictIfFull();
  Frame frame;
  frame.data = std::make_unique<uint8_t[]>(device_->page_size());
  device_->Read(id, frame.data.get());
  if (count_read) ++stats_.physical_reads;
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  GAUSS_CHECK(inserted);
  return pos->second;
}

const uint8_t* BufferPool::Fetch(PageId id) {
  return GetFrame(id, /*count_read=*/true).data.get();
}

uint8_t* BufferPool::FetchMutable(PageId id) {
  Frame& frame = GetFrame(id, /*count_read=*/true);
  frame.dirty = true;
  return frame.data.get();
}

void BufferPool::WritePage(PageId id, const void* data) {
  // A full-page write does not need to read the old contents from the
  // device; install the new bytes directly.
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    EvictIfFull();
    Frame frame;
    frame.data = std::make_unique<uint8_t[]>(device_->page_size());
    lru_.push_front(id);
    frame.lru_pos = lru_.begin();
    it = frames_.emplace(id, std::move(frame)).first;
  } else {
    Touch(id, it->second);
  }
  std::memcpy(it->second.data.get(), data, device_->page_size());
  it->second.dirty = true;
}

void BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      device_->Write(id, frame.data.get());
      frame.dirty = false;
      ++stats_.physical_writes;
    }
  }
}

void BufferPool::Clear() {
  FlushAll();
  frames_.clear();
  lru_.clear();
}

}  // namespace gauss
