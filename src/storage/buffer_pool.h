#ifndef GAUSS_STORAGE_BUFFER_POOL_H_
#define GAUSS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_cache.h"
#include "storage/page_device.h"

namespace gauss {

// LRU page cache in front of a PageDevice, with read/write accounting.
//
// The paper's workstation used up to 50 MB of database cache, cold-started
// before each experiment; Capacity is expressed in pages and the cache can be
// dropped with `Clear()` to reproduce cold starts.
//
// Single-threaded by design: this is the pool used for tree construction,
// sequential experiments, and everything else that runs one query at a time.
// Concurrent serving goes through ShardedBufferPool instead (both implement
// the PageCache interface). Fetch returns a pinned PageRef, so even in
// single-threaded use a held ref can no longer be invalidated by a later
// Fetch evicting its frame — pinned frames are skipped by eviction.
class BufferPool : public PageCache {
 public:
  // `capacity_pages` > 0. The pool does not own the device.
  BufferPool(PageDevice* device, size_t capacity_pages);

  // Returns a pinned ref to the cached page contents (page_size() bytes),
  // reading from the device on a miss. The frame cannot be evicted while the
  // ref is alive. If every frame is pinned, the pool grows past capacity
  // rather than failing (the working set of pins is small: a root-to-leaf
  // path at most).
  PageRef Fetch(PageId id) override;

  // Fetch for writing: marks the frame dirty. Same pin semantics.
  PageRef FetchMutable(PageId id) override;

  // Fills the frame for `id` immediately when absent (single-threaded pool:
  // there is no latch to hold and no second thread to overlap with, so the
  // "async" prefetch degenerates to a synchronous fill). Counts
  // prefetch_issued on a fill; the first Fetch of the frame counts
  // prefetch_hits, eviction/Clear of an untouched prefetched frame counts
  // prefetch_wasted. No logical read is counted — a hint is not an access.
  void Prefetch(PageId id) override;

  // Writes a whole page through the pool (allocating a frame, marking dirty).
  void WritePage(PageId id, const void* data) override;

  // Flushes all dirty frames to the device.
  void FlushAll() override;

  // Drops every unpinned frame (flushing dirty ones first): a cold start.
  void Clear() override;

  IoStats stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

  PageDevice* device() const override { return device_; }
  bool thread_safe() const override { return false; }

  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const { return frames_.size(); }

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool prefetched = false;  // installed by Prefetch, not Fetched yet
    std::atomic<uint32_t> pins{0};
    std::list<PageId>::iterator lru_pos;
  };

  // Moves `id` to the most-recently-used position.
  void Touch(PageId id, Frame& frame);

  // Ensures a free slot exists, evicting the least recently used *unpinned*
  // frame if needed. No-op when every frame is pinned.
  void EvictIfFull();

  Frame& GetFrame(PageId id, bool count_read);

  PageDevice* device_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  IoStats stats_;
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_BUFFER_POOL_H_
