#ifndef GAUSS_STORAGE_BUFFER_POOL_H_
#define GAUSS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_device.h"

namespace gauss {

// LRU page cache in front of a PageDevice, with read/write accounting.
//
// The paper's workstation used up to 50 MB of database cache, cold-started
// before each experiment; Capacity is expressed in pages and the cache can be
// dropped with `Clear()` to reproduce cold starts.
//
// Single-threaded by design (as is the whole library): the paper's system is
// a single-query-at-a-time index evaluation.
class BufferPool {
 public:
  // `capacity_pages` > 0. The pool does not own the device.
  BufferPool(PageDevice* device, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pointer to the cached page contents (page_size() bytes),
  // reading from the device on a miss. The pointer stays valid until the
  // page is evicted; callers must not hold it across another Fetch.
  const uint8_t* Fetch(PageId id);

  // Fetch for writing: marks the frame dirty. Same lifetime rules.
  uint8_t* FetchMutable(PageId id);

  // Writes a whole page through the pool (allocating a frame, marking dirty).
  void WritePage(PageId id, const void* data);

  // Flushes all dirty frames to the device.
  void FlushAll();

  // Drops every frame (flushing dirty ones first): a cold start.
  void Clear();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const { return frames_.size(); }
  PageDevice* device() { return device_; }

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  // Moves `id` to the most-recently-used position.
  void Touch(PageId id, Frame& frame);

  // Ensures a free slot exists, evicting the LRU frame if needed.
  void EvictIfFull();

  Frame& GetFrame(PageId id, bool count_read);

  PageDevice* device_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  IoStats stats_;
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_BUFFER_POOL_H_
