#include "storage/disk_model.h"

namespace gauss {

double DiskModel::RandomReadSeconds(uint64_t pages) const {
  return static_cast<double>(pages) *
         (positioning_seconds + TransferSecondsPerPage());
}

double DiskModel::SequentialReadSeconds(uint64_t pages) const {
  if (pages == 0) return 0.0;
  return positioning_seconds +
         static_cast<double>(pages) * TransferSecondsPerPage();
}

}  // namespace gauss
