#ifndef GAUSS_STORAGE_IO_STATS_H_
#define GAUSS_STORAGE_IO_STATS_H_

#include <cstdint>

namespace gauss {

// Counters maintained by the BufferPool. "Physical" reads hit the device
// (these are the paper's "page accesses"); "logical" reads are buffer-pool
// fetches regardless of residency.
struct IoStats {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t evictions = 0;

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.logical_reads = logical_reads - other.logical_reads;
    d.physical_reads = physical_reads - other.physical_reads;
    d.physical_writes = physical_writes - other.physical_writes;
    d.evictions = evictions - other.evictions;
    return d;
  }

  // Merging counters across independent caches (per-shard pools).
  IoStats& operator+=(const IoStats& other) {
    logical_reads += other.logical_reads;
    physical_reads += other.physical_reads;
    physical_writes += other.physical_writes;
    evictions += other.evictions;
    return *this;
  }
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_IO_STATS_H_
