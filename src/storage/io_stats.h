#ifndef GAUSS_STORAGE_IO_STATS_H_
#define GAUSS_STORAGE_IO_STATS_H_

#include <cstdint>

namespace gauss {

// Counters maintained by the BufferPool. "Physical" reads hit the device
// (these are the paper's "page accesses"); "logical" reads are buffer-pool
// fetches regardless of residency.
//
// Prefetch accounting (PageCache::Prefetch): `prefetch_issued` counts hints
// that actually scheduled a device read (hints for resident or already
// in-flight pages are free and uncounted). Each issued prefetch eventually
// resolves exactly once — `prefetch_hits` when a Fetch first lands on the
// prefetched frame, `prefetch_wasted` when the frame is evicted/cleared
// untouched or a synchronous Fetch overtook the in-flight read. After the
// cache quiesces and drops its frames, issued == hits + wasted.
// Prefetch device reads are counted in `physical_reads` when they complete
// (whether the frame installs or a racing Fetch already won), so
// physical_reads stays "device reads", while logical_reads — the paper's
// page-access metric — is untouched by prefetching.
struct IoStats {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.logical_reads = logical_reads - other.logical_reads;
    d.physical_reads = physical_reads - other.physical_reads;
    d.physical_writes = physical_writes - other.physical_writes;
    d.evictions = evictions - other.evictions;
    d.prefetch_issued = prefetch_issued - other.prefetch_issued;
    d.prefetch_hits = prefetch_hits - other.prefetch_hits;
    d.prefetch_wasted = prefetch_wasted - other.prefetch_wasted;
    return d;
  }

  // Merging counters across independent caches (per-shard pools).
  IoStats& operator+=(const IoStats& other) {
    logical_reads += other.logical_reads;
    physical_reads += other.physical_reads;
    physical_writes += other.physical_writes;
    evictions += other.evictions;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    prefetch_wasted += other.prefetch_wasted;
    return *this;
  }
};

}  // namespace gauss

#endif  // GAUSS_STORAGE_IO_STATS_H_
