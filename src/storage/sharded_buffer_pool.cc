#include "storage/sharded_buffer_pool.h"

#include <cstring>

#include "common/macros.h"

namespace gauss {

namespace {

size_t PickShardCount(size_t capacity_pages, size_t requested) {
  if (requested != 0) {
    GAUSS_CHECK_MSG((requested & (requested - 1)) == 0,
                    "num_shards must be a power of two");
    GAUSS_CHECK_MSG(requested <= capacity_pages,
                    "num_shards exceeds capacity_pages: every shard needs "
                    "at least one page of budget");
    return requested;
  }
  // Default: 64 shards, shrunk so every shard can cache at least 2 pages.
  size_t shards = 64;
  while (shards > 1 && capacity_pages / shards < 2) shards /= 2;
  return shards;
}

}  // namespace

ShardedBufferPool::ShardedBufferPool(PageDevice* device, size_t capacity_pages,
                                     size_t num_shards)
    : device_(device),
      capacity_(capacity_pages),
      shard_mask_(0),
      shards_(PickShardCount(capacity_pages, num_shards)) {
  GAUSS_CHECK(device != nullptr);
  GAUSS_CHECK(capacity_pages > 0);
  shard_mask_ = shards_.size() - 1;
  // Split the budget evenly; remainder pages go to the first shards so the
  // total capacity is exact.
  const size_t base = capacity_ / shards_.size();
  const size_t extra = capacity_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = base + (i < extra ? 1 : 0);
    if (shards_[i].capacity == 0) shards_[i].capacity = 1;
  }
}

void ShardedBufferPool::EvictIfFullLocked(Shard& shard) {
  // Evict until strictly below capacity so earlier pin-forced overshoot is
  // reclaimed once the pins are gone, not carried forever.
  auto it = shard.lru.rbegin();
  while (shard.frames.size() >= shard.capacity && it != shard.lru.rend()) {
    auto frame_it = shard.frames.find(*it);
    GAUSS_CHECK(frame_it != shard.frames.end());
    Frame& frame = frame_it->second;
    if (frame.pins.load(std::memory_order_acquire) != 0) {
      ++it;  // pinned frames must stay resident
      continue;
    }
    if (frame.dirty) {
      device_->Write(frame_it->first, frame.data.get());
      physical_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    it = std::make_reverse_iterator(shard.lru.erase(frame.lru_pos));
    shard.frames.erase(frame_it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  // Exhausted the LRU with every frame pinned: grow past the shard budget
  // instead of failing.
}

ShardedBufferPool::Frame& ShardedBufferPool::GetFrameLocked(Shard& shard,
                                                            PageId id,
                                                            bool count_read) {
  if (count_read) logical_reads_.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    shard.lru.erase(it->second.lru_pos);
    shard.lru.push_front(id);
    it->second.lru_pos = shard.lru.begin();
    return it->second;
  }
  EvictIfFullLocked(shard);
  auto [pos, inserted] = shard.frames.try_emplace(id);
  GAUSS_CHECK(inserted);
  Frame& frame = pos->second;
  frame.data = std::make_unique<uint8_t[]>(device_->page_size());
  device_->Read(id, frame.data.get());
  if (count_read) physical_reads_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.push_front(id);
  frame.lru_pos = shard.lru.begin();
  return frame;
}

PageRef ShardedBufferPool::Fetch(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.latch);
  Frame& frame = GetFrameLocked(shard, id, /*count_read=*/true);
  frame.pins.fetch_add(1, std::memory_order_relaxed);
  return PageRef(frame.data.get(), &frame.pins);
}

PageRef ShardedBufferPool::FetchMutable(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.latch);
  Frame& frame = GetFrameLocked(shard, id, /*count_read=*/true);
  frame.dirty = true;
  frame.pins.fetch_add(1, std::memory_order_relaxed);
  return PageRef(frame.data.get(), &frame.pins);
}

void ShardedBufferPool::WritePage(PageId id, const void* data) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.latch);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    EvictIfFullLocked(shard);
    it = shard.frames.try_emplace(id).first;
    Frame& frame = it->second;
    frame.data = std::make_unique<uint8_t[]>(device_->page_size());
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();
  } else {
    shard.lru.erase(it->second.lru_pos);
    shard.lru.push_front(id);
    it->second.lru_pos = shard.lru.begin();
  }
  std::memcpy(it->second.data.get(), data, device_->page_size());
  it->second.dirty = true;
}

void ShardedBufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.latch);
    for (auto& [id, frame] : shard.frames) {
      if (frame.dirty) {
        device_->Write(id, frame.data.get());
        frame.dirty = false;
        physical_writes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ShardedBufferPool::Clear() {
  FlushAll();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.latch);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (it->second.pins.load(std::memory_order_acquire) == 0) {
        shard.lru.erase(it->second.lru_pos);
        it = shard.frames.erase(it);
      } else {
        ++it;
      }
    }
  }
}

IoStats ShardedBufferPool::stats() const {
  IoStats s;
  s.logical_reads = logical_reads_.load(std::memory_order_relaxed);
  s.physical_reads = physical_reads_.load(std::memory_order_relaxed);
  s.physical_writes = physical_writes_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void ShardedBufferPool::ResetStats() {
  logical_reads_.store(0, std::memory_order_relaxed);
  physical_reads_.store(0, std::memory_order_relaxed);
  physical_writes_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

size_t ShardedBufferPool::resident_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.latch);
    total += shard.frames.size();
  }
  return total;
}

}  // namespace gauss
