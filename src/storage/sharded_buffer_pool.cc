#include "storage/sharded_buffer_pool.h"

#include <cstring>

#include "common/macros.h"

namespace gauss {

namespace {

size_t PickShardCount(size_t capacity_pages, size_t requested) {
  if (requested != 0) {
    GAUSS_CHECK_MSG((requested & (requested - 1)) == 0,
                    "num_shards must be a power of two");
    GAUSS_CHECK_MSG(requested <= capacity_pages,
                    "num_shards exceeds capacity_pages: every shard needs "
                    "at least one page of budget");
    return requested;
  }
  // Default: 64 shards, shrunk so every shard can cache at least 2 pages.
  size_t shards = 64;
  while (shards > 1 && capacity_pages / shards < 2) shards /= 2;
  return shards;
}

}  // namespace

ShardedBufferPool::ShardedBufferPool(PageDevice* device, size_t capacity_pages,
                                     size_t num_shards)
    : device_(device),
      capacity_(capacity_pages),
      shard_mask_(0),
      shards_(PickShardCount(capacity_pages, num_shards)) {
  GAUSS_CHECK(device != nullptr);
  GAUSS_CHECK(capacity_pages > 0);
  shard_mask_ = shards_.size() - 1;
  // Split the budget evenly; remainder pages go to the first shards so the
  // total capacity is exact.
  const size_t base = capacity_ / shards_.size();
  const size_t extra = capacity_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = base + (i < extra ? 1 : 0);
    if (shards_[i].capacity == 0) shards_[i].capacity = 1;
  }
}

ShardedBufferPool::~ShardedBufferPool() {
  // A completion callback dereferences `this`; none may be outstanding once
  // the shards start dying.
  WaitForInflightPrefetches();
}

void ShardedBufferPool::WaitForInflightPrefetches() {
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  prefetch_cv_.wait(lock, [this] { return prefetch_inflight_ == 0; });
}

void ShardedBufferPool::InstallPrefetchLocked(Shard& shard, PageId id,
                                              uint64_t permit,
                                              std::unique_ptr<uint8_t[]> data) {
  // Install only with a matching permit: a writer (WritePage/FetchMutable)
  // revokes it because bytes read before the write are stale and must
  // never be installed — even if the writer's own frame has since been
  // evicted — and a newer Prefetch of the page holds a fresh ticket this
  // stale read cannot match. An already-resident frame (a synchronous
  // Fetch overtook the read) also discards the staging buffer. The device
  // performed the read either way, so it counts as physical —
  // physical_reads means "device reads", discarded included.
  const auto permit_it = shard.inflight_prefetch.find(id);
  const bool permitted =
      permit_it != shard.inflight_prefetch.end() && permit_it->second == permit;
  if (permitted) shard.inflight_prefetch.erase(permit_it);
  if (!permitted || shard.frames.find(id) != shard.frames.end()) {
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    physical_reads_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  EvictIfFullLocked(shard);
  auto [pos, inserted] = shard.frames.try_emplace(id);
  GAUSS_CHECK(inserted);
  Frame& frame = pos->second;
  frame.data = std::move(data);
  frame.prefetched = true;
  shard.lru.push_front(id);
  frame.lru_pos = shard.lru.begin();
  physical_reads_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedBufferPool::Prefetch(PageId id) {
  Shard& shard = ShardFor(id);
  uint64_t permit = 0;
  {
    std::lock_guard<std::mutex> lock(shard.latch);
    if (shard.frames.find(id) != shard.frames.end()) return;  // resident
    auto [it, inserted] = shard.inflight_prefetch.try_emplace(id, 0);
    if (!inserted) return;  // a live prefetch is already scheduled
    permit = ++shard.next_permit;
    it->second = permit;
  }
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    ++prefetch_inflight_;
  }
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);

  // The staging buffer travels through the callback; no latch is held while
  // the device reads into it. shared_ptr only because std::function requires
  // copyable captures.
  auto staging = std::make_shared<std::unique_ptr<uint8_t[]>>(
      std::make_unique<uint8_t[]>(device_->page_size()));
  uint8_t* out = staging->get();
  Shard* target = &shard;  // outlives the callback: shards_ never resizes
  device_->ReadAsync(id, out, [this, id, permit, staging, target] {
    {
      std::lock_guard<std::mutex> lock(target->latch);
      InstallPrefetchLocked(*target, id, permit, std::move(*staging));
    }
    // Last touch of pool state: signal under the lock so the destructor
    // cannot win the race between our decrement and its teardown.
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    --prefetch_inflight_;
    if (prefetch_inflight_ == 0) prefetch_cv_.notify_all();
  });
}

void ShardedBufferPool::EvictIfFullLocked(Shard& shard) {
  // Evict until strictly below capacity so earlier pin-forced overshoot is
  // reclaimed once the pins are gone, not carried forever.
  auto it = shard.lru.rbegin();
  while (shard.frames.size() >= shard.capacity && it != shard.lru.rend()) {
    auto frame_it = shard.frames.find(*it);
    GAUSS_CHECK(frame_it != shard.frames.end());
    Frame& frame = frame_it->second;
    if (frame.pins.load(std::memory_order_acquire) != 0) {
      ++it;  // pinned frames must stay resident
      continue;
    }
    if (frame.dirty) {
      device_->Write(frame_it->first, frame.data.get());
      physical_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    if (frame.prefetched) {
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    }
    it = std::make_reverse_iterator(shard.lru.erase(frame.lru_pos));
    shard.frames.erase(frame_it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  // Exhausted the LRU with every frame pinned: grow past the shard budget
  // instead of failing.
}

ShardedBufferPool::Frame& ShardedBufferPool::GetFrameLocked(Shard& shard,
                                                            PageId id,
                                                            bool count_read) {
  if (count_read) logical_reads_.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    if (count_read && it->second.prefetched) {
      it->second.prefetched = false;
      prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.erase(it->second.lru_pos);
    shard.lru.push_front(id);
    it->second.lru_pos = shard.lru.begin();
    return it->second;
  }
  EvictIfFullLocked(shard);
  auto [pos, inserted] = shard.frames.try_emplace(id);
  GAUSS_CHECK(inserted);
  Frame& frame = pos->second;
  frame.data = std::make_unique<uint8_t[]>(device_->page_size());
  device_->Read(id, frame.data.get());
  if (count_read) physical_reads_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.push_front(id);
  frame.lru_pos = shard.lru.begin();
  return frame;
}

PageRef ShardedBufferPool::Fetch(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.latch);
  Frame& frame = GetFrameLocked(shard, id, /*count_read=*/true);
  frame.pins.fetch_add(1, std::memory_order_relaxed);
  return PageRef(frame.data.get(), &frame.pins);
}

PageRef ShardedBufferPool::FetchMutable(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.latch);
  // The caller intends to change the page: revoke any in-flight prefetch's
  // install permit (see InstallPrefetchLocked) so pre-write bytes can never
  // resurface after this frame is evicted.
  shard.inflight_prefetch.erase(id);
  Frame& frame = GetFrameLocked(shard, id, /*count_read=*/true);
  frame.dirty = true;
  frame.pins.fetch_add(1, std::memory_order_relaxed);
  return PageRef(frame.data.get(), &frame.pins);
}

void ShardedBufferPool::WritePage(PageId id, const void* data) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.latch);
  // See FetchMutable: a revoked permit keeps stale pre-write bytes out.
  shard.inflight_prefetch.erase(id);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    EvictIfFullLocked(shard);
    it = shard.frames.try_emplace(id).first;
    Frame& frame = it->second;
    frame.data = std::make_unique<uint8_t[]>(device_->page_size());
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();
  } else {
    // Overwriting a prefetched frame discards the prefetched bytes unread.
    if (it->second.prefetched) {
      it->second.prefetched = false;
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.erase(it->second.lru_pos);
    shard.lru.push_front(id);
    it->second.lru_pos = shard.lru.begin();
  }
  std::memcpy(it->second.data.get(), data, device_->page_size());
  it->second.dirty = true;
}

void ShardedBufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.latch);
    for (auto& [id, frame] : shard.frames) {
      if (frame.dirty) {
        device_->Write(id, frame.data.get());
        frame.dirty = false;
        physical_writes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ShardedBufferPool::Clear() {
  FlushAll();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.latch);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (it->second.pins.load(std::memory_order_acquire) == 0) {
        if (it->second.prefetched) {
          prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.lru.erase(it->second.lru_pos);
        it = shard.frames.erase(it);
      } else {
        ++it;
      }
    }
  }
}

IoStats ShardedBufferPool::stats() const {
  IoStats s;
  s.logical_reads = logical_reads_.load(std::memory_order_relaxed);
  s.physical_reads = physical_reads_.load(std::memory_order_relaxed);
  s.physical_writes = physical_writes_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetch_wasted = prefetch_wasted_.load(std::memory_order_relaxed);
  return s;
}

void ShardedBufferPool::ResetStats() {
  logical_reads_.store(0, std::memory_order_relaxed);
  physical_reads_.store(0, std::memory_order_relaxed);
  physical_writes_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  prefetch_issued_.store(0, std::memory_order_relaxed);
  prefetch_hits_.store(0, std::memory_order_relaxed);
  prefetch_wasted_.store(0, std::memory_order_relaxed);
}

size_t ShardedBufferPool::resident_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.latch);
    total += shard.frames.size();
  }
  return total;
}

}  // namespace gauss
