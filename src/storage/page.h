#ifndef GAUSS_STORAGE_PAGE_H_
#define GAUSS_STORAGE_PAGE_H_

#include <cstdint>

namespace gauss {

// Identifier of a fixed-size page inside a PageDevice.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

// Default page size. The paper's evaluation ran on 2006-era hardware where
// 8 KiB index pages were typical; page size is configurable everywhere.
inline constexpr uint32_t kDefaultPageSize = 8192;

}  // namespace gauss

#endif  // GAUSS_STORAGE_PAGE_H_
