#include "scan/seq_scan.h"

#include <algorithm>
#include <cmath>

#include "common/log_sum_exp.h"
#include "common/macros.h"

namespace gauss {

SeqScan::SeqScan(const PfvFile* file, SigmaPolicy policy)
    : file_(file), policy_(policy) {
  GAUSS_CHECK(file != nullptr);
}

MliqResult SeqScan::QueryMliq(const Pfv& q, size_t k) const {
  GAUSS_CHECK(q.dim() == file_->dim());
  GAUSS_CHECK(k > 0);
  MliqResult result;

  struct Candidate {
    uint64_t id;
    double log_density;
  };
  std::vector<Candidate> top;  // sorted descending by log_density
  LogSumExp denominator;

  file_->ForEach([&](const Pfv& v) {
    const double log_density = PfvJointLogDensity(v, q, policy_);
    denominator.Add(log_density);
    ++result.stats.objects_evaluated;
    if (top.size() == k && log_density <= top.back().log_density) return;
    const Candidate c{v.id, log_density};
    auto pos = std::lower_bound(top.begin(), top.end(), c,
                                [](const Candidate& a, const Candidate& b) {
                                  return a.log_density > b.log_density;
                                });
    top.insert(pos, c);
    if (top.size() > k) top.pop_back();
  });

  const double log_total = denominator.LogTotal();
  for (const Candidate& c : top) {
    IdentificationResult item;
    item.id = c.id;
    item.log_density = c.log_density;
    item.probability =
        std::isinf(log_total) ? 0.0 : std::exp(c.log_density - log_total);
    item.probability_error = 0.0;
    result.items.push_back(item);
  }
  result.stats.denominator_lo = result.stats.denominator_hi =
      std::isinf(log_total) ? 0.0 : 1.0;  // exact (scale-free marker)
  return result;
}

TiqResult SeqScan::QueryTiq(const Pfv& q, double threshold) const {
  GAUSS_CHECK(q.dim() == file_->dim());
  GAUSS_CHECK(threshold > 0.0 && threshold <= 1.0);
  TiqResult result;

  // Pass 1: the Bayes denominator.
  LogSumExp denominator;
  file_->ForEach([&](const Pfv& v) {
    denominator.Add(PfvJointLogDensity(v, q, policy_));
    ++result.stats.objects_evaluated;
  });
  const double log_total = denominator.LogTotal();
  if (std::isinf(log_total)) return result;  // all densities underflowed

  // Pass 2: report qualifying objects.
  file_->ForEach([&](const Pfv& v) {
    const double log_density = PfvJointLogDensity(v, q, policy_);
    ++result.stats.objects_evaluated;
    const double probability = std::exp(log_density - log_total);
    if (probability >= threshold) {
      IdentificationResult item;
      item.id = v.id;
      item.log_density = log_density;
      item.probability = probability;
      item.probability_error = 0.0;
      result.items.push_back(item);
    }
  });
  std::sort(result.items.begin(), result.items.end(),
            [](const IdentificationResult& a, const IdentificationResult& b) {
              return a.probability > b.probability;
            });
  return result;
}

std::vector<uint64_t> SeqScan::QueryKnnMeans(const Pfv& q, size_t k) const {
  GAUSS_CHECK(q.dim() == file_->dim());
  GAUSS_CHECK(k > 0);
  struct Neighbor {
    uint64_t id;
    double dist2;
  };
  std::vector<Neighbor> top;  // ascending by distance
  file_->ForEach([&](const Pfv& v) {
    const double dist2 = MeanSquaredDistance(v, q);
    if (top.size() == k && dist2 >= top.back().dist2) return;
    const Neighbor n{v.id, dist2};
    auto pos = std::lower_bound(top.begin(), top.end(), n,
                                [](const Neighbor& a, const Neighbor& b) {
                                  return a.dist2 < b.dist2;
                                });
    top.insert(pos, n);
    if (top.size() > k) top.pop_back();
  });
  std::vector<uint64_t> ids;
  ids.reserve(top.size());
  for (const Neighbor& n : top) ids.push_back(n.id);
  return ids;
}

}  // namespace gauss
