#ifndef GAUSS_SCAN_SEQ_SCAN_H_
#define GAUSS_SCAN_SEQ_SCAN_H_

#include <cstdint>
#include <vector>

#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "math/sigma_policy.h"
#include "pfv/pfv.h"
#include "pfv/pfv_file.h"

namespace gauss {

// Exact identification queries on top of a sequential scan of an unordered
// paged pfv file (paper Section 4). This is both the reference baseline of
// the evaluation and the correctness oracle for the Gauss-tree tests.
class SeqScan {
 public:
  // `file` must outlive the scanner.
  explicit SeqScan(const PfvFile* file,
                   SigmaPolicy policy = SigmaPolicy::kConvolution);

  // k-most-likely identification query: one pass, keeping the k densest
  // objects; probabilities from the full density sum (computed in the same
  // pass with a numerically robust accumulator).
  MliqResult QueryMliq(const Pfv& q, size_t k) const;

  // Threshold identification query: two passes as described in the paper —
  // the first accumulates the total density (Bayes denominator), the second
  // reports every object at or above the threshold.
  TiqResult QueryTiq(const Pfv& q, double threshold) const;

  // Euclidean k-nearest-neighbour query on the mean vectors: the
  // conventional-similarity-search contender of the effectiveness
  // experiment (paper Figure 6).
  std::vector<uint64_t> QueryKnnMeans(const Pfv& q, size_t k) const;

  const PfvFile* file() const { return file_; }
  SigmaPolicy policy() const { return policy_; }

 private:
  const PfvFile* file_;
  SigmaPolicy policy_;
};

}  // namespace gauss

#endif  // GAUSS_SCAN_SEQ_SCAN_H_
