#include "math/kernels.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

#include "math/kernels_simd.h"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

// The scalar reference backend, the portable transcendentals every backend
// shares, and the runtime dispatch. The SIMD backends live in their own
// translation units (kernels_avx2.cc, kernels_avx512.cc) because they need
// per-file -m flags; the NEON backend compiles here (NEON is baseline on
// aarch64, no extra flags needed).
//
// This file (like all of src/) is compiled with -ffp-contract=off: the
// operation sequences below are the bit-level contract the SIMD lanes
// mirror, and FMA contraction would change their results.

namespace gauss::kernels {

namespace {

// ------------------------- portable log (fdlibm) ---------------------------
//
// The classic table-free Sun fdlibm e_log.c kernel, restructured so the
// main path is branch-free: exponent/mantissa split via one integer
// subtraction (the musl trick: subtracting OFF centers the mantissa in
// [sqrt(1/2), sqrt(2))), then the log(1+f) polynomial in s = f/(2+f).
// Accuracy ~1 ulp. Valid for normal finite positive x; everything else
// (zero, negatives, denormals, inf, NaN) detours through LogSpecial.
// All constants live in kernels_simd.h so the vector lanes cannot drift.

using simd::kLg1;
using simd::kLg2;
using simd::kLg3;
using simd::kLg4;
using simd::kLg5;
using simd::kLg6;
using simd::kLg7;
using simd::kLn2Hi;
using simd::kLn2Lo;
using simd::kLogOff;
using simd::kMaxFinite;
using simd::kMinNormal;

// `kbias` folds the 2^54 pre-scale of denormal inputs back out of the
// exponent (the caller passes -54 after multiplying x by 0x1p54).
double LogMain(double x, int64_t kbias) {
  const int64_t u = std::bit_cast<int64_t>(x);
  const int64_t tmp = u - kLogOff;
  const int64_t k = (tmp >> 52) + kbias;  // arithmetic shift
  const int64_t mbits = u - (tmp & simd::kExpFieldMask);
  const double m = std::bit_cast<double>(mbits);  // in [sqrt(1/2), sqrt(2))
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double ff = f * f;
  const double hfsq = 0.5 * ff;
  const double dk = static_cast<double>(k);
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

double LogSpecial(double x) {
  if (std::isnan(x)) return x + x;  // quiets signaling NaNs, keeps payload
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(x)) return x;
  // Denormal: normalize by 2^54, fold the scale back through the exponent.
  return LogMain(x * 0x1p54, -54);
}

// ------------------------- portable exp (fdlibm) ---------------------------
//
// fdlibm e_exp.c: argument reduction r = x - n*ln2 with a hi/lo split of
// ln2, a degree-5 Remez polynomial for the correction term c, the
// reconstruction y = 1 - ((lo - r*c/(2-c)) - hi), then a 2^n exponent
// scale. n comes from round-to-nearest-even (the default FP environment;
// the SIMD lanes use the nearest-even rounding intrinsic, so a process
// running under a changed rounding mode would break bit-identity — nothing
// in this codebase changes it). Accuracy ~1 ulp. The main path covers
// |x| <= 700, where the result and every intermediate stay normal;
// borderline finite inputs take ExpSpecial's two-step scale.

using simd::kExpMainCut;
using simd::kExpP1;
using simd::kExpP2;
using simd::kExpP3;
using simd::kExpP4;
using simd::kExpP5;
using simd::kInvLn2;

constexpr double kExpOverflow = 709.782712893383973096;   // > this: +inf
constexpr double kExpUnderflow = -745.133219101941108420;  // < this: +0

struct ExpReduced {
  double y;   // exp(r), r = x - n*ln2
  double nd;  // n as a double (integral)
};

ExpReduced ExpCore(double x) {
  const double nd = std::nearbyint(x * kInvLn2);
  const double hi = x - nd * kLn2Hi;
  const double lo = nd * kLn2Lo;
  const double r = hi - lo;
  const double t = r * r;
  const double c =
      r - t * (kExpP1 +
               t * (kExpP2 + t * (kExpP3 + t * (kExpP4 + t * kExpP5))));
  const double y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
  return {y, nd};
}

// 2^n for n in [-1022, 1023], built directly as an exponent bit pattern.
double Pow2(int64_t n) {
  return std::bit_cast<double>(static_cast<uint64_t>(n + 1023) << 52);
}

double ExpMain(double x) {
  const ExpReduced red = ExpCore(x);
  // |x| <= 700 keeps n in [-1011, 1011]: the scale and the product are
  // normal, so one rounding at the final multiply.
  const int64_t n = static_cast<int64_t>(red.nd);
  return red.y * Pow2(n);
}

double ExpSpecial(double x) {
  if (std::isnan(x)) return x + x;
  if (x > kExpOverflow) return std::numeric_limits<double>::infinity();
  if (x < kExpUnderflow) return 0.0;
  // Borderline finite: same reduction, but the scale is applied in two
  // normal-range halves so the single final rounding lands correctly in
  // the denormal (or overflow) range.
  const ExpReduced red = ExpCore(x);
  const int64_t n = static_cast<int64_t>(red.nd);
  const int64_t n1 = n >> 1;  // arithmetic: n1 + n2 == n
  const int64_t n2 = n - n1;
  return (red.y * Pow2(n1)) * Pow2(n2);
}

// ----------------------------- scalar backend ------------------------------

void ScalarJoint(const JointBatchArgs& args, double* out_log) {
  detail::JointLogDensityRange(args, 0, args.n, out_log);
}

void ScalarHull(const HullBatchArgs& args, double* out_log_upper,
                double* out_log_lower) {
  detail::HullBoundsRange(args, 0, args.n, out_log_upper, out_log_lower);
}

void ScalarExpShift(const double* log_in, double log_shift, size_t n,
                    double* out) {
  detail::ExpShiftRange(log_in, log_shift, 0, n, out);
}

const KernelBackend kScalarBackend = {"scalar", ScalarJoint, ScalarHull,
                                      ScalarExpShift};

}  // namespace

double PortableLog(double x) {
  // One predicate covers every special: the comparison is false for NaN,
  // for +-0, negatives and denormals (< min normal), and for +inf.
  if (x >= kMinNormal && x <= kMaxFinite) return LogMain(x, 0);
  return LogSpecial(x);
}

double PortableExp(double x) {
  // fabs comparison false for NaN; inf and overflow/underflow-adjacent
  // magnitudes detour so the main path never manufactures a denormal.
  if (std::fabs(x) <= kExpMainCut) return ExpMain(x);
  return ExpSpecial(x);
}

namespace detail {

void JointLogDensityRange(const JointBatchArgs& args, size_t j0, size_t j1,
                          double* out_log) {
  for (size_t j = j0; j < j1; ++j) {
    double acc = 0.0;
    for (size_t i = 0; i < args.dim; ++i) {
      const double sigma = CombineSigma(args.sigma[i * args.stride + j],
                                        args.sigma_q[i], args.policy);
      acc += GaussianLogPdf(args.mu_q[i], args.mu[i * args.stride + j], sigma);
    }
    out_log[j] = acc;
  }
}

void HullBoundsRange(const HullBatchArgs& args, size_t j0, size_t j1,
                     double* out_log_upper, double* out_log_lower) {
  for (size_t j = j0; j < j1; ++j) {
    double upper = 0.0;
    double lower = 0.0;
    for (size_t i = 0; i < args.dim; ++i) {
      DimBounds b;
      b.mu_lo = args.mu_lo[i * args.stride + j];
      b.mu_hi = args.mu_hi[i * args.stride + j];
      b.sigma_lo = args.sigma_lo[i * args.stride + j];
      b.sigma_hi = args.sigma_hi[i * args.stride + j];
      const DimBounds adj =
          QueryAdjustedBounds(b, args.sigma_q[i], args.policy);
      upper += LogUpperHull(args.mu_q[i], adj);
      lower += LogLowerHull(args.mu_q[i], adj);
    }
    out_log_upper[j] = upper;
    out_log_lower[j] = lower;
  }
}

void ExpShiftRange(const double* log_in, double log_shift, size_t j0,
                   size_t j1, double* out) {
  for (size_t j = j0; j < j1; ++j) {
    out[j] = PortableExp(log_in[j] - log_shift);
  }
}

}  // namespace detail

const KernelBackend& ScalarBackend() { return kScalarBackend; }

// SIMD backends: each Get* returns nullptr when its TU was compiled without
// the corresponding instruction set (non-x86 builds, or a toolchain that
// cannot target it). Declared here, defined in kernels_avx2.cc /
// kernels_avx512.cc.
const KernelBackend* GetAvx2Backend();
const KernelBackend* GetAvx512Backend();

#if defined(__aarch64__)
// NEON is baseline on aarch64, so its backend compiles right here with the
// default flags — 2 doubles per vector. Unlike x86's min/max instructions,
// vminq/vmaxq have their own NaN semantics, so MinStd/MaxStd are spelled as
// compare+select, which reproduces std::min/std::max exactly (NaN compares
// false, so the first argument comes through).
namespace {

struct NeonOps {
  using V = float64x2_t;
  using VI = int64x2_t;
  static constexpr size_t kWidth = 2;
  static V Load(const double* p) { return vld1q_f64(p); }
  static void Store(double* p, V v) { vst1q_f64(p, v); }
  static V Set1(double x) { return vdupq_n_f64(x); }
  static VI Set1I(int64_t x) { return vdupq_n_s64(x); }
  static V Add(V a, V b) { return vaddq_f64(a, b); }
  static V Sub(V a, V b) { return vsubq_f64(a, b); }
  static V Mul(V a, V b) { return vmulq_f64(a, b); }
  static V Div(V a, V b) { return vdivq_f64(a, b); }
  static V Sqrt(V a) { return vsqrtq_f64(a); }
  static V Abs(V a) { return vabsq_f64(a); }
  static V RoundNearest(V a) { return vrndnq_f64(a); }
  static V MinStd(V a, V b) { return vbslq_f64(vcltq_f64(b, a), b, a); }
  static V MaxStd(V a, V b) { return vbslq_f64(vcltq_f64(a, b), b, a); }
  static VI CastI(V a) { return vreinterpretq_s64_f64(a); }
  static V CastD(VI a) { return vreinterpretq_f64_s64(a); }
  static VI Add64(VI a, VI b) { return vaddq_s64(a, b); }
  static VI Sub64(VI a, VI b) { return vsubq_s64(a, b); }
  static VI And64(VI a, VI b) { return vandq_s64(a, b); }
  static VI Sra52(VI a) { return vshrq_n_s64(a, 52); }
  static VI Shl52(VI a) { return vshlq_n_s64(a, 52); }
  static V I64ToF64(VI a) { return vcvtq_f64_s64(a); }
  static bool AllLanes(uint64x2_t m) {
    return (vgetq_lane_u64(m, 0) & vgetq_lane_u64(m, 1)) ==
           ~static_cast<uint64_t>(0);
  }
  static bool AllInRange(V s) {
    return AllLanes(vandq_u64(vcgeq_f64(s, Set1(simd::kMinNormal)),
                              vcleq_f64(s, Set1(simd::kMaxFinite))));
  }
  static bool AllAbsLe700(V x) {
    return AllLanes(vcleq_f64(Abs(x), Set1(simd::kExpMainCut)));
  }
  static bool AllNotNan(V x) { return AllLanes(vceqq_f64(x, x)); }
};

void NeonJoint(const JointBatchArgs& args, double* out_log) {
  simd::JointBatchImpl<NeonOps>(args, out_log);
}
void NeonHull(const HullBatchArgs& args, double* out_log_upper,
              double* out_log_lower) {
  simd::HullBatchImpl<NeonOps>(args, out_log_upper, out_log_lower);
}
void NeonExpShift(const double* log_in, double log_shift, size_t n,
                  double* out) {
  simd::ExpShiftImpl<NeonOps>(log_in, log_shift, n, out);
}

const KernelBackend kNeonBackend = {"neon", NeonJoint, NeonHull,
                                    NeonExpShift};

}  // namespace

const KernelBackend* GetNeonBackend() { return &kNeonBackend; }
#else
const KernelBackend* GetNeonBackend() { return nullptr; }
#endif

const std::vector<const KernelBackend*>& CompiledBackends() {
  static const std::vector<const KernelBackend*> backends = [] {
    std::vector<const KernelBackend*> list;
    list.push_back(&kScalarBackend);
    if (const KernelBackend* b = GetAvx2Backend()) list.push_back(b);
    if (const KernelBackend* b = GetAvx512Backend()) list.push_back(b);
    if (const KernelBackend* b = GetNeonBackend()) list.push_back(b);
    return list;
  }();
  return backends;
}

bool Runnable(const KernelBackend& backend) {
  const std::string_view name(backend.name);
  if (name == "scalar" || name == "neon") return true;  // baseline ISAs
#if defined(__x86_64__) || defined(__i386__)
  if (name == "avx2") return __builtin_cpu_supports("avx2") != 0;
  if (name == "avx512") {
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
  }
#endif
  return false;
}

const KernelBackend& ActiveBackend() {
  static const KernelBackend* active = [] {
    const char* force = std::getenv("GAUSS_FORCE_SCALAR");
    if (force != nullptr && force[0] != '\0' &&
        !(force[0] == '0' && force[1] == '\0')) {
      return &kScalarBackend;
    }
    // Widest runnable backend wins; CompiledBackends() lists scalar first
    // and the SIMD backends in increasing width.
    const KernelBackend* best = &kScalarBackend;
    for (const KernelBackend* b : CompiledBackends()) {
      if (Runnable(*b)) best = b;
    }
    return best;
  }();
  return *active;
}

}  // namespace gauss::kernels
