#ifndef GAUSS_MATH_KERNELS_H_
#define GAUSS_MATH_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/gaussian.h"
#include "math/hull.h"
#include "math/sigma_policy.h"

// Batch scoring kernels for the node-level query hot path: one query pfv
// against all entries of one node per call, over an SoA (structure-of-
// arrays) view of the node, runtime-dispatched across SIMD backends.
//
// The contract (documented in src/math/README.md, enforced by
// tests/kernel_test.cc): every compiled backend is BIT-IDENTICAL to the
// scalar reference backend on every input. The scalar reference, in turn,
// is the repo's existing scalar math (GaussianLogPdf / LogUpperHull /
// LogLowerHull looped over entries), which is what the seq-scan oracles,
// the shard-coordinator sketch planning, and the delta scans also execute —
// so answers cannot depend on which backend a machine dispatches to.
//
// Bit-identity across scalar and SIMD is only achievable with transcendental
// functions whose operation sequence is explicit and lane-mirrorable, so the
// kernels use PortableLog/PortableExp (fdlibm-style branch-free polynomial
// evaluations, defined in kernels.cc) instead of libm's log/exp, and every
// translation unit of ours compiles with -ffp-contract=off so the compiler
// cannot contract a*b+c into an FMA in one place but not another. Values
// may differ from libm by ~1-2 ulp; they do not differ between backends.
namespace gauss::kernels {

// Widest vector width (doubles) any backend uses; SoA plane strides are
// padded to a multiple of this so every plane starts at the same offset
// pattern regardless of entry count. Kernels never READ the padding (see
// the concurrency note on JointBatchArgs), padding only rounds the layout.
inline constexpr size_t kMaxLanes = 8;

inline constexpr size_t PadEntries(size_t n) {
  return (n + kMaxLanes - 1) / kMaxLanes * kMaxLanes;
}

// One batch joint-density evaluation (paper Lemma 1, summed over dim): a
// query (mu_q, sigma_q) against n entries stored as dim mu-planes and dim
// sigma-planes of `stride` doubles each:
//   entry j's dimension i lives at mu[i * stride + j] / sigma[i * stride + j].
//
// Concurrency contract: kernels read ONLY plane elements [0, n) — never the
// padding up to `stride` — because DeltaTree's writer concurrently fills
// slot n while readers scan the published prefix [0, n). A full-width block
// is used while j + width <= n; the tail runs through the scalar reference.
struct JointBatchArgs {
  const double* mu = nullptr;       // dim planes of `stride` doubles
  const double* sigma = nullptr;    // dim planes of `stride` doubles
  size_t stride = 0;                // >= n; plane i starts at i * stride
  size_t n = 0;                     // entries to score
  size_t dim = 0;
  const double* mu_q = nullptr;     // dim doubles
  const double* sigma_q = nullptr;  // dim doubles
  SigmaPolicy policy = SigmaPolicy::kConvolution;
};

// One batch hull-bound evaluation (paper Lemmas 2/3 on the query-adjusted
// bounds, summed over dim): the query against n inner-node child MBRs
// stored as four plane groups (mu_lo, mu_hi, sigma_lo, sigma_hi), each dim
// planes of `stride` doubles. Same layout and concurrency contract as
// JointBatchArgs.
//
// Precondition (inherited from the hull functions' domain, DimBounds::
// Valid()): every entry/dimension satisfies mu_lo <= mu_hi and
// 0 < sigma_lo <= sigma_hi — the invariant ComputeBounds establishes for
// every finalized node. The bit-identity contract holds on that domain
// (plus NaN anywhere, which every backend routes through the scalar
// reference); on inverted bounds the branchy scalar hull and the branchless
// SIMD clamp legitimately diverge, so such inputs are out of contract.
struct HullBatchArgs {
  const double* mu_lo = nullptr;
  const double* mu_hi = nullptr;
  const double* sigma_lo = nullptr;
  const double* sigma_hi = nullptr;
  size_t stride = 0;
  size_t n = 0;
  size_t dim = 0;
  const double* mu_q = nullptr;
  const double* sigma_q = nullptr;
  SigmaPolicy policy = SigmaPolicy::kConvolution;
};

// One dispatchable backend. Function pointers rather than virtuals: the
// table is static data, and the active backend is resolved once.
struct KernelBackend {
  const char* name = "";  // "scalar", "avx2", "avx512", "neon"

  // out_log[j] = joint log density of the query against entry j.
  void (*joint_log_density)(const JointBatchArgs& args, double* out_log);

  // out_log_upper[j] / out_log_lower[j] = joint log upper/lower hull of the
  // query against child MBR j.
  void (*hull_bounds)(const HullBatchArgs& args, double* out_log_upper,
                      double* out_log_lower);

  // out[j] = PortableExp(log_in[j] - log_shift): rebasing log scores into a
  // traversal's reference scale (exp(log - log_ref) in [0, 1]).
  void (*exp_shift)(const double* log_in, double log_shift, size_t n,
                    double* out);
};

// The always-compiled reference backend (plain scalar loops over the
// existing per-entry math).
const KernelBackend& ScalarBackend();

// Every backend compiled into this binary, scalar first. A compiled backend
// may still not be runnable on this CPU (an AVX-512 build on an AVX2-only
// machine) — check Runnable() before calling it directly.
const std::vector<const KernelBackend*>& CompiledBackends();
bool Runnable(const KernelBackend& backend);

// The backend queries run on: the widest compiled backend this CPU supports,
// unless the environment sets GAUSS_FORCE_SCALAR (any value but "0"), which
// pins the scalar reference — the CI lane that keeps it from rotting.
// Resolved once per process.
const KernelBackend& ActiveBackend();

// Entry points the query path calls; they dispatch to ActiveBackend().
inline void JointLogDensityBatch(const JointBatchArgs& args, double* out_log) {
  ActiveBackend().joint_log_density(args, out_log);
}
inline void HullIntegralBoundsBatch(const HullBatchArgs& args,
                                    double* out_log_upper,
                                    double* out_log_lower) {
  ActiveBackend().hull_bounds(args, out_log_upper, out_log_lower);
}
inline void ExpShiftBatch(const double* log_in, double log_shift, size_t n,
                          double* out) {
  ActiveBackend().exp_shift(log_in, log_shift, n, out);
}

// Portable transcendentals (kernels.cc): branch-free-in-the-main-path
// fdlibm-style log/exp whose operation sequence the SIMD backends mirror
// op for op. Within ~1-2 ulp of a correctly rounded result over the full
// double range, with IEEE special-case semantics (log: +-0 -> -inf,
// negative -> NaN, +inf -> +inf, NaN propagates; exp: overflow -> +inf,
// underflow -> +0 through gradual denormals, NaN propagates).
double PortableLog(double x);
double PortableExp(double x);

// log N(x; mu, sigma) with the portable log — the shared per-dimension
// term of every kernel above AND of the scalar GaussianLogPdf (gaussian.cc
// delegates here), which is what makes tree answers independent of the
// dispatched backend. Inline so each TU (all compiled with
// -ffp-contract=off) evaluates the identical operation sequence.
inline double PortableGaussLogPdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  const double zz = z * z;
  return (-0.5 * zz - PortableLog(sigma)) - kLogSqrt2Pi;
}

namespace detail {

// Scalar reference ranges over [j0, j1) of a batch — the tail path of every
// SIMD backend and the whole body of the scalar backend. Implemented as
// loops over the legacy scalar functions (GaussianLogPdf, LogUpperHull,
// LogLowerHull), so "bit-identical to scalar" means bit-identical to what
// the rest of the system computes.
void JointLogDensityRange(const JointBatchArgs& args, size_t j0, size_t j1,
                          double* out_log);
void HullBoundsRange(const HullBatchArgs& args, size_t j0, size_t j1,
                     double* out_log_upper, double* out_log_lower);
void ExpShiftRange(const double* log_in, double log_shift, size_t j0,
                   size_t j1, double* out);

}  // namespace detail

}  // namespace gauss::kernels

#endif  // GAUSS_MATH_KERNELS_H_
