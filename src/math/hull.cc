#include "math/hull.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "math/gaussian.h"

namespace gauss {

namespace {

// Resolves Lemma 2's case analysis to the (mu, sigma) pair whose Gaussian is
// maximal at x. Returns {mu, sigma} of the maximizing Gaussian.
struct MuSigma {
  double mu;
  double sigma;
};

MuSigma ArgUpperHull(double x, const DimBounds& b) {
  GAUSS_DCHECK(b.Valid());
  if (x < b.mu_lo) {
    // Left of the mu range: the best mean is mu_lo; the best sigma is
    // |mu_lo - x| clamped into [sigma_lo, sigma_hi] (cases I-III).
    const double dist = b.mu_lo - x;
    return {b.mu_lo, std::clamp(dist, b.sigma_lo, b.sigma_hi)};
  }
  if (x > b.mu_hi) {
    // Symmetric cases V-VII.
    const double dist = x - b.mu_hi;
    return {b.mu_hi, std::clamp(dist, b.sigma_lo, b.sigma_hi)};
  }
  // Case IV: a Gaussian can be centered on x; steepest wins.
  return {x, b.sigma_lo};
}

}  // namespace

double UpperHull(double x, const DimBounds& b) {
  const MuSigma best = ArgUpperHull(x, b);
  return GaussianPdf(x, best.mu, best.sigma);
}

double LogUpperHull(double x, const DimBounds& b) {
  const MuSigma best = ArgUpperHull(x, b);
  return GaussianLogPdf(x, best.mu, best.sigma);
}

double LowerHull(double x, const DimBounds& b) {
  GAUSS_DCHECK(b.Valid());
  const double a = GaussianPdf(x, b.mu_lo, b.sigma_lo);
  const double c = GaussianPdf(x, b.mu_lo, b.sigma_hi);
  const double d = GaussianPdf(x, b.mu_hi, b.sigma_lo);
  const double e = GaussianPdf(x, b.mu_hi, b.sigma_hi);
  return std::min(std::min(a, c), std::min(d, e));
}

double LogLowerHull(double x, const DimBounds& b) {
  GAUSS_DCHECK(b.Valid());
  const double a = GaussianLogPdf(x, b.mu_lo, b.sigma_lo);
  const double c = GaussianLogPdf(x, b.mu_lo, b.sigma_hi);
  const double d = GaussianLogPdf(x, b.mu_hi, b.sigma_lo);
  const double e = GaussianLogPdf(x, b.mu_hi, b.sigma_hi);
  return std::min(std::min(a, c), std::min(d, e));
}

DimBounds QueryAdjustedBounds(const DimBounds& b, double sigma_q,
                              SigmaPolicy policy) {
  DimBounds adjusted = b;
  adjusted.sigma_lo = CombineSigma(b.sigma_lo, sigma_q, policy);
  adjusted.sigma_hi = CombineSigma(b.sigma_hi, sigma_q, policy);
  return adjusted;
}

double JointLogUpperHull(const DimBounds* bounds, const double* mu_q,
                         const double* sigma_q, size_t d, SigmaPolicy policy) {
  double log_hull = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const DimBounds adjusted = QueryAdjustedBounds(bounds[i], sigma_q[i], policy);
    log_hull += LogUpperHull(mu_q[i], adjusted);
  }
  return log_hull;
}

double JointLogLowerHull(const DimBounds* bounds, const double* mu_q,
                         const double* sigma_q, size_t d, SigmaPolicy policy) {
  double log_hull = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const DimBounds adjusted = QueryAdjustedBounds(bounds[i], sigma_q[i], policy);
    log_hull += LogLowerHull(mu_q[i], adjusted);
  }
  return log_hull;
}

}  // namespace gauss
