#include "math/kernels.h"

// AVX-512 backend: 8 doubles per vector. This file alone is compiled with
// -mavx512f -mavx512dq (CMakeLists set_source_files_properties); dispatch
// requires both CPU features (DQ supplies vcvtqq2pd and the 512-bit FP
// bitwise ops). Without the flags the TU collapses to a null
// GetAvx512Backend().

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include "math/kernels_simd.h"

namespace gauss::kernels {

namespace {

struct Avx512Ops {
  using V = __m512d;
  using VI = __m512i;
  static constexpr size_t kWidth = 8;
  static V Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V Set1(double x) { return _mm512_set1_pd(x); }
  static VI Set1I(int64_t x) { return _mm512_set1_epi64(x); }
  static V Add(V a, V b) { return _mm512_add_pd(a, b); }
  static V Sub(V a, V b) { return _mm512_sub_pd(a, b); }
  static V Mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V Div(V a, V b) { return _mm512_div_pd(a, b); }
  static V Sqrt(V a) { return _mm512_sqrt_pd(a); }
  // Spelled as an explicit and-mask: _mm512_abs_pd had a broken prototype
  // in some GCC header versions.
  static V Abs(V a) {
    return _mm512_and_pd(a, CastD(Set1I(0x7fffffffffffffffLL)));
  }
  static V RoundNearest(V a) {
    return _mm512_roundscale_pd(a,
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  // Same swapped-operand trick as AVX2: vminpd/vmaxpd return the second
  // source on NaN (and on +-0 ties), which with (b, a) reproduces
  // std::min/std::max exactly.
  static V MinStd(V a, V b) { return _mm512_min_pd(b, a); }
  static V MaxStd(V a, V b) { return _mm512_max_pd(b, a); }
  static VI CastI(V a) { return _mm512_castpd_si512(a); }
  static V CastD(VI a) { return _mm512_castsi512_pd(a); }
  static VI Add64(VI a, VI b) { return _mm512_add_epi64(a, b); }
  static VI Sub64(VI a, VI b) { return _mm512_sub_epi64(a, b); }
  static VI And64(VI a, VI b) { return _mm512_and_si512(a, b); }
  static VI Shl52(VI a) { return _mm512_slli_epi64(a, 52); }
  static VI Sra52(VI a) { return _mm512_srai_epi64(a, 52); }
  static V I64ToF64(VI a) { return _mm512_cvtepi64_pd(a); }
  static bool AllInRange(V s) {
    const __mmask8 ge =
        _mm512_cmp_pd_mask(s, Set1(simd::kMinNormal), _CMP_GE_OQ);
    const __mmask8 le =
        _mm512_cmp_pd_mask(s, Set1(simd::kMaxFinite), _CMP_LE_OQ);
    return (ge & le) == 0xff;
  }
  static bool AllAbsLe700(V x) {
    return _mm512_cmp_pd_mask(Abs(x), Set1(simd::kExpMainCut), _CMP_LE_OQ) ==
           0xff;
  }
  static bool AllNotNan(V x) {
    return _mm512_cmp_pd_mask(x, x, _CMP_EQ_OQ) == 0xff;
  }
};

void Avx512Joint(const JointBatchArgs& args, double* out_log) {
  simd::JointBatchImpl<Avx512Ops>(args, out_log);
}
void Avx512Hull(const HullBatchArgs& args, double* out_log_upper,
                double* out_log_lower) {
  simd::HullBatchImpl<Avx512Ops>(args, out_log_upper, out_log_lower);
}
void Avx512ExpShift(const double* log_in, double log_shift, size_t n,
                    double* out) {
  simd::ExpShiftImpl<Avx512Ops>(log_in, log_shift, n, out);
}

const KernelBackend kAvx512Backend = {"avx512", Avx512Joint, Avx512Hull,
                                      Avx512ExpShift};

}  // namespace

const KernelBackend* GetAvx512Backend() { return &kAvx512Backend; }

}  // namespace gauss::kernels

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace gauss::kernels {
const KernelBackend* GetAvx512Backend() { return nullptr; }
}  // namespace gauss::kernels

#endif
