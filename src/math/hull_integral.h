#ifndef GAUSS_MATH_HULL_INTEGRAL_H_
#define GAUSS_MATH_HULL_INTEGRAL_H_

#include <cstddef>

#include "math/hull.h"

namespace gauss {

// How the Gaussian-tail portions of the hull integral are evaluated.
enum class IntegralMethod {
  // Exact, via std::erf (the tail areas collapse to standard-normal CDF
  // values, see the derivation in hull_integral.cc).
  kErf,
  // The paper's choice: sigmoid approximation of the standard normal CDF by a
  // degree-5 polynomial (faster in 2006-era JVMs; kept as an ablation).
  kSigmoidPoly5,
};

// Integral over the whole real line of the one-dimensional upper hull
// N_hat(x) for the given bounds (paper Section 5.3). This is the node's
// "access probability" mass that the split strategy minimizes. Closed form:
//
//   integral = [tail + shoulder masses]                          (cases
//              I + III + V + VII, = 1.0 exactly)
//            + (mu_hi - mu_lo) / (sqrt(2 pi) sigma_lo)           (case IV)
//            + 2 (ln sigma_hi - ln sigma_lo) / sqrt(2 pi e)      (cases II+VI)
//
// With kSigmoidPoly5 the constant 1.0 is instead assembled from the
// polynomial CDF approximation, reproducing the paper's arithmetic.
double UpperHullIntegral(const DimBounds& b,
                         IntegralMethod method = IntegralMethod::kErf);

// d-dimensional access-probability measure of a node: the product of the
// per-dimension hull integrals (independence across dimensions). This is the
// quantity the split and the insertion heuristics minimize.
double HullIntegralMeasure(const DimBounds* bounds, size_t d,
                           IntegralMethod method = IntegralMethod::kErf);

// Standard normal CDF approximated by the degree-5 polynomial sigmoid
// (Abramowitz & Stegun 26.2.17 family). Exposed for tests and the ablation
// benchmark. Absolute error < 7.5e-8.
double SigmoidPoly5Cdf(double z);

}  // namespace gauss

#endif  // GAUSS_MATH_HULL_INTEGRAL_H_
