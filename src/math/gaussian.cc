#include "math/gaussian.h"

#include <cmath>

#include "common/macros.h"
#include "math/kernels.h"

namespace gauss {

double GaussianPdf(double x, double mu, double sigma) {
  GAUSS_DCHECK(sigma > 0.0);
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (kSqrt2Pi * sigma);
}

double GaussianLogPdf(double x, double mu, double sigma) {
  GAUSS_DCHECK(sigma > 0.0);
  // Delegates to the portable formulation (kernels.h) rather than libm so
  // every evaluation in the system — seq-scan oracle, hull bounds, shard
  // coordinator sketches, and the SIMD batch kernels — produces the same
  // bits regardless of libm version or dispatched backend.
  return kernels::PortableGaussLogPdf(x, mu, sigma);
}

double StdNormalCdf(double z) { return 0.5 * (1.0 + std::erf(z / kSqrt2)); }

double GaussianCdf(double x, double mu, double sigma) {
  GAUSS_DCHECK(sigma > 0.0);
  return StdNormalCdf((x - mu) / sigma);
}

double JointDensity(double mu_v, double sigma_v, double mu_q, double sigma_q,
                    SigmaPolicy policy) {
  return GaussianPdf(mu_q, mu_v, CombineSigma(sigma_v, sigma_q, policy));
}

double JointLogDensity(double mu_v, double sigma_v, double mu_q,
                       double sigma_q, SigmaPolicy policy) {
  return GaussianLogPdf(mu_q, mu_v, CombineSigma(sigma_v, sigma_q, policy));
}

double JointLogDensity(const double* mu_v, const double* sigma_v,
                       const double* mu_q, const double* sigma_q, size_t d,
                       SigmaPolicy policy) {
  double log_density = 0.0;
  for (size_t i = 0; i < d; ++i) {
    log_density +=
        JointLogDensity(mu_v[i], sigma_v[i], mu_q[i], sigma_q[i], policy);
  }
  return log_density;
}

}  // namespace gauss
