#include "math/hull_integral.h"

#include <cmath>

#include "common/macros.h"
#include "math/gaussian.h"

namespace gauss {

double SigmoidPoly5Cdf(double z) {
  // Abramowitz & Stegun 26.2.17: Phi(z) = 1 - phi(z) * P5(t), t = 1/(1+p z),
  // for z >= 0, with a degree-5 polynomial P5. Mirrored for z < 0.
  constexpr double p = 0.2316419;
  constexpr double b1 = 0.319381530;
  constexpr double b2 = -0.356563782;
  constexpr double b3 = 1.781477937;
  constexpr double b4 = -1.821255978;
  constexpr double b5 = 1.330274429;
  const double az = std::fabs(z);
  const double t = 1.0 / (1.0 + p * az);
  const double poly = t * (b1 + t * (b2 + t * (b3 + t * (b4 + t * b5))));
  const double pdf = std::exp(-0.5 * az * az) / kSqrt2Pi;
  const double upper_tail = pdf * poly;
  return z >= 0.0 ? 1.0 - upper_tail : upper_tail;
}

namespace {

double Phi(double z, IntegralMethod method) {
  return method == IntegralMethod::kErf ? StdNormalCdf(z) : SigmoidPoly5Cdf(z);
}

}  // namespace

double UpperHullIntegral(const DimBounds& b, IntegralMethod method) {
  GAUSS_DCHECK(b.Valid());
  // Case analysis of Lemma 2 integrated piecewise; see header for the map.
  //
  // (I): integral_{-inf}^{mu_lo - sigma_hi} N(x; mu_lo, sigma_hi) dx
  //      = Phi(-1). (VII) is symmetric.
  const double tail = Phi(-1.0, method);
  // (III): integral_{mu_lo - sigma_lo}^{mu_lo} N(x; mu_lo, sigma_lo) dx
  //        = Phi(0) - Phi(-1). (V) is symmetric.
  const double shoulder = Phi(0.0, method) - Phi(-1.0, method);
  // (II): N(x; mu_lo, mu_lo - x) = 1 / (sqrt(2 pi e) (mu_lo - x)); integrating
  // from mu_lo - sigma_hi to mu_lo - sigma_lo gives
  // (ln sigma_hi - ln sigma_lo) / sqrt(2 pi e). (VI) is symmetric.
  const double wedge = kInvSqrt2PiE * (std::log(b.sigma_hi) - std::log(b.sigma_lo));
  // (IV): constant strip at peak height 1 / (sqrt(2 pi) sigma_lo).
  const double strip = (b.mu_hi - b.mu_lo) / (kSqrt2Pi * b.sigma_lo);

  return 2.0 * (tail + shoulder + wedge) + strip;
}

double HullIntegralMeasure(const DimBounds* bounds, size_t d,
                           IntegralMethod method) {
  double measure = 1.0;
  for (size_t i = 0; i < d; ++i) {
    measure *= UpperHullIntegral(bounds[i], method);
  }
  return measure;
}

}  // namespace gauss
