#include "math/kernels.h"

// AVX2 backend: 4 doubles per vector. This file alone is compiled with
// -mavx2 (CMakeLists set_source_files_properties), so nothing here may be
// called before Runnable() confirms the CPU — kernels.cc's dispatch does
// that. On non-x86 builds the flag is absent, __AVX2__ is undefined, and
// the TU collapses to a null GetAvx2Backend().

#if defined(__AVX2__)

#include <immintrin.h>

#include "math/kernels_simd.h"

namespace gauss::kernels {

namespace {

struct Avx2Ops {
  using V = __m256d;
  using VI = __m256i;
  static constexpr size_t kWidth = 4;
  static V Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V Set1(double x) { return _mm256_set1_pd(x); }
  static VI Set1I(int64_t x) { return _mm256_set1_epi64x(x); }
  static V Add(V a, V b) { return _mm256_add_pd(a, b); }
  static V Sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V Mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V Div(V a, V b) { return _mm256_div_pd(a, b); }
  static V Sqrt(V a) { return _mm256_sqrt_pd(a); }
  static V Abs(V a) {
    return _mm256_and_pd(
        a, _mm256_castsi256_pd(Set1I(0x7fffffffffffffffLL)));
  }
  static V RoundNearest(V a) {
    return _mm256_round_pd(a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  // vminpd/vmaxpd return the SECOND source when either operand is NaN (or
  // for min, when the operands compare unordered-equal like +-0); swapping
  // the operands makes them match std::min/std::max lane for lane,
  // including which NaN payload survives.
  static V MinStd(V a, V b) { return _mm256_min_pd(b, a); }
  static V MaxStd(V a, V b) { return _mm256_max_pd(b, a); }
  static VI CastI(V a) { return _mm256_castpd_si256(a); }
  static V CastD(VI a) { return _mm256_castsi256_pd(a); }
  static VI Add64(VI a, VI b) { return _mm256_add_epi64(a, b); }
  static VI Sub64(VI a, VI b) { return _mm256_sub_epi64(a, b); }
  static VI And64(VI a, VI b) { return _mm256_and_si256(a, b); }
  static VI Shl52(VI a) { return _mm256_slli_epi64(a, 52); }
  static VI Sra52(VI a) {
    // AVX2 has no 64-bit arithmetic right shift: logical-shift the top 12
    // bits down, then sign-extend the 12-bit value with (x ^ 0x800) - 0x800.
    const VI logical = _mm256_srli_epi64(a, 52);
    const VI bias = Set1I(0x800);
    return _mm256_sub_epi64(_mm256_xor_si256(logical, bias), bias);
  }
  static V I64ToF64(VI a) {
    // No cvtepi64_pd before AVX-512DQ. The only int64->double conversion
    // the kernels need is log's exponent k, with |k| < 2^12, so the
    // magic-number trick is exact: bit_cast(0x1.8p52's bits + k) is the
    // double 0x1.8p52 + k as long as |k| < 2^51.
    const VI magic = Set1I(0x4338000000000000LL);
    return _mm256_sub_pd(CastD(_mm256_add_epi64(a, magic)), Set1(0x1.8p52));
  }
  static bool AllLanes(V mask) { return _mm256_movemask_pd(mask) == 0xf; }
  static bool AllInRange(V s) {
    return AllLanes(
        _mm256_and_pd(_mm256_cmp_pd(s, Set1(simd::kMinNormal), _CMP_GE_OQ),
                      _mm256_cmp_pd(s, Set1(simd::kMaxFinite), _CMP_LE_OQ)));
  }
  static bool AllAbsLe700(V x) {
    return AllLanes(
        _mm256_cmp_pd(Abs(x), Set1(simd::kExpMainCut), _CMP_LE_OQ));
  }
  static bool AllNotNan(V x) {
    return AllLanes(_mm256_cmp_pd(x, x, _CMP_EQ_OQ));
  }
};

void Avx2Joint(const JointBatchArgs& args, double* out_log) {
  simd::JointBatchImpl<Avx2Ops>(args, out_log);
}
void Avx2Hull(const HullBatchArgs& args, double* out_log_upper,
              double* out_log_lower) {
  simd::HullBatchImpl<Avx2Ops>(args, out_log_upper, out_log_lower);
}
void Avx2ExpShift(const double* log_in, double log_shift, size_t n,
                  double* out) {
  simd::ExpShiftImpl<Avx2Ops>(log_in, log_shift, n, out);
}

const KernelBackend kAvx2Backend = {"avx2", Avx2Joint, Avx2Hull,
                                    Avx2ExpShift};

}  // namespace

const KernelBackend* GetAvx2Backend() { return &kAvx2Backend; }

}  // namespace gauss::kernels

#else  // !defined(__AVX2__)

namespace gauss::kernels {
const KernelBackend* GetAvx2Backend() { return nullptr; }
}  // namespace gauss::kernels

#endif
