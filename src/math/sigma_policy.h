#ifndef GAUSS_MATH_SIGMA_POLICY_H_
#define GAUSS_MATH_SIGMA_POLICY_H_

#include <cmath>

namespace gauss {

// How the uncertainty of the query and of a database object are combined in
// the joint-density lemma (paper Lemma 1).
//
//   kConvolution: sigma' = sqrt(sigma_v^2 + sigma_q^2).
//     This is the statistically exact value of
//     integral N(x; mu_v, sigma_v) * N(x; mu_q, sigma_q) dx
//     = N(mu_q; mu_v, sqrt(sigma_v^2 + sigma_q^2)).
//   kAdditive: sigma' = sigma_v + sigma_q.
//     The paper's formulas are written with a plain "+" on the deviation
//     parameter. The additive form is a conservative over-estimate of the
//     combined spread (sqrt(a^2+b^2) <= a+b), so it never sharpens a bound;
//     we expose it to reproduce the paper literally and to quantify the
//     difference (ablation A4 in DESIGN.md).
//
// Both policies are monotonically increasing in each argument, which is what
// the hull-bound query machinery relies on when shifting the sigma interval
// of an index node by the query's sigma.
enum class SigmaPolicy {
  kConvolution,
  kAdditive,
};

// Combined deviation of a database-object sigma and a query sigma.
inline double CombineSigma(double sigma_v, double sigma_q, SigmaPolicy policy) {
  if (policy == SigmaPolicy::kAdditive) return sigma_v + sigma_q;
  return std::sqrt(sigma_v * sigma_v + sigma_q * sigma_q);
}

}  // namespace gauss

#endif  // GAUSS_MATH_SIGMA_POLICY_H_
