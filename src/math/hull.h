#ifndef GAUSS_MATH_HULL_H_
#define GAUSS_MATH_HULL_H_

#include <cstddef>

#include "math/sigma_policy.h"

namespace gauss {

// Per-dimension parameter-space bounds of a Gauss-tree node: the minimum
// bounding rectangle over the (mu, sigma) pairs stored in the subtree.
struct DimBounds {
  double mu_lo = 0.0;
  double mu_hi = 0.0;
  double sigma_lo = 0.0;
  double sigma_hi = 0.0;

  bool Contains(double mu, double sigma) const {
    return mu_lo <= mu && mu <= mu_hi && sigma_lo <= sigma && sigma <= sigma_hi;
  }

  bool Valid() const {
    return mu_lo <= mu_hi && 0.0 < sigma_lo && sigma_lo <= sigma_hi;
  }
};

// Conservative upper hull N_hat(x): the maximum density any Gaussian with
// mu in [mu_lo, mu_hi], sigma in [sigma_lo, sigma_hi] can attain at x.
// This is paper Lemma 2, a 7-case piecewise function:
//   (I)   x <  mu_lo - sigma_hi            : N(x; mu_lo, sigma_hi)
//   (II)  mu_lo - sigma_hi <= x < mu_lo - sigma_lo
//                                          : N(x; mu_lo, mu_lo - x)
//   (III) mu_lo - sigma_lo <= x < mu_lo    : N(x; mu_lo, sigma_lo)
//   (IV)  mu_lo <= x < mu_hi               : N(x; x, sigma_lo) (peak value)
//   (V)   mu_hi <= x < mu_hi + sigma_lo    : N(x; mu_hi, sigma_lo)
//   (VI)  mu_hi + sigma_lo <= x < mu_hi + sigma_hi
//                                          : N(x; mu_hi, x - mu_hi)
//   (VII) x >= mu_hi + sigma_hi            : N(x; mu_hi, sigma_hi)
double UpperHull(double x, const DimBounds& b);

// log of UpperHull(). Robust far away from the node. Batch counterpart:
// kernels::HullIntegralBoundsBatch evaluates this per dimension for every
// child MBR of a node in one call (its scalar reference loops this exact
// function); the SIMD lanes realize the same case split branchlessly via
// clamps, bit-identical on DimBounds::Valid() inputs.
double LogUpperHull(double x, const DimBounds& b);

// Conservative lower hull N_check(x): the minimum density any Gaussian inside
// the bounds can attain at x. Paper Lemma 3: the minimum is attained at one
// of the four (mu, sigma) corner combinations.
double LowerHull(double x, const DimBounds& b);

// log of LowerHull(). Also evaluated per dimension inside
// kernels::HullIntegralBoundsBatch (the four-corner minimum vectorizes as
// elementwise min over the corner evaluations).
double LogLowerHull(double x, const DimBounds& b);

// Bounds with the query uncertainty folded in: the hull of the *joint*
// densities N(mu_q; mu, combine(sigma, sigma_q)) over all (mu, sigma) in `b`.
// Because CombineSigma is monotone in sigma, the reachable combined-sigma
// interval is [combine(sigma_lo, sq), combine(sigma_hi, sq)].
DimBounds QueryAdjustedBounds(const DimBounds& b, double sigma_q,
                              SigmaPolicy policy);

// Multivariate log upper / lower hull of the joint density of a query pfv
// against everything a subtree may contain; sums per-dimension hulls of the
// query-adjusted bounds. `bounds` points to d DimBounds; `mu_q`, `sigma_q`
// point to d doubles. These score ONE subtree; traversals score all of an
// inner node's children at once through kernels::HullIntegralBoundsBatch,
// whose scalar reference is exactly QueryAdjustedBounds + LogUpperHull +
// LogLowerHull per dimension — identical sums, either route.
double JointLogUpperHull(const DimBounds* bounds, const double* mu_q,
                         const double* sigma_q, size_t d, SigmaPolicy policy);
double JointLogLowerHull(const DimBounds* bounds, const double* mu_q,
                         const double* sigma_q, size_t d, SigmaPolicy policy);

}  // namespace gauss

#endif  // GAUSS_MATH_HULL_H_
