#ifndef GAUSS_MATH_GAUSSIAN_H_
#define GAUSS_MATH_GAUSSIAN_H_

#include <cstddef>

#include "math/sigma_policy.h"

namespace gauss {

// Scalar lemma math. Each query-path function here has a batch counterpart in
// math/kernels.h that scores one query against all of a node's entries per
// call; the batch kernels' scalar reference backend loops these exact
// functions, so the two can never drift (see src/math/README.md for the
// bit-stability contract).

// sqrt(2*pi) and friends, to double precision.
inline constexpr double kSqrt2Pi = 2.5066282746310005024;
inline constexpr double kLogSqrt2Pi = 0.91893853320467274178;
inline constexpr double kSqrt2 = 1.4142135623730950488;
// 1 / sqrt(2*pi*e): the peak value of N(x; mu, sigma=|mu-x|), which appears
// in cases II/VI of the hull function (paper Lemma 2).
inline constexpr double kInvSqrt2PiE = 0.24197072451914334980;

// Univariate Gaussian probability density N(x; mu, sigma). sigma > 0.
double GaussianPdf(double x, double mu, double sigma);

// log N(x; mu, sigma). Robust for extreme |x - mu| / sigma. Delegates to
// kernels::PortableGaussLogPdf (portable log, no libm) so that every caller —
// this scalar path, the hulls below, and the SIMD lanes of
// kernels::JointLogDensityBatch — computes in the same arithmetic universe.
double GaussianLogPdf(double x, double mu, double sigma);

// Standard normal CDF Phi(z), via std::erf. Build-time only (bulk-load
// quality decisions); not part of the bit-stable query path.
double StdNormalCdf(double z);

// Gaussian CDF P[X <= x] for X ~ N(mu, sigma).
double GaussianCdf(double x, double mu, double sigma);

// Paper Lemma 1 (joint probability): density that the query feature
// (mu_q, sigma_q) and the database feature (mu_v, sigma_v) describe the same
// true value:
//   integral N(x; mu_v, sigma_v) N(x; mu_q, sigma_q) dx
//     = N(mu_q; mu_v, combined_sigma).
// The combination of the two sigmas is governed by `policy` (see
// sigma_policy.h).
double JointDensity(double mu_v, double sigma_v, double mu_q, double sigma_q,
                    SigmaPolicy policy = SigmaPolicy::kConvolution);

// log of JointDensity(). This is the per-dimension term Lemma 1 sums; its
// node-at-a-time batch counterpart is kernels::JointLogDensityBatch, whose
// scalar reference accumulates exactly this expression per dimension.
double JointLogDensity(double mu_v, double sigma_v, double mu_q,
                       double sigma_q,
                       SigmaPolicy policy = SigmaPolicy::kConvolution);

// Multivariate (axis-independent) joint log density: sum over d dimensions of
// JointLogDensity. `mu_v`, `sigma_v`, `mu_q`, `sigma_q` each point to `d`
// doubles. Accumulates dimension-by-dimension in the same order as
// kernels::JointLogDensityBatch, so one entry scored here is bit-identical to
// the same entry scored through the batch kernel (PfvJointLogDensity and the
// SoA scan interchange freely — differential suites rely on this).
double JointLogDensity(const double* mu_v, const double* sigma_v,
                       const double* mu_q, const double* sigma_q, size_t d,
                       SigmaPolicy policy = SigmaPolicy::kConvolution);

}  // namespace gauss

#endif  // GAUSS_MATH_GAUSSIAN_H_
