#ifndef GAUSS_MATH_KERNELS_SIMD_H_
#define GAUSS_MATH_KERNELS_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "math/kernels.h"

// INTERNAL header: the width-generic bodies of the batch kernels, shared by
// every SIMD backend (kernels_avx2.cc, kernels_avx512.cc, the NEON section
// of kernels.cc), plus the constant tables the scalar transcendentals in
// kernels.cc use — one definition site so a constant cannot drift between
// the scalar reference and a vector lane. Not part of the public API; only
// kernel translation units include this.
//
// Each backend supplies an Ops policy struct:
//
//   struct Ops {
//     using V  = <vector of kWidth doubles>;
//     using VI = <vector of kWidth int64s, same register width>;
//     static constexpr size_t kWidth;
//     // lane-wise IEEE ops (identical rounding to the scalar op):
//     Load, Store, Set1, Add, Sub, Mul, Div, Sqrt, Abs, RoundNearest
//     // std-semantics min/max: MinStd(a,b) == std::min(a,b) and
//     // MaxStd(a,b) == std::max(a,b) PER LANE, including which NaN operand
//     // comes through (on x86 that is the same instruction with the operand
//     // order swapped; NEON needs compare+select):
//     MinStd, MaxStd
//     // integer lane ops for exponent surgery:
//     Set1I, CastI, CastD, Add64, Sub64, And64, Sra52, Shl52, I64ToF64
//     // whole-vector predicates (scalar bool so control flow stays uniform
//     // across ISAs — no per-lane masking anywhere):
//     AllInRange   — every lane in [kMinNormal, kMaxFinite] (false on NaN)
//     AllAbsLe700  — every lane has |x| <= 700 (false on NaN)
//     AllNotNan    — no lane is NaN
//   };
//
// Bit-identity strategy: the vector code only ever executes the scalar MAIN
// paths (LogMain/ExpMain in kernels.cc), mirrored operation for operation.
// Before using a block's result it proves the main path was valid for every
// lane (AllInRange on each log input, AllAbsLe700 on each exp input, final
// AllNotNan on the accumulators); any failure reruns the whole block through
// detail::*Range — the scalar reference itself — so special values get the
// scalar answers by construction, not by re-implementation. The tail
// (n % kWidth) always runs the scalar reference.
//
// Concurrency contract (see JointBatchArgs in kernels.h): no load below ever
// touches plane elements >= n. Full blocks satisfy j + kWidth <= n, and the
// scalar tail stops at n.
namespace gauss::kernels::simd {

// --- fdlibm log constants (see LogMain in kernels.cc for the derivation) ---
inline constexpr int64_t kLogOff = 0x3fe6955500000000LL;
inline constexpr int64_t kExpFieldMask =
    static_cast<int64_t>(0xfff0000000000000ULL);
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;

// --- fdlibm exp constants (see ExpCore in kernels.cc) ---
inline constexpr double kInvLn2 = 1.44269504088896338700e+00;
inline constexpr double kExpP1 = 1.66666666666666019037e-01;
inline constexpr double kExpP2 = -2.77777777770155933842e-03;
inline constexpr double kExpP3 = 6.61375632143793436117e-05;
inline constexpr double kExpP4 = -1.65339022054652515390e-06;
inline constexpr double kExpP5 = 4.13813679705723846039e-08;
inline constexpr double kExpMainCut = 700.0;

// --- main-path domain of the portable log ---
inline constexpr double kMinNormal = 2.2250738585072014e-308;  // 0x1p-1022
inline constexpr double kMaxFinite = 1.7976931348623157e+308;  // DBL_MAX

// log(x), every lane assumed normal finite positive (caller checked
// AllInRange). Mirrors LogMain(x, 0) in kernels.cc op for op.
template <typename O>
inline typename O::V VLogMain(typename O::V x) {
  using V = typename O::V;
  using VI = typename O::VI;
  const VI u = O::CastI(x);
  const VI tmp = O::Sub64(u, O::Set1I(kLogOff));
  const VI k = O::Sra52(tmp);
  const VI mbits = O::Sub64(u, O::And64(tmp, O::Set1I(kExpFieldMask)));
  const V m = O::CastD(mbits);
  const V f = O::Sub(m, O::Set1(1.0));
  const V s = O::Div(f, O::Add(O::Set1(2.0), f));
  const V z = O::Mul(s, s);
  const V w = O::Mul(z, z);
  const V t1 = O::Mul(
      w, O::Add(O::Set1(kLg2),
                O::Mul(w, O::Add(O::Set1(kLg4), O::Mul(w, O::Set1(kLg6))))));
  const V t2 = O::Mul(
      z,
      O::Add(O::Set1(kLg1),
             O::Mul(w, O::Add(O::Set1(kLg3),
                              O::Mul(w, O::Add(O::Set1(kLg5),
                                               O::Mul(w, O::Set1(kLg7))))))));
  const V r = O::Add(t2, t1);
  const V ff = O::Mul(f, f);
  const V hfsq = O::Mul(O::Set1(0.5), ff);
  const V dk = O::I64ToF64(k);
  // dk*ln2_hi - ((hfsq - (s*(hfsq+r) + dk*ln2_lo)) - f)
  const V inner = O::Add(O::Mul(s, O::Add(hfsq, r)), O::Mul(dk, O::Set1(kLn2Lo)));
  return O::Sub(O::Mul(dk, O::Set1(kLn2Hi)), O::Sub(O::Sub(hfsq, inner), f));
}

// exp(x), every lane assumed |x| <= 700 (caller checked AllAbsLe700).
// Mirrors ExpMain in kernels.cc. The 2^n scale is built by the magic-number
// trick: bit_cast(nd + 0x1.8p52) carries n in its low bits (two's
// complement), and ((bits + 1023) << 52) equals ((n + 1023) << 52) because
// the magic constant's low 12 bits are zero — the rest shifts out mod 2^64.
template <typename O>
inline typename O::V VExpMain(typename O::V x) {
  using V = typename O::V;
  using VI = typename O::VI;
  const V nd = O::RoundNearest(O::Mul(x, O::Set1(kInvLn2)));
  const V hi = O::Sub(x, O::Mul(nd, O::Set1(kLn2Hi)));
  const V lo = O::Mul(nd, O::Set1(kLn2Lo));
  const V r = O::Sub(hi, lo);
  const V t = O::Mul(r, r);
  const V p = O::Add(
      O::Set1(kExpP1),
      O::Mul(t, O::Add(O::Set1(kExpP2),
                       O::Mul(t, O::Add(O::Set1(kExpP3),
                                        O::Mul(t, O::Add(O::Set1(kExpP4),
                                                         O::Mul(t, O::Set1(
                                                                       kExpP5)))))))));
  const V c = O::Sub(r, O::Mul(t, p));
  const V y = O::Sub(
      O::Set1(1.0),
      O::Sub(O::Sub(lo, O::Div(O::Mul(r, c), O::Sub(O::Set1(2.0), c))), hi));
  const VI u = O::CastI(O::Add(nd, O::Set1(0x1.8p52)));
  const VI scale_bits = O::Shl52(O::Add64(u, O::Set1I(1023)));
  return O::Mul(y, O::CastD(scale_bits));
}

// log N(x; mu, sigma): PortableGaussLogPdf (kernels.h) mirrored per lane.
// sigma lanes must already be proven in-range for VLogMain.
template <typename O>
inline typename O::V VGaussLogPdf(typename O::V x, typename O::V mu,
                                  typename O::V sigma) {
  using V = typename O::V;
  const V z = O::Div(O::Sub(x, mu), sigma);
  const V zz = O::Mul(z, z);
  return O::Sub(O::Sub(O::Mul(O::Set1(-0.5), zz), VLogMain<O>(sigma)),
                O::Set1(kLogSqrt2Pi));
}

// CombineSigma (sigma_policy.h) per lane. The convolution form is two muls,
// an add and a sqrt — exactly the scalar's operation sequence (every TU
// builds with -ffp-contract=off, so the scalar cannot have fused the
// mul-add either).
template <typename O>
inline typename O::V VCombineSigma(typename O::V sv, typename O::V sq,
                                   bool additive) {
  if (additive) return O::Add(sv, sq);
  return O::Sqrt(O::Add(O::Mul(sv, sv), O::Mul(sq, sq)));
}

template <typename O>
void JointBatchImpl(const JointBatchArgs& a, double* out_log) {
  using V = typename O::V;
  constexpr size_t W = O::kWidth;
  const bool additive = a.policy == SigmaPolicy::kAdditive;
  size_t j = 0;
  for (; j + W <= a.n; j += W) {
    V acc = O::Set1(0.0);
    bool main_path = true;
    for (size_t i = 0; i < a.dim; ++i) {
      const V sv = O::Load(a.sigma + i * a.stride + j);
      const V sigma = VCombineSigma<O>(sv, O::Set1(a.sigma_q[i]), additive);
      // A zero/denormal/inf/NaN combined sigma would take PortableLog's
      // special path — prove every lane is main-path before trusting
      // VLogMain, else rerun the block through the scalar reference.
      if (!O::AllInRange(sigma)) {
        main_path = false;
        break;
      }
      const V mu = O::Load(a.mu + i * a.stride + j);
      acc = O::Add(acc, VGaussLogPdf<O>(O::Set1(a.mu_q[i]), mu, sigma));
    }
    // A NaN accumulator means non-finite mu data flowed through arithmetic
    // whose NaN payload propagation we don't promise to mirror — the scalar
    // rerun gives those lanes the reference bits.
    if (main_path && O::AllNotNan(acc)) {
      O::Store(out_log + j, acc);
    } else {
      detail::JointLogDensityRange(a, j, j + W, out_log);
    }
  }
  detail::JointLogDensityRange(a, j, a.n, out_log);
}

template <typename O>
void HullBatchImpl(const HullBatchArgs& a, double* out_log_upper,
                   double* out_log_lower) {
  using V = typename O::V;
  constexpr size_t W = O::kWidth;
  const bool additive = a.policy == SigmaPolicy::kAdditive;
  size_t j = 0;
  for (; j + W <= a.n; j += W) {
    V up = O::Set1(0.0);
    V lo = O::Set1(0.0);
    bool main_path = true;
    for (size_t i = 0; i < a.dim; ++i) {
      const V sq = O::Set1(a.sigma_q[i]);
      const V slo =
          VCombineSigma<O>(O::Load(a.sigma_lo + i * a.stride + j), sq, additive);
      const V shi =
          VCombineSigma<O>(O::Load(a.sigma_hi + i * a.stride + j), sq, additive);
      if (!O::AllInRange(slo) || !O::AllInRange(shi)) {
        main_path = false;
        break;
      }
      const V mlo = O::Load(a.mu_lo + i * a.stride + j);
      const V mhi = O::Load(a.mu_hi + i * a.stride + j);
      const V x = O::Set1(a.mu_q[i]);
      // Lemma 2 upper hull, branchless form of hull.cc's ArgUpperHull: the
      // best mean is x clamped into [mu_lo, mu_hi]; the best sigma is the
      // distance to that mean clamped into [sigma_lo, sigma_hi] (distance 0
      // inside the mu range resolves to sigma_lo — case IV). Equivalence
      // with the branchy scalar is bit-exact: |x - mu_lo| == mu_lo - x by
      // IEEE negation exactness, and clamp == MinStd(MaxStd(v,lo),hi) for
      // every input including NaN.
      const V mu_c = O::MinStd(O::MaxStd(x, mlo), mhi);
      const V dist = O::Abs(O::Sub(x, mu_c));
      const V sg_c = O::MinStd(O::MaxStd(dist, slo), shi);
      up = O::Add(up, VGaussLogPdf<O>(x, mu_c, sg_c));
      // Lemma 3 lower hull: min over the four (mu, sigma) corners, with the
      // scalar's exact min tree min(min(a,c), min(d,e)).
      const V ta = VGaussLogPdf<O>(x, mlo, slo);
      const V tc = VGaussLogPdf<O>(x, mlo, shi);
      const V td = VGaussLogPdf<O>(x, mhi, slo);
      const V te = VGaussLogPdf<O>(x, mhi, shi);
      lo = O::Add(lo, O::MinStd(O::MinStd(ta, tc), O::MinStd(td, te)));
    }
    // NaN mu bounds (or a NaN query coordinate) surface as NaN in at least
    // one accumulator: sg_c clamps a NaN distance to NaN, so the upper term
    // goes NaN whenever any input lane was NaN. Rerun those blocks scalar.
    if (main_path && O::AllNotNan(up) && O::AllNotNan(lo)) {
      O::Store(out_log_upper + j, up);
      O::Store(out_log_lower + j, lo);
    } else {
      detail::HullBoundsRange(a, j, j + W, out_log_upper, out_log_lower);
    }
  }
  detail::HullBoundsRange(a, j, a.n, out_log_upper, out_log_lower);
}

template <typename O>
void ExpShiftImpl(const double* log_in, double log_shift, size_t n,
                  double* out) {
  using V = typename O::V;
  constexpr size_t W = O::kWidth;
  const V shift = O::Set1(log_shift);
  size_t j = 0;
  for (; j + W <= n; j += W) {
    const V v = O::Sub(O::Load(log_in + j), shift);
    // |v| <= 700 is ExpMain's domain (result and scale stay normal);
    // anything else — including NaN — takes the scalar reference's special
    // handling.
    if (O::AllAbsLe700(v)) {
      O::Store(out + j, VExpMain<O>(v));
    } else {
      detail::ExpShiftRange(log_in, log_shift, j, j + W, out);
    }
  }
  detail::ExpShiftRange(log_in, log_shift, j, n, out);
}

}  // namespace gauss::kernels::simd

#endif  // GAUSS_MATH_KERNELS_SIMD_H_
