#ifndef GAUSS_DATA_WORKLOAD_H_
#define GAUSS_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "pfv/pfv.h"

namespace gauss {

// One identification query plus its ground truth: the database object the
// query observation was generated from.
struct IdentificationQuery {
  Pfv query;
  uint64_t true_id = 0;
};

// Query workload following the paper's protocol (Section 6): select a number
// of database objects at random; for each, generate a *new observed mean*
// with respect to the object's own Gaussian (mu_q ~ N(mu_v, sigma_v) per
// dimension) and draw fresh random standard deviations for the query.
struct WorkloadConfig {
  size_t query_count = 100;
  SigmaModel query_sigma_model;  // defaults below mirror the dataset's model
  uint64_t seed = 77;
};

std::vector<IdentificationQuery> GenerateWorkload(const PfvDataset& dataset,
                                                  const WorkloadConfig& config);

}  // namespace gauss

#endif  // GAUSS_DATA_WORKLOAD_H_
