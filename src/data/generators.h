#ifndef GAUSS_DATA_GENERATORS_H_
#define GAUSS_DATA_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "pfv/pfv.h"

namespace gauss {

// How per-dimension uncertainty values are drawn. The paper complements each
// feature dimension "with a randomly generated standard deviation"; the
// magnitudes are expressed relative to `scale` (typically the per-dimension
// spread of the data) so that NN-confusing uncertainty levels can be dialed
// in for both the histogram-like and the uniform data sets.
struct SigmaModel {
  double min_fraction = 0.05;   // sigma >= min_fraction * scale
  double max_fraction = 0.50;   // sigma <= max_fraction * scale
  double scale = 1.0;

  double Draw(Rng& rng) const {
    return scale * rng.Uniform(min_fraction, max_fraction);
  }
};

// Data set 1 surrogate: clustered, L1-normalized, non-negative 27-d vectors
// resembling color histograms of an image collection (see DESIGN.md §2 for
// the substitution rationale). `cluster_count` mixture components with
// Dirichlet-like centers; points scatter around their center and are
// re-normalized onto the simplex.
struct HistogramDatasetConfig {
  size_t size = 10987;
  size_t dim = 27;
  size_t cluster_count = 40;
  double within_cluster_spread = 0.25;  // relative to the center profile
  SigmaModel sigma_model{0.05, 0.5, 0.0};  // scale 0 = auto (per-dim stddev)
  uint64_t seed = 1;
};

PfvDataset GenerateHistogramDataset(const HistogramDatasetConfig& config);

// Uniform pfv in [0, 1]^d. Kept for tests and worst-case ablations: i.i.d.
// uniform data is the regime where *no* R-tree-family index can prune (the
// curse of dimensionality makes every hull bound loose), which the scaling
// sweep demonstrates.
struct UniformDatasetConfig {
  size_t size = 100000;
  size_t dim = 10;
  SigmaModel sigma_model{0.01, 0.1, 1.0};
  uint64_t seed = 2;
};

PfvDataset GenerateUniformDataset(const UniformDatasetConfig& config);

// Data set 2 surrogate: 100,000 randomly generated pfv in a 10-dimensional
// feature space (paper Section 6). Means are drawn from a Gaussian mixture
// ("randomly generated" feature vectors of real systems are correlated; an
// index can only beat a scan when the data carries structure — see DESIGN.md
// §2). Defaults are calibrated so that the paper's two headline results hold
// simultaneously: near-perfect MLIQ identification *and* substantial index
// pruning.
struct ClusteredDatasetConfig {
  size_t size = 100000;
  size_t dim = 10;
  size_t cluster_count = 150;
  double cluster_stddev = 0.07;   // per-dimension spread within a cluster
  SigmaModel sigma_model{0.008, 0.035, 1.0};
  uint64_t seed = 2;
};

PfvDataset GenerateClusteredDataset(const ClusteredDatasetConfig& config);

// Per-dimension mean/stddev summary of a dataset's mu values (used to
// auto-scale sigma models and by generator tests).
struct DatasetMoments {
  std::vector<double> mean;
  std::vector<double> stddev;
  double avg_stddev = 0.0;
};

DatasetMoments ComputeMoments(const PfvDataset& dataset);

}  // namespace gauss

#endif  // GAUSS_DATA_GENERATORS_H_
