#ifndef GAUSS_DATA_PAPER_DATASETS_H_
#define GAUSS_DATA_PAPER_DATASETS_H_

#include <cstdint>
#include <vector>

#include "data/generators.h"
#include "data/workload.h"
#include "pfv/pfv.h"

namespace gauss {

// The two evaluation datasets of the paper (Section 6), as calibrated
// surrogates (full rationale in DESIGN.md §2):
//
//  * Data set 1 — 10,987 27-dimensional color histograms of an image
//    database. Surrogate: clustered simplex-valued histogram means; each
//    *dimension* carries a randomly generated base uncertainty (the paper:
//    "we complemented each dimension with a randomly generated standard
//    deviation"), individualized per object by a bounded jitter. The wide
//    base range makes Euclidean NN fail while the probabilistic model keeps
//    identifying (Figure 6a) and keeps the parameter-space hulls tight
//    enough for index pruning (Figure 7 left).
//
//  * Data set 2 — 100,000 randomly generated 10-dimensional pfv. Surrogate:
//    Gaussian-mixture means with moderate per-object uncertainties.
//
// Both generators are deterministic given the seed.
struct PaperDataset {
  PfvDataset dataset{1};
  // Per-dimension base uncertainty; empty when sigmas are drawn per object
  // from `sigma_model` instead.
  std::vector<double> sigma_base;
  double sigma_jitter = 0.25;
  SigmaModel sigma_model;
  // Range of the per-query observation-quality factor: a fresh observation's
  // sigmas are `base * quality * jitter`. Bad captures (large factor) are
  // what defeat the Euclidean baseline while the probabilistic model, which
  // is told the query's uncertainty, absorbs them.
  double quality_lo = 1.0;
  double quality_hi = 1.0;

  // Draws a sigma vector for a fresh observation (query protocol).
  std::vector<double> DrawQuerySigmas(Rng& rng, double quality = 1.0) const;
};

PaperDataset GeneratePaperDataset1(size_t size = 10987, uint64_t seed = 1);
PaperDataset GeneratePaperDataset2(size_t size = 100000, uint64_t seed = 2);

// Query workload per the paper's protocol: sample objects, draw the observed
// mean w.r.t. each source object's own Gaussian, draw fresh query sigmas
// from the dataset's uncertainty regime.
std::vector<IdentificationQuery> GeneratePaperWorkload(const PaperDataset& pd,
                                                       size_t query_count,
                                                       uint64_t seed = 77);

}  // namespace gauss

#endif  // GAUSS_DATA_PAPER_DATASETS_H_
