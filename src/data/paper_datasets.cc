#include "data/paper_datasets.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace gauss {

std::vector<double> PaperDataset::DrawQuerySigmas(Rng& rng,
                                                  double quality) const {
  std::vector<double> sigma(dataset.dim());
  if (!sigma_base.empty()) {
    for (size_t j = 0; j < sigma.size(); ++j) {
      sigma[j] = std::max(
          1e-9, sigma_base[j] * quality *
                    rng.Uniform(1.0 - sigma_jitter, 1.0 + sigma_jitter));
    }
  } else {
    for (double& s : sigma) {
      s = std::max(1e-9, quality * sigma_model.Draw(rng));
    }
  }
  return sigma;
}

PaperDataset GeneratePaperDataset1(size_t size, uint64_t seed) {
  constexpr size_t kDim = 27;
  constexpr size_t kClusters = 40;
  constexpr double kSpread = 0.25;
  // Base uncertainty per dimension: fraction of the dimension's realized
  // spread, drawn from a wide range so some features are nearly exact and
  // others nearly useless — the heteroscedasticity that defeats Euclidean NN.
  constexpr double kBaseLo = 0.05;
  constexpr double kBaseHi = 0.7;
  constexpr double kJitter = 0.25;

  Rng rng(seed);

  // Dirichlet-like cluster profiles on the simplex.
  std::vector<std::vector<double>> centers(kClusters,
                                           std::vector<double>(kDim));
  for (auto& center : centers) {
    double sum = 0.0;
    for (double& v : center) {
      v = rng.Exponential(1.0);
      sum += v;
    }
    for (double& v : center) v /= sum;
  }

  std::vector<std::vector<double>> mus;
  mus.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    const auto& center = centers[rng.UniformInt(kClusters)];
    std::vector<double> mu(kDim);
    double sum = 0.0;
    for (size_t j = 0; j < kDim; ++j) {
      mu[j] = std::max(0.0, center[j] + rng.Gaussian(0.0, kSpread *
                                                              (center[j] +
                                                               1e-3)));
      sum += mu[j];
    }
    if (sum <= 0.0) {
      mu.assign(kDim, 1.0 / static_cast<double>(kDim));
      sum = 1.0;
    }
    for (double& v : mu) v /= sum;
    mus.push_back(std::move(mu));
  }

  // Realized per-dimension spread of the means.
  std::vector<double> mean(kDim, 0.0), stddev(kDim, 0.0);
  for (const auto& mu : mus) {
    for (size_t j = 0; j < kDim; ++j) mean[j] += mu[j];
  }
  for (double& v : mean) v /= static_cast<double>(size);
  for (const auto& mu : mus) {
    for (size_t j = 0; j < kDim; ++j) {
      const double d = mu[j] - mean[j];
      stddev[j] += d * d;
    }
  }
  for (double& v : stddev) v = std::sqrt(v / static_cast<double>(size));

  PaperDataset pd;
  pd.dataset = PfvDataset(kDim);
  pd.sigma_jitter = kJitter;
  pd.sigma_base.resize(kDim);
  for (size_t j = 0; j < kDim; ++j) {
    pd.sigma_base[j] =
        rng.Uniform(kBaseLo, kBaseHi) * std::max(stddev[j], 1e-4);
  }
  for (size_t i = 0; i < size; ++i) {
    std::vector<double> sigma(kDim);
    for (size_t j = 0; j < kDim; ++j) {
      sigma[j] = std::max(1e-9, pd.sigma_base[j] *
                                    rng.Uniform(1.0 - kJitter, 1.0 + kJitter));
    }
    pd.dataset.Add(Pfv(i, std::move(mus[i]), std::move(sigma)));
  }
  // Probe images are taken under varying conditions as well.
  pd.quality_lo = 0.6;
  pd.quality_hi = 1.8;
  return pd;
}

PaperDataset GeneratePaperDataset2(size_t size, uint64_t seed) {
  constexpr size_t kDim = 10;
  constexpr size_t kClusters = 100;
  constexpr double kClusterStd = 0.09;
  // Per-dimension base uncertainty in absolute units of the [0, 1] domain;
  // like data set 1, uncertainty varies strongly per dimension (some
  // features nearly exact, some nearly useless) with a per-object jitter.
  // Calibrated so the paper's Figure 6(b)/7(right) shape holds: MLIQ
  // near-perfect, NN around 60%, strong index pruning (see DESIGN.md §2 and
  // EXPERIMENTS.md E3/E5).
  constexpr double kBaseLo = 0.004;
  constexpr double kBaseHi = 0.07;
  constexpr double kJitter = 0.25;

  Rng rng(seed);
  std::vector<std::vector<double>> centers(kClusters,
                                           std::vector<double>(kDim));
  for (auto& center : centers) {
    for (double& v : center) v = rng.NextDouble();
  }

  PaperDataset pd;
  pd.dataset = PfvDataset(kDim);
  pd.sigma_jitter = kJitter;
  pd.sigma_base.resize(kDim);
  for (double& b : pd.sigma_base) b = rng.Uniform(kBaseLo, kBaseHi);

  for (size_t i = 0; i < size; ++i) {
    const auto& center = centers[rng.UniformInt(kClusters)];
    std::vector<double> mu(kDim), sigma(kDim);
    for (size_t j = 0; j < kDim; ++j) {
      mu[j] = center[j] + rng.Gaussian(0.0, kClusterStd);
      sigma[j] = std::max(1e-9, pd.sigma_base[j] *
                                    rng.Uniform(1.0 - kJitter, 1.0 + kJitter));
    }
    pd.dataset.Add(Pfv(i, std::move(mu), std::move(sigma)));
  }
  // Queries re-observe objects under varying capture conditions.
  pd.quality_lo = 0.5;
  pd.quality_hi = 2.5;
  return pd;
}

std::vector<IdentificationQuery> GeneratePaperWorkload(const PaperDataset& pd,
                                                       size_t query_count,
                                                       uint64_t seed) {
  const PfvDataset& dataset = pd.dataset;
  GAUSS_CHECK(dataset.size() > 0);
  Rng rng(seed);
  const std::vector<size_t> picks = rng.SampleWithoutReplacement(
      dataset.size(), std::min(query_count, dataset.size()));

  std::vector<IdentificationQuery> workload;
  workload.reserve(picks.size());
  for (size_t index : picks) {
    const Pfv& source = dataset[index];
    // Generative protocol: the stored observation deviates from the unknown
    // true feature vector by sigma_v, the fresh observation by sigma_q, so
    // the observed displacement between the two follows
    // N(0, sqrt(sigma_v^2 + sigma_q^2)) per dimension — precisely the joint
    // density of Lemma 1. The fresh observation's quality factor varies per
    // query (capture conditions differ between enrollment and probe).
    const double quality = rng.Uniform(pd.quality_lo, pd.quality_hi);
    std::vector<double> sigma_q = pd.DrawQuerySigmas(rng, quality);
    std::vector<double> mu(dataset.dim());
    for (size_t j = 0; j < dataset.dim(); ++j) {
      const double displacement =
          std::sqrt(source.sigma[j] * source.sigma[j] +
                    sigma_q[j] * sigma_q[j]);
      mu[j] = rng.Gaussian(source.mu[j], displacement);
    }
    IdentificationQuery iq;
    iq.query =
        Pfv(1000000000ull + source.id, std::move(mu), std::move(sigma_q));
    iq.true_id = source.id;
    workload.push_back(std::move(iq));
  }
  return workload;
}

}  // namespace gauss
