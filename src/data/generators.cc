#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"

namespace gauss {

DatasetMoments ComputeMoments(const PfvDataset& dataset) {
  DatasetMoments moments;
  const size_t d = dataset.dim();
  const size_t n = dataset.size();
  moments.mean.assign(d, 0.0);
  moments.stddev.assign(d, 0.0);
  if (n == 0) return moments;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) moments.mean[j] += dataset[i].mu[j];
  }
  for (size_t j = 0; j < d; ++j) moments.mean[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double dev = dataset[i].mu[j] - moments.mean[j];
      moments.stddev[j] += dev * dev;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    moments.stddev[j] = std::sqrt(moments.stddev[j] / static_cast<double>(n));
    moments.avg_stddev += moments.stddev[j];
  }
  moments.avg_stddev /= static_cast<double>(d);
  return moments;
}

PfvDataset GenerateHistogramDataset(const HistogramDatasetConfig& config) {
  GAUSS_CHECK(config.dim > 0 && config.size > 0 && config.cluster_count > 0);
  Rng rng(config.seed);

  // Cluster centers: Dirichlet(1,...,1)-distributed profiles on the simplex
  // (sample exponentials and normalize) — typical of color histograms where
  // a handful of bins dominate each image group.
  std::vector<std::vector<double>> centers(config.cluster_count);
  for (auto& center : centers) {
    center.resize(config.dim);
    double sum = 0.0;
    for (double& c : center) {
      c = rng.Exponential(1.0);
      sum += c;
    }
    for (double& c : center) c /= sum;
  }

  // First pass: generate the mean vectors.
  std::vector<std::vector<double>> mus;
  mus.reserve(config.size);
  for (size_t i = 0; i < config.size; ++i) {
    const auto& center = centers[rng.UniformInt(config.cluster_count)];
    std::vector<double> mu(config.dim);
    double sum = 0.0;
    for (size_t j = 0; j < config.dim; ++j) {
      // Scatter proportional to the bin height (bright bins vary more),
      // clipped at zero to stay a histogram.
      const double noise =
          rng.Gaussian(0.0, config.within_cluster_spread * (center[j] + 1e-3));
      mu[j] = std::max(0.0, center[j] + noise);
      sum += mu[j];
    }
    if (sum <= 0.0) {
      mu.assign(config.dim, 1.0 / static_cast<double>(config.dim));
      sum = 1.0;
    }
    for (double& v : mu) v /= sum;
    mus.push_back(std::move(mu));
  }

  // Auto-scale the sigma model to the realized per-dimension spread.
  SigmaModel sigma_model = config.sigma_model;
  if (sigma_model.scale <= 0.0) {
    PfvDataset probe(config.dim);
    std::vector<double> unit_sigma(config.dim, 1.0);
    for (size_t i = 0; i < mus.size(); ++i) {
      probe.Add(Pfv(i, mus[i], unit_sigma));
    }
    sigma_model.scale = std::max(1e-6, ComputeMoments(probe).avg_stddev);
  }

  PfvDataset dataset(config.dim);
  for (size_t i = 0; i < config.size; ++i) {
    std::vector<double> sigma(config.dim);
    for (double& s : sigma) s = std::max(1e-9, sigma_model.Draw(rng));
    dataset.Add(Pfv(i, std::move(mus[i]), std::move(sigma)));
  }
  return dataset;
}

PfvDataset GenerateClusteredDataset(const ClusteredDatasetConfig& config) {
  GAUSS_CHECK(config.dim > 0 && config.size > 0 && config.cluster_count > 0);
  Rng rng(config.seed);
  std::vector<std::vector<double>> centers(config.cluster_count);
  for (auto& center : centers) {
    center.resize(config.dim);
    for (double& v : center) v = rng.NextDouble();
  }
  PfvDataset dataset(config.dim);
  for (size_t i = 0; i < config.size; ++i) {
    const auto& center = centers[rng.UniformInt(config.cluster_count)];
    std::vector<double> mu(config.dim), sigma(config.dim);
    for (size_t j = 0; j < config.dim; ++j) {
      mu[j] = center[j] + rng.Gaussian(0.0, config.cluster_stddev);
    }
    for (double& s : sigma) s = std::max(1e-9, config.sigma_model.Draw(rng));
    dataset.Add(Pfv(i, std::move(mu), std::move(sigma)));
  }
  return dataset;
}

PfvDataset GenerateUniformDataset(const UniformDatasetConfig& config) {
  GAUSS_CHECK(config.dim > 0 && config.size > 0);
  Rng rng(config.seed);
  PfvDataset dataset(config.dim);
  for (size_t i = 0; i < config.size; ++i) {
    std::vector<double> mu(config.dim), sigma(config.dim);
    for (double& m : mu) m = rng.NextDouble();
    for (double& s : sigma) s = std::max(1e-9, config.sigma_model.Draw(rng));
    dataset.Add(Pfv(i, std::move(mu), std::move(sigma)));
  }
  return dataset;
}

}  // namespace gauss
