#include "data/workload.h"

#include <algorithm>

#include "common/macros.h"

namespace gauss {

std::vector<IdentificationQuery> GenerateWorkload(
    const PfvDataset& dataset, const WorkloadConfig& config) {
  GAUSS_CHECK(dataset.size() > 0);
  GAUSS_CHECK(config.query_count > 0);
  Rng rng(config.seed);

  const std::vector<size_t> picks = rng.SampleWithoutReplacement(
      dataset.size(), std::min(config.query_count, dataset.size()));

  std::vector<IdentificationQuery> workload;
  workload.reserve(picks.size());
  for (size_t index : picks) {
    const Pfv& source = dataset[index];
    std::vector<double> mu(dataset.dim()), sigma(dataset.dim());
    for (size_t j = 0; j < dataset.dim(); ++j) {
      // Observed value drawn w.r.t. the source object's Gaussian.
      mu[j] = rng.Gaussian(source.mu[j], source.sigma[j]);
      sigma[j] = std::max(1e-9, config.query_sigma_model.Draw(rng));
    }
    IdentificationQuery iq;
    iq.query = Pfv(1000000000ull + source.id, std::move(mu), std::move(sigma));
    iq.true_id = source.id;
    workload.push_back(std::move(iq));
  }
  return workload;
}

}  // namespace gauss
