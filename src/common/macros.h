#ifndef GAUSS_COMMON_MACROS_H_
#define GAUSS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking. GAUSS_CHECK is always on; GAUSS_DCHECK compiles away in
// NDEBUG builds. Failures abort with file/line context — following the
// database-kernel convention that broken invariants must not be silently
// propagated into persistent structures.
#define GAUSS_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GAUSS_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define GAUSS_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "GAUSS_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define GAUSS_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define GAUSS_DCHECK(cond) GAUSS_CHECK(cond)
#endif

#endif  // GAUSS_COMMON_MACROS_H_
