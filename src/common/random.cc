#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace gauss {

namespace {

// splitmix64, used to expand the single seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  GAUSS_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  GAUSS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::Gaussian(double mu, double sigma) {
  GAUSS_DCHECK(sigma >= 0.0);
  return mu + sigma * NextGaussian();
}

double Rng::Exponential(double lambda) {
  GAUSS_CHECK(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GAUSS_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace gauss
