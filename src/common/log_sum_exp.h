#ifndef GAUSS_COMMON_LOG_SUM_EXP_H_
#define GAUSS_COMMON_LOG_SUM_EXP_H_

#include <cmath>
#include <limits>

namespace gauss {

// Streaming log-sum-exp accumulator: computes log(sum_i exp(x_i)) without
// overflow or underflow, rescaling on the fly when a new maximum arrives.
// Used by the sequential-scan query path where the Bayes denominator is the
// sum of up to n per-object densities whose logs can easily reach +-1e3.
class LogSumExp {
 public:
  LogSumExp() = default;

  void Add(double log_value) {
    if (std::isinf(log_value) && log_value < 0) return;  // exp() == 0
    if (log_value <= max_) {
      sum_ += std::exp(log_value - max_);
    } else {
      // Rescale the running sum to the new maximum.
      sum_ = sum_ * std::exp(max_ - log_value) + 1.0;
      max_ = log_value;
    }
    ++count_;
  }

  // log(sum of accumulated values); -inf if empty.
  double LogTotal() const {
    if (count_ == 0 || sum_ == 0.0) {
      return -std::numeric_limits<double>::infinity();
    }
    return max_ + std::log(sum_);
  }

  size_t count() const { return count_; }

 private:
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
  size_t count_ = 0;
};

// Kahan (compensated) summation for long chains of small linear-space terms,
// used for the incremental minSum/maxSum denominator bounds maintained by the
// Gauss-tree query algorithms (which both add and subtract contributions).
class KahanSum {
 public:
  KahanSum() = default;

  void Add(double v) {
    const double y = v - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  void Subtract(double v) { Add(-v); }

  double Value() const { return sum_; }

  void Reset() {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace gauss

#endif  // GAUSS_COMMON_LOG_SUM_EXP_H_
