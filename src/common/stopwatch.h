#ifndef GAUSS_COMMON_STOPWATCH_H_
#define GAUSS_COMMON_STOPWATCH_H_

#include <ctime>

namespace gauss {

// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { clock_gettime(CLOCK_MONOTONIC, &start_); }

  // Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    timespec now;
    clock_gettime(CLOCK_MONOTONIC, &now);
    return static_cast<double>(now.tv_sec - start_.tv_sec) +
           1e-9 * static_cast<double>(now.tv_nsec - start_.tv_nsec);
  }

 private:
  timespec start_;
};

// CPU-time stopwatch: measures time the process actually spent on-CPU,
// matching the paper's separate "CPU time" metric (excludes simulated I/O).
class CpuStopwatch {
 public:
  CpuStopwatch() { Restart(); }

  void Restart() { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start_); }

  double ElapsedSeconds() const {
    timespec now;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &now);
    return static_cast<double>(now.tv_sec - start_.tv_sec) +
           1e-9 * static_cast<double>(now.tv_nsec - start_.tv_nsec);
  }

 private:
  timespec start_;
};

}  // namespace gauss

#endif  // GAUSS_COMMON_STOPWATCH_H_
