#ifndef GAUSS_COMMON_RANDOM_H_
#define GAUSS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gauss {

// Deterministic, platform-independent pseudo random number generator
// (xoshiro256++). We deliberately avoid <random> distributions because their
// output is implementation-defined; all experiments in this repository must
// be bit-for-bit reproducible across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniformly distributed 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  // Normal deviate with the given mean and standard deviation.
  double Gaussian(double mu, double sigma);

  // Exponential deviate with rate `lambda` (> 0).
  double Exponential(double lambda);

  // Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gauss

#endif  // GAUSS_COMMON_RANDOM_H_
