#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "xtree/rect.h"
#include "xtree/xtree.h"
#include "xtree/xtree_queries.h"

namespace gauss {
namespace {

Pfv RandomPfv(Rng& rng, uint64_t id, size_t dim) {
  std::vector<double> mu(dim), sigma(dim);
  for (double& m : mu) m = rng.Uniform(0, 1);
  for (double& s : sigma) s = rng.Uniform(0.005, 0.1);
  return Pfv(id, std::move(mu), std::move(sigma));
}

TEST(RectTest, QuantileBoxFromPfv) {
  const Pfv pfv(1, {1.0, -2.0}, {0.5, 0.25});
  const Rect rect = Rect::FromPfvQuantile(pfv, 1.96);
  EXPECT_NEAR(rect.lo(0), 1.0 - 1.96 * 0.5, 1e-15);
  EXPECT_NEAR(rect.hi(0), 1.0 + 1.96 * 0.5, 1e-15);
  EXPECT_NEAR(rect.lo(1), -2.0 - 1.96 * 0.25, 1e-15);
  EXPECT_NEAR(rect.hi(1), -2.0 + 1.96 * 0.25, 1e-15);
}

TEST(RectTest, IntersectionAndContainment) {
  const Rect a({0.0, 0.0}, {2.0, 2.0});
  const Rect b({1.0, 1.0}, {3.0, 3.0});
  const Rect c({2.5, 2.5}, {4.0, 4.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(Rect({-1, -1}, {5, 5}).Contains(a));
  EXPECT_FALSE(a.Contains(b));
}

TEST(RectTest, TouchingRectanglesIntersect) {
  const Rect a({0.0}, {1.0});
  const Rect b({1.0}, {2.0});
  EXPECT_TRUE(a.Intersects(b));
}

TEST(RectTest, VolumeMarginOverlap) {
  const Rect a({0.0, 0.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  const Rect b({1.0, 1.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 3.0 * 4.0 - 6.0);
}

TEST(RectTest, MinDistAndCenterDist) {
  const Rect r({0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.MinDist2({0.5, 0.5}), 0.0);       // inside
  EXPECT_DOUBLE_EQ(r.MinDist2({2.0, 0.5}), 1.0);       // right of box
  EXPECT_DOUBLE_EQ(r.MinDist2({2.0, 3.0}), 1.0 + 4.0); // corner
  EXPECT_DOUBLE_EQ(r.CenterDist2({1.5, 0.5}), 1.0);
}

TEST(RectTest, IncludeGrowsToCover) {
  Rect a({0.0}, {1.0});
  a.Include(Rect({-2.0}, {0.5}));
  EXPECT_DOUBLE_EQ(a.lo(0), -2.0);
  EXPECT_DOUBLE_EQ(a.hi(0), 1.0);
}

class XTreeTest : public ::testing::Test {
 protected:
  XTreeTest() : device_(2048), pool_(&device_, 1 << 14) {}

  InMemoryPageDevice device_;
  BufferPool pool_;
};

TEST_F(XTreeTest, StructureValidAfterRandomInserts) {
  XTree tree(&pool_, 3);
  PfvFile file(&pool_, 3);
  Rng rng(81);
  for (uint64_t i = 0; i < 2000; ++i) {
    const Pfv pfv = RandomPfv(rng, i, 3);
    file.Append(pfv);
    tree.Insert(pfv, static_cast<uint32_t>(i));
    if (i % 500 == 499) tree.Validate();
  }
  tree.Validate();
  EXPECT_EQ(tree.size(), 2000u);
}

TEST_F(XTreeTest, FinalizePreservesStructure) {
  XTree tree(&pool_, 2);
  Rng rng(82);
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(RandomPfv(rng, i, 2), static_cast<uint32_t>(i));
  }
  tree.Validate();
  tree.Finalize();
  tree.Validate();  // now exercising serialization + buffer pool
}

TEST_F(XTreeTest, RangeCandidatesFindAllIntersecting) {
  XTree tree(&pool_, 2);
  PfvFile file(&pool_, 2);
  Rng rng(83);
  std::vector<Pfv> pfvs;
  for (uint64_t i = 0; i < 1500; ++i) {
    pfvs.push_back(RandomPfv(rng, i, 2));
    file.Append(pfvs.back());
    tree.Insert(pfvs.back(), static_cast<uint32_t>(i));
  }
  tree.Finalize();
  XTreeQueries queries(&tree, &file);

  const Pfv q = RandomPfv(rng, 5000, 2);
  const Rect query_rect = Rect::FromPfvQuantile(q, tree.options().quantile_z);
  const std::vector<uint32_t> candidates = queries.RangeCandidates(query_rect);

  // Oracle: brute-force intersection test.
  std::set<uint32_t> expected;
  for (uint32_t i = 0; i < pfvs.size(); ++i) {
    if (Rect::FromPfvQuantile(pfvs[i], 1.96).Intersects(query_rect)) {
      expected.insert(i);
    }
  }
  EXPECT_EQ(std::set<uint32_t>(candidates.begin(), candidates.end()), expected);
}

TEST_F(XTreeTest, KnnMeansMatchesBruteForce) {
  XTree tree(&pool_, 3);
  PfvFile file(&pool_, 3);
  Rng rng(84);
  for (uint64_t i = 0; i < 1200; ++i) {
    const Pfv pfv = RandomPfv(rng, i, 3);
    file.Append(pfv);
    tree.Insert(pfv, static_cast<uint32_t>(i));
  }
  tree.Finalize();
  XTreeQueries queries(&tree, &file);
  SeqScan scan(&file);

  for (int trial = 0; trial < 10; ++trial) {
    const Pfv q = RandomPfv(rng, 9000 + trial, 3);
    const auto tree_knn = queries.QueryKnnMeans(q, 7);
    const auto brute_knn = scan.QueryKnnMeans(q, 7);
    EXPECT_EQ(tree_knn, brute_knn);
  }
}

TEST_F(XTreeTest, MliqFindsNearOptimalAnswers) {
  // The rectangle filter admits false dismissals (paper acknowledges this),
  // but in-range answers must match the exact method most of the time.
  XTree tree(&pool_, 3);
  PfvFile file(&pool_, 3);
  Rng rng(85);
  PfvDataset dataset(3);
  for (uint64_t i = 0; i < 2000; ++i) {
    dataset.Add(RandomPfv(rng, i, 3));
    file.Append(dataset[i]);
    tree.Insert(dataset[i], static_cast<uint32_t>(i));
  }
  tree.Finalize();
  XTreeQueries queries(&tree, &file);
  SeqScan scan(&file);

  int agreements = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    // Queries generated from database objects (realistic identification).
    const size_t source = rng.UniformInt(2000);
    std::vector<double> mu(3), sigma(3);
    for (size_t j = 0; j < 3; ++j) {
      mu[j] = rng.Gaussian(dataset[source].mu[j], dataset[source].sigma[j]);
      sigma[j] = rng.Uniform(0.005, 0.1);
    }
    const Pfv q(7000 + trial, std::move(mu), std::move(sigma));
    const MliqResult approx = queries.QueryMliq(q, 1);
    const MliqResult exact = scan.QueryMliq(q, 1);
    if (!approx.items.empty() && !exact.items.empty() &&
        approx.items[0].id == exact.items[0].id) {
      ++agreements;
    }
  }
  EXPECT_GE(agreements, trials * 8 / 10);  // "only slightly below" the G-tree
}

TEST_F(XTreeTest, TiqProbabilitiesNormalizedOverCandidates) {
  XTree tree(&pool_, 2);
  PfvFile file(&pool_, 2);
  Rng rng(86);
  for (uint64_t i = 0; i < 800; ++i) {
    const Pfv pfv = RandomPfv(rng, i, 2);
    file.Append(pfv);
    tree.Insert(pfv, static_cast<uint32_t>(i));
  }
  tree.Finalize();
  XTreeQueries queries(&tree, &file);
  const Pfv q = RandomPfv(rng, 3000, 2);
  const TiqResult result = queries.QueryTiq(q, 0.05);
  double total = 0.0;
  for (const auto& item : result.items) {
    EXPECT_GE(item.probability, 0.05);
    total += item.probability;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(XTreeSupernodeTest, HighDimClusteredDataCreatesSupernodes) {
  // High-dimensional overlapping rectangles make overlap-free directory
  // splits impossible — the X-tree must fall back to supernodes.
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 14);
  XTree tree(&pool, 12);
  Rng rng(87);
  for (uint64_t i = 0; i < 3000; ++i) {
    std::vector<double> mu(12), sigma(12);
    for (double& m : mu) m = rng.Uniform(0, 1);
    for (double& s : sigma) s = rng.Uniform(0.2, 0.5);  // huge boxes: overlap
    tree.Insert(Pfv(i, std::move(mu), std::move(sigma)),
                static_cast<uint32_t>(i));
  }
  tree.Validate();
  EXPECT_GT(tree.supernode_count(), 0u);
  tree.Finalize();
  tree.Validate();  // supernode serialization spans pages correctly
}

TEST(XTreeEdgeTest, EmptyTreeQueries) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 64);
  XTree tree(&pool, 2);
  PfvFile file(&pool, 2);
  tree.Finalize();
  XTreeQueries queries(&tree, &file);
  const Pfv q(1, {0.5, 0.5}, {0.1, 0.1});
  EXPECT_TRUE(queries.QueryMliq(q, 3).items.empty());
  EXPECT_TRUE(queries.QueryTiq(q, 0.5).items.empty());
  EXPECT_TRUE(queries.QueryKnnMeans(q, 3).empty());
}

}  // namespace
}  // namespace gauss
