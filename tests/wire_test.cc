// Unit tests of the shard wire protocol (net/wire.h): exhaustive encode →
// decode round-trips for every message (including non-finite doubles, which
// must survive bit-exactly — the loopback differential depends on it), and
// the malformed-input contract: truncated frames, oversized length prefixes,
// unknown message tags and mangled bodies all come back as typed NetErrors,
// never a crash, never a misparse.

#include "net/wire.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "net/net_error.h"
#include "service/query.h"

namespace gauss {
namespace {

// Doubles whose bit patterns catch lossy transports: negative zero, denormal,
// infinities, and a NaN (compared by bit pattern, not by value).
const double kNastyDoubles[] = {
    0.0,
    -0.0,
    std::numeric_limits<double>::denorm_min(),
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::quiet_NaN(),
    1.7976931348623157e308,
    -2.2250738585072014e-308,
};

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitsEqual(double got, double want) {
  EXPECT_EQ(Bits(got), Bits(want));
}

// ------------------------------- framing ------------------------------------

TEST(WireFraming, RoundTripsFramesBackToBack) {
  std::vector<uint8_t> wire;
  for (uint8_t tag = static_cast<uint8_t>(MsgType::kHello);
       tag <= static_cast<uint8_t>(MsgType::kError); ++tag) {
    std::vector<uint8_t> body = {tag, 0xff, 0x00, tag};
    AppendFrame(static_cast<MsgType>(tag), /*request_id=*/100 + tag, body,
                &wire);
  }

  size_t offset = 0;
  for (uint8_t tag = static_cast<uint8_t>(MsgType::kHello);
       tag <= static_cast<uint8_t>(MsgType::kError); ++tag) {
    Frame frame;
    size_t consumed = 0;
    NetError error;
    ASSERT_EQ(ParseFrame(wire.data() + offset, wire.size() - offset, &frame,
                         &consumed, &error),
              FrameParse::kFrame);
    EXPECT_EQ(frame.type, static_cast<MsgType>(tag));
    EXPECT_EQ(frame.request_id, 100u + tag);
    EXPECT_EQ(frame.body, (std::vector<uint8_t>{tag, 0xff, 0x00, tag}));
    offset += consumed;
  }
  EXPECT_EQ(offset, wire.size());
}

TEST(WireFraming, EveryTruncationAsksForMoreWithoutConsuming) {
  std::vector<uint8_t> wire;
  AppendFrame(MsgType::kStart, 7, {1, 2, 3, 4, 5}, &wire);

  // Every strict prefix of a valid frame is an incomplete read in progress:
  // kNeedMore, nothing consumed, no error. (This is what the streaming
  // reader loop in rpc_backend.cc leans on.)
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    size_t consumed = 1;
    NetError error;
    EXPECT_EQ(ParseFrame(wire.data(), len, &frame, &consumed, &error),
              FrameParse::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireFraming, OversizedLengthPrefixIsATypedError) {
  std::vector<uint8_t> wire;
  WireWriter writer(&wire);
  writer.U32(static_cast<uint32_t>(kMaxFramePayload) + 1);
  // No matter how much garbage follows, the prefix alone condemns the
  // stream — and no allocation of prefix size ever happens.
  wire.resize(wire.size() + 64, 0xab);

  Frame frame;
  size_t consumed = 0;
  NetError error;
  EXPECT_EQ(ParseFrame(wire.data(), wire.size(), &frame, &consumed, &error),
            FrameParse::kError);
  EXPECT_EQ(error.code, NetErrorCode::kProtocolError);
  EXPECT_EQ(consumed, 0u);
}

TEST(WireFraming, UndersizedPayloadIsATypedError) {
  // A frame must at least hold the tag and request id (9 bytes).
  std::vector<uint8_t> wire;
  WireWriter writer(&wire);
  writer.U32(8);
  wire.resize(wire.size() + 8, 0);

  Frame frame;
  size_t consumed = 0;
  NetError error;
  EXPECT_EQ(ParseFrame(wire.data(), wire.size(), &frame, &consumed, &error),
            FrameParse::kError);
  EXPECT_EQ(error.code, NetErrorCode::kProtocolError);
}

TEST(WireFraming, UnknownMessageTagIsATypedError) {
  for (const uint8_t bad_tag :
       {static_cast<uint8_t>(0),
        static_cast<uint8_t>(static_cast<uint8_t>(MsgType::kError) + 1),
        static_cast<uint8_t>(0xff)}) {
    std::vector<uint8_t> wire;
    AppendFrame(MsgType::kHello, 1, {}, &wire);
    wire[4] = bad_tag;  // overwrite the tag byte behind the length prefix

    Frame frame;
    size_t consumed = 0;
    NetError error;
    EXPECT_EQ(ParseFrame(wire.data(), wire.size(), &frame, &consumed, &error),
              FrameParse::kError)
        << "tag " << int(bad_tag);
    EXPECT_EQ(error.code, NetErrorCode::kProtocolError);
  }
}

// ------------------------------ handshake -----------------------------------

TEST(WireHandshake, AcceptsCurrentRejectsForeignAndFuture) {
  EXPECT_TRUE(CheckHandshake(kWireMagic, kWireVersion).ok());
  // Not a gauss shard at all.
  EXPECT_EQ(CheckHandshake(0x0123456789abcdefull, kWireVersion).code,
            NetErrorCode::kProtocolMismatch);
  // A future protocol version must be refused up front (versioning rule:
  // any format change bumps kWireVersion; there is no in-version
  // extensibility to fall back on).
  EXPECT_EQ(CheckHandshake(kWireMagic, kWireVersion + 1).code,
            NetErrorCode::kProtocolMismatch);
  EXPECT_EQ(CheckHandshake(kWireMagic, 0).code,
            NetErrorCode::kProtocolMismatch);
}

TEST(WireHandshake, HelloAndAckRoundTrip) {
  WireHello hello;
  std::vector<uint8_t> body;
  EncodeHello(hello, &body);
  WireHello hello2;
  hello2.magic = 0;
  hello2.version = 0;
  ASSERT_TRUE(DecodeHello(body.data(), body.size(), &hello2).ok());
  EXPECT_EQ(hello2.magic, kWireMagic);
  EXPECT_EQ(hello2.version, kWireVersion);

  WireHelloAck ack;
  ack.dim = 12;
  ack.tree_size = 123456789;
  body.clear();
  EncodeHelloAck(ack, &body);
  WireHelloAck ack2;
  ASSERT_TRUE(DecodeHelloAck(body.data(), body.size(), &ack2).ok());
  EXPECT_EQ(ack2.dim, 12u);
  EXPECT_EQ(ack2.tree_size, 123456789u);
}

// ----------------------- body truncation/trailing sweep ---------------------

// Every strict prefix of a valid body must decode to a typed protocol error
// (never a crash, never a false success), and one trailing byte must too —
// trailing garbage means the peers disagree about the format.
template <typename DecodeFn>
void SweepMalformedBodies(const std::vector<uint8_t>& valid, DecodeFn decode) {
  for (size_t len = 0; len < valid.size(); ++len) {
    const NetError error = decode(valid.data(), len);
    EXPECT_EQ(error.code, NetErrorCode::kProtocolError)
        << "prefix length " << len << " of " << valid.size();
  }
  std::vector<uint8_t> trailing = valid;
  trailing.push_back(0x5a);
  EXPECT_EQ(decode(trailing.data(), trailing.size()).code,
            NetErrorCode::kProtocolError);
}

// ------------------------------ start/query ---------------------------------

TEST(WireMessages, StartRoundTripsMliqBitExactly) {
  // Pfv validates mu finite and sigma positive-finite, so the probe sticks to
  // the legal-but-bit-tricky corners: negative zero, the largest finite
  // double, the smallest normal, and the smallest denormal. The full nasty
  // set (NaN, infinities) rides in StartReplyRoundTripsBitExactly, whose
  // ScoredObject payloads are unvalidated.
  Pfv probe(42, {kNastyDoubles[1], kNastyDoubles[6], kNastyDoubles[7]},
            {kNastyDoubles[2], kNastyDoubles[6], -kNastyDoubles[7]});
  MliqOptions options;
  options.probability_accuracy = 3.25e-4;
  options.refine_probabilities = false;
  options.prefetch_depth = 9;
  options.denominator_target_gap = kNastyDoubles[7];  // smallest normal
  options.density_floor_log = -kNastyDoubles[6];      // largest-magnitude log
  const Query query = Query::Mliq(probe, /*k=*/5, options);

  std::vector<uint8_t> body;
  EncodeStart(/*traversal=*/0xdeadbeefcafef00dull, query, &body);

  WireStart start;
  ASSERT_TRUE(DecodeStart(body.data(), body.size(), &start).ok());
  EXPECT_EQ(start.traversal, 0xdeadbeefcafef00dull);
  ASSERT_TRUE(start.query.has_value());
  EXPECT_EQ(start.query->kind(), QueryKind::kMliq);
  EXPECT_EQ(start.query->k(), 5u);
  EXPECT_EQ(start.query->pfv().id, 42u);
  ASSERT_EQ(start.query->pfv().dim(), 3u);
  for (size_t d = 0; d < 3; ++d) {
    ExpectBitsEqual(start.query->pfv().mu[d], probe.mu[d]);
    ExpectBitsEqual(start.query->pfv().sigma[d], probe.sigma[d]);
  }
  ExpectBitsEqual(start.query->mliq_options().probability_accuracy, 3.25e-4);
  EXPECT_FALSE(start.query->mliq_options().refine_probabilities);
  EXPECT_EQ(start.query->mliq_options().prefetch_depth, 9u);
  // The coordinator's mass-proportional budget must survive bit-exactly —
  // byte-identical RPC/in-process answers hinge on identical targets.
  ExpectBitsEqual(start.query->mliq_options().denominator_target_gap,
                  kNastyDoubles[7]);
  ExpectBitsEqual(start.query->mliq_options().density_floor_log,
                  -kNastyDoubles[6]);
  EXPECT_FALSE(start.query->has_deadline());

  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    WireStart out;
    return DecodeStart(data, size, &out);
  });
}

TEST(WireMessages, StartRoundTripsTiqAndDeadlineBudget) {
  Pfv probe(7, {0.25, -0.5}, {0.125, 2.0});
  TiqOptions options;
  options.exact_membership = false;
  options.refine_probabilities = true;
  options.probability_accuracy = 1e-2;
  options.denominator_target_gap = 6.5e-7;
  options.denominator_floor = 1.0 + 0x1p-52;  // off-by-one-ulp detector
  const Query query = Query::Tiq(probe, /*threshold=*/0.2, options)
                          .DeadlineAfter(std::chrono::milliseconds(500));

  std::vector<uint8_t> body;
  EncodeStart(/*traversal=*/3, query, &body);

  WireStart start;
  ASSERT_TRUE(DecodeStart(body.data(), body.size(), &start).ok());
  ASSERT_TRUE(start.query.has_value());
  EXPECT_EQ(start.query->kind(), QueryKind::kTiq);
  ExpectBitsEqual(start.query->threshold(), 0.2);
  EXPECT_FALSE(start.query->tiq_options().exact_membership);
  EXPECT_TRUE(start.query->tiq_options().refine_probabilities);
  ExpectBitsEqual(start.query->tiq_options().denominator_target_gap, 6.5e-7);
  ExpectBitsEqual(start.query->tiq_options().denominator_floor,
                  1.0 + 0x1p-52);
  // The deadline travels as a relative budget and re-anchors on the
  // receiver's clock: still present, due within the original 500 ms.
  ASSERT_TRUE(start.query->has_deadline());
  const auto remaining =
      start.query->deadline() - std::chrono::steady_clock::now();
  EXPECT_LE(remaining, std::chrono::milliseconds(500));
  EXPECT_GT(remaining, std::chrono::milliseconds(0));
}

TEST(WireMessages, StartRejectsUnknownQueryKind) {
  std::vector<uint8_t> body;
  EncodeStart(1, Query::Mliq(Pfv(1, {0.5}, {0.1}), 1), &body);
  body[8] = 0x7f;  // query kind byte sits right after the traversal handle
  WireStart out;
  EXPECT_EQ(DecodeStart(body.data(), body.size(), &out).code,
            NetErrorCode::kProtocolError);
}

TEST(WireMessages, StartRejectsHostileDimensionality) {
  // A 4 GiB-implying dimension count with an empty remainder must be
  // rejected by the plausibility check, not resized into an allocation.
  std::vector<uint8_t> body;
  WireWriter writer(&body);
  writer.U64(1);                // traversal
  writer.U8(0);                 // kMliq
  writer.U64(99);               // pfv id
  writer.U32(0x3fffffffu);      // dim: a lie
  WireStart out;
  EXPECT_EQ(DecodeStart(body.data(), body.size(), &out).code,
            NetErrorCode::kProtocolError);
}

// ------------------------------ start reply ---------------------------------

TEST(WireMessages, StartReplyRoundTripsBitExactly) {
  ShardPartial partial;
  partial.log_ref = kNastyDoubles[4];
  partial.tree_size = 1234;
  partial.denominator_lo = kNastyDoubles[2];
  partial.denominator_hi = kNastyDoubles[6];
  partial.exhausted = false;
  partial.nodes_visited = 11;
  partial.leaf_nodes_visited = 7;
  partial.objects_evaluated = 999;
  for (size_t i = 0; i < 8; ++i) {
    partial.items.push_back(
        {/*id=*/1000 + i, kNastyDoubles[i], kNastyDoubles[7 - i]});
  }

  std::vector<uint8_t> body;
  EncodeStartReply(partial, &body);
  ShardPartial decoded;
  ASSERT_TRUE(DecodeStartReply(body.data(), body.size(), &decoded).ok());
  ExpectBitsEqual(decoded.log_ref, partial.log_ref);
  EXPECT_EQ(decoded.tree_size, partial.tree_size);
  ExpectBitsEqual(decoded.denominator_lo, partial.denominator_lo);
  ExpectBitsEqual(decoded.denominator_hi, partial.denominator_hi);
  EXPECT_EQ(decoded.exhausted, partial.exhausted);
  EXPECT_EQ(decoded.nodes_visited, partial.nodes_visited);
  EXPECT_EQ(decoded.leaf_nodes_visited, partial.leaf_nodes_visited);
  EXPECT_EQ(decoded.objects_evaluated, partial.objects_evaluated);
  ASSERT_EQ(decoded.items.size(), partial.items.size());
  for (size_t i = 0; i < partial.items.size(); ++i) {
    EXPECT_EQ(decoded.items[i].id, partial.items[i].id);
    ExpectBitsEqual(decoded.items[i].scaled_density,
                    partial.items[i].scaled_density);
    ExpectBitsEqual(decoded.items[i].log_density,
                    partial.items[i].log_density);
  }

  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    ShardPartial out;
    return DecodeStartReply(data, size, &out);
  });
}

TEST(WireMessages, StartReplyRejectsHostileItemCount) {
  ShardPartial partial;
  std::vector<uint8_t> body;
  EncodeStartReply(partial, &body);
  // Rewrite the trailing item count (last 4 bytes of an item-less reply).
  body[body.size() - 4] = 0xff;
  body[body.size() - 3] = 0xff;
  body[body.size() - 2] = 0xff;
  body[body.size() - 1] = 0x7f;
  ShardPartial out;
  EXPECT_EQ(DecodeStartReply(body.data(), body.size(), &out).code,
            NetErrorCode::kProtocolError);
}

// ----------------------------- refine round ---------------------------------

TEST(WireMessages, RefineAndReplyRoundTrip) {
  std::vector<RefineSpec> specs = {{1, 0.5}, {2, kNastyDoubles[2]},
                                   {0xffffffffffffffffull, 0.0}};
  std::vector<uint8_t> body;
  EncodeRefine(specs, &body);
  std::vector<RefineSpec> specs2;
  ASSERT_TRUE(DecodeRefine(body.data(), body.size(), &specs2).ok());
  ASSERT_EQ(specs2.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs2[i].traversal, specs[i].traversal);
    ExpectBitsEqual(specs2[i].max_gap, specs[i].max_gap);
  }
  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    std::vector<RefineSpec> out;
    return DecodeRefine(data, size, &out);
  });

  std::vector<RefineUpdate> updates(2);
  updates[0] = {kNastyDoubles[1], kNastyDoubles[6], true, 4, 2, 100};
  updates[1] = {0.25, 0.75, false, 40, 20, 1000};
  body.clear();
  EncodeRefineReply(updates, &body);
  std::vector<RefineUpdate> updates2;
  ASSERT_TRUE(DecodeRefineReply(body.data(), body.size(), &updates2).ok());
  ASSERT_EQ(updates2.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ExpectBitsEqual(updates2[i].denominator_lo, updates[i].denominator_lo);
    ExpectBitsEqual(updates2[i].denominator_hi, updates[i].denominator_hi);
    EXPECT_EQ(updates2[i].exhausted, updates[i].exhausted);
    EXPECT_EQ(updates2[i].nodes_visited, updates[i].nodes_visited);
    EXPECT_EQ(updates2[i].leaf_nodes_visited, updates[i].leaf_nodes_visited);
    EXPECT_EQ(updates2[i].objects_evaluated, updates[i].objects_evaluated);
  }
  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    std::vector<RefineUpdate> out;
    return DecodeRefineReply(data, size, &out);
  });
}

// ------------------------------- release ------------------------------------

TEST(WireMessages, ReleaseRoundTrips) {
  const std::vector<uint64_t> handles = {3, 1, 0xffffffffffffffffull};
  std::vector<uint8_t> body;
  EncodeRelease(handles, &body);
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DecodeRelease(body.data(), body.size(), &decoded).ok());
  EXPECT_EQ(decoded, handles);
  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    std::vector<uint64_t> out;
    return DecodeRelease(data, size, &out);
  });
}

// -------------------------------- stats -------------------------------------

TEST(WireMessages, StatsReplyRoundTripsEveryCounter) {
  IoStats io;
  io.logical_reads = 1;
  io.physical_reads = 2;
  io.physical_writes = 3;
  io.evictions = 4;
  io.prefetch_issued = 5;
  io.prefetch_hits = 6;
  io.prefetch_wasted = 7;
  ServiceStats service;
  service.mliq_queries = 10;
  service.tiq_queries = 11;
  service.shed_queries = 12;
  service.deadline_exceeded_queries = 13;
  service.shard_error_queries = 14;
  service.refine_rounds = 15;
  service.refine_batched_queries = 16;
  service.wall_seconds = 1.5;
  service.qps = 14.0;
  service.latency = {21, 1.0, 2.0, 3.0, 4.0, kNastyDoubles[6]};
  service.io = io;
  service.nodes_visited = 31;
  service.leaf_nodes_visited = 32;
  service.objects_evaluated = 33;

  std::vector<uint8_t> body;
  EncodeStatsReply(io, service, &body);
  IoStats io2;
  ServiceStats service2;
  ASSERT_TRUE(DecodeStatsReply(body.data(), body.size(), &io2, &service2).ok());
  EXPECT_EQ(io2.logical_reads, 1u);
  EXPECT_EQ(io2.prefetch_wasted, 7u);
  EXPECT_EQ(service2.mliq_queries, 10u);
  EXPECT_EQ(service2.tiq_queries, 11u);
  EXPECT_EQ(service2.shed_queries, 12u);
  EXPECT_EQ(service2.deadline_exceeded_queries, 13u);
  EXPECT_EQ(service2.shard_error_queries, 14u);
  EXPECT_EQ(service2.refine_rounds, 15u);
  EXPECT_EQ(service2.refine_batched_queries, 16u);
  ExpectBitsEqual(service2.wall_seconds, 1.5);
  EXPECT_EQ(service2.latency.count, 21u);
  ExpectBitsEqual(service2.latency.max_us, kNastyDoubles[6]);
  EXPECT_EQ(service2.io.evictions, 4u);
  EXPECT_EQ(service2.objects_evaluated, 33u);

  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    IoStats io_out;
    ServiceStats service_out;
    return DecodeStatsReply(data, size, &io_out, &service_out);
  });
}

// ----------------------------- sketch reply ---------------------------------

TEST(WireMessages, SketchReplyRoundTripsBitExactly) {
  ShardSketch sketch;
  sketch.tree_size = 1234;
  sketch.sigma_policy = SigmaPolicy::kAdditive;
  sketch.root_bounds = {{kNastyDoubles[1], kNastyDoubles[6], 0.25, 2.0},
                        {-1.5, 1.5, kNastyDoubles[2], kNastyDoubles[6]}};
  sketch.entries.push_back(
      {400, {{0.0, 0.5, 0.1, 0.2}, {kNastyDoubles[7], 0.0, 0.1, 0.1}}});
  sketch.entries.push_back(
      {834, {{-2.0, -1.0, 0.5, 0.5}, {3.0, 4.0, 0.25, 1.0}}});

  std::vector<uint8_t> body;
  EncodeSketchReply(sketch, /*dim=*/2, &body);

  ShardSketch out;
  ASSERT_TRUE(DecodeSketchReply(body.data(), body.size(), &out).ok());
  EXPECT_EQ(out.tree_size, 1234u);
  EXPECT_EQ(out.sigma_policy, SigmaPolicy::kAdditive);
  ASSERT_EQ(out.root_bounds.size(), 2u);
  ASSERT_EQ(out.entries.size(), 2u);
  for (size_t d = 0; d < 2; ++d) {
    ExpectBitsEqual(out.root_bounds[d].mu_lo, sketch.root_bounds[d].mu_lo);
    ExpectBitsEqual(out.root_bounds[d].mu_hi, sketch.root_bounds[d].mu_hi);
    ExpectBitsEqual(out.root_bounds[d].sigma_lo,
                    sketch.root_bounds[d].sigma_lo);
    ExpectBitsEqual(out.root_bounds[d].sigma_hi,
                    sketch.root_bounds[d].sigma_hi);
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(out.entries[i].count, sketch.entries[i].count);
    ASSERT_EQ(out.entries[i].bounds.size(), 2u);
    for (size_t d = 0; d < 2; ++d) {
      ExpectBitsEqual(out.entries[i].bounds[d].mu_lo,
                      sketch.entries[i].bounds[d].mu_lo);
      ExpectBitsEqual(out.entries[i].bounds[d].sigma_hi,
                      sketch.entries[i].bounds[d].sigma_hi);
    }
  }

  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    ShardSketch s;
    return DecodeSketchReply(data, size, &s);
  });
}

TEST(WireMessages, SketchReplyRoundTripsEmptyShard) {
  ShardSketch empty;  // tree_size 0: no bounds, no entries travel
  std::vector<uint8_t> body;
  EncodeSketchReply(empty, /*dim=*/5, &body);
  ShardSketch out;
  out.entries.push_back({1, {}});  // must be cleared by the decoder
  ASSERT_TRUE(DecodeSketchReply(body.data(), body.size(), &out).ok());
  EXPECT_EQ(out.tree_size, 0u);
  EXPECT_TRUE(out.root_bounds.empty());
  EXPECT_TRUE(out.entries.empty());
}

TEST(WireMessages, SketchReplyRejectsHostileCountsAndPolicy) {
  // Hostile dimensionality: a 4 GiB-implying dim with an empty remainder.
  {
    std::vector<uint8_t> body;
    WireWriter writer(&body);
    writer.U64(10);          // tree_size
    writer.U8(0);            // policy
    writer.U32(0x3fffffffu); // dim: a lie
    ShardSketch out;
    EXPECT_EQ(DecodeSketchReply(body.data(), body.size(), &out).code,
              NetErrorCode::kProtocolError);
  }
  // Hostile entry count.
  {
    std::vector<uint8_t> body;
    WireWriter writer(&body);
    writer.U64(10);
    writer.U8(0);
    writer.U32(1);  // dim 1
    for (int i = 0; i < 4; ++i) writer.F64(0.5);  // root bounds
    writer.U32(0x7fffffffu);  // entry count: a lie
    ShardSketch out;
    EXPECT_EQ(DecodeSketchReply(body.data(), body.size(), &out).code,
              NetErrorCode::kProtocolError);
  }
  // Unknown sigma policy.
  {
    ShardSketch sketch;
    sketch.tree_size = 1;
    sketch.root_bounds = {{0.0, 1.0, 0.1, 0.2}};
    sketch.entries.push_back({1, {{0.0, 1.0, 0.1, 0.2}}});
    std::vector<uint8_t> body;
    EncodeSketchReply(sketch, /*dim=*/1, &body);
    body[8] = 0x7f;  // the policy byte sits right after tree_size
    ShardSketch out;
    EXPECT_EQ(DecodeSketchReply(body.data(), body.size(), &out).code,
              NetErrorCode::kProtocolError);
  }
  // A non-empty tree claiming zero dimensions is malformed, not "no bounds".
  {
    std::vector<uint8_t> body;
    WireWriter writer(&body);
    writer.U64(10);
    writer.U8(0);
    writer.U32(0);  // dim 0 with tree_size > 0
    ShardSketch out;
    EXPECT_EQ(DecodeSketchReply(body.data(), body.size(), &out).code,
              NetErrorCode::kProtocolError);
  }
}

// -------------------------------- error -------------------------------------

TEST(WireMessages, ErrorRoundTripsCodeAndMessage) {
  NetError error{NetErrorCode::kPeerClosed, "shard went away"};
  std::vector<uint8_t> body;
  EncodeError(error, &body);
  NetError decoded;
  ASSERT_TRUE(DecodeError(body.data(), body.size(), &decoded).ok());
  EXPECT_EQ(decoded.code, NetErrorCode::kPeerClosed);
  EXPECT_EQ(decoded.message, "shard went away");

  SweepMalformedBodies(body, [](const uint8_t* data, size_t size) {
    NetError out;
    return DecodeError(data, size, &out);
  });
}

}  // namespace
}  // namespace gauss
