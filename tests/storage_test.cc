#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/sharded_buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

std::vector<uint8_t> Pattern(uint32_t page_size, uint8_t seed) {
  std::vector<uint8_t> data(page_size);
  for (uint32_t i = 0; i < page_size; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return data;
}

TEST(InMemoryPageDeviceTest, AllocateReadWriteRoundTrip) {
  InMemoryPageDevice device(4096);
  const PageId a = device.Allocate();
  const PageId b = device.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(device.PageCount(), 2u);

  const auto wrote = Pattern(4096, 7);
  device.Write(a, wrote.data());
  std::vector<uint8_t> read(4096);
  device.Read(a, read.data());
  EXPECT_EQ(wrote, read);
}

TEST(InMemoryPageDeviceTest, FreshPagesAreZeroed) {
  InMemoryPageDevice device(512);
  const PageId id = device.Allocate();
  std::vector<uint8_t> read(512, 0xFF);
  device.Read(id, read.data());
  for (uint8_t byte : read) EXPECT_EQ(byte, 0);
}

TEST(FilePageDeviceTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/gauss_file_device_test.db";
  const auto wrote = Pattern(1024, 3);
  {
    FilePageDevice device(path, 1024, /*truncate=*/true);
    const PageId id = device.Allocate();
    device.Write(id, wrote.data());
    device.Sync();
  }
  {
    FilePageDevice device(path, 1024, /*truncate=*/false);
    EXPECT_EQ(device.PageCount(), 1u);
    std::vector<uint8_t> read(1024);
    device.Read(0, read.data());
    EXPECT_EQ(wrote, read);
  }
  std::remove(path.c_str());
}

TEST(BufferPoolTest, SecondFetchIsLogicalOnly) {
  InMemoryPageDevice device(256);
  const PageId id = device.Allocate();
  BufferPool pool(&device, 4);
  pool.Fetch(id);
  pool.Fetch(id);
  EXPECT_EQ(pool.stats().logical_reads, 2u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(device.Allocate());
  BufferPool pool(&device, 2);
  pool.Fetch(ids[0]);
  pool.Fetch(ids[1]);
  pool.Fetch(ids[0]);       // ids[1] becomes LRU
  pool.Fetch(ids[2]);       // evicts ids[1]
  EXPECT_EQ(pool.stats().evictions, 1u);
  const uint64_t physical_before = pool.stats().physical_reads;
  pool.Fetch(ids[0]);       // still resident
  EXPECT_EQ(pool.stats().physical_reads, physical_before);
  pool.Fetch(ids[1]);       // was evicted: physical again
  EXPECT_EQ(pool.stats().physical_reads, physical_before + 1);
}

TEST(BufferPoolTest, DirtyPagesFlushOnEviction) {
  InMemoryPageDevice device(256);
  const PageId a = device.Allocate();
  const PageId b = device.Allocate();
  BufferPool pool(&device, 1);
  {
    PageRef frame = pool.FetchMutable(a);
    frame.mutable_data()[0] = 0xAB;
  }
  pool.Fetch(b);  // evicts dirty a (its ref was released above)
  std::vector<uint8_t> read(256);
  device.Read(a, read.data());
  EXPECT_EQ(read[0], 0xAB);
  EXPECT_EQ(pool.stats().physical_writes, 1u);
}

TEST(BufferPoolTest, WritePageDoesNotReadDevice) {
  InMemoryPageDevice device(256);
  const PageId id = device.Allocate();
  BufferPool pool(&device, 2);
  const auto data = Pattern(256, 9);
  pool.WritePage(id, data.data());
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  const PageRef frame = pool.Fetch(id);
  EXPECT_EQ(std::memcmp(frame.data(), data.data(), 256), 0);
  EXPECT_EQ(pool.stats().physical_reads, 0u);  // still cached
}

TEST(BufferPoolTest, ClearForcesColdStart) {
  InMemoryPageDevice device(256);
  const PageId id = device.Allocate();
  BufferPool pool(&device, 4);
  pool.Fetch(id);
  pool.Clear();
  pool.Fetch(id);
  EXPECT_EQ(pool.stats().physical_reads, 2u);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  InMemoryPageDevice device(128);
  const PageId id = device.Allocate();
  BufferPool pool(&device, 2);
  pool.FetchMutable(id).mutable_data()[5] = 0x5C;
  pool.FlushAll();
  std::vector<uint8_t> read(128);
  device.Read(id, read.data());
  EXPECT_EQ(read[5], 0x5C);
}

TEST(BufferPoolTest, StatsDeltaArithmetic) {
  InMemoryPageDevice device(128);
  const PageId a = device.Allocate();
  const PageId b = device.Allocate();
  BufferPool pool(&device, 4);
  pool.Fetch(a);
  const IoStats before = pool.stats();
  pool.Fetch(b);
  pool.Fetch(b);
  const IoStats delta = pool.stats() - before;
  EXPECT_EQ(delta.logical_reads, 2u);
  EXPECT_EQ(delta.physical_reads, 1u);
}

TEST(BufferPoolTest, CapacityRespected) {
  InMemoryPageDevice device(128);
  std::vector<PageId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(device.Allocate());
  BufferPool pool(&device, 5);
  for (PageId id : ids) pool.Fetch(id);
  EXPECT_LE(pool.resident_pages(), 5u);
}

TEST(BufferPoolTest, PinnedFrameSurvivesEvictionPressure) {
  InMemoryPageDevice device(128);
  const PageId pinned = device.Allocate();
  std::vector<PageId> rest;
  for (int i = 0; i < 10; ++i) rest.push_back(device.Allocate());
  BufferPool pool(&device, 2);
  const auto data = Pattern(128, 11);
  device.Write(pinned, data.data());

  const PageRef ref = pool.Fetch(pinned);
  // Hammer the tiny pool: the pinned frame must never be recycled.
  for (PageId id : rest) pool.Fetch(id);
  EXPECT_EQ(std::memcmp(ref.data(), data.data(), 128), 0);
  const uint64_t physical = pool.stats().physical_reads;
  pool.Fetch(pinned);  // still resident: no new device read
  EXPECT_EQ(pool.stats().physical_reads, physical);
}

TEST(BufferPoolTest, PinnedFrameSurvivesClear) {
  InMemoryPageDevice device(128);
  const PageId id = device.Allocate();
  BufferPool pool(&device, 4);
  const PageRef ref = pool.Fetch(id);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 1u);  // the pinned frame stayed
  pool.Fetch(id);
  EXPECT_EQ(pool.stats().physical_reads, 1u);  // and was a cache hit
}

TEST(ShardedBufferPoolTest, FetchMatchesDeviceContents) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(device.Allocate());
    device.Write(ids.back(), Pattern(256, static_cast<uint8_t>(i)).data());
  }
  ShardedBufferPool pool(&device, 16, /*num_shards=*/4);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 32; ++i) {
      const PageRef ref = pool.Fetch(ids[i]);
      const auto want = Pattern(256, static_cast<uint8_t>(i));
      EXPECT_EQ(std::memcmp(ref.data(), want.data(), 256), 0);
    }
  }
  EXPECT_EQ(pool.stats().logical_reads, 64u);
  EXPECT_LE(pool.resident_pages(), 16u);
}

TEST(ShardedBufferPoolTest, WarmFetchesAreLogicalOnly) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(device.Allocate());
  ShardedBufferPool pool(&device, 64, /*num_shards=*/8);
  for (PageId id : ids) pool.Fetch(id);
  const uint64_t physical = pool.stats().physical_reads;
  EXPECT_EQ(physical, 8u);
  for (PageId id : ids) pool.Fetch(id);
  EXPECT_EQ(pool.stats().physical_reads, physical);
  EXPECT_EQ(pool.stats().logical_reads, 16u);
}

TEST(ShardedBufferPoolTest, ConcurrentFetchesAreConsistent) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(device.Allocate());
    device.Write(ids.back(), Pattern(256, static_cast<uint8_t>(i * 3)).data());
  }
  // Tiny capacity: constant eviction churn under concurrency.
  ShardedBufferPool pool(&device, 8, /*num_shards=*/4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 400; ++iter) {
        const int i = (iter * 13 + t * 29) % 64;
        const PageRef ref = pool.Fetch(ids[i]);
        const auto want = Pattern(256, static_cast<uint8_t>(i * 3));
        if (std::memcmp(ref.data(), want.data(), 256) != 0) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.stats().logical_reads, 8u * 400u);
}

TEST(FilePageDeviceTest, TryOpenReportsFailuresInsteadOfAborting) {
  const std::string path = ::testing::TempDir() + "/gauss_tryopen_test.db";
  std::remove(path.c_str());

  // Missing file: nullptr + reason, and the probe must NOT create the file
  // (the constructor's O_CREAT semantics would turn a typo into an empty
  // database).
  std::string error;
  EXPECT_EQ(FilePageDevice::TryOpen(path, 512, &error), nullptr);
  EXPECT_NE(error.find(path), std::string::npos);
  {
    FILE* probe = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(probe, nullptr);
    if (probe != nullptr) std::fclose(probe);
  }

  // Valid image: adopts the existing pages read-write.
  {
    FilePageDevice device(path, 512, /*truncate=*/true);
    const PageId id = device.Allocate();
    device.Write(id, Pattern(512, 77).data());
  }
  {
    auto device = FilePageDevice::TryOpen(path, 512, &error);
    ASSERT_NE(device, nullptr);
    EXPECT_EQ(device->PageCount(), 1u);
    std::vector<uint8_t> out(512);
    device->Read(0, out.data());
    EXPECT_EQ(out, Pattern(512, 77));
  }

  // Truncated mid-page: typed failure, not a GAUSS_CHECK abort.
  {
    FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc(0x5a, f);
    std::fclose(f);
  }
  error.clear();
  EXPECT_EQ(FilePageDevice::TryOpen(path, 512, &error), nullptr);
  EXPECT_NE(error.find("not a multiple"), std::string::npos);
  std::remove(path.c_str());
}

TEST(PageDeviceAsyncTest, ReadBatchMatchesSingleReads) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(device.Allocate());
    device.Write(ids.back(), Pattern(256, static_cast<uint8_t>(i + 1)).data());
  }
  std::vector<std::vector<uint8_t>> out(ids.size(),
                                        std::vector<uint8_t>(256, 0));
  std::vector<PageDevice::ReadRequest> requests;
  for (size_t i = 0; i < ids.size(); ++i) {
    requests.push_back({ids[i], out[i].data()});
  }
  device.ReadBatch(requests.data(), requests.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i], Pattern(256, static_cast<uint8_t>(i + 1)));
  }
}

TEST(PageDeviceAsyncTest, ReadAsyncDeliversBytesThenCallback) {
  InMemoryPageDevice device(128);
  const PageId id = device.Allocate();
  const auto want = Pattern(128, 42);
  device.Write(id, want.data());

  std::vector<uint8_t> out(128, 0);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  device.ReadAsync(id, out.data(), [&] {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(out, want);
}

TEST(PageDeviceAsyncTest, FileBackedReadBatchAndAsync) {
  const std::string path = ::testing::TempDir() + "/gauss_async_device_test.db";
  {
    FilePageDevice device(path, 512, /*truncate=*/true);
    std::vector<PageId> ids;
    for (int i = 0; i < 4; ++i) {
      ids.push_back(device.Allocate());
      device.Write(ids.back(), Pattern(512, static_cast<uint8_t>(i * 5)).data());
    }
    std::vector<std::vector<uint8_t>> out(ids.size(),
                                          std::vector<uint8_t>(512, 0));
    std::vector<PageDevice::ReadRequest> requests;
    for (size_t i = 0; i < ids.size(); ++i) {
      requests.push_back({ids[i], out[i].data()});
    }
    device.ReadBatch(requests.data(), requests.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(out[i], Pattern(512, static_cast<uint8_t>(i * 5)));
    }

    // Concurrent positioned reads (no shared seek state to corrupt).
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        std::vector<uint8_t> buf(512);
        for (int iter = 0; iter < 100; ++iter) {
          const size_t i = (iter + t) % ids.size();
          device.Read(ids[i], buf.data());
          if (buf != Pattern(512, static_cast<uint8_t>(i * 5))) ++mismatches;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0);
  }
  std::remove(path.c_str());
}

TEST(BufferPoolPrefetchTest, PrefetchFillsAndFirstFetchIsHit) {
  InMemoryPageDevice device(256);
  const PageId id = device.Allocate();
  const auto want = Pattern(256, 21);
  device.Write(id, want.data());
  BufferPool pool(&device, 4);

  pool.Prefetch(id);
  EXPECT_EQ(pool.stats().prefetch_issued, 1u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_EQ(pool.stats().logical_reads, 0u);  // a hint is not an access

  const PageRef ref = pool.Fetch(id);
  EXPECT_EQ(std::memcmp(ref.data(), want.data(), 256), 0);
  EXPECT_EQ(pool.stats().prefetch_hits, 1u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);  // the fetch found a warm frame

  pool.Fetch(id);  // only the *first* fetch counts as a prefetch hit
  EXPECT_EQ(pool.stats().prefetch_hits, 1u);
}

TEST(BufferPoolPrefetchTest, UnusedPrefetchIsWastedOnClear) {
  InMemoryPageDevice device(256);
  const PageId id = device.Allocate();
  BufferPool pool(&device, 4);
  pool.Prefetch(id);
  pool.Prefetch(id);  // resident: free no-op, not re-issued
  EXPECT_EQ(pool.stats().prefetch_issued, 1u);
  pool.Clear();
  EXPECT_EQ(pool.stats().prefetch_wasted, 1u);
  EXPECT_EQ(pool.stats().prefetch_hits, 0u);
}

TEST(ShardedBufferPoolPrefetchTest, PrefetchThenFetchIsHit) {
  InMemoryPageDevice device(256);
  const PageId id = device.Allocate();
  const auto want = Pattern(256, 33);
  device.Write(id, want.data());
  ShardedBufferPool pool(&device, 16, /*num_shards=*/4);

  pool.Prefetch(id);
  pool.WaitForInflightPrefetches();  // quiesce: the frame is now installed
  EXPECT_EQ(pool.stats().prefetch_issued, 1u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);

  const PageRef ref = pool.Fetch(id);
  EXPECT_EQ(std::memcmp(ref.data(), want.data(), 256), 0);
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.physical_reads, 1u);  // no second device read
  EXPECT_EQ(stats.logical_reads, 1u);
}

TEST(ShardedBufferPoolPrefetchTest, EveryIssuedPrefetchResolvesOnce) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(device.Allocate());
  // Per-shard capacity comfortably above the worst-case hash skew of 32
  // pages over 4 shards: no eviction can force a re-issue mid-test.
  ShardedBufferPool pool(&device, 128, /*num_shards=*/4);

  // Two hint rounds: the second round sees every page resident or still in
  // flight, so exactly 32 prefetches are issued.
  for (int round = 0; round < 2; ++round) {
    for (const PageId id : ids) pool.Prefetch(id);
  }
  pool.WaitForInflightPrefetches();
  EXPECT_EQ(pool.stats().prefetch_issued, 32u);

  for (int i = 0; i < 16; ++i) pool.Fetch(ids[i]);  // first half: hits
  pool.Clear();                                     // second half: wasted
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_hits, 16u);
  EXPECT_EQ(stats.prefetch_wasted, 16u);
  EXPECT_EQ(stats.prefetch_issued, stats.prefetch_hits + stats.prefetch_wasted);
}

TEST(ShardedBufferPoolPrefetchTest, ConcurrentPrefetchAndFetchConsistent) {
  InMemoryPageDevice device(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(device.Allocate());
    device.Write(ids.back(), Pattern(256, static_cast<uint8_t>(i * 7)).data());
  }
  // Tiny capacity: prefetch installs race with eviction churn.
  ShardedBufferPool pool(&device, 8, /*num_shards=*/4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 300; ++iter) {
        const int i = (iter * 17 + t * 31) % 64;
        pool.Prefetch(ids[(i + 1) % 64]);
        const PageRef ref = pool.Fetch(ids[i]);
        const auto want = Pattern(256, static_cast<uint8_t>(i * 7));
        if (std::memcmp(ref.data(), want.data(), 256) != 0) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Quiesce and drop all frames: every issued prefetch must have resolved
  // to exactly one hit or wasted count.
  pool.WaitForInflightPrefetches();
  pool.Clear();
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_issued, stats.prefetch_hits + stats.prefetch_wasted);
}

// Device whose reads can be held at a gate: pins an async prefetch read
// in flight so races against it can be staged deterministically.
class GatedReadDevice : public InMemoryPageDevice {
 public:
  explicit GatedReadDevice(uint32_t page_size) : InMemoryPageDevice(page_size) {}
  ~GatedReadDevice() override {
    OpenGate();        // never join a reader stuck at the gate
    DrainAsyncReads(); // engine must stop before the gate members die
  }

  void Read(PageId id, void* out) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++waiting_;
      cv_.wait(lock, [this] { return !gated_; });
      --waiting_;
    }
    InMemoryPageDevice::Read(id, out);
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gated_ = false;
    }
    cv_.notify_all();
  }
  size_t waiting() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool gated_ = false;
  mutable size_t waiting_ = 0;
};

TEST(ShardedBufferPoolPrefetchTest, WriteRevokesInflightPrefetchInstall) {
  GatedReadDevice device(256);
  const PageId id = device.Allocate();
  const auto old_bytes = Pattern(256, 1);
  const auto new_bytes = Pattern(256, 2);
  device.Write(id, old_bytes.data());
  ShardedBufferPool pool(&device, 16, /*num_shards=*/4);

  // Hold the prefetch's device read at the gate: it has sampled nothing
  // yet, but its permit exists and the write below must revoke it.
  device.CloseGate();
  pool.Prefetch(id);
  while (device.waiting() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.WritePage(id, new_bytes.data());
  pool.FlushAll();
  pool.Clear();  // the new bytes leave the cache; only the device has them
  device.OpenGate();
  pool.WaitForInflightPrefetches();

  // The stale read must have been discarded, not installed: the next fetch
  // re-reads the device and sees the post-write bytes.
  const PageRef ref = pool.Fetch(id);
  EXPECT_EQ(std::memcmp(ref.data(), new_bytes.data(), 256), 0);
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
}

TEST(IoStatsTest, PrefetchCountersMergeAndSubtract) {
  IoStats a;
  a.prefetch_issued = 5;
  a.prefetch_hits = 3;
  a.prefetch_wasted = 1;
  IoStats b;
  b.prefetch_issued = 2;
  b.prefetch_hits = 2;
  b += a;
  EXPECT_EQ(b.prefetch_issued, 7u);
  EXPECT_EQ(b.prefetch_hits, 5u);
  EXPECT_EQ(b.prefetch_wasted, 1u);
  const IoStats d = b - a;
  EXPECT_EQ(d.prefetch_issued, 2u);
  EXPECT_EQ(d.prefetch_hits, 2u);
  EXPECT_EQ(d.prefetch_wasted, 0u);
}

TEST(DiskModelTest, SequentialFasterThanRandomForManyPages) {
  DiskModel disk;
  EXPECT_LT(disk.SequentialReadSeconds(1000), disk.RandomReadSeconds(1000));
}

TEST(DiskModelTest, RandomCostLinearInPages) {
  DiskModel disk;
  EXPECT_NEAR(disk.RandomReadSeconds(200), 2.0 * disk.RandomReadSeconds(100),
              1e-12);
}

TEST(DiskModelTest, SequentialIsPositioningPlusTransfer) {
  DiskModel disk;
  disk.positioning_seconds = 0.01;
  disk.transfer_mb_per_second = 8.0;
  disk.page_size_bytes = 8192;
  // 8 KiB at 8 MiB/s = ~0.9765625 ms per page.
  const double per_page = 8192.0 / (8.0 * 1024 * 1024);
  EXPECT_NEAR(disk.SequentialReadSeconds(100), 0.01 + 100 * per_page, 1e-12);
  EXPECT_NEAR(disk.RandomReadSeconds(100), 100 * (0.01 + per_page), 1e-12);
}

TEST(DiskModelTest, ZeroPagesCostNothing) {
  DiskModel disk;
  EXPECT_EQ(disk.SequentialReadSeconds(0), 0.0);
  EXPECT_EQ(disk.RandomReadSeconds(0), 0.0);
}

}  // namespace
}  // namespace gauss
