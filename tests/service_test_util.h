#ifndef GAUSS_TESTS_SERVICE_TEST_UTIL_H_
#define GAUSS_TESTS_SERVICE_TEST_UTIL_H_

// Helpers shared by the serving-layer tests (service_test, streaming_test,
// api_test): mixed MLIQ/TIQ batch construction, ground truth through the
// documented low-level API, and the byte-identical result comparison the
// acceptance criteria are phrased in.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "data/workload.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service/query.h"

namespace gauss::test {

// Alternating MLIQ (k=3) / TIQ (threshold 0.2) queries over a workload.
inline std::vector<Query> MakeMixedBatch(
    const std::vector<IdentificationQuery>& workload) {
  std::vector<Query> batch;
  batch.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i % 2 == 0) {
      batch.push_back(Query::Mliq(workload[i].query, /*k=*/3));
    } else {
      batch.push_back(Query::Tiq(workload[i].query, /*threshold=*/0.2));
    }
  }
  return batch;
}

// Ground truth for a batch through the low-level QueryMliq/QueryTiq API.
inline std::vector<std::vector<IdentificationResult>> DirectAnswers(
    const GaussTree& tree, const std::vector<Query>& batch) {
  std::vector<std::vector<IdentificationResult>> expected;
  expected.reserve(batch.size());
  for (const Query& query : batch) {
    if (query.kind() == QueryKind::kMliq) {
      expected.push_back(
          QueryMliq(tree, query.pfv(), query.k(), query.mliq_options()).items);
    } else {
      expected.push_back(
          QueryTiq(tree, query.pfv(), query.threshold(), query.tiq_options())
              .items);
    }
  }
  return expected;
}

// Byte-identical, not approximately equal: every execution path runs the
// very same deterministic traversal, so all double fields must match bitwise.
inline void ExpectItemsBytesEqual(const std::vector<IdentificationResult>& got,
                                  const std::vector<IdentificationResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(std::memcmp(&got[i].log_density, &want[i].log_density,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&got[i].probability, &want[i].probability,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&got[i].probability_error,
                          &want[i].probability_error, sizeof(double)),
              0);
  }
}

}  // namespace gauss::test

#endif  // GAUSS_TESTS_SERVICE_TEST_UTIL_H_
