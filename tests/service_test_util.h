#ifndef GAUSS_TESTS_SERVICE_TEST_UTIL_H_
#define GAUSS_TESTS_SERVICE_TEST_UTIL_H_

// Helpers shared by the serving-layer tests (service_test, streaming_test,
// api_test, shard_serving_test): mixed MLIQ/TIQ batch construction, ground
// truth through the documented low-level API, the byte-identical result
// comparison the acceptance criteria are phrased in, and the gated
// PageCache that pins services in a known state for deterministic
// admission-control tests.

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/workload.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service/query.h"
#include "storage/page_cache.h"

namespace gauss::test {

// PageCache decorator whose reads can be gated shut: a worker executing a
// query blocks inside Fetch() until the test opens the gate. This pins the
// service in a known state (worker busy, queue holding exactly the tasks the
// test placed) so admission-control behavior can be asserted without races.
class GatedPageCache : public PageCache {
 public:
  explicit GatedPageCache(PageCache* inner) : inner_(inner) {}

  PageRef Fetch(PageId id) override {
    WaitWhileGated();
    return inner_->Fetch(id);
  }
  PageRef FetchMutable(PageId id) override {
    WaitWhileGated();
    return inner_->FetchMutable(id);
  }
  // Prefetch is non-blocking by contract, so hints pass the gate: a worker
  // pinned at the gate can have its already-issued prefetches complete in
  // the background, which is exactly what the deterministic prefetch
  // accounting tests rely on.
  void Prefetch(PageId id) override { inner_->Prefetch(id); }
  void WritePage(PageId id, const void* data) override {
    inner_->WritePage(id, data);
  }
  void FlushAll() override { inner_->FlushAll(); }
  void Clear() override { inner_->Clear(); }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }
  PageDevice* device() const override { return inner_->device(); }
  bool thread_safe() const override { return inner_->thread_safe(); }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gated_ = false;
    }
    cv_.notify_all();
  }
  // Number of threads currently blocked at the gate.
  size_t waiting() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_;
  }

 private:
  void WaitWhileGated() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_.wait(lock, [this] { return !gated_; });
    --waiting_;
  }

  PageCache* inner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool gated_ = false;
  size_t waiting_ = 0;
};

// Busy-waits (1 ms naps) for a gate/queue condition to become observable.
inline void SpinUntil(const std::function<bool()>& pred) {
  while (!pred()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// Alternating MLIQ (k=3) / TIQ (threshold 0.2) queries over a workload.
inline std::vector<Query> MakeMixedBatch(
    const std::vector<IdentificationQuery>& workload) {
  std::vector<Query> batch;
  batch.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i % 2 == 0) {
      batch.push_back(Query::Mliq(workload[i].query, /*k=*/3));
    } else {
      batch.push_back(Query::Tiq(workload[i].query, /*threshold=*/0.2));
    }
  }
  return batch;
}

// Ground truth for a batch through the low-level QueryMliq/QueryTiq API.
inline std::vector<std::vector<IdentificationResult>> DirectAnswers(
    const GaussTree& tree, const std::vector<Query>& batch) {
  std::vector<std::vector<IdentificationResult>> expected;
  expected.reserve(batch.size());
  for (const Query& query : batch) {
    if (query.kind() == QueryKind::kMliq) {
      expected.push_back(
          QueryMliq(tree, query.pfv(), query.k(), query.mliq_options()).items);
    } else {
      expected.push_back(
          QueryTiq(tree, query.pfv(), query.threshold(), query.tiq_options())
              .items);
    }
  }
  return expected;
}

// Byte-identical, not approximately equal: every execution path runs the
// very same deterministic traversal, so all double fields must match bitwise.
inline void ExpectItemsBytesEqual(const std::vector<IdentificationResult>& got,
                                  const std::vector<IdentificationResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(std::memcmp(&got[i].log_density, &want[i].log_density,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&got[i].probability, &want[i].probability,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&got[i].probability_error,
                          &want[i].probability_error, sizeof(double)),
              0);
  }
}

}  // namespace gauss::test

#endif  // GAUSS_TESTS_SERVICE_TEST_UTIL_H_
