// Loopback tests of the shard RPC transport (net/rpc_backend.h +
// net/shard_server.h): a real ShardServer on 127.0.0.1 answers a real
// RpcBackend, so every frame crosses an actual kernel socket. Covers the
// happy path (RPC partials bit-identical to InProcessBackend over the same
// QueryService), the RefineChannel batching contract, and the typed failure
// taxonomy — refused connections, foreign/future handshakes, silent peers
// (timeout), and a shard server dying with requests in flight. None of these
// may hang or crash; each must produce its NetErrorCode.

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "data/generators.h"
#include "net/frame_io.h"
#include "net/net_error.h"
#include "net/rpc_backend.h"
#include "net/shard_backend.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/query.h"

namespace gauss {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectPartialsBitIdentical(const ShardPartial& got,
                                const ShardPartial& want) {
  EXPECT_EQ(Bits(got.log_ref), Bits(want.log_ref));
  EXPECT_EQ(got.tree_size, want.tree_size);
  EXPECT_EQ(Bits(got.denominator_lo), Bits(want.denominator_lo));
  EXPECT_EQ(Bits(got.denominator_hi), Bits(want.denominator_hi));
  EXPECT_EQ(got.exhausted, want.exhausted);
  ASSERT_EQ(got.items.size(), want.items.size());
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i].id, want.items[i].id);
    EXPECT_EQ(Bits(got.items[i].scaled_density),
              Bits(want.items[i].scaled_density));
    EXPECT_EQ(Bits(got.items[i].log_density), Bits(want.items[i].log_density));
  }
}

// One served single-tree database plus a loopback shard server over its
// QueryService — the fixture most tests below start from.
class ServedShard {
 public:
  explicit ServedShard(size_t objects = 400) {
    ClusteredDatasetConfig config;
    config.size = objects;
    config.dim = 3;
    config.cluster_count = 5;
    config.seed = 4242;
    dataset_ = GenerateClusteredDataset(config);
    db_ = GaussDb::CreateInMemory(dataset_.dim());
    db_->Build(dataset_);
    session_.emplace(db_->Serve({.num_workers = 2}));
    NetError error;
    server_ = ShardServer::Listen(session_->shard_service(0), {}, &error);
    EXPECT_TRUE(server_ != nullptr) << error.ToString();
  }

  Pfv Probe() const {
    Pfv probe = dataset_[0];
    probe.id = 999999;
    return probe;
  }

  QueryService* service() { return session_->shard_service(0); }
  ShardServer* server() { return server_.get(); }
  uint16_t port() const { return server_->port(); }
  size_t size() const { return dataset_.size(); }
  size_t dim() const { return dataset_.dim(); }

 private:
  PfvDataset dataset_{0};
  std::optional<GaussDb> db_;
  std::optional<Session> session_;
  std::unique_ptr<ShardServer> server_;
};

std::unique_ptr<RpcBackend> MustConnect(uint16_t port,
                                        RpcBackendOptions options = {}) {
  NetError error;
  auto backend = RpcBackend::Connect("127.0.0.1", port, options, &error);
  EXPECT_TRUE(backend != nullptr) << error.ToString();
  return backend;
}

// ------------------------------- happy path ---------------------------------

TEST(NetLoopbackTest, HandshakeLearnsDimAndTreeSize) {
  ServedShard shard;
  auto backend = MustConnect(shard.port());
  ASSERT_TRUE(backend != nullptr);
  EXPECT_EQ(backend->dim(), shard.dim());
  EXPECT_EQ(backend->tree_size(), shard.size());
}

TEST(NetLoopbackTest, StartRefineReleaseBitIdenticalToInProcess) {
  ServedShard shard;
  auto rpc = MustConnect(shard.port());
  ASSERT_TRUE(rpc != nullptr);
  InProcessBackend local(shard.service());

  // Loose accuracy leaves the denominator gap wide open, so the later
  // refinement rounds below have real work to do.
  const Query query = Query::Mliq(shard.Probe(), /*k=*/3).Accuracy(0.5);
  ShardBackend::StartResult over_rpc = rpc->Start(1, query).get();
  ShardBackend::StartResult in_process = local.Start(1, query).get();
  ASSERT_TRUE(over_rpc.error.ok()) << over_rpc.error.ToString();
  ASSERT_TRUE(in_process.error.ok());
  ExpectPartialsBitIdentical(over_rpc.partial, in_process.partial);

  // Halve the gap a few times; every update must stay bit-identical, and
  // bounds must tighten monotonically.
  double lo = over_rpc.partial.denominator_lo;
  double hi = over_rpc.partial.denominator_hi;
  for (int round = 0; round < 3 && hi - lo > 0; ++round) {
    const double target = 0.5 * (hi - lo);
    ShardBackend::RefineResult rpc_round =
        rpc->Refine({{1, target}}).get();
    ShardBackend::RefineResult local_round =
        local.Refine({{1, target}}).get();
    ASSERT_TRUE(rpc_round.error.ok()) << rpc_round.error.ToString();
    ASSERT_TRUE(local_round.error.ok());
    ASSERT_EQ(rpc_round.updates.size(), 1u);
    ASSERT_EQ(local_round.updates.size(), 1u);
    const RefineUpdate& got = rpc_round.updates[0];
    const RefineUpdate& want = local_round.updates[0];
    EXPECT_EQ(Bits(got.denominator_lo), Bits(want.denominator_lo));
    EXPECT_EQ(Bits(got.denominator_hi), Bits(want.denominator_hi));
    EXPECT_EQ(got.exhausted, want.exhausted);
    EXPECT_EQ(got.objects_evaluated, want.objects_evaluated);
    EXPECT_GE(got.denominator_lo, lo);
    EXPECT_LE(got.denominator_hi, hi);
    lo = got.denominator_lo;
    hi = got.denominator_hi;
  }

  rpc->Release({1});
  local.Release({1});
  // Released handles are gone: refining one is a typed protocol error, not
  // a crash on either side of the wire.
  ShardBackend::RefineResult after = rpc->Refine({{1, 0.0}}).get();
  EXPECT_EQ(after.error.code, NetErrorCode::kProtocolError);
}

TEST(NetLoopbackTest, FetchStatsReportsRemoteCounters) {
  ServedShard shard;
  auto rpc = MustConnect(shard.port());
  ASSERT_TRUE(rpc != nullptr);
  ShardBackend::StartResult start =
      rpc->Start(5, Query::Tiq(shard.Probe(), 0.2)).get();
  ASSERT_TRUE(start.error.ok());
  rpc->Release({5});

  ShardBackend::StatsResult stats = rpc->FetchStats();
  ASSERT_TRUE(stats.error.ok()) << stats.error.ToString();
  // The traversal above touched the remote cache and counted as one TIQ.
  EXPECT_GT(stats.io.logical_reads, 0u);
  EXPECT_GE(stats.service.tiq_queries, 1u);
}

// The RefineChannel batching contract, pinned deterministically: while one
// flush is in flight, every submission arriving behind it coalesces into a
// single next round. 1 + N submissions => exactly 2 rounds.
TEST(NetLoopbackTest, RefineChannelCoalescesConcurrentSubmissions) {
  std::mutex gate;
  std::atomic<int> flushes{0};
  RefineChannel channel([&](const std::vector<RefineSpec>& specs) {
    std::lock_guard<std::mutex> hold(gate);
    flushes.fetch_add(1);
    ShardBackend::RefineResult result;
    result.updates.resize(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      // Echo the traversal id so positional splitting is observable.
      result.updates[i].nodes_visited = specs[i].traversal;
    }
    return result;
  });

  std::future<ShardBackend::RefineResult> first;
  std::vector<std::future<ShardBackend::RefineResult>> held;
  {
    // Hold the gate: the flusher picks up the first submission and blocks
    // inside the flush; everything submitted meanwhile must pile into one
    // second round.
    std::unique_lock<std::mutex> lock(gate);
    first = channel.Submit({{1, 0.5}});
    while (channel.counters().requests < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (uint64_t t = 2; t <= 5; ++t) {
      held.push_back(channel.Submit({{t, 0.5}, {t * 10, 0.25}}));
    }
  }

  ASSERT_EQ(first.get().updates.size(), 1u);
  for (size_t i = 0; i < held.size(); ++i) {
    ShardBackend::RefineResult result = held[i].get();
    ASSERT_TRUE(result.error.ok());
    ASSERT_EQ(result.updates.size(), 2u);
    EXPECT_EQ(result.updates[0].nodes_visited, i + 2);
    EXPECT_EQ(result.updates[1].nodes_visited, (i + 2) * 10);
  }
  EXPECT_EQ(flushes.load(), 2);
  const BackendRefineCounters counters = channel.counters();
  EXPECT_EQ(counters.rounds, 2u);
  EXPECT_EQ(counters.requests, 9u);  // 1 + 4 * 2
}

// ------------------------------ typed failures ------------------------------

TEST(NetLoopbackTest, ConnectToDeadPortFailsTyped) {
  // Grab an ephemeral port, then destroy the listener so the fd is closed and
  // the kernel refuses the connection outright. (Shutdown() alone only wakes
  // Accept(); the still-open fd would park the connect in the backlog.)
  NetError error;
  uint16_t dead_port = 0;
  {
    TcpListener listener = TcpListener::Listen("127.0.0.1", 0, &error);
    ASSERT_TRUE(listener.valid()) << error.ToString();
    dead_port = listener.port();
  }

  RpcBackendOptions options;
  options.connect_timeout = std::chrono::milliseconds(2000);
  auto backend = RpcBackend::Connect("127.0.0.1", dead_port, options, &error);
  EXPECT_TRUE(backend == nullptr);
  EXPECT_EQ(error.code, NetErrorCode::kConnectFailed);
  EXPECT_FALSE(error.message.empty());
}

TEST(NetLoopbackTest, ServeRemoteRejectsMalformedEndpointsTyped) {
  for (const char* endpoint :
       {"", "no-port-here", ":7001", "host:", "host:0", "host:99999"}) {
    ServeResult result = GaussDb::ServeRemote({endpoint});
    EXPECT_FALSE(result.ok()) << "endpoint '" << endpoint << "'";
    EXPECT_EQ(result.error().code, NetErrorCode::kConnectFailed);
  }
  ServeResult empty = GaussDb::ServeRemote({});
  EXPECT_FALSE(empty.ok());
}

// A fake shard server scripted to answer the handshake however a test needs.
class FakeServer {
 public:
  // `ack_mutator` edits the hello-ack before it is sent; when `reply` is
  // false the server accepts, reads the hello, and then goes silent.
  explicit FakeServer(bool reply,
                      std::function<void(WireHelloAck*)> ack_mutator = {}) {
    NetError error;
    listener_ = TcpListener::Listen("127.0.0.1", 0, &error);
    EXPECT_TRUE(listener_.valid()) << error.ToString();
    thread_ = std::thread([this, reply, ack_mutator] {
      NetError accept_error;
      TcpSocket conn = listener_.Accept(&accept_error);
      if (!conn.valid()) return;
      Frame hello;
      if (!ReadFrame(conn, &hello, NoDeadline()).ok()) return;
      if (!reply) {
        // Hold the connection open but never answer; the client's deadline
        // machinery must convert this into kTimeout.
        Frame never;
        (void)ReadFrame(conn, &never, NoDeadline());
        return;
      }
      WireHelloAck ack;
      ack.dim = 3;
      ack.tree_size = 1;
      if (ack_mutator) ack_mutator(&ack);
      std::vector<uint8_t> body;
      EncodeHelloAck(ack, &body);
      (void)WriteFrame(conn, MsgType::kHelloAck, hello.request_id, body,
                       NoDeadline());
      // Swallow requests without ever answering, until the client hangs up.
      // A single read would close the connection after the first request and
      // turn would-be timeouts into kPeerClosed.
      Frame never;
      while (ReadFrame(conn, &never, NoDeadline()).ok()) {
      }
    });
  }

  ~FakeServer() {
    listener_.Shutdown();
    thread_.join();
  }

  uint16_t port() const { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread thread_;
};

TEST(NetLoopbackTest, FutureWireVersionFailsHandshakeTyped) {
  FakeServer server(/*reply=*/true,
                    [](WireHelloAck* ack) { ack->version = kWireVersion + 7; });
  NetError error;
  auto backend = RpcBackend::Connect("127.0.0.1", server.port(), {}, &error);
  EXPECT_TRUE(backend == nullptr);
  EXPECT_EQ(error.code, NetErrorCode::kProtocolMismatch);
}

TEST(NetLoopbackTest, ForeignMagicFailsHandshakeTyped) {
  FakeServer server(/*reply=*/true,
                    [](WireHelloAck* ack) { ack->magic = 0x1122334455667788; });
  NetError error;
  auto backend = RpcBackend::Connect("127.0.0.1", server.port(), {}, &error);
  EXPECT_TRUE(backend == nullptr);
  EXPECT_EQ(error.code, NetErrorCode::kProtocolMismatch);
}

TEST(NetLoopbackTest, SilentServerTimesOutTyped) {
  FakeServer server(/*reply=*/false);
  RpcBackendOptions options;
  options.connect_timeout = std::chrono::milliseconds(200);
  NetError error;
  const auto before = std::chrono::steady_clock::now();
  auto backend = RpcBackend::Connect("127.0.0.1", server.port(), options,
                                     &error);
  EXPECT_TRUE(backend == nullptr);
  EXPECT_EQ(error.code, NetErrorCode::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - before,
            std::chrono::seconds(5));
}

TEST(NetLoopbackTest, ServerShutdownFailsInFlightAndLaterRequestsTyped) {
  ServedShard shard;
  auto rpc = MustConnect(shard.port());
  ASSERT_TRUE(rpc != nullptr);
  ShardBackend::StartResult warm =
      rpc->Start(1, Query::Mliq(shard.Probe(), 1)).get();
  ASSERT_TRUE(warm.error.ok());
  rpc->Release({1});

  // The "kill the shard" moment: everything pending fails kPeerClosed and
  // every later call fails fast with the same code — no hangs anywhere.
  shard.server()->Shutdown();
  ShardBackend::StartResult dead =
      rpc->Start(2, Query::Mliq(shard.Probe(), 1)).get();
  EXPECT_EQ(dead.error.code, NetErrorCode::kPeerClosed);
  ShardBackend::RefineResult refine = rpc->Refine({{2, 0.5}}).get();
  EXPECT_EQ(refine.error.code, NetErrorCode::kPeerClosed);
  ShardBackend::StatsResult stats = rpc->FetchStats();
  EXPECT_EQ(stats.error.code, NetErrorCode::kPeerClosed);
  // Release after death is a silent no-op by contract.
  rpc->Release({2});
}

TEST(NetLoopbackTest, BackendDestructorDrainsWithServerGone) {
  ServedShard shard;
  auto rpc = MustConnect(shard.port());
  ASSERT_TRUE(rpc != nullptr);
  // Fire a request and kill the server without ever collecting the future:
  // the backend destructor must still shut down cleanly (reader fails the
  // pending promise, channel drains, threads join).
  std::future<ShardBackend::StartResult> orphan =
      rpc->Start(9, Query::Mliq(shard.Probe(), 1));
  shard.server()->Shutdown();
  rpc.reset();
  const ShardBackend::StartResult result = orphan.get();
  if (!result.error.ok()) {
    EXPECT_EQ(result.error.code, NetErrorCode::kPeerClosed);
  }
}

TEST(NetLoopbackTest, PerQueryDeadlineMapsToSocketTimeout) {
  // A properly handshaking server that never answers queries: the query's
  // own 50 ms budget (not the 60 s request ceiling) must bound the wait.
  RpcBackendOptions slow;
  slow.request_timeout = std::chrono::milliseconds(60000);
  FakeServer silent(/*reply=*/true);
  NetError error;
  auto backend =
      RpcBackend::Connect("127.0.0.1", silent.port(), slow, &error);
  ASSERT_TRUE(backend != nullptr) << error.ToString();

  const Pfv probe(1, {0.5, 0.5, 0.5}, {0.1, 0.1, 0.1});
  const auto before = std::chrono::steady_clock::now();
  ShardBackend::StartResult result =
      backend
          ->Start(1, Query::Mliq(probe, 1)
                         .DeadlineAfter(std::chrono::milliseconds(50)))
          .get();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_EQ(result.error.code, NetErrorCode::kTimeout);
  // 50 ms budget + 100 ms grace + reader tick; far below the 60 s ceiling.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(NetLoopbackTest, ExpiredDeadlineFailsFastBeforeAnyFrameIsWritten) {
  // A query whose deadline has already passed must fail kDeadlineExceeded on
  // the client without a frame ever hitting the wire — previously the
  // negative remaining budget was clamped to a 1 ms socket timeout, burning
  // a round trip (and a server-side traversal) on a query that was already
  // dead. The server's start counters prove no request arrived.
  ServedShard shard;
  auto rpc = MustConnect(shard.port());
  ASSERT_TRUE(rpc != nullptr);

  const auto before = std::chrono::steady_clock::now();
  ShardBackend::StartResult expired =
      rpc->Start(1, Query::Mliq(shard.Probe(), 1)
                        .Deadline(before - std::chrono::milliseconds(10)))
          .get();
  EXPECT_EQ(expired.error.code, NetErrorCode::kDeadlineExceeded);
  // Fail-fast, not a 1 ms-timeout round trip that happened to lose.
  EXPECT_LT(std::chrono::steady_clock::now() - before,
            std::chrono::seconds(1));
  EXPECT_EQ(shard.server()->stats().total_queries(), 0u);

  // The connection is untouched: live traffic still flows on it.
  ShardBackend::StartResult alive =
      rpc->Start(2, Query::Mliq(shard.Probe(), 1)).get();
  EXPECT_TRUE(alive.error.ok()) << alive.error.ToString();
  EXPECT_EQ(shard.server()->stats().total_queries(), 1u);
  rpc->Release({2});
}

}  // namespace
}  // namespace gauss
