#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

Pfv RandomPfv(Rng& rng, uint64_t id, size_t dim) {
  std::vector<double> mu(dim), sigma(dim);
  for (double& m : mu) m = rng.Uniform(0, 1);
  for (double& s : sigma) s = rng.Uniform(0.01, 0.2);
  return Pfv(id, std::move(mu), std::move(sigma));
}

TEST(GaussTreePersistenceTest, OpenReturnsIdenticalAnswers) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 14);
  Rng rng(201);

  GaussTree original(&pool, 3);
  PfvFile file(&pool, 3);
  for (uint64_t i = 0; i < 1500; ++i) {
    const Pfv pfv = RandomPfv(rng, i, 3);
    original.Insert(pfv);
    file.Append(pfv);
  }
  original.Finalize();
  const PageId meta = original.meta_page();

  // Reattach through a *fresh* buffer pool over the same device — nothing
  // may survive except the pages themselves.
  BufferPool pool2(&device, 1 << 14);
  auto reopened = GaussTree::Open(&pool2, meta);
  EXPECT_EQ(reopened->size(), original.size());
  EXPECT_EQ(reopened->dim(), original.dim());
  EXPECT_EQ(reopened->root(), original.root());
  reopened->Validate();

  for (int trial = 0; trial < 10; ++trial) {
    const Pfv q = RandomPfv(rng, 90000 + trial, 3);
    const MliqResult a = QueryMliq(original, q, 5);
    const MliqResult b = QueryMliq(*reopened, q, 5);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].id, b.items[i].id);
      EXPECT_DOUBLE_EQ(a.items[i].log_density, b.items[i].log_density);
    }
  }
}

TEST(GaussTreePersistenceTest, OpenPreservesOptions) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 12);
  GaussTreeOptions options;
  options.sigma_policy = SigmaPolicy::kAdditive;
  options.split_strategy = SplitStrategy::kVolume;
  options.integral_method = IntegralMethod::kSigmoidPoly5;
  GaussTree tree(&pool, 2, options);
  Rng rng(202);
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(RandomPfv(rng, i, 2));
  tree.Finalize();

  auto reopened = GaussTree::Open(&pool, tree.meta_page());
  EXPECT_EQ(reopened->options().sigma_policy, SigmaPolicy::kAdditive);
  EXPECT_EQ(reopened->options().split_strategy, SplitStrategy::kVolume);
  EXPECT_EQ(reopened->options().integral_method,
            IntegralMethod::kSigmoidPoly5);
}

TEST(GaussTreePersistenceTest, ReopenedTreeAcceptsInserts) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 14);
  Rng rng(203);
  GaussTree tree(&pool, 2);
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(RandomPfv(rng, i, 2));
  tree.Finalize();
  const PageId meta = tree.meta_page();

  auto reopened = GaussTree::Open(&pool, meta);
  reopened->Definalize();
  for (uint64_t i = 500; i < 1000; ++i) {
    reopened->Insert(RandomPfv(rng, i, 2));
  }
  reopened->Validate();
  EXPECT_EQ(reopened->size(), 1000u);
  reopened->Finalize();

  // Second reopen sees all 1000 objects.
  auto again = GaussTree::Open(&pool, meta);
  EXPECT_EQ(again->size(), 1000u);
  again->Validate();
}

TEST(GaussTreePersistenceTest, SurvivesProcessStyleReopenOnDisk) {
  const std::string path = ::testing::TempDir() + "/gauss_persist_test.db";
  PageId meta = kInvalidPageId;
  Rng rng(204);
  PfvDataset dataset(4);
  for (uint64_t i = 0; i < 800; ++i) dataset.Add(RandomPfv(rng, i, 4));
  const Pfv q = RandomPfv(rng, 99999, 4);
  std::vector<uint64_t> expected_ids;

  {
    FilePageDevice device(path, 2048, /*truncate=*/true);
    BufferPool pool(&device, 1 << 12);
    GaussTree tree(&pool, 4);
    tree.BulkInsert(dataset);
    tree.Finalize();
    meta = tree.meta_page();
    for (const auto& item : QueryMliq(tree, q, 3).items) {
      expected_ids.push_back(item.id);
    }
    pool.FlushAll();
    device.Sync();
  }
  {
    // Simulated process restart: new device handle, new pool.
    FilePageDevice device(path, 2048, /*truncate=*/false);
    BufferPool pool(&device, 1 << 12);
    auto tree = GaussTree::Open(&pool, meta);
    tree->Validate();
    EXPECT_EQ(tree->size(), 800u);
    std::vector<uint64_t> got_ids;
    for (const auto& item : QueryMliq(*tree, q, 3).items) {
      got_ids.push_back(item.id);
    }
    EXPECT_EQ(got_ids, expected_ids);
  }
  std::remove(path.c_str());
}

TEST(GaussTreePersistenceTest, EmptyTreePersists) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 64);
  GaussTree tree(&pool, 2);
  tree.Finalize();
  auto reopened = GaussTree::Open(&pool, tree.meta_page());
  EXPECT_EQ(reopened->size(), 0u);
  const Pfv q(1, {0.5, 0.5}, {0.1, 0.1});
  EXPECT_TRUE(QueryMliq(*reopened, q, 3).items.empty());
}

}  // namespace
}  // namespace gauss
