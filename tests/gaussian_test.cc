#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/gaussian.h"

namespace gauss {
namespace {

// Numeric quadrature of f over [lo, hi] (composite Simpson).
template <typename F>
double Quadrature(F f, double lo, double hi, int steps = 20000) {
  const double h = (hi - lo) / steps;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < steps; ++i) {
    sum += f(lo + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

TEST(GaussianPdfTest, PeakValue) {
  // N(mu; mu, sigma) = 1 / (sqrt(2 pi) sigma).
  EXPECT_NEAR(GaussianPdf(3.0, 3.0, 2.0), 1.0 / (kSqrt2Pi * 2.0), 1e-15);
}

TEST(GaussianPdfTest, KnownValueStandardNormal) {
  // N(1; 0, 1) = e^{-1/2} / sqrt(2 pi).
  EXPECT_NEAR(GaussianPdf(1.0, 0.0, 1.0), std::exp(-0.5) / kSqrt2Pi, 1e-15);
}

TEST(GaussianPdfTest, SymmetryInXAndMu) {
  // N(x; mu, sigma) == N(mu; x, sigma) — the property the paper's model
  // exploits to swap observed and true values.
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-5, 5);
    const double mu = rng.Uniform(-5, 5);
    const double sigma = rng.Uniform(0.01, 3.0);
    EXPECT_DOUBLE_EQ(GaussianPdf(x, mu, sigma), GaussianPdf(mu, x, sigma));
  }
}

TEST(GaussianPdfTest, IntegratesToOne) {
  const double integral = Quadrature(
      [](double x) { return GaussianPdf(x, 1.5, 0.7); }, 1.5 - 10 * 0.7,
      1.5 + 10 * 0.7);
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(GaussianLogPdfTest, AgreesWithLogOfPdf) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-5, 5);
    const double mu = rng.Uniform(-5, 5);
    const double sigma = rng.Uniform(0.01, 3.0);
    const double pdf = GaussianPdf(x, mu, sigma);
    if (pdf == 0.0) continue;  // linear-space underflow; covered by the
                               // RobustFarFromMean test below
    EXPECT_NEAR(GaussianLogPdf(x, mu, sigma), std::log(pdf), 1e-10);
  }
}

TEST(GaussianLogPdfTest, RobustFarFromMean) {
  // 100-sigma away: pdf underflows, log pdf must not.
  const double log_pdf = GaussianLogPdf(100.0, 0.0, 1.0);
  EXPECT_NEAR(log_pdf, -0.5 * 100.0 * 100.0 - kLogSqrt2Pi, 1e-9);
  EXPECT_TRUE(std::isfinite(log_pdf));
}

TEST(StdNormalCdfTest, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(StdNormalCdf(1.96), 0.9750021048517795, 1e-12);
  EXPECT_NEAR(StdNormalCdf(-1.96), 1.0 - 0.9750021048517795, 1e-12);
}

TEST(GaussianCdfTest, MatchesQuadrature) {
  const double cdf = GaussianCdf(2.0, 1.0, 0.5);
  const double integral = Quadrature(
      [](double x) { return GaussianPdf(x, 1.0, 0.5); }, 1.0 - 10 * 0.5, 2.0);
  EXPECT_NEAR(cdf, integral, 1e-9);
}

// The heart of the model: Lemma 1 states that the integral of the product of
// the two Gaussians equals a single Gaussian evaluated at the query mean.
// The statistically exact combined deviation is sqrt(sv^2 + sq^2)
// (kConvolution); verify against numeric quadrature.
TEST(JointDensityTest, LemmaOneMatchesQuadratureConvolution) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double mu_v = rng.Uniform(-3, 3);
    const double sigma_v = rng.Uniform(0.1, 1.5);
    const double mu_q = rng.Uniform(-3, 3);
    const double sigma_q = rng.Uniform(0.1, 1.5);
    const double integral = Quadrature(
        [&](double x) {
          return GaussianPdf(x, mu_v, sigma_v) * GaussianPdf(x, mu_q, sigma_q);
        },
        -30.0, 30.0, 40000);
    const double lemma =
        JointDensity(mu_v, sigma_v, mu_q, sigma_q, SigmaPolicy::kConvolution);
    EXPECT_NEAR(lemma, integral, 1e-8)
        << "mu_v=" << mu_v << " sv=" << sigma_v << " mu_q=" << mu_q
        << " sq=" << sigma_q;
  }
}

TEST(JointDensityTest, AdditivePolicyIsConservative) {
  // sigma_v + sigma_q >= sqrt(sigma_v^2 + sigma_q^2): the additive policy
  // spreads the Gaussian more, so at the mean it is never larger ... and far
  // in the tails never smaller.
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double mu_v = rng.Uniform(-3, 3);
    const double sigma_v = rng.Uniform(0.1, 1.5);
    const double sigma_q = rng.Uniform(0.1, 1.5);
    const double at_mean_add =
        JointDensity(mu_v, sigma_v, mu_v, sigma_q, SigmaPolicy::kAdditive);
    const double at_mean_conv =
        JointDensity(mu_v, sigma_v, mu_v, sigma_q, SigmaPolicy::kConvolution);
    EXPECT_LE(at_mean_add, at_mean_conv);
  }
}

TEST(JointDensityTest, SymmetricInArguments) {
  // p(q|v) == p(v|q): identification weight must not depend on which side is
  // the query.
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double mu_v = rng.Uniform(-3, 3);
    const double sigma_v = rng.Uniform(0.1, 1.5);
    const double mu_q = rng.Uniform(-3, 3);
    const double sigma_q = rng.Uniform(0.1, 1.5);
    for (SigmaPolicy policy :
         {SigmaPolicy::kConvolution, SigmaPolicy::kAdditive}) {
      EXPECT_DOUBLE_EQ(JointDensity(mu_v, sigma_v, mu_q, sigma_q, policy),
                       JointDensity(mu_q, sigma_q, mu_v, sigma_v, policy));
    }
  }
}

TEST(JointDensityTest, DecreasesWithUncertaintyWhenAligned) {
  // Paper property 2: with mu_q == mu_v, increasing either uncertainty
  // decreases the identification weight.
  double previous = JointDensity(0.0, 0.1, 0.0, 0.1);
  for (double sigma = 0.2; sigma < 3.0; sigma += 0.1) {
    const double current = JointDensity(0.0, sigma, 0.0, 0.1);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST(JointDensityTest, DisjointObjectsCanGainFromUncertainty) {
  // Paper property 4: for quite disjoint Gaussians the weight can increase
  // with increasing uncertainty (the object can no longer be excluded).
  const double tight = JointDensity(0.0, 0.05, 10.0, 0.05);
  const double loose = JointDensity(0.0, 2.0, 10.0, 2.0);
  EXPECT_GT(loose, tight);
}

TEST(JointLogDensityTest, MultivariateIsSumOfPerDimension) {
  Rng rng(6);
  const size_t d = 8;
  std::vector<double> mu_v(d), sigma_v(d), mu_q(d), sigma_q(d);
  for (size_t i = 0; i < d; ++i) {
    mu_v[i] = rng.Uniform(-2, 2);
    sigma_v[i] = rng.Uniform(0.1, 1.0);
    mu_q[i] = rng.Uniform(-2, 2);
    sigma_q[i] = rng.Uniform(0.1, 1.0);
  }
  double expected = 0.0;
  for (size_t i = 0; i < d; ++i) {
    expected += JointLogDensity(mu_v[i], sigma_v[i], mu_q[i], sigma_q[i]);
  }
  EXPECT_NEAR(JointLogDensity(mu_v.data(), sigma_v.data(), mu_q.data(),
                              sigma_q.data(), d),
              expected, 1e-12);
}

TEST(JointLogDensityTest, HighDimensionalNoOverflow) {
  // 100 dimensions with tiny sigmas: the linear-space density overflows any
  // double, the log-space value must stay finite.
  const size_t d = 100;
  std::vector<double> mu(d, 0.5), sigma(d, 1e-4);
  const double log_density =
      JointLogDensity(mu.data(), sigma.data(), mu.data(), sigma.data(), d);
  EXPECT_TRUE(std::isfinite(log_density));
  EXPECT_GT(log_density, 500.0);  // enormous density, fine in log space
}

}  // namespace
}  // namespace gauss
