// Differential property harness for sharded GaussDb: for randomized
// datasets, dimensionalities, and shard counts 1-8, scatter-gathered
// MLIQ/TIQ answers must match the single-tree reference (ids and ordering
// exactly; probabilities within the requested accuracy when refinement is
// on) and the seq-scan oracle — in both TIQ exact_membership modes. Every
// assertion runs under a SCOPED_TRACE naming the generator seed and
// configuration, so a failure prints exactly what to replay.
//
// Why this is the acceptance gate: a sharded TIQ/MLIQ answer is only
// correct if the coordinator combines per-shard Bayes-denominator bounds
// and re-refines when the combined interval is too loose — none of which a
// per-shard unit test can see. Comparing whole answers against an
// independently built single tree (different tree shapes, different
// traversal orders) and against the exhaustive scan catches any mistake in
// the combination math.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "api/partitioner.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/workload.h"
#include "net/net_error.h"
#include "net/shard_server.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "service_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

constexpr double kAccuracy = 1e-4;  // requested probability accuracy
constexpr double kThreshold = 0.2;  // TIQ threshold for generated workloads

// The query variants every trial exercises per probe. Refined variants pin
// probability values; unrefined ones pin ids/ordering under loose bounds.
std::vector<Query> MakeVariants(const Pfv& probe) {
  std::vector<Query> variants;
  variants.push_back(Query::Mliq(probe, 3).Accuracy(kAccuracy));
  variants.push_back(Query::Mliq(probe, 5).RefineProbabilities(false));
  variants.push_back(Query::Tiq(probe, kThreshold).ExactMembership(true));
  variants.push_back(
      Query::Tiq(probe, kThreshold).ExactMembership(true).Accuracy(kAccuracy));
  variants.push_back(Query::Tiq(probe, kThreshold).ExactMembership(false));
  return variants;
}

bool IsLazyTiq(const Query& query) {
  return query.kind() == QueryKind::kTiq &&
         !query.tiq_options().exact_membership;
}

bool RefinesProbabilities(const Query& query) {
  return query.kind() == QueryKind::kMliq
             ? query.mliq_options().refine_probabilities
             : query.tiq_options().refine_probabilities;
}

std::vector<uint64_t> Ids(const std::vector<IdentificationResult>& items) {
  std::vector<uint64_t> ids;
  ids.reserve(items.size());
  for (const IdentificationResult& item : items) ids.push_back(item.id);
  return ids;
}

// ids and ordering exactly; probabilities within the sum of the two
// certified interval half-widths (each answer's midpoint is within its own
// half-width of the true probability).
void ExpectEquivalent(const std::vector<IdentificationResult>& got,
                      const std::vector<IdentificationResult>& want,
                      bool compare_probabilities) {
  ASSERT_EQ(Ids(got), Ids(want));
  if (!compare_probabilities) return;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].probability, want[i].probability,
                got[i].probability_error + want[i].probability_error + 1e-12)
        << "item " << i << " id " << got[i].id;
  }
}

// Lazy-mode TIQ contract (paper Figure 5): the traversal-dependent result
// set must contain every true answer (no false dismissals), and every extra
// must be a certified straddler — its probability interval still reaches
// the threshold.
void ExpectLazyTiqContract(const std::vector<IdentificationResult>& got,
                           const std::vector<IdentificationResult>& exact) {
  const std::vector<uint64_t> got_ids = Ids(got);
  const std::set<uint64_t> got_set(got_ids.begin(), got_ids.end());
  for (const IdentificationResult& item : exact) {
    EXPECT_TRUE(got_set.count(item.id))
        << "lazy TIQ dismissed true answer id " << item.id;
  }
  const std::vector<uint64_t> exact_ids = Ids(exact);
  const std::set<uint64_t> exact_set(exact_ids.begin(), exact_ids.end());
  for (const IdentificationResult& item : got) {
    if (exact_set.count(item.id)) continue;
    EXPECT_GE(item.probability + item.probability_error, kThreshold - 1e-12)
        << "lazy TIQ reported id " << item.id
        << " whose certified upper bound misses the threshold";
  }
}

// Single-tree and seq-scan reference answers plus the probe workload for
// one dataset.
class Reference {
 public:
  explicit Reference(const PfvDataset& dataset, size_t probes, uint64_t seed)
      : scan_pool_(&scan_device_, 1 << 12),
        scan_file_(&scan_pool_, dataset.dim()) {
    scan_file_.AppendAll(dataset);

    if (dataset.size() > 0) {
      WorkloadConfig wconfig;
      wconfig.query_count = probes;
      wconfig.seed = seed;
      for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
        probes_.push_back(q.query);
      }
    } else {
      // No objects to probe near: a fixed far-field probe still must return
      // empty answers everywhere.
      probes_.push_back(Pfv(1, std::vector<double>(dataset.dim(), 0.5),
                            std::vector<double>(dataset.dim(), 0.1)));
    }
    for (const Pfv& probe : probes_) {
      for (Query& query : MakeVariants(probe)) {
        batch_.push_back(std::move(query));
      }
    }

    GaussDb db = GaussDb::CreateInMemory(dataset.dim());
    db.Build(dataset);
    Session session = db.Serve({.num_workers = 2});
    single_tree_ = session.ExecuteBatch(batch_);
  }

  const std::vector<Query>& batch() const { return batch_; }
  const BatchResult& single_tree() const { return single_tree_; }

  // Exact TIQ answer for the probe behind batch()[i] (exhaustive scan).
  std::vector<IdentificationResult> ScanTiq(size_t i) const {
    SeqScan scan(&scan_file_);
    return scan.QueryTiq(batch_[i].pfv(), kThreshold).items;
  }
  std::vector<IdentificationResult> ScanMliq(size_t i, size_t k) const {
    SeqScan scan(&scan_file_);
    return scan.QueryMliq(batch_[i].pfv(), k).items;
  }

 private:
  InMemoryPageDevice scan_device_;
  BufferPool scan_pool_;
  PfvFile scan_file_;
  std::vector<Pfv> probes_;
  std::vector<Query> batch_;
  BatchResult single_tree_;
};

// Runs the whole differential comparison for one dataset and shard count.
void CheckShardCount(const PfvDataset& dataset, const Reference& ref,
                     size_t num_shards) {
  GaussDbOptions options;
  options.shards.num_shards = num_shards;
  GaussDb db = GaussDb::CreateInMemory(dataset.dim(), options);
  db.Build(dataset);
  EXPECT_EQ(db.size(), dataset.size());
  EXPECT_EQ(db.num_shards(), num_shards);

  Session session = db.Serve(
      {.num_workers = 2 * num_shards, .coordinator_threads = 2});
  EXPECT_TRUE(session.sharded());
  EXPECT_EQ(session.num_shards(), num_shards);
  size_t sharded_objects = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    session.shard_tree(s).Validate();
    sharded_objects += session.shard_tree(s).size();
  }
  EXPECT_EQ(sharded_objects, dataset.size());

  const BatchResult result = session.ExecuteBatch(ref.batch());
  ASSERT_EQ(result.responses.size(), ref.batch().size());
  for (size_t i = 0; i < result.responses.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const Query& query = ref.batch()[i];
    const QueryResponse& got = result.responses[i];
    const QueryResponse& want = ref.single_tree().responses[i];
    EXPECT_EQ(got.status, QueryResponse::Status::kOk);
    EXPECT_EQ(got.kind, query.kind());
    // Combined denominator interval must be well-formed.
    EXPECT_LE(got.stats.denominator_lo, got.stats.denominator_hi);

    if (IsLazyTiq(query)) {
      ExpectLazyTiqContract(got.items, ref.ScanTiq(i));
      continue;
    }
    ExpectEquivalent(got.items, want.items, RefinesProbabilities(query));
    // Independent oracle: the exhaustive scan.
    if (query.kind() == QueryKind::kTiq) {
      EXPECT_EQ(Ids(got.items), Ids(ref.ScanTiq(i)));
    } else {
      EXPECT_EQ(Ids(got.items), Ids(ref.ScanMliq(i, query.k())));
    }
  }
}

PfvDataset MakeDataset(size_t size, size_t dim, size_t clusters,
                       uint64_t seed) {
  if (size == 0) return PfvDataset(dim);  // the generator requires size > 0
  ClusteredDatasetConfig config;
  config.size = size;
  config.dim = dim;
  config.cluster_count = clusters;
  config.seed = seed;
  return GenerateClusteredDataset(config);
}

// Acceptance criterion: every shard count 1 through 8 matches the
// single-tree reference on one solid configuration. Shard count 1 routes
// through the full coordinator (scale rebasing, combination, final filter)
// and must be byte-compatible with the plain single-tree answers.
TEST(ShardEquivalenceTest, ShardCounts1Through8MatchSingleTreeReference) {
  const PfvDataset dataset = MakeDataset(1000, 4, 10, /*seed=*/101);
  const Reference ref(dataset, /*probes=*/8, /*seed=*/11);
  for (size_t shards = 1; shards <= 8; ++shards) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    CheckShardCount(dataset, ref, shards);
  }
}

// Randomized trials over dataset shape; failures print the seed to replay.
TEST(ShardEquivalenceTest, RandomizedDifferentialTrials) {
  constexpr uint64_t kBaseSeed = 7000;
  Rng rng(kBaseSeed);
  for (size_t trial = 0; trial < 4; ++trial) {
    const uint64_t seed = kBaseSeed + 31 * trial;
    const size_t dim = 2 + rng.UniformInt(5);         // 2..6
    const size_t size = 300 + rng.UniformInt(1200);   // 300..1499
    const size_t clusters = 4 + rng.UniformInt(12);   // 4..15
    char trace[128];
    std::snprintf(trace, sizeof(trace),
                  "trial=%zu seed=%llu dim=%zu size=%zu clusters=%zu", trial,
                  static_cast<unsigned long long>(seed), dim, size, clusters);
    SCOPED_TRACE(trace);

    const PfvDataset dataset = MakeDataset(size, dim, clusters, seed);
    const Reference ref(dataset, /*probes=*/4, seed + 1);
    for (size_t shards : {2, 3, 5, 8}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      CheckShardCount(dataset, ref, shards);
    }
  }
}

// Degenerate galleries: empty database, and datasets smaller than the shard
// count (some shard trees stay empty — their traversals must contribute
// nothing to the combined denominator, not a bogus reference scale).
TEST(ShardEquivalenceTest, TinyAndEmptyDatasetsAcrossShardCounts) {
  for (size_t size : {0, 1, 5}) {
    SCOPED_TRACE("size=" + std::to_string(size));
    const PfvDataset dataset = MakeDataset(size, 3, 2, /*seed=*/303);
    const Reference ref(dataset, /*probes=*/2, /*seed=*/17);
    for (size_t shards : {1, 2, 8}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      CheckShardCount(dataset, ref, shards);
    }
  }
}

// A sharded on-file database must survive close + reopen: the manifest
// restores the shard layout and every answer is byte-identical to the
// pre-reopen serving stack (same trees, same traversals, same bounds).
TEST(ShardEquivalenceTest, ShardedFileRoundTripIsByteIdentical) {
  const std::string path =
      ::testing::TempDir() + "/gauss_db_sharded_roundtrip.db";
  const PfvDataset dataset = MakeDataset(800, 4, 8, /*seed=*/505);
  const Reference ref(dataset, /*probes=*/6, /*seed=*/19);

  BatchResult before;
  {
    GaussDbOptions options;
    options.shards.num_shards = 3;
    GaussDb db = GaussDb::CreateOnFile(path, dataset.dim(), options);
    db.Build(dataset);
    Session session = db.Serve({.num_workers = 3});
    before = session.ExecuteBatch(ref.batch());
  }  // db + session gone: only the file survives

  {
    GaussDb reopened = GaussDb::OpenFile(path).value();
    EXPECT_TRUE(reopened.sharded());
    EXPECT_EQ(reopened.num_shards(), 3u);
    EXPECT_EQ(reopened.dim(), dataset.dim());
    EXPECT_EQ(reopened.size(), dataset.size());
    Session session = reopened.Serve({.num_workers = 3});
    const BatchResult after = session.ExecuteBatch(ref.batch());
    ASSERT_EQ(after.responses.size(), before.responses.size());
    for (size_t i = 0; i < after.responses.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      test::ExpectItemsBytesEqual(after.responses[i].items,
                                  before.responses[i].items);
    }
  }
  std::remove(path.c_str());
}

// Asynchronous read-ahead must be invisible in the answers: for both the
// unsharded service path and the coordinator's scatter-gather path, every
// prefetch depth returns answers byte-identical to the depth-0 run of the
// same configuration. The serving cache is deliberately smaller than the
// tree(s) so depth > 0 genuinely schedules asynchronous fills (asserted via
// the merged prefetch counters) instead of no-opping on resident pages.
TEST(ShardEquivalenceTest, PrefetchDepthSweepIsByteIdenticalPerTopology) {
  // Large enough that every per-shard tree dwarfs its serving cache —
  // GaussTree::Open's reachability walk warms the cache, so a tree that
  // fits would turn every hint into a residency no-op.
  const PfvDataset dataset = MakeDataset(4000, 4, 10, /*seed=*/909);
  WorkloadConfig wconfig;
  wconfig.query_count = 6;
  wconfig.seed = 23;
  std::vector<Query> batch;
  for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
    for (Query& v : MakeVariants(q.query)) batch.push_back(std::move(v));
  }

  for (const size_t shards : {size_t{0}, size_t{3}}) {  // 0 = unsharded
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    GaussDbOptions options;
    options.shards.num_shards = shards;
    GaussDb db = GaussDb::CreateInMemory(dataset.dim(), options);
    db.Build(dataset);

    BatchResult at_depth0;
    for (const size_t depth : {size_t{0}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("prefetch_depth=" + std::to_string(depth));
      ServeOptions serve;
      serve.num_workers = 2 * std::max<size_t>(1, shards);
      serve.cache_pages = 48;  // well below the tree pages: real misses
      serve.prefetch_depth = depth;
      Session session = db.Serve(serve);

      const BatchResult result = session.ExecuteBatch(batch);
      ASSERT_EQ(result.responses.size(), batch.size());
      if (depth == 0) {
        at_depth0 = result;
        EXPECT_EQ(session.io_stats().prefetch_issued, 0u);
        continue;
      }
      for (size_t i = 0; i < result.responses.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
        test::ExpectItemsBytesEqual(result.responses[i].items,
                                    at_depth0.responses[i].items);
      }
      EXPECT_GT(session.io_stats().prefetch_issued, 0u);
    }
  }
}

// The shard manifest (header + one PageId per shard) must fit page 0; a
// page size too small for the shard count fails loudly at creation instead
// of overflowing the manifest write at Finalize().
TEST(ShardEquivalenceDeathTest, ManifestMustFitThePage) {
  GaussDbOptions options;
  options.page_size = 256;
  options.shards.num_shards = 64;  // 24-byte header + 64 PageIds > 256
  EXPECT_DEATH(GaussDb::CreateInMemory(3, options),
               "shard manifest does not fit");
}

// ======================= directory layout (multi-device) ====================
// One FilePageDevice per shard behind the same coordinator protocol: the
// scatter-gather math never sees where a shard's pages live, so a directory
// database must answer byte-identically to the single-device sharded layout
// (same partitioner -> same shard trees -> same traversals) and match the
// seq-scan oracle.

// Removes a CreateOnDirectory database and its directory.
void RemoveDirectoryLayout(const std::string& dir, size_t num_shards) {
  for (size_t s = 0; s < num_shards; ++s) {
    char name[40];
    std::snprintf(name, sizeof(name), "shard-%04zu.gauss", s);
    std::remove((dir + "/" + name).c_str());
  }
  std::remove((dir + "/MANIFEST").c_str());
  ::rmdir(dir.c_str());
}

TEST(ShardEquivalenceTest, DirectoryLayoutMatchesSingleDeviceAndScan) {
  constexpr size_t kShards = 4;
  const std::string dir = ::testing::TempDir() + "/gauss_db_dir_equiv";
  const std::string file = ::testing::TempDir() + "/gauss_db_dir_equiv.db";
  const PfvDataset dataset = MakeDataset(900, 4, 8, /*seed=*/707);
  const Reference ref(dataset, /*probes=*/6, /*seed=*/29);

  GaussDbOptions options;
  options.shards.num_shards = kShards;

  // Single-device sharded layout: the byte-level reference.
  GaussDb file_db = GaussDb::CreateOnFile(file, dataset.dim(), options);
  file_db.Build(dataset);
  Session file_session = file_db.Serve({.num_workers = kShards});
  const BatchResult single_device = file_session.ExecuteBatch(ref.batch());

  // Multi-device directory layout, same partitioning.
  GaussDb dir_db = GaussDb::CreateOnDirectory(dir, dataset.dim(), options);
  EXPECT_TRUE(dir_db.per_shard_devices());
  dir_db.Build(dataset);
  EXPECT_EQ(dir_db.size(), dataset.size());
  Session dir_session = dir_db.Serve({.num_workers = kShards});
  EXPECT_TRUE(dir_session.sharded());
  EXPECT_EQ(dir_session.num_shards(), kShards);

  const BatchResult result = dir_session.ExecuteBatch(ref.batch());
  ASSERT_EQ(result.responses.size(), ref.batch().size());
  for (size_t i = 0; i < result.responses.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const Query& query = ref.batch()[i];
    EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
    // Byte-identical to the one-device sharded run: same shard trees, same
    // traversals, only the pages' physical homes differ.
    test::ExpectItemsBytesEqual(result.responses[i].items,
                                single_device.responses[i].items);
    // And still exactly the independent oracles' answers.
    if (IsLazyTiq(query)) {
      ExpectLazyTiqContract(result.responses[i].items, ref.ScanTiq(i));
    } else if (query.kind() == QueryKind::kTiq) {
      EXPECT_EQ(Ids(result.responses[i].items), Ids(ref.ScanTiq(i)));
    } else {
      EXPECT_EQ(Ids(result.responses[i].items), Ids(ref.ScanMliq(i, query.k())));
    }
  }
  RemoveDirectoryLayout(dir, kShards);
  std::remove(file.c_str());
}

// Close + OpenDirectory round trip: the MANIFEST restores shard count, hash
// seed, page size, and dimensionality; answers are byte-identical, and a
// reopened directory keeps routing Insert() by the persisted seed. Every
// shard file is also independently openable as an ordinary single-tree
// database — the layout's repair/inspection property.
TEST(ShardEquivalenceTest, DirectoryRoundTripIsByteIdenticalAndGrowable) {
  constexpr size_t kShards = 5;
  const std::string dir = ::testing::TempDir() + "/gauss_db_dir_roundtrip";
  const PfvDataset dataset = MakeDataset(700, 3, 8, /*seed=*/808);
  const PfvDataset extra = MakeDataset(150, 3, 4, /*seed=*/809);
  const Reference ref(dataset, /*probes=*/5, /*seed=*/37);

  BatchResult before;
  {
    GaussDbOptions options;
    options.shards.num_shards = kShards;
    options.shards.hash_seed = 0xfeedface;
    GaussDb db = GaussDb::CreateOnDirectory(dir, dataset.dim(), options);
    db.Build(dataset);
    Session session = db.Serve({.num_workers = kShards});
    before = session.ExecuteBatch(ref.batch());
  }  // db + session gone: only the directory survives

  {
    GaussDb reopened = GaussDb::OpenDirectory(dir).value();
    EXPECT_TRUE(reopened.sharded());
    EXPECT_TRUE(reopened.per_shard_devices());
    EXPECT_EQ(reopened.num_shards(), kShards);
    EXPECT_EQ(reopened.dim(), dataset.dim());
    EXPECT_EQ(reopened.size(), dataset.size());
    Session session = reopened.Serve({.num_workers = kShards});
    const BatchResult after = session.ExecuteBatch(ref.batch());
    ASSERT_EQ(after.responses.size(), before.responses.size());
    for (size_t i = 0; i < after.responses.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      test::ExpectItemsBytesEqual(after.responses[i].items,
                                  before.responses[i].items);
    }
  }

  // Reopen again and grow: the persisted hash seed routes the new objects
  // exactly as the original build would have.
  {
    GaussDb db = GaussDb::OpenDirectory(dir).value();
    for (size_t i = 0; i < extra.size(); ++i) {
      Pfv pfv = extra[i];
      pfv.id += 2'000'000;
      db.Insert(pfv);
    }
    db.Finalize();
    Session session = db.Serve({.num_workers = kShards});
    size_t total = 0;
    for (size_t s = 0; s < session.num_shards(); ++s) {
      session.shard_tree(s).Validate();
      total += session.shard_tree(s).size();
    }
    EXPECT_EQ(total, dataset.size() + extra.size());
  }

  // Shard files are plain single-tree images: OpenFile() reads one alone.
  {
    GaussDb shard0 = GaussDb::OpenFile(dir + "/shard-0000.gauss").value();
    EXPECT_FALSE(shard0.sharded());
    EXPECT_EQ(shard0.dim(), dataset.dim());
    EXPECT_GT(shard0.size(), 0u);
  }
  RemoveDirectoryLayout(dir, kShards);
}

// Async read-ahead over per-shard devices: the prefetch depth sweep must be
// answer-invariant while each shard's own device engine genuinely schedules
// fills (small per-shard caches force real misses on every file).
TEST(ShardEquivalenceTest, DirectoryPrefetchDepthSweepIsByteIdentical) {
  constexpr size_t kShards = 4;
  const std::string dir = ::testing::TempDir() + "/gauss_db_dir_prefetch";
  // Big enough that every per-shard tree dwarfs its 16-page cache slice —
  // a shard tree that fits would turn every hint into a residency no-op.
  const PfvDataset dataset = MakeDataset(6000, 4, 10, /*seed=*/910);
  WorkloadConfig wconfig;
  wconfig.query_count = 6;
  wconfig.seed = 41;
  std::vector<Query> batch;
  for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
    for (Query& v : MakeVariants(q.query)) batch.push_back(std::move(v));
  }

  GaussDbOptions options;
  options.shards.num_shards = kShards;
  GaussDb db = GaussDb::CreateOnDirectory(dir, dataset.dim(), options);
  db.Build(dataset);

  BatchResult at_depth0;
  uint64_t pages_at_depth0 = 0;
  for (const size_t depth : {size_t{0}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("prefetch_depth=" + std::to_string(depth));
    ServeOptions serve;
    serve.num_workers = 2 * kShards;
    serve.cache_pages = kShards * 16;  // per-shard slice << shard tree
    serve.prefetch_depth = depth;
    Session session = db.Serve(serve);

    const BatchResult result = session.ExecuteBatch(batch);
    ASSERT_EQ(result.responses.size(), batch.size());
    const IoStats io = session.io_stats();
    if (depth == 0) {
      at_depth0 = result;
      pages_at_depth0 = io.logical_reads;
      EXPECT_EQ(io.prefetch_issued, 0u);
      continue;
    }
    for (size_t i = 0; i < result.responses.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
      test::ExpectItemsBytesEqual(result.responses[i].items,
                                  at_depth0.responses[i].items);
    }
    // Read-ahead really ran against the shard files, and the paper's I/O
    // metric (logical reads) stayed depth-invariant.
    EXPECT_GT(io.prefetch_issued, 0u);
    EXPECT_EQ(io.logical_reads, pages_at_depth0);
  }
  RemoveDirectoryLayout(dir, kShards);
}

// The directory-specific typed error paths: a manifest naming a missing
// shard file, a shard list disagreeing with the declared count, a truncated
// manifest, and a future format version must each come back as their
// OpenErrorCode — not abort the opener.
TEST(ShardEquivalenceTest, OpenDirectoryReportsTypedManifestErrors) {
  constexpr size_t kShards = 4;
  const std::string dir = ::testing::TempDir() + "/gauss_db_dir_errors";
  {
    GaussDbOptions options;
    options.shards.num_shards = kShards;
    GaussDb db = GaussDb::CreateOnDirectory(dir, 3, options);
    db.Build(MakeDataset(300, 3, 4, /*seed=*/111));
  }
  const std::string manifest_path = dir + "/MANIFEST";
  std::string manifest;
  {
    std::ifstream in(manifest_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    manifest = buffer.str();
  }
  const auto write_manifest = [&](const std::string& contents) {
    std::ofstream out(manifest_path, std::ios::trunc);
    out << contents;
  };
  const auto expect_error = [&](OpenErrorCode code, const char* trace) {
    SCOPED_TRACE(trace);
    const OpenResult result = GaussDb::OpenDirectory(dir);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, code);
    EXPECT_FALSE(result.error().message.empty());
  };

  // Missing shard file: hide one the manifest names.
  const std::string shard3 = dir + "/shard-0003.gauss";
  const std::string hidden = shard3 + ".hidden";
  ASSERT_EQ(std::rename(shard3.c_str(), hidden.c_str()), 0);
  expect_error(OpenErrorCode::kMissingShardFile, "missing shard file");
  ASSERT_EQ(std::rename(hidden.c_str(), shard3.c_str()), 0);

  // Shard-count mismatch: declare 4, list 3.
  {
    std::string fewer = manifest;
    const size_t cut = fewer.rfind("shard ");
    ASSERT_NE(cut, std::string::npos);
    fewer.resize(cut);
    write_manifest(fewer);
  }
  expect_error(OpenErrorCode::kShardCountMismatch, "shard count mismatch");

  // Duplicate shard entry (right count, same file twice): two read-write
  // devices on one file would alias trees and corrupt on insert.
  {
    std::string duplicated = manifest;
    const size_t pos = duplicated.find("shard-0001.gauss");
    ASSERT_NE(pos, std::string::npos);
    duplicated.replace(pos, 16, "shard-0000.gauss");
    write_manifest(duplicated);
  }
  expect_error(OpenErrorCode::kCorruptManifest, "duplicate shard file");

  // Truncated manifest: header only, metadata gone.
  write_manifest("gaussdb-directory 1\n");
  expect_error(OpenErrorCode::kCorruptManifest, "truncated manifest");

  // Future format version.
  write_manifest("gaussdb-directory 99\n");
  expect_error(OpenErrorCode::kVersionMismatch, "future version");

  // Not a GaussDb directory at all.
  write_manifest("definitely-not-gauss 1\n");
  expect_error(OpenErrorCode::kNotAGaussDb, "foreign manifest");

  // Restore and prove the round trip still works (the checks above were
  // non-destructive).
  write_manifest(manifest);
  const OpenResult ok = GaussDb::OpenDirectory(dir);
  ASSERT_TRUE(ok.ok());

  // No manifest at all: kIoError.
  std::remove(manifest_path.c_str());
  expect_error(OpenErrorCode::kIoError, "missing manifest");

  write_manifest(manifest);
  RemoveDirectoryLayout(dir, kShards);
}

// A writer that crashes between creating MANIFEST.tmp.<pid> and renaming it
// over MANIFEST strands the tmp file forever (the pid suffix means no later
// writer reuses the name). OpenDirectory() sweeps stale tmp files after
// validating the real manifest — and touches nothing else in the directory.
TEST(ShardEquivalenceTest, OpenDirectoryCollectsStaleManifestTmpFiles) {
  constexpr size_t kShards = 3;
  const std::string dir = ::testing::TempDir() + "/gauss_db_dir_stale_tmp";
  {
    GaussDbOptions options;
    options.shards.num_shards = kShards;
    GaussDb db = GaussDb::CreateOnDirectory(dir, 3, options);
    db.Build(MakeDataset(200, 3, 4, /*seed=*/212));
  }
  // Two crashed writers (distinct pids) plus an unrelated file the sweep
  // must leave alone.
  const std::vector<std::string> stale = {dir + "/MANIFEST.tmp.1234",
                                          dir + "/MANIFEST.tmp.99999"};
  const std::string unrelated = dir + "/NOTES.txt";
  for (const std::string& p : stale) {
    std::ofstream(p) << "half-written manifest";
  }
  std::ofstream(unrelated) << "keep me";

  const OpenResult result = GaussDb::OpenDirectory(dir);
  ASSERT_TRUE(result.ok());
  for (const std::string& p : stale) {
    EXPECT_NE(::access(p.c_str(), F_OK), 0) << p << " should have been swept";
  }
  EXPECT_EQ(::access(unrelated.c_str(), F_OK), 0);
  EXPECT_EQ(::access((dir + "/MANIFEST").c_str(), F_OK), 0);

  std::remove(unrelated.c_str());
  RemoveDirectoryLayout(dir, kShards);
}

// Reopened sharded databases keep routing Insert() to the right shard: the
// partitioner is a pure function of the object id.
TEST(ShardEquivalenceTest, ReopenedShardedFileAcceptsMoreInserts) {
  const std::string path = ::testing::TempDir() + "/gauss_db_sharded_grow.db";
  const PfvDataset first = MakeDataset(300, 3, 6, /*seed=*/606);
  const PfvDataset second = MakeDataset(200, 3, 6, /*seed=*/607);
  {
    GaussDbOptions options;
    options.shards.num_shards = 4;
    GaussDb db = GaussDb::CreateOnFile(path, first.dim(), options);
    db.Build(first);
  }
  {
    GaussDb db = GaussDb::OpenFile(path).value();
    // Offset ids so the two datasets don't collide.
    for (size_t i = 0; i < second.size(); ++i) {
      Pfv pfv = second[i];
      pfv.id += 1'000'000;
      db.Insert(pfv);
    }
    Session session = db.Serve({.num_workers = 4});
    size_t total = 0;
    for (size_t s = 0; s < session.num_shards(); ++s) {
      session.shard_tree(s).Validate();
      total += session.shard_tree(s).size();
    }
    EXPECT_EQ(total, first.size() + second.size());
  }
  std::remove(path.c_str());
}

// ----------------------- loopback RPC differential ---------------------------
//
// The distributed transport (src/net/) must be invisible to correctness: a
// ServeRemote() session whose shards sit behind real ShardServers on loopback
// TCP sockets has to produce byte-identical answers to the in-process
// coordinator over the very same shard services. Running both sessions
// against one database turns any wire-format, rebasing, or refinement-
// batching divergence into a bit mismatch here.

// One sharded database served twice: in-process, and through per-shard
// ShardServers plus a ServeRemote() session dialing 127.0.0.1. Member order
// is load-bearing — destruction runs remote session (hangs up), then the
// servers it spoke to, then the local session owning the shard services.
class LoopbackStack {
 public:
  LoopbackStack(const PfvDataset& dataset, size_t num_shards) {
    GaussDbOptions options;
    options.shards.num_shards = num_shards;
    db_.emplace(GaussDb::CreateInMemory(dataset.dim(), options));
    db_->Build(dataset);
    local_.emplace(
        db_->Serve({.num_workers = 2 * num_shards, .coordinator_threads = 2}));
    std::vector<std::string> endpoints;
    for (size_t s = 0; s < local_->num_shards(); ++s) {
      NetError error;
      std::unique_ptr<ShardServer> server =
          ShardServer::Listen(local_->shard_service(s), {}, &error);
      if (server == nullptr) {
        ADD_FAILURE() << "ShardServer::Listen: " << error.ToString();
        return;
      }
      endpoints.push_back("127.0.0.1:" + std::to_string(server->port()));
      servers_.push_back(std::move(server));
    }
    ServeResult connected = GaussDb::ServeRemote(endpoints);
    if (!connected.ok()) {
      ADD_FAILURE() << "ServeRemote: " << connected.error().ToString();
      return;
    }
    remote_.emplace(std::move(connected).value());
  }

  bool ok() const { return remote_.has_value(); }
  Session& local() { return *local_; }
  Session& remote() { return *remote_; }
  void ShutdownServers() {
    for (std::unique_ptr<ShardServer>& server : servers_) server->Shutdown();
  }
  void ShutdownServer(size_t s) { servers_[s]->Shutdown(); }

 private:
  std::optional<GaussDb> db_;
  std::optional<Session> local_;
  std::vector<std::unique_ptr<ShardServer>> servers_;
  std::optional<Session> remote_;
};

void ExpectBitwiseEqualDoubles(double got, double want) {
  EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0);
}

// Acceptance criterion for the transport: every shard count 1-8, the full
// variant batch (both TIQ exact_membership modes, refinement-forcing tight
// accuracies) comes back byte-identical over RPC — items, denominator
// bounds, and the seq-scan oracle's id sets all agree with the in-process
// coordinator.
TEST(ShardEquivalenceTest, LoopbackRpcMatchesInProcessAcrossShardCounts) {
  const PfvDataset dataset = MakeDataset(500, 3, 6, /*seed=*/1212);
  const Reference ref(dataset, /*probes=*/5, /*seed=*/1213);
  for (size_t shards = 1; shards <= 8; ++shards) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    LoopbackStack stack(dataset, shards);
    ASSERT_TRUE(stack.ok());
    const BatchResult local = stack.local().ExecuteBatch(ref.batch());
    const BatchResult remote = stack.remote().ExecuteBatch(ref.batch());
    ASSERT_EQ(remote.responses.size(), ref.batch().size());
    ASSERT_EQ(local.responses.size(), ref.batch().size());
    for (size_t i = 0; i < remote.responses.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      const Query& query = ref.batch()[i];
      const QueryResponse& got = remote.responses[i];
      const QueryResponse& want = local.responses[i];
      ASSERT_EQ(got.status, QueryResponse::Status::kOk) << got.error.ToString();
      ASSERT_EQ(want.status, QueryResponse::Status::kOk);
      EXPECT_EQ(got.kind, query.kind());
      test::ExpectItemsBytesEqual(got.items, want.items);
      // The combined Bayes-denominator interval survived the wire bit-exactly.
      ExpectBitwiseEqualDoubles(got.stats.denominator_lo,
                                want.stats.denominator_lo);
      ExpectBitwiseEqualDoubles(got.stats.denominator_hi,
                                want.stats.denominator_hi);
      // Independent oracle: the exhaustive scan's id sets.
      if (IsLazyTiq(query)) continue;
      if (query.kind() == QueryKind::kTiq) {
        EXPECT_EQ(Ids(got.items), Ids(ref.ScanTiq(i)));
      } else {
        EXPECT_EQ(Ids(got.items), Ids(ref.ScanMliq(i, query.k())));
      }
    }
  }
}

// Refinement over the wire. Under mass-proportional budgets the coordinator
// owns certification (per-shard Start queries suppress the shard-local
// relative test), so accuracy-refining queries drive coordinator rounds; and
// exact membership with the threshold sitting exactly at a candidate's true
// probability forces further rounds — the first pass cannot certify a
// candidate against a threshold inside its interval, so batched kRefine
// rounds continue until the interval clears (or the shards exhaust). The
// per-query refinement work is deterministic — the same number of refine
// requests whether the shard is a function call or a socket away. (Round
// counts measure coalescing, which is timing-dependent; only their
// existence and rounds <= requests are asserted.)
TEST(ShardEquivalenceTest, LoopbackRpcRefinementRoundsAreBatchedAndCounted) {
  const PfvDataset dataset = MakeDataset(1000, 3, 8, /*seed=*/1414);
  LoopbackStack stack(dataset, /*num_shards=*/3);
  ASSERT_TRUE(stack.ok());

  // Refinement-forcing thresholds: each probe's top-2 true probabilities,
  // certified to 1e-9 by the in-process session.
  WorkloadConfig wconfig;
  wconfig.query_count = 8;
  wconfig.seed = 1415;
  std::vector<Query> batch;
  for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
    const QueryResponse top =
        stack.local().Submit(Query::Mliq(q.query, 2).Accuracy(1e-9)).get();
    ASSERT_EQ(top.status, QueryResponse::Status::kOk);
    for (const IdentificationResult& item : top.items) {
      if (item.probability > 0.0 && item.probability < 1.0) {
        batch.push_back(
            Query::Tiq(q.query, item.probability).ExactMembership(true));
      }
    }
  }
  ASSERT_FALSE(batch.empty());

  const BatchResult local = stack.local().ExecuteBatch(batch);
  const BatchResult remote = stack.remote().ExecuteBatch(batch);
  ASSERT_EQ(remote.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ASSERT_EQ(remote.responses[i].status, QueryResponse::Status::kOk)
        << remote.responses[i].error.ToString();
    test::ExpectItemsBytesEqual(remote.responses[i].items,
                                local.responses[i].items);
  }
  EXPECT_GT(remote.stats.refine_rounds, 0u);
  EXPECT_GE(remote.stats.refine_batched_queries, remote.stats.refine_rounds);
  EXPECT_EQ(remote.stats.refine_batched_queries,
            local.stats.refine_batched_queries);
}

// Deterministic fault injection, phase one: every shard server is shut down
// between batches, so each query of the next batch must come back as a typed
// kShardError (connection gone -> kPeerClosed) without hanging — and the
// error is per-query, counted once each in the merged stats.
TEST(ShardEquivalenceTest, ShardServerShutdownBetweenBatchesFailsTyped) {
  const PfvDataset dataset = MakeDataset(300, 3, 4, /*seed=*/1515);
  LoopbackStack stack(dataset, /*num_shards=*/2);
  ASSERT_TRUE(stack.ok());

  WorkloadConfig wconfig;
  wconfig.query_count = 3;
  wconfig.seed = 1516;
  std::vector<Query> batch;
  for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
    batch.push_back(Query::Mliq(q.query, 3).Accuracy(kAccuracy));
    batch.push_back(Query::Tiq(q.query, kThreshold).ExactMembership(true));
  }

  const BatchResult warm = stack.remote().ExecuteBatch(batch);
  for (const QueryResponse& response : warm.responses) {
    ASSERT_EQ(response.status, QueryResponse::Status::kOk)
        << response.error.ToString();
  }

  stack.ShutdownServers();
  const BatchResult cold = stack.remote().ExecuteBatch(batch);
  ASSERT_EQ(cold.responses.size(), batch.size());
  for (size_t i = 0; i < cold.responses.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    EXPECT_EQ(cold.responses[i].status, QueryResponse::Status::kShardError);
    EXPECT_FALSE(cold.responses[i].error.ok());
    EXPECT_EQ(cold.responses[i].error.code, NetErrorCode::kPeerClosed);
    EXPECT_TRUE(cold.responses[i].items.empty());
  }
  EXPECT_EQ(cold.stats.shard_error_queries, batch.size());
}

// Phase two: a shard dies in the middle of a heavy in-flight batch. Every
// outstanding future must still resolve — kOk if its scatter-gather finished
// before the cut, typed kShardError otherwise, never a hang (the ctest
// timeout is the watchdog) — and tearing the session down afterwards drains
// cleanly with the server gone.
TEST(ShardEquivalenceTest, ShardServerShutdownMidBatchResolvesEveryQuery) {
  const PfvDataset dataset = MakeDataset(800, 4, 8, /*seed=*/1717);
  LoopbackStack stack(dataset, /*num_shards=*/3);
  ASSERT_TRUE(stack.ok());

  WorkloadConfig wconfig;
  wconfig.query_count = 20;
  wconfig.seed = 1718;
  std::vector<Query> batch;
  for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
    // Tight accuracy keeps refinement traffic on the wire while the plug is
    // pulled, exercising the in-flight failure path, not just admission.
    batch.push_back(Query::Mliq(q.query, 5).Accuracy(1e-9));
    batch.push_back(
        Query::Tiq(q.query, kThreshold).ExactMembership(true).Accuracy(1e-9));
  }

  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const Query& query : batch) {
    futures.push_back(stack.remote().Submit(query));
  }
  stack.ShutdownServer(0);

  size_t ok = 0;
  size_t shard_errors = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryResponse response = futures[i].get();
    if (response.status == QueryResponse::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response.status, QueryResponse::Status::kShardError);
      EXPECT_FALSE(response.error.ok());
      ++shard_errors;
    }
  }
  EXPECT_EQ(ok + shard_errors, batch.size());
  // The remaining live shards must still answer fresh traffic is NOT a
  // guarantee (the coordinator needs every shard); what is guaranteed is a
  // typed, prompt error — not a hang.
  const QueryResponse after =
      stack.remote().Submit(Query::Mliq(batch[0].pfv(), 1)).get();
  EXPECT_EQ(after.status, QueryResponse::Status::kShardError);
  EXPECT_FALSE(after.error.ok());
}

// ================= mass-proportional refinement budgets =====================
//
// The sharding I/O tax: refining every shard to a relative epsilon against
// its own denominator bounds costs roughly the same I/O per shard no matter
// how little combined-denominator mass the shard holds. The coordinator's
// mass-proportional policy suppresses the shard-local certification and
// water-fills a combined-interval budget across shards instead — and the
// tests below pin both its correctness (byte-identity, oracle id sets) and
// the win itself (strictly fewer pages than the uniform-halving baseline on
// a skewed partition).

// A dataset whose ids are picked so that ~`heavy_fraction` of the objects
// land on shard 0 of a 2-shard Partitioner with `hash_seed`: hash routing
// balances loads on real id distributions, so skew is simulated by choosing
// ids from the preimages of the two shards. The light shard's objects are
// additionally displaced away from the gallery's core — far enough that
// they carry a vanishing share of any near-core probe's denominator mass,
// but near enough that their exact densities stay strictly positive (no
// underflow; the combined lower bound must remain certifiable). This is the
// shape that exposes the sharding I/O tax: a shard whose hull-bound RATIOS
// at the probe are loose (distance inflates the upper/lower hull spread)
// but whose absolute contribution is negligible.
PfvDataset SkewedDataset(size_t size, size_t dim, uint64_t hash_seed,
                         double heavy_fraction) {
  const PfvDataset base = MakeDataset(size, dim, 8, /*seed=*/2222);
  const Partitioner router(/*num_shards=*/2, hash_seed);
  const size_t heavy = static_cast<size_t>(heavy_fraction * size);
  std::vector<uint64_t> heavy_ids, light_ids;
  for (uint64_t id = 0; heavy_ids.size() < heavy || light_ids.size() < size - heavy;
       ++id) {
    if (router.ShardOf(id) == 0) {
      if (heavy_ids.size() < heavy) heavy_ids.push_back(id);
    } else if (light_ids.size() < size - heavy) {
      light_ids.push_back(id);
    }
  }
  PfvDataset skewed(dim);
  for (size_t i = 0; i < size; ++i) {
    Pfv pfv = base[i];
    pfv.id = i < heavy ? heavy_ids[i] : light_ids[i - heavy];
    if (i >= heavy) {
      // ~1.5 units at sigma >= 0.05 keeps log-density deficits well inside
      // exp() range: the light shard is remote, not impossible.
      for (double& mu : pfv.mu) mu += 1.5;
    }
    skewed.Add(pfv);
  }
  return skewed;
}

// On a 90/10 partition, the mass-proportional coordinator must (a) answer
// byte-identically to the session's default coordinator and match the
// single-tree reference and seq-scan oracle, and (b) read strictly fewer
// pages per query than the uniform-halving baseline over the very same
// shard services — the light shard stops paying full refinement freight.
TEST(ShardEquivalenceTest, SkewedPartitionProportionalBudgetsBeatUniform) {
  constexpr size_t kSize = 3000;
  constexpr uint64_t kSeed = 0xabcdef12345ull;
  const PfvDataset dataset = SkewedDataset(kSize, 3, kSeed, /*heavy=*/0.9);
  const Reference ref(dataset, /*probes=*/6, /*seed=*/2223);

  GaussDbOptions options;
  options.shards.num_shards = 2;
  options.shards.hash_seed = kSeed;
  GaussDb db = GaussDb::CreateInMemory(dataset.dim(), options);
  db.Build(dataset);
  Session session = db.Serve({.num_workers = 4, .coordinator_threads = 2});
  ASSERT_EQ(session.num_shards(), 2u);
  // The chosen ids really did skew the partition.
  EXPECT_GE(session.shard_tree(0).size(), (kSize * 85) / 100);

  const BatchResult via_session = session.ExecuteBatch(ref.batch());

  std::vector<QueryService*> services = {session.shard_service(0),
                                         session.shard_service(1)};
  ShardCoordinatorOptions proportional_options;
  proportional_options.refinement = RefinementPolicy::kMassProportional;
  ShardCoordinator proportional(services, proportional_options);
  const BatchResult prop = proportional.ExecuteBatch(ref.batch());

  ShardCoordinatorOptions uniform_options;
  uniform_options.refinement = RefinementPolicy::kUniformHalving;
  ShardCoordinator uniform(services, uniform_options);
  const BatchResult unif = uniform.ExecuteBatch(ref.batch());

  ASSERT_EQ(prop.responses.size(), ref.batch().size());
  ASSERT_EQ(unif.responses.size(), ref.batch().size());
  for (size_t i = 0; i < ref.batch().size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const Query& query = ref.batch()[i];
    ASSERT_EQ(prop.responses[i].status, QueryResponse::Status::kOk);
    ASSERT_EQ(unif.responses[i].status, QueryResponse::Status::kOk);
    // The session's default coordinator IS the mass-proportional policy.
    test::ExpectItemsBytesEqual(prop.responses[i].items,
                                via_session.responses[i].items);
    // Both policies answer correctly — only the I/O spent may differ.
    if (IsLazyTiq(query)) {
      ExpectLazyTiqContract(prop.responses[i].items, ref.ScanTiq(i));
      ExpectLazyTiqContract(unif.responses[i].items, ref.ScanTiq(i));
      continue;
    }
    ExpectEquivalent(prop.responses[i].items,
                     ref.single_tree().responses[i].items,
                     RefinesProbabilities(query));
    ExpectEquivalent(unif.responses[i].items,
                     ref.single_tree().responses[i].items,
                     RefinesProbabilities(query));
    if (query.kind() == QueryKind::kTiq) {
      EXPECT_EQ(Ids(prop.responses[i].items), Ids(ref.ScanTiq(i)));
    } else {
      EXPECT_EQ(Ids(prop.responses[i].items),
                Ids(ref.ScanMliq(i, query.k())));
    }
  }

  // The tentpole: proportional budgets must beat uniform halving on pages.
  // The standard variants certify off the identification traversal alone
  // (kAccuracy = 1e-4 is met before any refinement round fires), so the
  // I/O comparison runs a batch tight enough that the denominator MUST be
  // refined — that is where the light shard's freight shows up. Under
  // uniform halving the light shard certifies against its own small lower
  // bound (relative eps, ~full refinement depth regardless of mass); under
  // proportional budgets its absolute target is set by the combined
  // interval, which the heavy shard dominates, so the light shard stops
  // early. (Logical reads — cache-state independent, so sequential runs
  // over the same services compare fairly.)
  constexpr double kTightAccuracy = 1e-6;
  std::vector<Query> tight;
  for (const Query& query : ref.batch()) {
    if (query.kind() != QueryKind::kMliq) continue;
    if (!query.mliq_options().refine_probabilities) continue;
    tight.push_back(Query::Mliq(query.pfv(), 3).Accuracy(kTightAccuracy));
    tight.push_back(Query::Tiq(query.pfv(), kThreshold)
                        .ExactMembership(true)
                        .Accuracy(kTightAccuracy));
  }
  ASSERT_FALSE(tight.empty());
  const BatchResult prop_tight = proportional.ExecuteBatch(tight);
  const BatchResult unif_tight = uniform.ExecuteBatch(tight);
  for (size_t i = 0; i < tight.size(); ++i) {
    SCOPED_TRACE("tight query " + std::to_string(i));
    ASSERT_EQ(prop_tight.responses[i].status, QueryResponse::Status::kOk);
    ASSERT_EQ(unif_tight.responses[i].status, QueryResponse::Status::kOk);
    // At 1e-10 both policies certify hard intervals: same identities.
    EXPECT_EQ(Ids(prop_tight.responses[i].items),
              Ids(unif_tight.responses[i].items));
  }
  EXPECT_LT(prop_tight.stats.pages_per_query(),
            unif_tight.stats.pages_per_query())
      << "mass-proportional refinement reads no fewer pages than the "
         "uniform-halving baseline on a 90/10 partition";
}

// A probe so far from the gallery that every exact object density
// underflows to zero in the root-hull reference scale leaves the combined
// denominator lower bound at zero — the relative certification test
// (gap <= eps * lo) is then unreachable, and the coordinator used to refine
// until every shard had exhausted its whole tree: a full scan. The absolute
// gap floor must terminate refinement instead: kOk, honest bounds, and
// strictly less work than evaluating the entire gallery.
TEST(ShardEquivalenceTest, ZeroLowerBoundQueryTerminatesWithoutFullScan) {
  const PfvDataset dataset = MakeDataset(2000, 3, 8, /*seed=*/3434);
  GaussDbOptions options;
  options.shards.num_shards = 3;
  GaussDb db = GaussDb::CreateInMemory(dataset.dim(), options);
  db.Build(dataset);
  Session session = db.Serve({.num_workers = 6, .coordinator_threads = 2});

  const Pfv probe(777, std::vector<double>(dataset.dim(), 1.0e5),
                  std::vector<double>(dataset.dim(), 0.05));
  const QueryResponse resp =
      session.Submit(Query::Mliq(probe, 3).Accuracy(1e-4)).get();
  ASSERT_EQ(resp.status, QueryResponse::Status::kOk);
  // The interval is honest (lo <= hi, lo pinned at zero by underflow) ...
  EXPECT_EQ(resp.stats.denominator_lo, 0.0);
  EXPECT_LE(resp.stats.denominator_lo, resp.stats.denominator_hi);
  // ... and certification did NOT fall back to evaluating the whole gallery
  // in pursuit of a relative test that can never fire at lo == 0.
  EXPECT_LT(resp.stats.objects_evaluated, dataset.size());
}

}  // namespace
}  // namespace gauss
