// Differential property harness for sharded GaussDb: for randomized
// datasets, dimensionalities, and shard counts 1-8, scatter-gathered
// MLIQ/TIQ answers must match the single-tree reference (ids and ordering
// exactly; probabilities within the requested accuracy when refinement is
// on) and the seq-scan oracle — in both TIQ exact_membership modes. Every
// assertion runs under a SCOPED_TRACE naming the generator seed and
// configuration, so a failure prints exactly what to replay.
//
// Why this is the acceptance gate: a sharded TIQ/MLIQ answer is only
// correct if the coordinator combines per-shard Bayes-denominator bounds
// and re-refines when the combined interval is too loose — none of which a
// per-shard unit test can see. Comparing whole answers against an
// independently built single tree (different tree shapes, different
// traversal orders) and against the exhaustive scan catches any mistake in
// the combination math.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/workload.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "service_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

constexpr double kAccuracy = 1e-4;  // requested probability accuracy
constexpr double kThreshold = 0.2;  // TIQ threshold for generated workloads

// The query variants every trial exercises per probe. Refined variants pin
// probability values; unrefined ones pin ids/ordering under loose bounds.
std::vector<Query> MakeVariants(const Pfv& probe) {
  std::vector<Query> variants;
  variants.push_back(Query::Mliq(probe, 3).Accuracy(kAccuracy));
  variants.push_back(Query::Mliq(probe, 5).RefineProbabilities(false));
  variants.push_back(Query::Tiq(probe, kThreshold).ExactMembership(true));
  variants.push_back(
      Query::Tiq(probe, kThreshold).ExactMembership(true).Accuracy(kAccuracy));
  variants.push_back(Query::Tiq(probe, kThreshold).ExactMembership(false));
  return variants;
}

bool IsLazyTiq(const Query& query) {
  return query.kind() == QueryKind::kTiq &&
         !query.tiq_options().exact_membership;
}

bool RefinesProbabilities(const Query& query) {
  return query.kind() == QueryKind::kMliq
             ? query.mliq_options().refine_probabilities
             : query.tiq_options().refine_probabilities;
}

std::vector<uint64_t> Ids(const std::vector<IdentificationResult>& items) {
  std::vector<uint64_t> ids;
  ids.reserve(items.size());
  for (const IdentificationResult& item : items) ids.push_back(item.id);
  return ids;
}

// ids and ordering exactly; probabilities within the sum of the two
// certified interval half-widths (each answer's midpoint is within its own
// half-width of the true probability).
void ExpectEquivalent(const std::vector<IdentificationResult>& got,
                      const std::vector<IdentificationResult>& want,
                      bool compare_probabilities) {
  ASSERT_EQ(Ids(got), Ids(want));
  if (!compare_probabilities) return;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].probability, want[i].probability,
                got[i].probability_error + want[i].probability_error + 1e-12)
        << "item " << i << " id " << got[i].id;
  }
}

// Lazy-mode TIQ contract (paper Figure 5): the traversal-dependent result
// set must contain every true answer (no false dismissals), and every extra
// must be a certified straddler — its probability interval still reaches
// the threshold.
void ExpectLazyTiqContract(const std::vector<IdentificationResult>& got,
                           const std::vector<IdentificationResult>& exact) {
  const std::vector<uint64_t> got_ids = Ids(got);
  const std::set<uint64_t> got_set(got_ids.begin(), got_ids.end());
  for (const IdentificationResult& item : exact) {
    EXPECT_TRUE(got_set.count(item.id))
        << "lazy TIQ dismissed true answer id " << item.id;
  }
  const std::vector<uint64_t> exact_ids = Ids(exact);
  const std::set<uint64_t> exact_set(exact_ids.begin(), exact_ids.end());
  for (const IdentificationResult& item : got) {
    if (exact_set.count(item.id)) continue;
    EXPECT_GE(item.probability + item.probability_error, kThreshold - 1e-12)
        << "lazy TIQ reported id " << item.id
        << " whose certified upper bound misses the threshold";
  }
}

// Single-tree and seq-scan reference answers plus the probe workload for
// one dataset.
class Reference {
 public:
  explicit Reference(const PfvDataset& dataset, size_t probes, uint64_t seed)
      : scan_pool_(&scan_device_, 1 << 12),
        scan_file_(&scan_pool_, dataset.dim()) {
    scan_file_.AppendAll(dataset);

    if (dataset.size() > 0) {
      WorkloadConfig wconfig;
      wconfig.query_count = probes;
      wconfig.seed = seed;
      for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
        probes_.push_back(q.query);
      }
    } else {
      // No objects to probe near: a fixed far-field probe still must return
      // empty answers everywhere.
      probes_.push_back(Pfv(1, std::vector<double>(dataset.dim(), 0.5),
                            std::vector<double>(dataset.dim(), 0.1)));
    }
    for (const Pfv& probe : probes_) {
      for (Query& query : MakeVariants(probe)) {
        batch_.push_back(std::move(query));
      }
    }

    GaussDb db = GaussDb::CreateInMemory(dataset.dim());
    db.Build(dataset);
    Session session = db.Serve({.num_workers = 2});
    single_tree_ = session.ExecuteBatch(batch_);
  }

  const std::vector<Query>& batch() const { return batch_; }
  const BatchResult& single_tree() const { return single_tree_; }

  // Exact TIQ answer for the probe behind batch()[i] (exhaustive scan).
  std::vector<IdentificationResult> ScanTiq(size_t i) const {
    SeqScan scan(&scan_file_);
    return scan.QueryTiq(batch_[i].pfv(), kThreshold).items;
  }
  std::vector<IdentificationResult> ScanMliq(size_t i, size_t k) const {
    SeqScan scan(&scan_file_);
    return scan.QueryMliq(batch_[i].pfv(), k).items;
  }

 private:
  InMemoryPageDevice scan_device_;
  BufferPool scan_pool_;
  PfvFile scan_file_;
  std::vector<Pfv> probes_;
  std::vector<Query> batch_;
  BatchResult single_tree_;
};

// Runs the whole differential comparison for one dataset and shard count.
void CheckShardCount(const PfvDataset& dataset, const Reference& ref,
                     size_t num_shards) {
  GaussDbOptions options;
  options.shards.num_shards = num_shards;
  GaussDb db = GaussDb::CreateInMemory(dataset.dim(), options);
  db.Build(dataset);
  EXPECT_EQ(db.size(), dataset.size());
  EXPECT_EQ(db.num_shards(), num_shards);

  Session session = db.Serve(
      {.num_workers = 2 * num_shards, .coordinator_threads = 2});
  EXPECT_TRUE(session.sharded());
  EXPECT_EQ(session.num_shards(), num_shards);
  size_t sharded_objects = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    session.shard_tree(s).Validate();
    sharded_objects += session.shard_tree(s).size();
  }
  EXPECT_EQ(sharded_objects, dataset.size());

  const BatchResult result = session.ExecuteBatch(ref.batch());
  ASSERT_EQ(result.responses.size(), ref.batch().size());
  for (size_t i = 0; i < result.responses.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const Query& query = ref.batch()[i];
    const QueryResponse& got = result.responses[i];
    const QueryResponse& want = ref.single_tree().responses[i];
    EXPECT_EQ(got.status, QueryResponse::Status::kOk);
    EXPECT_EQ(got.kind, query.kind());
    // Combined denominator interval must be well-formed.
    EXPECT_LE(got.stats.denominator_lo, got.stats.denominator_hi);

    if (IsLazyTiq(query)) {
      ExpectLazyTiqContract(got.items, ref.ScanTiq(i));
      continue;
    }
    ExpectEquivalent(got.items, want.items, RefinesProbabilities(query));
    // Independent oracle: the exhaustive scan.
    if (query.kind() == QueryKind::kTiq) {
      EXPECT_EQ(Ids(got.items), Ids(ref.ScanTiq(i)));
    } else {
      EXPECT_EQ(Ids(got.items), Ids(ref.ScanMliq(i, query.k())));
    }
  }
}

PfvDataset MakeDataset(size_t size, size_t dim, size_t clusters,
                       uint64_t seed) {
  if (size == 0) return PfvDataset(dim);  // the generator requires size > 0
  ClusteredDatasetConfig config;
  config.size = size;
  config.dim = dim;
  config.cluster_count = clusters;
  config.seed = seed;
  return GenerateClusteredDataset(config);
}

// Acceptance criterion: every shard count 1 through 8 matches the
// single-tree reference on one solid configuration. Shard count 1 routes
// through the full coordinator (scale rebasing, combination, final filter)
// and must be byte-compatible with the plain single-tree answers.
TEST(ShardEquivalenceTest, ShardCounts1Through8MatchSingleTreeReference) {
  const PfvDataset dataset = MakeDataset(1000, 4, 10, /*seed=*/101);
  const Reference ref(dataset, /*probes=*/8, /*seed=*/11);
  for (size_t shards = 1; shards <= 8; ++shards) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    CheckShardCount(dataset, ref, shards);
  }
}

// Randomized trials over dataset shape; failures print the seed to replay.
TEST(ShardEquivalenceTest, RandomizedDifferentialTrials) {
  constexpr uint64_t kBaseSeed = 7000;
  Rng rng(kBaseSeed);
  for (size_t trial = 0; trial < 4; ++trial) {
    const uint64_t seed = kBaseSeed + 31 * trial;
    const size_t dim = 2 + rng.UniformInt(5);         // 2..6
    const size_t size = 300 + rng.UniformInt(1200);   // 300..1499
    const size_t clusters = 4 + rng.UniformInt(12);   // 4..15
    char trace[128];
    std::snprintf(trace, sizeof(trace),
                  "trial=%zu seed=%llu dim=%zu size=%zu clusters=%zu", trial,
                  static_cast<unsigned long long>(seed), dim, size, clusters);
    SCOPED_TRACE(trace);

    const PfvDataset dataset = MakeDataset(size, dim, clusters, seed);
    const Reference ref(dataset, /*probes=*/4, seed + 1);
    for (size_t shards : {2, 3, 5, 8}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      CheckShardCount(dataset, ref, shards);
    }
  }
}

// Degenerate galleries: empty database, and datasets smaller than the shard
// count (some shard trees stay empty — their traversals must contribute
// nothing to the combined denominator, not a bogus reference scale).
TEST(ShardEquivalenceTest, TinyAndEmptyDatasetsAcrossShardCounts) {
  for (size_t size : {0, 1, 5}) {
    SCOPED_TRACE("size=" + std::to_string(size));
    const PfvDataset dataset = MakeDataset(size, 3, 2, /*seed=*/303);
    const Reference ref(dataset, /*probes=*/2, /*seed=*/17);
    for (size_t shards : {1, 2, 8}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      CheckShardCount(dataset, ref, shards);
    }
  }
}

// A sharded on-file database must survive close + reopen: the manifest
// restores the shard layout and every answer is byte-identical to the
// pre-reopen serving stack (same trees, same traversals, same bounds).
TEST(ShardEquivalenceTest, ShardedFileRoundTripIsByteIdentical) {
  const std::string path =
      ::testing::TempDir() + "/gauss_db_sharded_roundtrip.db";
  const PfvDataset dataset = MakeDataset(800, 4, 8, /*seed=*/505);
  const Reference ref(dataset, /*probes=*/6, /*seed=*/19);

  BatchResult before;
  {
    GaussDbOptions options;
    options.shards.num_shards = 3;
    GaussDb db = GaussDb::CreateOnFile(path, dataset.dim(), options);
    db.Build(dataset);
    Session session = db.Serve({.num_workers = 3});
    before = session.ExecuteBatch(ref.batch());
  }  // db + session gone: only the file survives

  {
    GaussDb reopened = GaussDb::OpenFile(path);
    EXPECT_TRUE(reopened.sharded());
    EXPECT_EQ(reopened.num_shards(), 3u);
    EXPECT_EQ(reopened.dim(), dataset.dim());
    EXPECT_EQ(reopened.size(), dataset.size());
    Session session = reopened.Serve({.num_workers = 3});
    const BatchResult after = session.ExecuteBatch(ref.batch());
    ASSERT_EQ(after.responses.size(), before.responses.size());
    for (size_t i = 0; i < after.responses.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      test::ExpectItemsBytesEqual(after.responses[i].items,
                                  before.responses[i].items);
    }
  }
  std::remove(path.c_str());
}

// Asynchronous read-ahead must be invisible in the answers: for both the
// unsharded service path and the coordinator's scatter-gather path, every
// prefetch depth returns answers byte-identical to the depth-0 run of the
// same configuration. The serving cache is deliberately smaller than the
// tree(s) so depth > 0 genuinely schedules asynchronous fills (asserted via
// the merged prefetch counters) instead of no-opping on resident pages.
TEST(ShardEquivalenceTest, PrefetchDepthSweepIsByteIdenticalPerTopology) {
  // Large enough that every per-shard tree dwarfs its serving cache —
  // GaussTree::Open's reachability walk warms the cache, so a tree that
  // fits would turn every hint into a residency no-op.
  const PfvDataset dataset = MakeDataset(4000, 4, 10, /*seed=*/909);
  WorkloadConfig wconfig;
  wconfig.query_count = 6;
  wconfig.seed = 23;
  std::vector<Query> batch;
  for (const IdentificationQuery& q : GenerateWorkload(dataset, wconfig)) {
    for (Query& v : MakeVariants(q.query)) batch.push_back(std::move(v));
  }

  for (const size_t shards : {size_t{0}, size_t{3}}) {  // 0 = unsharded
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    GaussDbOptions options;
    options.shards.num_shards = shards;
    GaussDb db = GaussDb::CreateInMemory(dataset.dim(), options);
    db.Build(dataset);

    BatchResult at_depth0;
    for (const size_t depth : {size_t{0}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("prefetch_depth=" + std::to_string(depth));
      ServeOptions serve;
      serve.num_workers = 2 * std::max<size_t>(1, shards);
      serve.cache_pages = 48;  // well below the tree pages: real misses
      serve.prefetch_depth = depth;
      Session session = db.Serve(serve);

      const BatchResult result = session.ExecuteBatch(batch);
      ASSERT_EQ(result.responses.size(), batch.size());
      if (depth == 0) {
        at_depth0 = result;
        EXPECT_EQ(session.io_stats().prefetch_issued, 0u);
        continue;
      }
      for (size_t i = 0; i < result.responses.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
        test::ExpectItemsBytesEqual(result.responses[i].items,
                                    at_depth0.responses[i].items);
      }
      EXPECT_GT(session.io_stats().prefetch_issued, 0u);
    }
  }
}

// The shard manifest (header + one PageId per shard) must fit page 0; a
// page size too small for the shard count fails loudly at creation instead
// of overflowing the manifest write at Finalize().
TEST(ShardEquivalenceDeathTest, ManifestMustFitThePage) {
  GaussDbOptions options;
  options.page_size = 256;
  options.shards.num_shards = 64;  // 24-byte header + 64 PageIds > 256
  EXPECT_DEATH(GaussDb::CreateInMemory(3, options),
               "shard manifest does not fit");
}

// Reopened sharded databases keep routing Insert() to the right shard: the
// partitioner is a pure function of the object id.
TEST(ShardEquivalenceTest, ReopenedShardedFileAcceptsMoreInserts) {
  const std::string path = ::testing::TempDir() + "/gauss_db_sharded_grow.db";
  const PfvDataset first = MakeDataset(300, 3, 6, /*seed=*/606);
  const PfvDataset second = MakeDataset(200, 3, 6, /*seed=*/607);
  {
    GaussDbOptions options;
    options.shards.num_shards = 4;
    GaussDb db = GaussDb::CreateOnFile(path, first.dim(), options);
    db.Build(first);
  }
  {
    GaussDb db = GaussDb::OpenFile(path);
    // Offset ids so the two datasets don't collide.
    for (size_t i = 0; i < second.size(); ++i) {
      Pfv pfv = second[i];
      pfv.id += 1'000'000;
      db.Insert(pfv);
    }
    Session session = db.Serve({.num_workers = 4});
    size_t total = 0;
    for (size_t s = 0; s < session.num_shards(); ++s) {
      session.shard_tree(s).Validate();
      total += session.shard_tree(s).size();
    }
    EXPECT_EQ(total, first.size() + second.size());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gauss
