#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

Pfv RandomPfv(Rng& rng, uint64_t id, size_t dim) {
  std::vector<double> mu(dim), sigma(dim);
  for (double& m : mu) m = rng.Uniform(0, 1);
  for (double& s : sigma) s = rng.Uniform(0.01, 0.2);
  return Pfv(id, std::move(mu), std::move(sigma));
}

PfvDataset RandomDataset(uint64_t seed, size_t n, size_t dim) {
  Rng rng(seed);
  PfvDataset dataset(dim);
  for (uint64_t i = 0; i < n; ++i) dataset.Add(RandomPfv(rng, i, dim));
  return dataset;
}

TEST(BulkLoadTest, StructureInvariantsHold) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 14);
  GaussTree tree(&pool, 3);
  tree.BulkLoad(RandomDataset(301, 3000, 3));
  tree.Validate();
  EXPECT_EQ(tree.size(), 3000u);
}

TEST(BulkLoadTest, QueriesMatchSequentialScan) {
  InMemoryPageDevice device(4096);
  BufferPool pool(&device, 1 << 14);
  GaussTree tree(&pool, 4);
  PfvFile file(&pool, 4);
  const PfvDataset dataset = RandomDataset(302, 2500, 4);
  tree.BulkLoad(dataset);
  tree.Finalize();
  file.AppendAll(dataset);
  SeqScan scan(&file);

  Rng rng(303);
  for (int trial = 0; trial < 12; ++trial) {
    const Pfv q = RandomPfv(rng, 50000 + trial, 4);
    const MliqResult a = QueryMliq(tree, q, 5);
    const MliqResult b = scan.QueryMliq(q, 5);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_NEAR(a.items[i].log_density, b.items[i].log_density, 1e-9);
    }
    const TiqResult ta = QueryTiq(tree, q, 0.25);
    const TiqResult tb = scan.QueryTiq(q, 0.25);
    std::set<uint64_t> ids_a, ids_b;
    for (const auto& item : ta.items) ids_a.insert(item.id);
    for (const auto& item : tb.items) ids_b.insert(item.id);
    EXPECT_EQ(ids_a, ids_b);
  }
}

TEST(BulkLoadTest, SameAnswersAsIncrementalBuild) {
  const PfvDataset dataset = RandomDataset(304, 1500, 3);
  Rng rng(305);
  const Pfv q = RandomPfv(rng, 77777, 3);

  InMemoryPageDevice device_a(2048);
  BufferPool pool_a(&device_a, 1 << 14);
  GaussTree bulk(&pool_a, 3);
  bulk.BulkLoad(dataset);
  bulk.Finalize();

  InMemoryPageDevice device_b(2048);
  BufferPool pool_b(&device_b, 1 << 14);
  GaussTree incremental(&pool_b, 3);
  incremental.BulkInsert(dataset);
  incremental.Finalize();

  const MliqResult a = QueryMliq(bulk, q, 7);
  const MliqResult b = QueryMliq(incremental, q, 7);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].id, b.items[i].id);
  }
}

TEST(BulkLoadTest, FullerLeavesThanIncrementalBuild) {
  const PfvDataset dataset = RandomDataset(306, 4000, 3);

  InMemoryPageDevice device_a(2048);
  BufferPool pool_a(&device_a, 1 << 14);
  GaussTree bulk(&pool_a, 3);
  bulk.BulkLoad(dataset);

  InMemoryPageDevice device_b(2048);
  BufferPool pool_b(&device_b, 1 << 14);
  GaussTree incremental(&pool_b, 3);
  incremental.BulkInsert(dataset);

  const GaussTreeStats bulk_stats = bulk.ComputeStats();
  const GaussTreeStats incr_stats = incremental.ComputeStats();
  EXPECT_GT(bulk_stats.avg_leaf_fill, incr_stats.avg_leaf_fill);
  EXPECT_LE(bulk_stats.node_count, incr_stats.node_count);
}

TEST(BulkLoadTest, SmallInputsAndEdgeCases) {
  // Empty dataset: no-op.
  {
    InMemoryPageDevice device(2048);
    BufferPool pool(&device, 64);
    GaussTree tree(&pool, 2);
    tree.BulkLoad(PfvDataset(2));
    tree.Validate();
    EXPECT_EQ(tree.size(), 0u);
  }
  // Single object.
  {
    InMemoryPageDevice device(2048);
    BufferPool pool(&device, 64);
    GaussTree tree(&pool, 2);
    PfvDataset one(2);
    one.Add(Pfv(1, {0.5, 0.5}, {0.1, 0.1}));
    tree.BulkLoad(one);
    tree.Validate();
    const MliqResult r = QueryMliq(tree, Pfv(0, {0.5, 0.5}, {0.1, 0.1}), 1);
    ASSERT_EQ(r.items.size(), 1u);
    EXPECT_EQ(r.items[0].id, 1u);
  }
  // Exactly one full leaf.
  {
    InMemoryPageDevice device(2048);
    BufferPool pool(&device, 64);
    GaussTree tree(&pool, 2);
    const size_t cap = tree.capacities().leaf;
    tree.BulkLoad(RandomDataset(307, cap, 2));
    tree.Validate();
    EXPECT_EQ(tree.ComputeStats().height, 1u);
  }
  // One more than a leaf: must split into a 2-level tree.
  {
    InMemoryPageDevice device(2048);
    BufferPool pool(&device, 64);
    GaussTree tree(&pool, 2);
    const size_t cap = tree.capacities().leaf;
    tree.BulkLoad(RandomDataset(308, cap + 1, 2));
    tree.Validate();
    EXPECT_EQ(tree.ComputeStats().height, 2u);
  }
}

TEST(BulkLoadTest, PersistsAndReopens) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 14);
  GaussTree tree(&pool, 3);
  tree.BulkLoad(RandomDataset(309, 2000, 3));
  tree.Finalize();
  auto reopened = GaussTree::Open(&pool, tree.meta_page());
  reopened->Validate();
  EXPECT_EQ(reopened->size(), 2000u);
}

TEST(BulkLoadTest, WorksWithClusteredData) {
  ClusteredDatasetConfig config;
  config.size = 5000;
  config.dim = 6;
  config.cluster_count = 15;
  const PfvDataset dataset = GenerateClusteredDataset(config);
  InMemoryPageDevice device(kDefaultPageSize);
  BufferPool pool(&device, 1 << 14);
  GaussTree tree(&pool, 6);
  tree.BulkLoad(dataset);
  tree.Validate();
  EXPECT_EQ(tree.size(), 5000u);
}

}  // namespace
}  // namespace gauss
