#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

Pfv RandomPfv(Rng& rng, uint64_t id, size_t dim, double sigma_lo = 0.01,
              double sigma_hi = 0.2) {
  std::vector<double> mu(dim), sigma(dim);
  for (double& m : mu) m = rng.Uniform(0, 1);
  for (double& s : sigma) s = rng.Uniform(sigma_lo, sigma_hi);
  return Pfv(id, std::move(mu), std::move(sigma));
}

// Shared fixture: a dataset loaded both into a Gauss-tree (finalized, paying
// page I/O) and a PfvFile for the sequential-scan oracle.
class GaussTreeQueryTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 4;
  static constexpr size_t kObjects = 3000;

  GaussTreeQueryTest()
      : device_(4096),
        pool_(&device_, 4096),
        tree_(&pool_, kDim),
        file_(&pool_, kDim),
        scan_(&file_) {
    Rng rng(61);
    PfvDataset dataset(kDim);
    for (uint64_t i = 0; i < kObjects; ++i) {
      dataset.Add(RandomPfv(rng, i, kDim));
    }
    tree_.BulkInsert(dataset);
    tree_.Finalize();
    file_.AppendAll(dataset);
    queries_.reserve(32);
    for (int i = 0; i < 32; ++i) {
      queries_.push_back(RandomPfv(rng, 100000 + i, kDim));
    }
    // Identification-style queries (perturbed database objects): the
    // workload the index is built for, used by the cost-oriented tests.
    id_queries_.reserve(16);
    for (int i = 0; i < 16; ++i) {
      const Pfv& source = dataset[rng.UniformInt(kObjects)];
      std::vector<double> mu(kDim), sigma(kDim);
      for (size_t j = 0; j < kDim; ++j) {
        mu[j] = rng.Gaussian(source.mu[j], source.sigma[j]);
        sigma[j] = rng.Uniform(0.01, 0.2);
      }
      id_queries_.push_back(Pfv(200000 + i, std::move(mu), std::move(sigma)));
    }
  }

  InMemoryPageDevice device_;
  BufferPool pool_;
  GaussTree tree_;
  PfvFile file_;
  SeqScan scan_;
  std::vector<Pfv> queries_;
  std::vector<Pfv> id_queries_;
};

TEST_F(GaussTreeQueryTest, MliqMatchesSequentialScan) {
  for (const Pfv& q : queries_) {
    const MliqResult tree_result = QueryMliq(tree_, q, 5);
    const MliqResult scan_result = scan_.QueryMliq(q, 5);
    ASSERT_EQ(tree_result.items.size(), scan_result.items.size());
    for (size_t i = 0; i < tree_result.items.size(); ++i) {
      // Densities must match exactly (same arithmetic); ids may differ only
      // on exact density ties.
      EXPECT_NEAR(tree_result.items[i].log_density,
                  scan_result.items[i].log_density, 1e-9);
    }
    // Set equality modulo ties: compare id sets when densities are distinct.
    std::set<uint64_t> tree_ids, scan_ids;
    for (const auto& item : tree_result.items) tree_ids.insert(item.id);
    for (const auto& item : scan_result.items) scan_ids.insert(item.id);
    EXPECT_EQ(tree_ids, scan_ids);
  }
}

TEST_F(GaussTreeQueryTest, MliqProbabilitiesMatchScanWithinAccuracy) {
  MliqOptions options;
  options.probability_accuracy = 1e-9;
  for (const Pfv& q : queries_) {
    const MliqResult tree_result = QueryMliq(tree_, q, 3, options);
    const MliqResult scan_result = scan_.QueryMliq(q, 3);
    ASSERT_EQ(tree_result.items.size(), scan_result.items.size());
    for (size_t i = 0; i < tree_result.items.size(); ++i) {
      EXPECT_NEAR(tree_result.items[i].probability,
                  scan_result.items[i].probability, 1e-6);
      EXPECT_LE(tree_result.items[i].probability_error, 1e-6);
    }
  }
}

TEST_F(GaussTreeQueryTest, MliqVisitsFewerObjectsThanScan) {
  // Phase 1 only (paper Section 5.2.1): determining the k best objects —
  // without certifying their exact probabilities — must touch only a small
  // fraction of the database. (Full probability refinement on *low-dim,
  // slow-decaying* data legitimately needs a large share of the denominator;
  // the accuracy/cost trade-off is exercised by sweep_query_params.)
  MliqOptions options;
  options.refine_probabilities = false;
  uint64_t tree_evals = 0;
  for (const Pfv& q : id_queries_) {
    tree_evals += QueryMliq(tree_, q, 1, options).stats.objects_evaluated;
  }
  // This fixture's data is i.i.d. uniform with wide per-object sigmas — the
  // hardest possible regime for hull pruning — so only a coarse saving is
  // demanded here; realistic (clustered) pruning rates are asserted by the
  // integration suite and measured by the figure benches.
  EXPECT_LT(tree_evals, id_queries_.size() * kObjects / 2);
}

TEST_F(GaussTreeQueryTest, TiqMatchesSequentialScan) {
  for (double threshold : {0.2, 0.5, 0.8}) {
    for (const Pfv& q : queries_) {
      const TiqResult tree_result = QueryTiq(tree_, q, threshold);
      const TiqResult scan_result = scan_.QueryTiq(q, threshold);
      std::set<uint64_t> tree_ids, scan_ids;
      for (const auto& item : tree_result.items) tree_ids.insert(item.id);
      for (const auto& item : scan_result.items) scan_ids.insert(item.id);
      EXPECT_EQ(tree_ids, scan_ids) << "threshold " << threshold;
      for (size_t i = 0; i < tree_result.items.size(); ++i) {
        EXPECT_NEAR(tree_result.items[i].probability,
                    scan_result.items[i].probability, 1e-5);
      }
    }
  }
}

TEST_F(GaussTreeQueryTest, LazyTiqNeverDismissesTrueAnswers) {
  // The paper's Figure 5 stopping rule may return extra borderline
  // candidates but must never drop a qualifying object.
  TiqOptions lazy;
  lazy.exact_membership = false;
  for (double threshold : {0.1, 0.3, 0.6}) {
    for (const Pfv& q : queries_) {
      const TiqResult lazy_result = QueryTiq(tree_, q, threshold, lazy);
      const TiqResult truth = scan_.QueryTiq(q, threshold);
      std::set<uint64_t> lazy_ids;
      for (const auto& item : lazy_result.items) lazy_ids.insert(item.id);
      for (const auto& item : truth.items) {
        EXPECT_TRUE(lazy_ids.count(item.id) > 0)
            << "lazy TIQ dismissed id " << item.id << " at threshold "
            << threshold;
      }
    }
  }
}

TEST_F(GaussTreeQueryTest, LazyTiqCostsNoMoreThanExact) {
  TiqOptions lazy;
  lazy.exact_membership = false;
  uint64_t lazy_evals = 0, exact_evals = 0;
  for (const Pfv& q : id_queries_) {
    lazy_evals += QueryTiq(tree_, q, 0.2, lazy).stats.objects_evaluated;
    exact_evals += QueryTiq(tree_, q, 0.2).stats.objects_evaluated;
  }
  EXPECT_LE(lazy_evals, exact_evals);
}

TEST_F(GaussTreeQueryTest, TiqProbabilitySumsBelowOne) {
  // Paper property 1: the probabilities of all retrieved objects of a TIQ
  // cannot exceed 100%.
  for (const Pfv& q : queries_) {
    const TiqResult result = QueryTiq(tree_, q, 0.05);
    double total = 0.0;
    for (const auto& item : result.items) total += item.probability;
    EXPECT_LE(total, 1.0 + 1e-6);
  }
}

TEST_F(GaussTreeQueryTest, MliqProbabilitiesSumBelowOne) {
  for (const Pfv& q : queries_) {
    const MliqResult result = QueryMliq(tree_, q, 10);
    double total = 0.0;
    for (const auto& item : result.items) total += item.probability;
    EXPECT_LE(total, 1.0 + 1e-6);
  }
}

TEST_F(GaussTreeQueryTest, MliqResultsSortedByProbability) {
  for (const Pfv& q : queries_) {
    const MliqResult result = QueryMliq(tree_, q, 8);
    for (size_t i = 1; i < result.items.size(); ++i) {
      EXPECT_GE(result.items[i - 1].log_density, result.items[i].log_density);
    }
  }
}

TEST_F(GaussTreeQueryTest, SelfQueryOnSteepObjectFindsIt) {
  // Querying with a stored object's own pfv ranks that object first when it
  // is a *steep* (low-sigma) object: p(v|v) = prod 1/(2 sqrt(pi) sigma_i) is
  // then larger than any competitor's density. (For a very flat object a
  // steeper neighbour can legitimately win — that is the model working as
  // intended, not a bug.)
  size_t best_index = 0;
  double best_sigma_sum = 1e300;
  for (size_t i = 0; i < kObjects; ++i) {
    const Pfv v = file_.Read(i);
    double total = 0.0;
    for (double s : v.sigma) total += s;
    if (total < best_sigma_sum) {
      best_sigma_sum = total;
      best_index = i;
    }
  }
  const Pfv steepest = file_.Read(best_index);
  const MliqResult result = QueryMliq(tree_, steepest, 1);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].id, steepest.id);
}

TEST_F(GaussTreeQueryTest, SelfQueryAgreesWithScan) {
  // Whatever the model decides for a self-query, the index must agree with
  // the sequential scan exactly.
  Rng rng(62);
  for (int trial = 0; trial < 10; ++trial) {
    const Pfv v = file_.Read(rng.UniformInt(kObjects));
    const MliqResult a = QueryMliq(tree_, v, 1);
    const MliqResult b = scan_.QueryMliq(v, 1);
    ASSERT_EQ(a.items.size(), 1u);
    EXPECT_EQ(a.items[0].id, b.items[0].id);
  }
}

TEST_F(GaussTreeQueryTest, KEqualsDatabaseSizeReturnsEverything) {
  const MliqResult result = QueryMliq(tree_, queries_[0], kObjects);
  EXPECT_EQ(result.items.size(), kObjects);
  double total = 0.0;
  for (const auto& item : result.items) total += item.probability;
  EXPECT_NEAR(total, 1.0, 1e-5);  // Bayes normalization over the full DB
}

TEST_F(GaussTreeQueryTest, HighThresholdTiqReturnsAtMostOne) {
  // P >= 0.6 can hold for at most one object (probabilities sum to <= 1).
  for (const Pfv& q : queries_) {
    const TiqResult result = QueryTiq(tree_, q, 0.6);
    EXPECT_LE(result.items.size(), 1u);
  }
}

TEST_F(GaussTreeQueryTest, TiqThresholdMonotonicity) {
  for (const Pfv& q : queries_) {
    const size_t at_10 = QueryTiq(tree_, q, 0.10).items.size();
    const size_t at_30 = QueryTiq(tree_, q, 0.30).items.size();
    const size_t at_80 = QueryTiq(tree_, q, 0.80).items.size();
    EXPECT_GE(at_10, at_30);
    EXPECT_GE(at_30, at_80);
  }
}

TEST(GaussTreeQueryEdgeTest, EmptyTreeReturnsNothing) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 64);
  GaussTree tree(&pool, 2);
  const Pfv q(1, {0.5, 0.5}, {0.1, 0.1});
  EXPECT_TRUE(QueryMliq(tree, q, 3).items.empty());
  EXPECT_TRUE(QueryTiq(tree, q, 0.2).items.empty());
}

TEST(GaussTreeQueryEdgeTest, SingleObjectHasProbabilityOne) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 64);
  GaussTree tree(&pool, 2);
  tree.Insert(Pfv(9, {0.5, 0.5}, {0.1, 0.1}));
  tree.Finalize();
  const Pfv q(1, {10.0, -3.0}, {0.2, 0.2});  // far away — still the only one
  const MliqResult result = QueryMliq(tree, q, 1);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].id, 9u);
  EXPECT_NEAR(result.items[0].probability, 1.0, 1e-9);
}

TEST(GaussTreeQueryEdgeTest, FarQueryDegeneratesGracefully) {
  // A query so far away that every density underflows: MLIQ must still
  // return k objects without crashing; TIQ returns nothing.
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 256);
  GaussTree tree(&pool, 2);
  Rng rng(63);
  for (uint64_t i = 0; i < 200; ++i) tree.Insert(RandomPfv(rng, i, 2));
  tree.Finalize();
  const Pfv q(1, {1e6, -1e6}, {0.1, 0.1});
  const MliqResult mliq = QueryMliq(tree, q, 3);
  EXPECT_EQ(mliq.items.size(), 3u);
  const TiqResult tiq = QueryTiq(tree, q, 0.1);
  EXPECT_TRUE(tiq.items.empty());
}

TEST(GaussTreeQueryEdgeTest, VeryUncertainQueryIsIndifferent) {
  // Paper property 3: sigma -> infinity makes the model maximally
  // indifferent, P(v|q) ~ 1/n for every object.
  InMemoryPageDevice device(4096);
  BufferPool pool(&device, 1024);
  GaussTree tree(&pool, 2);
  Rng rng(64);
  const size_t n = 500;
  for (uint64_t i = 0; i < n; ++i) tree.Insert(RandomPfv(rng, i, 2));
  tree.Finalize();
  const Pfv q(1, {0.5, 0.5}, {1e5, 1e5});
  const MliqResult result = QueryMliq(tree, q, 10);
  for (const auto& item : result.items) {
    EXPECT_NEAR(item.probability, 1.0 / static_cast<double>(n),
                0.1 / static_cast<double>(n));
  }
}

TEST(GaussTreeQueryEdgeTest, AdditivePolicyConsistentWithItsOwnScan) {
  // The whole pipeline must agree with the oracle under the paper-literal
  // additive sigma policy too.
  InMemoryPageDevice device(4096);
  BufferPool pool(&device, 2048);
  GaussTreeOptions options;
  options.sigma_policy = SigmaPolicy::kAdditive;
  GaussTree tree(&pool, 3, options);
  PfvFile file(&pool, 3);
  Rng rng(65);
  PfvDataset dataset(3);
  for (uint64_t i = 0; i < 1000; ++i) dataset.Add(RandomPfv(rng, i, 3));
  tree.BulkInsert(dataset);
  tree.Finalize();
  file.AppendAll(dataset);
  SeqScan scan(&file, SigmaPolicy::kAdditive);
  for (int i = 0; i < 10; ++i) {
    const Pfv q = RandomPfv(rng, 5000 + i, 3);
    const MliqResult a = QueryMliq(tree, q, 4);
    const MliqResult b = scan.QueryMliq(q, 4);
    ASSERT_EQ(a.items.size(), b.items.size());
    std::set<uint64_t> ids_a, ids_b;
    for (const auto& item : a.items) ids_a.insert(item.id);
    for (const auto& item : b.items) ids_b.insert(item.id);
    EXPECT_EQ(ids_a, ids_b);
  }
}

}  // namespace
}  // namespace gauss
