#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/workload.h"

namespace gauss {
namespace {

TEST(HistogramGeneratorTest, ShapeAndNormalization) {
  HistogramDatasetConfig config;
  config.size = 500;
  config.dim = 27;
  const PfvDataset dataset = GenerateHistogramDataset(config);
  EXPECT_EQ(dataset.size(), 500u);
  EXPECT_EQ(dataset.dim(), 27u);
  for (size_t i = 0; i < dataset.size(); ++i) {
    double sum = 0.0;
    for (double v : dataset[i].mu) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);  // histogram: L1-normalized
    for (double s : dataset[i].sigma) EXPECT_GT(s, 0.0);
  }
}

TEST(HistogramGeneratorTest, Deterministic) {
  HistogramDatasetConfig config;
  config.size = 100;
  const PfvDataset a = GenerateHistogramDataset(config);
  const PfvDataset b = GenerateHistogramDataset(config);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mu, b[i].mu);
    EXPECT_EQ(a[i].sigma, b[i].sigma);
  }
}

TEST(HistogramGeneratorTest, SeedChangesData) {
  HistogramDatasetConfig a_config, b_config;
  a_config.size = b_config.size = 50;
  b_config.seed = 999;
  const PfvDataset a = GenerateHistogramDataset(a_config);
  const PfvDataset b = GenerateHistogramDataset(b_config);
  EXPECT_NE(a[0].mu, b[0].mu);
}

TEST(HistogramGeneratorTest, DataIsClustered) {
  // Clustered data: the average nearest-neighbour distance must be clearly
  // below the average pairwise distance (uniform data would have them close).
  HistogramDatasetConfig config;
  config.size = 300;
  config.cluster_count = 10;
  const PfvDataset dataset = GenerateHistogramDataset(config);

  double nn_total = 0.0, pair_total = 0.0;
  size_t pair_count = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    double nn = 1e100;
    for (size_t j = 0; j < dataset.size(); ++j) {
      if (i == j) continue;
      const double d = MeanSquaredDistance(dataset[i], dataset[j]);
      nn = std::min(nn, d);
      pair_total += d;
      ++pair_count;
    }
    nn_total += nn;
  }
  const double avg_nn = nn_total / static_cast<double>(dataset.size());
  const double avg_pair = pair_total / static_cast<double>(pair_count);
  EXPECT_LT(avg_nn, avg_pair / 4.0);
}

TEST(HistogramGeneratorTest, SigmaAutoScaleTracksSpread) {
  HistogramDatasetConfig config;
  config.size = 400;
  const PfvDataset dataset = GenerateHistogramDataset(config);
  const DatasetMoments moments = ComputeMoments(dataset);
  // Sigmas were drawn from [0.05, 0.5] x avg stddev of the means.
  double max_sigma = 0.0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (double s : dataset[i].sigma) max_sigma = std::max(max_sigma, s);
  }
  EXPECT_LE(max_sigma, 0.5 * moments.avg_stddev * 1.3 + 1e-9);
}

TEST(UniformGeneratorTest, ShapeAndRanges) {
  UniformDatasetConfig config;
  config.size = 1000;
  config.dim = 10;
  const PfvDataset dataset = GenerateUniformDataset(config);
  EXPECT_EQ(dataset.size(), 1000u);
  EXPECT_EQ(dataset.dim(), 10u);
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (double m : dataset[i].mu) {
      EXPECT_GE(m, 0.0);
      EXPECT_LT(m, 1.0);
    }
    for (double s : dataset[i].sigma) {
      EXPECT_GE(s, 0.01 - 1e-12);
      EXPECT_LE(s, 0.1 + 1e-12);
    }
  }
}

TEST(UniformGeneratorTest, MeansCoverTheUnitCube) {
  UniformDatasetConfig config;
  config.size = 5000;
  config.dim = 3;
  const PfvDataset dataset = GenerateUniformDataset(config);
  const DatasetMoments moments = ComputeMoments(dataset);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(moments.mean[j], 0.5, 0.03);
    EXPECT_NEAR(moments.stddev[j], std::sqrt(1.0 / 12.0), 0.02);
  }
}

TEST(ComputeMomentsTest, HandComputed) {
  PfvDataset dataset(2);
  dataset.Add(Pfv(1, {0.0, 2.0}, {0.1, 0.1}));
  dataset.Add(Pfv(2, {2.0, 4.0}, {0.1, 0.1}));
  const DatasetMoments moments = ComputeMoments(dataset);
  EXPECT_DOUBLE_EQ(moments.mean[0], 1.0);
  EXPECT_DOUBLE_EQ(moments.mean[1], 3.0);
  EXPECT_DOUBLE_EQ(moments.stddev[0], 1.0);
  EXPECT_DOUBLE_EQ(moments.stddev[1], 1.0);
}

TEST(WorkloadTest, QueriesDeriveFromDatasetObjects) {
  UniformDatasetConfig dc;
  dc.size = 2000;
  dc.dim = 5;
  const PfvDataset dataset = GenerateUniformDataset(dc);

  WorkloadConfig wc;
  wc.query_count = 100;
  wc.query_sigma_model = dc.sigma_model;
  const auto workload = GenerateWorkload(dataset, wc);
  EXPECT_EQ(workload.size(), 100u);

  std::set<uint64_t> truth_ids;
  for (const auto& iq : workload) {
    EXPECT_EQ(iq.query.dim(), 5u);
    EXPECT_TRUE(iq.query.Valid());
    truth_ids.insert(iq.true_id);
    // The observed mean must be near the source object (within ~6 sigma).
    const Pfv& source = dataset[iq.true_id];
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_LT(std::fabs(iq.query.mu[j] - source.mu[j]),
                6.0 * source.sigma[j] + 1e-9);
    }
  }
  // Sampling without replacement: all distinct sources.
  EXPECT_EQ(truth_ids.size(), 100u);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  UniformDatasetConfig dc;
  dc.size = 500;
  const PfvDataset dataset = GenerateUniformDataset(dc);
  WorkloadConfig wc;
  wc.query_count = 20;
  wc.query_sigma_model = dc.sigma_model;
  const auto a = GenerateWorkload(dataset, wc);
  const auto b = GenerateWorkload(dataset, wc);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].true_id, b[i].true_id);
    EXPECT_EQ(a[i].query.mu, b[i].query.mu);
  }
}

TEST(WorkloadTest, QueryCountClampedToDatasetSize) {
  UniformDatasetConfig dc;
  dc.size = 10;
  const PfvDataset dataset = GenerateUniformDataset(dc);
  WorkloadConfig wc;
  wc.query_count = 100;
  wc.query_sigma_model = dc.sigma_model;
  const auto workload = GenerateWorkload(dataset, wc);
  EXPECT_EQ(workload.size(), 10u);
}

}  // namespace
}  // namespace gauss
