#include <sstream>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "pfv/pfv_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

TEST(MetricsTest, PerfectRetrievalAtScaleOne) {
  const std::vector<std::vector<uint64_t>> retrieved = {{1}, {2}, {3}};
  const std::vector<uint64_t> truth = {1, 2, 3};
  const PrecisionRecall pr = EvaluateAtScale(retrieved, truth, 1);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(MetricsTest, RecallGrowsPrecisionFallsWithScale) {
  // Correct answers at rank 3: scale 1 finds nothing, scale 3 everything.
  const std::vector<std::vector<uint64_t>> retrieved = {{9, 8, 1}, {7, 6, 2}};
  const std::vector<uint64_t> truth = {1, 2};
  const PrecisionRecall at_1 = EvaluateAtScale(retrieved, truth, 1);
  EXPECT_DOUBLE_EQ(at_1.recall, 0.0);
  EXPECT_DOUBLE_EQ(at_1.precision, 0.0);
  const PrecisionRecall at_3 = EvaluateAtScale(retrieved, truth, 3);
  EXPECT_DOUBLE_EQ(at_3.recall, 1.0);
  EXPECT_NEAR(at_3.precision, 2.0 / 6.0, 1e-12);
}

TEST(MetricsTest, PrecisionEqualsRecallOverScaleForSingleTruth) {
  const std::vector<std::vector<uint64_t>> retrieved = {{1, 10, 11, 12},
                                                        {20, 2, 21, 22}};
  const std::vector<uint64_t> truth = {1, 2};
  for (size_t x = 1; x <= 4; ++x) {
    const PrecisionRecall pr = EvaluateAtScale(retrieved, truth, x);
    EXPECT_NEAR(pr.precision, pr.recall / static_cast<double>(x), 1e-12);
  }
}

TEST(MetricsTest, ShortListsHandled) {
  const std::vector<std::vector<uint64_t>> retrieved = {{1}, {}};
  const std::vector<uint64_t> truth = {1, 2};
  const PrecisionRecall pr = EvaluateAtScale(retrieved, truth, 5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);  // 1 hit / 1 retrieved in total
}

TEST(MetricsTest, MeanReciprocalRank) {
  const std::vector<std::vector<uint64_t>> retrieved = {{1, 5}, {5, 2}, {7, 8}};
  const std::vector<uint64_t> truth = {1, 2, 3};
  // ranks: 1, 2, absent -> (1 + 0.5 + 0)/3.
  EXPECT_NEAR(MeanReciprocalRank(retrieved, truth), 0.5, 1e-12);
}

TEST(ExperimentTest, RunMethodAggregatesCosts) {
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 8);
  PfvFile file(&pool, 2);
  for (uint64_t i = 0; i < 100; ++i) {
    file.Append(Pfv(i, {0.1, 0.2}, {0.05, 0.05}));
  }
  DiskModel disk;

  const MethodCosts costs = RunMethod(
      "scan", &pool, disk, 4, CachePolicy::kColdPerQuery,
      AccessPattern::kSequential, [&](size_t) {
        size_t count = 0;
        file.ForEach([&](const Pfv&) { ++count; });
        return count;
      });

  EXPECT_EQ(costs.query_count, 4u);
  // Cold per query: every query physically reads every page.
  EXPECT_EQ(costs.mean.physical_pages, file.page_count());
  EXPECT_EQ(costs.mean.logical_pages, file.page_count());
  EXPECT_GT(costs.mean.io_seconds, 0.0);
  EXPECT_GE(costs.mean.overall_seconds, costs.mean.io_seconds);
  EXPECT_EQ(costs.mean.result_size, 100u);
}

TEST(ExperimentTest, WarmCacheReducesPhysicalReads) {
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 64);
  PfvFile file(&pool, 2);
  for (uint64_t i = 0; i < 200; ++i) {
    file.Append(Pfv(i, {0.1, 0.2}, {0.05, 0.05}));
  }
  DiskModel disk;
  auto scan_all = [&](size_t) {
    size_t count = 0;
    file.ForEach([&](const Pfv&) { ++count; });
    return count;
  };

  const MethodCosts cold = RunMethod("cold", &pool, disk, 4,
                                     CachePolicy::kColdPerQuery,
                                     AccessPattern::kSequential, scan_all);
  const MethodCosts warm = RunMethod("warm", &pool, disk, 4,
                                     CachePolicy::kColdAtStart,
                                     AccessPattern::kSequential, scan_all);
  EXPECT_LT(warm.mean.physical_pages, cold.mean.physical_pages);
  EXPECT_EQ(warm.mean.logical_pages, cold.mean.logical_pages);
}

TEST(ExperimentTest, PercentArithmetic) {
  MethodCosts base, method;
  base.mean.physical_pages = 200;
  base.mean.cpu_seconds = 0.1;
  base.mean.overall_seconds = 0.4;
  method.mean.physical_pages = 50;
  method.mean.cpu_seconds = 0.025;
  method.mean.overall_seconds = 0.2;
  EXPECT_DOUBLE_EQ(method.PagesPercentOf(base), 25.0);
  EXPECT_DOUBLE_EQ(method.CpuPercentOf(base), 25.0);
  EXPECT_DOUBLE_EQ(method.OverallPercentOf(base), 50.0);
}

TEST(ReportTest, TableRendersAllCells) {
  Table table({"method", "pages", "cpu"});
  table.AddRow({"G-Tree", Table::Int(42), Table::Pct(23.5)});
  table.AddRow({"Seq. File", Table::Int(178), Table::Pct(100.0)});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("G-Tree"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("23.5%"), std::string::npos);
  EXPECT_NE(out.find("Seq. File"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(7), "7");
  EXPECT_EQ(Table::Pct(99.94, 1), "99.9%");
}

}  // namespace
}  // namespace gauss
