#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/node.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

Pfv RandomPfv(Rng& rng, uint64_t id, size_t dim) {
  std::vector<double> mu(dim), sigma(dim);
  for (double& m : mu) m = rng.Uniform(0, 1);
  for (double& s : sigma) s = rng.Uniform(0.01, 0.2);
  return Pfv(id, std::move(mu), std::move(sigma));
}

TEST(GtNodeTest, LeafSerializationRoundTrip) {
  Rng rng(51);
  GtNode node;
  node.kind = GtNodeKind::kLeaf;
  node.id = 17;
  for (uint64_t i = 0; i < 10; ++i) node.pfvs.push_back(RandomPfv(rng, i, 4));

  std::vector<uint8_t> page(kDefaultPageSize, 0);
  node.Serialize(page.data(), 4);
  const GtNode restored = GtNode::Deserialize(page.data(), 4, 17);

  EXPECT_EQ(restored.id, node.id);
  EXPECT_TRUE(restored.leaf());
  ASSERT_EQ(restored.pfvs.size(), node.pfvs.size());
  for (size_t i = 0; i < node.pfvs.size(); ++i) {
    EXPECT_EQ(restored.pfvs[i].id, node.pfvs[i].id);
    EXPECT_EQ(restored.pfvs[i].mu, node.pfvs[i].mu);
    EXPECT_EQ(restored.pfvs[i].sigma, node.pfvs[i].sigma);
  }
}

TEST(GtNodeTest, InnerSerializationRoundTrip) {
  Rng rng(52);
  GtNode node;
  node.kind = GtNodeKind::kInner;
  node.id = 3;
  for (uint32_t c = 0; c < 5; ++c) {
    GtChildEntry e;
    e.child = 100 + c;
    e.count = 1000 * (c + 1);
    e.bounds.resize(3);
    for (DimBounds& b : e.bounds) {
      b.mu_lo = rng.Uniform(-1, 0);
      b.mu_hi = rng.Uniform(0, 1);
      b.sigma_lo = rng.Uniform(0.01, 0.1);
      b.sigma_hi = rng.Uniform(0.1, 0.5);
    }
    node.children.push_back(std::move(e));
  }

  std::vector<uint8_t> page(kDefaultPageSize, 0);
  node.Serialize(page.data(), 3);
  const GtNode restored = GtNode::Deserialize(page.data(), 3, 3);

  EXPECT_FALSE(restored.leaf());
  ASSERT_EQ(restored.children.size(), 5u);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(restored.children[c].child, node.children[c].child);
    EXPECT_EQ(restored.children[c].count, node.children[c].count);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(restored.children[c].bounds[i].mu_lo,
                node.children[c].bounds[i].mu_lo);
      EXPECT_EQ(restored.children[c].bounds[i].sigma_hi,
                node.children[c].bounds[i].sigma_hi);
    }
  }
}

TEST(GtNodeTest, ComputeBoundsCoversAllContents) {
  Rng rng(53);
  GtNode node;
  node.kind = GtNodeKind::kLeaf;
  for (uint64_t i = 0; i < 30; ++i) node.pfvs.push_back(RandomPfv(rng, i, 3));
  const auto bounds = node.ComputeBounds(3);
  for (const Pfv& pfv : node.pfvs) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(bounds[i].Contains(pfv.mu[i], pfv.sigma[i]));
    }
  }
}

TEST(GtNodeTest, ChildEntryMergeAndInclude) {
  GtChildEntry a;
  a.count = 5;
  a.bounds = {{0.0, 1.0, 0.1, 0.2}};
  GtChildEntry b;
  b.count = 7;
  b.bounds = {{-1.0, 0.5, 0.05, 0.3}};
  a.Merge(b);
  EXPECT_EQ(a.count, 12u);
  EXPECT_EQ(a.bounds[0].mu_lo, -1.0);
  EXPECT_EQ(a.bounds[0].mu_hi, 1.0);
  EXPECT_EQ(a.bounds[0].sigma_lo, 0.05);
  EXPECT_EQ(a.bounds[0].sigma_hi, 0.3);

  const Pfv outlier(99, {5.0}, {1.0});
  a.Include(outlier);
  EXPECT_EQ(a.bounds[0].mu_hi, 5.0);
  EXPECT_EQ(a.bounds[0].sigma_hi, 1.0);
  EXPECT_TRUE(a.Contains(outlier));
}

TEST(GtCapacitiesTest, MatchRecordSizes) {
  // dim 10 on 8 KiB: leaf record 168 B -> 48; inner entry 328 B -> 24.
  const GtCapacities caps = GtCapacities::ForPageSize(8192, 10);
  EXPECT_EQ(caps.leaf, 48u);
  EXPECT_EQ(caps.inner, 24u);
  EXPECT_EQ(caps.leaf_min, 24u);
  EXPECT_EQ(caps.inner_min, 12u);
}

class GaussTreeStructureTest : public ::testing::TestWithParam<size_t> {
 protected:
  GaussTreeStructureTest() : device_(2048), pool_(&device_, 1024) {}

  InMemoryPageDevice device_;
  BufferPool pool_;
};

TEST_P(GaussTreeStructureTest, InvariantsHoldAfterRandomInserts) {
  const size_t dim = GetParam();
  Rng rng(54 + dim);
  GaussTree tree(&pool_, dim);
  for (uint64_t i = 0; i < 2000; ++i) {
    tree.Insert(RandomPfv(rng, i, dim));
    if (i % 500 == 499) tree.Validate();
  }
  tree.Validate();
  EXPECT_EQ(tree.size(), 2000u);

  const GaussTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.object_count, 2000u);
  EXPECT_GT(stats.height, 1u);
  EXPECT_GE(stats.avg_leaf_fill, 0.4);  // median splits keep nodes half full
}

INSTANTIATE_TEST_SUITE_P(Dims, GaussTreeStructureTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(GaussTreeTest, EmptyTreeIsValid) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 64);
  GaussTree tree(&pool, 4);
  tree.Validate();
  EXPECT_EQ(tree.size(), 0u);
  const GaussTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.height, 1u);
  EXPECT_EQ(stats.node_count, 1u);
}

TEST(GaussTreeTest, SingleObject) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 64);
  GaussTree tree(&pool, 2);
  tree.Insert(Pfv(42, {0.5, 0.5}, {0.1, 0.1}));
  tree.Validate();
  EXPECT_EQ(tree.size(), 1u);
}

TEST(GaussTreeTest, DuplicatePfvsAreAllStored) {
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 256);
  GaussTree tree(&pool, 2);
  const Pfv pfv(7, {0.5, 0.5}, {0.1, 0.1});
  for (int i = 0; i < 300; ++i) tree.Insert(pfv);
  tree.Validate();
  EXPECT_EQ(tree.size(), 300u);
}

TEST(GaussTreeTest, FinalizeThenLoadPreservesStructure) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1024);
  GaussTree tree(&pool, 3);
  Rng rng(55);
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert(RandomPfv(rng, i, 3));
  const GaussTreeStats before = tree.ComputeStats();
  tree.Finalize();
  const GaussTreeStats after = tree.ComputeStats();
  EXPECT_EQ(before.node_count, after.node_count);
  EXPECT_EQ(before.height, after.height);
  EXPECT_EQ(before.object_count, after.object_count);
  tree.Validate();
}

TEST(GaussTreeTest, DefinalizeAllowsFurtherInserts) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1024);
  GaussTree tree(&pool, 3);
  Rng rng(56);
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(RandomPfv(rng, i, 3));
  tree.Finalize();
  tree.Definalize();
  for (uint64_t i = 500; i < 1000; ++i) tree.Insert(RandomPfv(rng, i, 3));
  tree.Validate();
  EXPECT_EQ(tree.size(), 1000u);
}

TEST(GaussTreeTest, AllIdsRetrievableAfterBuild) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1024);
  GaussTree tree(&pool, 2);
  Rng rng(57);
  std::set<uint64_t> inserted;
  for (uint64_t i = 0; i < 1500; ++i) {
    tree.Insert(RandomPfv(rng, i, 2));
    inserted.insert(i);
  }
  // Walk all leaves and collect ids.
  std::set<uint64_t> found;
  std::vector<PageId> stack{tree.root()};
  GtNode node;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    tree.store().Load(id, &node);
    if (node.leaf()) {
      for (const Pfv& pfv : node.pfvs) found.insert(pfv.id);
    } else {
      for (const GtChildEntry& e : node.children) stack.push_back(e.child);
    }
  }
  EXPECT_EQ(found, inserted);
}

TEST(GaussTreeSplitStrategyTest, AllStrategiesProduceValidTrees) {
  for (SplitStrategy strategy : {SplitStrategy::kHullIntegral,
                                 SplitStrategy::kVolume,
                                 SplitStrategy::kMuOnly}) {
    InMemoryPageDevice device(2048);
    BufferPool pool(&device, 1024);
    GaussTreeOptions options;
    options.split_strategy = strategy;
    GaussTree tree(&pool, 3, options);
    Rng rng(58);
    for (uint64_t i = 0; i < 1200; ++i) tree.Insert(RandomPfv(rng, i, 3));
    tree.Validate();
    EXPECT_EQ(tree.size(), 1200u);
  }
}

TEST(GaussTreeTest, PaperDegreeConstraintsViaCapacities) {
  // The paper's leaf degree [M, 2M] maps to capacity-derived min fill of
  // one half; check the derived capacities drive honest splits: after many
  // inserts no leaf exceeds capacity and non-root nodes hold >= min fill
  // (Validate enforces this; this test just documents the relationship).
  InMemoryPageDevice device(4096);
  BufferPool pool(&device, 1024);
  GaussTree tree(&pool, 4);
  EXPECT_EQ(tree.capacities().leaf_min * 2, tree.capacities().leaf);
  Rng rng(59);
  for (uint64_t i = 0; i < 3000; ++i) tree.Insert(RandomPfv(rng, i, 4));
  tree.Validate();
}

}  // namespace
}  // namespace gauss
