// GaussDb façade tests: the three-call public API (Create/Build/Serve) must
// produce exactly the answers of the hand-wired low-level stack, survive the
// file round trip (CreateOnFile -> OpenFile), support several independent
// serving sessions, and enforce its lifecycle rules.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service_test_util.h"

namespace gauss {
namespace {

constexpr size_t kDim = 4;

PfvDataset MakeDataset(size_t size, uint64_t seed = 31) {
  ClusteredDatasetConfig config;
  config.size = size;
  config.dim = kDim;
  config.cluster_count = 12;
  config.seed = seed;
  return GenerateClusteredDataset(config);
}

std::vector<Query> MakeBatch(const PfvDataset& dataset, size_t count) {
  WorkloadConfig wconfig;
  wconfig.query_count = count;
  wconfig.seed = 17;
  return test::MakeMixedBatch(GenerateWorkload(dataset, wconfig));
}

using test::ExpectItemsBytesEqual;

TEST(GaussDbTest, BuildServeAnswersMatchLowLevelApi) {
  const PfvDataset dataset = MakeDataset(3000);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);
  EXPECT_EQ(db.size(), dataset.size());
  EXPECT_TRUE(db.finalized());

  Session session = db.Serve({.num_workers = 4});
  session.tree().Validate();

  const std::vector<Query> batch = MakeBatch(dataset, 30);
  const BatchResult result = session.ExecuteBatch(batch);

  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // Ground truth through the documented low-level API on the same tree.
    const Query& query = batch[i];
    std::vector<IdentificationResult> expected;
    if (query.kind() == QueryKind::kMliq) {
      expected = QueryMliq(session.tree(), query.pfv(), query.k(),
                           query.mliq_options())
                     .items;
    } else {
      expected = QueryTiq(session.tree(), query.pfv(), query.threshold(),
                          query.tiq_options())
                     .items;
    }
    EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
    ExpectItemsBytesEqual(result.responses[i].items, expected);
  }
}

TEST(GaussDbTest, InsertPathServeFinalizesImplicitly) {
  const PfvDataset dataset = MakeDataset(500);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  for (size_t i = 0; i < dataset.size(); ++i) db.Insert(dataset[i]);
  EXPECT_EQ(db.size(), dataset.size());
  EXPECT_FALSE(db.finalized());

  Session session = db.Serve({.num_workers = 2});  // finalizes on the way
  EXPECT_TRUE(db.finalized());
  EXPECT_EQ(session.tree().size(), dataset.size());

  const auto future =
      session.Submit(Query::Mliq(dataset[0], 1)).wait_for(std::chrono::seconds(30));
  EXPECT_EQ(future, std::future_status::ready);
}

TEST(GaussDbTest, FileRoundTripReturnsByteIdenticalAnswers) {
  const std::string path = ::testing::TempDir() + "/gauss_db_api_test.db";
  const PfvDataset dataset = MakeDataset(1200);
  const std::vector<Query> batch = MakeBatch(dataset, 20);

  BatchResult before;
  {
    GaussDb db = GaussDb::CreateOnFile(path, kDim);
    db.Build(dataset);
    Session session = db.Serve({.num_workers = 2});
    before = session.ExecuteBatch(batch);
  }  // db + session gone: only the file survives

  {
    GaussDb reopened = GaussDb::OpenFile(path).value();
    EXPECT_EQ(reopened.dim(), kDim);
    EXPECT_EQ(reopened.size(), dataset.size());
    Session session = reopened.Serve({.num_workers = 2});
    const BatchResult after = session.ExecuteBatch(batch);
    ASSERT_EQ(after.responses.size(), before.responses.size());
    for (size_t i = 0; i < after.responses.size(); ++i) {
      ExpectItemsBytesEqual(after.responses[i].items, before.responses[i].items);
    }
  }
  std::remove(path.c_str());
}

TEST(GaussDbTest, OpenFileWithMismatchedPageSizeReturnsTypedError) {
  const std::string path = ::testing::TempDir() + "/gauss_db_pagesize_test.db";
  {
    GaussDbOptions options;
    options.page_size = 4096;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(MakeDataset(200));
  }
  // Reopening with a different page size would map every PageId to the
  // wrong byte offset; the persistent header catches it — as a typed error
  // the caller can report, not an abort (2048 divides every 4096-page file,
  // so the open reaches the header check deterministically).
  GaussDbOptions reopen;
  reopen.page_size = 2048;
  const OpenResult result = GaussDb::OpenFile(path, reopen);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, OpenErrorCode::kPageSizeMismatch);
  EXPECT_NE(result.error().message.find("page size mismatch"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(GaussDbTest, OpenFileOnMissingEmptyOrForeignFilesReturnsTypedErrors) {
  const std::string missing = ::testing::TempDir() + "/gauss_db_no_such.db";
  std::remove(missing.c_str());
  const OpenResult not_there = GaussDb::OpenFile(missing);
  ASSERT_FALSE(not_there.ok());
  EXPECT_EQ(not_there.error().code, OpenErrorCode::kIoError);

  // Empty file: opens as a zero-page device — no header to trust.
  const std::string empty = ::testing::TempDir() + "/gauss_db_empty.db";
  { std::fclose(std::fopen(empty.c_str(), "wb")); }
  const OpenResult no_pages = GaussDb::OpenFile(empty);
  ASSERT_FALSE(no_pages.ok());
  EXPECT_EQ(no_pages.error().code, OpenErrorCode::kNotAGaussDb);
  std::remove(empty.c_str());

  // A page-aligned file of garbage: right shape, no recognizable header.
  const std::string foreign = ::testing::TempDir() + "/gauss_db_foreign.db";
  {
    std::FILE* f = std::fopen(foreign.c_str(), "wb");
    const std::vector<uint8_t> junk(kDefaultPageSize, 0x5a);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  const OpenResult junk_file = GaussDb::OpenFile(foreign);
  ASSERT_FALSE(junk_file.ok());
  EXPECT_EQ(junk_file.error().code, OpenErrorCode::kNotAGaussDb);
  std::remove(foreign.c_str());

  // Truncated mid-page (not a page-size multiple): rejected at the device.
  const std::string truncated = ::testing::TempDir() + "/gauss_db_trunc.db";
  {
    std::FILE* f = std::fopen(truncated.c_str(), "wb");
    const std::vector<uint8_t> junk(kDefaultPageSize + 100, 0);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  const OpenResult short_file = GaussDb::OpenFile(truncated);
  ASSERT_FALSE(short_file.ok());
  EXPECT_EQ(short_file.error().code, OpenErrorCode::kIoError);
  std::remove(truncated.c_str());
}

TEST(GaussDbTest, OpenFileOnCorruptShardManifestReturnsTypedError) {
  const std::string path = ::testing::TempDir() + "/gauss_db_badmanifest.db";
  {
    GaussDbOptions options;
    options.shards.num_shards = 3;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(MakeDataset(300));
  }
  // Corrupt the manifest's shard-count field in place (offset 20: after
  // magic + version + page_size + dim). 64k shards is outside the
  // representable range, so the typed corrupt-manifest path fires.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const uint32_t bogus_shards = 65535;
    std::fseek(f, 20, SEEK_SET);
    std::fwrite(&bogus_shards, sizeof(bogus_shards), 1, f);
    std::fclose(f);
  }
  const OpenResult result = GaussDb::OpenFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, OpenErrorCode::kCorruptManifest);

  // And a bumped manifest version is a version mismatch, not corruption.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const uint32_t restored_shards = 3;
    std::fseek(f, 20, SEEK_SET);
    std::fwrite(&restored_shards, sizeof(restored_shards), 1, f);
    const uint32_t future_version = 99;
    std::fseek(f, 8, SEEK_SET);  // version follows the 8-byte magic
    std::fwrite(&future_version, sizeof(future_version), 1, f);
    std::fclose(f);
  }
  const OpenResult versioned = GaussDb::OpenFile(path);
  ASSERT_FALSE(versioned.ok());
  EXPECT_EQ(versioned.error().code, OpenErrorCode::kVersionMismatch);
  std::remove(path.c_str());
}

TEST(GaussDbTest, OpenFileReadsLegacyV1ShardManifest) {
  // PR 3/4-era sharded databases persisted manifest v1: no hash_seed field,
  // shard header page ids at byte 24 instead of 32. They used unseeded
  // routing (= seed 0), so they must keep opening. Forge one by rewriting a
  // fresh v2 manifest page into the v1 shape.
  const std::string path = ::testing::TempDir() + "/gauss_db_v1manifest.db";
  const PfvDataset dataset = MakeDataset(300);
  {
    GaussDbOptions options;
    options.shards.num_shards = 3;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(dataset);
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> page(kDefaultPageSize);
    ASSERT_EQ(std::fread(page.data(), 1, page.size(), f), page.size());
    const uint32_t v1 = 1;
    std::memcpy(page.data() + 8, &v1, sizeof(v1));       // version field
    std::memmove(page.data() + 24, page.data() + 32,     // shard metas:
                 3 * sizeof(PageId));                    // v2 -> v1 offset
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fwrite(page.data(), 1, page.size(), f), page.size());
    std::fclose(f);
  }
  GaussDb reopened = GaussDb::OpenFile(path).value();
  EXPECT_TRUE(reopened.sharded());
  EXPECT_EQ(reopened.num_shards(), 3u);
  EXPECT_EQ(reopened.dim(), kDim);
  EXPECT_EQ(reopened.size(), dataset.size());
  Session session = reopened.Serve({.num_workers = 2});
  for (size_t s = 0; s < session.num_shards(); ++s) {
    session.shard_tree(s).Validate();
  }
  std::remove(path.c_str());
}

TEST(GaussDbDeathTest, OpenResultValueOnErrorAbortsWithTheMessage) {
  const std::string missing = ::testing::TempDir() + "/gauss_db_value_abort.db";
  std::remove(missing.c_str());
  // Callers that cannot degrade keep the old fail-loudly contract through
  // value().
  EXPECT_DEATH(GaussDb::OpenFile(missing).value(), "gauss_db_value_abort");
}

TEST(GaussDbTest, OpenFileReadsBackTreeOptions) {
  const std::string path = ::testing::TempDir() + "/gauss_db_options_test.db";
  const PfvDataset dataset = MakeDataset(300);
  {
    GaussDbOptions options;
    options.tree.sigma_policy = SigmaPolicy::kAdditive;
    options.tree.split_strategy = SplitStrategy::kVolume;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(dataset);
  }
  {
    GaussDb reopened = GaussDb::OpenFile(path).value();
    ASSERT_NE(reopened.build_tree(), nullptr);
    EXPECT_EQ(reopened.build_tree()->options().sigma_policy,
              SigmaPolicy::kAdditive);
    EXPECT_EQ(reopened.build_tree()->options().split_strategy,
              SplitStrategy::kVolume);
  }
  std::remove(path.c_str());
}

TEST(GaussDbTest, ReopenedFileAcceptsMoreInserts) {
  const std::string path = ::testing::TempDir() + "/gauss_db_grow_test.db";
  const PfvDataset first = MakeDataset(400, /*seed=*/41);
  const PfvDataset second = MakeDataset(200, /*seed=*/43);
  {
    GaussDb db = GaussDb::CreateOnFile(path, kDim);
    db.Build(first);
  }
  {
    GaussDb db = GaussDb::OpenFile(path).value();
    for (size_t i = 0; i < second.size(); ++i) db.Insert(second[i]);
    Session session = db.Serve({.num_workers = 1});
    EXPECT_EQ(session.tree().size(), first.size() + second.size());
    session.tree().Validate();
  }
  std::remove(path.c_str());
}

TEST(GaussDbTest, MultipleSessionsServeIndependentlyAndIdentically) {
  const PfvDataset dataset = MakeDataset(2000);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);

  Session big = db.Serve({.num_workers = 3, .cache_pages = 1u << 12});
  Session tiny = db.Serve({.num_workers = 2, .cache_pages = 64});

  const std::vector<Query> batch = MakeBatch(dataset, 24);
  const BatchResult a = big.ExecuteBatch(batch);
  const BatchResult b = tiny.ExecuteBatch(batch);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < a.responses.size(); ++i) {
    // Different cache budgets, same pages: answers cannot differ.
    ExpectItemsBytesEqual(a.responses[i].items, b.responses[i].items);
  }
  // The caches really are independent stacks.
  EXPECT_GT(big.cache().stats().logical_reads, 0u);
  EXPECT_GT(tiny.cache().stats().logical_reads, 0u);
}

TEST(GaussDbTest, SessionMoveAssignmentReplacesServingStack) {
  const PfvDataset dataset = MakeDataset(800);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);

  Session session = db.Serve({.num_workers = 2});
  const std::vector<Query> batch = MakeBatch(dataset, 10);
  const BatchResult first = session.ExecuteBatch(batch);

  // Replacing a live session tears the old stack down (service before tree
  // and cache) and swaps in the new one; answers must be unchanged.
  session = db.Serve({.num_workers = 1, .cache_pages = 128});
  const BatchResult second = session.ExecuteBatch(batch);
  ASSERT_EQ(second.responses.size(), first.responses.size());
  for (size_t i = 0; i < second.responses.size(); ++i) {
    ExpectItemsBytesEqual(second.responses[i].items, first.responses[i].items);
  }
}

TEST(GaussDbTest, StreamingAndBatchSharePipelineThroughFacade) {
  const PfvDataset dataset = MakeDataset(1000);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);
  Session session = db.Serve({.num_workers = 2});

  const std::vector<Query> batch = MakeBatch(dataset, 16);
  std::vector<std::future<QueryResponse>> futures;
  for (const Query& query : batch) futures.push_back(session.Submit(query));
  const BatchResult batched = session.ExecuteBatch(batch);

  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectItemsBytesEqual(futures[i].get().items, batched.responses[i].items);
  }
}

}  // namespace
}  // namespace gauss
