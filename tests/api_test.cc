// GaussDb façade tests: the three-call public API (Create/Build/Serve) must
// produce exactly the answers of the hand-wired low-level stack, survive the
// file round trip (CreateOnFile -> OpenFile), support several independent
// serving sessions, and enforce its lifecycle rules.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service_test_util.h"

namespace gauss {
namespace {

constexpr size_t kDim = 4;

PfvDataset MakeDataset(size_t size, uint64_t seed = 31) {
  ClusteredDatasetConfig config;
  config.size = size;
  config.dim = kDim;
  config.cluster_count = 12;
  config.seed = seed;
  return GenerateClusteredDataset(config);
}

std::vector<Query> MakeBatch(const PfvDataset& dataset, size_t count) {
  WorkloadConfig wconfig;
  wconfig.query_count = count;
  wconfig.seed = 17;
  return test::MakeMixedBatch(GenerateWorkload(dataset, wconfig));
}

using test::ExpectItemsBytesEqual;

TEST(GaussDbTest, BuildServeAnswersMatchLowLevelApi) {
  const PfvDataset dataset = MakeDataset(3000);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);
  EXPECT_EQ(db.size(), dataset.size());
  EXPECT_TRUE(db.finalized());

  Session session = db.Serve({.num_workers = 4});
  session.tree().Validate();

  const std::vector<Query> batch = MakeBatch(dataset, 30);
  const BatchResult result = session.ExecuteBatch(batch);

  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // Ground truth through the documented low-level API on the same tree.
    const Query& query = batch[i];
    std::vector<IdentificationResult> expected;
    if (query.kind() == QueryKind::kMliq) {
      expected = QueryMliq(session.tree(), query.pfv(), query.k(),
                           query.mliq_options())
                     .items;
    } else {
      expected = QueryTiq(session.tree(), query.pfv(), query.threshold(),
                          query.tiq_options())
                     .items;
    }
    EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
    ExpectItemsBytesEqual(result.responses[i].items, expected);
  }
}

TEST(GaussDbTest, InsertPathServeFinalizesImplicitly) {
  const PfvDataset dataset = MakeDataset(500);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  for (size_t i = 0; i < dataset.size(); ++i) db.Insert(dataset[i]);
  EXPECT_EQ(db.size(), dataset.size());
  EXPECT_FALSE(db.finalized());

  Session session = db.Serve({.num_workers = 2});  // finalizes on the way
  EXPECT_TRUE(db.finalized());
  EXPECT_EQ(session.tree().size(), dataset.size());

  const auto future =
      session.Submit(Query::Mliq(dataset[0], 1)).wait_for(std::chrono::seconds(30));
  EXPECT_EQ(future, std::future_status::ready);
}

TEST(GaussDbTest, FileRoundTripReturnsByteIdenticalAnswers) {
  const std::string path = ::testing::TempDir() + "/gauss_db_api_test.db";
  const PfvDataset dataset = MakeDataset(1200);
  const std::vector<Query> batch = MakeBatch(dataset, 20);

  BatchResult before;
  {
    GaussDb db = GaussDb::CreateOnFile(path, kDim);
    db.Build(dataset);
    Session session = db.Serve({.num_workers = 2});
    before = session.ExecuteBatch(batch);
  }  // db + session gone: only the file survives

  {
    GaussDb reopened = GaussDb::OpenFile(path);
    EXPECT_EQ(reopened.dim(), kDim);
    EXPECT_EQ(reopened.size(), dataset.size());
    Session session = reopened.Serve({.num_workers = 2});
    const BatchResult after = session.ExecuteBatch(batch);
    ASSERT_EQ(after.responses.size(), before.responses.size());
    for (size_t i = 0; i < after.responses.size(); ++i) {
      ExpectItemsBytesEqual(after.responses[i].items, before.responses[i].items);
    }
  }
  std::remove(path.c_str());
}

TEST(GaussDbDeathTest, OpenFileWithMismatchedPageSizeFailsLoudly) {
  const std::string path = ::testing::TempDir() + "/gauss_db_pagesize_test.db";
  {
    GaussDbOptions options;
    options.page_size = 4096;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(MakeDataset(200));
  }
  // Reopening with the (different) default page size would map every PageId
  // to the wrong byte offset; the persistent header catches it.
  EXPECT_DEATH(GaussDb::OpenFile(path), "page size mismatch");
  std::remove(path.c_str());
}

TEST(GaussDbTest, OpenFileReadsBackTreeOptions) {
  const std::string path = ::testing::TempDir() + "/gauss_db_options_test.db";
  const PfvDataset dataset = MakeDataset(300);
  {
    GaussDbOptions options;
    options.tree.sigma_policy = SigmaPolicy::kAdditive;
    options.tree.split_strategy = SplitStrategy::kVolume;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(dataset);
  }
  {
    GaussDb reopened = GaussDb::OpenFile(path);
    ASSERT_NE(reopened.build_tree(), nullptr);
    EXPECT_EQ(reopened.build_tree()->options().sigma_policy,
              SigmaPolicy::kAdditive);
    EXPECT_EQ(reopened.build_tree()->options().split_strategy,
              SplitStrategy::kVolume);
  }
  std::remove(path.c_str());
}

TEST(GaussDbTest, ReopenedFileAcceptsMoreInserts) {
  const std::string path = ::testing::TempDir() + "/gauss_db_grow_test.db";
  const PfvDataset first = MakeDataset(400, /*seed=*/41);
  const PfvDataset second = MakeDataset(200, /*seed=*/43);
  {
    GaussDb db = GaussDb::CreateOnFile(path, kDim);
    db.Build(first);
  }
  {
    GaussDb db = GaussDb::OpenFile(path);
    for (size_t i = 0; i < second.size(); ++i) db.Insert(second[i]);
    Session session = db.Serve({.num_workers = 1});
    EXPECT_EQ(session.tree().size(), first.size() + second.size());
    session.tree().Validate();
  }
  std::remove(path.c_str());
}

TEST(GaussDbTest, MultipleSessionsServeIndependentlyAndIdentically) {
  const PfvDataset dataset = MakeDataset(2000);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);

  Session big = db.Serve({.num_workers = 3, .cache_pages = 1u << 12});
  Session tiny = db.Serve({.num_workers = 2, .cache_pages = 64});

  const std::vector<Query> batch = MakeBatch(dataset, 24);
  const BatchResult a = big.ExecuteBatch(batch);
  const BatchResult b = tiny.ExecuteBatch(batch);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < a.responses.size(); ++i) {
    // Different cache budgets, same pages: answers cannot differ.
    ExpectItemsBytesEqual(a.responses[i].items, b.responses[i].items);
  }
  // The caches really are independent stacks.
  EXPECT_GT(big.cache().stats().logical_reads, 0u);
  EXPECT_GT(tiny.cache().stats().logical_reads, 0u);
}

TEST(GaussDbTest, SessionMoveAssignmentReplacesServingStack) {
  const PfvDataset dataset = MakeDataset(800);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);

  Session session = db.Serve({.num_workers = 2});
  const std::vector<Query> batch = MakeBatch(dataset, 10);
  const BatchResult first = session.ExecuteBatch(batch);

  // Replacing a live session tears the old stack down (service before tree
  // and cache) and swaps in the new one; answers must be unchanged.
  session = db.Serve({.num_workers = 1, .cache_pages = 128});
  const BatchResult second = session.ExecuteBatch(batch);
  ASSERT_EQ(second.responses.size(), first.responses.size());
  for (size_t i = 0; i < second.responses.size(); ++i) {
    ExpectItemsBytesEqual(second.responses[i].items, first.responses[i].items);
  }
}

TEST(GaussDbTest, StreamingAndBatchSharePipelineThroughFacade) {
  const PfvDataset dataset = MakeDataset(1000);
  GaussDb db = GaussDb::CreateInMemory(kDim);
  db.Build(dataset);
  Session session = db.Serve({.num_workers = 2});

  const std::vector<Query> batch = MakeBatch(dataset, 16);
  std::vector<std::future<QueryResponse>> futures;
  for (const Query& query : batch) futures.push_back(session.Submit(query));
  const BatchResult batched = session.ExecuteBatch(batch);

  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectItemsBytesEqual(futures[i].get().items, batched.responses[i].items);
  }
}

}  // namespace
}  // namespace gauss
