// Differential harness for live ingest (api/live_ingest.h): randomized
// interleaved insert/query schedules against a rebuild-from-scratch oracle.
// At every interleaving point the live session's MLIQ/TIQ answers must match
// a static GaussDb freshly built from exactly the objects enrolled so far
// (ids and ordering exactly; probabilities within the certified interval
// half-widths when refinement is on) and the seq-scan oracle's id sets —
// with merges (manual and background) swapping the serving epoch
// mid-schedule. A remote front door behind real loopback ShardServers runs
// the same comparison, proving the coordinator-side delta changes nothing.
//
// Why this is the acceptance gate: the delta registers as one more backend
// behind the coordinator, so correctness rests on its degenerate
// denominator intervals combining exactly with the base shards' — and on a
// query admitted at time t seeing precisely the enrollments published
// before t, across epoch swaps. Only whole-answer comparison against an
// independently built tree at every interleaving point can see a mistake
// in either.

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "common/random.h"
#include "data/generators.h"
#include "net/net_error.h"
#include "net/shard_server.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "service_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

constexpr double kAccuracy = 1e-4;
constexpr double kThreshold = 0.2;

// Same variant set as the sharding differential: refined variants pin
// probability values; unrefined ones pin ids/ordering under loose bounds;
// both TIQ exact_membership modes.
std::vector<Query> MakeVariants(const Pfv& probe) {
  std::vector<Query> variants;
  variants.push_back(Query::Mliq(probe, 3).Accuracy(kAccuracy));
  variants.push_back(Query::Mliq(probe, 5).RefineProbabilities(false));
  variants.push_back(Query::Tiq(probe, kThreshold).ExactMembership(true));
  variants.push_back(
      Query::Tiq(probe, kThreshold).ExactMembership(true).Accuracy(kAccuracy));
  variants.push_back(Query::Tiq(probe, kThreshold).ExactMembership(false));
  return variants;
}

bool IsLazyTiq(const Query& query) {
  return query.kind() == QueryKind::kTiq &&
         !query.tiq_options().exact_membership;
}

bool RefinesProbabilities(const Query& query) {
  return query.kind() == QueryKind::kMliq
             ? query.mliq_options().refine_probabilities
             : query.tiq_options().refine_probabilities;
}

std::vector<uint64_t> Ids(const std::vector<IdentificationResult>& items) {
  std::vector<uint64_t> ids;
  ids.reserve(items.size());
  for (const IdentificationResult& item : items) ids.push_back(item.id);
  return ids;
}

void ExpectEquivalent(const std::vector<IdentificationResult>& got,
                      const std::vector<IdentificationResult>& want,
                      bool compare_probabilities) {
  ASSERT_EQ(Ids(got), Ids(want));
  if (!compare_probabilities) return;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].probability, want[i].probability,
                got[i].probability_error + want[i].probability_error + 1e-12)
        << "item " << i << " id " << got[i].id;
  }
}

// Lazy-mode TIQ contract: no false dismissals; every extra is a certified
// straddler.
void ExpectLazyTiqContract(const std::vector<IdentificationResult>& got,
                           const std::vector<IdentificationResult>& exact) {
  const std::vector<uint64_t> got_ids = Ids(got);
  const std::set<uint64_t> got_set(got_ids.begin(), got_ids.end());
  for (const IdentificationResult& item : exact) {
    EXPECT_TRUE(got_set.count(item.id))
        << "lazy TIQ dismissed true answer id " << item.id;
  }
  const std::vector<uint64_t> exact_ids = Ids(exact);
  const std::set<uint64_t> exact_set(exact_ids.begin(), exact_ids.end());
  for (const IdentificationResult& item : got) {
    if (exact_set.count(item.id)) continue;
    EXPECT_GE(item.probability + item.probability_error, kThreshold - 1e-12)
        << "lazy TIQ reported id " << item.id
        << " whose certified upper bound misses the threshold";
  }
}

PfvDataset MakeDataset(size_t size, size_t dim, size_t clusters,
                       uint64_t seed) {
  if (size == 0) return PfvDataset(dim);
  ClusteredDatasetConfig config;
  config.size = size;
  config.dim = dim;
  config.cluster_count = clusters;
  config.seed = seed;
  return GenerateClusteredDataset(config);
}

// Objects enrolled live, with ids disjoint from the base dataset's.
std::vector<Pfv> MakeExtras(size_t count, size_t dim, uint64_t first_id,
                            uint64_t seed) {
  const PfvDataset raw = MakeDataset(count, dim, 4, seed);
  std::vector<Pfv> extras;
  extras.reserve(count);
  for (size_t i = 0; i < raw.size(); ++i) {
    Pfv pfv = raw[i];
    pfv.id = first_id + i;
    extras.push_back(std::move(pfv));
  }
  return extras;
}

// The interleaving-point check: the live session must answer a probe batch
// exactly like a static database rebuilt from scratch over `objects`, and
// like the exhaustive scan.
void ExpectMatchesRebuiltOracle(Session& live, const std::vector<Pfv>& objects,
                                size_t dim, Rng& rng) {
  PfvDataset current(dim);
  for (const Pfv& pfv : objects) current.Add(pfv);

  // Probe at up to three enrolled objects (guaranteed interesting density
  // landscape) — including the most recent enrollment, the freshest state.
  std::vector<Query> batch;
  if (!objects.empty()) {
    std::vector<size_t> picks{objects.size() - 1};
    while (picks.size() < 3 && picks.size() < objects.size()) {
      picks.push_back(static_cast<size_t>(rng.NextU64() % objects.size()));
    }
    for (size_t pick : picks) {
      for (Query& query : MakeVariants(objects[pick])) {
        batch.push_back(std::move(query));
      }
    }
  } else {
    batch.push_back(Query::Mliq(Pfv(1, std::vector<double>(dim, 0.5),
                                    std::vector<double>(dim, 0.1)),
                                3));
  }

  // Rebuild-from-scratch oracle: a static single-tree database over exactly
  // the current object set.
  GaussDb oracle_db = GaussDb::CreateInMemory(dim);
  oracle_db.Build(current);
  Session oracle = oracle_db.Serve({.num_workers = 2});
  const BatchResult want = oracle.ExecuteBatch(batch);

  // Exhaustive-scan oracle over the same object set.
  InMemoryPageDevice scan_device;
  BufferPool scan_pool(&scan_device, 1 << 12);
  PfvFile scan_file(&scan_pool, dim);
  scan_file.AppendAll(current);

  const BatchResult got = live.ExecuteBatch(batch);
  ASSERT_EQ(got.responses.size(), batch.size());
  for (size_t i = 0; i < got.responses.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const Query& query = batch[i];
    EXPECT_EQ(got.responses[i].status, QueryResponse::Status::kOk);
    EXPECT_LE(got.responses[i].stats.denominator_lo,
              got.responses[i].stats.denominator_hi);
    SeqScan scan(&scan_file);
    if (IsLazyTiq(query)) {
      ExpectLazyTiqContract(got.responses[i].items,
                            scan.QueryTiq(query.pfv(), kThreshold).items);
      continue;
    }
    ExpectEquivalent(got.responses[i].items, want.responses[i].items,
                     RefinesProbabilities(query));
    if (query.kind() == QueryKind::kTiq) {
      EXPECT_EQ(Ids(got.responses[i].items),
                Ids(scan.QueryTiq(query.pfv(), kThreshold).items));
    } else {
      EXPECT_EQ(Ids(got.responses[i].items),
                Ids(scan.QueryMliq(query.pfv(), query.k()).items));
    }
  }
}

// One randomized interleaved schedule: build a base, serve with live
// ingest, then alternate random-size insert chunks with oracle checks,
// merging (manually) at schedule points chosen up front. Covers unsharded
// and sharded bases, including an empty base (cold-start enrollment).
void RunInterleavedSchedule(size_t base_size, size_t extra_count, size_t dim,
                            size_t num_shards, uint64_t seed) {
  Rng rng(seed);
  const PfvDataset base = MakeDataset(base_size, dim, 6, seed);
  const std::vector<Pfv> extras =
      MakeExtras(extra_count, dim, /*first_id=*/1000000, seed + 1);

  GaussDbOptions options;
  options.shards.num_shards = num_shards;
  options.ingest.enabled = true;
  options.ingest.delta_capacity = extra_count + 1;
  options.ingest.merge_policy = MergePolicy::kManual;
  GaussDb db = GaussDb::CreateInMemory(dim, options);
  db.Build(base);
  Session live = db.Serve({.num_workers = 2, .coordinator_threads = 2});
  EXPECT_TRUE(live.live_ingest());
  EXPECT_EQ(live.ingest_stats().epoch, 1u);

  std::vector<Pfv> enrolled(base.objects());
  size_t next = 0;
  size_t merges = 0;
  while (next < extras.size()) {
    // Insert a random chunk.
    const size_t chunk =
        std::min(extras.size() - next, 1 + rng.NextU64() % 12);
    for (size_t i = 0; i < chunk; ++i) {
      const InsertResult inserted = db.Insert(extras[next]);
      ASSERT_EQ(inserted.outcome, InsertOutcome::kRoutedToDelta)
          << inserted.message;
      enrolled.push_back(extras[next]);
      ++next;
    }
    EXPECT_EQ(db.size(), enrolled.size());

    // Mid-schedule merges: roughly every third chunk, with at least one
    // guaranteed before the schedule ends.
    const bool last_chunk = next >= extras.size();
    if (rng.NextU64() % 3 == 0 || (last_chunk && merges == 0)) {
      const IngestStats before = db.ingest_stats();
      EXPECT_TRUE(db.MergeIngest());
      ++merges;
      const IngestStats after = db.ingest_stats();
      EXPECT_EQ(after.epoch, before.epoch + 1);
      EXPECT_EQ(after.delta_size, 0u);
      EXPECT_EQ(after.merges_completed, before.merges_completed + 1);
      EXPECT_EQ(db.size(), enrolled.size());
    }

    SCOPED_TRACE("after " + std::to_string(next) + " inserts, " +
                 std::to_string(merges) + " merges");
    ExpectMatchesRebuiltOracle(live, enrolled, dim, rng);
  }
  EXPECT_GE(merges, 1u);
  EXPECT_EQ(db.ingest_stats().inserts_accepted, extras.size());
}

TEST(IngestDifferentialTest, UnshardedInterleavedScheduleMatchesOracle) {
  RunInterleavedSchedule(/*base_size=*/300, /*extra_count=*/90, /*dim=*/3,
                         /*num_shards=*/0, /*seed=*/4242);
}

TEST(IngestDifferentialTest, ShardedInterleavedScheduleMatchesOracle) {
  RunInterleavedSchedule(/*base_size=*/400, /*extra_count=*/80, /*dim=*/4,
                         /*num_shards=*/3, /*seed=*/4343);
}

TEST(IngestDifferentialTest, EmptyBaseColdStartEnrollmentMatchesOracle) {
  RunInterleavedSchedule(/*base_size=*/0, /*extra_count=*/60, /*dim=*/3,
                         /*num_shards=*/0, /*seed=*/4444);
}

// Background policy: the merge thread swaps epochs on its own schedule; the
// differential contract must hold at every interleaving point regardless,
// and at least one background merge must complete mid-schedule.
TEST(IngestDifferentialTest, BackgroundMergeMidScheduleStaysExact) {
  constexpr size_t kDim = 3;
  constexpr size_t kExtras = 96;
  Rng rng(7777);
  const PfvDataset base = MakeDataset(250, kDim, 6, /*seed=*/7777);
  const std::vector<Pfv> extras =
      MakeExtras(kExtras, kDim, /*first_id=*/2000000, /*seed=*/7778);

  GaussDbOptions options;
  options.shards.num_shards = 2;
  options.ingest.enabled = true;
  options.ingest.delta_capacity = kExtras + 1;
  options.ingest.merge_threshold = 24;  // several merges over the schedule
  options.ingest.merge_policy = MergePolicy::kBackground;
  GaussDb db = GaussDb::CreateInMemory(kDim, options);
  db.Build(base);
  Session live = db.Serve({.num_workers = 2, .coordinator_threads = 2});

  std::vector<Pfv> enrolled(base.objects());
  size_t next = 0;
  while (next < extras.size()) {
    const size_t chunk = std::min(extras.size() - next, size_t{8});
    for (size_t i = 0; i < chunk; ++i) {
      ASSERT_EQ(db.Insert(extras[next]).outcome,
                InsertOutcome::kRoutedToDelta);
      enrolled.push_back(extras[next]);
      ++next;
    }
    // Half-way through, require a background merge to have landed before
    // continuing — the rest of the schedule then runs over a merged epoch.
    if (next >= extras.size() / 2 && db.ingest_stats().merges_completed == 0) {
      test::SpinUntil(
          [&db] { return db.ingest_stats().merges_completed >= 1; });
    }
    SCOPED_TRACE("after " + std::to_string(next) + " inserts");
    ExpectMatchesRebuiltOracle(live, enrolled, kDim, rng);
  }
  EXPECT_GE(db.ingest_stats().merges_completed, 1u);
  EXPECT_EQ(db.size(), enrolled.size());
}

// Remote front door: the same interleaved schedule through ServeRemote()
// over real loopback ShardServers, with the delta living coordinator-side.
// No merge is possible (the remote images are immutable from here), so the
// whole schedule serves from base + delta — and must still match the
// rebuild-from-scratch oracle at every point.
TEST(IngestDifferentialTest, RemoteFrontDoorEnrollmentMatchesOracle) {
  constexpr size_t kDim = 3;
  constexpr size_t kShards = 2;
  Rng rng(8888);
  const PfvDataset base = MakeDataset(300, kDim, 6, /*seed=*/8888);
  const std::vector<Pfv> extras =
      MakeExtras(48, kDim, /*first_id=*/3000000, /*seed=*/8889);

  GaussDbOptions options;
  options.shards.num_shards = kShards;
  GaussDb db = GaussDb::CreateInMemory(kDim, options);
  db.Build(base);
  Session local = db.Serve({.num_workers = 2 * kShards});

  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::string> endpoints;
  for (size_t s = 0; s < local.num_shards(); ++s) {
    NetError error;
    std::unique_ptr<ShardServer> server =
        ShardServer::Listen(local.shard_service(s), {}, &error);
    ASSERT_NE(server, nullptr) << error.ToString();
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port()));
    servers.push_back(std::move(server));
  }
  IngestOptions ingest;
  ingest.enabled = true;
  ingest.delta_capacity = extras.size();
  ServeResult connected = GaussDb::ServeRemote(endpoints, {}, ingest);
  ASSERT_TRUE(connected.ok()) << connected.error().ToString();
  std::optional<Session> remote_holder(std::move(connected).value());
  Session& remote = *remote_holder;
  EXPECT_TRUE(remote.live_ingest());
  EXPECT_TRUE(remote.remote());

  std::vector<Pfv> enrolled(base.objects());
  size_t next = 0;
  while (next < extras.size()) {
    const size_t chunk = std::min(extras.size() - next, size_t{12});
    for (size_t i = 0; i < chunk; ++i) {
      ASSERT_EQ(remote.Insert(extras[next]).outcome,
                InsertOutcome::kRoutedToDelta);
      enrolled.push_back(extras[next]);
      ++next;
    }
    SCOPED_TRACE("after " + std::to_string(next) + " remote inserts");
    ExpectMatchesRebuiltOracle(remote, enrolled, kDim, rng);
  }
  // The delta is now exactly full: the next enrollment reports typed
  // backpressure (remote front doors cannot merge).
  EXPECT_EQ(remote.ingest_stats().delta_size, extras.size());
  const InsertResult overflow = remote.Insert(extras[0]);
  EXPECT_EQ(overflow.outcome, InsertOutcome::kDeltaFull);
  EXPECT_FALSE(overflow.ok());

  // Teardown order: remote session hangs up first, then the servers it
  // spoke to shut down, then `local` (owning the shard services) dies.
  remote_holder.reset();
  for (std::unique_ptr<ShardServer>& server : servers) server->Shutdown();
}

// Persistence across a merge: the merged base image must be what a reopen
// attaches to — enrollments survive a restart once merged.
TEST(IngestDifferentialTest, MergedEnrollmentsSurviveReopen) {
  constexpr size_t kDim = 3;
  const std::string path = ::testing::TempDir() + "/gauss_ingest_reopen.gauss";
  const PfvDataset base = MakeDataset(200, kDim, 4, /*seed=*/5151);
  const std::vector<Pfv> extras =
      MakeExtras(30, kDim, /*first_id=*/4000000, /*seed=*/5152);
  {
    GaussDbOptions options;
    options.ingest.enabled = true;
    options.ingest.merge_policy = MergePolicy::kManual;
    GaussDb db = GaussDb::CreateOnFile(path, kDim, options);
    db.Build(base);
    Session live = db.Serve({.num_workers = 2});
    for (const Pfv& pfv : extras) {
      ASSERT_EQ(db.Insert(pfv).outcome, InsertOutcome::kRoutedToDelta);
    }
    ASSERT_TRUE(db.MergeIngest());
    EXPECT_EQ(db.size(), base.size() + extras.size());
  }
  OpenResult reopened = GaussDb::OpenFile(path);
  ASSERT_TRUE(reopened.ok()) << reopened.error().message;
  GaussDb db = std::move(reopened).value();
  EXPECT_EQ(db.size(), base.size() + extras.size());
  Session session = db.Serve({.num_workers = 2});
  // Every merged enrollment is findable in the reopened static image.
  for (size_t i = 0; i < extras.size(); i += 7) {
    const auto response =
        session.Submit(Query::Mliq(extras[i], 1).Accuracy(kAccuracy)).get();
    ASSERT_EQ(response.status, QueryResponse::Status::kOk);
    ASSERT_EQ(response.items.size(), 1u);
    EXPECT_EQ(response.items[0].id, extras[i].id);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gauss
