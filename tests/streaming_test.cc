// Streaming-path tests for GaussServe: Submit() futures must return answers
// byte-identical to ExecuteBatch() and to the low-level QueryMliq/QueryTiq
// entry points, complete in any gather order, honor per-query deadlines
// (kShed at a full queue, kDeadlineExceeded on expiry) without disturbing
// other queries, and all become ready when the service is destroyed with
// futures outstanding. Runs under ASan/UBSan via `cmake --workflow --preset
// asan` (and under TSan via the tsan preset).

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/workload.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {
namespace {

using test::GatedPageCache;
using test::SpinUntil;

class StreamingTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 5;
  static constexpr size_t kObjects = 2000;

  void SetUp() override {
    ClusteredDatasetConfig config;
    config.size = kObjects;
    config.dim = kDim;
    config.cluster_count = 15;
    config.seed = 23;
    dataset_ = GenerateClusteredDataset(config);

    BufferPool build_pool(&device_, 1 << 14);
    GaussTree build_tree(&build_pool, kDim);
    build_tree.BulkLoad(dataset_);
    build_tree.Finalize();
    meta_page_ = build_tree.meta_page();

    WorkloadConfig wconfig;
    wconfig.query_count = 40;
    wconfig.seed = 9;
    workload_ = GenerateWorkload(dataset_, wconfig);
  }

  std::vector<Query> MakeBatch() const {
    return test::MakeMixedBatch(workload_);
  }

  InMemoryPageDevice device_;
  PfvDataset dataset_{kDim};
  PageId meta_page_ = kInvalidPageId;
  std::vector<IdentificationQuery> workload_;
};

using test::DirectAnswers;
using test::ExpectItemsBytesEqual;

// Acceptance: the three public query paths — low-level QueryMliq/QueryTiq,
// streaming Submit() futures, and batch ExecuteBatch() — return
// byte-identical answers on the same tree.
TEST_F(StreamingTest, FuturesBatchAndDirectPathsAreByteIdentical) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(*tree, options);

  const std::vector<Query> batch = MakeBatch();

  // Path 1: the documented low-level API.
  const auto direct = DirectAnswers(*tree, batch);

  // Path 2: streaming futures.
  std::vector<std::future<QueryResponse>> futures;
  for (const Query& query : batch) futures.push_back(service.Submit(query));

  // Path 3: batch.
  const BatchResult batched = service.ExecuteBatch(batch);

  ASSERT_EQ(batched.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryResponse streamed = futures[i].get();
    EXPECT_EQ(streamed.status, QueryResponse::Status::kOk);
    EXPECT_EQ(streamed.kind, batch[i].kind());
    ExpectItemsBytesEqual(streamed.items, direct[i]);
    ExpectItemsBytesEqual(batched.responses[i].items, direct[i]);
  }
}

// Futures can be gathered in any order — completion is per-query, not
// batch-barriered.
TEST_F(StreamingTest, FutureGatherOrderIsIndependentOfSubmissionOrder) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 3;
  QueryService service(*tree, options);

  const std::vector<Query> batch = MakeBatch();
  const auto direct = DirectAnswers(*tree, batch);

  std::vector<std::future<QueryResponse>> futures;
  for (const Query& query : batch) futures.push_back(service.Submit(query));

  // Gather back-to-front: the last-submitted future is waited on first.
  for (size_t i = futures.size(); i-- > 0;) {
    const QueryResponse resp = futures[i].get();
    EXPECT_EQ(resp.status, QueryResponse::Status::kOk);
    ExpectItemsBytesEqual(resp.items, direct[i]);
  }
}

// A deadline that has already passed is rejected at admission, before
// touching the queue or the tree.
TEST_F(StreamingTest, ExpiredDeadlineIsRejectedAtAdmission) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryService service(*tree, {.num_workers = 2});

  auto future = service.Submit(
      Query::Mliq(workload_[0].query, 3)
          .Deadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1)));
  // Completed synchronously by Submit itself.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const QueryResponse resp = future.get();
  EXPECT_EQ(resp.status, QueryResponse::Status::kDeadlineExceeded);
  EXPECT_TRUE(resp.items.empty());
  EXPECT_EQ(resp.stats.nodes_visited, 0u);
}

// The full admission-control matrix, pinned deterministic by gating the page
// cache: a deadline query hitting a full queue is shed, a queued deadline
// query whose budget runs out reports kDeadlineExceeded, and neither
// disturbs the answers of the queries that do execute.
TEST_F(StreamingTest, ShedAndExpiryDoNotDisturbExecutingQueries) {
  ShardedBufferPool pool(&device_, 1 << 12);
  GatedPageCache gated(&pool);
  auto tree = GaussTree::Open(&gated, meta_page_);  // gate open: loads fine

  const MliqResult direct0 = QueryMliq(*tree, workload_[0].query, 3);
  const MliqResult direct1 = QueryMliq(*tree, workload_[1].query, 3);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  QueryService service(*tree, options);

  gated.CloseGate();
  // f0 is popped by the single worker, which then blocks at the gate.
  auto f0 = service.Submit(Query::Mliq(workload_[0].query, 3));
  SpinUntil([&] { return gated.waiting() == 1; });

  // Queue slot 1: a plain query. Slot 2: a deadline query whose budget will
  // expire while it waits (the budget is generous enough that admission —
  // microseconds away — always beats it, even on a loaded machine).
  auto f1 = service.Submit(Query::Mliq(workload_[1].query, 3));
  const auto f2_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
  auto f2 =
      service.Submit(Query::Mliq(workload_[2].query, 3).Deadline(f2_deadline));

  // Queue now full: a deadline query cannot wait and is shed immediately —
  // while a generous deadline, so kShed (full queue), not expiry.
  auto f3 = service.Submit(
      Query::Tiq(workload_[3].query, 0.2).DeadlineAfter(std::chrono::hours(1)));
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const QueryResponse shed = f3.get();
  EXPECT_EQ(shed.status, QueryResponse::Status::kShed);
  EXPECT_TRUE(shed.items.empty());

  // The gated queries are still outstanding.
  EXPECT_NE(f0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_NE(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);

  // Let f2's budget lapse, then open the gate.
  std::this_thread::sleep_until(f2_deadline + std::chrono::milliseconds(10));
  gated.OpenGate();

  const QueryResponse r0 = f0.get();
  const QueryResponse r1 = f1.get();
  const QueryResponse r2 = f2.get();
  EXPECT_EQ(r0.status, QueryResponse::Status::kOk);
  EXPECT_EQ(r1.status, QueryResponse::Status::kOk);
  EXPECT_EQ(r2.status, QueryResponse::Status::kDeadlineExceeded);
  EXPECT_TRUE(r2.items.empty());
  EXPECT_EQ(r2.stats.nodes_visited, 0u);  // expiry costs no traversal

  // The executed answers are exactly the single-threaded ground truth: the
  // admission decisions around them left no trace in the results.
  ExpectItemsBytesEqual(r0.items, direct0.items);
  ExpectItemsBytesEqual(r1.items, direct1.items);
}

// ExecuteBatch aggregates admission-control outcomes into ServiceStats
// without losing the per-query kind counts.
TEST_F(StreamingTest, BatchStatsCountShedAndExpired) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryService service(*tree, {.num_workers = 2});

  std::vector<Query> batch;
  batch.push_back(Query::Mliq(workload_[0].query, 3));
  batch.push_back(Query::Mliq(workload_[1].query, 3)
                      .Deadline(std::chrono::steady_clock::now() -
                                std::chrono::milliseconds(1)));
  batch.push_back(Query::Tiq(workload_[2].query, 0.2));

  const BatchResult result = service.ExecuteBatch(batch);
  ASSERT_EQ(result.responses.size(), 3u);
  EXPECT_EQ(result.responses[0].status, QueryResponse::Status::kOk);
  EXPECT_EQ(result.responses[1].status,
            QueryResponse::Status::kDeadlineExceeded);
  EXPECT_EQ(result.responses[2].status, QueryResponse::Status::kOk);

  EXPECT_EQ(result.stats.total_queries(), 3u);
  EXPECT_EQ(result.stats.mliq_queries, 2u);
  EXPECT_EQ(result.stats.tiq_queries, 1u);
  EXPECT_EQ(result.stats.shed_queries, 0u);
  EXPECT_EQ(result.stats.deadline_exceeded_queries, 1u);
  EXPECT_EQ(result.stats.latency.count, 2u);  // only executed queries sample
}

// Destroying the service with futures outstanding drains them: every future
// is ready — with the correct answer — once the destructor returns.
TEST_F(StreamingTest, DestructorDrainsOutstandingFutures) {
  ShardedBufferPool pool(&device_, 1 << 12);
  GatedPageCache gated(&pool);
  auto tree = GaussTree::Open(&gated, meta_page_);

  const MliqResult direct0 = QueryMliq(*tree, workload_[0].query, 3);
  const TiqResult direct1 = QueryTiq(*tree, workload_[1].query, 0.2);
  const MliqResult direct2 = QueryMliq(*tree, workload_[2].query, 5);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  auto service = std::make_unique<QueryService>(*tree, options);

  gated.CloseGate();
  auto f0 = service->Submit(Query::Mliq(workload_[0].query, 3));
  SpinUntil([&] { return gated.waiting() == 1; });
  auto f1 = service->Submit(Query::Tiq(workload_[1].query, 0.2));
  auto f2 = service->Submit(Query::Mliq(workload_[2].query, 5));

  // All three genuinely outstanding at destruction time.
  EXPECT_NE(f0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_NE(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_NE(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);

  gated.OpenGate();
  service.reset();  // closes the queue, drains, joins

  ASSERT_EQ(f0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const QueryResponse r0 = f0.get(), r1 = f1.get(), r2 = f2.get();
  EXPECT_EQ(r0.status, QueryResponse::Status::kOk);
  EXPECT_EQ(r1.status, QueryResponse::Status::kOk);
  EXPECT_EQ(r2.status, QueryResponse::Status::kOk);
  ExpectItemsBytesEqual(r0.items, direct0.items);
  ExpectItemsBytesEqual(r1.items, direct1.items);
  ExpectItemsBytesEqual(r2.items, direct2.items);
}

// Asynchronous read-ahead is purely a latency knob: every prefetch depth
// returns answers byte-identical to the depth-0 (fully synchronous) run and
// to the low-level API, and the logical page-access count — the paper's
// page-access metric — is unchanged. The cache is sized well below the tree
// (GaussTree::Open's reachability walk would otherwise leave every page
// resident and reduce all hints to no-ops), so the prefetch path schedules
// real asynchronous fills.
TEST_F(StreamingTest, PrefetchDepthSweepIsByteIdenticalWithUnchangedAccesses) {
  uint64_t logical_at_depth0 = 0;
  for (const size_t depth : {size_t{0}, size_t{2}, size_t{8}}) {
    ShardedBufferPool pool(&device_, 16, /*num_shards=*/4);
    auto tree = GaussTree::Open(&pool, meta_page_);
    QueryServiceOptions options;
    options.num_workers = 2;
    options.prefetch_depth = depth;
    QueryService service(*tree, options);

    const std::vector<Query> batch = MakeBatch();
    const auto direct = DirectAnswers(*tree, batch);
    pool.ResetStats();

    const BatchResult result = service.ExecuteBatch(batch);
    ASSERT_EQ(result.responses.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
      ExpectItemsBytesEqual(result.responses[i].items, direct[i]);
    }

    pool.WaitForInflightPrefetches();
    const IoStats stats = pool.stats();
    if (depth == 0) {
      logical_at_depth0 = stats.logical_reads;
      EXPECT_EQ(stats.prefetch_issued, 0u);
    } else {
      // Same traversals -> same fetch sequence, whatever the read-ahead.
      EXPECT_EQ(stats.logical_reads, logical_at_depth0);
      // A tree-smaller cache guarantees non-resident frontier pages to
      // hint about somewhere in the batch.
      EXPECT_GT(stats.prefetch_issued, 0u);
    }
  }
}

// Deterministic prefetch accounting, pinned through the shared
// GatedPageCache: a worker blocked at the gate has issued at most the root
// expansion's hints (the root is pinned in memory, so its expansion — and
// its read-ahead — happens before the first gated Fetch; every deeper
// expansion sits behind the gate); once released, the run issues the rest,
// and after a quiesce + Clear every issued prefetch has resolved to exactly
// one hit or wasted count.
TEST_F(StreamingTest, GatedPrefetchAccountingResolvesEveryIssue) {
  // Capacity well below the tree's page count (see the sweep test above).
  ShardedBufferPool pool(&device_, 16, /*num_shards=*/4);
  GatedPageCache gated(&pool);
  auto tree = GaussTree::Open(&gated, meta_page_);

  const MliqResult direct = QueryMliq(*tree, workload_[0].query, 3);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.prefetch_depth = 8;
  QueryService service(*tree, options);

  gated.CloseGate();
  auto future = service.Submit(Query::Mliq(workload_[0].query, 3));
  SpinUntil([&] { return gated.waiting() == 1; });
  // Blocked on the first non-root fetch: only the pinned root's expansion
  // can have hinted so far, and it hints at most prefetch_depth pages.
  EXPECT_LE(pool.stats().prefetch_issued, 8u);

  gated.OpenGate();
  const QueryResponse resp = future.get();
  EXPECT_EQ(resp.status, QueryResponse::Status::kOk);
  ExpectItemsBytesEqual(resp.items, direct.items);

  pool.WaitForInflightPrefetches();
  pool.Clear();
  const IoStats stats = pool.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_issued, stats.prefetch_hits + stats.prefetch_wasted);
}

// The fluent descriptor fills exactly the selected variant.
TEST(QueryDescriptorTest, FactoriesAndFluentSettersFillTheRightFields) {
  const Pfv probe(7, {0.5, 0.5}, {0.1, 0.1});

  const Query mliq = Query::Mliq(probe, 4).Accuracy(1e-3);
  EXPECT_EQ(mliq.kind(), QueryKind::kMliq);
  EXPECT_EQ(mliq.pfv().id, 7u);
  EXPECT_EQ(mliq.k(), 4u);
  EXPECT_DOUBLE_EQ(mliq.mliq_options().probability_accuracy, 1e-3);
  EXPECT_FALSE(mliq.has_deadline());

  const Query tiq = Query::Tiq(probe, 0.25).ExactMembership(false);
  EXPECT_EQ(tiq.kind(), QueryKind::kTiq);
  EXPECT_DOUBLE_EQ(tiq.threshold(), 0.25);
  EXPECT_FALSE(tiq.tiq_options().exact_membership);
  EXPECT_FALSE(tiq.tiq_options().refine_probabilities);

  // Accuracy on a TIQ implies probability refinement.
  const Query tiq2 = Query::Tiq(probe, 0.25).Accuracy(1e-2);
  EXPECT_TRUE(tiq2.tiq_options().refine_probabilities);
  EXPECT_DOUBLE_EQ(tiq2.tiq_options().probability_accuracy, 1e-2);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const Query timed = Query::Mliq(probe, 1).Deadline(deadline);
  ASSERT_TRUE(timed.has_deadline());
  EXPECT_EQ(timed.deadline(), deadline);

  const Query budgeted =
      Query::Tiq(probe, 0.1).DeadlineAfter(std::chrono::milliseconds(100));
  ASSERT_TRUE(budgeted.has_deadline());
  EXPECT_GT(budgeted.deadline(), std::chrono::steady_clock::now());
}

}  // namespace
}  // namespace gauss
