#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/gaussian.h"
#include "math/hull.h"
#include "math/hull_integral.h"

namespace gauss {
namespace {

DimBounds MakeBounds(double mu_lo, double mu_hi, double sg_lo, double sg_hi) {
  DimBounds b;
  b.mu_lo = mu_lo;
  b.mu_hi = mu_hi;
  b.sigma_lo = sg_lo;
  b.sigma_hi = sg_hi;
  return b;
}

// Numeric quadrature of the hull over a generous support window.
double NumericHullIntegral(const DimBounds& b, int steps = 400000) {
  const double lo = b.mu_lo - 12.0 * b.sigma_hi;
  const double hi = b.mu_hi + 12.0 * b.sigma_hi;
  const double h = (hi - lo) / steps;
  double sum = 0.5 * (UpperHull(lo, b) + UpperHull(hi, b));
  for (int i = 1; i < steps; ++i) sum += UpperHull(lo + i * h, b);
  return sum * h;
}

TEST(SigmoidPoly5Test, ApproximatesStdNormalCdf) {
  for (double z = -6.0; z <= 6.0; z += 0.01) {
    EXPECT_NEAR(SigmoidPoly5Cdf(z), StdNormalCdf(z), 1e-7) << "z=" << z;
  }
}

TEST(SigmoidPoly5Test, SymmetryAroundZero) {
  // At z == 0 both sides evaluate the same branch, so the approximation's
  // own error at the origin (~5e-10) shows up twice in the sum.
  for (double z = 0.0; z <= 5.0; z += 0.1) {
    EXPECT_NEAR(SigmoidPoly5Cdf(z) + SigmoidPoly5Cdf(-z), 1.0, 1e-8);
  }
}

TEST(HullIntegralTest, MatchesQuadrature) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const double mu_lo = rng.Uniform(-2, 2);
    const double mu_hi = mu_lo + rng.Uniform(0, 2);
    const double sg_lo = rng.Uniform(0.1, 0.8);
    const double sg_hi = sg_lo + rng.Uniform(0, 1.2);
    const DimBounds b = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
    const double closed = UpperHullIntegral(b, IntegralMethod::kErf);
    const double numeric = NumericHullIntegral(b);
    EXPECT_NEAR(closed, numeric, 1e-3 * closed)
        << "bounds: [" << mu_lo << "," << mu_hi << "] x [" << sg_lo << ","
        << sg_hi << "]";
  }
}

TEST(HullIntegralTest, DegenerateBoxIntegratesToOne) {
  // Point box: hull is a single pdf, integral must be 1.
  const DimBounds b = MakeBounds(0.7, 0.7, 0.25, 0.25);
  EXPECT_NEAR(UpperHullIntegral(b, IntegralMethod::kErf), 1.0, 1e-12);
}

TEST(HullIntegralTest, ClosedFormDecomposition) {
  // integral = 1 + 2 (ln sg_hi - ln sg_lo)/sqrt(2 pi e)
  //              + (mu_hi - mu_lo)/(sqrt(2 pi) sg_lo).
  const DimBounds b = MakeBounds(1.0, 3.0, 0.5, 2.0);
  const double expected = 1.0 + 2.0 * kInvSqrt2PiE * std::log(2.0 / 0.5) +
                          2.0 / (kSqrt2Pi * 0.5);
  EXPECT_NEAR(UpperHullIntegral(b, IntegralMethod::kErf), expected, 1e-12);
}

TEST(HullIntegralTest, SigmoidPolyCloseToErf) {
  Rng rng(32);
  for (int trial = 0; trial < 50; ++trial) {
    const double mu_lo = rng.Uniform(-2, 2);
    const double mu_hi = mu_lo + rng.Uniform(0, 2);
    const double sg_lo = rng.Uniform(0.1, 0.8);
    const double sg_hi = sg_lo + rng.Uniform(0, 1.2);
    const DimBounds b = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
    EXPECT_NEAR(UpperHullIntegral(b, IntegralMethod::kErf),
                UpperHullIntegral(b, IntegralMethod::kSigmoidPoly5), 1e-5);
  }
}

TEST(HullIntegralTest, GrowsWithMuExtent) {
  double previous = 0.0;
  for (double extent = 0.0; extent < 3.0; extent += 0.25) {
    const DimBounds b = MakeBounds(0.0, extent, 0.3, 0.6);
    const double integral = UpperHullIntegral(b);
    EXPECT_GT(integral, previous);
    previous = integral;
  }
}

TEST(HullIntegralTest, GrowsWithSigmaExtent) {
  double previous = 0.0;
  for (double extent = 0.0; extent < 2.0; extent += 0.2) {
    const DimBounds b = MakeBounds(0.0, 1.0, 0.3, 0.3 + extent);
    const double integral = UpperHullIntegral(b);
    EXPECT_GT(integral, previous);
    previous = integral;
  }
}

TEST(HullIntegralTest, AtLeastOneAlways) {
  // The hull dominates a true pdf, so its integral can never drop below 1.
  Rng rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    const double mu_lo = rng.Uniform(-5, 5);
    const double mu_hi = mu_lo + rng.Uniform(0, 4);
    const double sg_lo = rng.Uniform(0.01, 2.0);
    const double sg_hi = sg_lo + rng.Uniform(0, 2.0);
    EXPECT_GE(UpperHullIntegral(MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi)),
              1.0 - 1e-12);
  }
}

TEST(HullIntegralMeasureTest, ProductAcrossDimensions) {
  std::vector<DimBounds> bounds = {MakeBounds(0, 1, 0.2, 0.5),
                                   MakeBounds(-1, 0, 0.1, 0.3),
                                   MakeBounds(2, 2.5, 0.4, 0.4)};
  double expected = 1.0;
  for (const DimBounds& b : bounds) expected *= UpperHullIntegral(b);
  EXPECT_NEAR(HullIntegralMeasure(bounds.data(), bounds.size()), expected,
              1e-12);
}

TEST(HullIntegralMeasureTest, SelectiveNodeScoresLower) {
  // The split objective: a tight node (small sigma, small mu range) must
  // score lower than a wide one.
  std::vector<DimBounds> tight = {MakeBounds(0, 0.1, 0.1, 0.12),
                                  MakeBounds(0, 0.1, 0.1, 0.12)};
  std::vector<DimBounds> wide = {MakeBounds(0, 2.0, 0.1, 1.5),
                                 MakeBounds(0, 2.0, 0.1, 1.5)};
  EXPECT_LT(HullIntegralMeasure(tight.data(), 2),
            HullIntegralMeasure(wide.data(), 2));
}

}  // namespace
}  // namespace gauss
